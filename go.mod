module cumulon

go 1.22
