// Package cumulon is a from-scratch Go reproduction of "Cumulon:
// Optimizing Statistical Data Analysis in the Cloud" (Huang, Babu, Yang;
// SIGMOD 2013): a system for developing and intelligently deploying
// matrix-based big-data analysis programs in the cloud.
//
// The implementation lives under internal/:
//
//   - lang      — the matrix program language (AST, parser, interpreter)
//   - plan      — logical rewrites, job cutting, operator fusion, splits
//   - exec      — the Cumulon engine: map-only multi-input jobs over tiles
//   - mapred    — the MapReduce/SystemML-style comparison baseline
//   - dfs/store — the HDFS-like substrate and the tiled matrix store
//   - cloud     — machine catalog, hardware profiles, hourly billing
//   - model/sim — benchmark-calibrated task models and the cluster simulator
//   - opt       — the cost-based deployment optimizer (the paper's core)
//   - core      — the Session facade tying everything together
//   - workloads — GNMF, RSVD, regression, product chains
//   - bench     — the experiment harness regenerating the evaluation
//
// Entry points: cmd/cumulon (run programs), cmd/cumulon-opt (deployment
// optimizer), cmd/cumulon-bench (regenerate the evaluation). See README.md
// for a tour, DESIGN.md for the architecture and the experiment index, and
// EXPERIMENTS.md for reproduction results.
package cumulon
