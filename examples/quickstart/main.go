// Quickstart: write a small matrix program, run it on a simulated 4-node
// cluster with real (materialized) data, and check the result against the
// in-memory reference interpreter.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
)

const program = `
program quickstart
input A 200 150
input B 150 100
C = A * B              # one fused multiply job
D = abs(C .* C - 2*C)  # element-wise pipeline, fused into one map job
output D
`

func main() {
	sess := core.NewSession(1)

	// Compile and show the physical plan Cumulon produces.
	prog, err := lang.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	cfg := plan.Config{TileSize: 32}
	pl, err := sess.Compile(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pl)

	// Provision a 4-node cluster of m1.large and run with real data.
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[string]*linalg.Dense{
		"A": linalg.RandomDense(200, 150, 7),
		"B": linalg.RandomDense(150, 100, 8),
	}
	res, err := sess.Run(prog, cfg, core.ExecOptions{Cluster: cluster, Inputs: inputs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nran on %s in %.1f virtual seconds, bill $%.2f\n",
		cluster, res.Metrics.TotalSeconds, res.CostDollars)

	// Verify against the reference interpreter.
	want, err := lang.Interpret(prog, inputs)
	if err != nil {
		log.Fatal(err)
	}
	got := res.Outputs["D"]
	fmt.Printf("output D: %dx%d, max |engine - reference| = %.3g\n",
		got.Rows, got.Cols, got.MaxAbsDiff(want["D"]))
}
