// Regression: train linear least squares by gradient descent on the
// simulated cluster, watch the loss fall, and compare Cumulon's execution
// against the MapReduce baseline on the same program.
//
//	go run ./examples/regression
package main

import (
	"fmt"
	"log"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/linalg"
	"cumulon/internal/mapred"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

func main() {
	sess := core.NewSession(42)
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1 (materialized): y = X wTrue + noise; descend and report loss.
	n, d := 400, 8
	x := linalg.RandomDense(n, d, 1)
	wTrue := linalg.RandomDense(d, 1, 2)
	y := x.Mul(wTrue).Add(linalg.RandomDense(n, 1, 3).Scale(0.01))
	w0 := linalg.NewDense(d, 1)
	loss := func(w *linalg.Dense) float64 { return x.Mul(w).Sub(y).FrobeniusNorm() }

	fmt.Println("gradient descent on the simulated cluster:")
	fmt.Printf("  iters=0: loss %.4f\n", loss(w0))
	for _, iters := range []int{5, 20, 80} {
		wl := workloads.Regression(n, d, iters, 0.002)
		res, err := sess.Run(wl.Prog, plan.Config{TileSize: 32}, core.ExecOptions{
			Cluster: cl,
			Inputs:  map[string]*linalg.Dense{"X": x, "y": y, "w": w0},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iters=%d: loss %.4f (%.1f virtual s)\n",
			iters, loss(res.Outputs["w"]), res.Metrics.TotalSeconds)
	}

	// Part 2 (paper scale, virtual): Cumulon vs the MapReduce baseline on
	// ten iterations over a 1M x 1000 design matrix.
	big := workloads.Regression(1000000, 1000, 10, 1e-6)
	bigCl, _ := cloud.NewCluster(mt, 16, 2)
	cres, err := sess.Run(big.Prog, plan.Config{TileSize: 2048}, core.ExecOptions{Cluster: bigCl})
	if err != nil {
		log.Fatal(err)
	}
	mr, err := mapred.New(mapred.Config{Cluster: bigCl, BlockSize: 2048, Seed: 42, NoiseFactor: 0.08})
	if err != nil {
		log.Fatal(err)
	}
	mres, _, err := mr.Run(big.Prog, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n10 iterations on 1M x 1000 (%s):\n", bigCl)
	fmt.Printf("  cumulon:   %8.1fs  (%d jobs)\n", cres.Metrics.TotalSeconds, len(cres.Metrics.Jobs))
	fmt.Printf("  mapreduce: %8.1fs  (%d jobs)\n", mres.TotalSeconds, len(mres.Jobs))
	fmt.Printf("  speedup:   %.2fx\n", mres.TotalSeconds/cres.Metrics.TotalSeconds)
}
