// GNMF at paper scale: factorize a 100k x 50k sparse matrix under a
// deadline. The optimizer picks machine type, cluster size, slots and
// per-job splits; the engine then executes the deployment (virtually — no
// float payloads at this scale) and we compare the bill against a naive
// default deployment.
//
//	go run ./examples/gnmf
package main

import (
	"fmt"
	"log"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

func main() {
	// Two multiplicative-update iterations on V (100000 x 50000, 5%
	// dense), factor rank 10.
	wl := workloads.GNMF(100000, 50000, 10, 2, 0.05)
	cfg := plan.Config{TileSize: 2048, Densities: wl.Densities}
	sess := core.NewSession(42)

	// Ask the optimizer for the cheapest deployment under a 30-minute
	// deadline.
	const deadline = 30 * 60.0
	res, err := sess.OptimizeDeadline(wl.Prog, cfg, deadline)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Met {
		log.Fatalf("deadline unsatisfiable; fastest option: %v", res.Best)
	}
	fmt.Printf("optimizer recommends: %v\n", res.Best)

	// Execute exactly that deployment.
	run, err := sess.RunDeployment(wl.Prog, cfg, res.Best, core.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed in %.1fs (predicted %.1fs), bill $%.2f\n",
		run.Metrics.TotalSeconds, res.Best.PredSeconds, run.CostDollars)

	// Compare with a naive default: 16 x m1.large, heuristic splits.
	mt, _ := cloud.TypeByName("m1.large")
	naiveCl, _ := cloud.NewCluster(mt, 16, 2)
	naive, err := sess.Run(wl.Prog, cfg, core.ExecOptions{Cluster: naiveCl})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive default (%s): %.1fs, bill $%.2f\n",
		naiveCl, naive.Metrics.TotalSeconds, naive.CostDollars)
	fmt.Printf("optimizer saves %.1fx on cost\n", naive.CostDollars/run.CostDollars)

	fmt.Println("\nper-job breakdown of the optimized run:")
	for _, j := range run.Metrics.Jobs {
		fmt.Printf("  %-32s %-4s %4d tasks  %7.1fs\n", j.Name, j.Kind, j.Tasks, j.Seconds())
	}
}
