// RSVD: run the randomized-SVD sketching pipeline twice —
//
//  1. small and materialized, verifying that the distributed engine's
//     sketch captures the dominant singular directions of a low-rank
//     matrix (real math, checked numerically); then
//
//  2. at paper scale (65536 x 16384) across cluster sizes, showing the
//     scaling behaviour of the product chain B = A (Aᵀ (A Ω)).
//
//     go run ./examples/rsvd
package main

import (
	"fmt"
	"log"
	"math"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

func main() {
	sess := core.NewSession(42)
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: correctness on a rank-2 matrix plus noise.
	m, n, k := 120, 80, 4
	u1 := linalg.RandomDense(m, 1, 1)
	v1 := linalg.RandomDense(n, 1, 2)
	u2 := linalg.RandomDense(m, 1, 3)
	v2 := linalg.RandomDense(n, 1, 4)
	a := u1.Mul(v1.T()).Add(u2.Mul(v2.T()).Scale(0.5))
	a = a.Add(linalg.RandomDense(m, n, 5).Scale(0.01))

	wl := workloads.RSVD(m, n, k, 2)
	cfg := plan.Config{TileSize: 16}
	cl, _ := cloud.NewCluster(mt, 4, 2)
	res, err := sess.Run(wl.Prog, cfg, core.ExecOptions{
		Cluster: cl,
		Inputs: map[string]*linalg.Dense{
			"A":     a,
			"Omega": linalg.RandomDense(n, k, 6),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	b := res.Outputs["B"]
	fmt.Printf("sketch B: %dx%d; alignment with the dominant direction: cos=%.4f\n",
		b.Rows, b.Cols, cosine(b, u1))

	// Part 2: paper-scale scaling study (virtual execution).
	big := workloads.RSVD(65536, 16384, 256, 1)
	bigCfg := plan.Config{TileSize: 2048}
	fmt.Println("\nscaling of RSVD 65536x16384 (k=256, 1 power iteration):")
	var base float64
	for _, nodes := range []int{2, 4, 8, 16, 32} {
		cl, err := cloud.NewCluster(mt, nodes, 2)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sess.Run(big.Prog, bigCfg, core.ExecOptions{Cluster: cl})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.Metrics.TotalSeconds
		}
		fmt.Printf("  %2d nodes: %8.1fs  speedup %.2fx  bill $%.2f\n",
			nodes, r.Metrics.TotalSeconds, base/r.Metrics.TotalSeconds, r.CostDollars)
	}
}

// cosine returns |cos| of the angle between the first column of b and u.
func cosine(b, u *linalg.Dense) float64 {
	var dot, nb, nu float64
	for i := 0; i < u.Rows; i++ {
		dot += b.At(i, 0) * u.At(i, 0)
		nb += b.At(i, 0) * b.At(i, 0)
		nu += u.At(i, 0) * u.At(i, 0)
	}
	return math.Abs(dot) / math.Sqrt(nb*nu)
}
