// Spot instances: run GNMF's job schedule through the spot-market
// simulator, sweep bids, and compare the expected bill against on-demand
// pricing — the deployment question the paper's follow-on work tackles.
//
//	go run ./examples/spot
package main

import (
	"fmt"
	"log"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/plan"
	"cumulon/internal/spot"
	"cumulon/internal/workloads"
)

func main() {
	// First get the real job schedule: run GNMF (virtually) on 16 x
	// m1.large and collect per-job durations.
	sess := core.NewSession(42)
	wl := workloads.GNMF(200000, 100000, 10, 2, 0.05)
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 16, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run(wl.Prog, plan.Config{TileSize: 2048, Densities: wl.Densities},
		core.ExecOptions{Cluster: cl})
	if err != nil {
		log.Fatal(err)
	}
	var jobSecs []float64
	for _, j := range res.Metrics.Jobs {
		jobSecs = append(jobSecs, j.Seconds())
	}
	onDemand := res.CostDollars
	fmt.Printf("workload: %s, %d jobs, %.1fs on %s\n",
		wl.Name, len(jobSecs), res.Metrics.TotalSeconds, cl)
	fmt.Printf("on-demand bill: $%.2f\n\n", onDemand)

	// Sweep bids on the spot market.
	market := spot.DefaultMarket(mt.PricePerHour)
	horizon := res.Metrics.TotalSeconds * 6
	best, ok, sweep := spot.OptimizeBid(jobSecs, cl.Nodes, market, 50, 42, horizon, 0.9)
	fmt.Printf("%-10s %-12s %-16s %s\n", "bid $/h", "finish prob", "expected cost $", "mean evictions")
	for _, e := range sweep {
		fmt.Printf("%-10.3f %-12.2f %-16.2f %.2f\n",
			e.Bid, e.FinishProb, e.ExpectedCost, e.MeanEvicts)
	}
	if !ok {
		fmt.Println("\nno bid met the 90% completion target within the horizon")
		return
	}
	fmt.Printf("\nbest bid: $%.3f/h — expected cost $%.2f (%.0f%% of on-demand), finish prob %.0f%%\n",
		best.Bid, best.ExpectedCost, 100*best.ExpectedCost/onDemand, 100*best.FinishProb)
}
