// Command cumulon-load is a declarative multi-client traffic generator
// for cumulond: it reads a JSON load spec (N tenants × M clients × a
// weighted program mix × seeded arrivals), drives a running server, and
// prints a per-tenant fairness and latency report. It exits non-zero
// when jobs fail, when any job starves past the spec's wait bound, or
// (with -require-cache-hits) when the plan cache never hit.
//
// Example specs live in examples/loads/.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cumulon/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cumulon-load:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cumulon-load", flag.ContinueOnError)
	fs.SetOutput(out)
	serverURL := fs.String("server", "http://127.0.0.1:8470", "base URL of the cumulond server")
	specPath := fs.String("spec", "", "path to the JSON load spec (required)")
	maxWait := fs.Float64("max-wait", 0, "override the spec's starvation bound in seconds (0 = spec value)")
	requireHits := fs.Bool("require-cache-hits", false, "fail unless the plan cache served at least one hit")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of a table")
	tail := fs.Bool("tail", false, "consume each job's event stream (long-poll) instead of polling status")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required (see examples/loads/)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := server.ParseLoadSpec(data)
	if err != nil {
		return err
	}
	if *maxWait > 0 {
		spec.MaxWaitSec = *maxWait
	}
	if *tail {
		spec.Tail = true
	}

	rep, err := server.RunLoad(strings.TrimRight(*serverURL, "/"), spec)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		rep.Write(out)
	}
	return rep.Healthy(*requireHits)
}
