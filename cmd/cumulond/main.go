// Command cumulond serves the multi-tenant Cumulon job service over
// HTTP+JSON: job submission with admission control, weighted fair-share
// scheduling across tenants, a plan/deployment cache, and per-tenant
// metrics. See README.md ("Running cumulond") for the API.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"cumulon/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cumulond:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cumulond", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8470", "listen address (use :0 for a random port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts that use -addr :0)")
	machine := fs.String("machine", "m1.large", "machine type of the shared simulated cluster")
	nodes := fs.Int("nodes", 16, "node capacity of the shared cluster")
	slots := fs.Int("slots", 2, "default task slots per node")
	seed := fs.Int64("seed", 42, "default seed for jobs that do not supply one")
	workers := fs.Int("workers", 0, "per-job compute parallelism for materialized runs (0 = sequential)")
	weights := fs.String("weights", "", "fair-share weights as tenant=w pairs, e.g. \"analytics=3,adhoc=1\"")
	aging := fs.Float64("aging", 1, "service units per second a waiting job's rank improves by")
	boost := fs.Float64("priority-boost", 100, "service units of head start per priority point")
	reserve := fs.Float64("reserve-after", 60, "seconds before a wide job blocks backfilling (starvation bound)")
	maxQueue := fs.Int("max-queue", 1024, "admission queue bound (429 beyond it)")
	cacheSize := fs.Int("cache-size", 256, "plan+deployment cache entry bound (LRU eviction beyond it)")
	jobHistory := fs.Int("job-history", 512, "terminal jobs retained before the oldest are pruned")
	artifactHistory := fs.Int("artifact-history", 64, "finished jobs that keep retained trace/critpath/metrics/explain artifacts")
	eventBuffer := fs.Int("event-buffer", 4096, "per-job event ring-buffer size")
	stateDir := fs.String("state-dir", "", "durable state directory: job-store journal plus program checkpoints; a restarted server recovers its job history and resumes in-flight jobs")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	w, err := parseWeights(*weights)
	if err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Machine: *machine, Nodes: *nodes, Slots: *slots,
		Seed: *seed, Workers: *workers, MaxQueue: *maxQueue,
		CacheSize: *cacheSize, JobHistory: *jobHistory,
		ArtifactHistory: *artifactHistory, EventBuffer: *eventBuffer,
		Pprof: *pprofFlag, StateDir: *stateDir,
		Sched: server.SchedConfig{
			Weights: w, AgingRate: *aging,
			PriorityBoost: *boost, ReserveAfterSec: *reserve,
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "cumulond listening on http://%s (machine %s, %d nodes, seed %d)\n",
		bound, *machine, *nodes, *seed)
	return http.Serve(ln, srv.Handler())
}

// parseWeights parses "a=2,b=1" into a weight map.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -weights entry %q (want tenant=weight)", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -weights value %q for tenant %s (want a positive number)", val, name)
		}
		out[name] = w
	}
	return out, nil
}
