package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeProg drops a small valid program in a temp file for flag tests
// that get past parsing.
func writeProg(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.cm")
	src := "input A 8 8\ninput B 8 8\nC = A * B\noutput C\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunBadInputs: malformed flags and flag combinations must return a
// one-line error, never panic and never succeed.
func TestRunBadInputs(t *testing.T) {
	prog := writeProg(t)
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{prog}, "unexpected arguments"},
		{"missing file", []string{"-f", filepath.Join(t.TempDir(), "absent.cm")}, "no such file"},
		{"bad machine", []string{"-f", prog, "-machine", "q9.mega"}, "unknown machine type"},
		{"explain without optimize", []string{"-f", prog, "-explain"}, "require -optimize"},
		{"searchtrace without optimize", []string{"-f", prog, "-searchtrace", "-"}, "require -optimize"},
		{"deadline and budget", []string{"-f", prog, "-optimize", "-deadline", "60", "-budget", "5"}, "at most one"},
		{"chaos gibberish", []string{"-f", prog, "-chaos", "gibberish"}, "chaos"},
		{"chaos bad kill", []string{"-f", prog, "-chaos", "kill=x@y"}, "chaos"},
		{"chaos bad rate", []string{"-f", prog, "-chaos", "taskfault=2.5"}, "chaos"},
		{"chaos unknown key", []string{"-f", prog, "-chaos", "frobnicate=1"}, "chaos"},
		{"non-numeric nodes", []string{"-f", prog, "-nodes", "many"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want substring %q", tc.args, err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}

// TestRunSmallProgram: the happy path still works through the args-based
// entry point.
func TestRunSmallProgram(t *testing.T) {
	if err := run([]string{"-f", writeProg(t), "-tile", "4", "-nodes", "2", "-plan=false"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
