// Command cumulon compiles and runs a matrix program on a simulated cloud
// cluster, reporting the plan, per-job timings and the bill.
//
// Programs use the textual syntax of package lang, e.g.:
//
//	input V 100000 50000 sparse
//	input W 100000 10
//	input H 10 50000
//	H = H .* (W' * V) ./ ((W' * W) * H)
//	W = W .* (V * H') ./ (W * (H * H'))
//	output W
//	output H
//
// Usage:
//
//	cumulon -f prog.cm -machine c1.medium -nodes 16 -slots 2
//	cumulon -f prog.cm -materialize      # small programs: compute real values
//	cumulon -f prog.cm -optimize -explain # let the optimizer pick the cluster
//	echo 'input A 4096 4096 ...' | cumulon
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cumulon/internal/chaos"
	"cumulon/internal/ckpt"
	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/obs"
	"cumulon/internal/opt"
	"cumulon/internal/plan"
	"cumulon/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cumulon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cumulon", flag.ContinueOnError)
	file := fs.String("f", "", "program file (default: stdin)")
	machine := fs.String("machine", "m1.large", "machine type")
	nodes := fs.Int("nodes", 8, "cluster size")
	slots := fs.Int("slots", 2, "task slots per node")
	tile := fs.Int("tile", 2048, "tile size in elements")
	density := fs.Float64("density", 0.05, "assumed density of sparse inputs")
	materialize := fs.Bool("materialize", false,
		"compute real values on random inputs (small programs only) and print output stats")
	seed := fs.Int64("seed", 42, "seed for data, placement and noise")
	workers := fs.Int("workers", 0,
		"parallel compute workers for -materialize (capped at GOMAXPROCS; results are identical)")
	kernelPar := fs.Int("kernel-par", 0,
		"worker fan-out inside a single blocked GEMM (0 = GOMAXPROCS; results are identical)")
	showPlan := fs.Bool("plan", true, "print the compiled physical plan")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	dot := fs.Bool("dot", false, "emit the plan DAG in Graphviz DOT and exit")
	traceOut := fs.String("trace", "",
		"write a Chrome trace-event JSON of the run to this file (open in chrome://tracing or Perfetto; \"-\" for stdout)")
	metricsOut := fs.String("metrics", "",
		"write a Prometheus-style text metrics snapshot of the run to this file (\"-\" for stdout)")
	timelineOut := fs.String("timeline", "",
		"write the per-task timeline CSV to this file (\"-\" for stdout)")
	critpath := fs.Bool("critpath", false, "print the critical-path analysis of the run")
	optimize := fs.Bool("optimize", false,
		"let the optimizer choose the deployment (machine type, nodes, slots, splits) instead of -machine/-nodes/-slots")
	deadline := fs.Float64("deadline", 0,
		"with -optimize: deadline in seconds to minimize cost under (default 24h when no -budget is given)")
	budget := fs.Float64("budget", 0, "with -optimize: budget in dollars to minimize time under")
	confidence := fs.Float64("confidence", 0,
		"with -optimize -deadline: promise the deadline at this probability (e.g. 0.95) instead of in expectation")
	maxNodes := fs.Int("max-nodes", 64, "with -optimize: largest cluster size to consider")
	explain := fs.Bool("explain", false,
		"with -optimize: print an EXPLAIN report of the search (winner vs nearest rivals, per-term deltas, prune reasons)")
	searchTrace := fs.String("searchtrace", "",
		"with -optimize: write the candidate-level search trace to this file (JSON, or CSV when the path ends in .csv; \"-\" for stdout)")
	frontierOut := fs.String("frontier", "",
		"with -optimize: write the time/cost Pareto frontier as SVG to this file (\"-\" for stdout)")
	chaosSpec := fs.String("chaos", "",
		"inject a deterministic fault schedule, e.g. \"seed=7,kill=3@120,taskfault=0.02,readfault=0.01\" (kill=NODE@SECONDS repeats)")
	maxRetries := fs.Int("max-retries", 0,
		"per-task retry budget under faults (0 = default of 3, negative = no retries)")
	checkpoint := fs.Int("checkpoint", 0,
		"checkpoint the program at every Nth iteration boundary into -state-dir (0 = off)")
	resume := fs.Bool("resume", false,
		"resume from the newest valid checkpoint in -state-dir instead of recomputing finished iterations")
	stateDir := fs.String("state-dir", "",
		"directory holding program checkpoints for -checkpoint/-resume")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *asJSON {
		*showPlan = false
	}
	if !*optimize && (*explain || *searchTrace != "" || *frontierOut != "") {
		return fmt.Errorf("-explain, -searchtrace and -frontier require -optimize")
	}

	sched, err := chaos.Parse(*chaosSpec)
	if err != nil {
		return err
	}

	src, err := readSource(*file)
	if err != nil {
		return err
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return err
	}
	mt, err := cloud.TypeByName(*machine)
	if err != nil {
		return err
	}
	cluster, err := cloud.NewCluster(mt, *nodes, *slots)
	if err != nil {
		return err
	}
	cfg := plan.Config{TileSize: *tile, Densities: map[string]float64{}}
	for _, in := range prog.Inputs {
		if in.Sparse {
			cfg.Densities[in.Name] = *density
		}
	}

	sess := core.NewSession(*seed)
	if *dot {
		pl, err := sess.Compile(prog, cfg)
		if err != nil {
			return err
		}
		pl.AutoSplit(cluster.TotalSlots())
		fmt.Print(pl.ToDOT())
		return nil
	}
	if *showPlan {
		pl, err := sess.Compile(prog, cfg)
		if err != nil {
			return err
		}
		fmt.Print(pl)
		fmt.Println()
	}

	// With -optimize, search the deployment space first and execute what
	// the optimizer chose instead of the -machine/-nodes/-slots cluster.
	var (
		dep *opt.Deployment
		st  *opt.SearchTrace
	)
	if *optimize {
		if *deadline > 0 && *budget > 0 {
			return fmt.Errorf("specify at most one of -deadline and -budget")
		}
		if *deadline <= 0 && *budget <= 0 {
			// A loose default deadline: effectively "cheapest overall".
			*deadline = 24 * 3600
		}
		st = opt.NewSearchTrace()
		req := opt.Request{
			Program:       prog,
			PlanCfg:       cfg,
			DeadlineSec:   *deadline,
			BudgetDollars: *budget,
			Confidence:    *confidence,
			MaxNodes:      *maxNodes,
			Search:        st,
		}
		var sres *opt.Result
		if *deadline > 0 {
			sres, err = sess.Optimizer().MinCostForDeadline(req)
		} else {
			sres, err = sess.Optimizer().MinTimeForBudget(req)
		}
		if err != nil {
			return err
		}
		dep = sres.Best
		if !*asJSON {
			verdict := "optimizer chose"
			if !sres.Met {
				verdict = "constraint NOT satisfiable; closest is"
			}
			fmt.Printf("%s: %s\n\n", verdict, dep)
		}
		if *explain {
			if err := st.Explain(os.Stdout, 5); err != nil {
				return err
			}
			fmt.Println()
		}
		if *searchTrace != "" {
			write := st.WriteJSON
			if strings.HasSuffix(*searchTrace, ".csv") {
				write = st.WriteCSV
			}
			if err := writeTo(*searchTrace, write); err != nil {
				return err
			}
		}
		if *frontierOut != "" {
			if err := writeTo(*frontierOut, st.WriteFrontierSVG); err != nil {
				return err
			}
		}
		cluster = dep.Cluster
	}

	opts := core.ExecOptions{Cluster: cluster, Workers: *workers, KernelParallelism: *kernelPar, Chaos: sched, MaxTaskRetries: *maxRetries}
	if *resume && *checkpoint <= 0 {
		return fmt.Errorf("-resume requires -checkpoint N (the cadence is part of the checkpoint identity)")
	}
	if *checkpoint > 0 {
		if *stateDir == "" {
			return fmt.Errorf("-checkpoint/-resume require -state-dir")
		}
		cs, err := ckpt.NewDirStore(*stateDir)
		if err != nil {
			return err
		}
		opts.CheckpointEvery = *checkpoint
		opts.CheckpointStore = cs
		opts.Resume = *resume
	}
	if *materialize {
		opts.Inputs = core.RandomInputs(prog, cfg, *seed)
	}
	var tr *obs.Trace
	if *traceOut != "" || *metricsOut != "" || *critpath {
		tr = obs.NewTrace()
		opts.Recorder = tr
	}
	var res *core.ExecResult
	if dep != nil {
		res, err = sess.RunDeployment(prog, cfg, dep, opts)
	} else {
		res, err = sess.Run(prog, cfg, opts)
	}
	if err != nil {
		return err
	}

	if *timelineOut != "" {
		if err := writeTo(*timelineOut, res.Metrics.TimelineCSV); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, tr.WriteChrome); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, func(w io.Writer) error {
			reg := obs.Snapshot(tr)
			if st != nil {
				// Fold the optimizer's search counters into the same snapshot.
				st.MetricsInto(reg)
			}
			return reg.Write(w)
		}); err != nil {
			return err
		}
	}
	if *critpath {
		cp, err := tr.CriticalPath()
		if err != nil {
			return err
		}
		if err := cp.Write(os.Stdout); err != nil {
			return err
		}
	}

	if *asJSON {
		return emitJSON(cluster, res)
	}

	fmt.Printf("cluster: %s\n", cluster)
	fmt.Printf("jobs:\n")
	for _, j := range res.Metrics.Jobs {
		fmt.Printf("  %-24s %-4s %4d tasks  %8.1fs\n", j.Name, j.Kind, j.Tasks, j.Seconds())
	}
	fmt.Printf("total time: %.1fs (%.2fh)\n", res.Metrics.TotalSeconds, res.Metrics.TotalSeconds/3600)
	fmt.Printf("total work: %.1f Gflops, %.2f GB read, %.2f GB written\n",
		float64(res.Metrics.TotalFlops)/1e9,
		float64(res.Metrics.TotalReadBytes)/1e9,
		float64(res.Metrics.TotalWriteBytes)/1e9)
	if m := res.Metrics; m.NodeCrashes > 0 || m.TotalRetries > 0 {
		fmt.Printf("recovery: %d node crash(es), %d task retries, %.1fs lost, %.2f GB re-replicated, %d blocks lost\n",
			m.NodeCrashes, m.TotalRetries, m.RecoverySeconds,
			float64(m.RereplicatedBytes)/1e9, m.BlocksLost)
	}
	if m := res.Metrics; m.Checkpoints > 0 || m.ResumedFromStmt > 0 {
		fmt.Printf("checkpoint: %d written (%.2f GB, %.1fs overhead)", m.Checkpoints,
			float64(m.CheckpointBytes)/1e9, m.CheckpointSeconds)
		if m.ResumedFromStmt > 0 {
			fmt.Printf("; resumed from stmt %d, %d jobs skipped", m.ResumedFromStmt, m.ResumeSkippedJobs)
		}
		fmt.Println()
	}
	fmt.Printf("bill: $%.2f\n", res.CostDollars)
	for _, o := range server.DigestOutputs(res.Outputs) {
		fmt.Printf("output %s: %dx%d, frobenius %.4g, sha256 %s\n",
			o.Name, o.Rows, o.Cols, o.Frobenius, o.SHA256)
	}
	return nil
}

// emitJSON writes a machine-readable run report to stdout.
func emitJSON(cluster cloud.Cluster, res *core.ExecResult) error {
	type jobOut struct {
		Name    string  `json:"name"`
		Kind    string  `json:"kind"`
		Tasks   int     `json:"tasks"`
		Seconds float64 `json:"seconds"`
	}
	report := struct {
		Cluster      string  `json:"cluster"`
		Machine      string  `json:"machine"`
		Nodes        int     `json:"nodes"`
		Slots        int     `json:"slots"`
		TotalSeconds float64 `json:"total_seconds"`
		CostDollars  float64 `json:"cost_dollars"`
		TotalGflops  float64 `json:"total_gflops"`
		ReadGB       float64 `json:"read_gb"`
		WriteGB      float64 `json:"write_gb"`
		NodeCrashes  int     `json:"node_crashes,omitempty"`
		Retries      int     `json:"retries,omitempty"`
		RecoverySec  float64 `json:"recovery_seconds,omitempty"`
		RereplGB     float64 `json:"rereplicated_gb,omitempty"`
		Checkpoints  int     `json:"checkpoints,omitempty"`
		CheckpointGB float64 `json:"checkpoint_gb,omitempty"`
		ResumedStmt  int     `json:"resumed_from_stmt,omitempty"`

		// Outputs carries sorted name/shape/digest records for
		// materialized runs; digests match cumulond's, so resumed,
		// rerun and server-side results can be diffed directly.
		Outputs []server.OutputInfo `json:"outputs,omitempty"`
		Jobs    []jobOut            `json:"jobs"`
	}{
		Cluster:      cluster.String(),
		Machine:      cluster.Type.Name,
		Nodes:        cluster.Nodes,
		Slots:        cluster.Slots,
		TotalSeconds: res.Metrics.TotalSeconds,
		CostDollars:  res.CostDollars,
		TotalGflops:  float64(res.Metrics.TotalFlops) / 1e9,
		ReadGB:       float64(res.Metrics.TotalReadBytes) / 1e9,
		WriteGB:      float64(res.Metrics.TotalWriteBytes) / 1e9,
		NodeCrashes:  res.Metrics.NodeCrashes,
		Retries:      res.Metrics.TotalRetries,
		RecoverySec:  res.Metrics.RecoverySeconds,
		RereplGB:     float64(res.Metrics.RereplicatedBytes) / 1e9,
		Checkpoints:  res.Metrics.Checkpoints,
		CheckpointGB: float64(res.Metrics.CheckpointBytes) / 1e9,
		ResumedStmt:  res.Metrics.ResumedFromStmt,
		Outputs:      server.DigestOutputs(res.Outputs),
	}
	for _, j := range res.Metrics.Jobs {
		report.Jobs = append(report.Jobs, jobOut{Name: j.Name, Kind: j.Kind, Tasks: j.Tasks, Seconds: j.Seconds()})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// writeTo writes with fn to the named file, or to stdout for "-".
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readSource(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
