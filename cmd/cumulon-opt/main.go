// Command cumulon-opt runs Cumulon's cost-based deployment optimizer on a
// matrix program: given a deadline (seconds) or a budget (dollars), it
// searches machine types, cluster sizes, slot configurations and physical
// plan parameters, and prints the recommended deployment plus the
// time/cost Pareto frontier.
//
// Usage:
//
//	cumulon-opt -f prog.cm -deadline 3600
//	cumulon-opt -f prog.cm -budget 25 -max-nodes 32
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cumulon/internal/chaos"
	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/linalg/tune"
	"cumulon/internal/opt"
	"cumulon/internal/plan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cumulon-opt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cumulon-opt", flag.ContinueOnError)
	file := fs.String("f", "", "program file (default: stdin)")
	deadline := fs.Float64("deadline", 0, "deadline in seconds (minimize cost)")
	budget := fs.Float64("budget", 0, "budget in dollars (minimize time)")
	tile := fs.Int("tile", 2048, "tile size in elements")
	density := fs.Float64("density", 0.05, "assumed density of sparse inputs")
	maxNodes := fs.Int("max-nodes", 64, "largest cluster size to consider")
	seed := fs.Int64("seed", 42, "calibration seed")
	confidence := fs.Float64("confidence", 0,
		"promise the deadline at this probability (e.g. 0.95) instead of in expectation")
	showFrontier := fs.Bool("frontier", true, "print the time/cost Pareto frontier")
	explain := fs.Bool("explain", false,
		"print an EXPLAIN report of the search (winner vs nearest rivals, per-term deltas, prune reasons)")
	searchTrace := fs.String("searchtrace", "",
		"write the candidate-level search trace to this file (JSON, or CSV when the path ends in .csv; \"-\" for stdout)")
	frontierSVG := fs.String("frontier-svg", "",
		"write the time/cost Pareto frontier as SVG to this file (\"-\" for stdout)")
	dumpRewrites := fs.Bool("dump-rewrites", false,
		"report what the cross-statement CSE/hoisting pass eliminated from the program (also counted in the search trace as cse_chains / cse_flops_saved)")
	chaosSpec := fs.String("chaos", "",
		"stress-test the recommendation: execute the chosen deployment under this fault schedule (e.g. \"seed=7,kill=0@120,taskfault=0.02\") and report the slowdown against the prediction")
	kernelProfile := fs.String("kernel-profile", "",
		"kernel autotuner profile (JSON from cumulon-tune); its measured speedup scales each machine's effective throughput during calibration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if (*deadline <= 0) == (*budget <= 0) {
		return fmt.Errorf("specify exactly one of -deadline or -budget")
	}
	// Validate the chaos spec before the (expensive) search so a typo
	// fails fast.
	if _, err := chaos.Parse(*chaosSpec); err != nil {
		return err
	}
	src, err := readSource(*file)
	if err != nil {
		return err
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return err
	}
	cfg := plan.Config{TileSize: *tile, Densities: map[string]float64{}}
	for _, in := range prog.Inputs {
		if in.Sparse {
			cfg.Densities[in.Name] = *density
		}
	}
	st := opt.NewSearchTrace()
	req := opt.Request{
		Program:       prog,
		PlanCfg:       cfg,
		DeadlineSec:   *deadline,
		BudgetDollars: *budget,
		MaxNodes:      *maxNodes,
		Confidence:    *confidence,
		Search:        st,
	}
	o := opt.New(*seed)
	if *kernelProfile != "" {
		prof, err := tune.LoadFile(*kernelProfile)
		if err != nil {
			return err
		}
		o.UseKernelProfile(prof)
		fmt.Printf("kernel profile: %s (speedup %.2fx, best %s w=%d)\n",
			*kernelProfile, prof.Speedup(), shapeString(prof.Best.Shape), prof.Best.Workers)
	}
	var res *opt.Result
	if *deadline > 0 {
		res, err = o.MinCostForDeadline(req)
	} else {
		res, err = o.MinTimeForBudget(req)
	}
	if err != nil {
		return err
	}
	if !res.Met {
		fmt.Println("constraint NOT satisfiable; closest deployment:")
	} else {
		fmt.Println("recommended deployment:")
	}
	b := res.Best
	fmt.Printf("  %s\n", b.Cluster)
	if *confidence > 0 {
		fmt.Printf("  time at %.0f%% confidence: %.1fs (%.2fh)\n", *confidence*100, b.PredSeconds, b.PredSeconds/3600)
	} else {
		fmt.Printf("  predicted time: %.1fs (%.2fh)\n", b.PredSeconds, b.PredSeconds/3600)
	}
	fmt.Printf("  billed cost:    $%.2f (linear $%.2f)\n", b.Cost, b.CostLinear)
	fmt.Printf("  splits:\n")
	pl, err := plan.Compile(prog, cfg)
	if err != nil {
		return err
	}
	for _, j := range pl.Jobs {
		fmt.Printf("    job %d %-24s %v\n", j.ID, j.Name, b.Splits[j.ID])
	}
	if *dumpRewrites {
		fmt.Println("\nrewrites:")
		if r := pl.Rewrites; r != nil {
			for _, e := range r.Entries {
				fmt.Printf("  cse %s: %s (%d occurrences, %d flops/eval saved)\n",
					e.Temp, e.Expr, e.Occurrences, e.FlopsSaved)
			}
			fmt.Printf("  total: %d chain(s) eliminated, %d flops/eval saved (search counters: cse_chains=%d cse_flops_saved=%d)\n",
				r.Chains(), r.FlopsSaved(),
				st.CounterValue(opt.CounterCSEChains), st.CounterValue(opt.CounterCSEFlops))
		} else {
			fmt.Println("  none (no repeated matrix-product chains)")
		}
	}
	if *showFrontier {
		fmt.Printf("\ntime/cost frontier (%d candidates evaluated):\n", len(res.Candidates))
		fmt.Printf("  %-26s %12s %10s\n", "deployment", "time (s)", "cost ($)")
		for _, d := range res.Frontier {
			fmt.Printf("  %-26s %12.1f %10.2f\n", d.Cluster, d.PredSeconds, d.Cost)
		}
	}
	if *explain {
		fmt.Println()
		if err := st.Explain(os.Stdout, 5); err != nil {
			return err
		}
	}
	if *searchTrace != "" {
		write := st.WriteJSON
		if strings.HasSuffix(*searchTrace, ".csv") {
			write = st.WriteCSV
		}
		if err := writeTo(*searchTrace, write); err != nil {
			return err
		}
	}
	if *frontierSVG != "" {
		if err := writeTo(*frontierSVG, st.WriteFrontierSVG); err != nil {
			return err
		}
	}
	if *chaosSpec != "" {
		sched, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return err
		}
		sess := core.NewSession(*seed)
		vres, err := sess.RunDeployment(prog, cfg, b, core.ExecOptions{Chaos: sched})
		if err != nil {
			return fmt.Errorf("chaos validation run: %w", err)
		}
		m := vres.Metrics
		fmt.Printf("\nchaos validation (%s):\n", sched)
		fmt.Printf("  actual time:  %.1fs (predicted %.1fs, %.2fx)\n",
			m.TotalSeconds, b.PredSeconds, m.TotalSeconds/b.PredSeconds)
		fmt.Printf("  recovery:     %d node crash(es), %d task retries, %.1fs lost\n",
			m.NodeCrashes, m.TotalRetries, m.RecoverySeconds)
		fmt.Printf("  re-replicated: %.2f GB, %d blocks lost\n",
			float64(m.RereplicatedBytes)/1e9, m.BlocksLost)
		fmt.Printf("  billed cost:  $%.2f\n", vres.CostDollars)
	}
	return nil
}

// writeTo writes with fn to the named file, or to stdout for "-".
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readSource(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func shapeString(s linalg.BlockShape) string {
	return fmt.Sprintf("mc=%d kc=%d nc=%d", s.MC, s.KC, s.NC)
}
