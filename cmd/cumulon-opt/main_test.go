package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProg(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.cm")
	src := "input A 8 8\ninput B 8 8\nC = A * B\noutput C\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunBadInputs: malformed flags, constraint combinations and chaos
// specs must return a one-line error, never panic and never succeed.
func TestRunBadInputs(t *testing.T) {
	prog := writeProg(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{"-deadline", "60", prog}, "unexpected arguments"},
		{"no constraint", []string{"-f", prog}, "exactly one"},
		{"both constraints", []string{"-f", prog, "-deadline", "60", "-budget", "5"}, "exactly one"},
		{"missing file", []string{"-deadline", "60", "-f", filepath.Join(t.TempDir(), "absent.cm")}, "no such file"},
		{"chaos gibberish", []string{"-f", prog, "-deadline", "60", "-chaos", "gibberish"}, "chaos"},
		{"chaos bad kill", []string{"-f", prog, "-deadline", "60", "-chaos", "kill=x@y"}, "chaos"},
		{"chaos bad rate", []string{"-f", prog, "-deadline", "60", "-chaos", "readfault=-1"}, "chaos"},
		{"non-numeric deadline", []string{"-f", prog, "-deadline", "soon"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want substring %q", tc.args, err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}
