// Command cumulon-tune benchmarks the blocked-GEMM kernel tier on the
// current host, sweeping cache-blocking shapes (mc/kc/nc) and parallel
// worker counts, and writes the resulting profile as JSON. The profile
// has two consumers: cumulon/cumulon-bench install it into the kernels
// (best shape + worker bound), and cumulon-opt feeds its measured
// speedup into deployment-model calibration (-kernel-profile).
//
// Usage:
//
//	cumulon-tune -out profile.json
//	cumulon-tune -quick -size 256 -out -        # fast sweep to stdout
//	cumulon-opt -f prog.cm -deadline 3600 -kernel-profile profile.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"cumulon/internal/linalg"
	"cumulon/internal/linalg/tune"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cumulon-tune:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cumulon-tune", flag.ContinueOnError)
	size := fs.Int("size", 384, "square GEMM size each point is measured at")
	reps := fs.Int("reps", 3, "timed repetitions per point (best kept)")
	maxWorkers := fs.Int("max-workers", runtime.GOMAXPROCS(0), "largest worker count to sweep")
	seed := fs.Int64("seed", 1, "input data seed")
	out := fs.String("out", "", "write the profile JSON here (\"-\" for stdout; default: no file, table only)")
	quick := fs.Bool("quick", false, "tiny shape grid (defaults only): smoke tests and CI")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	o := tune.Options{Size: *size, Reps: *reps, MaxWorkers: *maxWorkers, Seed: *seed}
	if *quick {
		d := linalg.BlockDefaults()
		o.Shapes = []linalg.BlockShape{d, {MC: d.MC, KC: d.KC / 2, NC: d.NC / 2}}
	}
	prof, err := tune.Sweep(o)
	if err != nil {
		return err
	}

	fmt.Printf("host: GOMAXPROCS=%d, gemm %dx%dx%d, best of %d reps\n\n",
		prof.GoMaxProcs, prof.Size, prof.Size, prof.Size, prof.Reps)
	fmt.Printf("  %-8s %-8s %-8s %-8s %12s\n", "mc", "kc", "nc", "workers", "MFLOP/s")
	for _, pt := range prof.Points {
		marker := ""
		if pt == prof.Best {
			marker = "  <- best"
		}
		fmt.Printf("  %-8d %-8d %-8d %-8d %12.1f%s\n",
			pt.Shape.MC, pt.Shape.KC, pt.Shape.NC, pt.Workers, pt.MFlops, marker)
	}
	fmt.Printf("\nbest: mc=%d kc=%d nc=%d workers=%d at %.1f MFLOP/s (%.2fx over sequential %.1f)\n",
		prof.Best.Shape.MC, prof.Best.Shape.KC, prof.Best.Shape.NC,
		prof.Best.Workers, prof.Best.MFlops, prof.Speedup(), prof.Baseline.MFlops)

	switch *out {
	case "":
	case "-":
		fmt.Println()
		if err := prof.WriteJSON(os.Stdout); err != nil {
			return err
		}
	default:
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := prof.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("profile written to %s\n", *out)
	}
	return nil
}
