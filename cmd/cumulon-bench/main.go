// Command cumulon-bench regenerates the paper's evaluation tables and
// figures (experiments E01..E12; see DESIGN.md for the mapping).
//
// Usage:
//
//	cumulon-bench              # run every experiment
//	cumulon-bench -exp E04     # run one experiment
//	cumulon-bench -seed 7      # change the reproduction seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cumulon/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	seed := flag.Int64("seed", 42, "reproduction seed")
	quiet := flag.Bool("q", false, "suppress per-experiment timing")
	format := flag.String("format", "text", "table format: text, markdown, or csv")
	workers := flag.Int("workers", 0, "parallel compute workers for materialized runs")
	flag.Parse()

	s := bench.NewSuite(*seed)
	s.Workers = *workers
	run := func(id string) error {
		t0 := time.Now()
		if _, err := s.RunOneFormat(id, os.Stdout, *format); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("[%s took %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
		}
		return nil
	}
	if *exp != "" {
		if err := run(*exp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, e := range bench.All() {
		if err := run(e.ID); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
