// Command cumulon-bench regenerates the paper's evaluation tables and
// figures (experiments E01..E12; see DESIGN.md for the mapping).
//
// Usage:
//
//	cumulon-bench              # run every experiment
//	cumulon-bench -exp E04     # run one experiment
//	cumulon-bench -seed 7      # change the reproduction seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cumulon/internal/bench"
	"cumulon/internal/obs"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	seed := flag.Int64("seed", 42, "reproduction seed")
	quiet := flag.Bool("q", false, "suppress per-experiment timing")
	format := flag.String("format", "text", "table format: text, markdown, or csv")
	workers := flag.Int("workers", 0, "parallel compute workers for materialized runs")
	traceOut := flag.String("trace", "",
		"write a Chrome trace-event JSON of the benchmarked engine runs to this file")
	metricsOut := flag.String("metrics", "",
		"write a Prometheus-style text metrics snapshot of the benchmarked runs to this file (\"-\" for stdout)")
	flag.Parse()

	s := bench.NewSuite(*seed)
	s.Workers = *workers
	var tr *obs.Trace
	if *traceOut != "" || *metricsOut != "" {
		tr = obs.NewTrace()
		s.Recorder = tr
	}
	run := func(id string) error {
		t0 := time.Now()
		if _, err := s.RunOneFormat(id, os.Stdout, *format); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("[%s took %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
		}
		return nil
	}
	if *exp != "" {
		if err := run(*exp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		for _, e := range bench.All() {
			if err := run(e.ID); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if tr != nil {
		if err := writeObs(tr, *traceOut, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeObs exports the trace recorded across the benchmarked runs.
func writeObs(tr *obs.Trace, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath == "-" {
		return obs.Snapshot(tr).Write(os.Stdout)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := obs.Snapshot(tr).Write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
