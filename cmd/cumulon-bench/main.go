// Command cumulon-bench regenerates the paper's evaluation tables and
// figures (experiments E01..E12; see DESIGN.md for the mapping).
//
// Usage:
//
//	cumulon-bench              # run every experiment
//	cumulon-bench -exp E04     # run one experiment
//	cumulon-bench -seed 7      # change the reproduction seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cumulon/internal/bench"
	"cumulon/internal/chaos"
	"cumulon/internal/linalg"
	"cumulon/internal/linalg/tune"
	"cumulon/internal/obs"
	"cumulon/internal/opt"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	seed := flag.Int64("seed", 42, "reproduction seed")
	quiet := flag.Bool("q", false, "suppress per-experiment timing")
	format := flag.String("format", "text", "table format: text, markdown, or csv")
	workers := flag.Int("workers", 0, "parallel compute workers for materialized runs")
	kernelPar := flag.Int("kernel-par", 0,
		"worker fan-out inside a single blocked GEMM (0 = GOMAXPROCS; results are identical)")
	autotune := flag.Bool("autotune", false,
		"sweep blocking shapes and worker counts on this host (internal/linalg/tune) and install the best before running experiments")
	traceOut := flag.String("trace", "",
		"write a Chrome trace-event JSON of the benchmarked engine runs to this file")
	metricsOut := flag.String("metrics", "",
		"write a Prometheus-style text metrics snapshot of the benchmarked runs to this file (\"-\" for stdout)")
	searchOut := flag.String("searchtrace", "",
		"write the optimizer search trace of E10-E12 to this file (JSON, or CSV when the path ends in .csv; \"-\" for stdout)")
	chaosSpec := flag.String("chaos", "",
		"inject a deterministic fault schedule into every engine run, e.g. \"seed=7,kill=3@120,taskfault=0.02\"")
	flag.Parse()

	sched, err := chaos.Parse(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *kernelPar > 0 {
		linalg.SetParallelism(*kernelPar)
	}
	if *autotune {
		prof, err := tune.Sweep(tune.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := prof.Apply(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("autotune: best mc=%d kc=%d nc=%d workers=%d (%.1f MFLOP/s, %.2fx over sequential)\n\n",
			prof.Best.Shape.MC, prof.Best.Shape.KC, prof.Best.Shape.NC,
			prof.Best.Workers, prof.Best.MFlops, prof.Speedup())
	}

	s := bench.NewSuite(*seed)
	s.Workers = *workers
	s.Chaos = sched
	var tr *obs.Trace
	if *traceOut != "" || *metricsOut != "" {
		tr = obs.NewTrace()
		s.Recorder = tr
	}
	var st *opt.SearchTrace
	if *searchOut != "" || *metricsOut != "" {
		st = opt.NewSearchTrace()
		s.Search = st
	}
	run := func(id string) error {
		t0 := time.Now()
		if _, err := s.RunOneFormat(id, os.Stdout, *format); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("[%s took %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
		}
		return nil
	}
	if *exp != "" {
		if err := run(*exp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		for _, e := range bench.All() {
			if err := run(e.ID); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if tr != nil || st != nil {
		if err := writeObs(tr, st, *traceOut, *metricsOut, *searchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeObs exports the traces recorded across the benchmarked runs: the
// engine spans, the optimizer search trace, and a combined metrics
// snapshot folding the search counters in with the engine counters.
func writeObs(tr *obs.Trace, st *opt.SearchTrace, tracePath, metricsPath, searchPath string) error {
	if tracePath != "" {
		if err := writeFile(tracePath, tr.WriteChrome); err != nil {
			return err
		}
	}
	if searchPath != "" {
		write := st.WriteJSON
		if strings.HasSuffix(searchPath, ".csv") {
			write = st.WriteCSV
		}
		if err := writeFile(searchPath, write); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		return writeFile(metricsPath, func(w io.Writer) error {
			reg := obs.Snapshot(tr)
			if st != nil {
				st.MetricsInto(reg)
			}
			return reg.Write(w)
		})
	}
	return nil
}

// writeFile writes with fn to the named file, or to stdout for "-".
func writeFile(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
