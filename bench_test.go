package cumulon

// One testing.B benchmark per experiment: each regenerates the
// corresponding table/figure of the paper's evaluation (see DESIGN.md for
// the mapping) and reports its headline number as a custom metric.
//
//	go test -bench=. -benchmem
//
// The qualitative claims behind each experiment (who wins, by what
// factor, where the optima fall) are asserted by TestExperimentShapes in
// internal/bench.

import (
	"io"
	"testing"

	"cumulon/internal/bench"
)

// runExp executes one experiment b.N times, reporting a chosen check
// value as a benchmark metric.
func runExp(b *testing.B, id string, metric string, unit string) {
	b.Helper()
	s := bench.NewSuite(42)
	for i := 0; i < b.N; i++ {
		res, err := s.RunOne(id, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if metric != "" {
			v, ok := res.Checks[metric]
			if !ok {
				b.Fatalf("experiment %s has no check %q (have %v)", id, metric, res.Checks)
			}
			b.ReportMetric(v, unit)
		}
	}
}

func BenchmarkE01MachineCatalog(b *testing.B) { runExp(b, "E01", "types", "types") }

func BenchmarkE02WorkloadSuite(b *testing.B) {
	runExp(b, "E02", "jobs:gnmf-80000x40000x10-i1", "jobs")
}

func BenchmarkE03MatMulVsMR(b *testing.B) { runExp(b, "E03", "speedup:32768", "x-speedup") }

func BenchmarkE04GNMFVsMR(b *testing.B) { runExp(b, "E04", "speedup:40000", "x-speedup") }

func BenchmarkE05SplitSweep(b *testing.B) { runExp(b, "E05", "skinny:bestCk", "best-ck") }

func BenchmarkE06SlotSweep(b *testing.B) { runExp(b, "E06", "bestSlots:matmul", "best-slots") }

func BenchmarkE07TaskModelAccuracy(b *testing.B) { runExp(b, "E07", "mre:m1.large", "rel-err") }

func BenchmarkE08SimAccuracy(b *testing.B) { runExp(b, "E08", "worst", "rel-err") }

func BenchmarkE09Speedup(b *testing.B) { runExp(b, "E09", "rsvdSpeedup:32", "x-speedup") }

func BenchmarkE10CostDeadline(b *testing.B) { runExp(b, "E10", "cheapest", "dollars") }

func BenchmarkE11MachineChoice(b *testing.B) { runExp(b, "E11", "io:1.05:xlarge", "picked-xlarge") }

func BenchmarkE12OptimizerValue(b *testing.B) {
	runExp(b, "E12", "saving:rsvd-65536x16384-k256-p1", "x-saving")
}

func BenchmarkE13ReorderAblation(b *testing.B) {
	runExp(b, "E13", "speedup:50000x64x50000x16", "x-speedup")
}

func BenchmarkE14FusionAblation(b *testing.B) { runExp(b, "E14", "speedup:epilogue", "x-speedup") }

func BenchmarkE15OverlapAblation(b *testing.B) { runExp(b, "E15", "speedup:two-branch", "x-speedup") }

func BenchmarkE16MaskedMultiply(b *testing.B) { runExp(b, "E16", "speedup:0.01", "x-speedup") }

func BenchmarkE17SpotBidding(b *testing.B) { runExp(b, "E17", "bestCost", "dollars") }

func BenchmarkE18Locality(b *testing.B) { runExp(b, "E18", "local:r6", "local-frac") }

func BenchmarkE19Speculation(b *testing.B) { runExp(b, "E19", "improvement:0.6", "x-speedup") }

func BenchmarkE20FaultRecovery(b *testing.B) { runExp(b, "E20", "slowdown:4", "x-slowdown") }

func BenchmarkE21Distribution(b *testing.B) { runExp(b, "E21", "p95rel", "rel-err") }

func BenchmarkE22TileCache(b *testing.B) { runExp(b, "E22", "speedup:0.6", "x-speedup") }
