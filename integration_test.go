package cumulon

// Differential integration tests: random shape-valid programs executed
// through every stack — the reference interpreter, the Cumulon engine
// under a matrix of configurations (replication, racks, overlap,
// speculation, fault injection), and the MapReduce baseline — must all
// agree on values, while virtual-mode runs of the same plans must agree
// with materialized runs on work accounting.

import (
	"testing"

	"cumulon/internal/chaos"
	"cumulon/internal/cloud"
	"cumulon/internal/compute"
	"cumulon/internal/exec"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/mapred"
	"cumulon/internal/plan"
	"cumulon/internal/testutil"
)

func integCluster(t *testing.T, nodes, slots int) cloud.Cluster {
	t.Helper()
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// engineVariant describes one engine configuration under test.
type engineVariant struct {
	name string
	cfg  func(cl cloud.Cluster) exec.Config
}

func variants(t *testing.T) []engineVariant {
	return []engineVariant{
		{"default", func(cl cloud.Cluster) exec.Config {
			return exec.Config{Cluster: cl, Materialize: true, Seed: 1}
		}},
		{"replication1", func(cl cloud.Cluster) exec.Config {
			return exec.Config{Cluster: cl, Materialize: true, Seed: 2, Replication: 1}
		}},
		{"racked", func(cl cloud.Cluster) exec.Config {
			return exec.Config{Cluster: cl, Materialize: true, Seed: 3, RackSize: 2, CrossRackPenalty: exec.Float(3)}
		}},
		{"overlap", func(cl cloud.Cluster) exec.Config {
			return exec.Config{Cluster: cl, Materialize: true, Seed: 4, OverlapJobs: true}
		}},
		{"speculation", func(cl cloud.Cluster) exec.Config {
			return exec.Config{Cluster: cl, Materialize: true, Seed: 5, NoiseFactor: 0.5, Speculation: true}
		}},
		{"faulty", func(cl cloud.Cluster) exec.Config {
			return exec.Config{Cluster: cl, Materialize: true, Seed: 6,
				Chaos: &chaos.Schedule{Seed: 6, TaskFaultProb: 0.1, ReadFaultProb: 0.03}}
		}},
	}
}

// TestDifferentialEngineConfigurations runs random programs through every
// engine variant and checks values against the interpreter.
func TestDifferentialEngineConfigurations(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := testutil.NewGen(seed)
		prog := g.Program("diff", 2, 3)
		data := g.InputData(seed * 31)
		want, err := lang.Interpret(prog, data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range variants(t) {
			pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			cl := integCluster(t, 4, 2)
			pl.AutoSplit(cl.TotalSlots())
			e, err := exec.New(v.cfg(cl))
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			for _, in := range pl.Inputs {
				if err := e.LoadDense(in, data[in.Name]); err != nil {
					t.Fatalf("seed %d %s: %v", seed, v.name, err)
				}
			}
			if _, err := e.Run(pl); err != nil {
				t.Fatalf("seed %d %s: run: %v", seed, v.name, err)
			}
			for name, meta := range pl.Outputs {
				got, err := e.FetchOutput(meta)
				if err != nil {
					t.Fatalf("seed %d %s: fetch: %v", seed, v.name, err)
				}
				if !got.AlmostEqual(want[name], 1e-8) {
					t.Fatalf("seed %d %s: output %s diverges (maxdiff %g)\n%s",
						seed, v.name, name, got.MaxAbsDiff(want[name]), prog)
				}
			}
		}
	}
}

// TestDifferentialMapReduceAgreement checks Cumulon and the MR baseline
// produce identical values on the same random programs.
func TestDifferentialMapReduceAgreement(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		g := testutil.NewGen(seed)
		prog := g.Program("mr", 2, 3)
		data := g.InputData(seed * 17)

		cl := integCluster(t, 3, 2)
		pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		pl.AutoSplit(cl.TotalSlots())
		e, err := exec.New(exec.Config{Cluster: cl, Materialize: true, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range pl.Inputs {
			if err := e.LoadDense(in, data[in.Name]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Run(pl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		mr, err := mapred.New(mapred.Config{Cluster: cl, Materialize: true})
		if err != nil {
			t.Fatal(err)
		}
		_, mrOut, err := mr.Run(prog, nil, data)
		if err != nil {
			t.Fatalf("seed %d: mr: %v", seed, err)
		}
		for name, meta := range pl.Outputs {
			got, err := e.FetchOutput(meta)
			if err != nil {
				t.Fatal(err)
			}
			if !got.AlmostEqual(mrOut[name], 1e-8) {
				t.Fatalf("seed %d: engines disagree on %s (maxdiff %g)",
					seed, name, got.MaxAbsDiff(mrOut[name]))
			}
		}
	}
}

// TestVirtualMatchesMaterializedAccounting runs the same random plans in
// both modes and compares flop and write accounting (reads can differ by
// sparse-estimate rounding, so they get a tolerance).
func TestVirtualMatchesMaterializedAccounting(t *testing.T) {
	for seed := int64(40); seed < 46; seed++ {
		g := testutil.NewGen(seed)
		prog := g.Program("acct", 2, 2)
		data := g.InputData(seed * 11)

		run := func(materialize bool) *exec.RunMetrics {
			pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
			if err != nil {
				t.Fatal(err)
			}
			cl := integCluster(t, 3, 2)
			pl.AutoSplit(cl.TotalSlots())
			e, err := exec.New(exec.Config{Cluster: cl, Materialize: materialize, Seed: 8})
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range pl.Inputs {
				if materialize {
					err = e.LoadDense(in, data[in.Name])
				} else {
					err = e.LoadVirtual(in)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			m, err := e.Run(pl)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		real, virt := run(true), run(false)
		if real.TotalFlops != virt.TotalFlops {
			t.Fatalf("seed %d: flops %d vs %d", seed, real.TotalFlops, virt.TotalFlops)
		}
		if real.TotalWriteBytes != virt.TotalWriteBytes {
			t.Fatalf("seed %d: writes %d vs %d", seed, real.TotalWriteBytes, virt.TotalWriteBytes)
		}
		if len(real.Tasks) != len(virt.Tasks) {
			t.Fatalf("seed %d: task counts %d vs %d", seed, len(real.Tasks), len(virt.Tasks))
		}
	}
}

// TestEndToEndGNMFAllFeatures runs GNMF with every engine feature enabled
// at once and verifies convergence behaviour survives the full stack.
func TestEndToEndGNMFAllFeatures(t *testing.T) {
	src := `
input V 24 18 sparse
input W 24 3
input H 3 18
for i in 1:4 {
  H = H .* (W' * V) ./ ((W' * W) * H)
  W = W .* (V * H') ./ (W * (H * H'))
}
output W
output H
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.RandomSparseDense(24, 18, 0.5, 1)
	w0 := linalg.RandomDense(24, 3, 2).Map(func(x float64) float64 { return x + 0.1 })
	h0 := linalg.RandomDense(3, 18, 3).Map(func(x float64) float64 { return x + 0.1 })
	data := map[string]*linalg.Dense{"V": v, "W": w0, "H": h0}

	pl, err := plan.Compile(prog, plan.Config{TileSize: 4, Densities: map[string]float64{"V": 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	cl := integCluster(t, 4, 2)
	pl.AutoSplit(cl.TotalSlots())
	e, err := exec.New(exec.Config{
		Cluster: cl, Materialize: true, Seed: 13,
		RackSize: 2, NoiseFactor: 0.3, Speculation: true, OverlapJobs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pl.Inputs {
		if err := e.LoadDense(in, data[in.Name]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(pl); err != nil {
		t.Fatal(err)
	}
	wOut, err := e.FetchOutput(pl.Outputs["W"])
	if err != nil {
		t.Fatal(err)
	}
	hOut, err := e.FetchOutput(pl.Outputs["H"])
	if err != nil {
		t.Fatal(err)
	}
	before := v.Sub(w0.Mul(h0)).FrobeniusNorm()
	after := v.Sub(wOut.Mul(hOut)).FrobeniusNorm()
	if after >= before {
		t.Fatalf("GNMF did not converge through the full stack: %g -> %g", before, after)
	}
	// And the values still match the interpreter exactly.
	want, err := lang.Interpret(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if !wOut.AlmostEqual(want["W"], 1e-8) || !hOut.AlmostEqual(want["H"], 1e-8) {
		t.Fatal("full-stack GNMF diverges from the interpreter")
	}
}

// TestGNMFWorkerCountInvariance runs the full GNMF loop materialized with
// workers=1 and with an 8-wide worker pool and asserts the runs are
// indistinguishable: same virtual completion time, same output norms. The
// pool is injected via exec.Config.Backend so the test exercises real
// multi-goroutine compute even on hosts where GOMAXPROCS would cap
// Config.Workers back to 1.
func TestGNMFWorkerCountInvariance(t *testing.T) {
	src := `
input V 24 18 sparse
input W 24 3
input H 3 18
for i in 1:3 {
  H = H .* (W' * V) ./ ((W' * W) * H)
  W = W .* (V * H') ./ (W * (H * H'))
}
output W
output H
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string]*linalg.Dense{
		"V": linalg.RandomSparseDense(24, 18, 0.5, 1),
		"W": linalg.RandomDense(24, 3, 2).Map(func(x float64) float64 { return x + 0.1 }),
		"H": linalg.RandomDense(3, 18, 3).Map(func(x float64) float64 { return x + 0.1 }),
	}
	run := func(be compute.Backend, workers int) (float64, map[string]float64) {
		pl, err := plan.Compile(prog, plan.Config{TileSize: 4, Densities: map[string]float64{"V": 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		cl := integCluster(t, 4, 2)
		pl.AutoSplit(cl.TotalSlots())
		e, err := exec.New(exec.Config{
			Cluster: cl, Materialize: true, Seed: 13,
			RackSize: 2, NoiseFactor: 0.2, Speculation: true,
			CacheFraction: 0.4, Workers: workers, Backend: be,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range pl.Inputs {
			if err := e.LoadDense(in, data[in.Name]); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		norms := map[string]float64{}
		for name, meta := range pl.Outputs {
			d, err := e.FetchOutput(meta)
			if err != nil {
				t.Fatal(err)
			}
			norms[name] = d.FrobeniusNorm()
		}
		return m.TotalSeconds, norms
	}
	seqSecs, seqNorms := run(nil, 1)
	poolSecs, poolNorms := run(compute.NewPool(8), 0)
	if seqSecs != poolSecs {
		t.Fatalf("virtual completion time depends on worker count: %v vs %v", seqSecs, poolSecs)
	}
	for name, sn := range seqNorms {
		if pn := poolNorms[name]; pn != sn {
			t.Fatalf("output %s norm depends on worker count: %v vs %v", name, sn, pn)
		}
	}
}

// Property: dependency-driven overlap never loses to barrier scheduling,
// across random programs and seeds.
func TestOverlapNeverSlower(t *testing.T) {
	for seed := int64(60); seed < 70; seed++ {
		g := testutil.NewGen(seed)
		prog := g.Program("ovl", 3, 3)
		run := func(overlap bool) float64 {
			pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
			if err != nil {
				t.Fatal(err)
			}
			cl := integCluster(t, 4, 2)
			pl.AutoSplit(2) // under-split to leave slack
			e, err := exec.New(exec.Config{Cluster: cl, Seed: 17, OverlapJobs: overlap})
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range pl.Inputs {
				if err := e.LoadVirtual(in); err != nil {
					t.Fatal(err)
				}
			}
			m, err := e.Run(pl)
			if err != nil {
				t.Fatal(err)
			}
			return m.TotalSeconds
		}
		barrier, overlap := run(false), run(true)
		if overlap > barrier*1.001 {
			t.Fatalf("seed %d: overlap (%v) slower than barrier (%v)\n%s",
				seed, overlap, barrier, prog)
		}
	}
}
