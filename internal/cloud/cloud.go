// Package cloud models the Infrastructure-as-a-Service layer Cumulon
// provisions against: a catalog of machine types with compute, disk and
// network characteristics and hourly prices, plus the billing rules of
// 2013-era cloud providers (whole instance-hours).
//
// The catalog mirrors the public 2013 Amazon EC2 generation in *relative*
// terms — compute measured in ECUs, standard vs. high-CPU families, a
// roughly 10x price range — because Cumulon's provisioning decisions depend
// only on the relative speed/price structure of the offering, not on the
// absolute numbers of any particular datacenter.
package cloud

import (
	"fmt"
	"math"
)

// flopsPerECU converts EC2 "compute units" into an effective floating
// point rate for a JVM-era dataflow engine. The absolute value only sets
// the unit of virtual time; all comparisons are ratio-driven.
const flopsPerECU = 2.0e8

// MachineType describes one purchasable instance type.
type MachineType struct {
	Name         string
	ECU          float64 // total compute units (EC2-style)
	Cores        int     // virtual cores; bounds useful CPU parallelism
	MemoryGB     float64
	DiskMBps     float64 // aggregate local-disk bandwidth, MB/s
	NetMBps      float64 // aggregate network bandwidth, MB/s
	PricePerHour float64 // dollars per instance-hour
	StartupSec   float64 // per-task scheduling + process startup overhead
}

// FlopsPerSec returns the machine's total effective flop rate.
func (m MachineType) FlopsPerSec() float64 { return m.ECU * flopsPerECU }

// TaskSeconds returns the virtual wall-clock duration of one task running
// on this machine type when the node is configured with `slots` concurrent
// task slots, given the task's work profile: floating point operations,
// bytes read from local disk, and bytes moved over the network (remote
// reads plus writes, which stream replicas over the network).
//
// Resource sharing follows the standard contention model: CPU is shared
// only once slots exceed cores, while disk and network bandwidth are
// always divided among the node's slots. This is the mechanism that makes
// "slots per node" a real optimization knob (paper: configuration
// settings): CPU-bound jobs want slots ≈ cores or more, I/O-bound jobs
// want fewer slots.
func (m MachineType) TaskSeconds(slots int, flops, localBytes, netBytes int64) float64 {
	startup, cpu, disk, net := m.TaskBreakdown(slots, flops, localBytes, netBytes)
	return startup + cpu + disk + net
}

// TaskBreakdown returns the additive components of TaskSeconds — fixed
// startup, CPU time, local-disk time and network time — so observability
// and the critical-path analyzer can attribute where a task's virtual
// seconds went. TaskSeconds is exactly their sum.
func (m MachineType) TaskBreakdown(slots int, flops, localBytes, netBytes int64) (startup, cpu, disk, net float64) {
	if slots <= 0 {
		panic("cloud: slots must be positive")
	}
	cpuRate := m.FlopsPerSec() / float64(max(slots, m.Cores)) * float64(min(slots, m.Cores)) / float64(slots)
	// cpuRate simplifies to: total/cores per slot when slots <= cores,
	// total/slots per slot when slots > cores.
	diskRate := m.DiskMBps * 1e6 / float64(slots)
	netRate := m.NetMBps * 1e6 / float64(slots)
	startup = m.StartupSec
	if flops > 0 {
		cpu = float64(flops) / cpuRate
	}
	if localBytes > 0 {
		disk = float64(localBytes) / diskRate
	}
	if netBytes > 0 {
		net = float64(netBytes) / netRate
	}
	return startup, cpu, disk, net
}

// Catalog returns the machine-type offering used throughout the
// experiments, in ascending price order.
func Catalog() []MachineType {
	return []MachineType{
		{Name: "m1.small", ECU: 1, Cores: 1, MemoryGB: 1.7, DiskMBps: 60, NetMBps: 40, PricePerHour: 0.060, StartupSec: 3.0},
		{Name: "m1.medium", ECU: 2, Cores: 1, MemoryGB: 3.75, DiskMBps: 80, NetMBps: 60, PricePerHour: 0.120, StartupSec: 2.5},
		{Name: "c1.medium", ECU: 5, Cores: 2, MemoryGB: 1.7, DiskMBps: 80, NetMBps: 60, PricePerHour: 0.145, StartupSec: 2.0},
		{Name: "m1.large", ECU: 4, Cores: 2, MemoryGB: 7.5, DiskMBps: 100, NetMBps: 80, PricePerHour: 0.240, StartupSec: 2.0},
		{Name: "m2.xlarge", ECU: 6.5, Cores: 2, MemoryGB: 17.1, DiskMBps: 100, NetMBps: 80, PricePerHour: 0.410, StartupSec: 2.0},
		{Name: "m1.xlarge", ECU: 8, Cores: 4, MemoryGB: 15, DiskMBps: 120, NetMBps: 100, PricePerHour: 0.480, StartupSec: 2.0},
		{Name: "c1.xlarge", ECU: 20, Cores: 8, MemoryGB: 7, DiskMBps: 160, NetMBps: 100, PricePerHour: 0.580, StartupSec: 2.0},
		{Name: "m2.2xlarge", ECU: 13, Cores: 4, MemoryGB: 34.2, DiskMBps: 120, NetMBps: 100, PricePerHour: 0.820, StartupSec: 2.0},
	}
}

// TypeByName looks a machine type up in the catalog.
func TypeByName(name string) (MachineType, error) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, nil
		}
	}
	return MachineType{}, fmt.Errorf("cloud: unknown machine type %q", name)
}

// Cost returns the dollar cost of running n instances of type m for
// seconds of wall-clock time, billed in whole instance-hours (the 2013
// cloud billing granularity the paper optimizes under). Zero-duration
// clusters cost nothing; any positive duration bills at least one hour.
func Cost(m MachineType, n int, seconds float64) float64 {
	if n <= 0 || seconds <= 0 {
		return 0
	}
	hours := math.Ceil(seconds / 3600)
	return float64(n) * m.PricePerHour * hours
}

// CostLinear returns the idealized per-second cost (no hour rounding).
// The optimizer reports both: staircase cost is what you pay, linear cost
// exposes the underlying tradeoff curve.
func CostLinear(m MachineType, n int, seconds float64) float64 {
	if n <= 0 || seconds <= 0 {
		return 0
	}
	return float64(n) * m.PricePerHour * seconds / 3600
}

// Cluster is a provisioned set of identical instances plus the slot
// configuration chosen for them.
type Cluster struct {
	Type  MachineType
	Nodes int
	Slots int // task slots per node
}

// NewCluster validates and constructs a cluster description.
func NewCluster(mt MachineType, nodes, slots int) (Cluster, error) {
	if nodes <= 0 {
		return Cluster{}, fmt.Errorf("cloud: cluster needs at least one node, got %d", nodes)
	}
	if slots <= 0 {
		return Cluster{}, fmt.Errorf("cloud: cluster needs at least one slot per node, got %d", slots)
	}
	return Cluster{Type: mt, Nodes: nodes, Slots: slots}, nil
}

// TotalSlots returns the cluster-wide task slot count.
func (c Cluster) TotalSlots() int { return c.Nodes * c.Slots }

// String renders the deployment triple, e.g. "16 x c1.medium (2 slots)".
func (c Cluster) String() string {
	return fmt.Sprintf("%d x %s (%d slots)", c.Nodes, c.Type.Name, c.Slots)
}
