package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogSanity(t *testing.T) {
	cat := Catalog()
	if len(cat) < 4 {
		t.Fatalf("catalog too small: %d", len(cat))
	}
	seen := map[string]bool{}
	for i, m := range cat {
		if seen[m.Name] {
			t.Fatalf("duplicate machine type %s", m.Name)
		}
		seen[m.Name] = true
		if m.ECU <= 0 || m.Cores <= 0 || m.PricePerHour <= 0 || m.DiskMBps <= 0 || m.NetMBps <= 0 {
			t.Fatalf("machine %s has non-positive parameters: %+v", m.Name, m)
		}
		if i > 0 && cat[i].PricePerHour < cat[i-1].PricePerHour {
			t.Fatalf("catalog not sorted by price at %s", m.Name)
		}
	}
}

func TestTypeByName(t *testing.T) {
	m, err := TypeByName("c1.xlarge")
	if err != nil || m.Name != "c1.xlarge" {
		t.Fatalf("lookup failed: %v %v", m, err)
	}
	if _, err := TypeByName("quantum.huge"); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestTaskSecondsCPUContention(t *testing.T) {
	m, _ := TypeByName("m1.xlarge") // 4 cores
	flops := int64(1e9)
	t1 := m.TaskSeconds(1, flops, 0, 0)
	t4 := m.TaskSeconds(4, flops, 0, 0)
	t8 := m.TaskSeconds(8, flops, 0, 0)
	// Up to the core count, per-task CPU time is constant.
	if math.Abs(t1-t4) > 1e-9 {
		t.Fatalf("per-task CPU time should be flat up to cores: %v vs %v", t1, t4)
	}
	// Beyond the core count each task slows down ~proportionally.
	if t8 <= t4*1.5 {
		t.Fatalf("oversubscription should slow tasks: t4=%v t8=%v", t4, t8)
	}
}

func TestTaskSecondsIOContention(t *testing.T) {
	m, _ := TypeByName("m1.large")
	bytes := int64(100e6)
	t1 := m.TaskSeconds(1, 0, bytes, 0)
	t2 := m.TaskSeconds(2, 0, bytes, 0)
	// Disk bandwidth is always shared: doubling slots roughly doubles
	// per-task I/O time (minus the constant startup).
	io1, io2 := t1-m.StartupSec, t2-m.StartupSec
	if math.Abs(io2-2*io1) > 1e-9 {
		t.Fatalf("disk sharing: io1=%v io2=%v", io1, io2)
	}
}

func TestTaskSecondsMonotoneInWork(t *testing.T) {
	f := func(fl, lb, nb uint32) bool {
		m, _ := TypeByName("c1.medium")
		base := m.TaskSeconds(2, int64(fl), int64(lb), int64(nb))
		more := m.TaskSeconds(2, int64(fl)+1000, int64(lb)+1000, int64(nb)+1000)
		return more > base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskSecondsPanicsOnBadSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m, _ := TypeByName("m1.small")
	m.TaskSeconds(0, 1, 1, 1)
}

func TestCostStaircase(t *testing.T) {
	m, _ := TypeByName("m1.small")
	if got := Cost(m, 10, 0); got != 0 {
		t.Fatalf("zero time should be free: %v", got)
	}
	oneSec := Cost(m, 10, 1)
	oneHour := Cost(m, 10, 3600)
	if oneSec != oneHour {
		t.Fatalf("within the first hour cost must be flat: %v vs %v", oneSec, oneHour)
	}
	if got := Cost(m, 10, 3601); got != 2*oneHour {
		t.Fatalf("3601s should bill 2 hours: %v", got)
	}
}

func TestCostMonotone(t *testing.T) {
	m, _ := TypeByName("m1.large")
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)
		return Cost(m, 3, hi) >= Cost(m, 3, lo) &&
			CostLinear(m, 3, hi) >= CostLinear(m, 3, lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCostLinearBelowStaircase(t *testing.T) {
	m, _ := TypeByName("c1.xlarge")
	for _, sec := range []float64{1, 100, 3600, 5000, 7200, 10000} {
		if CostLinear(m, 5, sec) > Cost(m, 5, sec)+1e-9 {
			t.Fatalf("linear cost exceeds staircase at %v s", sec)
		}
	}
}

func TestNewCluster(t *testing.T) {
	m, _ := TypeByName("m1.large")
	c, err := NewCluster(m, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalSlots() != 16 {
		t.Fatalf("total slots: %d", c.TotalSlots())
	}
	if _, err := NewCluster(m, 0, 2); err == nil {
		t.Fatal("want error for zero nodes")
	}
	if _, err := NewCluster(m, 2, 0); err == nil {
		t.Fatal("want error for zero slots")
	}
	if c.String() == "" {
		t.Fatal("empty cluster description")
	}
}

func TestFasterMachineFasterTasks(t *testing.T) {
	small, _ := TypeByName("m1.small")
	big, _ := TypeByName("c1.xlarge")
	flops, lb := int64(5e9), int64(200e6)
	if big.TaskSeconds(1, flops, lb, 0) >= small.TaskSeconds(1, flops, lb, 0) {
		t.Fatal("c1.xlarge should beat m1.small on the same task")
	}
}
