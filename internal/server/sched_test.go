package server

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// simJob is one synthetic job of a logical-clock scheduler simulation.
type simJob struct {
	job SchedJob
	dur float64 // running time once started
}

// startRec records when a job started in the simulation.
type startRec struct {
	ID    string
	Start float64
}

// runSim replays an arrival schedule against a FairScheduler over a
// discrete logical clock: at each tick, finished jobs release nodes,
// due arrivals are pushed, then the scheduler starts whatever fits.
// Service is charged as dur×nodes on completion, mirroring the server.
func runSim(t *testing.T, cfg SchedConfig, capacity int, jobs []simJob, horizon float64) []startRec {
	t.Helper()
	f := NewFairScheduler(cfg)
	free := capacity
	type runRec struct {
		j   *SchedJob
		end float64
	}
	var running []runRec
	var starts []startRec
	next := 0 // next arrival index (jobs sorted by Enqueued)
	for now := 0.0; now <= horizon; now++ {
		kept := running[:0]
		for _, r := range running {
			if r.end <= now {
				free += r.j.Nodes
				f.Charge(r.j.Tenant, (r.end-startOf(starts, r.j.ID))*float64(r.j.Nodes))
			} else {
				kept = append(kept, r)
			}
		}
		running = kept
		for next < len(jobs) && jobs[next].job.Enqueued <= now {
			f.Push(jobs[next].job)
			next++
		}
		for {
			sj := f.Next(free, now)
			if sj == nil {
				break
			}
			free -= sj.Nodes
			starts = append(starts, startRec{ID: sj.ID, Start: now})
			running = append(running, runRec{j: sj, end: now + durOf(jobs, sj.ID)})
		}
	}
	return starts
}

func startOf(starts []startRec, id string) float64 {
	for _, s := range starts {
		if s.ID == id {
			return s.Start
		}
	}
	return 0
}

func durOf(jobs []simJob, id string) float64 {
	for _, j := range jobs {
		if j.job.ID == id {
			return j.dur
		}
	}
	return 1
}

// seededSchedule builds a random but reproducible arrival schedule:
// nTenants tenants, jobsPer jobs each, arrivals over [0, span), widths
// 1..maxNodes, durations 1..maxDur.
func seededSchedule(seed int64, nTenants, jobsPer int, span float64, maxNodes, maxDur int) []simJob {
	rng := rand.New(rand.NewSource(seed))
	var jobs []simJob
	for t := 0; t < nTenants; t++ {
		tenant := fmt.Sprintf("t%d", t)
		for k := 0; k < jobsPer; k++ {
			jobs = append(jobs, simJob{
				job: SchedJob{
					ID:       fmt.Sprintf("%s-j%d", tenant, k),
					Tenant:   tenant,
					Nodes:    1 + rng.Intn(maxNodes),
					Enqueued: float64(rng.Intn(int(span))),
				},
				dur: float64(1 + rng.Intn(maxDur)),
			})
		}
	}
	// Sort by arrival (stable on the generation order for ties).
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].job.Enqueued < jobs[j-1].job.Enqueued; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
	return jobs
}

// TestSchedulerDeterministic replays the same seeded schedule twice and
// requires the identical start order both times.
func TestSchedulerDeterministic(t *testing.T) {
	cfg := SchedConfig{Weights: map[string]float64{"t0": 2}}
	jobs := seededSchedule(17, 3, 20, 30, 6, 4)
	a := runSim(t, cfg, 8, jobs, 500)
	b := runSim(t, cfg, 8, jobs, 500)
	if len(a) != len(jobs) {
		t.Fatalf("run A scheduled %d of %d jobs", len(a), len(jobs))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\nA: %v\nB: %v", a, b)
	}
}

// TestSchedulerNoStarvation floods the cluster with a heavy tenant and
// checks that a light tenant's jobs still start within a bounded wait —
// the aging term must eventually beat any service deficit.
func TestSchedulerNoStarvation(t *testing.T) {
	var jobs []simJob
	// Heavy tenant: 60 two-node jobs all arriving at t=0.
	for k := 0; k < 60; k++ {
		jobs = append(jobs, simJob{
			job: SchedJob{ID: fmt.Sprintf("heavy-j%d", k), Tenant: "heavy", Nodes: 2},
			dur: 3,
		})
	}
	// Light tenant: one job arriving late, after heavy has banked service.
	jobs = append(jobs, simJob{
		job: SchedJob{ID: "light-j0", Tenant: "light", Nodes: 2, Enqueued: 10},
		dur: 1,
	})
	starts := runSim(t, SchedConfig{}, 4, jobs, 1000)
	if len(starts) != len(jobs) {
		t.Fatalf("scheduled %d of %d jobs: starvation", len(starts), len(jobs))
	}
	maxWait := 0.0
	for _, s := range starts {
		var enq float64
		for _, j := range jobs {
			if j.job.ID == s.ID {
				enq = j.job.Enqueued
			}
		}
		if w := s.Start - enq; w > maxWait {
			maxWait = w
		}
	}
	// 60 jobs × 3s / (4 nodes / 2 per job) = 90s of backlog; every wait
	// must stay within the drain time — nobody waits forever.
	if maxWait > 120 {
		t.Fatalf("max wait %.0fs exceeds bound", maxWait)
	}
	// The light job specifically must not wait behind the whole heavy
	// backlog: fresh tenants have zero banked service and rank first.
	lightWait := startOf(starts, "light-j0") - 10
	if lightWait > 10 {
		t.Fatalf("light tenant waited %.0fs behind the heavy backlog", lightWait)
	}
}

// TestSchedulerWeightedShares saturates the cluster with two tenants
// and checks the 2:1 weight ratio shows up in service shares.
func TestSchedulerWeightedShares(t *testing.T) {
	var jobs []simJob
	for k := 0; k < 40; k++ {
		jobs = append(jobs,
			simJob{job: SchedJob{ID: fmt.Sprintf("gold-j%d", k), Tenant: "gold", Nodes: 2}, dur: 2},
			simJob{job: SchedJob{ID: fmt.Sprintf("econ-j%d", k), Tenant: "econ", Nodes: 2}, dur: 2},
		)
	}
	cfg := SchedConfig{Weights: map[string]float64{"gold": 2, "econ": 1}, AgingRate: 0.001}
	f := NewFairScheduler(cfg)
	// Drive directly (single-node-at-a-time) to watch the share evolve.
	for _, j := range jobs {
		f.Push(j.job)
	}
	goldRuns, econRuns := 0, 0
	now := 0.0
	for i := 0; i < 60; i++ { // more demand than slots: contention
		sj := f.Next(2, now)
		if sj == nil {
			break
		}
		f.Charge(sj.Tenant, durOf(jobs, sj.ID)*float64(sj.Nodes))
		if sj.Tenant == "gold" {
			goldRuns++
		} else {
			econRuns++
		}
		now += durOf(jobs, sj.ID)
	}
	if goldRuns+econRuns == 0 {
		t.Fatal("nothing ran")
	}
	ratio := float64(goldRuns) / float64(econRuns)
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("gold:econ run ratio %.2f (gold %d, econ %d); want ≈2 for weights 2:1", ratio, goldRuns, econRuns)
	}
}

// TestSchedulerPriorityBoost: a high-priority job outranks an earlier
// same-tenant job.
func TestSchedulerPriorityBoost(t *testing.T) {
	f := NewFairScheduler(SchedConfig{})
	f.Push(SchedJob{ID: "routine", Tenant: "a", Nodes: 1, Enqueued: 0})
	f.Push(SchedJob{ID: "urgent", Tenant: "a", Nodes: 1, Enqueued: 5, Priority: 2})
	if sj := f.Next(1, 6); sj == nil || sj.ID != "urgent" {
		t.Fatalf("want urgent first, got %+v", sj)
	}
	if sj := f.Next(1, 6); sj == nil || sj.ID != "routine" {
		t.Fatalf("want routine second, got %+v", sj)
	}
}

// TestSchedulerReservation: once a wide job has waited ReserveAfterSec,
// narrow jobs stop backfilling around it.
func TestSchedulerReservation(t *testing.T) {
	f := NewFairScheduler(SchedConfig{ReserveAfterSec: 10, AgingRate: 0.001})
	// Wide job wants the whole cluster; one node is busy elsewhere.
	f.Push(SchedJob{ID: "wide", Tenant: "big", Nodes: 4, Enqueued: 0})
	f.Push(SchedJob{ID: "narrow1", Tenant: "small", Nodes: 1, Enqueued: 1})
	f.Push(SchedJob{ID: "narrow2", Tenant: "small", Nodes: 1, Enqueued: 1})
	// Give small some banked service so wide ranks first.
	f.Charge("small", 100)

	// Before the reservation kicks in, narrow jobs backfill the 3 free
	// nodes around the wide job.
	if sj := f.Next(3, 2); sj == nil || sj.ID != "narrow1" {
		t.Fatalf("want narrow1 backfilled, got %+v", sj)
	}
	// Past ReserveAfterSec the wide job blocks further backfilling.
	if sj := f.Next(3, 20); sj != nil {
		t.Fatalf("want reservation (nil), got %+v", sj)
	}
	// When the cluster drains, the wide job runs.
	if sj := f.Next(4, 21); sj == nil || sj.ID != "wide" {
		t.Fatalf("want wide after drain, got %+v", sj)
	}
	// And the remaining narrow job follows.
	if sj := f.Next(1, 22); sj == nil || sj.ID != "narrow2" {
		t.Fatalf("want narrow2 last, got %+v", sj)
	}
}

// TestSchedulerRemove: canceling a queued job removes exactly it.
func TestSchedulerRemove(t *testing.T) {
	f := NewFairScheduler(SchedConfig{})
	f.Push(SchedJob{ID: "a", Tenant: "t", Nodes: 1})
	f.Push(SchedJob{ID: "b", Tenant: "t", Nodes: 1})
	if !f.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if f.Remove("a") {
		t.Fatal("Remove(a) twice = true")
	}
	if got := f.Depth(); got != 1 {
		t.Fatalf("depth %d after remove, want 1", got)
	}
	if sj := f.Next(1, 0); sj == nil || sj.ID != "b" {
		t.Fatalf("want b, got %+v", sj)
	}
}
