package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/plan"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func submit(t *testing.T, base string, req SubmitRequest) JobStatus {
	t.Helper()
	var st JobStatus
	if err := postJSON(http.DefaultClient, base+"/v1/jobs", req, &st); err != nil {
		t.Fatalf("submit: %v", err)
	}
	return st
}

func await(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		if err := getJSON(http.DefaultClient, base+"/v1/jobs/"+id, &st); err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerSubmitAndResult runs a materialized GNMF end to end over
// HTTP and checks the result, then resubmits and checks the plan cache
// hit shows up on the job and in the stats.
func TestServerSubmitAndResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	req := SubmitRequest{
		Tenant: "acme", Program: gnmfSource(),
		Tile: 4, Density: 0.4, Nodes: 4, Materialize: true, Seed: 11,
	}
	st := submit(t, ts.URL, req)
	if st.ID != "j-000001" {
		t.Fatalf("first job ID %s, want j-000001", st.ID)
	}
	fin := await(t, ts.URL, st.ID)
	if fin.State != StateSucceeded {
		t.Fatalf("job failed: %s", fin.Error)
	}
	if fin.Result == nil || len(fin.Result.Outputs) == 0 {
		t.Fatal("materialized job returned no outputs")
	}
	if fin.Result.TotalSeconds <= 0 || fin.Result.CostDollars <= 0 {
		t.Fatalf("implausible result %+v", fin.Result)
	}
	for _, o := range fin.Result.Outputs {
		if len(o.SHA256) != 64 {
			t.Fatalf("output %s has no digest", o.Name)
		}
	}
	if fin.PlanCacheHit {
		t.Fatal("first submission claims a plan cache hit")
	}

	// Identical resubmission: compile must be served from the cache.
	again := await(t, ts.URL, submit(t, ts.URL, req).ID)
	if again.State != StateSucceeded {
		t.Fatalf("resubmission failed: %s", again.Error)
	}
	if !again.PlanCacheHit {
		t.Fatal("resubmission missed the plan cache")
	}
	if again.Result.Outputs[0].SHA256 != fin.Result.Outputs[0].SHA256 {
		t.Fatal("resubmission with the same seed is not bit-identical")
	}

	var stats Stats
	if err := getJSON(http.DefaultClient, ts.URL+"/v1/stats", &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.PlanHits == 0 {
		t.Fatalf("stats show no plan cache hits: %+v", stats.Cache)
	}
	if len(stats.Tenants) != 1 || stats.Tenants[0].Tenant != "acme" || stats.Tenants[0].Completed != 2 {
		t.Fatalf("tenant stats %+v", stats.Tenants)
	}
}

// TestServerBitIdenticalToCLIPath: the server's materialized run must
// produce byte-for-byte the same outputs as running the same program
// directly through core.Session with core.RandomInputs — the path
// cmd/cumulon takes.
func TestServerBitIdenticalToCLIPath(t *testing.T) {
	const seed = 11
	src := gnmfSource()
	cfg := plan.Config{TileSize: 4, Densities: map[string]float64{"V": 0.4}}

	// Direct path (what `cumulon -workload gnmf -materialize` does).
	sess := core.NewSession(seed)
	pl, err := sess.CompileString(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(cluster.TotalSlots())
	prog := pl.Program
	res, err := sess.ExecutePlan(pl, cluster, core.ExecOptions{
		Cluster: cluster, Seed: seed,
		Inputs: core.RandomInputs(prog, cfg, seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	direct := DigestOutputs(res.Outputs)

	// Server path.
	_, ts := newTestServer(t, Config{Nodes: 8})
	fin := await(t, ts.URL, submit(t, ts.URL, SubmitRequest{
		Tenant: "acme", Program: src,
		Tile: 4, Density: 0.4, Nodes: 4, Slots: 2, Materialize: true, Seed: seed,
	}).ID)
	if fin.State != StateSucceeded {
		t.Fatalf("server run failed: %s", fin.Error)
	}
	if len(fin.Result.Outputs) != len(direct) {
		t.Fatalf("output count: server %d, direct %d", len(fin.Result.Outputs), len(direct))
	}
	for i, o := range fin.Result.Outputs {
		if o.SHA256 != direct[i].SHA256 {
			t.Fatalf("output %s differs: server %s, direct %s", o.Name, o.SHA256, direct[i].SHA256)
		}
	}
}

// TestServerValidation walks the 4xx admission paths.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	cases := []struct {
		name string
		req  SubmitRequest
		code int
	}{
		{"no tenant", SubmitRequest{Program: gnmfSource()}, 400},
		{"no program", SubmitRequest{Tenant: "a"}, 400},
		{"parse error", SubmitRequest{Tenant: "a", Program: "not a program"}, 400},
		{"too many nodes", SubmitRequest{Tenant: "a", Program: gnmfSource(), Nodes: 9}, 400},
		{"negative nodes", SubmitRequest{Tenant: "a", Program: gnmfSource(), Nodes: -1}, 400},
		{"wrong machine", SubmitRequest{Tenant: "a", Program: gnmfSource(), Machine: "c1.xlarge"}, 400},
		{"deadline and budget", SubmitRequest{Tenant: "a", Program: gnmfSource(),
			Optimize: true, DeadlineSec: 60, BudgetDollars: 1}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, _ := json.Marshal(tc.req)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.code, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(body, &e) != nil || e.Error == "" {
				t.Fatalf("error body not JSON: %s", body)
			}
		})
	}
}

// TestServerCancel: queued jobs cancel; running, terminal and unknown
// jobs refuse.
func TestServerCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Nodes: 4})

	// Choke the cluster so the submission stays queued deterministically.
	s.mu.Lock()
	s.freeNodes = 0
	s.mu.Unlock()

	st := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 2})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel queued: status %d", resp.StatusCode)
	}
	got, _ := s.Status(st.ID)
	if got.State != StateCanceled {
		t.Fatalf("state %s after cancel, want canceled", got.State)
	}

	// Canceling again conflicts; unknown 404s.
	if _, err := s.Cancel(st.ID); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if _, err := s.Cancel("j-999999"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}

	// Restore capacity; a fresh job must run to completion and then
	// refuse cancellation.
	s.mu.Lock()
	s.freeNodes = s.cfg.Nodes
	s.mu.Unlock()
	s.signal()
	fin := await(t, ts.URL, submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 2}).ID)
	if fin.State != StateSucceeded {
		t.Fatalf("job failed: %s", fin.Error)
	}
	if _, err := s.Cancel(fin.ID); err == nil {
		t.Fatal("cancel of terminal job succeeded")
	}
}

// TestServerResultEndpoint: /result 409s while queued and serves the
// terminal status after.
func TestServerResultEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Nodes: 4})
	s.mu.Lock()
	s.freeNodes = 0
	s.mu.Unlock()
	st := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 2})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result while queued: status %d, want 409", resp.StatusCode)
	}

	s.mu.Lock()
	s.freeNodes = s.cfg.Nodes
	s.mu.Unlock()
	s.signal()
	await(t, ts.URL, st.ID)
	var fin JobStatus
	if err := getJSON(http.DefaultClient, ts.URL+"/v1/jobs/"+st.ID+"/result", &fin); err != nil {
		t.Fatal(err)
	}
	if fin.Result == nil {
		t.Fatal("terminal result endpoint returned no result")
	}
}

// TestServerOptimizedJob: an optimizing submission searches once and
// serves the second identical submission from the deployment cache.
func TestServerOptimizedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	req := SubmitRequest{
		Tenant: "opt", Program: gnmfSource(),
		Tile: 4, Density: 0.4, Optimize: true, DeadlineSec: 24 * 3600,
	}
	first := await(t, ts.URL, submit(t, ts.URL, req).ID)
	if first.State != StateSucceeded {
		t.Fatalf("optimized job failed: %s", first.Error)
	}
	if first.DeploymentCacheHit {
		t.Fatal("first optimized submission claims a deployment cache hit")
	}
	if first.Nodes <= 0 {
		t.Fatal("optimizer picked no nodes")
	}
	second := submit(t, ts.URL, req)
	if !second.DeploymentCacheHit {
		t.Fatal("second optimized submission missed the deployment cache")
	}
	if second.Nodes != first.Nodes {
		t.Fatalf("cached deployment picked %d nodes, first picked %d", second.Nodes, first.Nodes)
	}
	await(t, ts.URL, second.ID)
}

// TestServerMetricsEndpoints: the text endpoint carries per-tenant
// series; the JSON endpoint is byte-stable across identical reads.
func TestServerMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	await(t, ts.URL, submit(t, ts.URL, SubmitRequest{Tenant: "acme", Program: gnmfSource(), Tile: 4, Nodes: 4}).ID)

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	text := get("/metrics")
	for _, want := range []string{
		`cumulond_jobs_submitted_total{tenant="acme"} 1`,
		`cumulond_jobs_completed_total{tenant="acme"} 1`,
		"cumulond_plan_cache_misses 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
	j1 := get("/metrics.json")
	j2 := get("/metrics.json")
	if j1 != j2 {
		t.Fatal("/metrics.json not byte-stable across identical reads")
	}
	if !json.Valid([]byte(j1)) {
		t.Fatal("/metrics.json is not valid JSON")
	}
}

// TestServerConcurrentSubmissions hammers Submit from many goroutines
// (exercised under -race in CI) and checks every job lands.
func TestServerConcurrentSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{Nodes: 8})
	const n = 24
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := submit(t, ts.URL, SubmitRequest{
				Tenant: []string{"a", "b", "c"}[i%3], Program: gnmfSource(),
				Tile: 4, Nodes: 2,
			})
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty job ID %q", id)
		}
		seen[id] = true
		if st := await(t, ts.URL, id); st.State != StateSucceeded {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	if got := len(s.List("", "")); got != n {
		t.Fatalf("list has %d jobs, want %d", got, n)
	}
}

// TestServerAcceptance3x4 is the issue's acceptance run: 3 tenants × 4
// clients through the load generator against an in-process server. All
// jobs complete, nobody starves, per-tenant metrics exist, and the plan
// cache hits on repeated programs.
func TestServerAcceptance3x4(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Nodes: 8,
		Sched: SchedConfig{Weights: map[string]float64{"analytics": 2}},
	})
	specJSON := `{
	  "seed": 42,
	  "max_wait_sec": 60,
	  "poll_ms": 2,
	  "tenants": [
	    {"name": "analytics", "clients": 4, "jobs_per_client": 2, "mean_gap_ms": 2,
	     "mix": [{"workload": "gnmf", "m": 24, "n": 18, "r": 3, "iters": 1, "density": 0.4, "tile": 4, "nodes": 4}]},
	    {"name": "reporting", "clients": 4, "jobs_per_client": 2, "mean_gap_ms": 2, "priority": 1,
	     "mix": [{"workload": "regression", "m": 48, "n": 8, "iters": 1, "tile": 8, "nodes": 2}]},
	    {"name": "adhoc", "clients": 4, "jobs_per_client": 2, "mean_gap_ms": 4,
	     "mix": [{"workload": "matmul", "m": 32, "k": 24, "n": 32, "tile": 8, "nodes": 2}]}
	  ]
	}`
	spec, err := ParseLoadSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(ts.URL, spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	t.Logf("load report:\n%s", buf.String())

	if err := rep.Healthy(true); err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 3 {
		t.Fatalf("report covers %d tenants, want 3", len(rep.Tenants))
	}
	for _, tr := range rep.Tenants {
		if tr.Submitted != 8 || tr.Completed != 8 {
			t.Fatalf("tenant %s: %d submitted, %d completed, want 8/8", tr.Tenant, tr.Submitted, tr.Completed)
		}
		if tr.MaxWaitSec > spec.MaxWaitSec {
			t.Fatalf("tenant %s max wait %.1fs exceeds bound %.0fs", tr.Tenant, tr.MaxWaitSec, spec.MaxWaitSec)
		}
	}

	// Per-tenant metrics must be visible in the obs registry output.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, tenant := range []string{"analytics", "reporting", "adhoc"} {
		if !strings.Contains(string(metrics), `cumulond_jobs_completed_total{tenant="`+tenant+`"} 8`) {
			t.Fatalf("metrics missing completed=8 for tenant %s:\n%s", tenant, metrics)
		}
	}
}
