package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"cumulon/internal/opt"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

func gnmfSource() string {
	return workloads.GNMF(24, 18, 3, 1, 0.4).Prog.String()
}

func testCfg() plan.Config {
	return plan.Config{TileSize: 4, Densities: map[string]float64{"V": 0.4}}
}

// TestPlanCacheHitMiss: first compile misses, resubmission hits and
// returns the identical template.
func TestPlanCacheHitMiss(t *testing.T) {
	c := NewPlanCache(0)
	src, cfg := gnmfSource(), testCfg()
	_, p1, key1, err := c.Compile(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, p2, key2, err := c.Compile(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Fatalf("same input, different keys %s vs %s", key1, key2)
	}
	if p1 != p2 {
		t.Fatal("resubmission did not return the shared template")
	}
	st := c.Stats()
	if st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Fatalf("stats %+v, want 1 hit 1 miss", st)
	}
}

// TestPlanCacheKeySensitivity: the key must move when the program or
// any plan-shaping knob moves, and must ignore density map order.
func TestPlanCacheKeySensitivity(t *testing.T) {
	src := gnmfSource()
	base := testCfg()
	k0 := Key(src, base)

	if k := Key(src+" ", base); k == k0 {
		t.Fatal("source change did not change the key")
	}
	cfg := testCfg()
	cfg.TileSize = 8
	if k := Key(src, cfg); k == k0 {
		t.Fatal("tile change did not change the key")
	}
	cfg = testCfg()
	cfg.DisableFusion = true
	if k := Key(src, cfg); k == k0 {
		t.Fatal("fusion toggle did not change the key")
	}
	cfg = testCfg()
	cfg.Densities["V"] = 0.1
	if k := Key(src, cfg); k == k0 {
		t.Fatal("density change did not change the key")
	}
	// Map iteration order must not leak into the key.
	a := plan.Config{TileSize: 4, Densities: map[string]float64{"A": 0.1, "B": 0.2, "C": 0.3}}
	b := plan.Config{TileSize: 4, Densities: map[string]float64{"C": 0.3, "A": 0.1, "B": 0.2}}
	for i := 0; i < 50; i++ {
		if Key(src, a) != Key(src, b) {
			t.Fatal("density map order changed the key")
		}
	}
}

// TestPlanCacheSingleFlight: N concurrent misses on one key compile
// exactly once.
func TestPlanCacheSingleFlight(t *testing.T) {
	c := NewPlanCache(0)
	src, cfg := gnmfSource(), testCfg()
	const n = 16
	var wg sync.WaitGroup
	plans := make([]*plan.Plan, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, p, _, err := c.Compile(src, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent compiles returned different templates")
		}
	}
	if st := c.Stats(); st.PlanHits+st.PlanMisses != n {
		t.Fatalf("stats %+v, want %d lookups", st, n)
	}
	// Entries: one plan entry, zero deployment entries.
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries %d, want 1", st.Entries)
	}
}

// TestDeploymentCache: the search callback runs once per distinct
// constraint; a different deadline searches again.
func TestDeploymentCache(t *testing.T) {
	c := NewPlanCache(0)
	src, cfg := gnmfSource(), testCfg()
	_, _, key, err := c.Compile(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var searches atomic.Int32
	search := func() (*opt.Deployment, bool, error) {
		searches.Add(1)
		return &opt.Deployment{}, true, nil
	}
	req := opt.Request{DeadlineSec: 600, MaxNodes: 8}
	for i := 0; i < 3; i++ {
		if _, met, err := c.Deployment(key, req, search); err != nil || !met {
			t.Fatalf("deployment %d: met=%t err=%v", i, met, err)
		}
	}
	if got := searches.Load(); got != 1 {
		t.Fatalf("search ran %d times, want 1", got)
	}
	req2 := req
	req2.DeadlineSec = 300
	if _, _, err := c.Deployment(key, req2, search); err != nil {
		t.Fatal(err)
	}
	if got := searches.Load(); got != 2 {
		t.Fatalf("search ran %d times after new deadline, want 2", got)
	}
	st := c.Stats()
	if st.DepHits != 2 || st.DepMisses != 2 {
		t.Fatalf("deployment stats %+v, want 2 hits 2 misses", st)
	}
}

// TestPlanCacheCompileError: a bad program caches its error and does
// not poison the stats.
func TestPlanCacheCompileError(t *testing.T) {
	c := NewPlanCache(0)
	if _, _, _, err := c.Compile("this is not a program", testCfg()); err == nil {
		t.Fatal("want parse error")
	}
	// The error is cached too: a retry is a hit that returns it again.
	if _, _, _, err := c.Compile("this is not a program", testCfg()); err == nil {
		t.Fatal("want cached parse error")
	}
}
