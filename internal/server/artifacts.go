package server

import (
	"bytes"
	"fmt"

	"cumulon/internal/obs"
)

// artifactSet holds a finished job's retained observability artifacts.
// Each is rendered once, at job completion (explain at submit), from
// the job's private obs.Trace, so the bytes are deterministic for a
// fixed program/config/seed: the Chrome trace in particular is
// byte-identical to what `cumulon -trace` writes for the same run.
// Only the artifacts the submission opted into are non-nil.
type artifactSet struct {
	trace    []byte // Chrome trace-event JSON (chrome://tracing)
	critpath []byte // critical-path report (text)
	metrics  []byte // per-run metrics snapshot (Prometheus text)
	explain  []byte // optimizer EXPLAIN report (text)
}

// empty reports whether nothing was retained.
func (a *artifactSet) empty() bool {
	return a == nil || (a.trace == nil && a.critpath == nil && a.metrics == nil && a.explain == nil)
}

// renderArtifacts renders the opted-in artifacts from a finished run's
// trace. Render errors become the artifact's body rather than failing
// the job: the run itself succeeded, and a readable error is more
// operable than a 500.
func renderArtifacts(req SubmitRequest, tr *obs.Trace, explain []byte) *artifactSet {
	a := &artifactSet{explain: explain}
	if tr != nil && req.Trace {
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			a.trace = []byte(fmt.Sprintf("trace export failed: %v\n", err))
		} else {
			a.trace = buf.Bytes()
		}
	}
	if tr != nil && req.Critpath {
		var buf bytes.Buffer
		cp, err := tr.CriticalPath()
		if err == nil {
			err = cp.Write(&buf)
		}
		if err != nil {
			a.critpath = []byte(fmt.Sprintf("critical-path analysis failed: %v\n", err))
		} else {
			a.critpath = buf.Bytes()
		}
	}
	if tr != nil && req.Metrics {
		var buf bytes.Buffer
		if err := obs.Snapshot(tr).Write(&buf); err != nil {
			a.metrics = []byte(fmt.Sprintf("metrics snapshot failed: %v\n", err))
		} else {
			a.metrics = buf.Bytes()
		}
	}
	if a.empty() {
		return nil
	}
	return a
}
