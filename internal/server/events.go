package server

import (
	"strings"
	"sync"

	"cumulon/internal/obs"
)

// EventType names one kind of job lifecycle event.
type EventType string

const (
	// EvQueued: the job passed admission and entered the queue.
	EvQueued EventType = "queued"
	// EvAdmitted: the scheduler granted the job its nodes.
	EvAdmitted EventType = "admitted"
	// EvCompiling: plan compilation is starting (cache-fronted).
	EvCompiling EventType = "compiling"
	// EvPlanCacheHit / EvPlanCacheMiss: how compilation was served.
	EvPlanCacheHit  EventType = "plan-cache-hit"
	EvPlanCacheMiss EventType = "plan-cache-miss"
	// EvRunning: the engine run is starting on a concrete cluster.
	EvRunning EventType = "running"
	// EvJobStart / EvPhaseStart: engine progress on the virtual clock
	// (one per plan job / barrier phase).
	EvJobStart   EventType = "job-start"
	EvPhaseStart EventType = "phase-start"
	// EvRetry / EvCrash: fault-recovery activity (chaos runs).
	EvRetry EventType = "retry"
	EvCrash EventType = "crash"
	// EvDone / EvFailed / EvCanceled: terminal outcomes.
	EvDone     EventType = "done"
	EvFailed   EventType = "failed"
	EvCanceled EventType = "canceled"
)

// JobEvent is one entry of a job's event stream. Every field is
// deterministic for a fixed program/config/seed: sequence numbers are
// assigned in emission order by the job's single executor goroutine,
// times are virtual-clock seconds, and no wall-clock value ever enters
// the payload — so the stream of a job is byte-identical across runs
// and across transports (long-poll vs SSE).
type JobEvent struct {
	Seq  int       `json:"seq"`
	Type EventType `json:"type"`
	// Job is the plan-job name (job-start events).
	Job string `json:"job,omitempty"`
	// Phase is the engine phase name, "j<job>/p<phase>" (phase-start).
	Phase string `json:"phase,omitempty"`
	// VirtualSec is the event's virtual-clock time (engine events and
	// the terminal done event, where it is the makespan).
	VirtualSec float64 `json:"virtual_sec,omitempty"`
	// Nodes is the job's cluster size (queued/admitted/running).
	Nodes int `json:"nodes,omitempty"`
	// Cluster is the concrete cluster string (running events).
	Cluster string `json:"cluster,omitempty"`
	// CostDollars is the billed price (done events).
	CostDollars float64 `json:"cost_dollars,omitempty"`
	// Detail carries free-form deterministic context (retry/crash text).
	Detail string `json:"detail,omitempty"`
	// Error is the failure message (failed events).
	Error string `json:"error,omitempty"`
}

// eventLog is one job's bounded event stream: an append-only sequence
// with ring-buffer retention (old events are evicted once the buffer is
// full, but their sequence numbers remain burned). Consumers resume
// with the next unseen sequence number; asking for an evicted prefix is
// a gone() condition (HTTP 410). Broadcast uses the closed-channel
// idiom: waiters grab the current channel and block until an append (or
// the terminal event) closes it.
type eventLog struct {
	mu      sync.Mutex
	cap     int
	events  []JobEvent // events[i].Seq == dropped+i
	dropped int        // count of evicted events (sequence floor)
	done    bool       // terminal event appended; stream is complete
	ch      chan struct{}
}

func newEventLog(capacity int) *eventLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &eventLog{cap: capacity, ch: make(chan struct{})}
}

// append stamps the next sequence number onto ev and publishes it.
// terminal marks the stream complete (no further events will follow).
func (l *eventLog) append(ev JobEvent, terminal bool) {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return
	}
	ev.Seq = l.dropped + len(l.events)
	l.events = append(l.events, ev)
	if len(l.events) > l.cap {
		n := len(l.events) - l.cap
		l.events = append(l.events[:0], l.events[n:]...)
		l.dropped += n
	}
	if terminal {
		l.done = true
	}
	ch := l.ch
	l.ch = make(chan struct{})
	l.mu.Unlock()
	close(ch)
}

// emit appends a non-terminal event.
func (l *eventLog) emit(ev JobEvent) { l.append(ev, false) }

// since returns a copy of the events with Seq >= since, the next resume
// cursor, whether the stream is complete, and whether the requested
// prefix has been evicted (gone). The returned wait channel is closed
// on the next append; callers block on it when evs is empty and done is
// false.
func (l *eventLog) since(since int) (evs []JobEvent, next int, done, gone bool, wait <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if since < l.dropped {
		return nil, l.dropped, l.done, true, l.ch
	}
	if i := since - l.dropped; i < len(l.events) {
		evs = append([]JobEvent(nil), l.events[i:]...)
	}
	return evs, l.dropped + len(l.events), l.done, false, l.ch
}

// runRecorder tees engine recording into a job's event stream while
// delegating span bookkeeping to an inner recorder (the job's retained
// obs.Trace, or the no-op recorder when tracing is off). It returns the
// inner recorder's span ids so the retained trace is exactly what a
// direct run with that recorder would produce; the event stream only
// needs Start/Event payloads. Engine recording happens from one
// goroutine, so no extra locking is needed beyond the log's own.
type runRecorder struct {
	inner obs.Recorder
	log   *eventLog
}

func (r *runRecorder) Enabled() bool { return true }

func (r *runRecorder) Start(kind obs.Kind, name string, parent obs.SpanID, start float64) obs.SpanID {
	switch kind {
	case obs.KindJob:
		r.log.emit(JobEvent{Type: EvJobStart, Job: name, VirtualSec: start})
	case obs.KindPhase:
		r.log.emit(JobEvent{Type: EvPhaseStart, Phase: name, VirtualSec: start})
	}
	return r.inner.Start(kind, name, parent, start)
}

func (r *runRecorder) End(id obs.SpanID, end float64)      { r.inner.End(id, end) }
func (r *runRecorder) SetAttrs(id obs.SpanID, a obs.Attrs) { r.inner.SetAttrs(id, a) }

func (r *runRecorder) Event(parent obs.SpanID, name string, ts float64) {
	switch {
	case strings.HasPrefix(name, "retried"):
		r.log.emit(JobEvent{Type: EvRetry, Detail: name, VirtualSec: ts})
	case strings.HasPrefix(name, "crash"):
		r.log.emit(JobEvent{Type: EvCrash, Detail: name, VirtualSec: ts})
	}
	r.inner.Event(parent, name, ts)
}
