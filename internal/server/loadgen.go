package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cumulon/internal/obs"
	"cumulon/internal/workloads"
)

// LoadSpec is the declarative input of the cumulon-load traffic
// generator (modeled on Pachyderm's etc/testing/loads specs): N tenants
// × M clients × a weighted program mix × a seeded arrival process. The
// same spec and seed submit the same programs in the same per-client
// order, so load runs are comparable across server builds.
type LoadSpec struct {
	// Seed drives every random choice (arrival gaps, mix picks).
	Seed int64 `json:"seed"`
	// MaxWaitSec is the starvation bound: the run fails if any job waits
	// longer than this between admission and start (default 120).
	MaxWaitSec float64 `json:"max_wait_sec,omitempty"`
	// PollMs is the status poll interval (default 10).
	PollMs int `json:"poll_ms,omitempty"`
	// Tail makes clients consume each job's event stream (long-poll
	// /v1/jobs/{id}/events) to completion instead of polling status.
	Tail bool `json:"tail,omitempty"`
	// JobTimeoutSec bounds one job's submit-to-terminal wall time
	// (default 300).
	JobTimeoutSec float64      `json:"job_timeout_sec,omitempty"`
	Tenants       []TenantLoad `json:"tenants"`
}

// TenantLoad is one tenant's traffic.
type TenantLoad struct {
	Name string `json:"name"`
	// Clients is the number of concurrent closed-loop clients (each
	// submits a job, waits for it to finish, sleeps a gap, repeats).
	Clients int `json:"clients"`
	// JobsPerClient is how many jobs each client submits (default 1).
	JobsPerClient int `json:"jobs_per_client,omitempty"`
	// MeanGapMs is the mean of the exponential think time between a
	// client's jobs (default 20).
	MeanGapMs float64 `json:"mean_gap_ms,omitempty"`
	// Priority applies to every job of this tenant.
	Priority float64 `json:"priority,omitempty"`
	// Mix is the weighted program mix clients draw from. Required.
	Mix []LoadJob `json:"mix"`
}

// LoadJob is one entry of a tenant's program mix: either a named
// built-in workload with its shape parameters, or raw program source.
type LoadJob struct {
	// Workload names a built-in: gnmf, gnmfkl, rsvd, regression,
	// pagerank, matmul; or "source" to submit Source verbatim.
	Workload string `json:"workload"`
	Source   string `json:"source,omitempty"`
	// Weight is the mix weight (default 1).
	Weight float64 `json:"weight,omitempty"`

	// Shape parameters (workload-specific; zero picks a small default).
	M           int     `json:"m,omitempty"`
	N           int     `json:"n,omitempty"`
	R           int     `json:"r,omitempty"`
	K           int     `json:"k,omitempty"`
	Iters       int     `json:"iters,omitempty"`
	Power       int     `json:"power,omitempty"`
	Density     float64 `json:"density,omitempty"`
	Alpha       float64 `json:"alpha,omitempty"`
	Tile        int     `json:"tile,omitempty"`
	Nodes       int     `json:"nodes,omitempty"`
	Slots       int     `json:"slots,omitempty"`
	Materialize bool    `json:"materialize,omitempty"`
	Seed        int64   `json:"seed,omitempty"`

	Optimize      bool    `json:"optimize,omitempty"`
	DeadlineSec   float64 `json:"deadline_sec,omitempty"`
	BudgetDollars float64 `json:"budget_dollars,omitempty"`
}

// ParseLoadSpec decodes and validates a JSON load spec.
func ParseLoadSpec(data []byte) (*LoadSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec LoadSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("load spec: %w", err)
	}
	if len(spec.Tenants) == 0 {
		return nil, fmt.Errorf("load spec: no tenants")
	}
	if spec.MaxWaitSec <= 0 {
		spec.MaxWaitSec = 120
	}
	if spec.PollMs <= 0 {
		spec.PollMs = 10
	}
	if spec.JobTimeoutSec <= 0 {
		spec.JobTimeoutSec = 300
	}
	for i := range spec.Tenants {
		t := &spec.Tenants[i]
		if t.Name == "" {
			return nil, fmt.Errorf("load spec: tenant %d has no name", i)
		}
		if t.Clients <= 0 {
			t.Clients = 1
		}
		if t.JobsPerClient <= 0 {
			t.JobsPerClient = 1
		}
		if t.MeanGapMs <= 0 {
			t.MeanGapMs = 20
		}
		if len(t.Mix) == 0 {
			return nil, fmt.Errorf("load spec: tenant %s has an empty mix", t.Name)
		}
		for j := range t.Mix {
			if _, err := t.Mix[j].buildProgram(); err != nil {
				return nil, fmt.Errorf("load spec: tenant %s mix[%d]: %w", t.Name, j, err)
			}
		}
	}
	return &spec, nil
}

// buildProgram renders the mix entry to program source plus a density
// hint for its sparse inputs.
func (lj LoadJob) buildProgram() (string, error) {
	pick := func(v, def int) int {
		if v > 0 {
			return v
		}
		return def
	}
	density := lj.Density
	if density <= 0 {
		density = 0.05
	}
	alpha := lj.Alpha
	if alpha <= 0 {
		alpha = 0.85
	}
	switch lj.Workload {
	case "source":
		if lj.Source == "" {
			return "", fmt.Errorf("workload \"source\" needs a source field")
		}
		return lj.Source, nil
	case "gnmf":
		return workloads.GNMF(pick(lj.M, 48), pick(lj.N, 36), pick(lj.R, 4), pick(lj.Iters, 1), density).Prog.String(), nil
	case "gnmfkl":
		return workloads.GNMFKL(pick(lj.M, 48), pick(lj.N, 36), pick(lj.R, 4), pick(lj.Iters, 1), density).Prog.String(), nil
	case "rsvd":
		return workloads.RSVD(pick(lj.M, 64), pick(lj.N, 48), pick(lj.K, 8), pick(lj.Power, 1)).Prog.String(), nil
	case "regression":
		return workloads.Regression(pick(lj.M, 64), pick(lj.N, 16), pick(lj.Iters, 2), 0.01).Prog.String(), nil
	case "pagerank":
		return workloads.PageRank(pick(lj.N, 64), pick(lj.Iters, 2), density, alpha).Prog.String(), nil
	case "matmul":
		return workloads.MatMul(pick(lj.M, 64), pick(lj.K, 48), pick(lj.N, 64)).Prog.String(), nil
	default:
		return "", fmt.Errorf("unknown workload %q (want gnmf, gnmfkl, rsvd, regression, pagerank, matmul or source)", lj.Workload)
	}
}

// submitRequest renders the mix entry to the server's submit body.
func (lj LoadJob) submitRequest(tenant string, priority float64) (SubmitRequest, error) {
	src, err := lj.buildProgram()
	if err != nil {
		return SubmitRequest{}, err
	}
	return SubmitRequest{
		Tenant: tenant, Program: src, Priority: priority,
		Tile: pickInt(lj.Tile, 16), Density: lj.Density,
		Nodes: lj.Nodes, Slots: lj.Slots,
		Materialize: lj.Materialize, Seed: lj.Seed,
		Optimize: lj.Optimize, DeadlineSec: lj.DeadlineSec, BudgetDollars: lj.BudgetDollars,
	}, nil
}

func pickInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// JobOutcome is one submitted job as the load generator saw it.
type JobOutcome struct {
	Tenant  string
	ID      string
	State   JobState
	WaitSec float64
	Error   string
}

// TenantReport aggregates one tenant's outcomes.
type TenantReport struct {
	Tenant    string `json:"tenant"`
	Submitted int    `json:"submitted"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// Canceled counts jobs that ended canceled: an explicit client (or
	// operator) action, not a server error, so they are tallied apart
	// from failures — but they still mean the run did not complete
	// everything.
	Canceled    int     `json:"canceled"`
	MaxWaitSec  float64 `json:"max_wait_sec"`
	MeanWaitSec float64 `json:"mean_wait_sec"`
	// ServiceShare is the tenant's fraction of all service charged;
	// WeightShare is the fraction its weight entitles it to under
	// saturation. Comparable when all tenants keep the cluster busy.
	ServiceShare float64 `json:"service_share"`
	WeightShare  float64 `json:"weight_share"`
	// E2E latency quantiles (seconds) from the server's per-tenant
	// cumulond_e2e_seconds histogram, so CI can assert SLOs on the same
	// numbers /metrics serves.
	P50Sec float64 `json:"e2e_p50_sec"`
	P95Sec float64 `json:"e2e_p95_sec"`
	P99Sec float64 `json:"e2e_p99_sec"`
}

// LoadReport is the result of one load run.
type LoadReport struct {
	DurationSec float64        `json:"duration_sec"`
	Tenants     []TenantReport `json:"tenants"`
	Cache       CacheStats     `json:"cache"`
	// AllCompleted is true when every submitted job succeeded (a failed
	// or canceled job clears it).
	AllCompleted bool `json:"all_completed"`
	// Starved lists jobs whose admission-to-start wait exceeded the
	// spec's MaxWaitSec bound.
	Starved []JobOutcome `json:"-"`
}

// RunLoad drives the server at baseURL with the spec's traffic and
// returns the per-tenant report. It is used both by cmd/cumulon-load
// and by the server's end-to-end tests (against httptest servers).
func RunLoad(baseURL string, spec *LoadSpec) (*LoadReport, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var mu sync.Mutex
	var outcomes []JobOutcome
	var wg sync.WaitGroup
	for ti := range spec.Tenants {
		t := spec.Tenants[ti]
		for ci := 0; ci < t.Clients; ci++ {
			wg.Add(1)
			go func(ti, ci int, t TenantLoad) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(spec.Seed + int64(ti)*1009 + int64(ci)*9176))
				for k := 0; k < t.JobsPerClient; k++ {
					gap := time.Duration(rng.ExpFloat64()*t.MeanGapMs) * time.Millisecond
					time.Sleep(gap)
					lj := pickMix(t.Mix, rng)
					out := runOne(client, baseURL, lj, t, spec)
					mu.Lock()
					outcomes = append(outcomes, out)
					mu.Unlock()
				}
			}(ti, ci, t)
		}
	}
	wg.Wait()

	rep := &LoadReport{DurationSec: time.Since(start).Seconds()}
	stats, err := fetchStats(client, baseURL)
	if err != nil {
		return nil, err
	}
	rep.Cache = stats.Cache

	var totalService, totalWeight float64
	serviceOf := map[string]float64{}
	weightOf := map[string]float64{}
	for _, ts := range stats.Tenants {
		serviceOf[ts.Tenant] = ts.Service
		weightOf[ts.Tenant] = ts.Weight
		totalService += ts.Service
		totalWeight += ts.Weight
	}
	reports, starved, allCompleted := aggregateOutcomes(outcomes, spec.MaxWaitSec)
	rep.Starved = starved
	rep.AllCompleted = allCompleted
	quantiles, err := fetchE2EQuantiles(client, baseURL)
	if err != nil {
		return nil, err
	}
	for _, tr := range reports {
		if totalService > 0 {
			tr.ServiceShare = serviceOf[tr.Tenant] / totalService
		}
		if totalWeight > 0 {
			tr.WeightShare = weightOf[tr.Tenant] / totalWeight
		}
		if q, ok := quantiles[tr.Tenant]; ok {
			tr.P50Sec, tr.P95Sec, tr.P99Sec = q[0], q[1], q[2]
		}
		rep.Tenants = append(rep.Tenants, *tr)
	}
	return rep, nil
}

// aggregateOutcomes folds job outcomes into per-tenant reports (sorted
// by tenant name, waits averaged) plus the jobs that starved past
// maxWaitSec. Succeeded jobs count as Completed, canceled jobs as
// Canceled, everything else as Failed; allCompleted holds only when
// every job succeeded.
func aggregateOutcomes(outcomes []JobOutcome, maxWaitSec float64) (reports []*TenantReport, starved []JobOutcome, allCompleted bool) {
	allCompleted = true
	byTenant := map[string]*TenantReport{}
	var names []string
	for _, o := range outcomes {
		tr := byTenant[o.Tenant]
		if tr == nil {
			tr = &TenantReport{Tenant: o.Tenant}
			byTenant[o.Tenant] = tr
			names = append(names, o.Tenant)
		}
		tr.Submitted++
		switch o.State {
		case StateSucceeded:
			tr.Completed++
		case StateCanceled:
			tr.Canceled++
			allCompleted = false
		default:
			tr.Failed++
			allCompleted = false
		}
		tr.MeanWaitSec += o.WaitSec
		if o.WaitSec > tr.MaxWaitSec {
			tr.MaxWaitSec = o.WaitSec
		}
		if o.WaitSec > maxWaitSec {
			starved = append(starved, o)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		tr := byTenant[n]
		if tr.Submitted > 0 {
			tr.MeanWaitSec /= float64(tr.Submitted)
		}
		reports = append(reports, tr)
	}
	return reports, starved, allCompleted
}

// fetchE2EQuantiles reads /metrics.json and computes each tenant's
// p50/p95/p99 from the cumulond_e2e_seconds histogram series — the same
// interpolation the server's dashboard uses (obs.QuantileFromBuckets).
func fetchE2EQuantiles(client *http.Client, baseURL string) (map[string][3]float64, error) {
	var dump struct {
		Metrics []struct {
			Name   string `json:"name"`
			Series []struct {
				Labels  string `json:"labels"`
				Buckets []struct {
					LE         string `json:"le"`
					Cumulative uint64 `json:"cumulative"`
				} `json:"buckets"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := getJSON(client, baseURL+"/metrics.json", &dump); err != nil {
		return nil, err
	}
	out := map[string][3]float64{}
	for _, m := range dump.Metrics {
		if m.Name != "cumulond_e2e_seconds" {
			continue
		}
		for _, s := range m.Series {
			tenant, ok := tenantOfLabels(s.Labels)
			if !ok {
				continue
			}
			bounds := make([]float64, 0, len(s.Buckets))
			cum := make([]uint64, 0, len(s.Buckets))
			for _, b := range s.Buckets {
				if b.LE != "+Inf" {
					v, err := strconv.ParseFloat(b.LE, 64)
					if err != nil {
						return nil, fmt.Errorf("metrics.json: bad bucket bound %q: %w", b.LE, err)
					}
					bounds = append(bounds, v)
				}
				cum = append(cum, b.Cumulative)
			}
			out[tenant] = [3]float64{
				obs.QuantileFromBuckets(bounds, cum, 0.50),
				obs.QuantileFromBuckets(bounds, cum, 0.95),
				obs.QuantileFromBuckets(bounds, cum, 0.99),
			}
		}
	}
	return out, nil
}

// tenantOfLabels extracts the tenant from a label string like
// `{tenant="acme"}`.
func tenantOfLabels(labels string) (string, bool) {
	const prefix = `{tenant="`
	if !strings.HasPrefix(labels, prefix) || !strings.HasSuffix(labels, `"}`) {
		return "", false
	}
	return labels[len(prefix) : len(labels)-2], true
}

// pickMix draws one mix entry by weight.
func pickMix(mix []LoadJob, rng *rand.Rand) LoadJob {
	total := 0.0
	for _, m := range mix {
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		total += w
	}
	x := rng.Float64() * total
	for _, m := range mix {
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		if x < w {
			return m
		}
		x -= w
	}
	return mix[len(mix)-1]
}

// runOne submits one job and polls it to a terminal state.
func runOne(client *http.Client, baseURL string, lj LoadJob, t TenantLoad, spec *LoadSpec) JobOutcome {
	out := JobOutcome{Tenant: t.Name}
	req, err := lj.submitRequest(t.Name, t.Priority)
	if err != nil {
		out.State, out.Error = StateFailed, err.Error()
		return out
	}
	var st JobStatus
	if err := postJSON(client, baseURL+"/v1/jobs", req, &st); err != nil {
		out.State, out.Error = StateFailed, err.Error()
		return out
	}
	out.ID = st.ID
	deadline := time.Now().Add(time.Duration(spec.JobTimeoutSec * float64(time.Second)))
	if spec.Tail {
		if err := tailEvents(client, baseURL, st.ID, deadline); err != nil {
			out.State, out.Error = StateFailed, err.Error()
			return out
		}
		// The stream is complete; one status fetch gets the outcome.
		if err := getJSON(client, baseURL+"/v1/jobs/"+st.ID, &st); err != nil {
			out.State, out.Error = StateFailed, err.Error()
			return out
		}
	}
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			out.State, out.Error = StateFailed, fmt.Sprintf("job %s timed out after %.0fs in state %s", st.ID, spec.JobTimeoutSec, st.State)
			return out
		}
		time.Sleep(time.Duration(spec.PollMs) * time.Millisecond)
		if err := getJSON(client, baseURL+"/v1/jobs/"+st.ID, &st); err != nil {
			out.State, out.Error = StateFailed, err.Error()
			return out
		}
	}
	out.State = st.State
	out.WaitSec = st.QueueWaitSec
	out.Error = st.Error
	return out
}

// tailEvents consumes a job's event stream by long-poll until the
// terminal event, verifying the resume contract as it goes: every page
// continues exactly at the cursor the previous page returned.
func tailEvents(client *http.Client, baseURL, id string, deadline time.Time) error {
	since := 0
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s: event stream not done by the job timeout", id)
		}
		var page EventPage
		u := baseURL + "/v1/jobs/" + id + "/events?wait=5&since=" + url.QueryEscape(strconv.Itoa(since))
		if err := getJSON(client, u, &page); err != nil {
			return err
		}
		for _, ev := range page.Events {
			if ev.Seq != since {
				return fmt.Errorf("job %s: event gap: got seq %d at cursor %d", id, ev.Seq, since)
			}
			since++
		}
		if page.Next != since {
			return fmt.Errorf("job %s: server cursor %d disagrees with consumed %d", id, page.Next, since)
		}
		if page.Done {
			return nil
		}
	}
}

func fetchStats(client *http.Client, baseURL string) (*Stats, error) {
	var st Stats
	if err := getJSON(client, baseURL+"/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func postJSON(client *http.Client, url string, body, into any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, into)
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, into)
}

func decodeResponse(resp *http.Response, into any) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, into)
}

// Write renders the report as a human-readable per-tenant table.
func (r *LoadReport) Write(w io.Writer) error {
	fmt.Fprintf(w, "load run: %.1fs wall\n", r.DurationSec)
	fmt.Fprintf(w, "%-12s %9s %9s %6s %8s %10s %10s %8s %8s %9s %9s\n",
		"tenant", "submitted", "completed", "failed", "canceled", "maxwait(s)", "meanwait(s)", "p50(s)", "p95(s)", "svc-share", "wt-share")
	for _, t := range r.Tenants {
		fmt.Fprintf(w, "%-12s %9d %9d %6d %8d %10.3f %10.3f %8.3f %8.3f %8.1f%% %8.1f%%\n",
			t.Tenant, t.Submitted, t.Completed, t.Failed, t.Canceled,
			t.MaxWaitSec, t.MeanWaitSec, t.P50Sec, t.P95Sec, 100*t.ServiceShare, 100*t.WeightShare)
	}
	fmt.Fprintf(w, "plan cache: %d hits, %d misses; deployment cache: %d hits, %d misses\n",
		r.Cache.PlanHits, r.Cache.PlanMisses, r.Cache.DepHits, r.Cache.DepMisses)
	if len(r.Starved) > 0 {
		fmt.Fprintf(w, "STARVED: %d job(s) exceeded the wait bound:\n", len(r.Starved))
		for _, o := range r.Starved {
			fmt.Fprintf(w, "  %s %s waited %.1fs\n", o.Tenant, o.ID, o.WaitSec)
		}
	}
	if !r.AllCompleted {
		fmt.Fprintln(w, "FAILED or CANCELED jobs present")
	}
	return nil
}

// Healthy reports whether the run completed everything without
// starvation (and optionally with plan-cache hits). Failed jobs are
// reported ahead of canceled ones: a failure is a server-side error
// while a cancellation was asked for, but neither is a completed run.
func (r *LoadReport) Healthy(requireCacheHits bool) error {
	if !r.AllCompleted {
		for _, t := range r.Tenants {
			if t.Failed > 0 {
				return fmt.Errorf("load: tenant %s had %d failed job(s)", t.Tenant, t.Failed)
			}
		}
		for _, t := range r.Tenants {
			if t.Canceled > 0 {
				return fmt.Errorf("load: tenant %s had %d canceled job(s)", t.Tenant, t.Canceled)
			}
		}
		return fmt.Errorf("load: incomplete jobs present")
	}
	if len(r.Starved) > 0 {
		return fmt.Errorf("load: %d job(s) starved past the wait bound", len(r.Starved))
	}
	if requireCacheHits && r.Cache.PlanHits == 0 {
		return fmt.Errorf("load: expected plan cache hits, saw none (misses %d)", r.Cache.PlanMisses)
	}
	return nil
}
