// Package server is cumulond: a long-running multi-tenant job service
// wrapping core.Session. Clients submit program source over HTTP+JSON;
// an admission controller queues jobs against a shared simulated
// cluster's node capacity; a weighted fair-share scheduler with
// priority aging orders the queue across tenants; admitted jobs run on
// worker goroutines over per-job engine instances; and a plan cache
// keyed by program hash × config fronts compilation and the optimizer.
// Per-tenant metrics fold into an obs.Registry served at /metrics.
package server

import (
	"fmt"
	"sort"
)

// SchedJob is one queued unit of work as the scheduler sees it: no
// program, no plan — just the identity, size and urgency the ordering
// decision needs. The fairness tests drive the scheduler with synthetic
// SchedJobs and a logical clock, never running real programs.
type SchedJob struct {
	ID     string
	Tenant string
	// Priority raises urgency within and across tenants (default 0;
	// higher is more urgent). One priority point is worth PriorityBoost
	// service units of head start.
	Priority float64
	// Nodes is the cluster share the job needs while running.
	Nodes int
	// Enqueued is the submission time in seconds on the caller's clock.
	Enqueued float64

	seq int // arrival order, the final tiebreaker
}

// SchedConfig tunes the fair-share scheduler.
type SchedConfig struct {
	// Weights maps tenant name to fair-share weight; tenants absent from
	// the map get DefaultWeight. A tenant with weight 2 is entitled to
	// twice the service of a tenant with weight 1 under contention.
	Weights map[string]float64
	// DefaultWeight is the weight of unlisted tenants (default 1).
	DefaultWeight float64
	// AgingRate is the service-units-per-second a waiting job's rank
	// improves by (default 1). Aging guarantees starvation-freedom: any
	// fixed service deficit is eventually outweighed by waiting.
	AgingRate float64
	// PriorityBoost converts one priority point into service units of
	// head start (default 100).
	PriorityBoost float64
	// ReserveAfterSec bounds head-of-line bypass: once the best-ranked
	// queued job has waited this long without fitting the free capacity,
	// no worse-ranked job may be scheduled around it — the scheduler
	// drains until the reserved job fits. This bounds the wait of wide
	// jobs that backfilling would otherwise starve (default 60).
	ReserveAfterSec float64
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.AgingRate <= 0 {
		c.AgingRate = 1
	}
	if c.PriorityBoost <= 0 {
		c.PriorityBoost = 100
	}
	if c.ReserveAfterSec <= 0 {
		c.ReserveAfterSec = 60
	}
	return c
}

// FairScheduler orders queued jobs by weighted fair share across
// tenants with priority aging. It is a passive data structure — the
// caller supplies the clock and drives Push/Next/Charge under its own
// lock — so tests can replay seeded arrival schedules against a logical
// clock and assert deterministic, starvation-free order.
//
// Rank: each queued job scores
//
//	service(tenant)/weight(tenant) − AgingRate·wait − PriorityBoost·priority
//
// and the lowest score runs next (ties: arrival order). Service is the
// cumulative cost Charge has attributed to the tenant (the server
// charges simulated slot-seconds), so tenants that have consumed less
// than their share rank first; the aging term grows without bound, so
// every job's rank eventually beats any fixed deficit — no tenant
// starves behind a heavy one.
type FairScheduler struct {
	cfg     SchedConfig
	service map[string]float64
	queue   []*SchedJob
	seq     int
}

// NewFairScheduler returns an empty scheduler.
func NewFairScheduler(cfg SchedConfig) *FairScheduler {
	return &FairScheduler{cfg: cfg.withDefaults(), service: map[string]float64{}}
}

// Weight returns the tenant's configured fair-share weight.
func (f *FairScheduler) Weight(tenant string) float64 {
	if w, ok := f.cfg.Weights[tenant]; ok && w > 0 {
		return w
	}
	return f.cfg.DefaultWeight
}

// Push enqueues a job. The job's Enqueued time must be on the same
// clock later passed to Next.
func (f *FairScheduler) Push(j SchedJob) {
	cp := j
	cp.seq = f.seq
	f.seq++
	f.queue = append(f.queue, &cp)
}

// Score returns the job's current rank (lower runs first).
func (f *FairScheduler) Score(j *SchedJob, now float64) float64 {
	wait := now - j.Enqueued
	if wait < 0 {
		wait = 0
	}
	return f.service[j.Tenant]/f.Weight(j.Tenant) - f.cfg.AgingRate*wait - f.cfg.PriorityBoost*j.Priority
}

// ranked returns the queue indices in rank order.
func (f *FairScheduler) ranked(now float64) []int {
	order := make([]int, len(f.queue))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := f.queue[order[a]], f.queue[order[b]]
		sa, sb := f.Score(ja, now), f.Score(jb, now)
		if sa != sb {
			return sa < sb
		}
		return ja.seq < jb.seq
	})
	return order
}

// Next pops the job that should run now given freeNodes of spare
// capacity, or nil if nothing should start. The best-ranked job that
// fits wins; jobs too wide for the current free capacity are backfilled
// around only until they have waited ReserveAfterSec, after which the
// scheduler returns nil until capacity frees up for them (bounded-wait
// reservation for wide jobs).
func (f *FairScheduler) Next(freeNodes int, now float64) *SchedJob {
	for _, i := range f.ranked(now) {
		j := f.queue[i]
		if j.Nodes <= freeNodes {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return j
		}
		if now-j.Enqueued >= f.cfg.ReserveAfterSec {
			// Reserved: stop backfilling around this starving wide job.
			return nil
		}
	}
	return nil
}

// Charge attributes cost service units to the tenant; the scheduler
// deprioritizes the tenant's queued jobs accordingly.
func (f *FairScheduler) Charge(tenant string, cost float64) {
	if cost > 0 {
		f.service[tenant] += cost
	}
}

// Service returns the cumulative service charged to the tenant.
func (f *FairScheduler) Service(tenant string) float64 { return f.service[tenant] }

// Remove deletes a queued job by ID (cancellation); it reports whether
// the job was queued.
func (f *FairScheduler) Remove(id string) bool {
	for i, j := range f.queue {
		if j.ID == id {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Depth returns the number of queued jobs.
func (f *FairScheduler) Depth() int { return len(f.queue) }

// Queued returns the queued job IDs in current rank order (a status
// endpoint convenience).
func (f *FairScheduler) Queued(now float64) []string {
	out := make([]string, 0, len(f.queue))
	for _, i := range f.ranked(now) {
		out = append(out, f.queue[i].ID)
	}
	return out
}

// String summarizes the scheduler state for logs.
func (f *FairScheduler) String() string {
	return fmt.Sprintf("fair-share queue depth %d", len(f.queue))
}
