package server

import (
	"html/template"
	"net/http"
	"strconv"
)

// dashData is the template input for /debug/dash, assembled under s.mu.
type dashData struct {
	UptimeSec  float64
	Machine    string
	Capacity   int
	FreeNodes  int
	Running    int
	QueueDepth int
	Cache      CacheStats
	Pruned     int64
	Tenants    []dashTenant
	Jobs       []JobStatus
}

type dashTenant struct {
	Tenant             string
	Weight             float64
	Service            float64
	Debt               float64
	QueueP50, QueueP95 float64
	E2EP50, E2EP95     float64
	E2EP99             float64
	Buckets            []dashBucket
}

// dashBucket is one bar of a tenant's e2e latency histogram (non-cumulative).
type dashBucket struct {
	Label string
	Count uint64
	Pct   float64 // width percentage of the largest bucket
}

// handleDash renders the self-contained ops dashboard: no external
// assets, no JavaScript — plain HTML with inline CSS bars and a meta
// refresh, so it works from curl, air-gapped hosts and CI alike. The
// numbers are the same ones /metrics.json serves.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	d := dashData{
		UptimeSec: s.now(), Machine: s.cfg.Machine,
		Capacity: s.cfg.Nodes, FreeNodes: s.freeNodes,
		Running: s.running, QueueDepth: s.sched.Depth(),
		Cache:  s.cache.Stats(),
		Pruned: s.store.pruned,
	}
	minNorm := 0.0
	first := true
	for tenant := range s.tenantHists {
		n := s.sched.Service(tenant) / s.sched.Weight(tenant)
		if first || n < minNorm {
			minNorm, first = n, false
		}
	}
	for _, tenant := range sortedTenants(s.tenantHists) {
		ts := s.tenantHists[tenant]
		dt := dashTenant{
			Tenant:   tenant,
			Weight:   s.sched.Weight(tenant),
			Service:  s.sched.Service(tenant),
			Debt:     s.sched.Service(tenant)/s.sched.Weight(tenant) - minNorm,
			QueueP50: ts.queue.Quantile(0.5),
			QueueP95: ts.queue.Quantile(0.95),
			E2EP50:   ts.e2e.Quantile(0.5),
			E2EP95:   ts.e2e.Quantile(0.95),
			E2EP99:   ts.e2e.Quantile(0.99),
			Buckets:  dashBuckets(ts),
		}
		d.Tenants = append(d.Tenants, dt)
	}
	// Recent jobs, newest first.
	n := len(s.store.order)
	lo := n - 20
	if lo < 0 {
		lo = 0
	}
	for i := n - 1; i >= lo; i-- {
		j := s.store.jobs[s.store.order[i]]
		st := j.status
		if j.state == StateQueued {
			st.QueueWaitSec = s.now() - j.enqueued
		}
		d.Jobs = append(d.Jobs, st)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashTmpl.Execute(w, d); err != nil {
		// Headers are gone; nothing useful left to do.
		return
	}
}

// dashBuckets converts a tenant's e2e histogram into renderable bars,
// trimming empty leading/trailing buckets.
func dashBuckets(ts *tenantSeries) []dashBucket {
	bounds, counts := ts.e2e.Buckets()
	lo, hi := len(counts), -1
	var max uint64
	for i, c := range counts {
		if c > 0 {
			if i < lo {
				lo = i
			}
			hi = i
			if c > max {
				max = c
			}
		}
	}
	if hi < 0 {
		return nil
	}
	out := make([]dashBucket, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		label := "+Inf"
		if i < len(bounds) {
			label = strconv.FormatFloat(bounds[i], 'g', -1, 64)
		}
		out = append(out, dashBucket{
			Label: label,
			Count: counts[i],
			Pct:   100 * float64(counts[i]) / float64(max),
		})
	}
	return out
}

var dashTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>cumulond</title>
<style>
body{font-family:monospace;background:#111;color:#ddd;margin:1.5em}
h1{font-size:1.2em}h2{font-size:1em;margin-top:1.5em;color:#9cf}
table{border-collapse:collapse;margin-top:.5em}
td,th{border:1px solid #333;padding:.25em .6em;text-align:right}
th{color:#9cf}td:first-child,th:first-child{text-align:left}
.bar{background:#2a6;display:inline-block;height:.7em}
.queued{color:#fc6}.running{color:#6cf}.succeeded{color:#6f6}.failed{color:#f66}.canceled{color:#999}
small{color:#888}
</style></head><body>
<h1>cumulond &middot; {{.Machine}} &middot; {{printf "%.0f" .UptimeSec}}s up</h1>
<p>nodes {{.FreeNodes}}/{{.Capacity}} free &middot; running {{.Running}} &middot; queued {{.QueueDepth}}
&middot; cache {{.Cache.Entries}} entries ({{.Cache.PlanHits}}+{{.Cache.DepHits}} hits, {{.Cache.Evictions}} evicted)
&middot; {{.Pruned}} jobs pruned</p>
<h2>tenants</h2>
<table><tr><th>tenant</th><th>weight</th><th>service</th><th>debt</th>
<th>queue p50</th><th>queue p95</th><th>e2e p50</th><th>e2e p95</th><th>e2e p99</th></tr>
{{range .Tenants}}<tr><td>{{.Tenant}}</td><td>{{printf "%.1f" .Weight}}</td>
<td>{{printf "%.1f" .Service}}</td><td>{{printf "%.1f" .Debt}}</td>
<td>{{printf "%.3fs" .QueueP50}}</td><td>{{printf "%.3fs" .QueueP95}}</td>
<td>{{printf "%.3fs" .E2EP50}}</td><td>{{printf "%.3fs" .E2EP95}}</td><td>{{printf "%.3fs" .E2EP99}}</td></tr>
{{end}}</table>
{{range .Tenants}}{{if .Buckets}}
<h2>e2e latency &middot; {{.Tenant}}</h2>
<table>{{range .Buckets}}<tr><td>&le; {{.Label}}s</td>
<td style="text-align:left;border:none;min-width:20em"><span class="bar" style="width:{{printf "%.0f" .Pct}}%"></span> {{.Count}}</td></tr>
{{end}}</table>
{{end}}{{end}}
<h2>recent jobs</h2>
<table><tr><th>id</th><th>tenant</th><th>state</th><th>nodes</th><th>queue s</th><th>run s</th><th>cluster</th></tr>
{{range .Jobs}}<tr><td>{{.ID}}</td><td>{{.Tenant}}</td><td class="{{.State}}">{{.State}}</td>
<td>{{.Nodes}}</td><td>{{printf "%.3f" .QueueWaitSec}}</td><td>{{printf "%.3f" .RunSec}}</td><td>{{.Cluster}}</td></tr>
{{end}}</table>
<p><small>auto-refreshes every 2s &middot; data also at /metrics and /metrics.json</small></p>
</body></html>
`))
