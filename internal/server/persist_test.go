package server

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cumulon/internal/workloads"
)

// gnmf3Source is a 3-iteration GNMF, long enough to cross several
// checkpoint boundaries.
func gnmf3Source() string {
	return workloads.GNMF(24, 18, 3, 3, 0.4).Prog.String()
}

// awaitTerminal polls a job directly (no HTTP) until it reaches a
// terminal state.
func awaitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// outputDigests flattens a terminal status's output digests for
// bit-identity comparison across runs.
func outputDigests(st JobStatus) []string {
	var ds []string
	if st.Result == nil {
		return ds
	}
	for _, o := range st.Result.Outputs {
		ds = append(ds, o.Name+":"+o.SHA256)
	}
	return ds
}

// TestStatePersisterJournalRecovery exercises the journal layer alone:
// snapshot + replay round trip, last-write-wins upserts, deletions,
// torn-tail tolerance, unreadable-snapshot fallback, generation
// rotation, and the disable() crash hook.
func TestStatePersisterJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	pjob := func(id string, st JobState) persistedJob {
		return persistedJob{
			ID: id, Req: SubmitRequest{Tenant: "t", Program: "W = A * B;"},
			State:  st,
			Status: JobStatus{ID: id, Tenant: "t", State: st},
		}
	}

	p, snap, err := openState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 0 || len(snap.Jobs) != 0 {
		t.Fatalf("fresh dir loaded state %+v", snap)
	}
	if err := p.begin(&snapshotFile{Seq: 2, Jobs: []persistedJob{
		pjob("j-000001", StateSucceeded), pjob("j-000002", StateQueued),
	}}); err != nil {
		t.Fatal(err)
	}
	p.put(3, pjob("j-000003", StateRunning))
	p.put(3, pjob("j-000003", StateSucceeded)) // upsert: replay keeps the last write
	p.remove("j-000001")
	p.close()
	// A crash mid-append leaves a torn final line; replay must keep
	// everything before it.
	f, err := os.OpenFile(filepath.Join(dir, journalName(1)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","job":{"id":"j-00`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// An unreadable snapshot of a higher generation (a crash before its
	// rename, or disk corruption) must fall back, never wedge the boot.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(9)), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	p2, snap2, err := openState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Seq != 3 {
		t.Fatalf("seq = %d, want 3", snap2.Seq)
	}
	var ids []string
	for _, j := range snap2.Jobs {
		ids = append(ids, j.ID+"/"+string(j.State))
	}
	want := []string{"j-000002/queued", "j-000003/succeeded"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("recovered jobs %v, want %v", ids, want)
	}
	if err := p2.begin(snap2); err != nil {
		t.Fatal(err)
	}
	// Rotation: the old generation is garbage once the new one is durable.
	if _, err := os.Stat(filepath.Join(dir, snapshotName(1))); !os.IsNotExist(err) {
		t.Fatal("generation 1 snapshot survived rotation")
	}
	if _, err := os.Stat(filepath.Join(dir, journalName(1))); !os.IsNotExist(err) {
		t.Fatal("generation 1 journal survived rotation")
	}
	p2.put(9, pjob("j-000009", StateQueued))
	p2.disable() // the SIGKILL instant: nothing after it reaches disk
	p2.put(10, pjob("j-000010", StateQueued))
	p2.close()

	p3, snap3, err := openState(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p3.close()
	if snap3.Seq != 9 || len(snap3.Jobs) != 3 {
		t.Fatalf("after crash: seq %d, %d jobs; want 9, 3", snap3.Seq, len(snap3.Jobs))
	}
	for _, j := range snap3.Jobs {
		if j.ID == "j-000010" {
			t.Fatal("post-kill transition reached the journal")
		}
	}
}

// TestServerRestartRecovery is the crash/reboot acceptance test: a
// cumulond with a state directory is killed with a mix of finished,
// canceled, queued and mid-run jobs, and a fresh server on the same
// directory must serve the pre-crash history byte-for-byte (status,
// output digests, retained artifacts) and drive every unfinished job to
// completion — the mid-run one resuming from its program checkpoint
// with bit-identical outputs.
//
// The kill image is built deterministically: a real server produces the
// history, then the exact journal a process dying mid-run would leave
// (a job caught at state "running", another still "queued", a torn
// final line) is appended before reboot. disable() freezes writes at
// the kill instant, so nothing later leaks to disk.
func TestServerRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Nodes: 4, StateDir: dir} // every job takes 4 nodes: strictly serial

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Job A: completes before the crash; its checkpoints seed the store
	// and its status/artifacts are the recovery oracle.
	reqA := SubmitRequest{
		Tenant: "alpha", Program: gnmf3Source(),
		Tile: 4, Density: 0.4, Seed: 101,
		Materialize: true, Trace: true, CheckpointEvery: 1,
	}
	stA0, err := s1.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	stA := awaitTerminal(t, s1, stA0.ID)
	if stA.State != StateSucceeded {
		t.Fatalf("job A: %s (%s)", stA.State, stA.Error)
	}
	if stA.Result.Checkpoints == 0 {
		t.Fatal("job A wrote no checkpoints")
	}
	if stA.Result.ResumedStmt != 0 {
		t.Fatal("job A had nothing to resume from")
	}
	manifests, _ := filepath.Glob(filepath.Join(dir, "ckpt", "*", "iter-*", "manifest.json"))
	if len(manifests) == 0 {
		t.Fatal("no checkpoint manifests under the state dir")
	}
	s1.mu.Lock()
	normA := s1.store.jobs[stA.ID].req // normalized request, as journaled
	var traceA []byte
	if a := s1.store.jobs[stA.ID].artifacts; a != nil {
		traceA = append([]byte(nil), a.trace...)
	}
	s1.mu.Unlock()
	if len(traceA) == 0 {
		t.Fatal("job A retained no trace artifact")
	}

	// Choke capacity so jobs C and D stay queued, then cancel D.
	s1.mu.Lock()
	s1.freeNodes = 0
	s1.mu.Unlock()
	reqC := normA
	reqC.Tenant, reqC.Trace = "beta", false
	stC, err := s1.Submit(reqC) // j-000002: queued at the crash
	if err != nil {
		t.Fatal(err)
	}
	stD, err := s1.Submit(SubmitRequest{Tenant: "alpha", Program: gnmfSource()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Cancel(stD.ID); err != nil { // j-000003: canceled history
		t.Fatal(err)
	}
	s1.Close()

	// Append the kill-instant tail: job B was admitted and mid-run (its
	// terminal transition never made it to disk), job E was queued, and
	// the final line is torn. This is byte-for-byte what a SIGKILLed
	// process leaves behind.
	reqB := normA
	reqB.Trace = false
	reqE := reqB
	reqE.Seed = 202 // different seed: no checkpoint to resume from
	jf, err := os.OpenFile(filepath.Join(dir, "jobs", journalName(1)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		seq int
		pj  persistedJob
	}{
		{4, persistedJob{ID: "j-000004", Req: reqB, State: StateRunning,
			Status: JobStatus{ID: "j-000004", Tenant: reqB.Tenant, State: StateRunning, Nodes: reqB.Nodes, QueueWaitSec: 0.25}}},
		{5, persistedJob{ID: "j-000005", Req: reqE, State: StateQueued,
			Status: JobStatus{ID: "j-000005", Tenant: reqE.Tenant, State: StateQueued, Nodes: reqE.Nodes}}},
	} {
		rec, err := json.Marshal(journalRecord{Op: "put", Seq: e.seq, Job: &e.pj})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jf.Write(append(rec, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := jf.WriteString(`{"op":"put","seq":6,"job":{"id":"j-0`); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	// Reboot. The restarted server must list the full pre-crash history
	// and finish what was in flight.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, st := range s2.List("", "") {
		ids = append(ids, st.ID)
	}
	wantIDs := []string{"j-000001", "j-000002", "j-000003", "j-000004", "j-000005"}
	if !reflect.DeepEqual(ids, wantIDs) {
		t.Fatalf("recovered job list %v, want %v", ids, wantIDs)
	}
	stA2, ok := s2.Status(stA.ID)
	if !ok || !reflect.DeepEqual(stA2, stA) {
		t.Fatalf("job A status did not round-trip:\n pre-crash %+v\n recovered %+v", stA, stA2)
	}
	s2.mu.Lock()
	var traceA2 []byte
	if a := s2.store.jobs[stA.ID].artifacts; a != nil {
		traceA2 = a.trace
	}
	s2.mu.Unlock()
	if !bytes.Equal(traceA2, traceA) {
		t.Fatal("job A trace artifact did not survive the restart")
	}
	if stD2, ok := s2.Status(stD.ID); !ok || stD2.State != StateCanceled {
		t.Fatalf("canceled job D recovered as %+v", stD2)
	}

	// The mid-run job resumes from job A's newest checkpoint (same
	// program, seed and configuration) and lands bit-identically.
	stB := awaitTerminal(t, s2, "j-000004")
	if stB.State != StateSucceeded {
		t.Fatalf("job B: %s (%s)", stB.State, stB.Error)
	}
	if stB.Result.ResumedStmt == 0 {
		t.Fatal("re-admitted job B did not resume from a checkpoint")
	}
	if !reflect.DeepEqual(outputDigests(stB), outputDigests(stA)) {
		t.Fatalf("job B outputs diverged after resume:\n %v\n vs %v",
			outputDigests(stB), outputDigests(stA))
	}
	stC2 := awaitTerminal(t, s2, stC.ID)
	if stC2.State != StateSucceeded {
		t.Fatalf("job C: %s (%s)", stC2.State, stC2.Error)
	}
	if !reflect.DeepEqual(outputDigests(stC2), outputDigests(stA)) {
		t.Fatal("re-queued job C outputs diverged")
	}
	stE := awaitTerminal(t, s2, "j-000005")
	if stE.State != StateSucceeded {
		t.Fatalf("job E: %s (%s)", stE.State, stE.Error)
	}
	if stE.Result.ResumedStmt != 0 {
		t.Fatal("job E resumed from a foreign checkpoint (seed is not in the key?)")
	}

	// The ID sequence survived: new work continues after the crash gap.
	stF, err := s2.Submit(SubmitRequest{Tenant: "alpha", Program: gnmfSource()})
	if err != nil {
		t.Fatal(err)
	}
	if stF.ID != "j-000006" {
		t.Fatalf("post-restart job got ID %s, want j-000006", stF.ID)
	}
	awaitTerminal(t, s2, stF.ID)
	s2.Close()

	// A second, clean restart (generation rotation) keeps everything.
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := len(s3.List("", "")); got != 6 {
		t.Fatalf("after second restart: %d jobs, want 6", got)
	}
	stA3, ok := s3.Status(stA.ID)
	if !ok || !reflect.DeepEqual(stA3, stA) {
		t.Fatal("job A status drifted across restarts")
	}
	if stB3, ok := s3.Status("j-000004"); !ok || !reflect.DeepEqual(stB3, stB) {
		t.Fatal("job B terminal status drifted across restarts")
	}
}
