package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"cumulon/internal/chaos"
	"cumulon/internal/ckpt"
	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/obs"
	"cumulon/internal/opt"
	"cumulon/internal/plan"
)

// Config configures a Server.
type Config struct {
	// Machine is the shared cluster's machine type (default m1.large).
	Machine string
	// Nodes is the shared cluster's node capacity (default 16): the sum
	// of all running jobs' cluster sizes never exceeds it. A submission
	// asking for more nodes than this is rejected outright.
	Nodes int
	// Slots is the default task slots per node for jobs that don't ask
	// (default 2).
	Slots int
	// Seed is the server's default seed for jobs that don't supply one
	// (default 42).
	Seed int64
	// DefaultJobNodes sizes jobs that don't ask (default 4, capped at
	// Nodes).
	DefaultJobNodes int
	// MaxQueue bounds the admission queue; submissions beyond it get 429
	// (default 1024).
	MaxQueue int
	// Workers is the per-job compute parallelism for materialized runs
	// (0 = sequential).
	Workers int
	// Sched tunes the fair-share scheduler (weights, aging, reservation).
	Sched SchedConfig
	// CacheSize bounds the combined plan+deployment cache entry count;
	// least-recently-used entries are evicted beyond it (default 256).
	CacheSize int
	// JobHistory bounds retained terminal jobs: the oldest finished jobs
	// beyond it are pruned from the store (default 512).
	JobHistory int
	// ArtifactHistory bounds how many finished jobs keep their retained
	// artifacts (trace/critpath/metrics/explain); older artifact sets
	// are dropped first (default 64).
	ArtifactHistory int
	// EventBuffer bounds each job's event ring buffer (default 4096).
	// Overflowing events are evicted oldest-first; consumers resuming
	// below the retained window get 410 Gone.
	EventBuffer int
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// StateDir makes the job store durable: job transitions are
	// journaled under <StateDir>/jobs (write-ahead JSONL plus rotated
	// snapshots) and program checkpoints persist under <StateDir>/ckpt.
	// A restarted server recovers its job history, re-queues jobs that
	// were waiting, and re-admits jobs that were running — which then
	// resume from their newest program checkpoint. Empty disables
	// durability (checkpoints, if requested, live in process memory).
	StateDir string
}

func (c Config) withDefaults() Config {
	if c.Machine == "" {
		c.Machine = "m1.large"
	}
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.DefaultJobNodes <= 0 {
		c.DefaultJobNodes = 4
	}
	if c.DefaultJobNodes > c.Nodes {
		c.DefaultJobNodes = c.Nodes
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 512
	}
	if c.ArtifactHistory <= 0 {
		c.ArtifactHistory = 64
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 4096
	}
	return c
}

// Server is the cumulond job service. Create with New, serve Handler()
// over HTTP, and Close when done. All exported methods are safe for
// concurrent use.
type Server struct {
	cfg     Config
	machine cloud.MachineType
	sess    *core.Session
	cache   *PlanCache
	start   time.Time

	mu        sync.Mutex
	store     *jobStore
	sched     *FairScheduler
	freeNodes int
	running   int
	closed    bool

	// persist journals job transitions when Config.StateDir is set
	// (nil otherwise); ckptStore receives program checkpoints of jobs
	// that ask for them (durable under StateDir, in-memory otherwise).
	persist   *statePersister
	ckptStore ckpt.Store

	maxWait map[string]float64 // per-tenant max queue wait seen
	// artifactOrder lists jobs with retained artifacts, oldest first;
	// beyond cfg.ArtifactHistory the oldest set is dropped.
	artifactOrder []string
	// tenantHists caches per-tenant histogram series handles so the
	// record path is map-free after first use.
	tenantHists map[string]*tenantSeries
	// lastEvictions tracks the cache eviction count already folded into
	// the evictions counter.
	lastEvictions int64

	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup // scheduler loop + running jobs

	// Metrics (registry writes are guarded by mu).
	reg            *obs.Registry
	mSubmitted     *obs.Counter
	mCompleted     *obs.Counter
	mFailed        *obs.Counter
	mCanceled      *obs.Counter
	mQueueWaitSum  *obs.Counter
	mQueueWaitMax  *obs.Gauge
	mQueueWaitHist *obs.Histogram
	mCost          *obs.Counter
	mVirtualSec    *obs.Counter
	mService       *obs.Counter
	mCacheHits     *obs.Gauge
	mCacheMisses   *obs.Gauge
	mDepHits       *obs.Gauge
	mDepMisses     *obs.Gauge
	mRunning       *obs.Gauge
	mQueueDepth    *obs.Gauge
	mFreeNodes     *obs.Gauge
	mCompileHist   *obs.Histogram
	mRunHist       *obs.Histogram
	mE2EHist       *obs.Histogram
	mDebt          *obs.Gauge
	mEvictions     *obs.Counter
	mPruned        *obs.Counter
}

// tenantSeries caches one tenant's latency histogram series handles.
type tenantSeries struct {
	queue, compile, run, e2e *obs.HistSeries
}

// tenantHist returns (creating on first use) the cached series handles
// for a tenant. Callers hold s.mu.
func (s *Server) tenantHist(tenant string) *tenantSeries {
	ts := s.tenantHists[tenant]
	if ts == nil {
		l := obs.Label{Key: "tenant", Value: tenant}
		ts = &tenantSeries{
			queue:   s.mQueueWaitHist.With(l),
			compile: s.mCompileHist.With(l),
			run:     s.mRunHist.With(l),
			e2e:     s.mE2EHist.With(l),
		}
		s.tenantHists[tenant] = ts
	}
	return ts
}

// New builds a server and starts its scheduler loop.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	mt, err := cloud.TypeByName(cfg.Machine)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		machine:     mt,
		sess:        core.NewSession(cfg.Seed),
		cache:       NewPlanCache(cfg.CacheSize),
		start:       time.Now(),
		store:       newJobStore(),
		sched:       NewFairScheduler(cfg.Sched),
		freeNodes:   cfg.Nodes,
		maxWait:     map[string]float64{},
		tenantHists: map[string]*tenantSeries{},
		wake:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		reg:         obs.NewRegistry(),
	}
	r := s.reg
	s.mSubmitted = r.Counter("cumulond_jobs_submitted_total", "jobs admitted, by tenant")
	s.mCompleted = r.Counter("cumulond_jobs_completed_total", "jobs finished successfully, by tenant")
	s.mFailed = r.Counter("cumulond_jobs_failed_total", "jobs that errored, by tenant")
	s.mCanceled = r.Counter("cumulond_jobs_canceled_total", "jobs canceled while queued, by tenant")
	s.mQueueWaitSum = r.Counter("cumulond_queue_wait_seconds_total", "cumulative admission-to-start wait, by tenant")
	s.mQueueWaitMax = r.Gauge("cumulond_queue_wait_max_seconds", "largest admission-to-start wait seen, by tenant")
	s.mQueueWaitHist = r.Histogram("cumulond_queue_wait_seconds", "admission-to-start wait distribution, by tenant",
		obs.LatencyBuckets)
	s.mCompileHist = r.Histogram("cumulond_compile_seconds", "plan compile wall time (cache hits are ~0), by tenant",
		obs.LatencyBuckets)
	s.mRunHist = r.Histogram("cumulond_run_seconds", "engine run wall time, by tenant",
		obs.LatencyBuckets)
	s.mE2EHist = r.Histogram("cumulond_e2e_seconds", "admission-to-terminal wall time, by tenant",
		obs.LatencyBuckets)
	s.mCost = r.Counter("cumulond_cost_dollars_total", "simulated dollars billed, by tenant")
	s.mVirtualSec = r.Counter("cumulond_virtual_seconds_total", "simulated program seconds executed, by tenant")
	s.mService = r.Counter("cumulond_service_slot_seconds_total", "fair-share service charged (virtual slot-seconds), by tenant")
	s.mCacheHits = r.Gauge("cumulond_plan_cache_hits", "plan cache hits (compile served from cache)")
	s.mCacheMisses = r.Gauge("cumulond_plan_cache_misses", "plan cache misses (programs compiled)")
	s.mDepHits = r.Gauge("cumulond_deployment_cache_hits", "optimizer deployment cache hits")
	s.mDepMisses = r.Gauge("cumulond_deployment_cache_misses", "optimizer searches run (deployment cache misses)")
	s.mRunning = r.Gauge("cumulond_jobs_running", "jobs currently executing")
	s.mQueueDepth = r.Gauge("cumulond_queue_depth", "jobs waiting for capacity")
	s.mFreeNodes = r.Gauge("cumulond_nodes_free", "unallocated nodes of the shared cluster")
	s.mDebt = r.Gauge("cumulond_fair_share_debt", "normalized service above the best-served tenant (service/weight minus the minimum), by tenant")
	s.mEvictions = r.Counter("cumulond_plan_cache_evictions_total", "plan/deployment cache entries evicted by the LRU bound")
	s.mPruned = r.Counter("cumulond_jobs_pruned_total", "terminal jobs removed by job-history retention")

	if cfg.StateDir != "" {
		cs, err := ckpt.NewDirStore(filepath.Join(cfg.StateDir, "ckpt"))
		if err != nil {
			return nil, err
		}
		s.ckptStore = cs
		p, snap, err := openState(filepath.Join(cfg.StateDir, "jobs"))
		if err != nil {
			return nil, err
		}
		s.recover(snap)
		// Reconciled state (running jobs re-queued, unparseable ones
		// failed) becomes the new generation's snapshot.
		cur := &snapshotFile{Seq: s.store.seq}
		for _, id := range s.store.order {
			cur.Jobs = append(cur.Jobs, s.persistedOf(s.store.jobs[id]))
		}
		if err := p.begin(cur); err != nil {
			return nil, err
		}
		s.persist = p
	} else {
		s.ckptStore = ckpt.NewMemStore()
	}

	s.wg.Add(1)
	go s.loop()
	s.signal() // admit any recovered queued jobs
	return s, nil
}

// Close stops scheduling, waits for running jobs to finish, and leaves
// queued jobs queued.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
	if s.persist != nil {
		s.persist.close()
	}
}

// now is the server clock: seconds since start.
func (s *Server) now() float64 { return time.Since(s.start).Seconds() }

// signal wakes the scheduler loop (non-blocking; the channel carries no
// data, only "state changed").
func (s *Server) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop admits queued jobs whenever capacity or queue state changes.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.wake:
		}
		s.mu.Lock()
		for {
			sj := s.sched.Next(s.freeNodes, s.now())
			if sj == nil {
				break
			}
			j := s.store.jobs[sj.ID]
			if j == nil || j.state != StateQueued { // canceled after Push
				continue
			}
			j.state = StateRunning
			j.status.State = StateRunning
			j.status.QueueWaitSec = s.now() - sj.Enqueued
			s.freeNodes -= sj.Nodes
			s.running++
			s.observeStart(j.req.Tenant, j.status.QueueWaitSec)
			s.persistJob(j)
			j.events.emit(JobEvent{Type: EvAdmitted, Nodes: sj.Nodes})
			s.wg.Add(1)
			go s.runJob(j, sj)
		}
		s.mu.Unlock()
	}
}

func (s *Server) observeStart(tenant string, wait float64) {
	l := obs.Label{Key: "tenant", Value: tenant}
	s.mQueueWaitSum.Add(wait, l)
	s.mQueueWaitHist.Observe(wait)
	s.tenantHist(tenant).queue.Observe(wait)
	if wait > s.maxWait[tenant] {
		s.maxWait[tenant] = wait
		s.mQueueWaitMax.Set(wait, l)
	}
}

// apiError carries an HTTP status with a message.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// planConfig builds the job's plan configuration from its request and
// the parsed program's sparse inputs.
func planConfig(prog *lang.Program, req SubmitRequest) plan.Config {
	cfg := plan.Config{TileSize: req.Tile, Densities: map[string]float64{}}
	for _, in := range prog.Inputs {
		if in.Sparse {
			cfg.Densities[in.Name] = req.Density
		}
	}
	return cfg
}

// Submit validates, admits and enqueues a job, returning its status
// snapshot. It is the programmatic form of POST /v1/jobs. For
// optimizing jobs the deployment search runs here (cache-fronted), so
// the job's cluster size is known to the admission controller.
func (s *Server) Submit(req SubmitRequest) (JobStatus, error) {
	if req.Tenant == "" {
		return JobStatus{}, badRequest("admission: tenant is required")
	}
	if req.Program == "" {
		return JobStatus{}, badRequest("admission: program is required")
	}
	if req.Tile == 0 {
		req.Tile = 2048
	}
	if req.Tile < 0 {
		return JobStatus{}, badRequest("admission: tile must be positive, got %d", req.Tile)
	}
	if req.Density == 0 {
		req.Density = 0.05
	}
	if req.Machine == "" {
		req.Machine = s.cfg.Machine
	}
	if req.Machine != s.cfg.Machine {
		return JobStatus{}, badRequest("admission: cluster is %s; per-job machine types are not supported", s.cfg.Machine)
	}
	if req.Slots == 0 {
		req.Slots = s.cfg.Slots
	}
	if req.Slots < 0 {
		return JobStatus{}, badRequest("admission: slots must be positive, got %d", req.Slots)
	}
	if req.Nodes == 0 {
		req.Nodes = s.cfg.DefaultJobNodes
	}
	if req.Nodes < 0 {
		return JobStatus{}, badRequest("admission: nodes must be positive, got %d", req.Nodes)
	}
	if req.Seed == 0 {
		req.Seed = s.cfg.Seed
	}
	if req.MaxRetries < 0 {
		return JobStatus{}, badRequest("admission: max_retries must be non-negative, got %d", req.MaxRetries)
	}
	if req.CheckpointEvery < 0 {
		return JobStatus{}, badRequest("admission: checkpoint_every must be non-negative, got %d", req.CheckpointEvery)
	}
	if req.Chaos != "" {
		if _, err := chaos.Parse(req.Chaos); err != nil {
			return JobStatus{}, badRequest("admission: chaos: %v", err)
		}
	}
	if req.Explain && !req.Optimize {
		return JobStatus{}, badRequest("admission: explain requires optimize")
	}
	prog, err := lang.Parse(req.Program)
	if err != nil {
		return JobStatus{}, badRequest("admission: %v", err)
	}
	if _, err := prog.Validate(); err != nil {
		return JobStatus{}, badRequest("admission: %v", err)
	}

	var dep *opt.Deployment
	var explain []byte
	depHit := false
	if req.Optimize {
		if req.DeadlineSec > 0 && req.BudgetDollars > 0 {
			return JobStatus{}, badRequest("admission: specify at most one of deadline_sec and budget_dollars")
		}
		if req.DeadlineSec <= 0 && req.BudgetDollars <= 0 {
			req.DeadlineSec = 24 * 3600
		}
		if req.MaxNodes <= 0 || req.MaxNodes > s.cfg.Nodes {
			req.MaxNodes = s.cfg.Nodes
		}
		cfg := planConfig(prog, req)
		oreq := opt.Request{
			Program: prog, PlanCfg: cfg,
			DeadlineSec: req.DeadlineSec, BudgetDollars: req.BudgetDollars,
			Confidence: req.Confidence, MaxNodes: req.MaxNodes,
			Machines: []cloud.MachineType{s.machine},
		}
		var met bool
		if req.Explain {
			// An EXPLAIN report must reflect this submission's search, so
			// the deployment cache is bypassed and the search runs fresh
			// with a recorder attached.
			dep, met, explain, err = s.explainSearch(oreq)
		} else {
			dep, met, depHit, err = s.searchDeployment(req.Program, cfg, oreq)
		}
		if err != nil {
			return JobStatus{}, badRequest("optimize: %v", err)
		}
		if !met {
			return JobStatus{}, badRequest("optimize: constraint not satisfiable within %d nodes (closest: %s)", req.MaxNodes, dep)
		}
		req.Nodes = dep.Cluster.Nodes
		req.Slots = dep.Cluster.Slots
	}
	if req.Nodes > s.cfg.Nodes {
		return JobStatus{}, badRequest("admission: job wants %d nodes, cluster capacity is %d", req.Nodes, s.cfg.Nodes)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, &apiError{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	if s.sched.Depth() >= s.cfg.MaxQueue {
		return JobStatus{}, &apiError{code: http.StatusTooManyRequests,
			msg: fmt.Sprintf("admission: queue full (%d jobs)", s.cfg.MaxQueue)}
	}
	j := s.store.add(req)
	j.prog = prog
	j.dep = dep
	j.explain = explain
	j.enqueued = s.now()
	j.status.Nodes = req.Nodes
	j.status.DeploymentCacheHit = depHit
	j.events = newEventLog(s.cfg.EventBuffer)
	j.events.emit(JobEvent{Type: EvQueued, Nodes: req.Nodes})
	s.sched.Push(SchedJob{
		ID: j.id, Tenant: req.Tenant, Priority: req.Priority,
		Nodes: req.Nodes, Enqueued: j.enqueued,
	})
	s.mSubmitted.Add(1, obs.Label{Key: "tenant", Value: req.Tenant})
	s.persistJob(j)
	s.signal()
	return j.status, nil
}

// explainSearch runs a fresh optimizer search with a SearchTrace
// attached and renders the EXPLAIN report. The deployment cache is
// neither consulted nor populated: the report documents this search.
func (s *Server) explainSearch(oreq opt.Request) (*opt.Deployment, bool, []byte, error) {
	st := opt.NewSearchTrace()
	oreq.Search = st
	var res *opt.Result
	var err error
	if oreq.DeadlineSec > 0 {
		res, err = s.sess.Optimizer().MinCostForDeadline(oreq)
	} else {
		res, err = s.sess.Optimizer().MinTimeForBudget(oreq)
	}
	if err != nil {
		return nil, false, nil, err
	}
	var buf bytes.Buffer
	if err := st.Explain(&buf, 5); err != nil {
		fmt.Fprintf(&buf, "explain render failed: %v\n", err)
	}
	return res.Best, res.Met, buf.Bytes(), nil
}

// searchDeployment runs the cache-fronted optimizer search.
func (s *Server) searchDeployment(source string, cfg plan.Config, oreq opt.Request) (*opt.Deployment, bool, bool, error) {
	planKey := Key(source, cfg)
	before := s.cache.Stats().DepHits
	dep, met, err := s.cache.Deployment(planKey, oreq, func() (*opt.Deployment, bool, error) {
		var res *opt.Result
		var err error
		if oreq.DeadlineSec > 0 {
			res, err = s.sess.Optimizer().MinCostForDeadline(oreq)
		} else {
			res, err = s.sess.Optimizer().MinTimeForBudget(oreq)
		}
		if err != nil {
			return nil, false, err
		}
		return res.Best, res.Met, nil
	})
	hit := s.cache.Stats().DepHits > before
	return dep, met, hit, err
}

// execOutcome carries what executeJob learned besides the result.
type execOutcome struct {
	res        *core.ExecResult
	cluster    string
	planHit    bool
	compileSec float64
	trace      *obs.Trace // non-nil when the job opted into artifacts
}

// runJob executes one admitted job on its own engine instance and
// records the outcome.
func (s *Server) runJob(j *job, sj *SchedJob) {
	defer s.wg.Done()
	started := time.Now()
	out, err := s.executeJob(j)

	s.mu.Lock()
	defer s.mu.Unlock()
	j.status.RunSec = time.Since(started).Seconds()
	j.status.Cluster = out.cluster
	j.status.PlanCacheHit = out.planHit
	l := obs.Label{Key: "tenant", Value: j.req.Tenant}
	if err != nil {
		j.state = StateFailed
		j.status.State = StateFailed
		j.status.Error = err.Error()
		s.mFailed.Add(1, l)
		j.events.append(JobEvent{Type: EvFailed, Error: err.Error()}, true)
	} else {
		res := out.res
		j.state = StateSucceeded
		j.status.State = StateSucceeded
		j.status.Result = resultFrom(res)
		service := res.Metrics.TotalSeconds * float64(sj.Nodes) * float64(j.req.Slots)
		s.sched.Charge(j.req.Tenant, service)
		s.mCompleted.Add(1, l)
		s.mCost.Add(res.CostDollars, l)
		s.mVirtualSec.Add(res.Metrics.TotalSeconds, l)
		s.mService.Add(service, l)
		j.events.append(JobEvent{
			Type:        EvDone,
			VirtualSec:  res.Metrics.TotalSeconds,
			CostDollars: res.CostDollars,
		}, true)
	}
	ts := s.tenantHist(j.req.Tenant)
	ts.compile.Observe(out.compileSec)
	ts.run.Observe(j.status.RunSec)
	ts.e2e.Observe(j.status.QueueWaitSec + j.status.RunSec)
	s.mCompileHist.Observe(out.compileSec)
	s.mRunHist.Observe(j.status.RunSec)
	s.mE2EHist.Observe(j.status.QueueWaitSec + j.status.RunSec)
	s.retainArtifacts(j, out.trace)
	s.persistJob(j)
	if removed := s.store.prune(s.cfg.JobHistory); len(removed) > 0 {
		s.mPruned.Add(float64(len(removed)))
		if s.persist != nil {
			for _, id := range removed {
				s.persist.remove(id)
			}
		}
	}
	s.freeNodes += sj.Nodes
	s.running--
	s.signal()
}

// retainArtifacts renders and stores a terminal job's opted-in
// artifacts, evicting the oldest retained set beyond the cap. Callers
// hold s.mu.
func (s *Server) retainArtifacts(j *job, tr *obs.Trace) {
	j.artifacts = renderArtifacts(j.req, tr, j.explain)
	if j.artifacts == nil {
		return
	}
	s.artifactOrder = append(s.artifactOrder, j.id)
	for len(s.artifactOrder) > s.cfg.ArtifactHistory {
		old := s.artifactOrder[0]
		s.artifactOrder = s.artifactOrder[1:]
		if oj, ok := s.store.get(old); ok {
			oj.artifacts = nil
		}
	}
}

// executeJob does the cache-fronted compile and the engine run, outside
// the server lock. It feeds the job's event stream and, when the job
// opted into artifact retention, records a private obs.Trace whose
// Chrome export matches a direct CLI run of the same
// program/config/seed byte for byte.
func (s *Server) executeJob(j *job) (execOutcome, error) {
	req := j.req
	var out execOutcome
	cfg := planConfig(j.prog, req)
	j.events.emit(JobEvent{Type: EvCompiling})
	before := s.cache.Stats().PlanHits
	compileStart := time.Now()
	prog, tmpl, _, err := s.cache.Compile(req.Program, cfg)
	out.compileSec = time.Since(compileStart).Seconds()
	if err != nil {
		return out, err
	}
	out.planHit = s.cache.Stats().PlanHits > before
	if out.planHit {
		j.events.emit(JobEvent{Type: EvPlanCacheHit})
	} else {
		j.events.emit(JobEvent{Type: EvPlanCacheMiss})
	}

	pl := tmpl.Clone()
	var cluster cloud.Cluster
	if j.dep != nil {
		cluster = j.dep.Cluster
		out.cluster = cluster.String()
		if err := j.dep.Apply(pl); err != nil {
			return out, err
		}
	} else {
		cluster, err = cloud.NewCluster(s.machine, req.Nodes, req.Slots)
		if err != nil {
			return out, err
		}
		pl.AutoSplit(cluster.TotalSlots())
		out.cluster = cluster.String()
	}

	var inner obs.Recorder = obs.Nop()
	if req.Trace || req.Critpath || req.Metrics {
		out.trace = obs.NewTrace()
		inner = out.trace
	}
	opts := core.ExecOptions{
		Cluster:        cluster,
		Seed:           req.Seed,
		Workers:        s.cfg.Workers,
		Recorder:       &runRecorder{inner: inner, log: j.events},
		MaxTaskRetries: req.MaxRetries,
	}
	if req.CheckpointEvery > 0 {
		// Checkpointing jobs always run with Resume: a first execution
		// finds no checkpoint and runs from scratch; a re-execution (a
		// job re-admitted after a server crash, or an identical
		// resubmission) fast-forwards past the jobs its newest valid
		// checkpoint covers, bit-identically.
		opts.CheckpointEvery = req.CheckpointEvery
		opts.CheckpointStore = s.ckptStore
		opts.Resume = true
	}
	if req.Chaos != "" {
		// Validated at admission; a fresh schedule per run keeps any
		// consumption state private to this job.
		sched, err := chaos.Parse(req.Chaos)
		if err != nil {
			return out, err
		}
		opts.Chaos = sched
	}
	if req.Materialize {
		opts.Inputs = core.RandomInputs(prog, cfg, req.Seed)
	}
	j.events.emit(JobEvent{Type: EvRunning, Cluster: out.cluster, Nodes: cluster.Nodes})
	out.res, err = s.sess.ExecutePlan(pl, cluster, opts)
	return out, err
}

// Cancel cancels a queued job. Running and terminal jobs are refused.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.store.get(id)
	if !ok {
		return JobStatus{}, &apiError{code: http.StatusNotFound, msg: fmt.Sprintf("no job %s", id)}
	}
	switch j.state {
	case StateQueued:
		s.sched.Remove(id)
		j.state = StateCanceled
		j.status.State = StateCanceled
		s.mCanceled.Add(1, obs.Label{Key: "tenant", Value: j.req.Tenant})
		j.events.append(JobEvent{Type: EvCanceled}, true)
		s.retainArtifacts(j, nil)
		s.persistJob(j)
		return j.status, nil
	case StateRunning:
		return JobStatus{}, &apiError{code: http.StatusConflict, msg: fmt.Sprintf("job %s is running and cannot be interrupted", id)}
	default:
		return JobStatus{}, &apiError{code: http.StatusConflict, msg: fmt.Sprintf("job %s is already %s", id, j.state)}
	}
}

// Status returns a job's status snapshot.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.store.get(id)
	if !ok {
		return JobStatus{}, false
	}
	st := j.status
	if j.state == StateQueued {
		st.QueueWaitSec = s.now() - j.enqueued // live wait so far
	}
	return st, true
}

// List returns job statuses in admission order, optionally filtered.
func (s *Server) List(tenant string, state JobState) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.list(tenant, state)
}

// TenantStats is the per-tenant slice of /v1/stats.
type TenantStats struct {
	Tenant    string  `json:"tenant"`
	Weight    float64 `json:"weight"`
	Service   float64 `json:"service_slot_seconds"`
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	Canceled  int     `json:"canceled"`
	Running   int     `json:"running"`
	Queued    int     `json:"queued"`
	MaxWait   float64 `json:"max_queue_wait_sec"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	UptimeSec  float64       `json:"uptime_sec"`
	Machine    string        `json:"machine"`
	Capacity   int           `json:"capacity_nodes"`
	FreeNodes  int           `json:"free_nodes"`
	Running    int           `json:"running"`
	QueueDepth int           `json:"queue_depth"`
	Cache      CacheStats    `json:"cache"`
	Tenants    []TenantStats `json:"tenants"`
}

// StatsSnapshot assembles the live stats.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		UptimeSec: s.now(), Machine: s.cfg.Machine,
		Capacity: s.cfg.Nodes, FreeNodes: s.freeNodes,
		Running: s.running, QueueDepth: s.sched.Depth(),
		Cache:   s.cache.Stats(),
		Tenants: []TenantStats{},
	}
	byTenant := map[string]*TenantStats{}
	var names []string
	for _, id := range s.store.order {
		j := s.store.jobs[id]
		t := byTenant[j.req.Tenant]
		if t == nil {
			t = &TenantStats{
				Tenant: j.req.Tenant,
				Weight: s.sched.Weight(j.req.Tenant),
			}
			byTenant[j.req.Tenant] = t
			names = append(names, j.req.Tenant)
		}
		t.Submitted++
		switch j.state {
		case StateSucceeded:
			t.Completed++
		case StateFailed:
			t.Failed++
		case StateCanceled:
			t.Canceled++
		case StateRunning:
			t.Running++
		case StateQueued:
			t.Queued++
		}
		if w := j.status.QueueWaitSec; j.state != StateQueued && w > t.MaxWait {
			t.MaxWait = w
		}
	}
	sort.Strings(names)
	for _, n := range names {
		t := byTenant[n]
		t.Service = s.sched.Service(n)
		st.Tenants = append(st.Tenants, *t)
	}
	return st
}

// Handler returns the HTTP API:
//
//	POST   /v1/jobs           submit (SubmitRequest JSON -> JobStatus)
//	GET    /v1/jobs           paginated list (?tenant=, ?state=, ?after=, ?limit=)
//	GET    /v1/jobs/{id}      status
//	GET    /v1/jobs/{id}/result  terminal result (409 until terminal)
//	GET    /v1/jobs/{id}/events  lifecycle event stream: long-poll
//	                          (?since=N, ?wait=sec) or SSE (?stream=sse
//	                          or Accept: text/event-stream)
//	GET    /v1/jobs/{id}/trace     retained Chrome trace (opt-in)
//	GET    /v1/jobs/{id}/critpath  retained critical-path report (opt-in)
//	GET    /v1/jobs/{id}/metrics   retained metrics snapshot (opt-in)
//	GET    /v1/jobs/{id}/explain   retained optimizer EXPLAIN (opt-in)
//	DELETE /v1/jobs/{id}      cancel a queued job
//	GET    /v1/stats          scheduler/cache/tenant stats (JSON)
//	GET    /metrics           Prometheus text metrics
//	GET    /metrics.json      deterministic JSON metrics
//	GET    /debug/dash        self-contained HTML ops dashboard
//	GET    /debug/pprof/*     runtime profiles (only with Config.Pprof)
//	GET    /healthz           liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, badRequest("bad request body: %v", err))
			return
		}
		st, err := s.Submit(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit := 100
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				writeErr(w, badRequest("limit must be a positive integer, got %q", v))
				return
			}
			limit = n
		}
		s.mu.Lock()
		jobs, next := s.store.listPage(q.Get("tenant"), JobState(q.Get("state")), q.Get("after"), limit)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, JobPage{Jobs: jobs, NextAfter: next})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		s.handleEvents(w, r)
	})
	for _, a := range []string{"trace", "critpath", "metrics", "explain"} {
		kind := a
		mux.HandleFunc("GET /v1/jobs/{id}/"+kind, func(w http.ResponseWriter, r *http.Request) {
			s.handleArtifact(w, r, kind)
		})
	}
	mux.HandleFunc("GET /debug/dash", func(w http.ResponseWriter, r *http.Request) {
		s.handleDash(w, r)
	})
	if s.cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			writeErr(w, &apiError{code: http.StatusNotFound, msg: "no such job"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			writeErr(w, &apiError{code: http.StatusNotFound, msg: "no such job"})
			return
		}
		if !st.State.Terminal() {
			writeErr(w, &apiError{code: http.StatusConflict, msg: fmt.Sprintf("job is %s", st.State)})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.StatsSnapshot())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.refreshGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.Write(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.refreshGauges()
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// refreshGauges sets the point-in-time gauges before a metrics render.
// Callers hold s.mu.
func (s *Server) refreshGauges() {
	cs := s.cache.Stats()
	s.mCacheHits.Set(float64(cs.PlanHits))
	s.mCacheMisses.Set(float64(cs.PlanMisses))
	s.mDepHits.Set(float64(cs.DepHits))
	s.mDepMisses.Set(float64(cs.DepMisses))
	s.mRunning.Set(float64(s.running))
	s.mQueueDepth.Set(float64(s.sched.Depth()))
	s.mFreeNodes.Set(float64(s.freeNodes))
	if d := cs.Evictions - s.lastEvictions; d > 0 {
		s.mEvictions.Add(float64(d))
		s.lastEvictions = cs.Evictions
	}
	// Fair-share debt: a tenant's normalized service above the
	// best-served tenant's. The scheduler favors low debt, so a large
	// value means the tenant has been consuming ahead of its share.
	minNorm := 0.0
	first := true
	for tenant := range s.tenantHists {
		n := s.sched.Service(tenant) / s.sched.Weight(tenant)
		if first || n < minNorm {
			minNorm, first = n, false
		}
	}
	for _, tenant := range sortedTenants(s.tenantHists) {
		n := s.sched.Service(tenant) / s.sched.Weight(tenant)
		s.mDebt.Set(n-minNorm, obs.Label{Key: "tenant", Value: tenant})
	}
}

// sortedTenants returns the map's keys sorted, for deterministic gauge
// update order.
func sortedTenants(m map[string]*tenantSeries) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if ae, ok := err.(*apiError); ok {
		code = ae.code
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
