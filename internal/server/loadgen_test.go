package server

import (
	"bytes"
	"strings"
	"testing"
)

// TestAggregateOutcomesCanceledAccounting pins the per-tenant tallies:
// a canceled job must land in Canceled — not Failed, which it was
// lumped into before — while still clearing AllCompleted, and waits
// must average over every submission.
func TestAggregateOutcomesCanceledAccounting(t *testing.T) {
	outcomes := []JobOutcome{
		{Tenant: "alpha", ID: "j-000001", State: StateSucceeded, WaitSec: 1},
		{Tenant: "alpha", ID: "j-000002", State: StateCanceled, WaitSec: 3},
		{Tenant: "alpha", ID: "j-000003", State: StateSucceeded, WaitSec: 2},
		{Tenant: "beta", ID: "j-000004", State: StateFailed, WaitSec: 0, Error: "boom"},
		{Tenant: "beta", ID: "j-000005", State: StateSucceeded, WaitSec: 9},
	}
	reports, starved, allCompleted := aggregateOutcomes(outcomes, 5)
	if allCompleted {
		t.Fatal("allCompleted with canceled and failed jobs present")
	}
	if len(reports) != 2 || reports[0].Tenant != "alpha" || reports[1].Tenant != "beta" {
		t.Fatalf("reports not sorted by tenant: %+v", reports)
	}
	alpha, beta := reports[0], reports[1]
	if alpha.Submitted != 3 || alpha.Completed != 2 || alpha.Canceled != 1 || alpha.Failed != 0 {
		t.Fatalf("alpha tallies wrong: %+v (canceled must not count as failed)", alpha)
	}
	if beta.Submitted != 2 || beta.Completed != 1 || beta.Failed != 1 || beta.Canceled != 0 {
		t.Fatalf("beta tallies wrong: %+v", beta)
	}
	if alpha.MeanWaitSec != 2 || alpha.MaxWaitSec != 3 {
		t.Fatalf("alpha waits wrong: mean %g max %g", alpha.MeanWaitSec, alpha.MaxWaitSec)
	}
	if len(starved) != 1 || starved[0].ID != "j-000005" {
		t.Fatalf("starved = %+v, want only j-000005", starved)
	}

	// All-success runs stay healthy.
	okReports, _, ok := aggregateOutcomes([]JobOutcome{
		{Tenant: "alpha", State: StateSucceeded, WaitSec: 1},
	}, 5)
	if !ok || okReports[0].Completed != 1 {
		t.Fatalf("clean run not allCompleted: %+v", okReports)
	}
}

// TestLoadReportHealthDistinguishesCanceled: Healthy must name
// cancellation, not failure, when that is what happened, and the table
// must carry the canceled column.
func TestLoadReportHealthDistinguishesCanceled(t *testing.T) {
	rep := &LoadReport{
		Tenants: []TenantReport{
			{Tenant: "alpha", Submitted: 2, Completed: 1, Canceled: 1},
		},
	}
	err := rep.Healthy(false)
	if err == nil {
		t.Fatal("run with a canceled job reported healthy")
	}
	if !strings.Contains(err.Error(), "canceled") || strings.Contains(err.Error(), "failed") {
		t.Fatalf("health error misattributes cancellation: %v", err)
	}

	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "canceled") {
		t.Fatalf("report table lacks the canceled column:\n%s", out)
	}

	failRep := &LoadReport{
		Tenants: []TenantReport{{Tenant: "beta", Submitted: 1, Failed: 1}},
	}
	if err := failRep.Healthy(false); err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("failed job not reported as failure: %v", err)
	}
}
