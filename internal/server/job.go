package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/opt"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	// StateQueued: admitted, waiting for cluster capacity.
	StateQueued JobState = "queued"
	// StateRunning: executing on a per-job engine instance.
	StateRunning JobState = "running"
	// StateSucceeded: finished; results and metrics are available.
	StateSucceeded JobState = "succeeded"
	// StateFailed: compilation or execution errored; Error is set.
	StateFailed JobState = "failed"
	// StateCanceled: canceled while queued (running jobs cannot be
	// interrupted mid-engine; cancellation of a running job is refused).
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// SubmitRequest is the POST /v1/jobs body: a program in the textual
// syntax plus the tenant, urgency and execution knobs.
type SubmitRequest struct {
	// Tenant names the submitting principal; fair share is accounted per
	// tenant. Required.
	Tenant string `json:"tenant"`
	// Program is the source text (package lang syntax). Required.
	Program string `json:"program"`
	// Priority raises scheduling urgency (default 0, higher is sooner).
	Priority float64 `json:"priority,omitempty"`

	// Tile is the storage tile size (default 2048).
	Tile int `json:"tile,omitempty"`
	// Density estimates the nonzero fraction of sparse inputs
	// (default 0.05).
	Density float64 `json:"density,omitempty"`

	// Machine/Nodes/Slots pick the job's cluster inside the server's
	// shared capacity (defaults: the server's machine type, 4 nodes, the
	// server's slots). Ignored when Optimize is set and the search picks
	// the cluster.
	Machine string `json:"machine,omitempty"`
	Nodes   int    `json:"nodes,omitempty"`
	Slots   int    `json:"slots,omitempty"`

	// Optimize lets the cost-based optimizer choose the deployment.
	// DeadlineSec minimizes cost under a deadline (default when neither
	// constraint is set: 24h); BudgetDollars minimizes time under a
	// budget; Confidence promises the deadline probabilistically.
	// MaxNodes caps the search (and is itself capped by the server's
	// capacity). The search result is cached by program hash × config ×
	// constraint.
	Optimize      bool    `json:"optimize,omitempty"`
	DeadlineSec   float64 `json:"deadline_sec,omitempty"`
	BudgetDollars float64 `json:"budget_dollars,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	MaxNodes      int     `json:"max_nodes,omitempty"`

	// Materialize computes real values on deterministic random inputs
	// (seeded by Seed) and exposes output digests; off, the run is
	// virtual (timing and cost only).
	Materialize bool `json:"materialize,omitempty"`
	// Seed drives data generation, placement and noise (default: the
	// server's seed).
	Seed int64 `json:"seed,omitempty"`

	// Trace retains the job's Chrome trace (GET /v1/jobs/{id}/trace),
	// byte-identical to `cumulon -trace` for the same
	// program/config/seed. Critpath retains the critical-path report and
	// Metrics the per-run metrics snapshot (Prometheus text). Explain
	// retains the optimizer's EXPLAIN report and requires Optimize; it
	// forces a fresh search (the deployment cache is bypassed) so the
	// report reflects this submission.
	Trace    bool `json:"trace,omitempty"`
	Critpath bool `json:"critpath,omitempty"`
	Metrics  bool `json:"metrics,omitempty"`
	Explain  bool `json:"explain,omitempty"`

	// Chaos injects a deterministic fault schedule into the run
	// (internal/chaos spec syntax, e.g. "kill:node=3@t=10"); retry and
	// crash recovery show up in the job's event stream. MaxRetries
	// bounds per-task retry attempts under faults (0 = engine default).
	Chaos      string `json:"chaos,omitempty"`
	MaxRetries int    `json:"max_retries,omitempty"`

	// CheckpointEvery, when positive, checkpoints the program at every
	// Nth iteration boundary into the server's checkpoint store
	// (durable under Config.StateDir) and resumes from the newest valid
	// checkpoint when the job is re-executed — e.g. re-admitted after a
	// server restart. Results are bit-identical either way.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// OutputInfo describes one output matrix of a materialized job. SHA256
// digests the raw row-major little-endian float64 payload, so two runs
// are bit-identical iff their digests match.
type OutputInfo struct {
	Name      string  `json:"name"`
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	Frobenius float64 `json:"frobenius"`
	SHA256    string  `json:"sha256"`
}

// JobResult is the terminal outcome of a job.
type JobResult struct {
	// TotalSeconds is the simulated (virtual) makespan.
	TotalSeconds float64 `json:"total_seconds"`
	// CostDollars is the billed price on the job's cluster.
	CostDollars float64 `json:"cost_dollars"`
	TotalFlops  int64   `json:"total_flops"`
	Jobs        int     `json:"plan_jobs"`
	Tasks       int     `json:"plan_tasks"`
	// Outputs lists materialized outputs sorted by name (empty for
	// virtual runs).
	Outputs []OutputInfo `json:"outputs,omitempty"`
	// Checkpoints counts program checkpoints written during the run;
	// ResumedStmt is the boundary statement the run resumed from (0 when
	// it ran from the start). Only set for jobs with CheckpointEvery.
	Checkpoints int `json:"checkpoints,omitempty"`
	ResumedStmt int `json:"resumed_stmt,omitempty"`
}

// JobStatus is the client-visible view of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID       string   `json:"id"`
	Tenant   string   `json:"tenant"`
	State    JobState `json:"state"`
	Priority float64  `json:"priority,omitempty"`
	Cluster  string   `json:"cluster,omitempty"`
	Nodes    int      `json:"nodes"`
	// QueueWaitSec is the wall time between admission and start (final
	// once running; live while queued).
	QueueWaitSec float64 `json:"queue_wait_sec"`
	// RunSec is the wall time executing (final once terminal).
	RunSec float64 `json:"run_sec,omitempty"`
	// PlanCacheHit reports whether compilation was served from the plan
	// cache; DeploymentCacheHit likewise for the optimizer search.
	PlanCacheHit       bool       `json:"plan_cache_hit"`
	DeploymentCacheHit bool       `json:"deployment_cache_hit,omitempty"`
	Error              string     `json:"error,omitempty"`
	Result             *JobResult `json:"result,omitempty"`
}

// outputInfos digests materialized outputs, sorted by name.
func outputInfos(outs map[string]*linalg.Dense) []OutputInfo {
	names := make([]string, 0, len(outs))
	for n := range outs {
		names = append(names, n)
	}
	sort.Strings(names)
	infos := make([]OutputInfo, 0, len(names))
	for _, n := range names {
		d := outs[n]
		infos = append(infos, OutputInfo{
			Name: n, Rows: d.Rows, Cols: d.Cols,
			Frobenius: d.FrobeniusNorm(),
			SHA256:    DigestDense(d),
		})
	}
	return infos
}

// DigestDense hashes a dense matrix's raw row-major little-endian
// float64 payload. Equal digests mean bit-identical results.
func DigestDense(d *linalg.Dense) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range d.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DigestOutputs digests a whole output set the way the server reports
// it, so CLI-side runs can compare against server results.
func DigestOutputs(outs map[string]*linalg.Dense) []OutputInfo { return outputInfos(outs) }

func resultFrom(res *core.ExecResult) *JobResult {
	tasks := 0
	for _, j := range res.Metrics.Jobs {
		tasks += j.Tasks
	}
	return &JobResult{
		TotalSeconds: res.Metrics.TotalSeconds,
		CostDollars:  res.CostDollars,
		TotalFlops:   res.Metrics.TotalFlops,
		Jobs:         len(res.Metrics.Jobs),
		Tasks:        tasks,
		Outputs:      outputInfos(res.Outputs),
		Checkpoints:  res.Metrics.Checkpoints,
		ResumedStmt:  res.Metrics.ResumedFromStmt,
	}
}

// job is the server-internal record. All fields are written under the
// server lock except prog, dep and events, which are immutable after
// Submit (the event log has its own lock).
type job struct {
	id     string
	req    SubmitRequest
	prog   *lang.Program   // parsed at submit; immutable
	dep    *opt.Deployment // optimizer's choice (nil for fixed clusters)
	state  JobState
	status JobStatus
	// enqueued is the admission time on the server clock.
	enqueued float64
	// events is the job's lifecycle event stream (never nil).
	events *eventLog
	// explain is the rendered optimizer EXPLAIN report (submissions with
	// Explain set), produced at submit time; immutable.
	explain []byte
	// artifacts holds retained post-run artifacts (nil until the job
	// finishes, and again after artifact-retention eviction).
	artifacts *artifactSet
}

// jobStore holds the server's jobs in memory with deterministic
// sequential IDs (j-000001, j-000002, ...) in admission order. Old
// terminal jobs beyond a retention cap are pruned (see prune), so the
// store stays bounded under sustained traffic.
type jobStore struct {
	jobs   map[string]*job
	order  []string // sorted: IDs are zero-padded and assigned in order
	seq    int
	pruned int64 // total jobs removed by retention
}

func newJobStore() *jobStore { return &jobStore{jobs: map[string]*job{}} }

// add registers a new job and assigns its ID.
func (s *jobStore) add(req SubmitRequest) *job {
	s.seq++
	id := fmt.Sprintf("j-%06d", s.seq)
	j := &job{id: id, req: req, state: StateQueued}
	j.status = JobStatus{ID: id, Tenant: req.Tenant, State: StateQueued, Priority: req.Priority}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

func (s *jobStore) get(id string) (*job, bool) {
	j, ok := s.jobs[id]
	return j, ok
}

// prune drops the oldest terminal jobs until at most keep terminal jobs
// remain, returning the removed IDs (so durable stores can journal the
// deletions). Queued and running jobs are never pruned. keep <= 0
// disables pruning.
func (s *jobStore) prune(keep int) []string {
	if keep <= 0 {
		return nil
	}
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].state.Terminal() {
			terminal++
		}
	}
	var removed []string
	if terminal <= keep {
		return nil
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if terminal > keep && j.state.Terminal() {
			delete(s.jobs, id)
			terminal--
			removed = append(removed, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	s.pruned += int64(len(removed))
	return removed
}

// list returns job statuses in admission order, optionally filtered by
// tenant and/or state.
func (s *jobStore) list(tenant string, state JobState) []JobStatus {
	out := []JobStatus{}
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant != "" && j.req.Tenant != tenant {
			continue
		}
		if state != "" && j.state != state {
			continue
		}
		out = append(out, j.status)
	}
	return out
}

// listPage returns up to limit job statuses with IDs strictly greater
// than after (empty = from the start), plus the cursor to pass as the
// next page's after ("" when this page exhausts the store). The scan
// starts at the cursor via binary search, so a page costs O(log n +
// scanned), not O(store).
func (s *jobStore) listPage(tenant string, state JobState, after string, limit int) ([]JobStatus, string) {
	if limit <= 0 {
		limit = 100
	}
	start := 0
	if after != "" {
		start = sort.SearchStrings(s.order, after)
		if start < len(s.order) && s.order[start] == after {
			start++
		}
	}
	out := []JobStatus{}
	for i := start; i < len(s.order); i++ {
		j := s.jobs[s.order[i]]
		if tenant != "" && j.req.Tenant != tenant {
			continue
		}
		if state != "" && j.state != state {
			continue
		}
		out = append(out, j.status)
		if len(out) == limit {
			if i+1 < len(s.order) {
				return out, s.order[i]
			}
			break
		}
	}
	return out, ""
}
