package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/obs"
)

// fetchEvents long-polls a job's full event stream from seq 0 in one
// page (the job must be terminal so the page is complete).
func fetchEvents(t *testing.T, base, id string) EventPage {
	t.Helper()
	var page EventPage
	if err := getJSON(http.DefaultClient, base+"/v1/jobs/"+id+"/events?wait=0", &page); err != nil {
		t.Fatalf("events %s: %v", id, err)
	}
	return page
}

func eventTypes(evs []JobEvent) []EventType {
	out := make([]EventType, len(evs))
	for i, ev := range evs {
		out[i] = ev.Type
	}
	return out
}

// TestJobEventStreamLifecycle checks one job's stream is a dense,
// monotonically sequenced lifecycle: queued → admitted → compiling →
// cache verdict → running → engine progress → done.
func TestJobEventStreamLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	st := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: 11})
	fin := await(t, ts.URL, st.ID)
	if fin.State != StateSucceeded {
		t.Fatalf("job failed: %s", fin.Error)
	}
	page := fetchEvents(t, ts.URL, st.ID)
	if !page.Done {
		t.Fatal("terminal job's stream not done")
	}
	for i, ev := range page.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (stream not dense)", i, ev.Seq)
		}
	}
	types := eventTypes(page.Events)
	if types[0] != EvQueued {
		t.Fatalf("first event %s, want queued", types[0])
	}
	if last := types[len(types)-1]; last != EvDone {
		t.Fatalf("last event %s, want done", last)
	}
	wantOrder := []EventType{EvQueued, EvAdmitted, EvCompiling, EvPlanCacheMiss, EvRunning, EvJobStart, EvPhaseStart, EvDone}
	i := 0
	for _, ty := range types {
		if i < len(wantOrder) && ty == wantOrder[i] {
			i++
		}
	}
	if i != len(wantOrder) {
		t.Fatalf("lifecycle order %v missing from stream %v (matched %d)", wantOrder, types, i)
	}
	done := page.Events[len(page.Events)-1]
	if done.VirtualSec <= 0 || done.CostDollars <= 0 {
		t.Fatalf("done event lacks makespan/cost: %+v", done)
	}
}

// TestEventStreamResumeSince consumes the stream one event per request
// via ?since= and checks the reassembly equals the one-shot fetch: the
// cursor never drops or duplicates.
func TestEventStreamResumeSince(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	st := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: 11})
	await(t, ts.URL, st.ID)
	full := fetchEvents(t, ts.URL, st.ID)

	var got []JobEvent
	since := 0
	for {
		var page EventPage
		url := fmt.Sprintf("%s/v1/jobs/%s/events?wait=0&since=%d", ts.URL, st.ID, since)
		if err := getJSON(http.DefaultClient, url, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Events) == 0 {
			if !page.Done {
				t.Fatal("empty page on a terminal job without done")
			}
			break
		}
		// Take only the first event, then resume strictly after it — the
		// worst-case consumer.
		got = append(got, page.Events[0])
		since = page.Events[0].Seq + 1
		if page.Done && since >= page.Next {
			break
		}
	}
	a, _ := json.Marshal(full.Events)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("resume-from-since reassembly differs:\nfull: %s\ngot:  %s", a, b)
	}
}

// TestEventStreamSSEMatchesLongPoll: the SSE transport must deliver the
// byte-identical event JSON the long-poll transport serves.
func TestEventStreamSSEMatchesLongPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	st := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: 11})
	await(t, ts.URL, st.ID)
	full := fetchEvents(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var sseData []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if d, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			sseData = append(sseData, d)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(sseData) != len(full.Events) {
		t.Fatalf("SSE delivered %d events, long-poll %d", len(sseData), len(full.Events))
	}
	for i, ev := range full.Events {
		want, _ := json.Marshal(ev)
		if sseData[i] != string(want) {
			t.Fatalf("event %d differs:\nSSE:       %s\nlong-poll: %s", i, sseData[i], want)
		}
	}
}

// TestEventStreamDeterministic: two fresh servers with the same config
// and the same submission produce byte-identical event streams.
func TestEventStreamDeterministic(t *testing.T) {
	req := SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: 11,
		Chaos: "seed=7,kill=1@3.5", MaxRetries: 8}
	streams := make([][]byte, 2)
	for i := range streams {
		_, ts := newTestServer(t, Config{Nodes: 8})
		st := submit(t, ts.URL, req)
		fin := await(t, ts.URL, st.ID)
		if fin.State != StateSucceeded {
			t.Fatalf("run %d failed: %s", i, fin.Error)
		}
		page := fetchEvents(t, ts.URL, st.ID)
		streams[i], _ = json.Marshal(page.Events)
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Fatalf("event streams differ across identical runs:\nA: %s\nB: %s", streams[0], streams[1])
	}
	// Chaos runs must surface recovery in the stream.
	var evs []JobEvent
	if err := json.Unmarshal(streams[0], &evs); err != nil {
		t.Fatal(err)
	}
	seen := map[EventType]bool{}
	for _, ev := range evs {
		seen[ev.Type] = true
	}
	if !seen[EvCrash] {
		t.Fatalf("chaos run produced no crash event: %v", eventTypes(evs))
	}
}

// TestEventBufferEviction410: a tiny ring buffer evicts the stream
// head; resuming below the retained window is 410 Gone with a usable
// resume cursor.
func TestEventBufferEviction410(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8, EventBuffer: 3})
	st := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: 11})
	await(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?wait=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("since=0 on an overflowed stream: got %d (%s), want 410", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "since=") {
		t.Fatalf("410 body lacks a resume hint: %s", body)
	}
	// The retained tail is still consumable.
	var page EventPage
	var resume int
	if _, err := fmt.Sscanf(e.Error[strings.LastIndex(e.Error, "?since=")+len("?since="):], "%d", &resume); err != nil {
		t.Fatalf("cannot parse resume cursor from %q", e.Error)
	}
	url := fmt.Sprintf("%s/v1/jobs/%s/events?wait=0&since=%d", ts.URL, st.ID, resume)
	if err := getJSON(http.DefaultClient, url, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 3 || !page.Done {
		t.Fatalf("retained tail: %d events, done=%v, want 3 and done", len(page.Events), page.Done)
	}
	if last := page.Events[len(page.Events)-1]; last.Type != EvDone {
		t.Fatalf("retained tail must end with done, got %s", last.Type)
	}
}

// TestTraceArtifactByteIdentity: the retained Chrome trace of a server
// job equals the trace a direct core.Session run (the `cumulon -trace`
// path) writes for the same program/config/seed, byte for byte.
func TestTraceArtifactByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8, Seed: 42})
	req := SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Slots: 2, Seed: 11,
		Trace: true, Critpath: true, Metrics: true}
	st := submit(t, ts.URL, req)
	fin := await(t, ts.URL, st.ID)
	if fin.State != StateSucceeded {
		t.Fatalf("job failed: %s", fin.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	serverTrace, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d (%s)", resp.StatusCode, serverTrace)
	}

	// The CLI path: compile + AutoSplit + execute with a Trace recorder,
	// using the same defaults Submit applies (density 0.05).
	sess := core.NewSession(42)
	prog, err := lang.Parse(req.Program)
	if err != nil {
		t.Fatal(err)
	}
	req.Density = 0.05
	cfg := planConfig(prog, req)
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	if _, err := sess.Run(prog, cfg, core.ExecOptions{
		Cluster: cluster, Seed: 11, Recorder: tr,
	}); err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := tr.WriteChrome(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serverTrace, direct.Bytes()) {
		t.Fatalf("server trace (%d bytes) != direct trace (%d bytes)", len(serverTrace), direct.Len())
	}

	// The other opted-in artifacts exist and are non-empty.
	for _, kind := range []string{"critpath", "metrics"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/" + kind)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s artifact: %d, %d bytes", kind, resp.StatusCode, len(body))
		}
	}
	// Explain was not opted in: 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("explain without opt-in: %d, want 404", resp.StatusCode)
	}
}

// TestArtifactRetentionEviction: with ArtifactHistory=1 the first
// job's artifacts are dropped when the second finishes.
func TestArtifactRetentionEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8, ArtifactHistory: 1})
	first := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: 11, Trace: true})
	await(t, ts.URL, first.ID)
	second := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: 12, Trace: true})
	await(t, ts.URL, second.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted artifact: %d, want 410", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + second.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retained artifact: %d, want 200", resp.StatusCode)
	}
}

// TestExplainArtifact: explain requires optimize, and an optimized
// explain submission retains a non-empty report.
func TestExplainArtifact(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	var st JobStatus
	err := postJSON(http.DefaultClient, ts.URL+"/v1/jobs", SubmitRequest{
		Tenant: "a", Program: gnmfSource(), Tile: 4, Explain: true,
	}, &st)
	if err == nil || !strings.Contains(err.Error(), "explain requires optimize") {
		t.Fatalf("explain without optimize: %v", err)
	}

	st = submit(t, ts.URL, SubmitRequest{
		Tenant: "a", Program: gnmfSource(), Tile: 4,
		Optimize: true, DeadlineSec: 3600, MaxNodes: 4, Explain: true,
	})
	fin := await(t, ts.URL, st.ID)
	if fin.State != StateSucceeded {
		t.Fatalf("job failed: %s", fin.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain fetch: %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "winner") && !strings.Contains(string(body), "candidate") {
		t.Fatalf("explain report looks empty:\n%s", body)
	}
}

// TestJobHistoryPruneAndPagination: old terminal jobs are pruned at the
// retention bound and the paginated listing walks what remains.
func TestJobHistoryPruneAndPagination(t *testing.T) {
	s, ts := newTestServer(t, Config{Nodes: 8, JobHistory: 3})
	var last string
	for i := 0; i < 6; i++ {
		st := submit(t, ts.URL, SubmitRequest{Tenant: "a", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: int64(20 + i)})
		await(t, ts.URL, st.ID)
		last = st.ID
	}
	s.mu.Lock()
	stored, pruned := len(s.store.order), s.store.pruned
	s.mu.Unlock()
	if stored != 3 || pruned != 3 {
		t.Fatalf("store has %d jobs (pruned %d), want 3 retained / 3 pruned", stored, pruned)
	}

	// A pruned job is gone from the API.
	resp, err := http.Get(ts.URL + "/v1/jobs/j-000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pruned job status: %d, want 404", resp.StatusCode)
	}

	// Walk pages of 2.
	var all []JobStatus
	after := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("pagination does not terminate")
		}
		var page JobPage
		url := ts.URL + "/v1/jobs?limit=2"
		if after != "" {
			url += "&after=" + after
		}
		if err := getJSON(http.DefaultClient, url, &page); err != nil {
			t.Fatal(err)
		}
		all = append(all, page.Jobs...)
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	if len(all) != 3 {
		t.Fatalf("pagination returned %d jobs, want 3", len(all))
	}
	if all[len(all)-1].ID != last {
		t.Fatalf("last page ends at %s, want %s", all[len(all)-1].ID, last)
	}
	// The pruned-jobs counter is exported.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "cumulond_jobs_pruned_total 3") {
		t.Fatal("metrics lack cumulond_jobs_pruned_total 3")
	}
}

// TestPlanCacheLRUBound: a bound of 2 evicts the least-recently-used
// entry and counts it.
func TestPlanCacheLRUBound(t *testing.T) {
	c := NewPlanCache(2)
	cfg := testCfg()
	srcs := []string{gnmfSource(), gnmfSource() + "\n# v2", gnmfSource() + "\n# v3"}
	for _, src := range srcs {
		if _, _, _, err := c.Compile(src, cfg); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 compiles with bound 2: entries %d, evictions %d", st.Entries, st.Evictions)
	}
	// The oldest entry (srcs[0]) was evicted: recompiling misses.
	before := c.Stats().PlanMisses
	if _, _, _, err := c.Compile(srcs[0], cfg); err != nil {
		t.Fatal(err)
	}
	if c.Stats().PlanMisses != before+1 {
		t.Fatal("evicted entry did not miss on recompile")
	}
	// srcs[2] is still cached: hits.
	beforeHits := c.Stats().PlanHits
	if _, _, _, err := c.Compile(srcs[2], cfg); err != nil {
		t.Fatal(err)
	}
	if c.Stats().PlanHits != beforeHits+1 {
		t.Fatal("recently used entry was evicted")
	}
}

// TestMetricsHaveTenantHistograms: /metrics exposes per-tenant latency
// histogram series after a run, and /debug/dash renders.
func TestMetricsHaveTenantHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{Nodes: 8})
	st := submit(t, ts.URL, SubmitRequest{Tenant: "acme", Program: gnmfSource(), Tile: 4, Nodes: 4, Seed: 11})
	await(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`cumulond_e2e_seconds_bucket{tenant="acme",le="`,
		`cumulond_run_seconds_count{tenant="acme"}`,
		`cumulond_queue_wait_seconds_bucket{tenant="acme",le="`,
		`cumulond_compile_seconds_sum{tenant="acme"}`,
		`cumulond_fair_share_debt{tenant="acme"}`,
		`cumulond_plan_cache_evictions_total`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	dresp, err := http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	dbody, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("dash: %d", dresp.StatusCode)
	}
	for _, want := range []string{"cumulond", "acme", "recent jobs", "e2e p95"} {
		if !strings.Contains(string(dbody), want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	// pprof is off by default.
	presp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode == http.StatusOK {
		t.Fatal("pprof mounted without Config.Pprof")
	}
}
