package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cumulon/internal/lang"
	"cumulon/internal/opt"
	"cumulon/internal/plan"
)

// PlanCache caches the compile and optimize work of the job service,
// keyed by program hash × plan configuration. Identical resubmissions
// — the common shape of statistical workloads, where many clients run
// the same parameterized analysis — skip parsing, the CSE/lowering
// passes, and (for optimized jobs) the whole deployment search.
//
// Cached plans are immutable templates: Compile returns the shared
// *plan.Plan, and executors must Clone it before applying splits (see
// plan.Clone). Cached deployments are returned as value copies.
//
// The cache is safe for concurrent use and single-flight per key: when
// N jobs miss on the same key at once, one compiles and the rest wait
// for its result.
//
// The cache is bounded: when the combined plan+deployment entry count
// exceeds maxEntries, the least-recently-used entry is evicted (an LRU
// over a logical access clock — no wall time, so behavior is
// deterministic for a fixed request sequence). Evicted entries that are
// still being awaited by in-flight jobs stay valid for those holders;
// they just stop being findable for reuse.
type PlanCache struct {
	mu         sync.Mutex
	maxEntries int
	tick       int64 // logical access clock for LRU ordering
	plans      map[string]*cacheEntry
	deps       map[string]*depEntry

	hits, misses       int64 // compile cache
	depHits, depMisses int64 // deployment (optimizer) cache
	evictions          int64 // entries dropped by the LRU bound
}

type cacheEntry struct {
	once sync.Once
	used int64 // last access tick (guarded by PlanCache.mu)
	prog *lang.Program
	plan *plan.Plan
	err  error
}

type depEntry struct {
	once sync.Once
	used int64 // last access tick (guarded by PlanCache.mu)
	dep  opt.Deployment
	met  bool
	err  error
}

// NewPlanCache returns an empty cache holding at most maxEntries
// plan+deployment entries (<= 0 means the default of 256).
func NewPlanCache(maxEntries int) *PlanCache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &PlanCache{
		maxEntries: maxEntries,
		plans:      map[string]*cacheEntry{},
		deps:       map[string]*depEntry{},
	}
}

// evictLocked drops least-recently-used entries until the bound holds.
// Callers hold c.mu.
func (c *PlanCache) evictLocked() {
	for len(c.plans)+len(c.deps) > c.maxEntries {
		var (
			oldKey  string
			oldTick int64
			isDep   bool
			found   bool
		)
		for k, e := range c.plans {
			if !found || e.used < oldTick {
				oldKey, oldTick, isDep, found = k, e.used, false, true
			}
		}
		for k, e := range c.deps {
			if !found || e.used < oldTick {
				oldKey, oldTick, isDep, found = k, e.used, true, true
			}
		}
		if !found {
			return
		}
		if isDep {
			delete(c.deps, oldKey)
		} else {
			delete(c.plans, oldKey)
		}
		c.evictions++
	}
}

// Key fingerprints a program source and plan configuration. The source
// is hashed as written (whitespace and comments included — a textually
// different program is a different key even when semantically equal);
// the configuration folds in every field that changes the compiled
// plan, with densities in sorted key order for determinism.
func Key(source string, cfg plan.Config) string {
	h := sha256.New()
	h.Write([]byte(source))
	h.Write([]byte{0})
	fmt.Fprintf(h, "tile=%d,reorder=%t,fusion=%t,cse=%t",
		cfg.TileSize, !cfg.DisableReorder, !cfg.DisableFusion, !cfg.DisableCSE)
	names := make([]string, 0, len(cfg.Densities))
	for n := range cfg.Densities {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, ",d:%s=%s", n, strconv.FormatFloat(cfg.Densities[n], 'g', -1, 64))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// depKey extends a plan key with the optimizer constraint, so the same
// program optimized under a different deadline searches again.
func depKey(planKey string, req opt.Request) string {
	return planKey + "|" + strings.Join([]string{
		strconv.FormatFloat(req.DeadlineSec, 'g', -1, 64),
		strconv.FormatFloat(req.BudgetDollars, 'g', -1, 64),
		strconv.FormatFloat(req.Confidence, 'g', -1, 64),
		strconv.Itoa(req.MaxNodes),
	}, "|")
}

// Compile returns the parsed program and compiled plan template for the
// source under cfg, computing and caching them on first use. The
// returned plan is shared and must be treated as read-only (Clone
// before applying splits). The second return is the cache key, reusable
// with Deployment.
func (c *PlanCache) Compile(source string, cfg plan.Config) (*lang.Program, *plan.Plan, string, error) {
	key := Key(source, cfg)
	c.mu.Lock()
	c.tick++
	e, ok := c.plans[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &cacheEntry{}
		c.plans[key] = e
	}
	e.used = c.tick
	c.evictLocked()
	c.mu.Unlock()
	e.once.Do(func() {
		prog, err := lang.Parse(source)
		if err != nil {
			e.err = err
			return
		}
		pl, err := plan.Compile(prog, cfg)
		if err != nil {
			e.err = err
			return
		}
		e.prog, e.plan = prog, pl
	})
	if e.err != nil {
		return nil, nil, key, e.err
	}
	return e.prog, e.plan, key, nil
}

// Deployment returns the optimizer's winner for the request, running
// the search on first use and serving the cached decision afterwards.
// planKey must come from Compile with the request's program and config.
// search runs the search and returns its winner; it is only invoked on
// a miss (single-flight).
func (c *PlanCache) Deployment(planKey string, req opt.Request,
	search func() (*opt.Deployment, bool, error)) (*opt.Deployment, bool, error) {
	key := depKey(planKey, req)
	c.mu.Lock()
	c.tick++
	e, ok := c.deps[key]
	if ok {
		c.depHits++
	} else {
		c.depMisses++
		e = &depEntry{}
		c.deps[key] = e
	}
	e.used = c.tick
	c.evictLocked()
	c.mu.Unlock()
	e.once.Do(func() {
		d, met, err := search()
		if err != nil {
			e.err = err
			return
		}
		e.dep, e.met = *d, met
	})
	if e.err != nil {
		return nil, false, e.err
	}
	d := e.dep // value copy: callers may not mutate the cached winner
	return &d, e.met, nil
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	PlanHits   int64 `json:"plan_hits"`
	PlanMisses int64 `json:"plan_misses"`
	DepHits    int64 `json:"deployment_hits"`
	DepMisses  int64 `json:"deployment_misses"`
	Entries    int   `json:"entries"`
	Evictions  int64 `json:"evictions"`
}

// Stats snapshots the hit/miss counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		PlanHits: c.hits, PlanMisses: c.misses,
		DepHits: c.depHits, DepMisses: c.depMisses,
		Entries:   len(c.plans) + len(c.deps),
		Evictions: c.evictions,
	}
}
