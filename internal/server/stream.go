package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// JobPage is the GET /v1/jobs response: one page of statuses plus the
// cursor for the next page (empty when the listing is exhausted).
type JobPage struct {
	Jobs []JobStatus `json:"jobs"`
	// NextAfter, when non-empty, is the ?after= value that continues the
	// listing.
	NextAfter string `json:"next_after,omitempty"`
}

// EventPage is the long-poll GET /v1/jobs/{id}/events response. Next is
// the ?since= value that resumes exactly after the returned events;
// polling with it never drops or duplicates. Done means the stream is
// complete: Next will never grow and further polls return immediately.
type EventPage struct {
	Events []JobEvent `json:"events"`
	Next   int        `json:"next"`
	Done   bool       `json:"done"`
}

// eventLogFor resolves a job's event log.
func (s *Server) eventLogFor(id string) (*eventLog, *apiError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.store.get(id)
	if !ok {
		return nil, &apiError{code: http.StatusNotFound, msg: "no such job"}
	}
	return j.events, nil
}

// handleEvents serves a job's event stream. Default is long-poll:
// return any events at or past ?since= immediately, otherwise block up
// to ?wait= seconds (default 10, cap 30) for the next append. With
// ?stream=sse or Accept: text/event-stream the stream is served as
// Server-Sent Events until the terminal event. Both transports deliver
// the identical JobEvent JSON.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	log, aerr := s.eventLogFor(r.PathValue("id"))
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	q := r.URL.Query()
	since := 0
	if v := q.Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, badRequest("since must be a non-negative integer, got %q", v))
			return
		}
		since = n
	}
	if q.Get("stream") == "sse" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.serveSSE(w, r, log, since)
		return
	}
	waitSec := 10.0
	if v := q.Get("wait"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			writeErr(w, badRequest("wait must be a non-negative number of seconds, got %q", v))
			return
		}
		waitSec = f
	}
	if waitSec > 30 {
		waitSec = 30
	}
	deadline := time.Now().Add(time.Duration(waitSec * float64(time.Second)))
	for {
		evs, next, done, gone, wait := log.since(since)
		if gone {
			writeErr(w, &apiError{code: http.StatusGone,
				msg: fmt.Sprintf("events before seq %d were evicted from the ring buffer; resume with ?since=%d", next, next)})
			return
		}
		if len(evs) > 0 || done || !time.Now().Before(deadline) {
			if evs == nil {
				evs = []JobEvent{}
			}
			writeJSON(w, http.StatusOK, EventPage{Events: evs, Next: next, Done: done})
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-wait:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// serveSSE streams events as text/event-stream frames (`id:` carries
// the sequence number, `data:` the compact JobEvent JSON — the same
// bytes a long-poll consumer re-marshals to). The stream ends after the
// terminal event, or reports an evicted resume point as an sse "gone"
// event.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, log *eventLog, since int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &apiError{code: http.StatusNotImplemented, msg: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		evs, next, done, gone, wait := log.since(since)
		if gone {
			fmt.Fprintf(w, "event: gone\ndata: {\"next\": %d}\n\n", next)
			fl.Flush()
			return
		}
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, b)
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		since = next
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// handleArtifact serves one retained artifact of a terminal job.
// 409 while the job is still queued/running, 404 when the submission
// did not opt in, 410 when retention evicted the artifact set.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request, kind string) {
	s.mu.Lock()
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		s.mu.Unlock()
		writeErr(w, &apiError{code: http.StatusNotFound, msg: "no such job"})
		return
	}
	state := j.state
	arts := j.artifacts
	req := j.req
	s.mu.Unlock()
	if !state.Terminal() {
		writeErr(w, &apiError{code: http.StatusConflict, msg: fmt.Sprintf("job is %s; artifacts exist once it is terminal", state)})
		return
	}
	var body []byte
	var optedIn bool
	var ctype string
	switch kind {
	case "trace":
		body, optedIn, ctype = nil, req.Trace, "application/json"
		if arts != nil {
			body = arts.trace
		}
	case "critpath":
		body, optedIn, ctype = nil, req.Critpath, "text/plain; charset=utf-8"
		if arts != nil {
			body = arts.critpath
		}
	case "metrics":
		body, optedIn, ctype = nil, req.Metrics, "text/plain; version=0.0.4"
		if arts != nil {
			body = arts.metrics
		}
	case "explain":
		body, optedIn, ctype = nil, req.Explain, "text/plain; charset=utf-8"
		if arts != nil {
			body = arts.explain
		}
	default:
		writeErr(w, &apiError{code: http.StatusNotFound, msg: "unknown artifact"})
		return
	}
	if !optedIn {
		writeErr(w, &apiError{code: http.StatusNotFound,
			msg: fmt.Sprintf("artifact not retained; submit with %q: true to keep it", kind)})
		return
	}
	if body == nil {
		writeErr(w, &apiError{code: http.StatusGone, msg: "artifact evicted by retention; raise -artifact-history"})
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
