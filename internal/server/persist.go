package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/opt"
)

// Job-store durability: cumulond configured with a state directory
// journals every job transition and recovers the store on boot, so a
// killed server comes back with its full job history, re-queues jobs
// that were waiting, and re-admits jobs that were running (which then
// resume from their program checkpoints, see internal/ckpt).
//
// Layout under <state-dir>/jobs, generation-rotated:
//
//	snapshot-<gen>.json   full store state at boot of generation gen
//	journal-<gen>.jsonl   one record per transition since that snapshot
//
// Boot loads the newest readable snapshot, replays its journal
// (tolerating a torn final line from the crash), reconciles, writes
// snapshot-<gen+1> atomically, and starts journaling to
// journal-<gen+1>; older generations are then deleted. A record is
// a full upsert of one job, so replay is last-write-wins and a crash
// between any two writes loses at most the final transition.

// persistedJob is one job as the journal and snapshot record it: the
// normalized request (defaults already applied at admission), the
// lifecycle state, the client-visible status, and any retained
// artifacts.
type persistedJob struct {
	ID        string          `json:"id"`
	Req       SubmitRequest   `json:"req"`
	State     JobState        `json:"state"`
	Status    JobStatus       `json:"status"`
	Artifacts *persistedFiles `json:"artifacts,omitempty"`
}

// persistedFiles carries a terminal job's retained artifact bytes
// (JSON base64-encodes them).
type persistedFiles struct {
	Trace    []byte `json:"trace,omitempty"`
	Critpath []byte `json:"critpath,omitempty"`
	Metrics  []byte `json:"metrics,omitempty"`
	Explain  []byte `json:"explain,omitempty"`
}

// snapshotFile is the full store state at the start of a generation.
type snapshotFile struct {
	// Seq is the job-ID sequence high-water mark.
	Seq int `json:"seq"`
	// Jobs are in admission order.
	Jobs []persistedJob `json:"jobs"`
}

// journalRecord is one journal line.
type journalRecord struct {
	// Op is "put" (upsert Job) or "delete" (drop ID, from retention
	// pruning).
	Op string `json:"op"`
	// Seq is the store's ID sequence at write time, so replay restores
	// the high-water mark even when the newest job was later deleted.
	Seq int           `json:"seq,omitempty"`
	Job *persistedJob `json:"job,omitempty"`
	ID  string        `json:"id,omitempty"`
}

// statePersister owns the journal file of the current generation.
// put/remove are called under the server lock; disable() makes every
// subsequent write a no-op (the crash test hook uses it to freeze the
// on-disk state at the "kill" instant).
type statePersister struct {
	mu       sync.Mutex
	dir      string
	gen      int
	f        *os.File
	disabled bool
}

// openState loads the recovered store state from dir (creating it when
// absent): the newest readable snapshot plus its journal replayed over
// it. It does not write anything yet — the server reconciles the state
// (re-queuing in-flight jobs) and then calls begin with the result.
func openState(dir string) (*statePersister, *snapshotFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("state dir: %w", err)
	}
	p := &statePersister{dir: dir}
	gen, snap := newestSnapshot(dir)
	replayJournal(filepath.Join(dir, journalName(gen)), snap)
	p.gen = gen
	return p, snap, nil
}

func snapshotName(gen int) string { return fmt.Sprintf("snapshot-%d.json", gen) }
func journalName(gen int) string  { return fmt.Sprintf("journal-%d.jsonl", gen) }

// newestSnapshot returns the highest generation whose snapshot file
// parses, with that snapshot's state (generation 0 and an empty state
// when none exists).
func newestSnapshot(dir string) (int, *snapshotFile) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, &snapshotFile{}
	}
	var gens []int
	for _, e := range ents {
		name, ok := strings.CutPrefix(e.Name(), "snapshot-")
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, ".json")
		if !ok {
			continue
		}
		if g, err := strconv.Atoi(name); err == nil && g >= 1 {
			gens = append(gens, g)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	for _, g := range gens {
		raw, err := os.ReadFile(filepath.Join(dir, snapshotName(g)))
		if err != nil {
			continue
		}
		var snap snapshotFile
		if err := json.Unmarshal(raw, &snap); err != nil {
			continue // torn snapshot write: fall back to the previous generation
		}
		return g, &snap
	}
	return 0, &snapshotFile{}
}

// replayJournal applies journal records onto snap in order, stopping at
// the first malformed line (the torn tail of a crashed write). Upserts
// keep first-seen (admission) order.
func replayJournal(path string, snap *snapshotFile) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	index := map[string]int{}
	for i, j := range snap.Jobs {
		index[j.ID] = i
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return // torn tail; everything before it is intact
		}
		if rec.Seq > snap.Seq {
			snap.Seq = rec.Seq
		}
		switch rec.Op {
		case "put":
			if rec.Job == nil {
				return
			}
			if i, ok := index[rec.Job.ID]; ok {
				snap.Jobs[i] = *rec.Job
			} else {
				index[rec.Job.ID] = len(snap.Jobs)
				snap.Jobs = append(snap.Jobs, *rec.Job)
			}
		case "delete":
			if i, ok := index[rec.ID]; ok {
				snap.Jobs = append(snap.Jobs[:i], snap.Jobs[i+1:]...)
				delete(index, rec.ID)
				for id, k := range index {
					if k > i {
						index[id] = k - 1
					}
				}
			}
		default:
			return // unknown op: treat as corruption, stop replay
		}
	}
}

// begin starts the next generation: it writes the reconciled state as
// the new snapshot (atomically), opens its journal for appending, and
// removes older generations.
func (p *statePersister) begin(snap *snapshotFile) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	gen := p.gen + 1
	enc, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("state snapshot: %w", err)
	}
	tmp := filepath.Join(p.dir, snapshotName(gen)+".tmp")
	if err := os.WriteFile(tmp, enc, 0o644); err != nil {
		return fmt.Errorf("state snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapshotName(gen))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("state snapshot: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(p.dir, journalName(gen)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("state journal: %w", err)
	}
	old := p.gen
	p.gen, p.f = gen, f
	// The new generation is durable; older ones are garbage.
	for g := old; g >= 1; g-- {
		os.Remove(filepath.Join(p.dir, snapshotName(g)))
		os.Remove(filepath.Join(p.dir, journalName(g)))
	}
	return nil
}

// append writes one journal record and syncs it to disk.
func (p *statePersister) append(rec journalRecord) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.disabled || p.f == nil {
		return
	}
	enc, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if _, err := p.f.Write(append(enc, '\n')); err != nil {
		return
	}
	p.f.Sync()
}

// put journals an upsert of one job.
func (p *statePersister) put(seq int, j persistedJob) {
	p.append(journalRecord{Op: "put", Seq: seq, Job: &j})
}

// remove journals a retention-prune deletion.
func (p *statePersister) remove(id string) {
	p.append(journalRecord{Op: "delete", ID: id})
}

// disable freezes the on-disk state: every later write is dropped. The
// crash-restart test uses it as the SIGKILL instant — transitions after
// it never reach the journal, exactly as if the process had died.
func (p *statePersister) disable() {
	p.mu.Lock()
	p.disabled = true
	p.mu.Unlock()
}

// close closes the journal file.
func (p *statePersister) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f != nil {
		p.f.Close()
		p.f = nil
	}
}

// persistedOf renders a job for the journal. Callers hold s.mu.
func (s *Server) persistedOf(j *job) persistedJob {
	pj := persistedJob{ID: j.id, Req: j.req, State: j.state, Status: j.status}
	if a := j.artifacts; a != nil {
		pj.Artifacts = &persistedFiles{
			Trace: a.trace, Critpath: a.critpath,
			Metrics: a.metrics, Explain: a.explain,
		}
	}
	return pj
}

// persistJob journals a job's current state. Callers hold s.mu.
func (s *Server) persistJob(j *job) {
	if s.persist == nil {
		return
	}
	s.persist.put(s.store.seq, s.persistedOf(j))
}

// recover rebuilds the job store from a loaded state: terminal jobs
// become history (artifacts restored, event streams closed with their
// terminal event), and queued or running jobs are re-admitted — a job
// that was mid-run when the server died is simply queued again, and
// its execution resumes from the newest program checkpoint it wrote
// (same program and configuration, so the checkpoint store covers it).
// Called from New before the scheduler loop starts; no lock needed.
func (s *Server) recover(snap *snapshotFile) {
	s.store.seq = snap.Seq
	for i := range snap.Jobs {
		pj := &snap.Jobs[i]
		if n, err := strconv.Atoi(strings.TrimPrefix(pj.ID, "j-")); err == nil && n > s.store.seq {
			s.store.seq = n
		}
		j := &job{id: pj.ID, req: pj.Req, state: pj.State, status: pj.Status}
		j.events = newEventLog(s.cfg.EventBuffer)
		s.store.jobs[j.id] = j
		s.store.order = append(s.store.order, j.id)
		if pj.State.Terminal() {
			if a := pj.Artifacts; a != nil {
				j.artifacts = &artifactSet{
					trace: a.Trace, critpath: a.Critpath,
					metrics: a.Metrics, explain: a.Explain,
				}
				s.artifactOrder = append(s.artifactOrder, j.id)
			}
			// The pre-crash event stream is gone; close the recovered one
			// with the terminal outcome so consumers still see completion.
			switch pj.State {
			case StateSucceeded:
				ev := JobEvent{Type: EvDone}
				if r := pj.Status.Result; r != nil {
					ev.VirtualSec, ev.CostDollars = r.TotalSeconds, r.CostDollars
				}
				j.events.append(ev, true)
			case StateFailed:
				j.events.append(JobEvent{Type: EvFailed, Error: pj.Status.Error}, true)
			case StateCanceled:
				j.events.append(JobEvent{Type: EvCanceled}, true)
			}
			continue
		}
		s.readmit(j)
	}
}

// readmit re-queues a recovered non-terminal job: the request was
// already validated and normalized at its original admission, so only
// the submit-time derivations (parse, optimizer search) rerun — both
// deterministic, so an optimizing job gets the same deployment it had.
func (s *Server) readmit(j *job) {
	prog, err := lang.Parse(j.req.Program)
	if err == nil {
		_, err = prog.Validate()
	}
	if err == nil && j.req.Optimize {
		cfg := planConfig(prog, j.req)
		oreq := opt.Request{
			Program: prog, PlanCfg: cfg,
			DeadlineSec: j.req.DeadlineSec, BudgetDollars: j.req.BudgetDollars,
			Confidence: j.req.Confidence, MaxNodes: j.req.MaxNodes,
			Machines: []cloud.MachineType{s.machine},
		}
		var met bool
		j.dep, met, _, err = s.searchDeployment(j.req.Program, cfg, oreq)
		if err == nil && !met {
			err = fmt.Errorf("optimize: constraint no longer satisfiable")
		}
	}
	if err != nil {
		j.state = StateFailed
		j.status.State = StateFailed
		j.status.Error = fmt.Sprintf("recovery: %v", err)
		j.events.append(JobEvent{Type: EvFailed, Error: j.status.Error}, true)
		return
	}
	j.prog = prog
	j.state = StateQueued
	j.status.State = StateQueued
	j.status.Error = ""
	j.status.RunSec = 0
	j.status.Result = nil
	j.enqueued = s.now()
	j.events.emit(JobEvent{Type: EvQueued, Nodes: j.req.Nodes})
	s.sched.Push(SchedJob{
		ID: j.id, Tenant: j.req.Tenant, Priority: j.req.Priority,
		Nodes: j.req.Nodes, Enqueued: j.enqueued,
	})
}
