// Package spot implements the paper's stated follow-on direction:
// deploying Cumulon workloads on market-priced (spot) instances, where
// capacity is rented by bidding against a fluctuating price and the
// cluster is evicted whenever the market rises above the bid.
//
// The model:
//
//   - a seeded mean-reverting price process with occasional spikes
//     generates spot-price traces for a machine type (prices hover well
//     below the on-demand price, as in real markets, but spike above it);
//   - a program runs as its sequence of jobs; job boundaries are natural
//     checkpoints because Cumulon materializes every job's output (the
//     simulation assumes tile storage survives eviction, i.e. the DFS is
//     backed by durable storage rather than instance-local disk);
//   - on eviction, progress inside the running job is lost; execution
//     resumes from the last completed job once the price falls back below
//     the bid;
//   - cost accrues at the spot price while running (per-second integral,
//     the granularity later spot markets adopted).
//
// A Monte Carlo estimator turns this into expected cost, expected
// completion time and deadline-hit probability as functions of the bid —
// the inputs a bid optimizer needs.
package spot

import (
	"fmt"
	"math"
	"math/rand"
)

// Market parameterizes the spot price process for one machine type.
type Market struct {
	// OnDemand is the fixed on-demand price per hour (the bid ceiling
	// that always wins).
	OnDemand float64
	// Mean is the long-run average spot price per hour (typically
	// 25-40% of on-demand).
	Mean float64
	// Vol is the per-step relative volatility of the process.
	Vol float64
	// SpikeProb is the per-step probability of a demand spike that
	// pushes the price above on-demand.
	SpikeProb float64
	// SpikeMul scales the spike height relative to on-demand.
	SpikeMul float64
	// StepSec is the price-change granularity in seconds.
	StepSec float64
}

// DefaultMarket returns a market calibrated to the given on-demand price
// with typical 2013-era spot statistics.
func DefaultMarket(onDemand float64) Market {
	return Market{
		OnDemand:  onDemand,
		Mean:      0.35 * onDemand,
		Vol:       0.08,
		SpikeProb: 0.004,
		SpikeMul:  1.5,
		StepSec:   60,
	}
}

// Validate checks market parameters.
func (m Market) Validate() error {
	if m.OnDemand <= 0 || m.Mean <= 0 || m.StepSec <= 0 {
		return fmt.Errorf("spot: market needs positive prices and step, got %+v", m)
	}
	if m.Mean > m.OnDemand {
		return fmt.Errorf("spot: mean spot price %v above on-demand %v", m.Mean, m.OnDemand)
	}
	return nil
}

// Trace generates a price trace covering durationSec seconds (one entry
// per step), deterministically from seed.
func (m Market) Trace(durationSec float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	steps := int(math.Ceil(durationSec/m.StepSec)) + 1
	out := make([]float64, steps)
	price := m.Mean
	spikeLeft := 0
	for i := range out {
		if spikeLeft > 0 {
			spikeLeft--
		} else if rng.Float64() < m.SpikeProb {
			// Spikes last a few steps.
			spikeLeft = 3 + rng.Intn(10)
		}
		// Mean reversion plus noise.
		price += 0.2*(m.Mean-price) + m.Vol*m.Mean*rng.NormFloat64()
		floor := 0.1 * m.Mean
		if price < floor {
			price = floor
		}
		p := price
		if spikeLeft > 0 {
			p = m.OnDemand * m.SpikeMul * (1 + 0.2*rng.Float64())
		}
		out[i] = p
	}
	return out
}

// Outcome is the result of one simulated spot execution.
type Outcome struct {
	Finished   bool
	TotalSec   float64 // wall-clock until finish (or horizon)
	Cost       float64 // dollars accrued
	Evictions  int
	WastedSec  float64 // compute time lost to evictions
	JobsRun    int     // job executions including re-runs
	JobsNeeded int
}

// Simulate runs one program execution under a price trace: jobDurations
// are the per-job wall-clock seconds (from engine metrics or the
// simulator), nodes the cluster size, bid the per-instance-hour bid, and
// horizonSec the give-up time.
func Simulate(jobDurations []float64, nodes int, market Market, bid float64, seed int64, horizonSec float64) Outcome {
	trace := market.Trace(horizonSec, seed)
	step := market.StepSec
	priceAt := func(t float64) float64 {
		i := int(t / step)
		if i >= len(trace) {
			i = len(trace) - 1
		}
		return trace[i]
	}
	out := Outcome{JobsNeeded: len(jobDurations)}
	t := 0.0
	job := 0
	for job < len(jobDurations) && t < horizonSec {
		if priceAt(t) > bid {
			// Wait (free) until the market drops below the bid.
			t += step
			continue
		}
		// Run the job, paying spot price per step; evict if the price
		// crosses the bid mid-job.
		need := jobDurations[job]
		ran := 0.0
		evicted := false
		for ran < need && t < horizonSec {
			p := priceAt(t)
			if p > bid {
				evicted = true
				break
			}
			dt := math.Min(step, need-ran)
			out.Cost += float64(nodes) * p * dt / 3600
			ran += dt
			t += dt
		}
		if evicted {
			out.Evictions++
			out.WastedSec += ran
			out.JobsRun++
			continue // retry the same job
		}
		if ran >= need {
			out.JobsRun++
			job++
		}
	}
	out.Finished = job >= len(jobDurations)
	out.TotalSec = t
	return out
}

// Estimate aggregates Monte Carlo simulations.
type Estimate struct {
	Bid          float64
	ExpectedCost float64
	ExpectedSec  float64 // over finished runs
	FinishProb   float64
	MeanEvicts   float64
}

// MonteCarlo estimates the outcome distribution for a bid over n trials.
func MonteCarlo(jobDurations []float64, nodes int, market Market, bid float64, n int, seed int64, horizonSec float64) Estimate {
	if n <= 0 {
		n = 1
	}
	est := Estimate{Bid: bid}
	finished := 0
	var finSec float64
	for i := 0; i < n; i++ {
		o := Simulate(jobDurations, nodes, market, bid, seed+int64(i)*7919, horizonSec)
		est.ExpectedCost += o.Cost
		est.MeanEvicts += float64(o.Evictions)
		if o.Finished {
			finished++
			finSec += o.TotalSec
		}
	}
	est.ExpectedCost /= float64(n)
	est.MeanEvicts /= float64(n)
	est.FinishProb = float64(finished) / float64(n)
	if finished > 0 {
		est.ExpectedSec = finSec / float64(finished)
	} else {
		est.ExpectedSec = math.Inf(1)
	}
	return est
}

// OptimizeBid sweeps candidate bids and returns the estimate with the
// lowest expected cost among those meeting the target finish probability
// within the horizon, plus the full sweep for reporting. If no bid meets
// the target, the highest-probability bid is returned with ok=false.
func OptimizeBid(jobDurations []float64, nodes int, market Market, trials int, seed int64, horizonSec, targetProb float64) (best Estimate, ok bool, sweep []Estimate) {
	bids := []float64{
		0.5 * market.Mean,
		market.Mean,
		1.5 * market.Mean,
		2 * market.Mean,
		0.8 * market.OnDemand,
		market.OnDemand,
		1.5 * market.OnDemand,
		2.5 * market.OnDemand,
	}
	var fallback Estimate
	found := false
	for _, b := range bids {
		e := MonteCarlo(jobDurations, nodes, market, b, trials, seed, horizonSec)
		sweep = append(sweep, e)
		if e.FinishProb > fallback.FinishProb ||
			(e.FinishProb == fallback.FinishProb && e.ExpectedCost < fallback.ExpectedCost) {
			fallback = e
		}
		if e.FinishProb >= targetProb && (!found || e.ExpectedCost < best.ExpectedCost) {
			best = e
			found = true
		}
	}
	if !found {
		return fallback, false, sweep
	}
	return best, true, sweep
}
