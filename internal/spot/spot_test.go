package spot

import (
	"math"
	"testing"
)

func market() Market { return DefaultMarket(0.24) } // m1.large price

var jobs = []float64{300, 600, 450, 900} // a 4-job program, 37.5 min total

func TestMarketValidate(t *testing.T) {
	if err := market().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := market()
	bad.Mean = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("mean above on-demand should be invalid")
	}
	if err := (Market{}).Validate(); err == nil {
		t.Fatal("zero market should be invalid")
	}
}

func TestTraceStatistics(t *testing.T) {
	m := market()
	trace := m.Trace(48*3600, 1)
	var sum float64
	below := 0
	for _, p := range trace {
		if p <= 0 {
			t.Fatal("non-positive price")
		}
		sum += p
		if p < m.OnDemand {
			below++
		}
	}
	mean := sum / float64(len(trace))
	// The long-run average sits near the configured mean, well below
	// on-demand; spikes make it a bit higher than Mean.
	if mean < 0.5*m.Mean || mean > m.OnDemand {
		t.Fatalf("trace mean %v implausible (mean %v, on-demand %v)", mean, m.Mean, m.OnDemand)
	}
	if frac := float64(below) / float64(len(trace)); frac < 0.8 {
		t.Fatalf("only %v of the time below on-demand", frac)
	}
}

func TestTraceDeterminism(t *testing.T) {
	m := market()
	a := m.Trace(3600, 42)
	b := m.Trace(3600, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same trace")
		}
	}
}

func TestHighBidAlwaysFinishes(t *testing.T) {
	// Bidding far above any spike means no evictions, and cost below
	// on-demand (you pay the spot price, not your bid).
	m := market()
	o := Simulate(jobs, 8, m, 100*m.OnDemand, 3, 24*3600)
	if !o.Finished {
		t.Fatal("unbeatable bid did not finish")
	}
	if o.Evictions != 0 {
		t.Fatalf("unbeatable bid evicted %d times", o.Evictions)
	}
	var total float64
	for _, j := range jobs {
		total += j
	}
	onDemandCost := 8 * m.OnDemand * total / 3600
	if o.Cost >= onDemandCost {
		t.Fatalf("spot cost %v above on-demand %v", o.Cost, onDemandCost)
	}
	if math.Abs(o.TotalSec-total) > 1 {
		t.Fatalf("no-eviction runtime %v != %v", o.TotalSec, total)
	}
}

func TestLowBidNeverRuns(t *testing.T) {
	m := market()
	o := Simulate(jobs, 8, m, 0.01*m.Mean, 3, 6*3600)
	if o.Finished || o.Cost > 0 {
		t.Fatalf("sub-floor bid should never run: %+v", o)
	}
}

func TestMidBidEvictsAndRetries(t *testing.T) {
	m := market()
	// A bid just above the mean gets evicted by noise/spikes on long
	// programs; aggregate over seeds to avoid flakiness.
	longJobs := []float64{3600, 3600, 3600, 3600}
	evictions := 0
	for seed := int64(0); seed < 20; seed++ {
		o := Simulate(longJobs, 4, m, m.Mean*1.1, seed, 96*3600)
		evictions += o.Evictions
		if o.Finished && o.JobsRun < o.JobsNeeded {
			t.Fatal("finished with fewer job runs than jobs")
		}
	}
	if evictions == 0 {
		t.Fatal("a marginal bid never got evicted across 20 traces")
	}
}

func TestMonteCarloMonotoneInBid(t *testing.T) {
	m := market()
	lo := MonteCarlo(jobs, 8, m, m.Mean*1.05, 40, 9, 12*3600)
	hi := MonteCarlo(jobs, 8, m, 3*m.OnDemand, 40, 9, 12*3600)
	if hi.FinishProb < lo.FinishProb {
		t.Fatalf("higher bid lowered finish probability: %v vs %v", hi.FinishProb, lo.FinishProb)
	}
	if hi.FinishProb < 0.99 {
		t.Fatalf("unbeatable bid should almost surely finish: %v", hi.FinishProb)
	}
}

func TestOptimizeBid(t *testing.T) {
	m := market()
	best, ok, sweep := OptimizeBid(jobs, 8, m, 30, 5, 12*3600, 0.9)
	if !ok {
		t.Fatalf("no bid met the target: %+v", sweep)
	}
	if best.FinishProb < 0.9 {
		t.Fatalf("best bid misses target: %+v", best)
	}
	var total float64
	for _, j := range jobs {
		total += j
	}
	onDemandCost := 8 * m.OnDemand * total / 3600
	if best.ExpectedCost >= onDemandCost {
		t.Fatalf("spot expected cost %v not below on-demand %v", best.ExpectedCost, onDemandCost)
	}
	if len(sweep) < 5 {
		t.Fatalf("sweep too small: %d", len(sweep))
	}
}

func TestOptimizeBidImpossibleTarget(t *testing.T) {
	m := market()
	// A one-minute horizon for 37 minutes of work: nothing can finish.
	_, ok, _ := OptimizeBid(jobs, 8, m, 10, 5, 60, 0.9)
	if ok {
		t.Fatal("impossible target reported as met")
	}
}
