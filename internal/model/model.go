// Package model implements Cumulon's benchmarking-and-modeling layer: it
// runs micro-benchmarks on an instrumented engine to collect per-task
// observations, then fits linear task-time models
//
//	time ≈ β₀ + β₁·flops + β₂·diskBytes + β₃·netBytes
//
// by ordinary least squares, one model per (machine type, slot
// configuration). The optimizer's simulator consumes these models to
// predict job and program times on hypothetical deployments — the paper's
// "suite of benchmarking, simulation, modeling, and search techniques".
package model

import (
	"fmt"
	"math"
	"sort"
)

// Obs is one task observation: work profile and measured duration.
type Obs struct {
	Flops     int64
	DiskBytes int64 // local reads plus primary writes
	NetBytes  int64 // remote reads plus replica write traffic
	Seconds   float64
}

// TaskModel predicts task duration from the work profile.
type TaskModel struct {
	// Coefficients: intercept (startup), seconds per flop, per disk byte,
	// per network byte.
	B0, BFlops, BDisk, BNet float64
	// N is the number of observations the model was fitted on.
	N int
	// Residuals holds the sorted multiplicative residuals
	// (observed / predicted) of the fit. They are the empirical noise
	// distribution of task times — straggler tails included — which the
	// simulator resamples to predict completion-time *distributions*
	// rather than point estimates (the paper's simulation technique).
	Residuals []float64
}

// SampleResidual draws one multiplicative residual using the uniform
// variate u ∈ [0, 1). Models without residual data return 1.
func (m *TaskModel) SampleResidual(u float64) float64 {
	if len(m.Residuals) == 0 {
		return 1
	}
	i := int(u * float64(len(m.Residuals)))
	if i >= len(m.Residuals) {
		i = len(m.Residuals) - 1
	}
	return m.Residuals[i]
}

// ResidualQuantile returns the q-th quantile (0..1) of the residual
// distribution, or 1 if none was recorded.
func (m *TaskModel) ResidualQuantile(q float64) float64 {
	if len(m.Residuals) == 0 {
		return 1
	}
	i := int(q * float64(len(m.Residuals)))
	if i >= len(m.Residuals) {
		i = len(m.Residuals) - 1
	}
	if i < 0 {
		i = 0
	}
	return m.Residuals[i]
}

// Predict returns the predicted task duration in seconds. Negative
// predictions (possible with an imperfect fit near the origin) clamp to
// the intercept.
func (m *TaskModel) Predict(flops, diskBytes, netBytes int64) float64 {
	t := m.B0 + m.BFlops*float64(flops) + m.BDisk*float64(diskBytes) + m.BNet*float64(netBytes)
	if t < m.B0 {
		return m.B0
	}
	return t
}

// Terms returns the additive components of a predicted task duration:
// the intercept (startup), the flop term, the disk-byte term and the
// network-byte term. With the non-negative coefficients Fit produces,
// the four terms sum exactly to Predict; the optimizer's search
// telemetry records them so an EXPLAIN report can say *why* one
// deployment beats another (more compute, more network, more startup).
func (m *TaskModel) Terms(flops, diskBytes, netBytes int64) (b0, flopSec, diskSec, netSec float64) {
	return m.B0, m.BFlops * float64(flops), m.BDisk * float64(diskBytes), m.BNet * float64(netBytes)
}

func (m *TaskModel) String() string {
	return fmt.Sprintf("t = %.3f + %.3g*flops + %.3g*disk + %.3g*net (n=%d)",
		m.B0, m.BFlops, m.BDisk, m.BNet, m.N)
}

// Fit estimates a TaskModel from observations by ordinary least squares
// over the 4-parameter design, solving the normal equations directly.
// Non-negativity is enforced by clamping (the physical coefficients are
// rates; tiny negative estimates arise only from collinear designs).
func Fit(obs []Obs) (*TaskModel, error) {
	if len(obs) < 4 {
		return nil, fmt.Errorf("model: need at least 4 observations, got %d", len(obs))
	}
	// Scale features to comparable magnitudes for numerical stability.
	const fScale, bScale = 1e9, 1e8
	var xtx [4][4]float64
	var xty [4]float64
	for _, o := range obs {
		x := [4]float64{1, float64(o.Flops) / fScale, float64(o.DiskBytes) / bScale, float64(o.NetBytes) / bScale}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				xtx[i][j] += x[i] * x[j]
			}
			xty[i] += x[i] * o.Seconds
		}
	}
	beta, err := solve4(xtx, xty)
	if err != nil {
		return nil, err
	}
	m := &TaskModel{
		B0:     math.Max(0, beta[0]),
		BFlops: math.Max(0, beta[1]/fScale),
		BDisk:  math.Max(0, beta[2]/bScale),
		BNet:   math.Max(0, beta[3]/bScale),
		N:      len(obs),
	}
	// Record the multiplicative residual distribution for probabilistic
	// simulation.
	m.Residuals = make([]float64, 0, len(obs))
	for _, o := range obs {
		pred := m.Predict(o.Flops, o.DiskBytes, o.NetBytes)
		if pred > 0 && o.Seconds > 0 {
			m.Residuals = append(m.Residuals, o.Seconds/pred)
		}
	}
	sort.Float64s(m.Residuals)
	return m, nil
}

// solve4 solves a 4x4 linear system by Gaussian elimination with partial
// pivoting. Singular designs (e.g. all-identical observations) error out.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, error) {
	const n = 4
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return [4]float64{}, fmt.Errorf("model: singular design matrix (column %d)", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [4]float64
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// MeanRelError evaluates a model against held-out observations, returning
// the mean of |pred - actual| / actual.
func MeanRelError(m *TaskModel, obs []Obs) float64 {
	if len(obs) == 0 {
		return 0
	}
	var s float64
	for _, o := range obs {
		pred := m.Predict(o.Flops, o.DiskBytes, o.NetBytes)
		s += math.Abs(pred-o.Seconds) / o.Seconds
	}
	return s / float64(len(obs))
}
