package model

import (
	"math"
	"math/rand"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/linalg"
	"cumulon/internal/linalg/tune"
)

// synthObs generates observations from known coefficients plus noise.
func synthObs(n int, b0, bf, bd, bn, noise float64, seed int64) []Obs {
	rng := rand.New(rand.NewSource(seed))
	obs := make([]Obs, n)
	for i := range obs {
		fl := int64(rng.Float64() * 5e9)
		db := int64(rng.Float64() * 4e8)
		nb := int64(rng.Float64() * 2e8)
		t := b0 + bf*float64(fl) + bd*float64(db) + bn*float64(nb)
		t *= 1 + noise*(rng.Float64()-0.5)
		obs[i] = Obs{Flops: fl, DiskBytes: db, NetBytes: nb, Seconds: t}
	}
	return obs
}

func TestFitRecoversCoefficients(t *testing.T) {
	b0, bf, bd, bn := 2.0, 1.25e-9, 1.0e-8, 2.5e-8
	obs := synthObs(500, b0, bf, bd, bn, 0, 1)
	m, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 0.02*want+1e-12 {
			t.Fatalf("%s: got %g want %g", name, got, want)
		}
	}
	check("B0", m.B0, b0)
	check("BFlops", m.BFlops, bf)
	check("BDisk", m.BDisk, bd)
	check("BNet", m.BNet, bn)
}

func TestFitWithNoiseStillAccurate(t *testing.T) {
	obs := synthObs(800, 2.0, 1.25e-9, 1.0e-8, 2.5e-8, 0.2, 2)
	m, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	holdout := synthObs(200, 2.0, 1.25e-9, 1.0e-8, 2.5e-8, 0.2, 3)
	if mre := MeanRelError(m, holdout); mre > 0.10 {
		t.Fatalf("holdout mean relative error %.3f too high", mre)
	}
}

func TestFitRejectsTooFewObs(t *testing.T) {
	if _, err := Fit(synthObs(3, 1, 1e-9, 1e-8, 1e-8, 0, 4)); err == nil {
		t.Fatal("want error for <4 observations")
	}
}

func TestFitRejectsSingularDesign(t *testing.T) {
	obs := make([]Obs, 10)
	for i := range obs {
		obs[i] = Obs{Flops: 1000, DiskBytes: 1000, NetBytes: 1000, Seconds: 5}
	}
	if _, err := Fit(obs); err == nil {
		t.Fatal("want singularity error")
	}
}

func TestPredictClampsBelowIntercept(t *testing.T) {
	m := &TaskModel{B0: 2, BFlops: 1e-9, BDisk: 1e-8, BNet: 1e-8}
	if got := m.Predict(0, 0, 0); got != 2 {
		t.Fatalf("zero-work prediction: %v", got)
	}
}

func TestCalibrateProducesAccurateModel(t *testing.T) {
	mt, err := cloud.TypeByName("c1.medium")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Calibrate(mt, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.N < 50 {
		t.Fatalf("too few calibration observations: %d", res.Model.N)
	}
	// The model should fit its own calibration data within the straggler
	// noise level.
	if mre := MeanRelError(res.Model, res.Obs); mre > 0.15 {
		t.Fatalf("calibration mean relative error %.3f too high (%s)", mre, res.Model)
	}
	// Physical plausibility: flop rate within 3x of the machine's nominal.
	nominal := 1 / (mt.FlopsPerSec() / 2) // per-slot (2 slots on 2 cores)
	if res.Model.BFlops <= 0 {
		t.Fatal("flop coefficient must be positive")
	}
	ratio := res.Model.BFlops / nominal
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("fitted flop rate implausible: ratio %v (%s)", ratio, res.Model)
	}
}

// TestCalibrateWithProfileScalesFlops: an autotuner profile reporting a
// 2x kernel speedup should roughly halve the fitted flops coefficient
// (the machine computes twice as fast; I/O terms are untouched), and the
// speedup must clamp to the machine's core count.
func TestCalibrateWithProfileScalesFlops(t *testing.T) {
	mt, err := cloud.TypeByName("c1.medium") // 2 cores
	if err != nil {
		t.Fatal(err)
	}
	base, err := Calibrate(mt, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	prof := &tune.Profile{
		Version:  tune.ProfileVersion,
		Best:     tune.Point{Shape: linalg.BlockDefaults(), Workers: 2, MFlops: 200},
		Baseline: tune.Point{Shape: linalg.BlockDefaults(), Workers: 1, MFlops: 100},
		Points:   []tune.Point{{}},
	}
	tuned, err := CalibrateWithProfile(mt, 2, 42, prof)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.KernelSpeedup != 2 {
		t.Fatalf("KernelSpeedup = %v, want 2", tuned.KernelSpeedup)
	}
	if base.KernelSpeedup != 1 {
		t.Fatalf("profile-less KernelSpeedup = %v, want 1", base.KernelSpeedup)
	}
	ratio := tuned.Model.BFlops / base.Model.BFlops
	if ratio < 0.4 || ratio > 0.65 {
		t.Fatalf("BFlops ratio tuned/base = %v, want ~0.5 (base %v, tuned %v)",
			ratio, base.Model.BFlops, tuned.Model.BFlops)
	}
	// A profile claiming more speedup than the machine has cores clamps.
	prof.Best.MFlops = 1600 // 16x claim on a 2-core type
	clamped, err := CalibrateWithProfile(mt, 2, 42, prof)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.KernelSpeedup != 2 {
		t.Fatalf("KernelSpeedup = %v, want clamp to 2 cores", clamped.KernelSpeedup)
	}
}

func TestCalibratedModelsOrderMachines(t *testing.T) {
	small, _ := cloud.TypeByName("m1.small")
	big, _ := cloud.TypeByName("c1.xlarge")
	rs, err := Calibrate(small, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Calibrate(big, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fl, db, nb := int64(5e9), int64(2e8), int64(1e8)
	if rb.Model.Predict(fl, db, nb) >= rs.Model.Predict(fl, db, nb) {
		t.Fatalf("c1.xlarge predicted slower than m1.small: %v vs %v",
			rb.Model.Predict(fl, db, nb), rs.Model.Predict(fl, db, nb))
	}
}

func TestResidualDistribution(t *testing.T) {
	obs := synthObs(400, 2.0, 1.25e-9, 1.0e-8, 2.5e-8, 0.3, 6)
	m, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Residuals) != len(obs) {
		t.Fatalf("residual count: %d", len(m.Residuals))
	}
	// Sorted, centered near 1.
	for i := 1; i < len(m.Residuals); i++ {
		if m.Residuals[i] < m.Residuals[i-1] {
			t.Fatal("residuals not sorted")
		}
	}
	med := m.ResidualQuantile(0.5)
	if med < 0.8 || med > 1.2 {
		t.Fatalf("median residual %v far from 1", med)
	}
	if m.ResidualQuantile(0.95) <= m.ResidualQuantile(0.05) {
		t.Fatal("quantiles not ordered")
	}
	// Sampling covers the support deterministically from the variate.
	if m.SampleResidual(0) != m.Residuals[0] {
		t.Fatal("u=0 should give the smallest residual")
	}
	if m.SampleResidual(0.999999) != m.Residuals[len(m.Residuals)-1] {
		t.Fatal("u->1 should give the largest residual")
	}
	// Empty-residual models degrade to the point estimate.
	empty := &TaskModel{B0: 1}
	if empty.SampleResidual(0.5) != 1 || empty.ResidualQuantile(0.9) != 1 {
		t.Fatal("empty residuals should return 1")
	}
}

func TestModelString(t *testing.T) {
	m := &TaskModel{B0: 1.5, BFlops: 1e-9, BDisk: 1e-8, BNet: 2e-8, N: 10}
	if s := m.String(); s == "" {
		t.Fatal("empty string")
	}
}
