package model

import (
	"fmt"

	"cumulon/internal/cloud"
	"cumulon/internal/exec"
	"cumulon/internal/lang"
	"cumulon/internal/linalg/tune"
	"cumulon/internal/plan"
)

// benchmarkPrograms is the micro-benchmark suite: a spread of shapes and
// operator mixes chosen to decorrelate the model features (CPU-heavy
// products, I/O-heavy copies, mixed element-wise pipelines), mirroring the
// paper's one-time per-machine-type benchmarking phase.
var benchmarkPrograms = []string{
	// CPU-dominated: square products of growing size.
	`
input A 4096 4096
input B 4096 4096
C = A * B
output C
`,
	`
input A 8192 2048
input B 2048 4096
C = A * B
output C
`,
	// Skinny products (small output, tall inner dimension).
	`
input W 65536 256
C = W' * W
output C
`,
	// I/O-dominated: pure copies and element-wise maps.
	`
input A 16384 8192
B = A
output B
`,
	`
input A 16384 4096
input B 16384 4096
C = A .* B + A
output C
`,
	// Mixed: fused epilogue over a product.
	`
input A 4096 4096
input B 4096 4096
input C 4096 4096
D = C .* (A * B)
output D
`,
}

// CalibrationResult bundles the fitted model with its raw observations so
// callers can report residuals (experiment E7).
type CalibrationResult struct {
	Machine cloud.MachineType
	Slots   int
	Model   *TaskModel
	Obs     []Obs
	// KernelSpeedup is the autotuner speedup folded into the machine's
	// effective throughput before calibration (1 when no profile was
	// supplied).
	KernelSpeedup float64
}

// Calibrate runs the micro-benchmark suite on a small instrumented
// cluster of the given machine type and slot configuration and fits the
// task-time model. Benchmarks run in virtual mode: durations follow the
// machine's hardware profile with straggler noise, which is exactly what
// the fitted model must capture.
func Calibrate(mt cloud.MachineType, slots int, seed int64) (*CalibrationResult, error) {
	return CalibrateWithProfile(mt, slots, seed, nil)
}

// CalibrateWithProfile is Calibrate with an optional kernel autotuner
// profile (internal/linalg/tune). The profile's measured parallel
// speedup scales the machine's effective compute throughput (ECU)
// before the benchmark suite runs, so the fitted flops coefficient —
// and every optimizer estimate derived from it — reflects what the
// tuned kernel tier actually delivers rather than the catalog's
// sequential rating. The speedup is clamped to [1, cores]: a profile
// cannot make a machine slower, and no fan-out beats its core count.
func CalibrateWithProfile(mt cloud.MachineType, slots int, seed int64, prof *tune.Profile) (*CalibrationResult, error) {
	speedup := 1.0
	if prof != nil {
		speedup = prof.Speedup()
		if limit := float64(mt.Cores); limit >= 1 && speedup > limit {
			speedup = limit
		}
		if speedup < 1 {
			speedup = 1
		}
		mt.ECU *= speedup
	}
	cluster, err := cloud.NewCluster(mt, 4, slots)
	if err != nil {
		return nil, err
	}
	var obs []Obs
	repl := 3
	if repl > cluster.Nodes {
		repl = cluster.Nodes
	}
	for i, src := range benchmarkPrograms {
		prog, err := lang.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("model: benchmark %d: %w", i, err)
		}
		pl, err := plan.Compile(prog, plan.Config{TileSize: 1024})
		if err != nil {
			return nil, fmt.Errorf("model: benchmark %d: %w", i, err)
		}
		// Several splits per benchmark vary per-task work, enriching the
		// regression design.
		for _, tasks := range []int{4, 16, 64} {
			e, err := exec.New(exec.Config{
				Cluster:     cluster,
				Replication: repl,
				Seed:        seed + int64(i*100+tasks),
				NoiseFactor: 0.08,
			})
			if err != nil {
				return nil, err
			}
			pl.AutoSplit(tasks)
			for _, in := range pl.Inputs {
				if err := e.LoadVirtual(in); err != nil {
					return nil, err
				}
			}
			m, err := e.Run(pl)
			if err != nil {
				return nil, fmt.Errorf("model: benchmark %d: %w", i, err)
			}
			obs = append(obs, ObsFromTasks(m.Tasks, repl)...)
		}
	}
	tm, err := Fit(obs)
	if err != nil {
		return nil, err
	}
	return &CalibrationResult{Machine: mt, Slots: slots, Model: tm, Obs: obs, KernelSpeedup: speedup}, nil
}

// ObsFromTasks converts engine task records into model observations,
// folding write traffic into the disk and network features the same way
// the engine's duration function does.
func ObsFromTasks(tasks []exec.TaskRecord, replication int) []Obs {
	out := make([]Obs, 0, len(tasks))
	for _, t := range tasks {
		out = append(out, Obs{
			Flops:     t.Flops,
			DiskBytes: t.LocalReadBytes + t.WriteBytes,
			NetBytes:  t.RackReadBytes + t.RemoteReadBytes + t.WriteBytes*int64(replication-1),
			Seconds:   t.Seconds,
		})
	}
	return out
}
