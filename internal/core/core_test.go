package core_test

import (
	"cumulon/internal/core"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/opt"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

func cluster(t *testing.T, name string, nodes, slots int) cloud.Cluster {
	t.Helper()
	mt, err := cloud.TypeByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestSessionRunMaterialized(t *testing.T) {
	s := core.NewSession(1)
	wl := workloads.GNMF(24, 18, 3, 1, 0.4)
	data := wl.RandomInputs(3)
	res, err := s.Run(wl.Prog, plan.Config{TileSize: 4, Densities: wl.Densities},
		core.ExecOptions{Cluster: cluster(t, "m1.large", 4, 2), Inputs: data})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lang.Interpret(wl.Prog, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"W", "H"} {
		if !res.Outputs[name].AlmostEqual(want[name], 1e-8) {
			t.Fatalf("%s mismatch (maxdiff %g)", name, res.Outputs[name].MaxAbsDiff(want[name]))
		}
	}
	if res.CostDollars <= 0 {
		t.Fatalf("cost: %v", res.CostDollars)
	}
}

func TestSessionRunVirtual(t *testing.T) {
	s := core.NewSession(1)
	wl := workloads.RSVD(32768, 16384, 128, 1)
	res, err := s.Run(wl.Prog, plan.Config{TileSize: 2048},
		core.ExecOptions{Cluster: cluster(t, "c1.medium", 8, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs != nil {
		t.Fatal("virtual run should not fetch outputs")
	}
	if res.Metrics.TotalSeconds <= 0 || len(res.Metrics.Jobs) == 0 {
		t.Fatalf("metrics: %+v", res.Metrics)
	}
}

func TestSessionCompileString(t *testing.T) {
	s := core.NewSession(1)
	pl, err := s.CompileString("input A 8 8\nB = A .* A\noutput B", plan.Config{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Jobs) != 1 {
		t.Fatalf("jobs: %d", len(pl.Jobs))
	}
	if _, err := s.CompileString("input A x", plan.Config{TileSize: 4}); err == nil {
		t.Fatal("want parse error")
	}
}

func TestSessionOptimizeAndRunDeployment(t *testing.T) {
	s := core.NewSession(1)
	wl := workloads.MatMul(16384, 16384, 16384)
	cfg := plan.Config{TileSize: 2048}
	res, err := s.Optimizer().MinCostForDeadline(opt.Request{
		Program:     wl.Prog,
		PlanCfg:     cfg,
		DeadlineSec: 8 * 3600,
		Machines:    []cloud.MachineType{mustType(t, "m1.large"), mustType(t, "c1.xlarge")},
		MaxNodes:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("deadline not met: %v", res.Best)
	}
	run, err := s.RunDeployment(wl.Prog, cfg, res.Best, core.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The engine's actual time should be near the optimizer's prediction.
	rel := run.Metrics.TotalSeconds / res.Best.PredSeconds
	if rel < 0.6 || rel > 1.6 {
		t.Fatalf("actual %.0fs far from predicted %.0fs", run.Metrics.TotalSeconds, res.Best.PredSeconds)
	}
}

func TestSessionMissingInput(t *testing.T) {
	s := core.NewSession(1)
	wl := workloads.MatMul(8, 8, 8)
	_, err := s.Run(wl.Prog, plan.Config{TileSize: 4},
		core.ExecOptions{Cluster: cluster(t, "m1.small", 2, 1),
			Inputs: map[string]*linalg.Dense{"A": linalg.NewDense(8, 8)}})
	if err == nil {
		t.Fatal("want missing-input error")
	}
}

func TestRunDeploymentNil(t *testing.T) {
	s := core.NewSession(1)
	wl := workloads.MatMul(8, 8, 8)
	if _, err := s.RunDeployment(wl.Prog, plan.Config{TileSize: 4}, nil, core.ExecOptions{}); err == nil {
		t.Fatal("want nil-deployment error")
	}
}

func mustType(t *testing.T, name string) cloud.MachineType {
	t.Helper()
	mt, err := cloud.TypeByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

func TestSessionCompileAndOptimizeBudget(t *testing.T) {
	s := core.NewSession(1)
	wl := workloads.MatMul(16384, 16384, 16384)
	cfg := plan.Config{TileSize: 2048}
	pl, err := s.Compile(wl.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Jobs) != 1 {
		t.Fatalf("jobs: %d", len(pl.Jobs))
	}
	res, err := s.OptimizeBudget(wl.Prog, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Best.Cost > 50 {
		t.Fatalf("budget result: %+v", res.Best)
	}
}
