package core_test

import (
	"fmt"
	"log"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
)

// Example demonstrates the whole API surface: write a program, compile
// it, run it on a simulated cluster with real data, and read the output.
func Example() {
	sess := core.NewSession(7)
	prog, err := sess.CompileString(`
program demo
input A 6 4
input B 4 3
C = A * B
output C
`, plan.Config{TileSize: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d job(s)\n", len(prog.Jobs))

	mt, _ := cloud.TypeByName("m1.large")
	cl, _ := cloud.NewCluster(mt, 2, 2)
	a := linalg.ConstDense(6, 4, 1)
	b := linalg.ConstDense(4, 3, 2)
	res, err := sess.Run(prog.Program, plan.Config{TileSize: 2}, core.ExecOptions{
		Cluster: cl,
		Inputs:  map[string]*linalg.Dense{"A": a, "B": b},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Every entry of C is 4 * (1*2) = 8.
	fmt.Printf("C[0,0] = %g\n", res.Outputs["C"].At(0, 0))
	// Output:
	// compiled 1 job(s)
	// C[0,0] = 8
}

// ExampleSession_OptimizeDeadline shows deployment optimization: the
// session picks machine type, cluster size, slots and splits for a
// deadline, and the chosen deployment can be executed as-is.
func ExampleSession_OptimizeDeadline() {
	sess := core.NewSession(7)
	prog, err := sess.CompileString(`
input A 16384 16384
input B 16384 16384
C = A * B
output C
`, plan.Config{TileSize: 2048})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.OptimizeDeadline(prog.Program, plan.Config{TileSize: 2048}, 8*3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("met deadline: %v\n", res.Met)
	fmt.Printf("candidates evaluated: %v\n", len(res.Candidates) > 100)
	// Output:
	// met deadline: true
	// candidates evaluated: true
}
