// Package core is Cumulon's front door: a Session ties the language,
// planner, optimizer, engine, and billing together behind a small API.
//
// Typical use:
//
//	s := core.NewSession(42)
//	wl := workloads.GNMF(100000, 50000, 10, 2, 0.01)
//	res, _ := s.OptimizeDeadline(wl.Prog, planCfg, 3600) // one hour
//	out, _ := s.RunDeployment(wl.Prog, planCfg, res.Best, core.ExecOptions{})
//	fmt.Println(out.Metrics.TotalSeconds, out.CostDollars)
//
// Programs execute either materialized (real matrices, verifiable
// results) or virtual (paper-scale timing studies); see exec.Config.
package core

import (
	"fmt"

	"cumulon/internal/chaos"
	"cumulon/internal/ckpt"
	"cumulon/internal/cloud"
	"cumulon/internal/exec"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/obs"
	"cumulon/internal/opt"
	"cumulon/internal/plan"
)

// Session is the top-level handle. It caches calibrated cost models
// across optimizer calls.
//
// A Session is safe for concurrent use: Compile/CompileString are
// stateless, every Run/RunDeployment/ExecutePlan builds its own engine
// instance, and the only cross-call state — the optimizer's calibrated
// model cache — is mutex-guarded (see opt.Optimizer). The job server
// shares one Session across all tenants' worker goroutines; callers
// that want isolated model caches instead can simply create one Session
// per job (calibration is seeded, so sharing changes nothing but speed).
type Session struct {
	seed int64
	optz *opt.Optimizer
}

// NewSession creates a session whose randomness (placement, stragglers,
// calibration) derives deterministically from seed.
func NewSession(seed int64) *Session {
	return &Session{seed: seed, optz: opt.New(seed)}
}

// Compile lowers a program to a physical plan.
func (s *Session) Compile(p *lang.Program, cfg plan.Config) (*plan.Plan, error) {
	return plan.Compile(p, cfg)
}

// CompileString parses and lowers a program in the textual syntax.
func (s *Session) CompileString(src string, cfg plan.Config) (*plan.Plan, error) {
	p, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return plan.Compile(p, cfg)
}

// OptimizeDeadline finds the cheapest deployment meeting the deadline.
func (s *Session) OptimizeDeadline(p *lang.Program, cfg plan.Config, deadlineSec float64) (*opt.Result, error) {
	return s.optz.MinCostForDeadline(opt.Request{
		Program: p, PlanCfg: cfg, DeadlineSec: deadlineSec,
	})
}

// OptimizeBudget finds the fastest deployment within the budget.
func (s *Session) OptimizeBudget(p *lang.Program, cfg plan.Config, budgetDollars float64) (*opt.Result, error) {
	return s.optz.MinTimeForBudget(opt.Request{
		Program: p, PlanCfg: cfg, BudgetDollars: budgetDollars,
	})
}

// Optimizer exposes the underlying optimizer for custom requests.
func (s *Session) Optimizer() *opt.Optimizer { return s.optz }

// ExecOptions controls one execution.
type ExecOptions struct {
	// Cluster to run on; ignored when a Deployment is supplied to
	// RunDeployment. Required for Run.
	Cluster cloud.Cluster
	// Inputs supplies real input matrices; when set, execution is
	// materialized and outputs are fetched. When nil, execution is
	// virtual: inputs are registered by size only and outputs are nil.
	Inputs map[string]*linalg.Dense
	// Replication is the DFS replication factor (default 3).
	Replication int
	// NoiseFactor scales straggler noise (default 0.08).
	NoiseFactor float64
	// Seed overrides the session seed for this run when nonzero.
	Seed int64
	// Workers sets the compute parallelism for materialized runs (see
	// exec.Config.Workers). Virtual time and results are unaffected.
	Workers int
	// KernelParallelism bounds the worker fan-out inside a single blocked
	// GEMM (see exec.Config.KernelParallelism). 0 keeps the process-wide
	// default; results are bit-identical at any value.
	KernelParallelism int
	// Recorder receives the run's observability spans (see obs.Recorder);
	// nil disables recording at zero cost.
	Recorder obs.Recorder
	// Chaos injects a deterministic fault schedule — node crashes,
	// transient task and read faults — into the run (see chaos.Schedule).
	// Recovery changes the timeline, never the results.
	Chaos *chaos.Schedule
	// MaxTaskRetries bounds per-task retry attempts under faults
	// (default 3; negative means no retries).
	MaxTaskRetries int
	// CheckpointEvery, when positive, checkpoints the program at every
	// Nth iteration boundary (see exec.Config.CheckpointEvery).
	CheckpointEvery int
	// CheckpointStore persists program checkpoints across runs (see
	// package ckpt). Required for Resume.
	CheckpointStore ckpt.Store
	// Resume fast-forwards past the jobs covered by the newest valid
	// checkpoint of this exact program and configuration.
	Resume bool
}

// ExecResult is one finished execution.
type ExecResult struct {
	Plan    *plan.Plan
	Metrics *exec.RunMetrics
	// Outputs holds the fetched output matrices for materialized runs.
	Outputs map[string]*linalg.Dense
	// CostDollars is the billed price of the run on its cluster.
	CostDollars float64
}

// Run compiles and executes the program on opts.Cluster with heuristic
// (AutoSplit) physical parameters.
func (s *Session) Run(p *lang.Program, cfg plan.Config, opts ExecOptions) (*ExecResult, error) {
	pl, err := plan.Compile(p, cfg)
	if err != nil {
		return nil, err
	}
	pl.AutoSplit(opts.Cluster.TotalSlots())
	return s.execute(pl, opts.Cluster, opts)
}

// RunDeployment compiles and executes the program exactly as the
// optimizer's chosen deployment prescribes (its cluster and splits).
func (s *Session) RunDeployment(p *lang.Program, cfg plan.Config, d *opt.Deployment, opts ExecOptions) (*ExecResult, error) {
	if d == nil {
		return nil, fmt.Errorf("core: nil deployment")
	}
	if d.TileSize != 0 {
		// The optimizer may have swept the tile size; execute what it chose.
		cfg.TileSize = d.TileSize
	}
	pl, err := plan.Compile(p, cfg)
	if err != nil {
		return nil, err
	}
	if err := d.Apply(pl); err != nil {
		return nil, err
	}
	return s.execute(pl, d.Cluster, opts)
}

// ExecutePlan executes an already compiled (and already split) plan on
// the given cluster. It is the execution half of Run for callers that
// manage compilation themselves — the job server's plan cache compiles
// once, Clones the template per job, applies splits, and executes the
// clone here. The plan is treated as read-only.
func (s *Session) ExecutePlan(pl *plan.Plan, cluster cloud.Cluster, opts ExecOptions) (*ExecResult, error) {
	if pl == nil {
		return nil, fmt.Errorf("core: nil plan")
	}
	return s.execute(pl, cluster, opts)
}

// RandomInputs generates deterministic positive random input matrices
// for every input the program declares, honoring cfg.Densities for
// sparse inputs. Both cmd/cumulon's -materialize mode and the job
// server use it, so a program submitted to the server with the same
// seed computes bit-identical outputs to a CLI run.
func RandomInputs(prog *lang.Program, cfg plan.Config, seed int64) map[string]*linalg.Dense {
	data := map[string]*linalg.Dense{}
	for i, in := range prog.Inputs {
		s := seed + int64(i)*7
		if in.Sparse {
			d := cfg.Densities[in.Name]
			if d <= 0 || d > 1 {
				d = 0.05
			}
			data[in.Name] = linalg.RandomSparseDense(in.Rows, in.Cols, d, s)
		} else {
			data[in.Name] = linalg.RandomDense(in.Rows, in.Cols, s).
				Map(func(x float64) float64 { return x + 0.1 })
		}
	}
	return data
}

func (s *Session) execute(pl *plan.Plan, cluster cloud.Cluster, opts ExecOptions) (*ExecResult, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = s.seed
	}
	noise := opts.NoiseFactor
	if noise == 0 {
		noise = 0.08
	}
	materialize := opts.Inputs != nil
	eng, err := exec.New(exec.Config{
		Cluster:           cluster,
		Replication:       opts.Replication,
		Materialize:       materialize,
		Seed:              seed,
		NoiseFactor:       noise,
		Workers:           opts.Workers,
		KernelParallelism: opts.KernelParallelism,
		Recorder:          opts.Recorder,
		Chaos:             opts.Chaos,
		MaxTaskRetries:    opts.MaxTaskRetries,
		CheckpointEvery:   opts.CheckpointEvery,
		CheckpointStore:   opts.CheckpointStore,
		Resume:            opts.Resume,
	})
	if err != nil {
		return nil, err
	}
	for _, in := range pl.Inputs {
		if materialize {
			d, ok := opts.Inputs[in.Name]
			if !ok {
				return nil, fmt.Errorf("core: missing input %s", in.Name)
			}
			if err := eng.LoadDense(in, d); err != nil {
				return nil, err
			}
		} else if err := eng.LoadVirtual(in); err != nil {
			return nil, err
		}
	}
	m, err := eng.Run(pl)
	if err != nil {
		return nil, err
	}
	res := &ExecResult{
		Plan:        pl,
		Metrics:     m,
		CostDollars: cloud.Cost(cluster.Type, cluster.Nodes, m.TotalSeconds),
	}
	if materialize {
		res.Outputs = map[string]*linalg.Dense{}
		for name, meta := range pl.Outputs {
			d, err := eng.FetchOutput(meta)
			if err != nil {
				return nil, err
			}
			res.Outputs[name] = d
		}
	}
	return res, nil
}
