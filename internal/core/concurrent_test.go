package core_test

import (
	"sync"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

// TestSessionConcurrentUse drives one shared Session from many
// goroutines at once — Run (materialized), Compile and a deadline
// optimization — and checks every run produces bit-identical outputs.
// Run under -race in CI; any unguarded shared state in the session or
// optimizer shows up here.
func TestSessionConcurrentUse(t *testing.T) {
	wl := workloads.GNMF(24, 18, 3, 1, 0.4)
	cfg := plan.Config{TileSize: 4, Densities: map[string]float64{"V": 0.4}}
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		t.Fatal(err)
	}

	const seed = 11
	sess := core.NewSession(seed)
	inputs := core.RandomInputs(wl.Prog, cfg, seed)

	const n = 8
	var wg sync.WaitGroup
	sums := make([]float64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 3:
				// Optimizer path: exercises the shared model cache.
				_, errs[i] = sess.OptimizeDeadline(wl.Prog, cfg, 24*3600)
			case 2:
				// Compile-only path.
				_, errs[i] = sess.Compile(wl.Prog, cfg)
			default:
				// Full materialized run; record a result fingerprint.
				res, err := sess.Run(wl.Prog, cfg, core.ExecOptions{
					Cluster: cluster, Seed: seed, Inputs: inputs,
				})
				if err != nil {
					errs[i] = err
					return
				}
				sums[i] = res.Outputs["W"].FrobeniusNorm() + res.Outputs["H"].FrobeniusNorm()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	var want float64
	for i, s := range sums {
		if s == 0 {
			continue // non-Run goroutine
		}
		if want == 0 {
			want = s
			continue
		}
		if s != want {
			t.Fatalf("goroutine %d produced a different result: %v vs %v", i, s, want)
		}
	}
	if want == 0 {
		t.Fatal("no Run goroutine recorded a result")
	}
}

// TestSessionConcurrentDistinctPrograms: concurrent runs of different
// programs on one session must not cross-contaminate results.
func TestSessionConcurrentDistinctPrograms(t *testing.T) {
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		wl  workloads.Workload
		cfg plan.Config
	}
	jobs := []job{
		{workloads.GNMF(24, 18, 3, 1, 0.4), plan.Config{TileSize: 4, Densities: map[string]float64{"V": 0.4}}},
		{workloads.MatMul(16, 12, 16), plan.Config{TileSize: 4}},
		{workloads.Regression(32, 8, 1, 0.01), plan.Config{TileSize: 8}},
	}

	// Sequential baseline fingerprints.
	base := make([]float64, len(jobs))
	for i, jb := range jobs {
		sess := core.NewSession(7)
		res, err := sess.Run(jb.wl.Prog, jb.cfg, core.ExecOptions{
			Cluster: cluster, Seed: 7, Inputs: core.RandomInputs(jb.wl.Prog, jb.cfg, 7),
		})
		if err != nil {
			t.Fatalf("baseline %s: %v", jb.wl.Name, err)
		}
		for _, d := range res.Outputs {
			base[i] += d.FrobeniusNorm()
		}
	}

	// The same three programs, concurrently, on one shared session.
	sess := core.NewSession(7)
	const rounds = 4
	var wg sync.WaitGroup
	errCh := make(chan error, len(jobs)*rounds)
	for r := 0; r < rounds; r++ {
		for i, jb := range jobs {
			wg.Add(1)
			go func(i int, jb job) {
				defer wg.Done()
				res, err := sess.Run(jb.wl.Prog, jb.cfg, core.ExecOptions{
					Cluster: cluster, Seed: 7, Inputs: core.RandomInputs(jb.wl.Prog, jb.cfg, 7),
				})
				if err != nil {
					errCh <- err
					return
				}
				sum := 0.0
				for _, d := range res.Outputs {
					sum += d.FrobeniusNorm()
				}
				if sum != base[i] {
					errCh <- &mismatchError{name: jb.wl.Name, got: sum, want: base[i]}
				}
			}(i, jb)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type mismatchError struct {
	name      string
	got, want float64
}

func (e *mismatchError) Error() string {
	return e.name + ": concurrent run diverged from sequential baseline"
}
