// Package lang defines Cumulon's input language: linear-algebra programs
// over matrices. A program is a list of input declarations followed by
// assignments whose right-hand sides are matrix expressions; selected
// variables are marked as outputs. Programs are what users hand to the
// system (either via the Go API or the small textual front end in this
// package); the planner lowers them to DAGs of physical jobs.
package lang

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a matrix-valued expression node.
type Expr interface {
	// String renders the expression in the textual front-end syntax.
	String() string
	exprNode()
}

// Var references a previously defined matrix (input or assigned).
type Var struct{ Name string }

// MatMul is the matrix product L × R.
type MatMul struct{ L, R Expr }

// Add is element-wise addition.
type Add struct{ L, R Expr }

// Sub is element-wise subtraction.
type Sub struct{ L, R Expr }

// ElemMul is the Hadamard (element-wise) product, written ".*".
type ElemMul struct{ L, R Expr }

// ElemDiv is element-wise division, written "./".
type ElemDiv struct{ L, R Expr }

// Scale multiplies every element by the constant S.
type Scale struct {
	S float64
	X Expr
}

// Transpose is Xᵀ, written "X'".
type Transpose struct{ X Expr }

// Apply applies a named scalar function element-wise. The function set is
// closed (see Funcs) so plans remain serializable and cost-predictable.
type Apply struct {
	Fn string
	X  Expr
}

// Mask restricts X to the sparsity pattern of P, written "mask(P, X)":
// the result has P's (sparse) pattern, with the value of X at each stored
// position and structural zero elsewhere. Its purpose is the masked
// matrix multiply mask(V, W*H) — computing a product only at observed
// entries (the residual primitive of sparse matrix factorization) at cost
// proportional to nnz(V) rather than to the full dense product.
type Mask struct {
	P Expr // the pattern: a (possibly transposed) sparse matrix reference
	X Expr
}

func (Var) exprNode()       {}
func (MatMul) exprNode()    {}
func (Add) exprNode()       {}
func (Sub) exprNode()       {}
func (ElemMul) exprNode()   {}
func (ElemDiv) exprNode()   {}
func (Scale) exprNode()     {}
func (Transpose) exprNode() {}
func (Apply) exprNode()     {}
func (Mask) exprNode()      {}

func (e Var) String() string    { return e.Name }
func (e MatMul) String() string { return fmt.Sprintf("(%s * %s)", e.L, e.R) }
func (e Add) String() string    { return fmt.Sprintf("(%s + %s)", e.L, e.R) }
func (e Sub) String() string    { return fmt.Sprintf("(%s - %s)", e.L, e.R) }
func (e ElemMul) String() string {
	return fmt.Sprintf("(%s .* %s)", e.L, e.R)
}
func (e ElemDiv) String() string {
	return fmt.Sprintf("(%s ./ %s)", e.L, e.R)
}
func (e Scale) String() string     { return fmt.Sprintf("(%g * %s)", e.S, e.X) }
func (e Transpose) String() string { return fmt.Sprintf("%s'", e.X) }
func (e Apply) String() string     { return fmt.Sprintf("%s(%s)", e.Fn, e.X) }
func (e Mask) String() string      { return fmt.Sprintf("mask(%s, %s)", e.P, e.X) }

// Funcs is the closed set of element-wise scalar functions.
var Funcs = map[string]func(float64) float64{
	"exp":   math.Exp,
	"log":   math.Log,
	"sqrt":  math.Sqrt,
	"abs":   math.Abs,
	"recip": func(x float64) float64 { return 1 / x },
	"sq":    func(x float64) float64 { return x * x },
}

// FuncNames lists the closed function set in a fixed order, so compiled
// tile programs can reference a function by a stable small integer
// instead of a map lookup per element.
var FuncNames = []string{"abs", "exp", "log", "recip", "sq", "sqrt"}

// FuncTable holds the functions in FuncNames order.
var FuncTable = func() []func(float64) float64 {
	t := make([]func(float64) float64, len(FuncNames))
	for i, n := range FuncNames {
		t[i] = Funcs[n]
	}
	return t
}()

// FuncIndex returns the FuncNames index of fn, or -1 when fn is not in
// the closed function set.
func FuncIndex(fn string) int {
	for i, n := range FuncNames {
		if n == fn {
			return i
		}
	}
	return -1
}

// Shape is the inferred type of an expression: dimensions plus whether the
// value is stored sparse.
type Shape struct {
	Rows, Cols int
	Sparse     bool
}

func (s Shape) String() string {
	k := "dense"
	if s.Sparse {
		k = "sparse"
	}
	return fmt.Sprintf("%dx%d %s", s.Rows, s.Cols, k)
}

// Input declares a program input matrix.
type Input struct {
	Name   string
	Rows   int
	Cols   int
	Sparse bool
}

// Assign binds the value of Expr to Name. Reassigning an existing name is
// allowed and creates a new version (needed for iterative programs).
type Assign struct {
	Name string
	Expr Expr
}

// Program is a complete Cumulon program.
type Program struct {
	Name    string
	Inputs  []Input
	Stmts   []Assign
	Outputs []string
	// Boundaries marks iteration boundaries for program-level
	// checkpointing: each entry b means "a checkpoint may be taken after
	// the first b statements" (0 <= b <= len(Stmts), strictly
	// increasing). The textual syntax writes a boundary as a bare
	// `checkpoint` line; workload builders append one per outer-loop
	// iteration. Boundaries are advisory — execution ignores them unless
	// checkpointing is enabled — so programs with and without markers
	// compute identical results.
	Boundaries []int
}

// BoundaryAt reports whether a checkpoint boundary sits after the first
// n statements.
func (p *Program) BoundaryAt(n int) bool {
	for _, b := range p.Boundaries {
		if b == n {
			return true
		}
	}
	return false
}

// Validate type-checks the program: every referenced variable must be
// defined before use, shapes must be compatible, function names known,
// and outputs defined. On success it returns the shape of every variable
// (for reassigned variables, the final shape; reassignment must preserve
// shape so iterative programs are well-formed).
func (p *Program) Validate() (map[string]Shape, error) {
	env := map[string]Shape{}
	for _, in := range p.Inputs {
		if in.Rows <= 0 || in.Cols <= 0 {
			return nil, fmt.Errorf("lang: input %s has invalid shape %dx%d", in.Name, in.Rows, in.Cols)
		}
		if _, ok := env[in.Name]; ok {
			return nil, fmt.Errorf("lang: duplicate input %s", in.Name)
		}
		env[in.Name] = Shape{Rows: in.Rows, Cols: in.Cols, Sparse: in.Sparse}
	}
	for i, st := range p.Stmts {
		sh, err := InferShape(st.Expr, env)
		if err != nil {
			return nil, fmt.Errorf("lang: statement %d (%s = %s): %w", i, st.Name, st.Expr, err)
		}
		if old, ok := env[st.Name]; ok && (old.Rows != sh.Rows || old.Cols != sh.Cols) {
			return nil, fmt.Errorf("lang: statement %d reassigns %s with shape %dx%d (was %dx%d)",
				i, st.Name, sh.Rows, sh.Cols, old.Rows, old.Cols)
		}
		env[st.Name] = sh
	}
	if len(p.Outputs) == 0 {
		return nil, fmt.Errorf("lang: program %q has no outputs", p.Name)
	}
	prev := -1
	for _, b := range p.Boundaries {
		if b < 0 || b > len(p.Stmts) {
			return nil, fmt.Errorf("lang: checkpoint boundary %d out of range (program has %d statements)", b, len(p.Stmts))
		}
		if b <= prev {
			return nil, fmt.Errorf("lang: checkpoint boundaries must be strictly increasing (got %d after %d)", b, prev)
		}
		prev = b
	}
	for _, o := range p.Outputs {
		if _, ok := env[o]; !ok {
			return nil, fmt.Errorf("lang: output %s is never defined", o)
		}
	}
	return env, nil
}

// InferShape computes the shape of e in environment env, reporting the
// first incompatibility found.
func InferShape(e Expr, env map[string]Shape) (Shape, error) {
	switch x := e.(type) {
	case Var:
		sh, ok := env[x.Name]
		if !ok {
			return Shape{}, fmt.Errorf("undefined variable %s", x.Name)
		}
		return sh, nil
	case MatMul:
		l, err := InferShape(x.L, env)
		if err != nil {
			return Shape{}, err
		}
		r, err := InferShape(x.R, env)
		if err != nil {
			return Shape{}, err
		}
		if l.Cols != r.Rows {
			return Shape{}, fmt.Errorf("matmul inner dimensions %d vs %d", l.Cols, r.Rows)
		}
		return Shape{Rows: l.Rows, Cols: r.Cols}, nil
	case Add, Sub, ElemMul, ElemDiv:
		l, r := binaryOperands(e)
		ls, err := InferShape(l, env)
		if err != nil {
			return Shape{}, err
		}
		rs, err := InferShape(r, env)
		if err != nil {
			return Shape{}, err
		}
		if ls.Rows != rs.Rows || ls.Cols != rs.Cols {
			return Shape{}, fmt.Errorf("element-wise operands %dx%d vs %dx%d", ls.Rows, ls.Cols, rs.Rows, rs.Cols)
		}
		return Shape{Rows: ls.Rows, Cols: ls.Cols}, nil
	case Scale:
		return InferShape(x.X, env)
	case Transpose:
		s, err := InferShape(x.X, env)
		if err != nil {
			return Shape{}, err
		}
		return Shape{Rows: s.Cols, Cols: s.Rows, Sparse: s.Sparse}, nil
	case Apply:
		if _, ok := Funcs[x.Fn]; !ok {
			return Shape{}, fmt.Errorf("unknown function %s", x.Fn)
		}
		return InferShape(x.X, env)
	case Mask:
		ps, err := InferShape(x.P, env)
		if err != nil {
			return Shape{}, err
		}
		if !ps.Sparse {
			return Shape{}, fmt.Errorf("mask pattern %s must be sparse", x.P)
		}
		xs, err := InferShape(x.X, env)
		if err != nil {
			return Shape{}, err
		}
		if ps.Rows != xs.Rows || ps.Cols != xs.Cols {
			return Shape{}, fmt.Errorf("mask pattern %dx%d vs value %dx%d", ps.Rows, ps.Cols, xs.Rows, xs.Cols)
		}
		return Shape{Rows: xs.Rows, Cols: xs.Cols, Sparse: true}, nil
	default:
		return Shape{}, fmt.Errorf("unknown expression node %T", e)
	}
}

func binaryOperands(e Expr) (l, r Expr) {
	switch x := e.(type) {
	case Add:
		return x.L, x.R
	case Sub:
		return x.L, x.R
	case ElemMul:
		return x.L, x.R
	case ElemDiv:
		return x.L, x.R
	}
	panic("lang: not a binary element-wise node")
}

// Walk visits e and all descendants in prefix order.
func Walk(e Expr, f func(Expr)) {
	f(e)
	switch x := e.(type) {
	case MatMul:
		Walk(x.L, f)
		Walk(x.R, f)
	case Add:
		Walk(x.L, f)
		Walk(x.R, f)
	case Sub:
		Walk(x.L, f)
		Walk(x.R, f)
	case ElemMul:
		Walk(x.L, f)
		Walk(x.R, f)
	case ElemDiv:
		Walk(x.L, f)
		Walk(x.R, f)
	case Scale:
		Walk(x.X, f)
	case Transpose:
		Walk(x.X, f)
	case Apply:
		Walk(x.X, f)
	case Mask:
		Walk(x.P, f)
		Walk(x.X, f)
	}
}

// FreeVars returns the distinct variable names referenced by e, in first
// appearance order.
func FreeVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	Walk(e, func(n Expr) {
		if v, ok := n.(Var); ok && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
	})
	return out
}

// String renders the whole program in the textual syntax accepted by Parse.
func (p *Program) String() string {
	var b strings.Builder
	for _, in := range p.Inputs {
		kind := ""
		if in.Sparse {
			kind = " sparse"
		}
		fmt.Fprintf(&b, "input %s %d %d%s\n", in.Name, in.Rows, in.Cols, kind)
	}
	for i, st := range p.Stmts {
		if p.BoundaryAt(i) {
			b.WriteString("checkpoint\n")
		}
		fmt.Fprintf(&b, "%s = %s\n", st.Name, st.Expr)
	}
	if p.BoundaryAt(len(p.Stmts)) {
		b.WriteString("checkpoint\n")
	}
	for _, o := range p.Outputs {
		fmt.Fprintf(&b, "output %s\n", o)
	}
	return b.String()
}
