package lang

import (
	"strings"
	"testing"

	"cumulon/internal/linalg"
)

const gnmfSrc = `
program gnmf
input V 40 30 sparse
input W 40 5
input H 5 30
# one multiplicative-update iteration
WV = W' * V
WWH = (W' * W) * H
H = H .* WV ./ WWH
VH = V * H'
WHH = W * (H * H')
W = W .* VH ./ WHH
output W
output H
`

func TestParseGNMF(t *testing.T) {
	p, err := Parse(gnmfSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "gnmf" {
		t.Fatalf("name: %q", p.Name)
	}
	if len(p.Inputs) != 3 || !p.Inputs[0].Sparse || p.Inputs[1].Sparse {
		t.Fatalf("inputs: %+v", p.Inputs)
	}
	if len(p.Stmts) != 6 || len(p.Outputs) != 2 {
		t.Fatalf("stmts=%d outputs=%d", len(p.Stmts), len(p.Outputs))
	}
	shapes, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if sh := shapes["H"]; sh.Rows != 5 || sh.Cols != 30 {
		t.Fatalf("H shape: %v", sh)
	}
	if sh := shapes["VH"]; sh.Rows != 40 || sh.Cols != 5 {
		t.Fatalf("VH shape: %v", sh)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("A + B * C")
	if err != nil {
		t.Fatal(err)
	}
	add, ok := e.(Add)
	if !ok {
		t.Fatalf("top node %T", e)
	}
	if _, ok := add.R.(MatMul); !ok {
		t.Fatalf("'*' should bind tighter than '+': %s", e)
	}
}

func TestParseExprTranspose(t *testing.T) {
	e, err := ParseExpr("A' * B")
	if err != nil {
		t.Fatal(err)
	}
	mm := e.(MatMul)
	if _, ok := mm.L.(Transpose); !ok {
		t.Fatalf("left of * should be transpose: %s", e)
	}
	// Double transpose parses.
	e2, err := ParseExpr("A''")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(Transpose).X.(Transpose); !ok {
		t.Fatalf("A'' should nest: %s", e2)
	}
	// Transpose of a parenthesized expression.
	e3, err := ParseExpr("(A * B)'")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e3.(Transpose); !ok {
		t.Fatalf("(A*B)' should be transpose: %s", e3)
	}
}

func TestParseScalar(t *testing.T) {
	e, err := ParseExpr("0.5 * A + 2e-3 * B")
	if err != nil {
		t.Fatal(err)
	}
	add := e.(Add)
	if s := add.L.(Scale); s.S != 0.5 {
		t.Fatalf("left scalar: %v", s.S)
	}
	if s := add.R.(Scale); s.S != 2e-3 {
		t.Fatalf("right scalar: %v", s.S)
	}
}

func TestParseFunc(t *testing.T) {
	e, err := ParseExpr("exp(A .* B)")
	if err != nil {
		t.Fatal(err)
	}
	ap := e.(Apply)
	if ap.Fn != "exp" {
		t.Fatalf("fn: %s", ap.Fn)
	}
	if _, err := ParseExpr("frobnicate(A)"); err == nil {
		t.Fatal("unknown function should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"A +",
		"* A",
		"(A",
		"A ) B",
		"3 A",   // scalar without '*'
		"A $ B", // bad character
		"2.5",   // bare scalar is not a matrix expression
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := []string{
		"input A x 3\nA = A\noutput A",
		"input A 2 2 fuzzy\noutput A",
		"input A 2 2\nnonsense line\noutput A",
		"input A 2 2\noutput 7up&down",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected program parse error for %q", src)
		}
	}
}

func TestValidateCatchesShapeErrors(t *testing.T) {
	p := &Program{
		Inputs:  []Input{{Name: "A", Rows: 3, Cols: 4}, {Name: "B", Rows: 3, Cols: 4}},
		Stmts:   []Assign{{Name: "C", Expr: MatMul{L: Var{"A"}, R: Var{"B"}}}},
		Outputs: []string{"C"},
	}
	if _, err := p.Validate(); err == nil || !strings.Contains(err.Error(), "inner dimensions") {
		t.Fatalf("want inner-dimension error, got %v", err)
	}
}

func TestValidateCatchesUndefined(t *testing.T) {
	p := &Program{
		Inputs:  []Input{{Name: "A", Rows: 2, Cols: 2}},
		Stmts:   []Assign{{Name: "C", Expr: Add{L: Var{"A"}, R: Var{"Z"}}}},
		Outputs: []string{"C"},
	}
	if _, err := p.Validate(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("want undefined-variable error, got %v", err)
	}
}

func TestValidateReassignShapeChange(t *testing.T) {
	p := &Program{
		Inputs: []Input{{Name: "A", Rows: 2, Cols: 3}},
		Stmts: []Assign{
			{Name: "B", Expr: Var{"A"}},
			{Name: "B", Expr: Transpose{X: Var{"A"}}},
		},
		Outputs: []string{"B"},
	}
	if _, err := p.Validate(); err == nil || !strings.Contains(err.Error(), "reassigns") {
		t.Fatalf("want reassignment error, got %v", err)
	}
}

func TestValidateRequiresOutputs(t *testing.T) {
	p := &Program{Inputs: []Input{{Name: "A", Rows: 1, Cols: 1}}}
	if _, err := p.Validate(); err == nil {
		t.Fatal("want no-outputs error")
	}
	p.Outputs = []string{"missing"}
	if _, err := p.Validate(); err == nil {
		t.Fatal("want undefined-output error")
	}
}

func TestRoundTripStringParse(t *testing.T) {
	p, err := Parse(gnmfSrc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p.String(), err)
	}
	if len(p2.Stmts) != len(p.Stmts) || len(p2.Inputs) != len(p.Inputs) {
		t.Fatal("round trip changed program structure")
	}
	if p.Stmts[2].Expr.String() != p2.Stmts[2].Expr.String() {
		t.Fatalf("expr mismatch: %s vs %s", p.Stmts[2].Expr, p2.Stmts[2].Expr)
	}
}

func TestFreeVars(t *testing.T) {
	e, err := ParseExpr("A .* (B * A) + C'")
	if err != nil {
		t.Fatal(err)
	}
	got := FreeVars(e)
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("freevars: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("freevars order: %v", got)
		}
	}
}

func TestInterpretSimple(t *testing.T) {
	src := `
input A 4 3
input B 3 5
C = A * B
D = C .* C - 2 * C
output D
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := linalg.RandomDense(4, 3, 1)
	b := linalg.RandomDense(3, 5, 2)
	out, err := Interpret(p, map[string]*linalg.Dense{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	c := a.Mul(b)
	want := c.ElemMul(c).Sub(c.Scale(2))
	if !out["D"].AlmostEqual(want, 1e-12) {
		t.Fatal("interpreter result mismatch")
	}
}

func TestInterpretTransposeAndFuncs(t *testing.T) {
	src := `
input A 3 4
B = sqrt(abs(A' * A))
output B
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := linalg.RandomDense(3, 4, 9)
	out, err := Interpret(p, map[string]*linalg.Dense{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	want := a.T().Mul(a).Map(Funcs["abs"]).Map(Funcs["sqrt"])
	if !out["B"].AlmostEqual(want, 1e-12) {
		t.Fatal("interpreter transpose/func mismatch")
	}
}

func TestInterpretInputValidation(t *testing.T) {
	p, err := Parse("input A 2 2\nB = A\noutput B")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Interpret(p, nil); err == nil {
		t.Fatal("want missing-input error")
	}
	if _, err := Interpret(p, map[string]*linalg.Dense{"A": linalg.NewDense(3, 2)}); err == nil {
		t.Fatal("want shape error")
	}
}

func TestInterpretIterativeReassignment(t *testing.T) {
	// x_{k+1} = 0.5 * x_k, three times: x = A / 8.
	src := `
input A 2 2
X = A
X = 0.5 * X
X = 0.5 * X
X = 0.5 * X
output X
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := linalg.RandomDense(2, 2, 3)
	out, err := Interpret(p, map[string]*linalg.Dense{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if !out["X"].AlmostEqual(a.Scale(0.125), 1e-12) {
		t.Fatal("iterative reassignment mismatch")
	}
}

func TestParseMask(t *testing.T) {
	e, err := ParseExpr("mask(V, W * H)")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := e.(Mask)
	if !ok {
		t.Fatalf("top node %T", e)
	}
	if _, ok := m.X.(MatMul); !ok {
		t.Fatalf("mask value: %s", m.X)
	}
	// Render round trip.
	e2, err := ParseExpr(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if e2.String() != e.String() {
		t.Fatalf("round trip: %s vs %s", e2, e)
	}
	// Errors.
	for _, bad := range []string{"mask(V)", "mask(V, )", "mask(, X)", "mask V"} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("expected parse error for %q", bad)
		}
	}
}

func TestMaskShapeChecking(t *testing.T) {
	env := map[string]Shape{
		"V": {Rows: 4, Cols: 5, Sparse: true},
		"D": {Rows: 4, Cols: 5},
		"W": {Rows: 4, Cols: 2},
		"H": {Rows: 2, Cols: 5},
	}
	e, _ := ParseExpr("mask(V, W * H)")
	sh, err := InferShape(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Rows != 4 || sh.Cols != 5 || !sh.Sparse {
		t.Fatalf("mask shape: %v", sh)
	}
	// Dense pattern rejected.
	e2, _ := ParseExpr("mask(D, W * H)")
	if _, err := InferShape(e2, env); err == nil {
		t.Fatal("dense pattern should be rejected")
	}
	// Shape mismatch rejected.
	e3, _ := ParseExpr("mask(V, H' * W')")
	if _, err := InferShape(e3, env); err == nil {
		t.Fatal("mismatched mask shapes should be rejected")
	}
}

func TestInterpretMask(t *testing.T) {
	src := `
input V 6 5 sparse
input W 6 2
input H 2 5
R = mask(V, W * H)
output R
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.RandomSparseDense(6, 5, 0.4, 1)
	w := linalg.RandomDense(6, 2, 2)
	h := linalg.RandomDense(2, 5, 3)
	out, err := Interpret(p, map[string]*linalg.Dense{"V": v, "W": w, "H": h})
	if err != nil {
		t.Fatal(err)
	}
	full := w.Mul(h)
	r := out["R"]
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			if v.At(i, j) != 0 {
				if !linalg.Close(r.At(i, j), full.At(i, j), 1e-12) {
					t.Fatalf("masked value wrong at (%d,%d)", i, j)
				}
			} else if r.At(i, j) != 0 {
				t.Fatalf("unmasked position (%d,%d) nonzero", i, j)
			}
		}
	}
}

func TestParseForLoop(t *testing.T) {
	src := `
input V 40 30 sparse
input W 40 5
input H 5 30
for i in 1:3 {
  H = H .* (W' * V) ./ ((W' * W) * H)
  W = W .* (V * H') ./ (W * (H * H'))
}
output W
output H
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 6 {
		t.Fatalf("3 iterations x 2 statements should unroll to 6, got %d", len(p.Stmts))
	}
	if _, err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseNestedForLoops(t *testing.T) {
	src := `
input A 4 4
for i in 1:2 {
  A = 0.5 * A
  for j in 0:2 {
    A = A .* A
  }
}
output A
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Each outer iteration: 1 + 3 = 4 statements; two iterations = 8.
	if len(p.Stmts) != 8 {
		t.Fatalf("nested unroll: got %d statements", len(p.Stmts))
	}
}

func TestParseForLoopSemantics(t *testing.T) {
	looped, err := Parse(`
input A 3 3
for i in 1:4 {
  A = 0.5 * A
}
output A
`)
	if err != nil {
		t.Fatal(err)
	}
	a := linalg.RandomDense(3, 3, 2)
	out, err := Interpret(looped, map[string]*linalg.Dense{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if !out["A"].AlmostEqual(a.Scale(1.0/16), 1e-12) {
		t.Fatal("loop unrolling changed semantics")
	}
}

func TestParseForLoopErrors(t *testing.T) {
	bad := []string{
		"input A 2 2\nfor i in 1:3 {\nA = A\noutput A", // unclosed
		"input A 2 2\n}\noutput A",                     // unmatched close
		"input A 2 2\nfor i in 3:1 {\nA = A\n}\noutput A",
		"input A 2 2\nfor i in x:3 {\nA = A\n}\noutput A",
		"input A 2 2\nfor i 1:3 {\nA = A\n}\noutput A",
		"input A 2 2\nfor i in 1:2\nA = A\n}\noutput A", // missing brace
		"for i in 1:2 {\ninput A 2 2\n}\noutput A",      // input in loop
		"input A 2 2\nfor i in 1:2 {\noutput A\n}",      // output in loop
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

// Property: rendering a program and reparsing it is a fixpoint.
func TestProgramStringParseFixpoint(t *testing.T) {
	srcs := []string{
		gnmfSrc,
		"input A 4 4\nB = mask(A, A * A)\noutput B",
		"input A 4 4\nfor i in 1:3 {\nA = 0.5 * A\n}\noutput A",
	}
	// The first parse may unroll loops; after that, String->Parse->String
	// must be stable.
	for i, src := range srcs {
		if i == 1 {
			// mask needs a sparse input to validate; skip validation here,
			// this test is purely syntactic.
			_ = i
		}
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		s1 := p1.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("case %d reparse: %v", i, err)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("case %d not a fixpoint:\n%s\nvs\n%s", i, s1, s2)
		}
	}
}
