package lang

import (
	"fmt"

	"cumulon/internal/linalg"
)

// Interpret evaluates a program directly on in-memory dense matrices. It
// is the semantic reference for the distributed engines: every engine must
// produce, for each output, a matrix equal to what Interpret returns (up
// to floating-point reassociation tolerance).
//
// inputs must provide a matrix for every declared input, with matching
// shape. The returned map contains the final value of every output.
func Interpret(p *Program, inputs map[string]*linalg.Dense) (map[string]*linalg.Dense, error) {
	if _, err := p.Validate(); err != nil {
		return nil, err
	}
	env := map[string]*linalg.Dense{}
	for _, in := range p.Inputs {
		d, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("lang: missing input matrix %s", in.Name)
		}
		if d.Rows != in.Rows || d.Cols != in.Cols {
			return nil, fmt.Errorf("lang: input %s is %dx%d, declared %dx%d",
				in.Name, d.Rows, d.Cols, in.Rows, in.Cols)
		}
		env[in.Name] = d
	}
	for _, st := range p.Stmts {
		v, err := Eval(st.Expr, env)
		if err != nil {
			return nil, err
		}
		env[st.Name] = v
	}
	out := map[string]*linalg.Dense{}
	for _, o := range p.Outputs {
		out[o] = env[o]
	}
	return out, nil
}

// Eval evaluates a single expression in an environment of dense matrices.
func Eval(e Expr, env map[string]*linalg.Dense) (*linalg.Dense, error) {
	switch x := e.(type) {
	case Var:
		v, ok := env[x.Name]
		if !ok {
			return nil, fmt.Errorf("lang: undefined variable %s", x.Name)
		}
		return v, nil
	case MatMul:
		l, r, err := evalPair(x.L, x.R, env)
		if err != nil {
			return nil, err
		}
		return l.Mul(r), nil
	case Add:
		l, r, err := evalPair(x.L, x.R, env)
		if err != nil {
			return nil, err
		}
		return l.Add(r), nil
	case Sub:
		l, r, err := evalPair(x.L, x.R, env)
		if err != nil {
			return nil, err
		}
		return l.Sub(r), nil
	case ElemMul:
		l, r, err := evalPair(x.L, x.R, env)
		if err != nil {
			return nil, err
		}
		return l.ElemMul(r), nil
	case ElemDiv:
		l, r, err := evalPair(x.L, x.R, env)
		if err != nil {
			return nil, err
		}
		return l.ElemDiv(r), nil
	case Scale:
		v, err := Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		return v.Scale(x.S), nil
	case Transpose:
		v, err := Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		return v.T(), nil
	case Apply:
		fn, ok := Funcs[x.Fn]
		if !ok {
			return nil, fmt.Errorf("lang: unknown function %s", x.Fn)
		}
		v, err := Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		return v.Map(fn), nil
	case Mask:
		p, v, err := evalPair(x.P, x.X, env)
		if err != nil {
			return nil, err
		}
		if p.Rows != v.Rows || p.Cols != v.Cols {
			return nil, fmt.Errorf("lang: mask shape mismatch %dx%d vs %dx%d", p.Rows, p.Cols, v.Rows, v.Cols)
		}
		out := linalg.NewDense(v.Rows, v.Cols)
		for i, pv := range p.Data {
			if pv != 0 {
				out.Data[i] = v.Data[i]
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("lang: unknown expression node %T", e)
	}
}

func evalPair(l, r Expr, env map[string]*linalg.Dense) (*linalg.Dense, *linalg.Dense, error) {
	lv, err := Eval(l, env)
	if err != nil {
		return nil, nil, err
	}
	rv, err := Eval(r, env)
	if err != nil {
		return nil, nil, err
	}
	return lv, rv, nil
}
