package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a program in the textual front-end syntax:
//
//	input V 10000 5000 sparse
//	input W 10000 10
//	input H 10 5000
//	for i in 1:20 {
//	  H = H .* (W' * V) ./ ((W' * W) * H)
//	  W = W .* (V * H') ./ (W * (H * H'))
//	}
//	output H
//
// Iteration counts are literal: `for` loops unroll at parse time (Cumulon
// optimizes and executes whole iterative programs as one plan). Loops may
// nest; the loop variable is purely a counter and is not substitutable
// into expressions. A bare `checkpoint` line marks an iteration boundary
// for program-level checkpointing; inside a loop it unrolls into one
// boundary per iteration.
//
// Grammar (expressions, by precedence, loosest first):
//
//	expr   := term (('+'|'-') term)*
//	term   := factor (('*'|'.*'|'./') factor)*
//	factor := number '*' factor | number | primary
//	primary:= ident '(' expr ')' | ident | '(' expr ')' ; postfix '
//
// A number in factor position denotes scalar multiplication (e.g.
// "0.5 * A"); bare numbers are only valid in that position.
func Parse(src string) (*Program, error) {
	p := &Program{}
	// loopStack holds the items being accumulated by enclosing for loops,
	// innermost last; each entry remembers its repeat count. An item is
	// either an assignment or a checkpoint marker, so markers survive
	// unrolling (one boundary per unrolled iteration).
	type item struct {
		st   Assign
		mark bool
	}
	type frame struct {
		count int
		items []item
	}
	var stack []*frame
	emit := func(it item) {
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			top.items = append(top.items, it)
			return
		}
		if it.mark {
			// Adjacent markers collapse: a boundary is a position, not an
			// instruction, so repeating it is a no-op.
			if n := len(p.Boundaries); n == 0 || p.Boundaries[n-1] != len(p.Stmts) {
				p.Boundaries = append(p.Boundaries, len(p.Stmts))
			}
			return
		}
		p.Stmts = append(p.Stmts, it.st)
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "program "):
			p.Name = strings.TrimSpace(strings.TrimPrefix(line, "program "))
		case strings.HasPrefix(line, "input "):
			if len(stack) > 0 {
				return nil, fmt.Errorf("lang: line %d: input declarations cannot appear inside loops", lineNo+1)
			}
			in, err := parseInput(line)
			if err != nil {
				return nil, fmt.Errorf("lang: line %d: %w", lineNo+1, err)
			}
			p.Inputs = append(p.Inputs, in)
		case strings.HasPrefix(line, "output "):
			if len(stack) > 0 {
				return nil, fmt.Errorf("lang: line %d: outputs cannot appear inside loops", lineNo+1)
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, "output "))
			if !isIdent(name) {
				return nil, fmt.Errorf("lang: line %d: bad output name %q", lineNo+1, name)
			}
			p.Outputs = append(p.Outputs, name)
		case strings.HasPrefix(line, "for "):
			count, err := parseForHeader(line)
			if err != nil {
				return nil, fmt.Errorf("lang: line %d: %w", lineNo+1, err)
			}
			stack = append(stack, &frame{count: count})
		case line == "checkpoint":
			emit(item{mark: true})
		case line == "}":
			if len(stack) == 0 {
				return nil, fmt.Errorf("lang: line %d: unmatched '}'", lineNo+1)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := 0; i < top.count; i++ {
				for _, it := range top.items {
					emit(it)
				}
			}
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("lang: line %d: expected assignment, got %q", lineNo+1, line)
			}
			name := strings.TrimSpace(line[:eq])
			if !isIdent(name) {
				return nil, fmt.Errorf("lang: line %d: bad variable name %q", lineNo+1, name)
			}
			expr, err := ParseExpr(line[eq+1:])
			if err != nil {
				return nil, fmt.Errorf("lang: line %d: %w", lineNo+1, err)
			}
			emit(item{st: Assign{Name: name, Expr: expr}})
		}
	}
	if len(stack) > 0 {
		return nil, fmt.Errorf("lang: unclosed for loop")
	}
	return p, nil
}

// parseForHeader parses `for <ident> in <lo>:<hi> {` and returns the
// iteration count (hi - lo + 1).
func parseForHeader(line string) (int, error) {
	body := strings.TrimSpace(strings.TrimPrefix(line, "for "))
	if !strings.HasSuffix(body, "{") {
		return 0, fmt.Errorf("for loop must end with '{'")
	}
	body = strings.TrimSpace(strings.TrimSuffix(body, "{"))
	parts := strings.Fields(body)
	if len(parts) != 3 || parts[1] != "in" || !isIdent(parts[0]) {
		return 0, fmt.Errorf("for loop wants: for VAR in LO:HI {")
	}
	bounds := strings.SplitN(parts[2], ":", 2)
	if len(bounds) != 2 {
		return 0, fmt.Errorf("for loop range wants LO:HI, got %q", parts[2])
	}
	lo, err := strconv.Atoi(bounds[0])
	if err != nil {
		return 0, fmt.Errorf("bad loop lower bound %q", bounds[0])
	}
	hi, err := strconv.Atoi(bounds[1])
	if err != nil {
		return 0, fmt.Errorf("bad loop upper bound %q", bounds[1])
	}
	if hi < lo {
		return 0, fmt.Errorf("empty loop range %d:%d", lo, hi)
	}
	return hi - lo + 1, nil
}

func parseInput(line string) (Input, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 && len(fields) != 5 {
		return Input{}, fmt.Errorf("input wants: input NAME ROWS COLS [sparse]")
	}
	name := fields[1]
	if !isIdent(name) {
		return Input{}, fmt.Errorf("bad input name %q", name)
	}
	rows, err := strconv.Atoi(fields[2])
	if err != nil {
		return Input{}, fmt.Errorf("bad rows %q", fields[2])
	}
	cols, err := strconv.Atoi(fields[3])
	if err != nil {
		return Input{}, fmt.Errorf("bad cols %q", fields[3])
	}
	in := Input{Name: name, Rows: rows, Cols: cols}
	if len(fields) == 5 {
		if fields[4] != "sparse" {
			return Input{}, fmt.Errorf("unknown input modifier %q", fields[4])
		}
		in.Sparse = true
	}
	return in, nil
}

// ParseExpr parses a single matrix expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	pr := &exprParser{toks: toks}
	e, err := pr.parseExpr()
	if err != nil {
		return nil, err
	}
	if pr.pos != len(pr.toks) {
		return nil, fmt.Errorf("unexpected trailing token %q", pr.toks[pr.pos].text)
	}
	return e, nil
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokOp // + - * .* ./ ' ( )
)

type token struct {
	kind tokKind
	text string
}

func tokenize(src string) ([]token, error) {
	var toks []token
	i := 0
	rs := []rune(src)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '+' || r == '-' || r == '*' || r == '\'' || r == '(' || r == ')' || r == ',':
			toks = append(toks, token{tokOp, string(r)})
			i++
		case r == '.':
			if i+1 < len(rs) && (rs[i+1] == '*' || rs[i+1] == '/') {
				toks = append(toks, token{tokOp, string(rs[i : i+2])})
				i += 2
			} else if i+1 < len(rs) && unicode.IsDigit(rs[i+1]) {
				j := i
				i++
				for i < len(rs) && (unicode.IsDigit(rs[i]) || rs[i] == 'e' || rs[i] == 'E') {
					i++
				}
				toks = append(toks, token{tokNumber, string(rs[j:i])})
			} else {
				return nil, fmt.Errorf("stray '.' at position %d", i)
			}
		case unicode.IsDigit(r):
			j := i
			for i < len(rs) && (unicode.IsDigit(rs[i]) || rs[i] == '.' || rs[i] == 'e' || rs[i] == 'E' ||
				((rs[i] == '+' || rs[i] == '-') && (rs[i-1] == 'e' || rs[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, string(rs[j:i])})
		case unicode.IsLetter(r) || r == '_':
			j := i
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, string(rs[j:i])})
		default:
			return nil, fmt.Errorf("unexpected character %q", string(r))
		}
	}
	return toks, nil
}

type exprParser struct {
	toks []token
	pos  int
}

func (p *exprParser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *exprParser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			left = Add{L: left, R: right}
		} else {
			left = Sub{L: left, R: right}
		}
	}
}

func (p *exprParser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp || (t.text != "*" && t.text != ".*" && t.text != "./") {
			return left, nil
		}
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "*":
			left = MatMul{L: left, R: right}
		case ".*":
			left = ElemMul{L: left, R: right}
		case "./":
			left = ElemDiv{L: left, R: right}
		}
	}
}

func (p *exprParser) parseFactor() (Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("unexpected end of expression")
	}
	if t.kind == tokNumber {
		s, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		p.pos++
		nxt, ok := p.peek()
		if !ok || nxt.kind != tokOp || nxt.text != "*" {
			return nil, fmt.Errorf("scalar %v must be followed by '*'", s)
		}
		p.pos++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Scale{S: s, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("unexpected end of expression")
	}
	var e Expr
	switch {
	case t.kind == tokOp && t.text == "(":
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		e = inner
	case t.kind == tokIdent:
		p.pos++
		if nxt, ok := p.peek(); ok && nxt.kind == tokOp && nxt.text == "(" {
			if t.text == "mask" {
				p.pos++
				pattern, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expect(","); err != nil {
					return nil, err
				}
				value, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				e = Mask{P: pattern, X: value}
				break
			}
			if _, isFn := Funcs[t.text]; !isFn {
				return nil, fmt.Errorf("unknown function %q", t.text)
			}
			p.pos++
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			e = Apply{Fn: t.text, X: arg}
		} else {
			e = Var{Name: t.text}
		}
	default:
		return nil, fmt.Errorf("unexpected token %q", t.text)
	}
	// Postfix transpose, possibly repeated (A'' is legal and is A).
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp || t.text != "'" {
			return e, nil
		}
		p.pos++
		e = Transpose{X: e}
	}
}

func (p *exprParser) expect(text string) error {
	t, ok := p.peek()
	if !ok || t.text != text {
		return fmt.Errorf("expected %q", text)
	}
	p.pos++
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}
