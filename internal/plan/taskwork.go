package plan

import (
	"cumulon/internal/lang"
	"cumulon/internal/store"
)

// TaskWork is the exact work profile of one task under a job's split,
// mirroring what the execution engine will account when it runs the task:
// flops (core product, prologue and epilogue operators), bytes read
// (leaf tiles, deduplicated per task), and bytes written.
type TaskWork struct {
	Flops      int64
	ReadBytes  int64
	WriteBytes int64
}

// TaskProfiles enumerates the per-phase, per-task work of a job under its
// current split, in the same task order the engine constructs. The
// simulator schedules these profiles to predict job time; because chunk
// sizes are uneven when splits do not divide the tile grid, per-task
// profiles capture the makespan effects that averaged statistics miss.
func TaskProfiles(j *Job) [][]TaskWork {
	switch j.Kind {
	case MulKind:
		return mulTaskProfiles(j)
	default:
		return [][]TaskWork{mapTaskProfiles(j)}
	}
}

type tileSpan struct{ lo, hi int }

func spansOf(n, parts int) []tileSpan {
	if parts > n {
		parts = n
	}
	out := make([]tileSpan, 0, parts)
	for p := 0; p < parts; p++ {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		if hi > lo {
			out = append(out, tileSpan{lo, hi})
		}
	}
	return out
}

// extent returns the element extent of a tile span along an axis of
// `size` elements.
func extent(s tileSpan, size, tileSize int) int64 {
	lo := s.lo * tileSize
	hi := s.hi * tileSize
	if hi > size {
		hi = size
	}
	if hi < lo {
		return 0
	}
	return int64(hi - lo)
}

// regionBytes computes the stored size of the tiles of meta in the given
// logical row/column tile spans in closed form (the optimizer evaluates
// this for thousands of split candidates); transposed leaves read the
// mirrored region of the underlying matrix. For dense matrices the result
// is exact; for sparse ones it matches the engine's density estimate up
// to per-tile rounding.
func regionBytes(ref LeafRef, rows, cols tileSpan) int64 {
	ri, rj := rows, cols
	if ref.Transposed {
		ri, rj = cols, rows
	}
	m := ref.Meta
	extR := extent(ri, m.Rows, m.TileSize)
	extC := extent(rj, m.Cols, m.TileSize)
	nTiles := int64(ri.hi-ri.lo) * int64(rj.hi-rj.lo)
	if m.Sparse {
		nnz := int64(m.EffDensity() * float64(extR) * float64(extC))
		// CSR: 12 bytes per nonzero, row pointers per tile row, 20-byte
		// header+checksum per tile.
		return nnz*12 + (extR*int64(rj.hi-rj.lo)+nTiles)*4 + 20*nTiles
	}
	return extR*extC*8 + 16*nTiles
}

// exprRegionBytes sums regionBytes over the distinct leaves of expr.
func exprRegionBytes(expr lang.Expr, leaves map[string]LeafRef, rows, cols tileSpan) int64 {
	var n int64
	for _, name := range lang.FreeVars(expr) {
		if name == MMVar {
			continue
		}
		if ref, ok := leaves[name]; ok {
			n += regionBytes(ref, rows, cols)
		}
	}
	return n
}

// outRegionBytes computes the stored size of the output tiles in a chunk
// (density-scaled when the output is sparse, e.g. masked multiplies).
func outRegionBytes(meta store.Meta, rows, cols tileSpan) int64 {
	return regionBytes(LeafRef{Meta: meta}, rows, cols)
}

func mapTaskProfiles(j *Job) []TaskWork {
	iSpans := spansOf(j.ITiles(), j.Split.CI)
	jSpans := spansOf(j.JTiles(), j.Split.CJ)
	ops := int64(countOps(j.Expr))
	var tasks []TaskWork
	for _, is := range iSpans {
		for _, js := range jSpans {
			extI := extent(is, j.Out.Rows, j.Out.TileSize)
			extJ := extent(js, j.Out.Cols, j.Out.TileSize)
			tasks = append(tasks, TaskWork{
				Flops:      ops * extI * extJ,
				ReadBytes:  exprRegionBytes(j.Expr, j.Leaves, is, js),
				WriteBytes: outRegionBytes(j.Out, is, js),
			})
		}
	}
	return tasks
}

func mulTaskProfiles(j *Job) [][]TaskWork {
	iSpans := spansOf(j.ITiles(), j.Split.CI)
	jSpans := spansOf(j.JTiles(), j.Split.CJ)
	kSpans := spansOf(j.KTiles(), j.Split.CK)
	singleK := len(kSpans) == 1
	ts := j.Out.TileSize

	density := 1.0
	if ref, ok := bareLeaf(j.LExpr, j.Leaves); ok && ref.Meta.Sparse {
		density = ref.Meta.EffDensity()
	}
	// A masked multiply only computes at the pattern's stored positions.
	maskRef, masked := j.Leaves[j.MaskLeaf]
	if masked {
		density = maskRef.Meta.EffDensity()
	}
	lOps, rOps := int64(countOps(j.LExpr)), int64(countOps(j.RExpr))
	var epiOps int64
	if j.Epilogue != nil {
		epiOps = int64(countOps(j.Epilogue))
	}

	var phase1 []TaskWork
	for _, is := range iSpans {
		for _, js := range jSpans {
			for _, ks := range kSpans {
				extI := extent(is, j.Out.Rows, ts)
				extJ := extent(js, j.Out.Cols, ts)
				extK := extent(ks, j.KSize, ts)
				tilesI := int64(is.hi - is.lo)
				tilesJ := int64(js.hi - js.lo)
				w := TaskWork{}
				w.Flops = int64(2*density*float64(extI)*float64(extK)*float64(extJ)) +
					lOps*extI*extK*tilesJ + rOps*extK*extJ*tilesI
				w.ReadBytes = exprRegionBytes(j.LExpr, j.Leaves, is, ks) +
					exprRegionBytes(j.RExpr, j.Leaves, ks, js)
				if masked {
					w.ReadBytes += regionBytes(maskRef, is, js)
				}
				if singleK {
					w.Flops += epiOps * extI * extJ
					if j.Epilogue != nil {
						w.ReadBytes += exprRegionBytes(j.Epilogue, j.Leaves, is, js)
					}
					w.WriteBytes = outRegionBytes(j.Out, is, js)
				} else {
					// Partials are dense regardless of the output estimate.
					w.WriteBytes = extI*extJ*8 + 16*int64(is.hi-is.lo)*int64(js.hi-js.lo)
				}
				phase1 = append(phase1, w)
			}
		}
	}
	if singleK {
		return [][]TaskWork{phase1}
	}
	ck := int64(len(kSpans))
	var phase2 []TaskWork
	for _, is := range iSpans {
		for _, js := range jSpans {
			extI := extent(is, j.Out.Rows, ts)
			extJ := extent(js, j.Out.Cols, ts)
			partialChunk := extI*extJ*8 + 16*int64(is.hi-is.lo)*int64(js.hi-js.lo)
			w := TaskWork{
				Flops:      (ck-1)*extI*extJ + epiOps*extI*extJ,
				ReadBytes:  ck * partialChunk,
				WriteBytes: outRegionBytes(j.Out, is, js),
			}
			if j.Epilogue != nil {
				w.ReadBytes += exprRegionBytes(j.Epilogue, j.Leaves, is, js)
			}
			phase2 = append(phase2, w)
		}
	}
	return [][]TaskWork{phase1, phase2}
}
