package plan

// Clone returns a copy of the plan whose per-job mutable state (the
// Split an engine or optimizer overwrites before execution) is
// independent of the receiver. The immutable compiled artifacts —
// expression trees, tile programs, leaf bindings, dependency lists and
// the underlying program — are shared: they are never written after
// Compile, so one compiled plan can serve as a read-only template from
// which many concurrent executions each Clone their own instance (the
// server's plan cache relies on this).
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	out := *p
	out.Jobs = make([]*Job, len(p.Jobs))
	for i, j := range p.Jobs {
		cp := *j
		out.Jobs[i] = &cp
	}
	return &out
}
