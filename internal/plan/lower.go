package plan

import (
	"fmt"

	"cumulon/internal/lang"
	"cumulon/internal/store"
)

// Config controls compilation of a program into a physical plan.
type Config struct {
	// TileSize is the square tile edge length in elements.
	TileSize int
	// Densities estimates the nonzero fraction of each sparse input by
	// name; used for I/O cost estimation. Missing entries default to 1.
	Densities map[string]float64
	// DisableReorder turns off matrix-chain reordering (ablation knob).
	DisableReorder bool
	// DisableFusion turns off prologue/epilogue fusion into Mul jobs, so
	// every element-wise tree runs as its own Map job and every MatMul as
	// a bare Mul job (ablation knob; approximates one-operator-per-job
	// systems).
	DisableFusion bool
	// DisableCSE turns off the cross-statement common-subexpression
	// elimination / loop-invariant hoisting pass that runs in front of
	// lowering (ablation knob).
	DisableCSE bool
}

// Compile lowers a validated program to a physical plan. Each statement
// becomes one or more jobs: nested matrix products materialize into
// temporary matrices, element-wise operators fuse into their consumers.
func Compile(p *lang.Program, cfg Config) (*Plan, error) {
	if cfg.TileSize <= 0 {
		return nil, fmt.Errorf("plan: tile size must be positive, got %d", cfg.TileSize)
	}
	if _, err := p.Validate(); err != nil {
		return nil, err
	}
	var rewrites *RewriteReport
	if !cfg.DisableCSE {
		var err error
		if p, rewrites, err = CSE(p); err != nil {
			return nil, err
		}
	}
	l := &lowerer{
		cfg:      cfg,
		plan:     &Plan{Program: p, TileSize: cfg.TileSize, Outputs: map[string]store.Meta{}},
		metaEnv:  map[string]store.Meta{},
		producer: map[string]int{},
		versions: map[string]int{},
	}
	for _, in := range p.Inputs {
		m := store.Meta{
			Name:     in.Name,
			Rows:     in.Rows,
			Cols:     in.Cols,
			TileSize: cfg.TileSize,
			Sparse:   in.Sparse,
		}
		if in.Sparse {
			m.Density = cfg.Densities[in.Name]
			if m.Density <= 0 || m.Density > 1 {
				m.Density = 1
			}
		}
		l.metaEnv[in.Name] = m
		l.plan.Inputs = append(l.plan.Inputs, m)
	}
	for si, st := range p.Stmts {
		if err := l.lowerAssign(si, st); err != nil {
			return nil, err
		}
		// Project iteration boundaries onto the job list as statements
		// complete. A boundary before the first statement has no jobs to
		// checkpoint and is dropped.
		if p.BoundaryAt(si+1) && len(l.plan.Jobs) > 0 {
			l.plan.Boundaries = append(l.plan.Boundaries, Boundary{Stmt: si + 1, LastJob: len(l.plan.Jobs) - 1})
		}
	}
	for _, o := range p.Outputs {
		l.plan.Outputs[o] = l.metaEnv[o]
	}
	l.plan.Rewrites = rewrites
	// Compile the fused element-wise pipelines last: lowerMask mutates
	// jobs after they are added, so the tapes must only be built once
	// every job has its final shape.
	if err := l.plan.compilePrograms(); err != nil {
		return nil, err
	}
	return l.plan, nil
}

type lowerer struct {
	cfg      Config
	plan     *Plan
	metaEnv  map[string]store.Meta // program variable -> current stored matrix
	producer map[string]int        // stored matrix name -> producing job id
	versions map[string]int        // program variable -> assignment count
	nextTmp  int
}

func (l *lowerer) shapeEnv() map[string]lang.Shape {
	env := make(map[string]lang.Shape, len(l.metaEnv))
	for v, m := range l.metaEnv {
		env[v] = lang.Shape{Rows: m.Rows, Cols: m.Cols, Sparse: m.Sparse}
	}
	return env
}

func (l *lowerer) newMeta(name string, rows, cols int) store.Meta {
	return store.Meta{Name: name, Rows: rows, Cols: cols, TileSize: l.cfg.TileSize}
}

func (l *lowerer) tmpMeta(rows, cols int) store.Meta {
	l.nextTmp++
	return l.newMeta(fmt.Sprintf("_tmp%d", l.nextTmp), rows, cols)
}

func (l *lowerer) addJob(j *Job) *Job {
	j.ID = len(l.plan.Jobs)
	j.Split = Split{CI: 1, CJ: 1, CK: 1}
	l.plan.Jobs = append(l.plan.Jobs, j)
	l.producer[j.Out.Name] = j.ID
	return j
}

// lowerAssign compiles one statement. The rewritten right-hand side is cut
// into jobs; the statement's final job writes a fresh version of the
// assigned variable.
func (l *lowerer) lowerAssign(si int, st lang.Assign) error {
	env := l.shapeEnv()
	e := st.Expr
	var err error
	if l.cfg.DisableReorder {
		e = foldScale(pushTranspose(e, false))
	} else {
		e, err = Rewrite(e, env)
		if err != nil {
			return err
		}
	}
	sh, err := lang.InferShape(e, env)
	if err != nil {
		return err
	}
	l.versions[st.Name]++
	outMeta := l.newMeta(fmt.Sprintf("%s#%d", st.Name, l.versions[st.Name]), sh.Rows, sh.Cols)
	label := fmt.Sprintf("s%d/%s", si, st.Name)

	if root, ok := e.(lang.Mask); ok {
		if err := l.lowerMask(label, root, st.Name, si); err != nil {
			return err
		}
		return nil
	}
	if hasMask(e) {
		return fmt.Errorf("plan: statement %d: mask(...) is only supported as the whole right-hand side", si)
	}

	body, mms := extractMMs(e)
	fuseEpilogue := len(mms) == 1 && !l.cfg.DisableFusion
	if root, ok := e.(lang.MatMul); ok {
		// A bare product at the root is always a Mul job, fused or not.
		_, err := l.lowerMul(label, root, nil, nil, outMeta)
		if err != nil {
			return err
		}
	} else if fuseEpilogue {
		if _, err := l.lowerMul(label, mms[0], body, nil, outMeta); err != nil {
			return err
		}
	} else {
		// Zero or multiple products under element-wise operators: each
		// product materializes, the element-wise tree becomes a Map job.
		b := l.newBuilder(label+":map", MapKind, outMeta)
		expr, err := b.flatten(e)
		if err != nil {
			return err
		}
		b.job.Expr = expr
		l.addJob(b.job)
	}
	l.metaEnv[st.Name] = outMeta
	return nil
}

// hasMask reports whether e contains a Mask node.
func hasMask(e lang.Expr) bool {
	found := false
	lang.Walk(e, func(n lang.Expr) {
		if _, ok := n.(lang.Mask); ok {
			found = true
		}
	})
	return found
}

// lowerMask emits the masked-multiply job for a statement of the form
// name = mask(P, A*B). The pattern must be a (possibly transposed) sparse
// stored matrix and the value a single product; the output is stored
// sparse with the pattern's density.
func (l *lowerer) lowerMask(label string, root lang.Mask, varName string, si int) error {
	mm, ok := root.X.(lang.MatMul)
	if !ok {
		return fmt.Errorf("plan: statement %d: mask value must be a matrix product, got %s", si, root.X)
	}
	env := l.shapeEnv()
	sh, err := lang.InferShape(root, env)
	if err != nil {
		return err
	}
	l.versions[varName]++
	outMeta := l.newMeta(fmt.Sprintf("%s#%d", varName, l.versions[varName]), sh.Rows, sh.Cols)

	j, err := l.lowerMul(label, mm, nil, nil, outMeta)
	if err != nil {
		return err
	}
	// Bind the pattern leaf on the already-created job.
	b := &jobBuilder{l: l, job: j, nextLeaf: len(j.Leaves)}
	pexpr, err := b.flatten(root.P)
	if err != nil {
		return err
	}
	pvar, ok := pexpr.(lang.Var)
	if !ok {
		return fmt.Errorf("plan: statement %d: mask pattern must be a stored matrix, got %s", si, root.P)
	}
	ref := j.Leaves[pvar.Name]
	if !ref.Meta.Sparse {
		return fmt.Errorf("plan: statement %d: mask pattern %s is not sparse", si, root.P)
	}
	j.MaskLeaf = pvar.Name
	// The output inherits the pattern's sparsity.
	j.Out.Sparse = true
	j.Out.Density = ref.Meta.EffDensity()
	outMeta = j.Out
	l.metaEnv[varName] = outMeta
	l.producer[outMeta.Name] = j.ID
	return nil
}

// lowerMul emits the Mul job computing mm (with optional fused epilogue
// over MMVar) into outMeta, returning the created job. extraLeaves lets
// callers pre-bind epilogue leaves (unused today but kept for symmetry).
func (l *lowerer) lowerMul(label string, mm lang.MatMul, epilogue lang.Expr, extraLeaves map[string]LeafRef, outMeta store.Meta) (*Job, error) {
	b := l.newBuilder(label+":mul", MulKind, outMeta)
	for name, ref := range extraLeaves {
		b.job.Leaves[name] = ref
	}
	lop, rop := mm.L, mm.R
	if l.cfg.DisableFusion {
		var err error
		if lop, err = l.materializeIfComposite(label+":lhs", lop); err != nil {
			return nil, err
		}
		if rop, err = l.materializeIfComposite(label+":rhs", rop); err != nil {
			return nil, err
		}
	}
	lexpr, err := b.flatten(lop)
	if err != nil {
		return nil, err
	}
	rexpr, err := b.flatten(rop)
	if err != nil {
		return nil, err
	}
	b.job.LExpr, b.job.RExpr = lexpr, rexpr
	lsh, err := lang.InferShape(lop, l.shapeEnv())
	if err != nil {
		return nil, err
	}
	b.job.KSize = lsh.Cols
	if epilogue != nil {
		// Epilogue leaves were already flattened into `body` by extractMMs?
		// No: extractMMs keeps original Var/Transpose leaves; bind them now.
		ep, err := b.flattenEpilogue(epilogue)
		if err != nil {
			return nil, err
		}
		if v, ok := ep.(lang.Var); !ok || v.Name != MMVar {
			b.job.Epilogue = ep
		}
	}
	return l.addJob(b.job), nil
}

// materializeIfComposite forces a non-leaf operand into its own Map job
// (used when fusion is disabled).
func (l *lowerer) materializeIfComposite(label string, e lang.Expr) (lang.Expr, error) {
	switch e.(type) {
	case lang.Var, lang.Transpose:
		return e, nil
	}
	sh, err := lang.InferShape(e, l.shapeEnv())
	if err != nil {
		return nil, err
	}
	tmp := l.tmpMeta(sh.Rows, sh.Cols)
	b := l.newBuilder(label+":map", MapKind, tmp)
	expr, err := b.flatten(e)
	if err != nil {
		return nil, err
	}
	b.job.Expr = expr
	l.addJob(b.job)
	// Register the temp under its own name so flatten() can reference it.
	l.metaEnv[tmp.Name] = tmp
	return lang.Var{Name: tmp.Name}, nil
}

type jobBuilder struct {
	l        *lowerer
	job      *Job
	nextLeaf int
}

func (l *lowerer) newBuilder(name string, kind JobKind, out store.Meta) *jobBuilder {
	return &jobBuilder{
		l:   l,
		job: &Job{Name: name, Kind: kind, Out: out, Leaves: map[string]LeafRef{}},
	}
}

func (b *jobBuilder) leaf(meta store.Meta, transposed bool) lang.Expr {
	// Reuse an existing binding for the same (matrix, orientation) pair so
	// expressions like A .* A read the tile once.
	for name, ref := range b.job.Leaves {
		if ref.Meta.Name == meta.Name && ref.Transposed == transposed {
			return lang.Var{Name: name}
		}
	}
	name := fmt.Sprintf("$L%d", b.nextLeaf)
	b.nextLeaf++
	b.job.Leaves[name] = LeafRef{Meta: meta, Transposed: transposed}
	if id, ok := b.l.producer[meta.Name]; ok {
		b.addDep(id)
	}
	return lang.Var{Name: name}
}

func (b *jobBuilder) addDep(id int) {
	for _, d := range b.job.Deps {
		if d == id {
			return
		}
	}
	b.job.Deps = append(b.job.Deps, id)
}

// flatten rewrites e into an expression over fresh leaf variables bound in
// the job, materializing any nested matrix product into its own Mul job.
func (b *jobBuilder) flatten(e lang.Expr) (lang.Expr, error) {
	switch x := e.(type) {
	case lang.Var:
		meta, ok := b.l.metaEnv[x.Name]
		if !ok {
			return nil, fmt.Errorf("plan: unknown variable %s", x.Name)
		}
		return b.leaf(meta, false), nil
	case lang.Transpose:
		v, ok := x.X.(lang.Var)
		if !ok {
			return nil, fmt.Errorf("plan: transpose not pushed to a variable: %s", x)
		}
		meta, ok := b.l.metaEnv[v.Name]
		if !ok {
			return nil, fmt.Errorf("plan: unknown variable %s", v.Name)
		}
		return b.leaf(meta, true), nil
	case lang.MatMul:
		sh, err := lang.InferShape(x, b.l.shapeEnv())
		if err != nil {
			return nil, err
		}
		tmp := b.l.tmpMeta(sh.Rows, sh.Cols)
		if _, err := b.l.lowerMul(b.job.Name+"/nested", x, nil, nil, tmp); err != nil {
			return nil, err
		}
		b.l.metaEnv[tmp.Name] = tmp
		return b.leaf(tmp, false), nil
	case lang.Add:
		return b.flattenBinary(x.L, x.R, func(l, r lang.Expr) lang.Expr { return lang.Add{L: l, R: r} })
	case lang.Sub:
		return b.flattenBinary(x.L, x.R, func(l, r lang.Expr) lang.Expr { return lang.Sub{L: l, R: r} })
	case lang.ElemMul:
		return b.flattenBinary(x.L, x.R, func(l, r lang.Expr) lang.Expr { return lang.ElemMul{L: l, R: r} })
	case lang.ElemDiv:
		return b.flattenBinary(x.L, x.R, func(l, r lang.Expr) lang.Expr { return lang.ElemDiv{L: l, R: r} })
	case lang.Scale:
		inner, err := b.flatten(x.X)
		if err != nil {
			return nil, err
		}
		return lang.Scale{S: x.S, X: inner}, nil
	case lang.Apply:
		inner, err := b.flatten(x.X)
		if err != nil {
			return nil, err
		}
		return lang.Apply{Fn: x.Fn, X: inner}, nil
	case lang.Mask:
		return nil, fmt.Errorf("plan: mask(...) is only supported as the whole right-hand side of a statement")
	default:
		return nil, fmt.Errorf("plan: flatten: unknown node %T", e)
	}
}

func (b *jobBuilder) flattenBinary(l, r lang.Expr, mk func(l, r lang.Expr) lang.Expr) (lang.Expr, error) {
	lf, err := b.flatten(l)
	if err != nil {
		return nil, err
	}
	rf, err := b.flatten(r)
	if err != nil {
		return nil, err
	}
	return mk(lf, rf), nil
}

// flattenEpilogue is flatten for the epilogue tree of a Mul job: the MMVar
// placeholder passes through untouched, everything else binds as leaves.
func (b *jobBuilder) flattenEpilogue(e lang.Expr) (lang.Expr, error) {
	if v, ok := e.(lang.Var); ok && v.Name == MMVar {
		return v, nil
	}
	switch x := e.(type) {
	case lang.Add:
		return b.flattenEpilogueBinary(x.L, x.R, func(l, r lang.Expr) lang.Expr { return lang.Add{L: l, R: r} })
	case lang.Sub:
		return b.flattenEpilogueBinary(x.L, x.R, func(l, r lang.Expr) lang.Expr { return lang.Sub{L: l, R: r} })
	case lang.ElemMul:
		return b.flattenEpilogueBinary(x.L, x.R, func(l, r lang.Expr) lang.Expr { return lang.ElemMul{L: l, R: r} })
	case lang.ElemDiv:
		return b.flattenEpilogueBinary(x.L, x.R, func(l, r lang.Expr) lang.Expr { return lang.ElemDiv{L: l, R: r} })
	case lang.Scale:
		inner, err := b.flattenEpilogue(x.X)
		if err != nil {
			return nil, err
		}
		return lang.Scale{S: x.S, X: inner}, nil
	case lang.Apply:
		inner, err := b.flattenEpilogue(x.X)
		if err != nil {
			return nil, err
		}
		return lang.Apply{Fn: x.Fn, X: inner}, nil
	default:
		return b.flatten(e)
	}
}

func (b *jobBuilder) flattenEpilogueBinary(l, r lang.Expr, mk func(l, r lang.Expr) lang.Expr) (lang.Expr, error) {
	lf, err := b.flattenEpilogue(l)
	if err != nil {
		return nil, err
	}
	rf, err := b.flattenEpilogue(r)
	if err != nil {
		return nil, err
	}
	return mk(lf, rf), nil
}

// extractMMs returns e with every matrix product reachable from the root
// through element-wise operators replaced by MMVar, together with the list
// of extracted products. Products nested under other products (or under
// transposes) are not extracted — they belong to their enclosing product's
// prologues.
func extractMMs(e lang.Expr) (lang.Expr, []lang.MatMul) {
	switch x := e.(type) {
	case lang.MatMul:
		return lang.Var{Name: MMVar}, []lang.MatMul{x}
	case lang.Add:
		le, lm := extractMMs(x.L)
		re, rm := extractMMs(x.R)
		return lang.Add{L: le, R: re}, append(lm, rm...)
	case lang.Sub:
		le, lm := extractMMs(x.L)
		re, rm := extractMMs(x.R)
		return lang.Sub{L: le, R: re}, append(lm, rm...)
	case lang.ElemMul:
		le, lm := extractMMs(x.L)
		re, rm := extractMMs(x.R)
		return lang.ElemMul{L: le, R: re}, append(lm, rm...)
	case lang.ElemDiv:
		le, lm := extractMMs(x.L)
		re, rm := extractMMs(x.R)
		return lang.ElemDiv{L: le, R: re}, append(lm, rm...)
	case lang.Scale:
		ie, im := extractMMs(x.X)
		return lang.Scale{S: x.S, X: ie}, im
	case lang.Apply:
		ie, im := extractMMs(x.X)
		return lang.Apply{Fn: x.Fn, X: ie}, im
	default:
		return e, nil
	}
}

// Intermediates returns the stored matrices produced by jobs that are not
// program outputs; engines may garbage-collect them after execution.
func (p *Plan) Intermediates() []store.Meta {
	outs := map[string]bool{}
	for _, m := range p.Outputs {
		outs[m.Name] = true
	}
	var res []store.Meta
	for _, j := range p.Jobs {
		if !outs[j.Out.Name] {
			res = append(res, j.Out)
		}
	}
	return res
}
