package plan_test

import (
	"testing"

	"cumulon/internal/lang"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

func mulJobs(pl *plan.Plan) int {
	n := 0
	for _, j := range pl.Jobs {
		if j.Kind == plan.MulKind {
			n++
		}
	}
	return n
}

// TestCSEGNMFKLRemovesProductPerIteration pins the acceptance criterion:
// the KL-divergence GNMF update evaluates V⊘(WH) in both factor updates
// with identical operand versions, and plan.CSE provably removes one matrix
// product per iteration from the lowered plan.
func TestCSEGNMFKLRemovesProductPerIteration(t *testing.T) {
	const iters = 3
	w := workloads.GNMFKL(8, 6, 4, iters, 0.5)
	with, err := plan.Compile(w.Prog, plan.Config{TileSize: 4, Densities: w.Densities})
	if err != nil {
		t.Fatal(err)
	}
	without, err := plan.Compile(w.Prog, plan.Config{TileSize: 4, Densities: w.Densities, DisableCSE: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mulJobs(without)-mulJobs(with), iters; got != want {
		t.Fatalf("plan.CSE removed %d mul jobs, want %d (with %d, without %d)",
			got, want, mulJobs(with), mulJobs(without))
	}
	r := with.Rewrites
	if r == nil || r.Chains() != iters {
		t.Fatalf("rewrite report: %v", r)
	}
	if r.FlopsSaved() <= 0 {
		t.Fatalf("flops saved: %d", r.FlopsSaved())
	}
	if without.Rewrites != nil {
		t.Fatalf("DisableCSE still reported rewrites: %v", without.Rewrites)
	}
}

// TestCSEHoistsLoopInvariant: a product whose operands are never
// reassigned is computed once, before the loop body's first use, instead
// of once per unrolled iteration.
func TestCSEHoistsLoopInvariant(t *testing.T) {
	const iters = 4
	prog := &lang.Program{
		Name: "invariant",
		Inputs: []lang.Input{
			{Name: "X", Rows: 8, Cols: 8},
			{Name: "S", Rows: 8, Cols: 8},
			{Name: "w", Rows: 8, Cols: 8},
		},
		Outputs: []string{"w"},
	}
	body, err := lang.ParseExpr("w .* ((X' * X) .* S)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		prog.Stmts = append(prog.Stmts, lang.Assign{Name: "w", Expr: body})
	}
	with, err := plan.Compile(prog, plan.Config{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	without, err := plan.Compile(prog, plan.Config{TileSize: 4, DisableCSE: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without plan.CSE every iteration recomputes X'X; with it, one hoisted job.
	if got, want := mulJobs(without), iters; got != want {
		t.Fatalf("baseline mul jobs: %d, want %d", got, want)
	}
	if got := mulJobs(with); got != 1 {
		t.Fatalf("hoisted mul jobs: %d, want 1\n%s", got, with)
	}
	r := with.Rewrites
	if r == nil || r.Chains() != 1 || r.Entries[0].Occurrences != iters {
		t.Fatalf("rewrite report: %+v", r)
	}
}

// TestCSEPreservesSemantics holds the rewritten program to the reference
// interpreter: identical outputs, bit for bit, and the input program is
// left unmutated (the optimizer recompiles the same pointer repeatedly).
func TestCSEPreservesSemantics(t *testing.T) {
	w := workloads.GNMFKL(6, 5, 3, 2, 0.6)
	before := w.Prog.String()
	rewritten, rep, err := plan.CSE(w.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rewritten == w.Prog {
		t.Fatalf("expected a fresh rewritten program with a report, got %v", rep)
	}
	if w.Prog.String() != before {
		t.Fatal("plan.CSE mutated its input program")
	}
	in := w.RandomInputs(7)
	want, err := lang.Interpret(w.Prog, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lang.Interpret(rewritten, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, wd := range want {
		gd, ok := got[name]
		if !ok {
			t.Fatalf("output %s missing from rewritten program", name)
		}
		if wd.MaxAbsDiff(gd) != 0 {
			t.Fatalf("output %s differs after CSE (max abs diff %g)", name, wd.MaxAbsDiff(gd))
		}
	}
}

// TestCSEStockWorkloadsUntouched: the Gaussian GNMF, RSVD and regression
// programs have no repeated product chains (every product involves a
// freshly updated factor), so plan.CSE must be an exact no-op on them — their
// plans, and therefore their golden traces, are unchanged by the pass
// being default-on.
func TestCSEStockWorkloadsUntouched(t *testing.T) {
	progs := []*lang.Program{
		workloads.GNMF(8, 6, 4, 2, 0.5).Prog,
		workloads.RSVD(8, 6, 3, 2).Prog,
		workloads.Regression(8, 4, 2, 0.1).Prog,
	}
	for _, p := range progs {
		rewritten, rep, err := plan.CSE(p)
		if err != nil {
			t.Fatal(err)
		}
		if rep != nil {
			t.Fatalf("%s: unexpected plan.CSE report %v", p.Name, rep)
		}
		if rewritten != p {
			t.Fatalf("%s: no-op plan.CSE should return the input program", p.Name)
		}
	}
}

// TestCSEMaskStatementsSkipped: masked multiplies require a literal
// product at the statement root; plan.CSE must neither replace nor hoist
// through them.
func TestCSEMaskStatementsSkipped(t *testing.T) {
	src := `
input P 8 8 sparse
input A 8 8
input B 8 8
M = mask(P, A * B)
N = mask(P, A * B)
output M
output N
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, rep, err := plan.CSE(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil || rewritten != prog {
		t.Fatalf("mask statements must be skipped, got report %v", rep)
	}
	if _, err := plan.Compile(prog, plan.Config{TileSize: 4, Densities: map[string]float64{"P": 0.5}}); err != nil {
		t.Fatal(err)
	}
}
