package plan

import (
	"strings"
	"testing"

	"cumulon/internal/lang"
	"cumulon/internal/store"
)

func leafEnv(names ...string) map[string]LeafRef {
	m := map[string]LeafRef{}
	for _, n := range names {
		m[n] = LeafRef{Meta: store.Meta{Name: n, Rows: 8, Cols: 8, TileSize: 4}}
	}
	return m
}

func TestCompileTileProgramTape(t *testing.T) {
	e, err := lang.ParseExpr("2 * (A + B ./ A)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileTileProgram(e, leafEnv("A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	// Post-order: A B A div add scale — slots numbered by first occurrence.
	wantOps := []TileOp{TileLeaf, TileLeaf, TileLeaf, TileDiv, TileAdd, TileScale}
	if len(p.Code) != len(wantOps) {
		t.Fatalf("tape %s: want %d instrs, got %d", p, len(wantOps), len(p.Code))
	}
	for i, op := range wantOps {
		if p.Code[i].Op != op {
			t.Fatalf("instr %d: want %s, got %s (tape %s)", i, op, p.Code[i].Op, p)
		}
	}
	if len(p.Leaves) != 2 || p.Leaves[0] != "A" || p.Leaves[1] != "B" {
		t.Fatalf("leaf slots: %v", p.Leaves)
	}
	if p.Code[0].Arg != 0 || p.Code[1].Arg != 1 || p.Code[2].Arg != 0 {
		t.Fatalf("slot args: %v", p.Code)
	}
	if p.MaxStack != 3 {
		t.Fatalf("max stack: %d", p.MaxStack)
	}
	if p.NeedsMM {
		t.Fatal("map tape must not need $mm")
	}
	if p.Ops() != 3 {
		t.Fatalf("ops: %d", p.Ops())
	}
	if p.Code[5].Scale != 2 {
		t.Fatalf("scale constant: %v", p.Code[5])
	}
}

func TestCompileTileProgramMM(t *testing.T) {
	// H ⊙ ($mm ⊘ D): the parser has no surface syntax for the product
	// placeholder, so build the epilogue tree directly.
	e := lang.ElemMul{
		L: lang.Var{Name: "H"},
		R: lang.ElemDiv{L: lang.Var{Name: MMVar}, R: lang.Var{Name: "D"}},
	}
	p, err := CompileTileProgram(e, leafEnv("H", "D"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.NeedsMM {
		t.Fatalf("epilogue tape %s must need %s", p, MMVar)
	}
	if len(p.Leaves) != 2 || p.Leaves[0] != "H" || p.Leaves[1] != "D" {
		t.Fatalf("leaf slots: %v", p.Leaves)
	}
}

func TestCompileTileProgramErrors(t *testing.T) {
	env := leafEnv("A")
	cases := []struct {
		expr lang.Expr
		want string
	}{
		{lang.Var{Name: "Z"}, "unbound leaf Z"},
		{lang.Apply{Fn: "sinh", X: lang.Var{Name: "A"}}, "unknown function sinh"},
		{lang.Transpose{X: lang.Var{Name: "A"}}, "residual transpose"},
		{lang.MatMul{L: lang.Var{Name: "A"}, R: lang.Var{Name: "A"}}, "unextracted matrix product"},
	}
	for _, tc := range cases {
		_, err := CompileTileProgram(tc.expr, env)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("expr %s: want error containing %q, got %v", tc.expr, tc.want, err)
		}
	}
}

// TestCompilePopulatesPrograms holds Compile to its finalize contract:
// every job of a lowered plan carries compiled tapes for all of its
// expression trees, so the compute layer never falls back per tile.
func TestCompilePopulatesPrograms(t *testing.T) {
	pl := compileSrc(t, `
input V 8 6 sparse
input W 8 4
input H 4 6
H = H .* (W' * V) ./ ((W' * W) * H)
W = 2 * W + sqrt(W)
output W
output H
`, Config{})
	for _, j := range pl.Jobs {
		switch j.Kind {
		case MapKind:
			if j.Prog == nil {
				t.Fatalf("%s: no compiled map tape", j)
			}
			if j.Prog.NeedsMM {
				t.Fatalf("%s: map tape needs %s", j, MMVar)
			}
		case MulKind:
			if j.LProg == nil || j.RProg == nil {
				t.Fatalf("%s: missing prologue tapes", j)
			}
			if (j.Epilogue != nil) != (j.EpiProg != nil) {
				t.Fatalf("%s: epilogue tree/tape mismatch", j)
			}
			if j.EpiProg != nil && !j.EpiProg.NeedsMM {
				t.Fatalf("%s: epilogue tape never reads %s", j, MMVar)
			}
		}
	}
}

// TestCompileRejectsUnknownApplyFn pins satellite #2: a bad scalar
// function name is a plan-compile-time error, not a per-tile runtime
// failure inside a task.
func TestCompileRejectsUnknownApplyFn(t *testing.T) {
	prog := &lang.Program{
		Name:    "badfn",
		Inputs:  []lang.Input{{Name: "A", Rows: 8, Cols: 8}},
		Stmts:   []lang.Assign{{Name: "B", Expr: lang.Apply{Fn: "sinh", X: lang.Var{Name: "A"}}}},
		Outputs: []string{"B"},
	}
	_, err := Compile(prog, Config{TileSize: 4})
	if err == nil || !strings.Contains(err.Error(), "sinh") {
		t.Fatalf("want compile-time unknown-function error, got %v", err)
	}
}
