package plan

import (
	"fmt"
	"strings"

	"cumulon/internal/lang"
)

// Compiled tile pipelines.
//
// A fused element-wise tree (a Map job's Expr, a Mul job's prologues and
// epilogue) is compiled at plan time into a TileProgram: a flat post-order
// op tape over numbered leaf slots plus the MMVar placeholder. The compute
// layer executes the tape in a single pass over the output tile — every
// leaf tile is read exactly once, no per-node intermediate tiles are
// materialized, and the destination comes from the worker's scratch pool.
// Compiling here (instead of interpreting the tree per tile) also moves
// structural validation to lowering time: unbound leaves, residual
// transposes and unknown Apply function names are plan errors, not
// per-tile runtime failures.
//
// The tape is constructed so that executing it reproduces the retained
// tree-walking interpreter (compute.Ctx.evalTile) *exactly*, including the
// accounting the engines replay: leaf slots are numbered by first
// occurrence in post-order, so reading slots 0, 1, 2, … issues the same
// read trace the interpreter's depth-first walk does, and charging flops
// per tape instruction in tape order reproduces the interpreter's
// post-order kernel-stat sequence ("zip"/"scale"/"apply", first-use
// ordered). The golden-trace tests hold both evaluators to byte-identical
// traces.

// TileOp is one opcode of a compiled tile pipeline.
type TileOp uint8

const (
	// TileLeaf pushes leaf slot Arg.
	TileLeaf TileOp = iota
	// TileMM pushes the bound matrix-product tile (MMVar).
	TileMM
	// TileAdd pops two operands and pushes their element-wise sum.
	TileAdd
	// TileSub pops two operands and pushes their element-wise difference.
	TileSub
	// TileMul pops two operands and pushes their Hadamard product.
	TileMul
	// TileDiv pops two operands and pushes their element-wise quotient.
	TileDiv
	// TileScale pops one operand and pushes it scaled by Scale.
	TileScale
	// TileApply pops one operand and pushes lang.FuncTable[Arg] applied
	// element-wise.
	TileApply
)

func (op TileOp) String() string {
	switch op {
	case TileLeaf:
		return "leaf"
	case TileMM:
		return "mm"
	case TileAdd:
		return "add"
	case TileSub:
		return "sub"
	case TileMul:
		return "mul"
	case TileDiv:
		return "div"
	case TileScale:
		return "scale"
	case TileApply:
		return "apply"
	}
	return "?"
}

// KernelKind returns the kernel-stat label the retained interpreter
// charges for this op ("" for operand pushes, which cost nothing).
func (op TileOp) KernelKind() string {
	switch op {
	case TileAdd, TileSub, TileMul, TileDiv:
		return "zip"
	case TileScale:
		return "scale"
	case TileApply:
		return "apply"
	}
	return ""
}

// TileInstr is one instruction of the tape.
type TileInstr struct {
	Op TileOp
	// Arg is the leaf slot of TileLeaf, or the lang.FuncTable index of
	// TileApply.
	Arg int
	// Scale is the constant factor of TileScale.
	Scale float64
}

// TileProgram is a compiled fused element-wise pipeline: a post-order op
// tape evaluated with an operand stack, once per output element (the
// executor vectorizes over chunks of the tile).
type TileProgram struct {
	// Code is the tape, in post-order of the source tree.
	Code []TileInstr
	// Leaves names the leaf variable of each slot, numbered by first
	// occurrence in post-order (slot order == the interpreter's read
	// order).
	Leaves []string
	// MaxStack is the operand-stack depth the tape needs.
	MaxStack int
	// NeedsMM reports whether the tape references the MMVar placeholder
	// (epilogue programs do; Map-job programs must not).
	NeedsMM bool
}

// Ops returns the number of element-wise operator instructions (the
// per-element flop count of the pipeline).
func (p *TileProgram) Ops() int {
	n := 0
	for _, ins := range p.Code {
		if ins.Op.KernelKind() != "" {
			n++
		}
	}
	return n
}

// String renders the tape for diagnostics.
func (p *TileProgram) String() string {
	var b strings.Builder
	for i, ins := range p.Code {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch ins.Op {
		case TileLeaf:
			fmt.Fprintf(&b, "%s", p.Leaves[ins.Arg])
		case TileScale:
			fmt.Fprintf(&b, "scale(%g)", ins.Scale)
		case TileApply:
			fmt.Fprintf(&b, "%s", lang.FuncNames[ins.Arg])
		default:
			b.WriteString(ins.Op.String())
		}
	}
	return b.String()
}

// CompileTileProgram compiles a fused element-wise tree into a tape over
// the job's leaf bindings. It validates the tree's structure: every Var
// must be a bound leaf (or MMVar), transposes must have been pushed into
// the leaf bindings, matrix products must have been extracted by the
// lowerer, and Apply function names must be in the closed set — all of
// which would otherwise surface as per-tile runtime errors deep inside a
// task.
func CompileTileProgram(e lang.Expr, leaves map[string]LeafRef) (*TileProgram, error) {
	p := &TileProgram{}
	slots := map[string]int{}
	depth, maxDepth := 0, 0
	push := func(ins TileInstr, pop int) {
		depth += 1 - pop
		if depth > maxDepth {
			maxDepth = depth
		}
		p.Code = append(p.Code, ins)
	}
	var emit func(e lang.Expr) error
	emit = func(e lang.Expr) error {
		switch x := e.(type) {
		case lang.Var:
			if x.Name == MMVar {
				p.NeedsMM = true
				push(TileInstr{Op: TileMM}, 0)
				return nil
			}
			if _, ok := leaves[x.Name]; !ok {
				return fmt.Errorf("plan: compile pipeline: unbound leaf %s", x.Name)
			}
			slot, ok := slots[x.Name]
			if !ok {
				slot = len(p.Leaves)
				slots[x.Name] = slot
				p.Leaves = append(p.Leaves, x.Name)
			}
			push(TileInstr{Op: TileLeaf, Arg: slot}, 0)
			return nil
		case lang.Add:
			return emitBinary(emit, push, x.L, x.R, TileAdd)
		case lang.Sub:
			return emitBinary(emit, push, x.L, x.R, TileSub)
		case lang.ElemMul:
			return emitBinary(emit, push, x.L, x.R, TileMul)
		case lang.ElemDiv:
			return emitBinary(emit, push, x.L, x.R, TileDiv)
		case lang.Scale:
			if err := emit(x.X); err != nil {
				return err
			}
			push(TileInstr{Op: TileScale, Scale: x.S}, 1)
			return nil
		case lang.Apply:
			fi := lang.FuncIndex(x.Fn)
			if fi < 0 {
				return fmt.Errorf("plan: compile pipeline: unknown function %s", x.Fn)
			}
			if err := emit(x.X); err != nil {
				return err
			}
			push(TileInstr{Op: TileApply, Arg: fi}, 1)
			return nil
		case lang.Transpose:
			return fmt.Errorf("plan: compile pipeline: residual transpose %s (not pushed to a leaf)", x)
		case lang.MatMul:
			return fmt.Errorf("plan: compile pipeline: unextracted matrix product %s", x)
		default:
			return fmt.Errorf("plan: compile pipeline: unsupported node %T", e)
		}
	}
	if err := emit(e); err != nil {
		return nil, err
	}
	p.MaxStack = maxDepth
	return p, nil
}

func emitBinary(emit func(lang.Expr) error, push func(TileInstr, int), l, r lang.Expr, op TileOp) error {
	if err := emit(l); err != nil {
		return err
	}
	if err := emit(r); err != nil {
		return err
	}
	push(TileInstr{Op: op}, 2)
	return nil
}

// compilePrograms compiles the fused pipelines of every job in the plan.
// It runs as a finalize pass after all jobs are built (lowerMask mutates
// jobs after addJob) so the tapes see the final leaf bindings.
func (p *Plan) compilePrograms() error {
	for _, j := range p.Jobs {
		var err error
		switch j.Kind {
		case MapKind:
			if j.Prog, err = CompileTileProgram(j.Expr, j.Leaves); err != nil {
				return fmt.Errorf("job %d %s: %w", j.ID, j.Name, err)
			}
			if j.Prog.NeedsMM {
				return fmt.Errorf("job %d %s: map expression references %s", j.ID, j.Name, MMVar)
			}
		case MulKind:
			if j.LProg, err = CompileTileProgram(j.LExpr, j.Leaves); err != nil {
				return fmt.Errorf("job %d %s: left prologue: %w", j.ID, j.Name, err)
			}
			if j.RProg, err = CompileTileProgram(j.RExpr, j.Leaves); err != nil {
				return fmt.Errorf("job %d %s: right prologue: %w", j.ID, j.Name, err)
			}
			if j.LProg.NeedsMM || j.RProg.NeedsMM {
				return fmt.Errorf("job %d %s: prologue references %s", j.ID, j.Name, MMVar)
			}
			if j.Epilogue != nil {
				if j.EpiProg, err = CompileTileProgram(j.Epilogue, j.Leaves); err != nil {
					return fmt.Errorf("job %d %s: epilogue: %w", j.ID, j.Name, err)
				}
				if !j.EpiProg.NeedsMM {
					return fmt.Errorf("job %d %s: epilogue never references %s", j.ID, j.Name, MMVar)
				}
			}
		}
	}
	return nil
}
