package plan

import (
	"testing"

	"cumulon/internal/lang"
)

func TestTaskProfilesShapes(t *testing.T) {
	pl := compileSrc(t, `
input A 33 29
input B 29 17
C = A * B
output C
`, Config{TileSize: 4})
	j := pl.Jobs[0]
	j.Split = Split{CI: 3, CJ: 2, CK: 2}
	phases := TaskProfiles(j)
	if len(phases) != 2 {
		t.Fatalf("ck=2 should produce 2 phases, got %d", len(phases))
	}
	if len(phases[0]) != 3*2*2 || len(phases[1]) != 3*2 {
		t.Fatalf("phase task counts: %d, %d", len(phases[0]), len(phases[1]))
	}
	for pi, phase := range phases {
		for ti, w := range phase {
			if w.Flops <= 0 || w.ReadBytes <= 0 || w.WriteBytes <= 0 {
				t.Fatalf("phase %d task %d has non-positive work: %+v", pi, ti, w)
			}
		}
	}
}

// The load-bearing property: the planner's per-task work profiles must
// aggregate to exactly what EstimateJob reports for flops, and the same
// totals the virtual engine accounts (checked cross-package in sim); here
// we verify internal consistency across splits, including fringe grids.
func TestTaskProfilesAggregateToEstimates(t *testing.T) {
	srcs := []string{
		"input A 33 29\ninput B 29 17\nC = A * B\noutput C",
		"input A 30 30\nB = abs(A .* A) + A\noutput B",
		"input H 5 30\ninput W 40 5\ninput V 40 30\nH = H .* (W' * V)\noutput H",
		"input V 30 30 sparse\ninput H 30 6\nX = V * H\noutput X",
	}
	for _, src := range srcs {
		pl := compileSrc(t, src, Config{TileSize: 4, Densities: map[string]float64{"V": 0.25}})
		for _, split := range []Split{{1, 1, 1}, {2, 3, 1}, {3, 2, 2}} {
			for _, j := range pl.Jobs {
				s := split
				if j.Kind != MulKind || j.MaskLeaf != "" {
					s.CK = 1
				}
				if s.CI > j.ITiles() {
					s.CI = j.ITiles()
				}
				if s.CJ > j.JTiles() {
					s.CJ = j.JTiles()
				}
				if s.CK > j.KTiles() {
					s.CK = j.KTiles()
				}
				j.Split = s
				var flops, write int64
				for _, phase := range TaskProfiles(j) {
					for _, w := range phase {
						flops += w.Flops
						write += w.WriteBytes
					}
				}
				est := EstimateJob(j)
				// Flop totals agree within integer-division slack of the
				// estimator (which averages per task).
				if diff := flops - est.TotalFlops; diff < -int64(est.Phases[0].Tasks) || diff > int64(est.Phases[0].Tasks)*8 {
					t.Fatalf("%s split %v: profile flops %d vs estimate %d", j, s, flops, est.TotalFlops)
				}
				if write <= 0 {
					t.Fatalf("%s split %v: no write bytes", j, s)
				}
			}
		}
	}
}

func TestPlanAccessors(t *testing.T) {
	pl := compileSrc(t, `
input A 8 8
B = (A * A) .* A
output B
`, Config{})
	if pl.JobByID(0) == nil || pl.JobByID(99) != nil {
		t.Fatal("JobByID broken")
	}
	if pl.TotalTiles() <= 0 {
		t.Fatal("TotalTiles broken")
	}
	if pl.String() == "" || pl.Jobs[0].String() == "" {
		t.Fatal("String broken")
	}
	for _, j := range pl.Jobs {
		metas := j.InputMetas()
		if len(metas) == 0 {
			t.Fatalf("job %d has no input metas", j.ID)
		}
		for i := 1; i < len(metas); i++ {
			if metas[i].Name <= metas[i-1].Name {
				t.Fatal("InputMetas not sorted")
			}
		}
	}
	// LeafRef.Shape covers both orientations.
	j := pl.Jobs[0]
	for _, ref := range j.Leaves {
		r, c := ref.Shape()
		if r <= 0 || c <= 0 {
			t.Fatal("leaf shape broken")
		}
	}
}

func TestSplitValidateErrors(t *testing.T) {
	cases := []struct {
		s    Split
		kind JobKind
	}{
		{Split{0, 1, 1}, MapKind},
		{Split{5, 1, 1}, MapKind},  // exceeds grid
		{Split{1, 1, 2}, MapKind},  // map with ck
		{Split{1, 1, 99}, MulKind}, // exceeds k tiles
	}
	for i, c := range cases {
		if err := c.s.Validate(4, 4, 4, c.kind); err == nil {
			t.Errorf("case %d: split %v should be invalid", i, c.s)
		}
	}
	if err := (Split{2, 2, 2}).Validate(4, 4, 4, MulKind); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateMapJob(t *testing.T) {
	pl := compileSrc(t, `
input A 16 16
input B 16 16
C = A .* B + A
output C
`, Config{TileSize: 4})
	j := pl.Jobs[0]
	j.Split = Split{CI: 2, CJ: 2, CK: 1}
	st := EstimateJob(j)
	if len(st.Phases) != 1 || st.Phases[0].Tasks != 4 {
		t.Fatalf("map estimate phases: %+v", st)
	}
	// Two element-wise ops over 256 elements.
	if st.TotalFlops != 2*16*16 {
		t.Fatalf("map flops: %d", st.TotalFlops)
	}
	if st.TotalReadBytes <= 0 || st.TotalWriteBytes <= 0 {
		t.Fatalf("map io: %+v", st)
	}
}

func TestChainFlopsThroughMask(t *testing.T) {
	env := map[string]lang.Shape{
		"V": {Rows: 8, Cols: 8, Sparse: true},
		"W": {Rows: 8, Cols: 2},
		"H": {Rows: 2, Cols: 8},
	}
	e, err := lang.ParseExpr("mask(V, W * H)")
	if err != nil {
		t.Fatal(err)
	}
	flops, err := ChainFlops(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if flops != 2*8*2*8 {
		t.Fatalf("mask chain flops: %d", flops)
	}
}
