package plan

import (
	"strings"
	"testing"

	"cumulon/internal/lang"
	"cumulon/internal/testutil"
)

func compileSrc(t *testing.T, src string, cfg Config) *Plan {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TileSize == 0 {
		cfg.TileSize = 4
	}
	pl, err := Compile(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestCompileBareMatMul(t *testing.T) {
	pl := compileSrc(t, `
input A 10 6
input B 6 8
C = A * B
output C
`, Config{})
	if len(pl.Jobs) != 1 {
		t.Fatalf("want 1 job, got %d:\n%s", len(pl.Jobs), pl)
	}
	j := pl.Jobs[0]
	if j.Kind != MulKind || j.Epilogue != nil {
		t.Fatalf("want bare mul job: %+v", j)
	}
	if j.KSize != 6 {
		t.Fatalf("ksize: %d", j.KSize)
	}
	if j.Out.Rows != 10 || j.Out.Cols != 8 {
		t.Fatalf("out shape: %dx%d", j.Out.Rows, j.Out.Cols)
	}
	if pl.Outputs["C"].Name != j.Out.Name {
		t.Fatalf("output binding: %v", pl.Outputs)
	}
}

func TestCompileEpilogueFusion(t *testing.T) {
	// One matmul under element-wise operators fuses into a single job.
	pl := compileSrc(t, `
input H 5 30
input W 40 5
input V 40 30
H = H .* (W' * V)
output H
`, Config{})
	if len(pl.Jobs) != 1 {
		t.Fatalf("want 1 fused job, got %d:\n%s", len(pl.Jobs), pl)
	}
	j := pl.Jobs[0]
	if j.Kind != MulKind {
		t.Fatalf("want mul job, got %s", j.Kind)
	}
	if j.Epilogue == nil {
		t.Fatal("epilogue not fused")
	}
	if !strings.Contains(j.Epilogue.String(), MMVar) {
		t.Fatalf("epilogue %s lacks %s", j.Epilogue, MMVar)
	}
	// The left prologue reads W transposed without a transpose job.
	lref, ok := bareLeaf(j.LExpr, j.Leaves)
	if !ok || !lref.Transposed || lref.Meta.Name != "W" {
		t.Fatalf("left prologue: %s leaves %v", j.LExpr, j.Leaves)
	}
}

func TestCompileTwoMatMulsMaterialize(t *testing.T) {
	// Two products under one element-wise tree: each materializes, plus a
	// combining map job.
	pl := compileSrc(t, `
input A 6 6
input B 6 6
C = (A * B) .* (B * A)
output C
`, Config{})
	if len(pl.Jobs) != 3 {
		t.Fatalf("want 3 jobs, got %d:\n%s", len(pl.Jobs), pl)
	}
	kinds := map[JobKind]int{}
	for _, j := range pl.Jobs {
		kinds[j.Kind]++
	}
	if kinds[MulKind] != 2 || kinds[MapKind] != 1 {
		t.Fatalf("kinds: %v", kinds)
	}
	final := pl.Jobs[2]
	if final.Kind != MapKind || len(final.Deps) != 2 {
		t.Fatalf("final job: %+v", final)
	}
}

func TestCompileNestedMatMul(t *testing.T) {
	// W * (H * H'): inner product materializes, outer is a mul job.
	pl := compileSrc(t, `
input W 40 5
input H 5 30
X = W * (H * H')
output X
`, Config{})
	if len(pl.Jobs) != 2 {
		t.Fatalf("want 2 jobs, got %d:\n%s", len(pl.Jobs), pl)
	}
	inner, outer := pl.Jobs[0], pl.Jobs[1]
	if inner.Kind != MulKind || outer.Kind != MulKind {
		t.Fatalf("kinds: %s %s", inner.Kind, outer.Kind)
	}
	if inner.Out.Rows != 5 || inner.Out.Cols != 5 {
		t.Fatalf("inner out: %dx%d", inner.Out.Rows, inner.Out.Cols)
	}
	if len(outer.Deps) != 1 || outer.Deps[0] != inner.ID {
		t.Fatalf("outer deps: %v", outer.Deps)
	}
}

func TestCompileIdentityAssignment(t *testing.T) {
	pl := compileSrc(t, `
input A 7 7
B = A
output B
`, Config{})
	if len(pl.Jobs) != 1 || pl.Jobs[0].Kind != MapKind {
		t.Fatalf("plan: %s", pl)
	}
}

func TestCompileVersioning(t *testing.T) {
	pl := compileSrc(t, `
input A 4 4
X = A
X = X .* X
X = X .* X
output X
`, Config{})
	if len(pl.Jobs) != 3 {
		t.Fatalf("want 3 jobs:\n%s", pl)
	}
	names := map[string]bool{}
	for _, j := range pl.Jobs {
		if names[j.Out.Name] {
			t.Fatalf("duplicate output matrix name %s", j.Out.Name)
		}
		names[j.Out.Name] = true
	}
	if pl.Outputs["X"].Name != "X#3" {
		t.Fatalf("final version: %s", pl.Outputs["X"].Name)
	}
	// Each reassignment depends on the previous version.
	if len(pl.Jobs[2].Deps) != 1 || pl.Jobs[2].Deps[0] != 1 {
		t.Fatalf("version deps: %v", pl.Jobs[2].Deps)
	}
}

func TestCompileSparseInput(t *testing.T) {
	pl := compileSrc(t, `
input V 30 30 sparse
input H 30 5
X = V * H
output X
`, Config{Densities: map[string]float64{"V": 0.05}})
	j := pl.Jobs[0]
	ref, ok := bareLeaf(j.LExpr, j.Leaves)
	if !ok || !ref.Meta.Sparse {
		t.Fatalf("left leaf not sparse: %v", j.Leaves)
	}
	if ref.Meta.EffDensity() != 0.05 {
		t.Fatalf("density: %v", ref.Meta.EffDensity())
	}
	// Sparse matmul estimates far fewer flops than dense.
	st := EstimateJob(j)
	dense := 2 * int64(30) * 30 * 5
	if st.TotalFlops >= dense/2 {
		t.Fatalf("sparse flops %d not discounted vs dense %d", st.TotalFlops, dense)
	}
}

func TestCompileDisableFusion(t *testing.T) {
	src := `
input H 5 30
input W 40 5
input V 40 30
H = H .* (W' * V)
output H
`
	fused := compileSrc(t, src, Config{})
	unfused := compileSrc(t, src, Config{DisableFusion: true})
	if len(unfused.Jobs) <= len(fused.Jobs) {
		t.Fatalf("disabling fusion should add jobs: %d vs %d", len(unfused.Jobs), len(fused.Jobs))
	}
	for _, j := range unfused.Jobs {
		if j.Epilogue != nil {
			t.Fatalf("unfused plan has epilogue: %s", j)
		}
	}
}

func TestCompileDedupLeaves(t *testing.T) {
	pl := compileSrc(t, `
input A 6 6
B = A .* A + A
output B
`, Config{})
	j := pl.Jobs[0]
	if len(j.Leaves) != 1 {
		t.Fatalf("A should bind once, got leaves %v", j.Leaves)
	}
}

func TestCompileRejectsBadPrograms(t *testing.T) {
	p := &lang.Program{
		Inputs:  []lang.Input{{Name: "A", Rows: 2, Cols: 3}},
		Stmts:   []lang.Assign{{Name: "B", Expr: lang.MatMul{L: lang.Var{Name: "A"}, R: lang.Var{Name: "A"}}}},
		Outputs: []string{"B"},
	}
	if _, err := Compile(p, Config{TileSize: 2}); err == nil {
		t.Fatal("want shape error")
	}
	good := &lang.Program{
		Inputs:  []lang.Input{{Name: "A", Rows: 2, Cols: 2}},
		Stmts:   []lang.Assign{{Name: "B", Expr: lang.Var{Name: "A"}}},
		Outputs: []string{"B"},
	}
	if _, err := Compile(good, Config{TileSize: 0}); err == nil {
		t.Fatal("want tile-size error")
	}
}

func TestCompileTopoOrder(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := testutil.NewGen(seed)
		prog := g.Program("rand", 3, 3)
		pl, err := Compile(prog, Config{TileSize: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := pl.TopoOrder(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, pl)
		}
		for _, j := range pl.Jobs {
			for _, d := range j.Deps {
				if d >= j.ID {
					t.Fatalf("seed %d: job %d depends on later job %d", seed, j.ID, d)
				}
			}
		}
	}
}

func TestIntermediates(t *testing.T) {
	pl := compileSrc(t, `
input A 6 6
B = (A * A) .* (A * A')
output B
`, Config{})
	inter := pl.Intermediates()
	if len(inter) != 2 {
		t.Fatalf("want 2 intermediates, got %v", inter)
	}
}

func TestAutoSplit(t *testing.T) {
	pl := compileSrc(t, `
input A 64 64
input B 64 64
C = A * B
output C
`, Config{TileSize: 4})
	pl.AutoSplit(8)
	j := pl.Jobs[0]
	if err := j.Split.Validate(j.ITiles(), j.JTiles(), j.KTiles(), j.Kind); err != nil {
		t.Fatal(err)
	}
	if j.Split.Tasks() < 8 {
		t.Fatalf("too few tasks for 8 slots: %v", j.Split)
	}
	if j.Split.Tasks() > 4*8+16 {
		t.Fatalf("too many tasks: %v", j.Split)
	}
}

func TestAutoSplitSkinnyOutputUsesK(t *testing.T) {
	// Wᵀ·W is r x r (1 tile) with a tall K: parallelism must come from CK.
	pl := compileSrc(t, `
input W 512 4
C = W' * W
output C
`, Config{TileSize: 4})
	pl.AutoSplit(16)
	j := pl.Jobs[0]
	if j.Split.CK <= 1 {
		t.Fatalf("skinny product should split K: %v (ktiles=%d)", j.Split, j.KTiles())
	}
}

func TestSplitCandidates(t *testing.T) {
	pl := compileSrc(t, `
input A 64 64
input B 64 64
C = A * B
output C
`, Config{TileSize: 4})
	j := pl.Jobs[0]
	cands := SplitCandidates(j, 1000)
	if len(cands) < 10 {
		t.Fatalf("too few candidates: %d", len(cands))
	}
	for _, s := range cands {
		if err := s.Validate(j.ITiles(), j.JTiles(), j.KTiles(), j.Kind); err != nil {
			t.Fatalf("candidate %v invalid: %v", s, err)
		}
		if s.Tasks() > 1000 {
			t.Fatalf("candidate %v exceeds task cap", s)
		}
	}
}

func TestEstimateJobMulPhases(t *testing.T) {
	pl := compileSrc(t, `
input A 32 32
input B 32 32
C = A * B
output C
`, Config{TileSize: 4})
	j := pl.Jobs[0]
	j.Split = Split{CI: 2, CJ: 2, CK: 1}
	st1 := EstimateJob(j)
	if len(st1.Phases) != 1 {
		t.Fatalf("ck=1 should be single phase: %+v", st1)
	}
	j.Split = Split{CI: 2, CJ: 2, CK: 2}
	st2 := EstimateJob(j)
	if len(st2.Phases) != 2 {
		t.Fatalf("ck=2 should be two phases: %+v", st2)
	}
	// K-splitting adds aggregation work: total I/O grows.
	if st2.TotalReadBytes+st2.TotalWriteBytes <= st1.TotalReadBytes+st1.TotalWriteBytes {
		t.Fatal("k-split should increase total I/O")
	}
	// Core matmul flops are identical.
	if st1.TotalFlops > st2.TotalFlops {
		t.Fatalf("flops: %d vs %d", st1.TotalFlops, st2.TotalFlops)
	}
}

func TestEstimateJobReplicatedReads(t *testing.T) {
	pl := compileSrc(t, `
input A 32 32
input B 32 32
C = A * B
output C
`, Config{TileSize: 4})
	j := pl.Jobs[0]
	j.Split = Split{CI: 1, CJ: 1, CK: 1}
	one := EstimateJob(j)
	j.Split = Split{CI: 4, CJ: 4, CK: 1}
	wide := EstimateJob(j)
	// Wider splits re-read operands: 4x cj means L read 4 times.
	if wide.TotalReadBytes <= one.TotalReadBytes {
		t.Fatal("wider split should increase input re-reads")
	}
}

func TestEstTaskMemShrinksWithSplit(t *testing.T) {
	pl := compileSrc(t, `
input A 64 64
input B 64 64
C = A * B
output C
`, Config{TileSize: 4})
	j := pl.Jobs[0]
	j.Split = Split{CI: 1, CJ: 1, CK: 1}
	big := EstTaskMemBytes(j)
	j.Split = Split{CI: 4, CJ: 4, CK: 4}
	small := EstTaskMemBytes(j)
	if small >= big {
		t.Fatalf("mem should shrink with finer splits: %d vs %d", small, big)
	}
}

func TestCompileMaskedMultiply(t *testing.T) {
	pl := compileSrc(t, `
input V 40 30 sparse
input W 40 5
input H 5 30
R = mask(V, W * H)
output R
`, Config{Densities: map[string]float64{"V": 0.1}})
	if len(pl.Jobs) != 1 {
		t.Fatalf("want 1 masked job, got %d:\n%s", len(pl.Jobs), pl)
	}
	j := pl.Jobs[0]
	if j.Kind != MulKind || j.MaskLeaf == "" {
		t.Fatalf("not a masked mul job: %+v", j)
	}
	if !j.Leaves[j.MaskLeaf].Meta.Sparse {
		t.Fatal("mask leaf not sparse")
	}
	out := pl.Outputs["R"]
	if !out.Sparse || out.EffDensity() != 0.1 {
		t.Fatalf("masked output meta: %+v", out)
	}
	// Work estimate scales with the pattern density, not the dense product.
	st := EstimateJob(j)
	dense := 2 * int64(40) * 5 * 30
	if st.TotalFlops > dense/4 {
		t.Fatalf("masked flops %d not discounted (dense %d)", st.TotalFlops, dense)
	}
}

func TestCompileMaskRejectsNonRoot(t *testing.T) {
	p, err := lang.Parse(`
input V 10 10 sparse
input W 10 2
input H 2 10
R = V - mask(V, W * H)
output R
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(p, Config{TileSize: 4}); err == nil {
		t.Fatal("nested mask should be rejected")
	}
}

func TestCompileMaskRejectsNonProduct(t *testing.T) {
	p, err := lang.Parse(`
input V 10 10 sparse
input D 10 10
R = mask(V, D .* D)
output R
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(p, Config{TileSize: 4}); err == nil {
		t.Fatal("mask of a non-product should be rejected")
	}
}

func TestMaskedSplitCandidatesNoKSplit(t *testing.T) {
	pl := compileSrc(t, `
input V 64 64 sparse
input W 64 8
input H 8 64
R = mask(V, W * H)
output R
`, Config{TileSize: 4, Densities: map[string]float64{"V": 0.1}})
	j := pl.Jobs[0]
	for _, s := range SplitCandidates(j, 1000) {
		if s.CK != 1 {
			t.Fatalf("masked job offered k-split %v", s)
		}
	}
	pl.AutoSplit(64)
	if j.Split.CK != 1 {
		t.Fatalf("autosplit gave masked job ck=%d", j.Split.CK)
	}
}

func TestToDOT(t *testing.T) {
	pl := compileSrc(t, `
input A 8 8
input B 8 8
C = (A * B) .* (B * A)
output C
`, Config{})
	dot := pl.ToDOT()
	for _, want := range []string{"digraph plan", "m:A", "m:B", "j0", "j1", "j2", "o:C", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Two producers feed the combining job.
	if strings.Count(dot, "-> \"j2\"") != 2 {
		t.Fatalf("combining job should have two in-edges:\n%s", dot)
	}
}
