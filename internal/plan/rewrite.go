package plan

import (
	"fmt"
	"math"

	"cumulon/internal/lang"
)

// Rewrite applies Cumulon's logical rewrites to an expression:
//
//  1. transpose pushdown — transposes are pushed to the variables, using
//     (AB)ᵀ = BᵀAᵀ and the fact that transpose commutes with element-wise
//     operators, so that no transpose ever has to be materialized (the
//     engine reads transposed tiles directly);
//  2. scalar folding — nested scalings collapse into one;
//  3. matrix-chain reordering — maximal products A·B·C·… are re-parenthesized
//     by the classic dynamic program to minimize total flops.
//
// env supplies the shapes of all referenced variables (from
// Program.Validate). Rewrite never changes the value of the expression.
func Rewrite(e lang.Expr, env map[string]lang.Shape) (lang.Expr, error) {
	e = pushTranspose(e, false)
	e = foldScale(e)
	return reorderChains(e, env)
}

// pushTranspose returns an expression equal to e (or eᵀ when t is true)
// in which every Transpose node wraps a Var.
func pushTranspose(e lang.Expr, t bool) lang.Expr {
	switch x := e.(type) {
	case lang.Var:
		if t {
			return lang.Transpose{X: x}
		}
		return x
	case lang.Transpose:
		return pushTranspose(x.X, !t)
	case lang.MatMul:
		if t {
			return lang.MatMul{L: pushTranspose(x.R, true), R: pushTranspose(x.L, true)}
		}
		return lang.MatMul{L: pushTranspose(x.L, false), R: pushTranspose(x.R, false)}
	case lang.Add:
		return lang.Add{L: pushTranspose(x.L, t), R: pushTranspose(x.R, t)}
	case lang.Sub:
		return lang.Sub{L: pushTranspose(x.L, t), R: pushTranspose(x.R, t)}
	case lang.ElemMul:
		return lang.ElemMul{L: pushTranspose(x.L, t), R: pushTranspose(x.R, t)}
	case lang.ElemDiv:
		return lang.ElemDiv{L: pushTranspose(x.L, t), R: pushTranspose(x.R, t)}
	case lang.Scale:
		return lang.Scale{S: x.S, X: pushTranspose(x.X, t)}
	case lang.Apply:
		return lang.Apply{Fn: x.Fn, X: pushTranspose(x.X, t)}
	case lang.Mask:
		// mask(P, X)ᵀ = mask(Pᵀ, Xᵀ): the pattern transposes with the value.
		return lang.Mask{P: pushTranspose(x.P, t), X: pushTranspose(x.X, t)}
	default:
		panic(fmt.Sprintf("plan: pushTranspose: unknown node %T", e))
	}
}

// foldScale collapses Scale(a, Scale(b, X)) into Scale(a*b, X) and removes
// Scale(1, X).
func foldScale(e lang.Expr) lang.Expr {
	switch x := e.(type) {
	case lang.Var:
		return x
	case lang.Transpose:
		return lang.Transpose{X: foldScale(x.X)}
	case lang.MatMul:
		return lang.MatMul{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.Add:
		return lang.Add{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.Sub:
		return lang.Sub{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.ElemMul:
		return lang.ElemMul{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.ElemDiv:
		return lang.ElemDiv{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.Scale:
		inner := foldScale(x.X)
		s := x.S
		for {
			if si, ok := inner.(lang.Scale); ok {
				s *= si.S
				inner = si.X
				continue
			}
			break
		}
		if s == 1 {
			return inner
		}
		return lang.Scale{S: s, X: inner}
	case lang.Apply:
		return lang.Apply{Fn: x.Fn, X: foldScale(x.X)}
	case lang.Mask:
		return lang.Mask{P: foldScale(x.P), X: foldScale(x.X)}
	default:
		panic(fmt.Sprintf("plan: foldScale: unknown node %T", e))
	}
}

// reorderChains rewrites every maximal multiplication chain using the
// optimal matrix-chain-order dynamic program over the operand shapes.
func reorderChains(e lang.Expr, env map[string]lang.Shape) (lang.Expr, error) {
	switch x := e.(type) {
	case lang.Var:
		return x, nil
	case lang.Transpose:
		inner, err := reorderChains(x.X, env)
		if err != nil {
			return nil, err
		}
		return lang.Transpose{X: inner}, nil
	case lang.MatMul:
		factors := collectFactors(e)
		reordered := make([]lang.Expr, len(factors))
		dims := make([]int, 0, len(factors)+1)
		for i, f := range factors {
			rf, err := reorderChains(f, env)
			if err != nil {
				return nil, err
			}
			reordered[i] = rf
			sh, err := lang.InferShape(rf, env)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				dims = append(dims, sh.Rows)
			}
			dims = append(dims, sh.Cols)
		}
		return chainOrder(reordered, dims), nil
	case lang.Add:
		return rebuildBinary(x.L, x.R, env, func(l, r lang.Expr) lang.Expr { return lang.Add{L: l, R: r} })
	case lang.Sub:
		return rebuildBinary(x.L, x.R, env, func(l, r lang.Expr) lang.Expr { return lang.Sub{L: l, R: r} })
	case lang.ElemMul:
		return rebuildBinary(x.L, x.R, env, func(l, r lang.Expr) lang.Expr { return lang.ElemMul{L: l, R: r} })
	case lang.ElemDiv:
		return rebuildBinary(x.L, x.R, env, func(l, r lang.Expr) lang.Expr { return lang.ElemDiv{L: l, R: r} })
	case lang.Scale:
		inner, err := reorderChains(x.X, env)
		if err != nil {
			return nil, err
		}
		return lang.Scale{S: x.S, X: inner}, nil
	case lang.Apply:
		inner, err := reorderChains(x.X, env)
		if err != nil {
			return nil, err
		}
		return lang.Apply{Fn: x.Fn, X: inner}, nil
	case lang.Mask:
		pr, err := reorderChains(x.P, env)
		if err != nil {
			return nil, err
		}
		xr, err := reorderChains(x.X, env)
		if err != nil {
			return nil, err
		}
		return lang.Mask{P: pr, X: xr}, nil
	default:
		return nil, fmt.Errorf("plan: reorderChains: unknown node %T", e)
	}
}

func rebuildBinary(l, r lang.Expr, env map[string]lang.Shape, mk func(l, r lang.Expr) lang.Expr) (lang.Expr, error) {
	lr, err := reorderChains(l, env)
	if err != nil {
		return nil, err
	}
	rr, err := reorderChains(r, env)
	if err != nil {
		return nil, err
	}
	return mk(lr, rr), nil
}

// collectFactors flattens the multiplication spine of e into its ordered
// factor list: MatMul(MatMul(A,B),C) and MatMul(A,MatMul(B,C)) both yield
// [A B C]. Non-MatMul nodes stop the descent.
func collectFactors(e lang.Expr) []lang.Expr {
	if mm, ok := e.(lang.MatMul); ok {
		return append(collectFactors(mm.L), collectFactors(mm.R)...)
	}
	return []lang.Expr{e}
}

// chainOrder builds the optimal product tree over factors with boundary
// dimensions dims (len(factors)+1 entries, factor i is dims[i] x dims[i+1])
// using the O(n^3) matrix-chain dynamic program on 2·m·k·n flop costs.
func chainOrder(factors []lang.Expr, dims []int) lang.Expr {
	n := len(factors)
	if n == 1 {
		return factors[0]
	}
	cost := make([][]float64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			cost[i][j] = math.Inf(1)
			for k := i; k < j; k++ {
				c := cost[i][k] + cost[k+1][j] +
					2*float64(dims[i])*float64(dims[k+1])*float64(dims[j+1])
				if c < cost[i][j] {
					cost[i][j] = c
					split[i][j] = k
				}
			}
		}
	}
	var build func(i, j int) lang.Expr
	build = func(i, j int) lang.Expr {
		if i == j {
			return factors[i]
		}
		k := split[i][j]
		return lang.MatMul{L: build(i, k), R: build(k+1, j)}
	}
	return build(0, n-1)
}

// Cross-statement rewrite pass: common-subexpression elimination and
// loop-invariant hoisting over the unrolled program.
//
// Cumulon programs arrive with iterations unrolled, so a subexpression
// recomputed every iteration (the classic Aᵀ·A of normal-equation
// iterations) appears as many syntactically identical chains whose
// operands carry the same assignment versions. CSE finds maximal
// matrix-product chains whose *version-keyed* canonical form occurs more
// than once across the program, materializes each into a fresh temp
// assigned just before its first use, and rewrites every occurrence to
// read the temp. Keying occurrences by (variable, assignment version at
// the point of use) makes the value equality exact — a chain over
// operands that are never reassigned between two uses has one key, so
// cross-iteration CSE of invariant chains *is* loop-invariant hoisting —
// while any intervening reassignment splits the keys and blocks the
// rewrite. Only matrix-product chains are extracted: products dominate
// cost, and element-wise trees are fused into their consumers anyway, so
// deduplicating them would trade free fused flops for a materialized
// temp's I/O.

// CSEEntry describes one eliminated chain: all occurrences of the chain
// now read the hoisted temp instead of recomputing the product.
type CSEEntry struct {
	// Expr is the canonical text of the eliminated product chain.
	Expr string
	// Temp is the variable the chain was hoisted into.
	Temp string
	// Occurrences is how many uses now share the single evaluation.
	Occurrences int
	// FlopsSaved is (Occurrences-1) × the optimally-ordered chain cost.
	FlopsSaved int64
}

// RewriteReport summarizes what the cross-statement CSE/hoisting pass
// eliminated from a program.
type RewriteReport struct {
	Entries []CSEEntry
}

// Chains returns the number of distinct chains eliminated.
func (r *RewriteReport) Chains() int {
	if r == nil {
		return 0
	}
	return len(r.Entries)
}

// FlopsSaved returns the total flops the pass eliminated.
func (r *RewriteReport) FlopsSaved() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, e := range r.Entries {
		n += e.FlopsSaved
	}
	return n
}

func (r *RewriteReport) String() string {
	if r.Chains() == 0 {
		return "rewrites: none"
	}
	s := fmt.Sprintf("rewrites: %d chain(s) eliminated, %d flops saved\n", r.Chains(), r.FlopsSaved())
	for _, e := range r.Entries {
		s += fmt.Sprintf("  %s = %s  (%d occurrences, %d flops saved)\n",
			e.Temp, e.Expr, e.Occurrences, e.FlopsSaved)
	}
	return s
}

// CSE applies the cross-statement rewrite pass to a validated program,
// returning the rewritten program (a fresh value; the input is never
// mutated) and a report of what was eliminated. When nothing is
// eliminated the input program is returned unchanged with a nil report.
func CSE(p *lang.Program) (*lang.Program, *RewriteReport, error) {
	env, err := p.Validate()
	if err != nil {
		return nil, nil, err
	}

	// Normalize every right-hand side so chain keys are insensitive to
	// transpose placement and scale nesting (lowering re-normalizes, so
	// substituting the normalized forms back is value-preserving).
	norm := make([]lang.Expr, len(p.Stmts))
	for i, st := range p.Stmts {
		norm[i] = foldScale(pushTranspose(st.Expr, false))
	}

	// Pass 1: count version-keyed chain occurrences in program order.
	type chainInfo struct {
		key       string
		expr      lang.Expr // first occurrence, normalized
		count     int
		firstStmt int
	}
	versions := map[string]int{}
	for _, in := range p.Inputs {
		versions[in.Name] = 1
	}
	counts := map[string]*chainInfo{}
	var order []*chainInfo
	for i, st := range p.Stmts {
		if _, masked := norm[i].(lang.Mask); !masked {
			forEachChain(norm[i], func(chain lang.Expr) {
				k := chainKey(chain, versions)
				ci := counts[k]
				if ci == nil {
					ci = &chainInfo{key: k, expr: chain, firstStmt: i}
					counts[k] = ci
					order = append(order, ci)
				}
				ci.count++
			})
		}
		versions[st.Name]++
	}

	var winners []*chainInfo
	for _, ci := range order {
		if ci.count >= 2 {
			winners = append(winners, ci)
		}
	}
	if len(winners) == 0 {
		return p, nil, nil
	}

	// Pass 2: rebuild the statement list, materializing each winning chain
	// into a temp just before its first use and rewriting occurrences.
	temp := map[string]string{} // chain key -> temp variable
	report := &RewriteReport{}
	out := &lang.Program{
		Name:    p.Name,
		Inputs:  append([]lang.Input(nil), p.Inputs...),
		Outputs: append([]string(nil), p.Outputs...),
	}
	versions = map[string]int{}
	for _, in := range p.Inputs {
		versions[in.Name] = 1
	}
	for i, st := range p.Stmts {
		// Checkpoint boundaries keep their position relative to original
		// statements: a boundary after the first i statements lands before
		// any temp hoisted into statement i (the temp is part of that
		// statement's work).
		if p.BoundaryAt(i) {
			out.Boundaries = append(out.Boundaries, len(out.Stmts))
		}
		for _, ci := range winners {
			if ci.firstStmt != i {
				continue
			}
			name := fmt.Sprintf("$cse%d", len(temp)+1)
			temp[ci.key] = name
			// The temp's own body may use earlier temps for chains nested
			// inside its factors, but never for its root (that would bind
			// the temp to itself).
			body := replaceChains(ci.expr, versions, temp, name)
			out.Stmts = append(out.Stmts, lang.Assign{Name: name, Expr: body})
			versions[name]++
			flops, ferr := hoistedChainFlops(ci.expr, env)
			if ferr != nil {
				return nil, nil, ferr
			}
			report.Entries = append(report.Entries, CSEEntry{
				Expr:        ci.expr.String(),
				Temp:        name,
				Occurrences: ci.count,
				FlopsSaved:  int64(ci.count-1) * flops,
			})
		}
		e := norm[i]
		if _, masked := e.(lang.Mask); !masked {
			e = replaceChains(e, versions, temp, "")
		}
		out.Stmts = append(out.Stmts, lang.Assign{Name: st.Name, Expr: e})
		versions[st.Name]++
	}
	if p.BoundaryAt(len(p.Stmts)) {
		out.Boundaries = append(out.Boundaries, len(out.Stmts))
	}
	if _, err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("plan: CSE produced an invalid program: %w", err)
	}
	return out, report, nil
}

// forEachChain visits every maximal matrix-product chain of e in prefix
// order: each MatMul node whose parent is not a MatMul roots one chain,
// and the visit then recurses into the chain's factors (so chains nested
// inside factors are visited too).
func forEachChain(e lang.Expr, f func(chain lang.Expr)) {
	switch x := e.(type) {
	case lang.MatMul:
		f(x)
		for _, fac := range collectFactors(x) {
			forEachChain(fac, f)
		}
	case lang.Add:
		forEachChain(x.L, f)
		forEachChain(x.R, f)
	case lang.Sub:
		forEachChain(x.L, f)
		forEachChain(x.R, f)
	case lang.ElemMul:
		forEachChain(x.L, f)
		forEachChain(x.R, f)
	case lang.ElemDiv:
		forEachChain(x.L, f)
		forEachChain(x.R, f)
	case lang.Scale:
		forEachChain(x.X, f)
	case lang.Apply:
		forEachChain(x.X, f)
	case lang.Transpose:
		forEachChain(x.X, f)
	case lang.Mask:
		forEachChain(x.P, f)
		forEachChain(x.X, f)
	}
}

// chainKey renders the version-keyed canonical form of e. Product chains
// render as their flattened factor sequence, so the key is insensitive to
// parenthesization (the chain-order DP re-parenthesizes freely).
func chainKey(e lang.Expr, versions map[string]int) string {
	switch x := e.(type) {
	case lang.Var:
		return fmt.Sprintf("%s@%d", x.Name, versions[x.Name])
	case lang.Transpose:
		return chainKey(x.X, versions) + "'"
	case lang.MatMul:
		factors := collectFactors(x)
		parts := make([]string, len(factors))
		for i, f := range factors {
			parts[i] = chainKey(f, versions)
		}
		return "mm(" + joinKeys(parts) + ")"
	case lang.Add:
		return "add(" + chainKey(x.L, versions) + "," + chainKey(x.R, versions) + ")"
	case lang.Sub:
		return "sub(" + chainKey(x.L, versions) + "," + chainKey(x.R, versions) + ")"
	case lang.ElemMul:
		return "emul(" + chainKey(x.L, versions) + "," + chainKey(x.R, versions) + ")"
	case lang.ElemDiv:
		return "ediv(" + chainKey(x.L, versions) + "," + chainKey(x.R, versions) + ")"
	case lang.Scale:
		return fmt.Sprintf("scale(%g,%s)", x.S, chainKey(x.X, versions))
	case lang.Apply:
		return x.Fn + "(" + chainKey(x.X, versions) + ")"
	case lang.Mask:
		return "mask(" + chainKey(x.P, versions) + "," + chainKey(x.X, versions) + ")"
	default:
		return fmt.Sprintf("?%T", e)
	}
}

func joinKeys(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += ","
		}
		s += p
	}
	return s
}

// replaceChains rewrites every maximal chain of e whose key has a temp
// binding into a reference to that temp, leaving everything else intact.
// skipTemp names a temp whose own defining body is being rewritten: its
// root chain must not be replaced by itself.
func replaceChains(e lang.Expr, versions map[string]int, temp map[string]string, skipTemp string) lang.Expr {
	switch x := e.(type) {
	case lang.Var:
		return x
	case lang.Transpose:
		return lang.Transpose{X: replaceChains(x.X, versions, temp, skipTemp)}
	case lang.MatMul:
		if name, ok := temp[chainKey(x, versions)]; ok && name != skipTemp {
			return lang.Var{Name: name}
		}
		// Not replaced at this root: rebuild the spine without key-testing
		// its sub-products (fragments of one chain must not bind to temps
		// of shorter chains — that would fence the chain-order DP), and
		// recurse into the factors, whose own nested chains are distinct.
		return rebuildSpine(x, versions, temp)
	case lang.Add:
		return lang.Add{L: replaceChains(x.L, versions, temp, skipTemp), R: replaceChains(x.R, versions, temp, skipTemp)}
	case lang.Sub:
		return lang.Sub{L: replaceChains(x.L, versions, temp, skipTemp), R: replaceChains(x.R, versions, temp, skipTemp)}
	case lang.ElemMul:
		return lang.ElemMul{L: replaceChains(x.L, versions, temp, skipTemp), R: replaceChains(x.R, versions, temp, skipTemp)}
	case lang.ElemDiv:
		return lang.ElemDiv{L: replaceChains(x.L, versions, temp, skipTemp), R: replaceChains(x.R, versions, temp, skipTemp)}
	case lang.Scale:
		return lang.Scale{S: x.S, X: replaceChains(x.X, versions, temp, skipTemp)}
	case lang.Apply:
		return lang.Apply{Fn: x.Fn, X: replaceChains(x.X, versions, temp, skipTemp)}
	case lang.Mask:
		return lang.Mask{P: replaceChains(x.P, versions, temp, skipTemp), X: replaceChains(x.X, versions, temp, skipTemp)}
	default:
		return e
	}
}

// rebuildSpine walks a product spine preserving its parenthesization,
// replacing chains only inside the spine's factors.
func rebuildSpine(x lang.MatMul, versions map[string]int, temp map[string]string) lang.Expr {
	side := func(e lang.Expr) lang.Expr {
		if m, ok := e.(lang.MatMul); ok {
			return rebuildSpine(m, versions, temp)
		}
		return replaceChains(e, versions, temp, "")
	}
	return lang.MatMul{L: side(x.L), R: side(x.R)}
}

// hoistedChainFlops estimates the optimally-ordered evaluation cost of a
// product chain (what one occurrence costs, and so what each eliminated
// occurrence saves).
func hoistedChainFlops(chain lang.Expr, env map[string]lang.Shape) (int64, error) {
	re, err := reorderChains(chain, env)
	if err != nil {
		return 0, err
	}
	return ChainFlops(re, env)
}

// ChainFlops returns the flop cost of evaluating all matrix products in e
// as parenthesized, given variable shapes. It is used by tests to verify
// that reordering never increases cost, and by the experiment harness to
// report logical work.
func ChainFlops(e lang.Expr, env map[string]lang.Shape) (int64, error) {
	var total int64
	var walk func(x lang.Expr) (lang.Shape, error)
	walk = func(x lang.Expr) (lang.Shape, error) {
		switch n := x.(type) {
		case lang.MatMul:
			l, err := walk(n.L)
			if err != nil {
				return lang.Shape{}, err
			}
			r, err := walk(n.R)
			if err != nil {
				return lang.Shape{}, err
			}
			total += 2 * int64(l.Rows) * int64(l.Cols) * int64(r.Cols)
			return lang.Shape{Rows: l.Rows, Cols: r.Cols}, nil
		case lang.Transpose:
			s, err := walk(n.X)
			if err != nil {
				return lang.Shape{}, err
			}
			return lang.Shape{Rows: s.Cols, Cols: s.Rows}, nil
		case lang.Scale:
			return walk(n.X)
		case lang.Apply:
			return walk(n.X)
		case lang.Add:
			if _, err := walk(n.L); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.R)
		case lang.Sub:
			if _, err := walk(n.L); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.R)
		case lang.ElemMul:
			if _, err := walk(n.L); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.R)
		case lang.ElemDiv:
			if _, err := walk(n.L); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.R)
		case lang.Mask:
			if _, err := walk(n.P); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.X)
		case lang.Var:
			sh, ok := env[n.Name]
			if !ok {
				return lang.Shape{}, fmt.Errorf("plan: unknown variable %s", n.Name)
			}
			return sh, nil
		default:
			return lang.Shape{}, fmt.Errorf("plan: ChainFlops: unknown node %T", x)
		}
	}
	if _, err := walk(e); err != nil {
		return 0, err
	}
	return total, nil
}
