package plan

import (
	"fmt"
	"math"

	"cumulon/internal/lang"
)

// Rewrite applies Cumulon's logical rewrites to an expression:
//
//  1. transpose pushdown — transposes are pushed to the variables, using
//     (AB)ᵀ = BᵀAᵀ and the fact that transpose commutes with element-wise
//     operators, so that no transpose ever has to be materialized (the
//     engine reads transposed tiles directly);
//  2. scalar folding — nested scalings collapse into one;
//  3. matrix-chain reordering — maximal products A·B·C·… are re-parenthesized
//     by the classic dynamic program to minimize total flops.
//
// env supplies the shapes of all referenced variables (from
// Program.Validate). Rewrite never changes the value of the expression.
func Rewrite(e lang.Expr, env map[string]lang.Shape) (lang.Expr, error) {
	e = pushTranspose(e, false)
	e = foldScale(e)
	return reorderChains(e, env)
}

// pushTranspose returns an expression equal to e (or eᵀ when t is true)
// in which every Transpose node wraps a Var.
func pushTranspose(e lang.Expr, t bool) lang.Expr {
	switch x := e.(type) {
	case lang.Var:
		if t {
			return lang.Transpose{X: x}
		}
		return x
	case lang.Transpose:
		return pushTranspose(x.X, !t)
	case lang.MatMul:
		if t {
			return lang.MatMul{L: pushTranspose(x.R, true), R: pushTranspose(x.L, true)}
		}
		return lang.MatMul{L: pushTranspose(x.L, false), R: pushTranspose(x.R, false)}
	case lang.Add:
		return lang.Add{L: pushTranspose(x.L, t), R: pushTranspose(x.R, t)}
	case lang.Sub:
		return lang.Sub{L: pushTranspose(x.L, t), R: pushTranspose(x.R, t)}
	case lang.ElemMul:
		return lang.ElemMul{L: pushTranspose(x.L, t), R: pushTranspose(x.R, t)}
	case lang.ElemDiv:
		return lang.ElemDiv{L: pushTranspose(x.L, t), R: pushTranspose(x.R, t)}
	case lang.Scale:
		return lang.Scale{S: x.S, X: pushTranspose(x.X, t)}
	case lang.Apply:
		return lang.Apply{Fn: x.Fn, X: pushTranspose(x.X, t)}
	case lang.Mask:
		// mask(P, X)ᵀ = mask(Pᵀ, Xᵀ): the pattern transposes with the value.
		return lang.Mask{P: pushTranspose(x.P, t), X: pushTranspose(x.X, t)}
	default:
		panic(fmt.Sprintf("plan: pushTranspose: unknown node %T", e))
	}
}

// foldScale collapses Scale(a, Scale(b, X)) into Scale(a*b, X) and removes
// Scale(1, X).
func foldScale(e lang.Expr) lang.Expr {
	switch x := e.(type) {
	case lang.Var:
		return x
	case lang.Transpose:
		return lang.Transpose{X: foldScale(x.X)}
	case lang.MatMul:
		return lang.MatMul{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.Add:
		return lang.Add{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.Sub:
		return lang.Sub{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.ElemMul:
		return lang.ElemMul{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.ElemDiv:
		return lang.ElemDiv{L: foldScale(x.L), R: foldScale(x.R)}
	case lang.Scale:
		inner := foldScale(x.X)
		s := x.S
		for {
			if si, ok := inner.(lang.Scale); ok {
				s *= si.S
				inner = si.X
				continue
			}
			break
		}
		if s == 1 {
			return inner
		}
		return lang.Scale{S: s, X: inner}
	case lang.Apply:
		return lang.Apply{Fn: x.Fn, X: foldScale(x.X)}
	case lang.Mask:
		return lang.Mask{P: foldScale(x.P), X: foldScale(x.X)}
	default:
		panic(fmt.Sprintf("plan: foldScale: unknown node %T", e))
	}
}

// reorderChains rewrites every maximal multiplication chain using the
// optimal matrix-chain-order dynamic program over the operand shapes.
func reorderChains(e lang.Expr, env map[string]lang.Shape) (lang.Expr, error) {
	switch x := e.(type) {
	case lang.Var:
		return x, nil
	case lang.Transpose:
		inner, err := reorderChains(x.X, env)
		if err != nil {
			return nil, err
		}
		return lang.Transpose{X: inner}, nil
	case lang.MatMul:
		factors := collectFactors(e)
		reordered := make([]lang.Expr, len(factors))
		dims := make([]int, 0, len(factors)+1)
		for i, f := range factors {
			rf, err := reorderChains(f, env)
			if err != nil {
				return nil, err
			}
			reordered[i] = rf
			sh, err := lang.InferShape(rf, env)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				dims = append(dims, sh.Rows)
			}
			dims = append(dims, sh.Cols)
		}
		return chainOrder(reordered, dims), nil
	case lang.Add:
		return rebuildBinary(x.L, x.R, env, func(l, r lang.Expr) lang.Expr { return lang.Add{L: l, R: r} })
	case lang.Sub:
		return rebuildBinary(x.L, x.R, env, func(l, r lang.Expr) lang.Expr { return lang.Sub{L: l, R: r} })
	case lang.ElemMul:
		return rebuildBinary(x.L, x.R, env, func(l, r lang.Expr) lang.Expr { return lang.ElemMul{L: l, R: r} })
	case lang.ElemDiv:
		return rebuildBinary(x.L, x.R, env, func(l, r lang.Expr) lang.Expr { return lang.ElemDiv{L: l, R: r} })
	case lang.Scale:
		inner, err := reorderChains(x.X, env)
		if err != nil {
			return nil, err
		}
		return lang.Scale{S: x.S, X: inner}, nil
	case lang.Apply:
		inner, err := reorderChains(x.X, env)
		if err != nil {
			return nil, err
		}
		return lang.Apply{Fn: x.Fn, X: inner}, nil
	case lang.Mask:
		pr, err := reorderChains(x.P, env)
		if err != nil {
			return nil, err
		}
		xr, err := reorderChains(x.X, env)
		if err != nil {
			return nil, err
		}
		return lang.Mask{P: pr, X: xr}, nil
	default:
		return nil, fmt.Errorf("plan: reorderChains: unknown node %T", e)
	}
}

func rebuildBinary(l, r lang.Expr, env map[string]lang.Shape, mk func(l, r lang.Expr) lang.Expr) (lang.Expr, error) {
	lr, err := reorderChains(l, env)
	if err != nil {
		return nil, err
	}
	rr, err := reorderChains(r, env)
	if err != nil {
		return nil, err
	}
	return mk(lr, rr), nil
}

// collectFactors flattens the multiplication spine of e into its ordered
// factor list: MatMul(MatMul(A,B),C) and MatMul(A,MatMul(B,C)) both yield
// [A B C]. Non-MatMul nodes stop the descent.
func collectFactors(e lang.Expr) []lang.Expr {
	if mm, ok := e.(lang.MatMul); ok {
		return append(collectFactors(mm.L), collectFactors(mm.R)...)
	}
	return []lang.Expr{e}
}

// chainOrder builds the optimal product tree over factors with boundary
// dimensions dims (len(factors)+1 entries, factor i is dims[i] x dims[i+1])
// using the O(n^3) matrix-chain dynamic program on 2·m·k·n flop costs.
func chainOrder(factors []lang.Expr, dims []int) lang.Expr {
	n := len(factors)
	if n == 1 {
		return factors[0]
	}
	cost := make([][]float64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			cost[i][j] = math.Inf(1)
			for k := i; k < j; k++ {
				c := cost[i][k] + cost[k+1][j] +
					2*float64(dims[i])*float64(dims[k+1])*float64(dims[j+1])
				if c < cost[i][j] {
					cost[i][j] = c
					split[i][j] = k
				}
			}
		}
	}
	var build func(i, j int) lang.Expr
	build = func(i, j int) lang.Expr {
		if i == j {
			return factors[i]
		}
		k := split[i][j]
		return lang.MatMul{L: build(i, k), R: build(k+1, j)}
	}
	return build(0, n-1)
}

// ChainFlops returns the flop cost of evaluating all matrix products in e
// as parenthesized, given variable shapes. It is used by tests to verify
// that reordering never increases cost, and by the experiment harness to
// report logical work.
func ChainFlops(e lang.Expr, env map[string]lang.Shape) (int64, error) {
	var total int64
	var walk func(x lang.Expr) (lang.Shape, error)
	walk = func(x lang.Expr) (lang.Shape, error) {
		switch n := x.(type) {
		case lang.MatMul:
			l, err := walk(n.L)
			if err != nil {
				return lang.Shape{}, err
			}
			r, err := walk(n.R)
			if err != nil {
				return lang.Shape{}, err
			}
			total += 2 * int64(l.Rows) * int64(l.Cols) * int64(r.Cols)
			return lang.Shape{Rows: l.Rows, Cols: r.Cols}, nil
		case lang.Transpose:
			s, err := walk(n.X)
			if err != nil {
				return lang.Shape{}, err
			}
			return lang.Shape{Rows: s.Cols, Cols: s.Rows}, nil
		case lang.Scale:
			return walk(n.X)
		case lang.Apply:
			return walk(n.X)
		case lang.Add:
			if _, err := walk(n.L); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.R)
		case lang.Sub:
			if _, err := walk(n.L); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.R)
		case lang.ElemMul:
			if _, err := walk(n.L); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.R)
		case lang.ElemDiv:
			if _, err := walk(n.L); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.R)
		case lang.Mask:
			if _, err := walk(n.P); err != nil {
				return lang.Shape{}, err
			}
			return walk(n.X)
		case lang.Var:
			sh, ok := env[n.Name]
			if !ok {
				return lang.Shape{}, fmt.Errorf("plan: unknown variable %s", n.Name)
			}
			return sh, nil
		default:
			return lang.Shape{}, fmt.Errorf("plan: ChainFlops: unknown node %T", x)
		}
	}
	if _, err := walk(e); err != nil {
		return 0, err
	}
	return total, nil
}
