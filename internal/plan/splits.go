package plan

import (
	"math"

	"cumulon/internal/lang"
)

// bareLeaf reports whether e is a single (possibly transposed) leaf
// reference and returns its binding.
func bareLeaf(e lang.Expr, leaves map[string]LeafRef) (LeafRef, bool) {
	v, ok := e.(lang.Var)
	if !ok {
		return LeafRef{}, false
	}
	ref, ok := leaves[v.Name]
	return ref, ok
}

// AutoSplit assigns a reasonable split to every job of the plan for a
// cluster with the given total number of task slots. It is the engine's
// default when no optimizer has refined the plan: aim for a few waves of
// tasks per job, keep tasks square-ish, and only split the inner dimension
// when the output grid alone cannot occupy the cluster (the typical case
// for the skinny products of statistical workloads, e.g. Wᵀ·V with few
// columns). The cost-based optimizer in package opt sweeps splits per job
// and will generally improve on this.
func (p *Plan) AutoSplit(totalSlots int) {
	if totalSlots < 1 {
		totalSlots = 1
	}
	for _, j := range p.Jobs {
		j.Split = autoSplitJob(j, totalSlots)
	}
}

func autoSplitJob(j *Job, totalSlots int) Split {
	it, jt := j.ITiles(), j.JTiles()
	target := 3 * totalSlots
	if it*jt < target {
		target = it * jt
	}
	if target < 1 {
		target = 1
	}
	ci, cj := factorGrid(it, jt, target)
	s := Split{CI: ci, CJ: cj, CK: 1}
	if j.Kind == MulKind && j.MaskLeaf == "" {
		kt := j.KTiles()
		// If the output grid cannot comfortably fill the cluster, recover
		// parallelism along K at the price of an aggregation pass.
		if ci*cj < 2*totalSlots && kt > 1 {
			ck := ceilDiv(2*totalSlots, ci*cj)
			if ck > kt {
				ck = kt
			}
			s.CK = ck
		}
	}
	return s
}

// factorGrid picks (ci, cj) with ci <= it, cj <= jt and ci*cj close to
// target, shaped like the tile grid so task chunks stay square-ish.
func factorGrid(it, jt, target int) (int, int) {
	if target >= it*jt {
		return it, jt
	}
	// Ideal real-valued solution: ci/cj = it/jt, ci*cj = target.
	ci := int(math.Round(math.Sqrt(float64(target) * float64(it) / float64(jt))))
	if ci < 1 {
		ci = 1
	}
	if ci > it {
		ci = it
	}
	cj := ceilDiv(target, ci)
	if cj < 1 {
		cj = 1
	}
	if cj > jt {
		cj = jt
		ci = ceilDiv(target, cj)
		if ci > it {
			ci = it
		}
	}
	return ci, cj
}

// SplitCandidates enumerates the split space for one job, bounded by the
// job's tile grid and a cap on the number of tasks. The optimizer sweeps
// these; engines only ever need one. Factors are powers of two plus the
// grid bounds, which keeps the sweep small while covering the extremes.
func SplitCandidates(j *Job, maxTasks int) []Split {
	var cis, cjs, cks []int
	cis = axisCandidates(j.ITiles())
	cjs = axisCandidates(j.JTiles())
	if j.Kind == MulKind && j.MaskLeaf == "" {
		cks = axisCandidates(j.KTiles())
	} else {
		cks = []int{1}
	}
	var out []Split
	for _, ci := range cis {
		for _, cj := range cjs {
			for _, ck := range cks {
				s := Split{CI: ci, CJ: cj, CK: ck}
				if s.Tasks() <= maxTasks {
					out = append(out, s)
				}
			}
		}
	}
	return out
}

func axisCandidates(n int) []int {
	var out []int
	for v := 1; v < n; v *= 2 {
		out = append(out, v)
	}
	out = append(out, n)
	return out
}
