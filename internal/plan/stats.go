package plan

import (
	"cumulon/internal/lang"
)

// PhaseStats describes one scheduling phase of a job: a set of tasks with
// (average) per-task work. Mul jobs with ck > 1 have two phases — the
// multiply tasks producing partial results, then the aggregation tasks
// summing them; all other jobs have one.
type PhaseStats struct {
	Tasks            int
	FlopsPerTask     int64
	ReadBytesPerTask int64
	// WriteBytesPerTask counts logical output bytes; replication traffic
	// is layered on by the engine/cost model, which knows the DFS factor.
	WriteBytesPerTask int64
}

// JobStats aggregates the estimated work of a job under its current split.
type JobStats struct {
	Phases          []PhaseStats
	TotalFlops      int64
	TotalReadBytes  int64
	TotalWriteBytes int64
}

// EstimateJob computes the work profile of a job under its current split.
// The same estimates drive the virtual clock of the execution engine and
// the predictions of the optimizer's simulator, so prediction error comes
// only from the fitted task-time models and scheduling nondeterminism —
// mirroring how the paper's models are calibrated against a real engine.
func EstimateJob(j *Job) JobStats {
	switch j.Kind {
	case MulKind:
		return estimateMul(j)
	default:
		return estimateMap(j)
	}
}

func estimateMap(j *Job) JobStats {
	tasks := j.Split.CI * j.Split.CJ
	elems := int64(j.Out.Rows) * int64(j.Out.Cols)
	flops := int64(countOps(j.Expr)) * elems
	var read int64
	for _, name := range lang.FreeVars(j.Expr) {
		read += j.Leaves[name].Meta.EstBytes()
	}
	write := j.Out.EstBytes()
	return singlePhase(tasks, flops, read, write)
}

func estimateMul(j *Job) JobStats {
	ci, cj, ck := j.Split.CI, j.Split.CJ, j.Split.CK
	m, n, k := int64(j.Out.Rows), int64(j.Out.Cols), int64(j.KSize)

	// Core product flops; a bare sparse left operand uses the sparse
	// kernel whose work scales with the nonzero count, and a masked
	// multiply computes only at the pattern's stored positions.
	coreFlops := 2 * m * k * n
	if ref, ok := bareLeaf(j.LExpr, j.Leaves); ok && ref.Meta.Sparse {
		coreFlops = int64(2 * ref.Meta.EffDensity() * float64(m) * float64(k) * float64(n))
	}
	if maskRef, ok := j.Leaves[j.MaskLeaf]; ok {
		coreFlops = int64(2 * maskRef.Meta.EffDensity() * float64(m) * float64(k) * float64(n))
	}
	// Prologue element-wise work applies to every (chunk-replicated) read
	// of the operands.
	lOps, rOps := int64(countOps(j.LExpr)), int64(countOps(j.RExpr))
	prologueFlops := lOps*m*k*int64(cj) + rOps*k*n*int64(ci)

	var lBytes, rBytes int64
	for _, name := range lang.FreeVars(j.LExpr) {
		lBytes += j.Leaves[name].Meta.EstBytes()
	}
	for _, name := range lang.FreeVars(j.RExpr) {
		rBytes += j.Leaves[name].Meta.EstBytes()
	}
	var epiBytes int64
	var epiOps int64
	if j.Epilogue != nil {
		epiOps = int64(countOps(j.Epilogue))
		for _, name := range lang.FreeVars(j.Epilogue) {
			if name == MMVar {
				continue
			}
			epiBytes += j.Leaves[name].Meta.EstBytes()
		}
	}

	outBytes := j.Out.EstBytes()
	phase1Tasks := ci * cj * ck
	read1 := int64(cj)*lBytes + int64(ci)*rBytes

	if ck == 1 {
		flops := coreFlops + prologueFlops + epiOps*m*n
		read := read1 + epiBytes
		return singlePhase(phase1Tasks, flops, read, outBytes)
	}

	// Partial-result path: phase 1 writes ck dense partials, phase 2 sums
	// them (ck-1 adds per element) and applies the epilogue.
	partialBytes := int64(ck) * (m*n*8 + 16*int64(j.ITiles())*int64(j.JTiles()))
	st := JobStats{}
	st.addPhase(phase1Tasks, coreFlops+prologueFlops, read1, partialBytes)
	aggTasks := ci * cj
	aggFlops := (int64(ck)-1)*m*n + epiOps*m*n
	st.addPhase(aggTasks, aggFlops, partialBytes+epiBytes, outBytes)
	return st
}

func singlePhase(tasks int, flops, read, write int64) JobStats {
	st := JobStats{}
	st.addPhase(tasks, flops, read, write)
	return st
}

func (st *JobStats) addPhase(tasks int, flops, read, write int64) {
	if tasks < 1 {
		tasks = 1
	}
	st.Phases = append(st.Phases, PhaseStats{
		Tasks:             tasks,
		FlopsPerTask:      flops / int64(tasks),
		ReadBytesPerTask:  read / int64(tasks),
		WriteBytesPerTask: write / int64(tasks),
	})
	st.TotalFlops += flops
	st.TotalReadBytes += read
	st.TotalWriteBytes += write
}

// EstTaskMemBytes estimates the peak per-task memory of a job under its
// split: the input chunks plus the output chunk a task holds at once. The
// optimizer uses it to reject splits that overflow the machine's per-slot
// memory.
func EstTaskMemBytes(j *Job) int64 {
	ts := int64(j.Out.TileSize)
	tileBytes := ts * ts * 8
	ib := int64(ceilDiv(j.ITiles(), j.Split.CI))
	jb := int64(ceilDiv(j.JTiles(), j.Split.CJ))
	if j.Kind == MulKind {
		kb := int64(ceilDiv(j.KTiles(), j.Split.CK))
		// One L tile row-strip, one R tile column-strip, and the output
		// chunk are resident; prologue/epilogue tiles are transient.
		return (ib*kb + kb*jb + ib*jb) * tileBytes
	}
	leaves := int64(len(lang.FreeVars(j.Expr)))
	return (leaves + 1) * ib * jb * tileBytes
}

// countOps counts element-wise operator applications in an expression
// (one per element per operator node); leaves count zero.
func countOps(e lang.Expr) int {
	if e == nil {
		return 0
	}
	n := 0
	lang.Walk(e, func(x lang.Expr) {
		switch x.(type) {
		case lang.Add, lang.Sub, lang.ElemMul, lang.ElemDiv, lang.Scale, lang.Apply:
			n++
		}
	})
	return n
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
