// Package plan lowers Cumulon programs (package lang) into executable
// physical plans: DAGs of jobs over tiled matrices.
//
// The execution model is the paper's: every job is a *map-only,
// multi-input* job. A task reads exactly the tiles it needs from any
// number of stored matrices and writes output tiles straight back to the
// DFS — there is no shuffle, sort or reduce phase. Two job kinds exist:
//
//   - Map jobs evaluate a fused tree of element-wise operators (add, sub,
//     Hadamard product/division, scaling, scalar functions, transposed
//     reads) tile-by-tile over any number of inputs.
//
//   - Mul jobs compute a tiled matrix product C = prologueL(A) ×
//     prologueR(B) with an optional fused element-wise epilogue that may
//     reference additional input matrices at the output coordinates. The
//     product is parallelized by a split (ci, cj, ck) of the tile-space
//     cube; ck > 1 trades redundant input reads for a subsequent
//     aggregation pass over partial results (Cumulon's replacement for the
//     MapReduce shuffle).
//
// Logical rewrites (transpose pushdown, scalar folding, matrix-chain
// reordering) run before job cutting; see rewrite.go. Job cutting and
// operator fusion live in lower.go.
package plan

import (
	"fmt"
	"sort"

	"cumulon/internal/lang"
	"cumulon/internal/store"
)

// MMVar is the reserved leaf name that an epilogue expression uses to
// refer to the matrix-product result inside a Mul job.
const MMVar = "$mm"

// JobKind distinguishes the two physical job templates.
type JobKind int

const (
	// MapKind is a fused element-wise job.
	MapKind JobKind = iota
	// MulKind is a tiled matrix-multiply job with fused prologues/epilogue.
	MulKind
)

func (k JobKind) String() string {
	if k == MulKind {
		return "mul"
	}
	return "map"
}

// LeafRef identifies one stored-matrix input of a job. Transposed leaves
// are read through Cumulon's transposed access path: tile (i, j) of Aᵀ is
// the in-memory transpose of tile (j, i) of A, so no transpose job is ever
// materialized.
type LeafRef struct {
	Meta       store.Meta
	Transposed bool
}

// Shape returns the logical shape of the leaf as seen by the job.
func (l LeafRef) Shape() (rows, cols int) {
	if l.Transposed {
		return l.Meta.Cols, l.Meta.Rows
	}
	return l.Meta.Rows, l.Meta.Cols
}

// Split describes how a job's work is partitioned into tasks. For a Mul
// job computing an (I × J × K)-tile product cube, the cube is cut into
// CI × CJ × CK chunks, one task each. For a Map job over an (I × J) output
// tile grid, only CI and CJ apply (CK must be 1).
type Split struct {
	CI, CJ, CK int
}

// Tasks returns the number of tasks the split induces.
func (s Split) Tasks() int { return s.CI * s.CJ * s.CK }

func (s Split) String() string { return fmt.Sprintf("(%d,%d,%d)", s.CI, s.CJ, s.CK) }

// Validate checks the split against a job's tile-grid dimensions.
func (s Split) Validate(iTiles, jTiles, kTiles int, kind JobKind) error {
	if s.CI < 1 || s.CJ < 1 || s.CK < 1 {
		return fmt.Errorf("plan: split %v has non-positive factors", s)
	}
	if s.CI > iTiles || s.CJ > jTiles {
		return fmt.Errorf("plan: split %v exceeds tile grid %dx%d", s, iTiles, jTiles)
	}
	if kind == MapKind && s.CK != 1 {
		return fmt.Errorf("plan: map job split %v must have ck=1", s)
	}
	if kind == MulKind && s.CK > kTiles {
		return fmt.Errorf("plan: split %v exceeds k tiles %d", s, kTiles)
	}
	return nil
}

// Job is one physical job of a plan.
type Job struct {
	ID   int
	Name string // human-readable label, e.g. "s2/H#1:mul"
	Kind JobKind

	// Out is the matrix this job materializes.
	Out store.Meta

	// Leaves binds leaf variable names used in the job's expressions to
	// stored matrices.
	Leaves map[string]LeafRef

	// Expr is the fused element-wise tree of a Map job, over Leaves.
	Expr lang.Expr

	// LExpr and RExpr are the prologue trees of a Mul job, over Leaves;
	// their product is the job's core. Epilogue, if non-nil, is applied to
	// the product tile with MMVar bound to it and any other leaves read at
	// the output coordinates.
	LExpr, RExpr lang.Expr
	Epilogue     lang.Expr

	// Prog is the compiled tape of Expr (Map jobs); LProg and RProg are
	// the compiled prologue tapes and EpiProg the compiled epilogue tape
	// of a Mul job. Compile populates them as a finalize pass; the compute
	// layer executes the tapes in a single fused pass per tile, keeping
	// the tree forms above only for the differential-oracle interpreter
	// and for cost estimation.
	Prog, LProg, RProg, EpiProg *TileProgram

	// MaskLeaf, when non-empty, names the sparse pattern leaf of a masked
	// multiply: the job computes the product only at the pattern's stored
	// positions and writes a sparse output. Masked jobs cannot k-split
	// (partial sparse aggregation is not supported) and carry no epilogue.
	MaskLeaf string

	// Split is the task decomposition; engines and the optimizer may
	// overwrite it before execution.
	Split Split

	// Deps are the job IDs whose outputs this job reads.
	Deps []int

	// KSize is the shared (inner) dimension of a Mul job in elements.
	KSize int
}

// ITiles returns the output tile-grid row count.
func (j *Job) ITiles() int { return j.Out.TileRows() }

// JTiles returns the output tile-grid column count.
func (j *Job) JTiles() int { return j.Out.TileCols() }

// KTiles returns the inner-dimension tile count of a Mul job (1 for Map).
func (j *Job) KTiles() int {
	if j.Kind != MulKind {
		return 1
	}
	return (j.KSize + j.Out.TileSize - 1) / j.Out.TileSize
}

// InputMetas returns the distinct stored matrices the job reads, sorted by
// name for determinism.
func (j *Job) InputMetas() []store.Meta {
	seen := map[string]store.Meta{}
	for _, l := range j.Leaves {
		seen[l.Meta.Name] = l.Meta
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]store.Meta, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

func (j *Job) String() string {
	return fmt.Sprintf("job %d %s [%s] -> %s (%dx%d tiles, split %v)",
		j.ID, j.Name, j.Kind, j.Out.Name, j.ITiles(), j.JTiles(), j.Split)
}

// Plan is a physical plan: a dependency-ordered list of jobs plus the
// bindings of program inputs and outputs to stored matrices.
type Plan struct {
	Program  *lang.Program
	TileSize int
	Jobs     []*Job
	// Inputs lists the stored matrices the program expects to pre-exist.
	Inputs []store.Meta
	// Outputs maps each program output variable to its final stored matrix.
	Outputs map[string]store.Meta
	// Rewrites reports what the cross-statement CSE/hoisting pass removed
	// from the program before lowering (nil when the pass was disabled or
	// found nothing).
	Rewrites *RewriteReport
	// Boundaries are the program's iteration boundaries projected onto
	// the job list, in job order: a checkpoint may be taken after
	// LastJob completes. Empty when the program declares no boundaries.
	Boundaries []Boundary
}

// Boundary is one checkpointable position of a plan: the state after
// the first Stmt statements of the (possibly CSE-rewritten) program,
// reached when job LastJob (and all before it) has completed.
type Boundary struct {
	// Stmt counts completed program statements at the boundary.
	Stmt int
	// LastJob is the highest job ID completed at the boundary.
	LastJob int
}

// LiveAt returns the stored matrices that must exist for execution to
// continue after the boundary job b: outputs of jobs with ID <= b that
// are read by a job with ID > b or are program outputs. It is a pure
// function of the plan, so a resuming engine derives the same set the
// checkpointing engine persisted.
func (p *Plan) LiveAt(b int) []store.Meta {
	needed := map[string]bool{}
	for _, m := range p.Outputs {
		needed[m.Name] = true
	}
	for _, j := range p.Jobs {
		if j.ID <= b {
			continue
		}
		for _, in := range j.InputMetas() {
			needed[in.Name] = true
		}
	}
	var live []store.Meta
	for _, j := range p.Jobs {
		if j.ID <= b && needed[j.Out.Name] {
			live = append(live, j.Out)
		}
	}
	return live
}

// JobByID returns the job with the given id, or nil.
func (p *Plan) JobByID(id int) *Job {
	for _, j := range p.Jobs {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// TopoOrder returns the jobs in a valid execution order (they are emitted
// in dependency order by construction; this verifies and returns them).
func (p *Plan) TopoOrder() ([]*Job, error) {
	done := map[int]bool{}
	for _, j := range p.Jobs {
		for _, d := range j.Deps {
			if !done[d] {
				return nil, fmt.Errorf("plan: job %d depends on %d which is not yet executed", j.ID, d)
			}
		}
		done[j.ID] = true
	}
	return p.Jobs, nil
}

// TotalTiles returns the total number of output tiles across all jobs, a
// rough size indicator used in reports.
func (p *Plan) TotalTiles() int {
	n := 0
	for _, j := range p.Jobs {
		n += j.ITiles() * j.JTiles()
	}
	return n
}

// String renders a human-readable plan summary.
func (p *Plan) String() string {
	s := fmt.Sprintf("plan(%s): %d jobs, tile=%d\n", p.Program.Name, len(p.Jobs), p.TileSize)
	for _, j := range p.Jobs {
		s += "  " + j.String() + "\n"
	}
	return s
}
