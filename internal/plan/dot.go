package plan

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the plan's job DAG in Graphviz DOT syntax: one node per
// job (labelled with its kind, output matrix, grid and split) plus the
// input matrices it reads, with edges following the data flow. Feed the
// output to `dot -Tsvg` to visualize a plan.
func (p *Plan) ToDOT() string {
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fontname=\"monospace\" fontsize=10];\n")

	// Program inputs as plain boxes.
	inputs := map[string]bool{}
	for _, in := range p.Inputs {
		inputs[in.Name] = true
		kind := "dense"
		if in.Sparse {
			kind = "sparse"
		}
		fmt.Fprintf(&b, "  %q [shape=box style=dashed label=\"%s\\n%dx%d %s\"];\n",
			"m:"+in.Name, in.Name, in.Rows, in.Cols, kind)
	}

	// Producer lookup for edges.
	producer := map[string]int{}
	for _, j := range p.Jobs {
		producer[j.Out.Name] = j.ID
	}
	for _, j := range p.Jobs {
		shape := "ellipse"
		extra := ""
		if j.Kind == MulKind {
			shape = "box"
			extra = fmt.Sprintf("\\nK=%d", j.KSize)
			if j.MaskLeaf != "" {
				extra += " masked"
			}
		}
		fmt.Fprintf(&b, "  \"j%d\" [shape=%s label=\"job %d (%s)\\n%s %dx%d tiles\\nsplit %s%s\"];\n",
			j.ID, shape, j.ID, j.Kind, j.Out.Name, j.ITiles(), j.JTiles(), j.Split, extra)

		// Edges from each distinct input matrix.
		seen := map[string]bool{}
		names := make([]string, 0, len(j.Leaves))
		for _, ref := range j.Leaves {
			names = append(names, ref.Meta.Name)
		}
		sort.Strings(names)
		for _, name := range names {
			if seen[name] {
				continue
			}
			seen[name] = true
			if src, ok := producer[name]; ok && src != j.ID {
				fmt.Fprintf(&b, "  \"j%d\" -> \"j%d\";\n", src, j.ID)
			} else if inputs[name] {
				fmt.Fprintf(&b, "  %q -> \"j%d\";\n", "m:"+name, j.ID)
			}
		}
	}

	// Program outputs as double circles.
	outNames := make([]string, 0, len(p.Outputs))
	for v := range p.Outputs {
		outNames = append(outNames, v)
	}
	sort.Strings(outNames)
	for _, v := range outNames {
		meta := p.Outputs[v]
		fmt.Fprintf(&b, "  %q [shape=box style=bold label=\"output %s\\n%dx%d\"];\n",
			"o:"+v, v, meta.Rows, meta.Cols)
		if src, ok := producer[meta.Name]; ok {
			fmt.Fprintf(&b, "  \"j%d\" -> %q;\n", src, "o:"+v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
