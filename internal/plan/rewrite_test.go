package plan

import (
	"testing"

	"cumulon/internal/lang"
	"cumulon/internal/testutil"
)

func shapes(pairs ...interface{}) map[string]lang.Shape {
	env := map[string]lang.Shape{}
	for i := 0; i < len(pairs); i += 2 {
		env[pairs[i].(string)] = pairs[i+1].(lang.Shape)
	}
	return env
}

func mustParse(t *testing.T, src string) lang.Expr {
	t.Helper()
	e, err := lang.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPushTransposeOverMatMul(t *testing.T) {
	env := shapes("A", lang.Shape{Rows: 3, Cols: 4}, "B", lang.Shape{Rows: 4, Cols: 5})
	e := mustParse(t, "(A * B)'")
	got, err := Rewrite(e, env)
	if err != nil {
		t.Fatal(err)
	}
	// (AB)ᵀ -> Bᵀ Aᵀ with transposes on variables only.
	if got.String() != "(B' * A')" {
		t.Fatalf("got %s", got)
	}
}

func TestPushTransposeDoubleCancels(t *testing.T) {
	env := shapes("A", lang.Shape{Rows: 3, Cols: 4})
	got, err := Rewrite(mustParse(t, "A''"), env)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "A" {
		t.Fatalf("got %s", got)
	}
}

func TestPushTransposeThroughElementwise(t *testing.T) {
	env := shapes("A", lang.Shape{Rows: 3, Cols: 4}, "B", lang.Shape{Rows: 3, Cols: 4})
	got, err := Rewrite(mustParse(t, "(A .* B)'"), env)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "(A' .* B')" {
		t.Fatalf("got %s", got)
	}
}

func TestFoldScale(t *testing.T) {
	env := shapes("A", lang.Shape{Rows: 2, Cols: 2})
	got, err := Rewrite(mustParse(t, "2 * (3 * A)"), env)
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := got.(lang.Scale)
	if !ok || sc.S != 6 {
		t.Fatalf("got %s", got)
	}
	if _, ok := sc.X.(lang.Var); !ok {
		t.Fatalf("inner not folded: %s", got)
	}
}

func TestChainReorderPicksCheapOrder(t *testing.T) {
	// A: 100x2, B: 2x100, C: 100x1. (AB)C costs 2*100*2*100 + 2*100*100*1
	// = 60000; A(BC) costs 2*2*100*1 + 2*100*2*1 = 800.
	env := shapes(
		"A", lang.Shape{Rows: 100, Cols: 2},
		"B", lang.Shape{Rows: 2, Cols: 100},
		"C", lang.Shape{Rows: 100, Cols: 1},
	)
	got, err := Rewrite(mustParse(t, "A * B * C"), env)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "(A * (B * C))" {
		t.Fatalf("got %s", got)
	}
	before, _ := ChainFlops(mustParse(t, "A * B * C"), env)
	after, _ := ChainFlops(got, env)
	if after >= before {
		t.Fatalf("reorder did not reduce flops: %d -> %d", before, after)
	}
}

func TestChainReorderCrossesTransposes(t *testing.T) {
	// (A*B)' * C contains a transpose above a product: pushdown first
	// exposes the chain B' * A' * C for reordering.
	env := shapes(
		"A", lang.Shape{Rows: 2, Cols: 50},
		"B", lang.Shape{Rows: 50, Cols: 50},
		"C", lang.Shape{Rows: 2, Cols: 1},
	)
	got, err := Rewrite(mustParse(t, "(A * B)' * C"), env)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: B' * (A' * C): 2*50*2*1 + 2*50*50*1 = 5200 flops, versus
	// (B'*A')*C = 2*50*50*2 + 2*50*2*1 = 10200.
	if got.String() != "(B' * (A' * C))" {
		t.Fatalf("got %s", got)
	}
}

// Property: rewriting never changes the value of the expression.
func TestRewritePreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := testutil.NewGen(seed)
		env := g.Env()
		e := g.Expr(testutil.Dims[0], testutil.Dims[1], 4)
		re, err := Rewrite(e, env)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		data := g.InputData(seed * 7)
		want, err := lang.Eval(e, data)
		if err != nil {
			t.Fatalf("seed %d eval original: %v", seed, err)
		}
		got, err := lang.Eval(re, data)
		if err != nil {
			t.Fatalf("seed %d eval rewritten: %v", seed, err)
		}
		if !got.AlmostEqual(want, 1e-9) {
			t.Fatalf("seed %d: rewrite changed value of %s -> %s (maxdiff %g)",
				seed, e, re, got.MaxAbsDiff(want))
		}
	}
}

// Property: rewriting never increases product flops.
func TestRewriteNeverIncreasesFlops(t *testing.T) {
	for seed := int64(100); seed < 160; seed++ {
		g := testutil.NewGen(seed)
		env := g.Env()
		e := g.Expr(testutil.Dims[2], testutil.Dims[0], 4)
		re, err := Rewrite(e, env)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		before, err := ChainFlops(pushTranspose(e, false), env)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		after, err := ChainFlops(re, env)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if after > before {
			t.Fatalf("seed %d: flops increased %d -> %d (%s -> %s)", seed, before, after, e, re)
		}
	}
}

// Property: after rewriting, every Transpose node wraps a Var.
func TestRewriteNormalFormTransposes(t *testing.T) {
	for seed := int64(200); seed < 240; seed++ {
		g := testutil.NewGen(seed)
		e := g.Expr(testutil.Dims[1], testutil.Dims[1], 4)
		re, err := Rewrite(e, g.Env())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lang.Walk(re, func(n lang.Expr) {
			if tr, ok := n.(lang.Transpose); ok {
				if _, ok := tr.X.(lang.Var); !ok {
					t.Fatalf("seed %d: transpose above non-var in %s", seed, re)
				}
			}
		})
	}
}
