package workloads

import (
	"math"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
)

func TestAllWorkloadsValidate(t *testing.T) {
	ws := []Workload{
		GNMF(40, 30, 5, 2, 0.1),
		RSVD(50, 30, 5, 2),
		Regression(60, 8, 3, 0.001),
		MatMulChain([]int{10, 20, 5, 8}),
		MatMul(16, 16, 16),
	}
	for _, w := range ws {
		if _, err := w.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

// gnmfReference computes one multiplicative update directly.
func gnmfReference(v, w, h *linalg.Dense) (*linalg.Dense, *linalg.Dense) {
	wt := w.T()
	h2 := h.ElemMul(wt.Mul(v)).ElemDiv(wt.Mul(w).Mul(h))
	h2t := h2.T()
	w2 := w.ElemMul(v.Mul(h2t)).ElemDiv(w.Mul(h2.Mul(h2t)))
	return w2, h2
}

func TestGNMFMatchesReferenceUpdate(t *testing.T) {
	wl := GNMF(20, 15, 4, 1, 0.3)
	data := wl.RandomInputs(5)
	out, err := lang.Interpret(wl.Prog, data)
	if err != nil {
		t.Fatal(err)
	}
	wantW, wantH := gnmfReference(data["V"], data["W"], data["H"])
	if !out["H"].AlmostEqual(wantH, 1e-9) {
		t.Fatal("H update mismatch")
	}
	if !out["W"].AlmostEqual(wantW, 1e-9) {
		t.Fatal("W update mismatch")
	}
}

func TestGNMFReducesReconstructionError(t *testing.T) {
	frob := func(v, w, h *linalg.Dense) float64 { return v.Sub(w.Mul(h)).FrobeniusNorm() }
	wl1 := GNMF(30, 25, 4, 1, 0.5)
	wl8 := GNMF(30, 25, 4, 8, 0.5)
	data := wl1.RandomInputs(7)
	before := frob(data["V"], data["W"], data["H"])
	out1, err := lang.Interpret(wl1.Prog, data)
	if err != nil {
		t.Fatal(err)
	}
	after1 := frob(data["V"], out1["W"], out1["H"])
	out8, err := lang.Interpret(wl8.Prog, data)
	if err != nil {
		t.Fatal(err)
	}
	after8 := frob(data["V"], out8["W"], out8["H"])
	if !(after8 < after1 && after1 < before) {
		t.Fatalf("GNMF not converging: %.4f -> %.4f -> %.4f", before, after1, after8)
	}
}

func TestRegressionConverges(t *testing.T) {
	// Synthetic well-conditioned problem: y = X wTrue.
	n, d := 80, 5
	x := linalg.RandomDense(n, d, 11)
	wTrue := linalg.RandomDense(d, 1, 12)
	y := x.Mul(wTrue)

	loss := func(w *linalg.Dense) float64 { return x.Mul(w).Sub(y).FrobeniusNorm() }
	w0 := linalg.NewDense(d, 1)

	wl := Regression(n, d, 50, 0.01)
	out, err := lang.Interpret(wl.Prog, map[string]*linalg.Dense{"X": x, "y": y, "w": w0})
	if err != nil {
		t.Fatal(err)
	}
	if got, init := loss(out["w"]), loss(w0); got > init*0.05 {
		t.Fatalf("gradient descent barely converged: %v -> %v", init, got)
	}
}

func TestRSVDCapturesDominantDirection(t *testing.T) {
	// A = u vᵀ + noise has one dominant direction u; RSVD's sketch B must
	// be strongly correlated with u.
	m, n := 60, 40
	u := linalg.RandomDense(m, 1, 21)
	v := linalg.RandomDense(n, 1, 22)
	a := u.Mul(v.T())
	noise := linalg.RandomDense(m, n, 23).Scale(0.01)
	a = a.Add(noise)

	wl := RSVD(m, n, 3, 2)
	omega := linalg.RandomDense(n, 3, 24)
	out, err := lang.Interpret(wl.Prog, map[string]*linalg.Dense{"A": a, "Omega": omega})
	if err != nil {
		t.Fatal(err)
	}
	b := out["B"]
	// cos angle between u and the first sketch column.
	var dot, nu, nb float64
	for i := 0; i < m; i++ {
		dot += u.At(i, 0) * b.At(i, 0)
		nu += u.At(i, 0) * u.At(i, 0)
		nb += b.At(i, 0) * b.At(i, 0)
	}
	cos := math.Abs(dot) / math.Sqrt(nu*nb)
	if cos < 0.99 {
		t.Fatalf("sketch not aligned with dominant direction: cos=%.4f", cos)
	}
}

func TestMatMulChainStructure(t *testing.T) {
	wl := MatMulChain([]int{100, 2, 100, 1})
	if len(wl.Prog.Inputs) != 3 {
		t.Fatalf("inputs: %d", len(wl.Prog.Inputs))
	}
	shapes, err := wl.Prog.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if sh := shapes["C"]; sh.Rows != 100 || sh.Cols != 1 {
		t.Fatalf("chain output shape: %v", sh)
	}
}

func TestRandomInputsDensity(t *testing.T) {
	wl := GNMF(100, 100, 5, 1, 0.1)
	data := wl.RandomInputs(9)
	nnz := 0
	for _, x := range data["V"].Data {
		if x != 0 {
			nnz++
		}
	}
	got := float64(nnz) / float64(len(data["V"].Data))
	if got < 0.05 || got > 0.15 {
		t.Fatalf("V density %v far from 0.1", got)
	}
	for _, x := range data["W"].Data {
		if x <= 0 {
			t.Fatal("dense inputs must be positive for GNMF")
		}
	}
}

func TestIterationsUnroll(t *testing.T) {
	if got := len(GNMF(10, 10, 2, 5, 0.5).Prog.Stmts); got != 10 {
		t.Fatalf("gnmf stmts: %d", got)
	}
	if got := len(RSVD(10, 10, 2, 3).Prog.Stmts); got != 4 {
		t.Fatalf("rsvd stmts: %d", got)
	}
	if got := len(Regression(10, 3, 7, 0.1).Prog.Stmts); got != 7 {
		t.Fatalf("regression stmts: %d", got)
	}
}

func TestPageRankConverges(t *testing.T) {
	n := 60
	inputs := PageRankInputs(n, 0.1, 5)
	// Column-stochastic check.
	p := inputs["P"]
	for j := 0; j < n; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += p.At(i, j)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("column %d sums to %v", j, sum)
		}
	}
	wl20 := PageRank(n, 20, 0.1, 0.85)
	out20, err := lang.Interpret(wl20.Prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	x20 := out20["x"]
	// A probability vector...
	if math.Abs(x20.Sum()-1) > 1e-6 {
		t.Fatalf("rank vector sums to %v", x20.Sum())
	}
	// ...that is a fixed point: one more iteration barely moves it.
	wl21 := PageRank(n, 21, 0.1, 0.85)
	out21, err := lang.Interpret(wl21.Prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if diff := x20.MaxAbsDiff(out21["x"]); diff > 1e-2*0.85 {
		t.Fatalf("not converged: step moves %v", diff)
	}
}

func TestPageRankOnEngine(t *testing.T) {
	n := 40
	inputs := PageRankInputs(n, 0.15, 9)
	wl := PageRank(n, 5, 0.15, 0.85)
	sess := core.NewSession(3)
	mt, _ := cloud.TypeByName("m1.large")
	cl, _ := cloud.NewCluster(mt, 3, 2)
	res, err := sess.Run(wl.Prog, plan.Config{TileSize: 8, Densities: wl.Densities},
		core.ExecOptions{Cluster: cl, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lang.Interpret(wl.Prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs["x"].AlmostEqual(want["x"], 1e-9) {
		t.Fatal("engine PageRank mismatch vs interpreter")
	}
}
