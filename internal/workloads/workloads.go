// Package workloads provides the statistical analysis programs the
// evaluation exercises, expressed in Cumulon's input language:
//
//   - GNMF: Gaussian non-negative matrix factorization by multiplicative
//     updates, the canonical matrix workload of the Hadoop-ML literature
//     (factorizing a sparse ratings-style matrix V ≈ W·H);
//   - RSVD: the first stage of randomized SVD — a random projection
//     followed by power iterations, a chain of large products;
//   - Regression: linear least squares by batch gradient descent;
//   - MatMulChain: parameterized product chains for microbenchmarks.
//
// Each constructor returns a complete, validated program plus the sparse
// density hints the planner needs. Iterations are unrolled: Cumulon
// optimizes and executes whole iterative programs as one plan.
package workloads

import (
	"fmt"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
)

// Workload bundles a program with its planner hints and a human label.
type Workload struct {
	Name      string
	Prog      *lang.Program
	Densities map[string]float64
}

// GNMF builds `iters` multiplicative-update iterations of non-negative
// matrix factorization: V (m x n, sparse with the given density) is
// factorized as W (m x r) times H (r x n).
//
// Update rules (Lee & Seung):
//
//	H ← H ⊙ (Wᵀ V) ⊘ ((Wᵀ W) H)
//	W ← W ⊙ (V Hᵀ) ⊘ (W (H Hᵀ))
func GNMF(m, n, r, iters int, density float64) Workload {
	p := &lang.Program{
		Name: fmt.Sprintf("gnmf-%dx%dx%d-i%d", m, n, r, iters),
		Inputs: []lang.Input{
			{Name: "V", Rows: m, Cols: n, Sparse: true},
			{Name: "W", Rows: m, Cols: r},
			{Name: "H", Rows: r, Cols: n},
		},
		Outputs: []string{"W", "H"},
	}
	for i := 0; i < iters; i++ {
		p.Stmts = append(p.Stmts,
			assign("H", "H .* (W' * V) ./ ((W' * W) * H)"),
			assign("W", "W .* (V * H') ./ (W * (H * H'))"),
		)
		p.Boundaries = append(p.Boundaries, len(p.Stmts))
	}
	return Workload{Name: p.Name, Prog: p, Densities: map[string]float64{"V": density}}
}

// GNMFKL builds `iters` multiplicative-update iterations of NMF under the
// KL (I-divergence) objective, in Lee & Seung's Jacobi form: both factor
// updates use the quotient matrix V ⊘ (W H) evaluated at the *same* W and
// H, so the product W*H appears twice per iteration with identical
// operand versions. U is the all-ones matrix supplying the column/row
// sums of the denominators. The repeated product makes this the honest
// exercise for the cross-statement CSE pass (the Gaussian variant's
// products all differ once a factor is updated in place):
//
//	Hn ← H ⊙ (Wᵀ (V ⊘ (W H))) ⊘ (Wᵀ U)
//	W  ← W ⊙ ((V ⊘ (W H)) Hᵀ) ⊘ (U Hᵀ)
//	H  ← Hn
func GNMFKL(m, n, r, iters int, density float64) Workload {
	p := &lang.Program{
		Name: fmt.Sprintf("gnmf-kl-%dx%dx%d-i%d", m, n, r, iters),
		Inputs: []lang.Input{
			{Name: "V", Rows: m, Cols: n, Sparse: true},
			{Name: "W", Rows: m, Cols: r},
			{Name: "H", Rows: r, Cols: n},
			{Name: "U", Rows: m, Cols: n},
		},
		Outputs: []string{"W", "H"},
	}
	for i := 0; i < iters; i++ {
		p.Stmts = append(p.Stmts,
			assign("Hn", "H .* (W' * (V ./ (W * H))) ./ (W' * U)"),
			assign("W", "W .* ((V ./ (W * H)) * H') ./ (U * H')"),
			assign("H", "Hn"),
		)
		p.Boundaries = append(p.Boundaries, len(p.Stmts))
	}
	return Workload{Name: p.Name, Prog: p, Densities: map[string]float64{"V": density}}
}

// RSVD builds the sketching stage of randomized SVD for A (m x n) with a
// target rank k and `power` power iterations:
//
//	B ← A Ω;  repeat power times: B ← A (Aᵀ B)
//
// The output B spans (approximately) the dominant column space of A.
func RSVD(m, n, k, power int) Workload {
	p := &lang.Program{
		Name: fmt.Sprintf("rsvd-%dx%d-k%d-p%d", m, n, k, power),
		Inputs: []lang.Input{
			{Name: "A", Rows: m, Cols: n},
			{Name: "Omega", Rows: n, Cols: k},
		},
		Outputs: []string{"B"},
	}
	p.Stmts = append(p.Stmts, assign("B", "A * Omega"))
	p.Boundaries = append(p.Boundaries, len(p.Stmts))
	for i := 0; i < power; i++ {
		p.Stmts = append(p.Stmts, assign("B", "A * (A' * B)"))
		p.Boundaries = append(p.Boundaries, len(p.Stmts))
	}
	return Workload{Name: p.Name, Prog: p}
}

// Regression builds `iters` batch gradient-descent steps for linear least
// squares: X (n x d), y (n x 1), weights w (d x 1), learning rate alpha:
//
//	w ← w - α Xᵀ (X w - y)
func Regression(n, d, iters int, alpha float64) Workload {
	p := &lang.Program{
		Name: fmt.Sprintf("regression-%dx%d-i%d", n, d, iters),
		Inputs: []lang.Input{
			{Name: "X", Rows: n, Cols: d},
			{Name: "y", Rows: n, Cols: 1},
			{Name: "w", Rows: d, Cols: 1},
		},
		Outputs: []string{"w"},
	}
	for i := 0; i < iters; i++ {
		p.Stmts = append(p.Stmts, assign("w", fmt.Sprintf("w - %g * (X' * (X * w - y))", alpha)))
		p.Boundaries = append(p.Boundaries, len(p.Stmts))
	}
	return Workload{Name: p.Name, Prog: p}
}

// MatMulChain builds a single product chain over matrices with boundary
// dimensions dims: M0 (dims[0] x dims[1]) * M1 (dims[1] x dims[2]) * ...
func MatMulChain(dims []int) Workload {
	if len(dims) < 3 {
		panic("workloads: chain needs at least two factors")
	}
	p := &lang.Program{
		Name:    fmt.Sprintf("chain-%d", len(dims)-1),
		Outputs: []string{"C"},
	}
	expr := ""
	for i := 0; i+1 < len(dims); i++ {
		name := fmt.Sprintf("M%d", i)
		p.Inputs = append(p.Inputs, lang.Input{Name: name, Rows: dims[i], Cols: dims[i+1]})
		if i > 0 {
			expr += " * "
		}
		expr += name
	}
	p.Stmts = append(p.Stmts, assign("C", expr))
	return Workload{Name: p.Name, Prog: p}
}

// PageRank builds `iters` power iterations of PageRank over a sparse
// column-stochastic transition matrix P (n x n, with the given density):
//
//	x ← α P x + (1-α) v
//
// where v is the uniform teleport vector. Convergence to the stationary
// distribution is geometric with rate α.
func PageRank(n, iters int, density, alpha float64) Workload {
	p := &lang.Program{
		Name: fmt.Sprintf("pagerank-%d-i%d", n, iters),
		Inputs: []lang.Input{
			{Name: "P", Rows: n, Cols: n, Sparse: true},
			{Name: "x", Rows: n, Cols: 1},
			{Name: "v", Rows: n, Cols: 1},
		},
		Outputs: []string{"x"},
	}
	for i := 0; i < iters; i++ {
		p.Stmts = append(p.Stmts,
			assign("x", fmt.Sprintf("%g * (P * x) + %g * v", alpha, 1-alpha)))
		p.Boundaries = append(p.Boundaries, len(p.Stmts))
	}
	return Workload{Name: p.Name, Prog: p, Densities: map[string]float64{"P": density}}
}

// PageRankInputs generates a random column-stochastic transition matrix
// (each column's nonzeros sum to 1), the uniform start vector and the
// uniform teleport vector, deterministically from seed.
func PageRankInputs(n int, density float64, seed int64) map[string]*linalg.Dense {
	p := linalg.RandomSparseDense(n, n, density, seed)
	// Guarantee every column has at least one out-link, then normalize
	// columns to sum to 1 (links point column -> row).
	for j := 0; j < n; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += p.At(i, j)
		}
		if sum == 0 {
			p.Set(j%n, j, 1)
			sum = 1
		}
		for i := 0; i < n; i++ {
			if v := p.At(i, j); v != 0 {
				p.Set(i, j, v/sum)
			}
		}
	}
	uniform := linalg.ConstDense(n, 1, 1/float64(n))
	return map[string]*linalg.Dense{"P": p, "x": uniform.Clone(), "v": uniform.Clone()}
}

// MatMul builds the single square (or rectangular) product benchmark.
func MatMul(m, k, n int) Workload {
	p := &lang.Program{
		Name: fmt.Sprintf("matmul-%dx%dx%d", m, k, n),
		Inputs: []lang.Input{
			{Name: "A", Rows: m, Cols: k},
			{Name: "B", Rows: k, Cols: n},
		},
		Stmts:   []lang.Assign{assign("C", "A * B")},
		Outputs: []string{"C"},
	}
	return Workload{Name: p.Name, Prog: p}
}

// RandomInputs generates deterministic input data for the workload's
// declared inputs. Entries are positive (shifted uniform), which keeps
// GNMF's multiplicative updates and element-wise divisions well behaved;
// sparse inputs honor the workload's density hints.
func (w Workload) RandomInputs(seed int64) map[string]*linalg.Dense {
	data := map[string]*linalg.Dense{}
	for i, in := range w.Prog.Inputs {
		s := seed + int64(i)*101
		if in.Sparse {
			d := w.Densities[in.Name]
			if d <= 0 || d > 1 {
				d = 0.05
			}
			data[in.Name] = linalg.RandomSparseDense(in.Rows, in.Cols, d, s)
		} else {
			data[in.Name] = linalg.RandomDense(in.Rows, in.Cols, s).
				Map(func(x float64) float64 { return x + 0.1 })
		}
	}
	return data
}

func assign(name, src string) lang.Assign {
	e, err := lang.ParseExpr(src)
	if err != nil {
		panic(fmt.Sprintf("workloads: bad expression %q: %v", src, err))
	}
	return lang.Assign{Name: name, Expr: e}
}
