package workloads

import (
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/linalg"
)

func ridgeCluster(t *testing.T) cloud.Cluster {
	t.Helper()
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestRidgeRecoversTrueWeights(t *testing.T) {
	sess := core.NewSession(2)
	n, d := 300, 6
	x := linalg.RandomDense(n, d, 1)
	wTrue := linalg.RandomDense(d, 1, 2)
	y := x.Mul(wTrue)

	w, err := RidgeRegression(sess, x, y, 1e-8, ridgeCluster(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	if !w.AlmostEqual(wTrue, 1e-6) {
		t.Fatalf("ridge weights off by %g", w.MaxAbsDiff(wTrue))
	}
}

func TestRidgeMatchesLocalNormalEquations(t *testing.T) {
	sess := core.NewSession(3)
	n, d, lambda := 200, 5, 0.5
	x := linalg.RandomDense(n, d, 4)
	y := x.Mul(linalg.RandomDense(d, 1, 5)).Add(linalg.RandomDense(n, 1, 6).Scale(0.1))

	w, err := RidgeRegression(sess, x, y, lambda, ridgeCluster(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	// Local oracle.
	g := x.T().Mul(x)
	for i := 0; i < d; i++ {
		g.Set(i, i, g.At(i, i)+lambda)
	}
	want, err := linalg.CholeskySolve(g, x.T().Mul(y))
	if err != nil {
		t.Fatal(err)
	}
	if !w.AlmostEqual(want, 1e-8) {
		t.Fatalf("cluster ridge differs from local by %g", w.MaxAbsDiff(want))
	}
}

func TestRidgeShrinksWithPenalty(t *testing.T) {
	sess := core.NewSession(4)
	n, d := 150, 4
	x := linalg.RandomDense(n, d, 7)
	y := x.Mul(linalg.RandomDense(d, 1, 8))
	w0, err := RidgeRegression(sess, x, y, 0.001, ridgeCluster(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	wBig, err := RidgeRegression(sess, x, y, 1e6, ridgeCluster(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	if wBig.FrobeniusNorm() >= w0.FrobeniusNorm() {
		t.Fatal("large penalty should shrink the weights")
	}
}

func TestRidgeValidation(t *testing.T) {
	sess := core.NewSession(5)
	x := linalg.RandomDense(10, 3, 1)
	if _, err := RidgeRegression(sess, x, linalg.NewDense(9, 1), 1, ridgeCluster(t), 4); err == nil {
		t.Fatal("want y-shape error")
	}
	if _, err := RidgeRegression(sess, x, linalg.NewDense(10, 1), -1, ridgeCluster(t), 4); err == nil {
		t.Fatal("want negative-lambda error")
	}
}
