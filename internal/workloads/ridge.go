package workloads

import (
	"fmt"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
)

// RidgeRegression solves the regularized least-squares problem
//
//	w = (XᵀX + λI)⁻¹ Xᵀy
//
// with the hybrid pattern the paper's workloads favor: the two data-sized
// products (the d x d Gram matrix XᵀX and the d-vector Xᵀy) run on the
// Cumulon cluster, while the tiny d x d solve happens locally by Cholesky
// factorization. This is the exact-solution counterpart of the iterative
// Regression workload.
func RidgeRegression(sess *core.Session, x, y *linalg.Dense, lambda float64, cl cloud.Cluster, tileSize int) (*linalg.Dense, error) {
	if y.Rows != x.Rows || y.Cols != 1 {
		return nil, fmt.Errorf("workloads: y must be %dx1, got %dx%d", x.Rows, y.Rows, y.Cols)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("workloads: negative ridge penalty %g", lambda)
	}
	prog, err := gramProgram(x.Rows, x.Cols)
	if err != nil {
		return nil, err
	}
	res, err := sess.Run(prog, plan.Config{TileSize: tileSize}, core.ExecOptions{
		Cluster: cl,
		Inputs:  map[string]*linalg.Dense{"X": x, "y": y},
	})
	if err != nil {
		return nil, fmt.Errorf("workloads: gram stage: %w", err)
	}
	gram := res.Outputs["G"]
	xty := res.Outputs["b"]
	for i := 0; i < gram.Rows; i++ {
		gram.Set(i, i, gram.At(i, i)+lambda)
	}
	w, err := linalg.CholeskySolve(gram, xty)
	if err != nil {
		return nil, fmt.Errorf("workloads: solve stage: %w", err)
	}
	return w, nil
}

func gramProgram(n, d int) (*lang.Program, error) {
	return lang.Parse(fmt.Sprintf(`
program ridge-gram
input X %d %d
input y %d 1
G = X' * X
b = X' * y
output G
output b
`, n, d, n))
}
