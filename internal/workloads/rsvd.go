package workloads

import (
	"fmt"

	"cumulon/internal/lang"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
)

// RandomizedSVD runs the complete randomized SVD pipeline (Halko,
// Martinsson, Tropp) with the heavy products on the Cumulon cluster and
// the small factorizations locally:
//
//	B = A (AᵀA)^power Ω          — the distributed sketch (workload RSVD)
//	Q, _ = QR(B)                 — local thin QR, k columns
//	P = Qᵀ A                     — distributed projection, k x n
//	Ū Σ Vᵀ = SVD(P)              — local small SVD
//	U = Q Ū                      — back-projection
//
// It returns the rank-k approximation factors of a. Execution is
// materialized (real data) and verified against the interpreter-backed
// engine tests; use it for genuinely small-k problems.
func RandomizedSVD(sess *core.Session, a *linalg.Dense, k, power int, cl cloud.Cluster, tileSize int, seed int64) (*linalg.SVDResult, error) {
	m, n := a.Rows, a.Cols
	if k <= 0 || k > n || k > m {
		return nil, fmt.Errorf("workloads: rank k=%d out of range for %dx%d", k, m, n)
	}
	cfg := plan.Config{TileSize: tileSize}

	// Stage 1: distributed sketch.
	sketch := RSVD(m, n, k, power)
	omega := linalg.RandomDense(n, k, seed)
	res, err := sess.Run(sketch.Prog, cfg, core.ExecOptions{
		Cluster: cl,
		Inputs:  map[string]*linalg.Dense{"A": a, "Omega": omega},
	})
	if err != nil {
		return nil, fmt.Errorf("workloads: sketch stage: %w", err)
	}
	b := res.Outputs["B"]

	// Stage 2: local thin QR of the m x k sketch.
	q, _, err := linalg.QR(b)
	if err != nil {
		return nil, fmt.Errorf("workloads: QR stage: %w", err)
	}

	// Stage 3: distributed projection P = Qᵀ A (k x n).
	projProg, err := projectionProgram(m, n, k)
	if err != nil {
		return nil, err
	}
	res2, err := sess.Run(projProg, cfg, core.ExecOptions{
		Cluster: cl,
		Inputs:  map[string]*linalg.Dense{"Q": q, "A": a},
	})
	if err != nil {
		return nil, fmt.Errorf("workloads: projection stage: %w", err)
	}
	p := res2.Outputs["P"]

	// Stage 4: local SVD of the k x n projection, then back-project.
	small, err := linalg.SVD(p)
	if err != nil {
		return nil, fmt.Errorf("workloads: SVD stage: %w", err)
	}
	return &linalg.SVDResult{
		U: q.Mul(small.U),
		S: small.S,
		V: small.V,
	}, nil
}

func projectionProgram(m, n, k int) (*lang.Program, error) {
	return lang.Parse(fmt.Sprintf(`
program rsvd-project
input Q %d %d
input A %d %d
P = Q' * A
output P
`, m, k, m, n))
}
