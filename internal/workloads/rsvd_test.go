package workloads

import (
	"math"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/core"
	"cumulon/internal/linalg"
)

// lowRankPlusNoise builds a matrix with known singular structure.
func lowRankPlusNoise(m, n, rank int, noise float64, seed int64) (*linalg.Dense, []float64) {
	a := linalg.NewDense(m, n)
	var svals []float64
	for r := 0; r < rank; r++ {
		s := float64(rank-r) * 10
		svals = append(svals, s)
		u := linalg.RandomDense(m, 1, seed+int64(r)*2)
		v := linalg.RandomDense(n, 1, seed+int64(r)*2+1)
		// Normalize so the component's scale is s.
		un, vn := u.FrobeniusNorm(), v.FrobeniusNorm()
		a = a.Add(u.Mul(v.T()).Scale(s / (un * vn)))
	}
	if noise > 0 {
		a = a.Add(linalg.RandomDense(m, n, seed+99).Scale(noise))
	}
	return a, svals
}

func TestRandomizedSVDEndToEnd(t *testing.T) {
	sess := core.NewSession(7)
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, n, rank := 80, 60, 3
	a, _ := lowRankPlusNoise(m, n, rank, 0.001, 11)

	res, err := RandomizedSVD(sess, a, rank+2, 2, cl, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The rank-k approximation must capture almost all of A's energy.
	approx := res.Reconstruct()
	relErr := a.Sub(approx).FrobeniusNorm() / a.FrobeniusNorm()
	if relErr > 0.01 {
		t.Fatalf("rank-%d approximation error %v too large", rank+2, relErr)
	}
	// Singular values match the direct small SVD of A.
	direct, err := linalg.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rank; i++ {
		if math.Abs(res.S[i]-direct.S[i])/direct.S[i] > 0.01 {
			t.Fatalf("singular value %d: randomized %v vs direct %v", i, res.S[i], direct.S[i])
		}
	}
	if !linalg.IsOrthonormalCols(res.U, 1e-8) {
		t.Fatal("U not orthonormal")
	}
}

func TestRandomizedSVDValidatesRank(t *testing.T) {
	sess := core.NewSession(1)
	mt, _ := cloud.TypeByName("m1.small")
	cl, _ := cloud.NewCluster(mt, 2, 1)
	a := linalg.RandomDense(10, 8, 1)
	if _, err := RandomizedSVD(sess, a, 0, 1, cl, 4, 1); err == nil {
		t.Fatal("want rank error for k=0")
	}
	if _, err := RandomizedSVD(sess, a, 9, 1, cl, 4, 1); err == nil {
		t.Fatal("want rank error for k > cols")
	}
}
