package store

import (
	"math/rand"
	"testing"

	"cumulon/internal/linalg"
)

func benchTile(n int) *linalg.Tile {
	rng := rand.New(rand.NewSource(1))
	t := linalg.NewTile(n, n)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func BenchmarkEncodeTile256(b *testing.B) {
	t := benchTile(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeTile(t)
	}
}

func BenchmarkDecodeTile256(b *testing.B) {
	raw := EncodeTile(benchTile(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTile(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressTile256(b *testing.B) {
	raw := EncodeTile(benchTile(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressTile(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	t := linalg.NewTile(256, 256)
	for i := range t.Data {
		if rng.Float64() < 0.05 {
			t.Data[i] = rng.NormFloat64()
		}
	}
	sp := linalg.DenseToCSR(t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := EncodeSparseTile(sp)
		if _, err := DecodeSparseTile(raw); err != nil {
			b.Fatal(err)
		}
	}
}
