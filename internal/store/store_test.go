package store

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cumulon/internal/dfs"
	"cumulon/internal/linalg"
)

func newStore(nodes int) *Store {
	return New(dfs.New(dfs.DefaultConfig(nodes)))
}

func TestMetaGeometry(t *testing.T) {
	m := Meta{Name: "A", Rows: 10, Cols: 7, TileSize: 4}
	if m.TileRows() != 3 || m.TileCols() != 2 {
		t.Fatalf("grid %dx%d", m.TileRows(), m.TileCols())
	}
	r, c := m.TileShape(0, 0)
	if r != 4 || c != 4 {
		t.Fatalf("interior tile %dx%d", r, c)
	}
	r, c = m.TileShape(2, 1)
	if r != 2 || c != 3 {
		t.Fatalf("fringe tile %dx%d", r, c)
	}
	if m.DenseBytes() != 10*7*8 {
		t.Fatalf("dense bytes %d", m.DenseBytes())
	}
}

func TestTileCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tile := linalg.NewTile(1+rng.Intn(16), 1+rng.Intn(16))
		for i := range tile.Data {
			tile.Data[i] = rng.NormFloat64()
		}
		got, err := DecodeTile(EncodeTile(tile))
		return err == nil && got.Equal(tile)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseTileCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tile := linalg.NewTile(1+rng.Intn(16), 1+rng.Intn(16))
		for i := range tile.Data {
			if rng.Float64() < 0.3 {
				tile.Data[i] = rng.NormFloat64()
			}
		}
		s := linalg.DenseToCSR(tile)
		got, err := DecodeSparseTile(EncodeSparseTile(s))
		return err == nil && got.ToDense().Equal(tile)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	tile := linalg.NewTileFrom(2, 2, []float64{1, 2, 3, 4})
	raw := EncodeTile(tile)
	raw[14] ^= 0xFF // flip a payload bit
	if _, err := DecodeTile(raw); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestDecodeDetectsTruncation(t *testing.T) {
	tile := linalg.NewTileFrom(2, 2, []float64{1, 2, 3, 4})
	raw := EncodeTile(tile)
	if _, err := DecodeTile(raw[:len(raw)-5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	tile := linalg.NewTileFrom(1, 1, []float64{1})
	raw := EncodeTile(tile)
	raw[0] = 0
	if _, err := DecodeTile(raw); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	s := EncodeSparseTile(linalg.DenseToCSR(tile))
	s[0] = 0
	if _, err := DecodeSparseTile(s); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestDenseMagicRejectedBySparseDecoder(t *testing.T) {
	tile := linalg.NewTileFrom(1, 2, []float64{1, 2})
	if _, err := DecodeSparseTile(EncodeTile(tile)); err == nil {
		t.Fatal("sparse decoder accepted a dense tile")
	}
}

func TestSaveLoadDense(t *testing.T) {
	s := newStore(4)
	m := Meta{Name: "A", Rows: 23, Cols: 17, TileSize: 8}
	want := linalg.RandomDense(23, 17, 5)
	if err := s.SaveDense(m, want, -1); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadDense(m, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(want, 0) {
		t.Fatal("save/load round trip mismatch")
	}
	if s.FS.FileCount() != m.TileRows()*m.TileCols() {
		t.Fatalf("tile count: %d", s.FS.FileCount())
	}
}

func TestSaveLoadSparse(t *testing.T) {
	s := newStore(4)
	m := Meta{Name: "V", Rows: 30, Cols: 30, TileSize: 7, Sparse: true}
	want := linalg.RandomSparseDense(30, 30, 0.1, 5)
	if err := s.SaveDense(m, want, -1); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadDense(m, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(want, 0) {
		t.Fatal("sparse save/load round trip mismatch")
	}
}

func TestSaveShapeMismatch(t *testing.T) {
	s := newStore(2)
	m := Meta{Name: "A", Rows: 4, Cols: 4, TileSize: 2}
	if err := s.SaveDense(m, linalg.NewDense(3, 4), -1); err == nil {
		t.Fatal("want shape mismatch error")
	}
}

func TestDeleteMatrix(t *testing.T) {
	s := newStore(3)
	m := Meta{Name: "tmp", Rows: 8, Cols: 8, TileSize: 4}
	if err := s.SaveDense(m, linalg.RandomDense(8, 8, 1), -1); err != nil {
		t.Fatal(err)
	}
	s.DeleteMatrix(m)
	if s.FS.FileCount() != 0 {
		t.Fatalf("tiles left after delete: %d", s.FS.FileCount())
	}
}

func TestReadWriteSingleTiles(t *testing.T) {
	s := newStore(3)
	m := Meta{Name: "B", Rows: 6, Cols: 6, TileSize: 3}
	tile := linalg.NewTileFrom(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err := s.WriteTile(m, 1, 0, tile, 2); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadTile(m, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tile) {
		t.Fatal("tile mismatch")
	}
	// Tile coordinates are part of the name: other coords are missing.
	if _, err := s.ReadTile(m, 0, 0, 0); !errors.Is(err, dfs.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}
