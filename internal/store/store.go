// Package store persists matrices as grids of tiles in the distributed
// file system. Each tile is one DFS file, named by matrix name and tile
// coordinates, so tasks can read exactly the tiles they need — the basis
// of Cumulon's multi-input map-only execution model.
//
// Tiles are serialized in a compact binary format with a header, shape,
// payload and CRC32 checksum; sparse tiles use a CSR encoding. A store is
// cheap to create: it is a naming convention plus codec over a dfs.FS.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"cumulon/internal/dfs"
	"cumulon/internal/linalg"
)

// Codec errors.
var (
	ErrCorrupt  = errors.New("store: corrupt tile")
	ErrBadMagic = errors.New("store: bad tile magic")
)

const (
	magicDense  = 0x43544c44 // "CTLD"
	magicSparse = 0x43544c53 // "CTLS"
)

// Meta describes a stored matrix: its logical shape and tiling geometry.
// Fringe tiles (last row/column of the grid) may be smaller than TileSize.
type Meta struct {
	Name       string
	Rows, Cols int
	TileSize   int
	Sparse     bool
	// Density estimates the nonzero fraction of a sparse matrix; it feeds
	// I/O size estimation in the cost models. Zero or out-of-range values
	// are treated as 1 (fully dense). Dense matrices ignore it.
	Density float64
}

// TileRows returns the number of tile rows in the grid.
func (m Meta) TileRows() int { return ceilDiv(m.Rows, m.TileSize) }

// TileCols returns the number of tile columns in the grid.
func (m Meta) TileCols() int { return ceilDiv(m.Cols, m.TileSize) }

// TileShape returns the shape of tile (ti, tj), accounting for fringes.
func (m Meta) TileShape(ti, tj int) (rows, cols int) {
	rows = m.TileSize
	if r := m.Rows - ti*m.TileSize; r < rows {
		rows = r
	}
	cols = m.TileSize
	if c := m.Cols - tj*m.TileSize; c < cols {
		cols = c
	}
	return rows, cols
}

// TilePath returns the DFS path of tile (ti, tj) of the matrix.
func (m Meta) TilePath(ti, tj int) string {
	return fmt.Sprintf("/matrix/%s/%d_%d", m.Name, ti, tj)
}

// MatrixPrefix returns the DFS path prefix under which every tile of
// the named matrix lives.
func MatrixPrefix(name string) string { return "/matrix/" + name + "/" }

// DenseBytes estimates the total stored size of the matrix if dense.
func (m Meta) DenseBytes() int64 { return int64(m.Rows) * int64(m.Cols) * 8 }

// EffDensity returns the density used for size estimation: the declared
// density for sparse matrices (defaulting to 1 when unset), 1 for dense.
func (m Meta) EffDensity() float64 {
	if !m.Sparse || m.Density <= 0 || m.Density > 1 {
		return 1
	}
	return m.Density
}

// EstTileBytes estimates the serialized size of tile (ti, tj): exact for
// dense tiles, density-scaled for sparse ones (CSR layout: 12 bytes per
// nonzero plus row pointers plus header/checksum).
func (m Meta) EstTileBytes(ti, tj int) int64 {
	rows, cols := m.TileShape(ti, tj)
	if m.Sparse {
		nnz := int64(m.EffDensity() * float64(rows) * float64(cols))
		return nnz*12 + int64(rows+1)*4 + 20
	}
	return int64(rows)*int64(cols)*8 + 16
}

// EstBytes estimates the total serialized size of the matrix.
func (m Meta) EstBytes() int64 {
	var n int64
	for ti := 0; ti < m.TileRows(); ti++ {
		for tj := 0; tj < m.TileCols(); tj++ {
			n += m.EstTileBytes(ti, tj)
		}
	}
	return n
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Store reads and writes tiles of named matrices on a DFS.
type Store struct {
	FS *dfs.FS
}

// New returns a Store over fs.
func New(fs *dfs.FS) *Store { return &Store{FS: fs} }

// WriteTile serializes and stores one dense tile, writer-local on node.
func (s *Store) WriteTile(m Meta, ti, tj int, t *linalg.Tile, node int) error {
	return s.FS.Write(m.TilePath(ti, tj), EncodeTile(t), node)
}

// ReadTile fetches and decodes one dense tile as seen from node.
func (s *Store) ReadTile(m Meta, ti, tj int, node int) (*linalg.Tile, error) {
	raw, err := s.FS.Read(m.TilePath(ti, tj), node)
	if err != nil {
		return nil, err
	}
	return DecodeTile(raw)
}

// WriteSparseTile serializes and stores one CSR tile.
func (s *Store) WriteSparseTile(m Meta, ti, tj int, t *linalg.CSRTile, node int) error {
	return s.FS.Write(m.TilePath(ti, tj), EncodeSparseTile(t), node)
}

// ReadSparseTile fetches and decodes one CSR tile.
func (s *Store) ReadSparseTile(m Meta, ti, tj int, node int) (*linalg.CSRTile, error) {
	raw, err := s.FS.Read(m.TilePath(ti, tj), node)
	if err != nil {
		return nil, err
	}
	return DecodeSparseTile(raw)
}

// DeleteMatrix removes every tile of the matrix. Used to garbage-collect
// intermediates between jobs.
func (s *Store) DeleteMatrix(m Meta) {
	for _, p := range s.FS.List(fmt.Sprintf("/matrix/%s/", m.Name)) {
		s.FS.Delete(p)
	}
}

// SaveDense uploads a dense in-memory matrix tile by tile (as an external
// client: replicas are placed randomly, like an HDFS ingest).
func (s *Store) SaveDense(m Meta, d *linalg.Dense, node int) error {
	if d.Rows != m.Rows || d.Cols != m.Cols {
		return fmt.Errorf("store: matrix %s shape %dx%d does not match meta %dx%d",
			m.Name, d.Rows, d.Cols, m.Rows, m.Cols)
	}
	for ti := 0; ti < m.TileRows(); ti++ {
		for tj := 0; tj < m.TileCols(); tj++ {
			tile := d.TileAt(ti, tj, m.TileSize)
			var err error
			if m.Sparse {
				err = s.WriteSparseTile(m, ti, tj, linalg.DenseToCSR(tile), node)
			} else {
				err = s.WriteTile(m, ti, tj, tile, node)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadDense downloads the whole matrix into a dense in-memory matrix,
// decoding sparse tiles if the matrix is stored sparse.
func (s *Store) LoadDense(m Meta, node int) (*linalg.Dense, error) {
	d := linalg.NewDense(m.Rows, m.Cols)
	for ti := 0; ti < m.TileRows(); ti++ {
		for tj := 0; tj < m.TileCols(); tj++ {
			var tile *linalg.Tile
			if m.Sparse {
				st, err := s.ReadSparseTile(m, ti, tj, node)
				if err != nil {
					return nil, err
				}
				tile = st.ToDense()
			} else {
				t, err := s.ReadTile(m, ti, tj, node)
				if err != nil {
					return nil, err
				}
				tile = t
			}
			d.SetTile(ti, tj, m.TileSize, tile)
		}
	}
	return d, nil
}

// EncodeTile serializes a dense tile: magic, rows, cols, payload, CRC32.
func EncodeTile(t *linalg.Tile) []byte {
	buf := make([]byte, 12+8*len(t.Data)+4)
	binary.LittleEndian.PutUint32(buf[0:], magicDense)
	binary.LittleEndian.PutUint32(buf[4:], uint32(t.Rows))
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.Cols))
	off := 12
	for _, v := range t.Data {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf
}

// DecodeTile deserializes a dense tile, verifying the checksum.
func DecodeTile(raw []byte) (*linalg.Tile, error) {
	if len(raw) < 16 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(raw[0:]) != magicDense {
		return nil, ErrBadMagic
	}
	rows := int(binary.LittleEndian.Uint32(raw[4:]))
	cols := int(binary.LittleEndian.Uint32(raw[8:]))
	want := 12 + 8*rows*cols + 4
	if rows <= 0 || cols <= 0 || len(raw) != want {
		return nil, ErrCorrupt
	}
	body := len(raw) - 4
	if crc32.ChecksumIEEE(raw[:body]) != binary.LittleEndian.Uint32(raw[body:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	t := linalg.NewTile(rows, cols)
	off := 12
	for i := range t.Data {
		t.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
		off += 8
	}
	return t, nil
}

// EncodeSparseTile serializes a CSR tile: magic, rows, cols, nnz, rowptr,
// colidx, values, CRC32.
func EncodeSparseTile(t *linalg.CSRTile) []byte {
	nnz := t.NNZ()
	size := 16 + 4*(t.Rows+1) + 4*nnz + 8*nnz + 4
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:], magicSparse)
	binary.LittleEndian.PutUint32(buf[4:], uint32(t.Rows))
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.Cols))
	binary.LittleEndian.PutUint32(buf[12:], uint32(nnz))
	off := 16
	for _, p := range t.RowPtr {
		binary.LittleEndian.PutUint32(buf[off:], uint32(p))
		off += 4
	}
	for _, c := range t.ColIdx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(c))
		off += 4
	}
	for _, v := range t.Val {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf
}

// DecodeSparseTile deserializes a CSR tile, verifying the checksum and
// structural invariants (monotone row pointers, in-range column indices).
func DecodeSparseTile(raw []byte) (*linalg.CSRTile, error) {
	if len(raw) < 20 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(raw[0:]) != magicSparse {
		return nil, ErrBadMagic
	}
	rows := int(binary.LittleEndian.Uint32(raw[4:]))
	cols := int(binary.LittleEndian.Uint32(raw[8:]))
	nnz := int(binary.LittleEndian.Uint32(raw[12:]))
	want := 16 + 4*(rows+1) + 4*nnz + 8*nnz + 4
	if rows <= 0 || cols <= 0 || nnz < 0 || len(raw) != want {
		return nil, ErrCorrupt
	}
	body := len(raw) - 4
	if crc32.ChecksumIEEE(raw[:body]) != binary.LittleEndian.Uint32(raw[body:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	t := &linalg.CSRTile{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int, nnz),
		Val:    make([]float64, nnz),
	}
	off := 16
	for i := range t.RowPtr {
		t.RowPtr[i] = int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
	}
	for i := range t.ColIdx {
		t.ColIdx[i] = int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
	}
	for i := range t.Val {
		t.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
		off += 8
	}
	if t.RowPtr[0] != 0 || t.RowPtr[rows] != nnz {
		return nil, fmt.Errorf("%w: bad row pointers", ErrCorrupt)
	}
	for i := 0; i < rows; i++ {
		if t.RowPtr[i] > t.RowPtr[i+1] {
			return nil, fmt.Errorf("%w: non-monotone row pointers", ErrCorrupt)
		}
	}
	for _, c := range t.ColIdx {
		if c < 0 || c >= cols {
			return nil, fmt.Errorf("%w: column index out of range", ErrCorrupt)
		}
	}
	return t, nil
}
