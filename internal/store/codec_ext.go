package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cumulon/internal/linalg"
)

// This file holds the storage extensions around the core tile codec:
// optional gzip compression of tile payloads (Cumulon compresses tiles at
// rest; statistical matrices are often highly compressible) and CSV
// ingest/export for getting data in and out of the system.

const magicGzip = 0x43544c5a // "CTLZ"

// CompressTile wraps an encoded tile (dense or sparse) in a gzip
// container. Decoders auto-detect the container by magic.
func CompressTile(encoded []byte) ([]byte, error) {
	var buf bytes.Buffer
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], magicGzip)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(encoded)))
	buf.Write(hdr)
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(encoded); err != nil {
		return nil, fmt.Errorf("store: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("store: compress: %w", err)
	}
	return buf.Bytes(), nil
}

// MaybeDecompressTile unwraps a gzip tile container; non-compressed data
// passes through untouched.
func MaybeDecompressTile(raw []byte) ([]byte, error) {
	if len(raw) < 8 || binary.LittleEndian.Uint32(raw[0:]) != magicGzip {
		return raw, nil
	}
	want := int(binary.LittleEndian.Uint32(raw[4:]))
	zr, err := gzip.NewReader(bytes.NewReader(raw[8:]))
	if err != nil {
		return nil, fmt.Errorf("%w: bad gzip container: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: gzip payload: %v", ErrCorrupt, err)
	}
	if len(out) != want {
		return nil, fmt.Errorf("%w: decompressed %d bytes, header says %d", ErrCorrupt, len(out), want)
	}
	return out, nil
}

// WriteTileCompressed stores one dense tile gzip-compressed.
func (s *Store) WriteTileCompressed(m Meta, ti, tj int, t *linalg.Tile, node int) error {
	raw, err := CompressTile(EncodeTile(t))
	if err != nil {
		return err
	}
	return s.FS.Write(m.TilePath(ti, tj), raw, node)
}

// ReadTileAuto reads a dense tile, transparently decompressing gzip
// containers written by WriteTileCompressed.
func (s *Store) ReadTileAuto(m Meta, ti, tj int, node int) (*linalg.Tile, error) {
	raw, err := s.FS.Read(m.TilePath(ti, tj), node)
	if err != nil {
		return nil, err
	}
	raw, err = MaybeDecompressTile(raw)
	if err != nil {
		return nil, err
	}
	return DecodeTile(raw)
}

// ImportCSV ingests a matrix from CSV text (one row per line, comma
// separated), validating the declared shape, and stores it tile by tile.
func (s *Store) ImportCSV(m Meta, r io.Reader, node int) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = m.Cols
	d := linalg.NewDense(m.Rows, m.Cols)
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("store: csv row %d: %w", row+1, err)
		}
		if row >= m.Rows {
			return fmt.Errorf("store: csv has more than %d rows", m.Rows)
		}
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return fmt.Errorf("store: csv row %d col %d: %w", row+1, j+1, err)
			}
			d.Set(row, j, v)
		}
		row++
	}
	if row != m.Rows {
		return fmt.Errorf("store: csv has %d rows, declared %d", row, m.Rows)
	}
	return s.SaveDense(m, d, node)
}

// ExportCSV writes the matrix as CSV text.
func (s *Store) ExportCSV(m Meta, w io.Writer, node int) error {
	d, err := s.LoadDense(m, node)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	rec := make([]string, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			rec[j] = strconv.FormatFloat(d.At(i, j), 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
