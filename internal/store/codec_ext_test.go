package store

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cumulon/internal/linalg"
)

func TestCompressRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tile := linalg.NewTile(1+rng.Intn(12), 1+rng.Intn(12))
		for i := range tile.Data {
			tile.Data[i] = rng.NormFloat64()
		}
		raw, err := CompressTile(EncodeTile(tile))
		if err != nil {
			return false
		}
		un, err := MaybeDecompressTile(raw)
		if err != nil {
			return false
		}
		got, err := DecodeTile(un)
		return err == nil && got.Equal(tile)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressShrinksSparseData(t *testing.T) {
	// A mostly-zero tile compresses dramatically.
	tile := linalg.NewTile(64, 64)
	tile.Set(3, 3, 1.5)
	enc := EncodeTile(tile)
	comp, err := CompressTile(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(enc)/4 {
		t.Fatalf("compression too weak: %d -> %d bytes", len(enc), len(comp))
	}
}

func TestMaybeDecompressPassThrough(t *testing.T) {
	tile := linalg.NewTileFrom(2, 2, []float64{1, 2, 3, 4})
	enc := EncodeTile(tile)
	out, err := MaybeDecompressTile(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, enc) {
		t.Fatal("uncompressed data should pass through unchanged")
	}
}

func TestDecompressDetectsCorruption(t *testing.T) {
	tile := linalg.NewTileFrom(4, 4, make([]float64, 16))
	comp, err := CompressTile(EncodeTile(tile))
	if err != nil {
		t.Fatal(err)
	}
	comp[10] ^= 0xFF
	if _, err := MaybeDecompressTile(comp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestCompressedTileStoreRoundTrip(t *testing.T) {
	s := newStore(3)
	m := Meta{Name: "Z", Rows: 8, Cols: 8, TileSize: 4}
	tile := linalg.NewTileFrom(4, 4, make([]float64, 16))
	tile.Set(0, 0, 42)
	if err := s.WriteTileCompressed(m, 0, 0, tile, 1); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadTileAuto(m, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tile) {
		t.Fatal("compressed store round trip mismatch")
	}
	// ReadTileAuto also reads plain tiles.
	if err := s.WriteTile(m, 1, 1, tile, 1); err != nil {
		t.Fatal(err)
	}
	got, err = s.ReadTileAuto(m, 1, 1, 0)
	if err != nil || !got.Equal(tile) {
		t.Fatalf("plain tile via auto reader: %v", err)
	}
}

func TestImportExportCSV(t *testing.T) {
	s := newStore(3)
	m := Meta{Name: "C", Rows: 3, Cols: 4, TileSize: 2}
	csvText := "1,2,3,4\n5,6,7.5,8\n-1,0,1e3,0.25\n"
	if err := s.ImportCSV(m, strings.NewReader(csvText), -1); err != nil {
		t.Fatal(err)
	}
	d, err := s.LoadDense(m, -1)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(1, 2) != 7.5 || d.At(2, 2) != 1000 {
		t.Fatalf("imported values wrong: %v %v", d.At(1, 2), d.At(2, 2))
	}
	var out bytes.Buffer
	if err := s.ExportCSV(m, &out, -1); err != nil {
		t.Fatal(err)
	}
	// Re-import the export into a second matrix and compare.
	m2 := m
	m2.Name = "C2"
	if err := s.ImportCSV(m2, bytes.NewReader(out.Bytes()), -1); err != nil {
		t.Fatal(err)
	}
	d2, err := s.LoadDense(m2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.AlmostEqual(d, 0) {
		t.Fatal("csv round trip mismatch")
	}
}

func TestImportCSVErrors(t *testing.T) {
	s := newStore(2)
	m := Meta{Name: "E", Rows: 2, Cols: 2, TileSize: 2}
	cases := []string{
		"1,2\n",          // too few rows
		"1,2\n3,4\n5,6",  // too many rows
		"1,2,3\n4,5,6\n", // wrong column count
		"1,x\n3,4\n",     // bad number
	}
	for i, src := range cases {
		mi := m
		mi.Name = m.Name + string(rune('a'+i))
		if err := s.ImportCSV(mi, strings.NewReader(src), -1); err == nil {
			t.Errorf("case %d: expected import error", i)
		}
	}
}
