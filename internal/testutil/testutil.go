// Package testutil generates random, shape-valid matrix programs and
// matching input data. The planner and both execution engines are tested
// against the reference interpreter on these programs, which exercises
// operator fusion, transposed access paths, chain reordering, fringe
// tiles, and sparse inputs far beyond what hand-written cases cover.
package testutil

import (
	"fmt"
	"math/rand"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
)

// Dims is the dimension family random matrices draw from. Deliberately
// non-multiples of typical tile sizes so fringe tiles are always present.
var Dims = []int{5, 8, 13}

// Gen generates random programs over a fixed input family: one input
// matrix for every (rows, cols) pair in Dims x Dims.
type Gen struct {
	rng *rand.Rand
	env map[string]lang.Shape
}

// NewGen returns a generator with the given seed.
func NewGen(seed int64) *Gen {
	g := &Gen{rng: rand.New(rand.NewSource(seed)), env: map[string]lang.Shape{}}
	for _, r := range Dims {
		for _, c := range Dims {
			g.env[inputName(r, c)] = lang.Shape{Rows: r, Cols: c}
		}
	}
	return g
}

func inputName(r, c int) string { return fmt.Sprintf("M%dx%d", r, c) }

// Inputs returns the input declarations of the generator's environment.
func (g *Gen) Inputs() []lang.Input {
	var ins []lang.Input
	for _, r := range Dims {
		for _, c := range Dims {
			ins = append(ins, lang.Input{Name: inputName(r, c), Rows: r, Cols: c})
		}
	}
	return ins
}

// InputData returns deterministic random matrices for every input.
func (g *Gen) InputData(seed int64) map[string]*linalg.Dense {
	data := map[string]*linalg.Dense{}
	i := int64(0)
	for _, r := range Dims {
		for _, c := range Dims {
			i++
			// Positive entries keep ElemDiv well-conditioned.
			d := linalg.RandomDense(r, c, seed+i)
			data[inputName(r, c)] = d.Map(func(x float64) float64 { return x + 0.5 })
		}
	}
	return data
}

// Expr generates a random expression of the given shape with the given
// remaining recursion depth.
func (g *Gen) Expr(rows, cols, depth int) lang.Expr {
	if depth <= 0 {
		return g.leaf(rows, cols)
	}
	switch g.rng.Intn(8) {
	case 0:
		return g.leaf(rows, cols)
	case 1:
		return lang.Add{L: g.Expr(rows, cols, depth-1), R: g.Expr(rows, cols, depth-1)}
	case 2:
		return lang.Sub{L: g.Expr(rows, cols, depth-1), R: g.Expr(rows, cols, depth-1)}
	case 3:
		return lang.ElemMul{L: g.Expr(rows, cols, depth-1), R: g.Expr(rows, cols, depth-1)}
	case 4:
		return lang.Scale{S: 0.25 + g.rng.Float64(), X: g.Expr(rows, cols, depth-1)}
	case 5:
		// abs keeps values bounded away from overflow under products and
		// is defined everywhere.
		return lang.Apply{Fn: "abs", X: g.Expr(rows, cols, depth-1)}
	case 6:
		return lang.Transpose{X: g.Expr(cols, rows, depth-1)}
	default:
		k := Dims[g.rng.Intn(len(Dims))]
		return lang.MatMul{L: g.Expr(rows, k, depth-1), R: g.Expr(k, cols, depth-1)}
	}
}

func (g *Gen) leaf(rows, cols int) lang.Expr {
	if g.rng.Intn(2) == 0 {
		if _, ok := g.env[inputName(cols, rows)]; ok {
			return lang.Transpose{X: lang.Var{Name: inputName(cols, rows)}}
		}
	}
	return lang.Var{Name: inputName(rows, cols)}
}

// Program generates a random program with nStmts statements; each
// statement may reference inputs and all previously assigned variables
// via direct use in later expressions is approximated by using inputs only
// (statements remain independent, which is sufficient to exercise the
// planner per-statement and keeps shapes simple). The last statement's
// variable is the single output.
func (g *Gen) Program(name string, nStmts, depth int) *lang.Program {
	p := &lang.Program{Name: name, Inputs: g.Inputs()}
	for i := 0; i < nStmts; i++ {
		r := Dims[g.rng.Intn(len(Dims))]
		c := Dims[g.rng.Intn(len(Dims))]
		p.Stmts = append(p.Stmts, lang.Assign{
			Name: fmt.Sprintf("X%d", i),
			Expr: g.Expr(r, c, depth),
		})
		p.Outputs = append(p.Outputs, fmt.Sprintf("X%d", i))
	}
	return p
}

// Env returns a copy of the generator's input shape environment.
func (g *Gen) Env() map[string]lang.Shape {
	out := make(map[string]lang.Shape, len(g.env))
	for k, v := range g.env {
		out[k] = v
	}
	return out
}
