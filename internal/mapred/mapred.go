// Package mapred implements the comparison baseline: a Hadoop
// MapReduce-style execution engine for the same matrix programs, modeled
// after how pre-Cumulon systems (SystemML-on-Hadoop and kin) execute
// linear algebra:
//
//   - one MapReduce job per logical operator — no fusion of element-wise
//     operators into their producers, and an explicit job even for
//     transposes;
//   - every intermediate materialized to the DFS with full replication;
//   - matrix multiplication via RMM (replication-based, one job whose
//     shuffle replicates each input block across the output grid) or CPMM
//     (cross-product, two jobs: group blocks by the inner index, emit
//     partial products, aggregate), with an automatic choice of the
//     cheaper one;
//   - a shuffle between map and reduce: spill to map-side disk, transfer
//     over the network, merge at the reducers.
//
// The engine prices these costs with the same machine profiles
// (cloud.MachineType) and the same virtual-time approach as the Cumulon
// engine, so the comparison isolates the architectural differences the
// paper attributes its speedups to: fewer jobs, no shuffle/sort on the
// common path, and fused element-wise work. Values, when materialization
// is requested, are computed operator-at-a-time against the reference
// semantics, so result equivalence with Cumulon is testable.
package mapred

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"cumulon/internal/chaos"
	"cumulon/internal/cloud"
	"cumulon/internal/compute"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/obs"
)

// Strategy selects the matrix-multiplication MapReduce algorithm.
type Strategy int

const (
	// Auto picks the cheaper of RMM and CPMM per product.
	Auto Strategy = iota
	// RMM forces replication-based matrix multiply (one job).
	RMM
	// CPMM forces cross-product matrix multiply (two jobs).
	CPMM
)

func (s Strategy) String() string {
	switch s {
	case RMM:
		return "RMM"
	case CPMM:
		return "CPMM"
	default:
		return "auto"
	}
}

// Config configures the baseline engine.
type Config struct {
	Cluster     cloud.Cluster
	Replication int // DFS replication (default 3)
	// JobStartupSec is the fixed overhead per MapReduce job: JVM launch,
	// job setup/teardown, scheduler round trips. Hadoop-era default: 15 s
	// (higher than Cumulon's lean job launcher).
	JobStartupSec float64
	// BlockSize is the matrix block edge (SystemML-style blocking).
	BlockSize int
	// SplitMB is the input split size that determines map counts.
	SplitMB int
	// LocalityFraction is the fraction of map input read node-locally
	// (Hadoop with delay scheduling typically achieves 0.8-0.95).
	LocalityFraction float64
	// MergeFactor models the extra disk passes of the shuffle sort/merge.
	MergeFactor float64
	// SerdeMBps is the per-slot throughput of record
	// serialization/deserialization. MapReduce moves matrix blocks as
	// key-value records through sort buffers; this CPU cost is a large
	// part of why array-native engines beat Hadoop-based ones.
	SerdeMBps float64
	// CPUEfficiency discounts the machine's flop rate for the arithmetic
	// done inside MR tasks (boxed records, per-block virtual dispatch, JVM
	// copies), relative to Cumulon's array-native kernels. Hadoop-era
	// linear-algebra systems typically realized about half the raw rate.
	CPUEfficiency float64
	Strategy      Strategy
	// Materialize computes real values operator-at-a-time (for result
	// equivalence tests). Timing is unaffected.
	Materialize bool
	Seed        int64
	NoiseFactor float64
	// Workers sets the compute parallelism for materialized values: each
	// operator's arithmetic row-stripes across min(Workers, GOMAXPROCS)
	// goroutines via the shared compute layer. Results and timing are
	// unaffected. 0 or 1 computes sequentially.
	Workers int
	// Backend overrides the compute backend (tests use it to force a
	// specific pool width). When set, Workers is ignored.
	Backend compute.Backend
	// Chaos injects the same deterministic fault schedule the Cumulon
	// engine honors: node crashes shrink the live cluster for every job
	// priced after the crash time, and per-task fault decisions (hashed
	// from job/phase/task coordinates) cost extra retry waves. The
	// baseline has no data to lose — intermediates are fully replicated —
	// so faults only stretch the timeline.
	Chaos *chaos.Schedule
	// Recorder receives the run's observability spans. The baseline engine
	// records coarsely — one program span, one span per MR job with
	// map/shuffle/reduce phases — enough for the critical-path analyzer
	// and the predicted-vs-actual differ. nil disables recording.
	Recorder obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Replication == 0 {
		c.Replication = 3
	}
	if c.JobStartupSec == 0 {
		c.JobStartupSec = 15
	}
	if c.BlockSize == 0 {
		c.BlockSize = 1000
	}
	if c.SplitMB == 0 {
		c.SplitMB = 64
	}
	if c.LocalityFraction == 0 {
		c.LocalityFraction = 0.85
	}
	if c.MergeFactor == 0 {
		c.MergeFactor = 1.5
	}
	if c.SerdeMBps == 0 {
		c.SerdeMBps = 150
	}
	if c.CPUEfficiency == 0 {
		c.CPUEfficiency = 0.5
	}
	return c
}

// JobRecord describes one executed MapReduce job.
type JobRecord struct {
	Name         string
	Op           string
	MapTasks     int
	ReduceTasks  int
	InputBytes   int64
	ShuffleBytes int64
	OutputBytes  int64
	Flops        int64
	Seconds      float64
	// Retries counts task attempts lost to injected faults and re-run in
	// extra waves at the end of the map/reduce phase.
	Retries int
}

// RunMetrics aggregates a baseline program execution.
type RunMetrics struct {
	TotalSeconds      float64
	Jobs              []JobRecord
	TotalShuffleBytes int64
	TotalReadBytes    int64
	TotalWriteBytes   int64
	TotalFlops        int64
	TotalRetries      int
}

// matInfo tracks a (virtual) materialized matrix.
type matInfo struct {
	rows, cols int
	sparse     bool
	density    float64
	value      *linalg.Dense // nil unless materializing
}

func (m matInfo) bytes() int64 {
	d := 1.0
	if m.sparse && m.density > 0 && m.density <= 1 {
		d = m.density
	}
	b := float64(m.rows) * float64(m.cols) * 8 * d
	if m.sparse {
		b *= 1.5 // CSR index overhead
	}
	return int64(b)
}

// Engine executes programs MapReduce-style.
type Engine struct {
	cfg Config
	rng *rand.Rand
	be  compute.Backend // runs the materialized arithmetic
	rec obs.Recorder
	inj *chaos.Injector
	// prog is the program span of the Run in progress (emitJob parents
	// its job spans under it).
	prog obs.SpanID
}

// New creates a baseline engine.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Cluster.Nodes <= 0 || cfg.Cluster.Slots <= 0 {
		return nil, fmt.Errorf("mapred: invalid cluster %+v", cfg.Cluster)
	}
	if err := cfg.Chaos.Validate(); err != nil {
		return nil, fmt.Errorf("mapred: %w", err)
	}
	be := cfg.Backend
	if be == nil {
		n := cfg.Workers
		if g := runtime.GOMAXPROCS(0); n > g {
			n = g
		}
		if cfg.Materialize && n > 1 {
			be = compute.NewPool(n)
		} else {
			be = compute.NewSequential()
		}
	}
	return &Engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), be: be,
		rec: obs.OrNop(cfg.Recorder), inj: chaos.NewInjector(cfg.Chaos)}, nil
}

// Run executes the program. densities estimates sparse-input densities by
// name; inputs supplies real values when Materialize is on. It returns
// metrics and, when materializing, the output values.
func (e *Engine) Run(p *lang.Program, densities map[string]float64, inputs map[string]*linalg.Dense) (*RunMetrics, map[string]*linalg.Dense, error) {
	if _, err := p.Validate(); err != nil {
		return nil, nil, err
	}
	env := map[string]matInfo{}
	for _, in := range p.Inputs {
		mi := matInfo{rows: in.Rows, cols: in.Cols, sparse: in.Sparse, density: densities[in.Name]}
		if e.cfg.Materialize {
			d, ok := inputs[in.Name]
			if !ok {
				return nil, nil, fmt.Errorf("mapred: missing input %s", in.Name)
			}
			mi.value = d
		}
		env[in.Name] = mi
	}
	m := &RunMetrics{}
	e.prog = e.rec.Start(obs.KindProgram, "program", obs.NoSpan, 0)
	for si, st := range p.Stmts {
		mi, err := e.evalExpr(fmt.Sprintf("s%d", si), st.Expr, env, m)
		if err != nil {
			return nil, nil, err
		}
		env[st.Name] = mi
	}
	e.rec.End(e.prog, m.TotalSeconds)
	outs := map[string]*linalg.Dense{}
	if e.cfg.Materialize {
		for _, o := range p.Outputs {
			outs[o] = env[o].value
		}
	}
	return m, outs, nil
}

// evalExpr walks the expression post-order, emitting one (or two) MR jobs
// per operator node.
func (e *Engine) evalExpr(label string, expr lang.Expr, env map[string]matInfo, m *RunMetrics) (matInfo, error) {
	switch x := expr.(type) {
	case lang.Var:
		mi, ok := env[x.Name]
		if !ok {
			return matInfo{}, fmt.Errorf("mapred: undefined variable %s", x.Name)
		}
		return mi, nil
	case lang.Transpose:
		in, err := e.evalExpr(label, x.X, env, m)
		if err != nil {
			return matInfo{}, err
		}
		out := matInfo{rows: in.cols, cols: in.rows, sparse: in.sparse, density: in.density}
		if in.value != nil {
			out.value = compute.TransposeDense(e.be, in.value)
		}
		// Transpose is a full shuffle job: every block changes key.
		e.emitJob(m, label, "transpose", in.bytes(), in.bytes(), out.bytes(), 0, true)
		return out, nil
	case lang.Scale:
		in, err := e.evalExpr(label, x.X, env, m)
		if err != nil {
			return matInfo{}, err
		}
		out := matInfo{rows: in.rows, cols: in.cols}
		if in.value != nil {
			out.value = compute.ScaleDense(e.be, in.value, x.S)
		}
		elems := int64(in.rows) * int64(in.cols)
		e.emitJob(m, label, "scale", in.bytes(), 0, out.bytes(), elems, false)
		return out, nil
	case lang.Apply:
		in, err := e.evalExpr(label, x.X, env, m)
		if err != nil {
			return matInfo{}, err
		}
		out := matInfo{rows: in.rows, cols: in.cols}
		if in.value != nil {
			out.value = compute.MapDense(e.be, in.value, lang.Funcs[x.Fn])
		}
		elems := int64(in.rows) * int64(in.cols)
		e.emitJob(m, label, x.Fn, in.bytes(), 0, out.bytes(), elems, false)
		return out, nil
	case lang.Add, lang.Sub, lang.ElemMul, lang.ElemDiv:
		l, r := binaryOperands(x)
		li, err := e.evalExpr(label, l, env, m)
		if err != nil {
			return matInfo{}, err
		}
		ri, err := e.evalExpr(label, r, env, m)
		if err != nil {
			return matInfo{}, err
		}
		out := matInfo{rows: li.rows, cols: li.cols}
		if li.value != nil && ri.value != nil {
			f, ok := compute.ZipFunc(x)
			if !ok {
				return matInfo{}, fmt.Errorf("mapred: not a binary op: %T", x)
			}
			out.value = compute.ZipDense(e.be, li.value, ri.value, f)
		}
		elems := int64(li.rows) * int64(li.cols)
		// Aligning the two block streams requires shuffling both inputs.
		in := li.bytes() + ri.bytes()
		e.emitJob(m, label, opName(x), in, in, out.bytes(), elems, true)
		return out, nil
	case lang.MatMul:
		li, err := e.evalExpr(label, x.L, env, m)
		if err != nil {
			return matInfo{}, err
		}
		ri, err := e.evalExpr(label, x.R, env, m)
		if err != nil {
			return matInfo{}, err
		}
		return e.emitMatMul(label, li, ri, m)
	default:
		return matInfo{}, fmt.Errorf("mapred: unsupported node %T", expr)
	}
}

// emitMatMul emits the RMM or CPMM job(s) for li x ri.
func (e *Engine) emitMatMul(label string, li, ri matInfo, m *RunMetrics) (matInfo, error) {
	if li.cols != ri.rows {
		return matInfo{}, fmt.Errorf("mapred: matmul shape mismatch %dx%d * %dx%d", li.rows, li.cols, ri.rows, ri.cols)
	}
	out := matInfo{rows: li.rows, cols: ri.cols}
	if li.value != nil && ri.value != nil {
		out.value = compute.MulDense(e.be, li.value, ri.value)
	}
	bs := e.cfg.BlockSize
	ib := ceilDiv(li.rows, bs)
	kb := ceilDiv(li.cols, bs)
	jb := ceilDiv(ri.cols, bs)
	dl := 1.0
	if li.sparse && li.density > 0 {
		dl = li.density
	}
	flops := int64(2 * dl * float64(li.rows) * float64(li.cols) * float64(ri.cols))

	// RMM: single job; shuffle replicates A jb times and B ib times.
	rmmShuffle := li.bytes()*int64(jb) + ri.bytes()*int64(ib)
	// CPMM: job 1 shuffles A and B once grouped by k, emits kb partial
	// C-sized outputs; job 2 shuffles partials and sums.
	partials := out.bytes() * int64(kb)
	cpmmShuffle1 := li.bytes() + ri.bytes()
	cpmmShuffle2 := partials

	strat := e.cfg.Strategy
	if strat == Auto {
		// Compare total shuffled bytes, the dominant cost driver; the
		// second job's fixed overhead breaks near-ties toward RMM.
		if rmmShuffle <= cpmmShuffle1+cpmmShuffle2+partials/4 {
			strat = RMM
		} else {
			strat = CPMM
		}
	}
	switch strat {
	case RMM:
		e.emitJob(m, label, "matmul-RMM", li.bytes()+ri.bytes(), rmmShuffle, out.bytes(), flops, true)
	case CPMM:
		e.emitJob(m, label, "matmul-CPMM-1", li.bytes()+ri.bytes(), cpmmShuffle1, partials, flops, true)
		addFlops := int64(float64(out.rows) * float64(out.cols) * float64(kb-1))
		e.emitJob(m, label, "matmul-CPMM-2", partials, cpmmShuffle2, out.bytes(), addFlops, true)
	}
	return out, nil
}

// emitJob prices one MapReduce job and appends its record. hasReduce
// distinguishes map-only jobs (unary transforms) from full shuffle jobs.
func (e *Engine) emitJob(m *RunMetrics, label, op string, inputBytes, shuffleBytes, outputBytes, flops int64, hasReduce bool) {
	c := e.cfg
	mt := c.Cluster.Type
	jobID := len(m.Jobs)
	// Node crashes before this job's launch shrink the live cluster: fewer
	// slots per wave and less aggregate network/disk behind the shuffle.
	liveNodes := c.Cluster.Nodes - e.inj.CrashedBefore(m.TotalSeconds)
	if liveNodes < 1 {
		liveNodes = 1
	}
	totalSlots := liveNodes * c.Cluster.Slots
	splitBytes := int64(c.SplitMB) << 20
	maps := int(ceilDiv64(inputBytes, splitBytes))
	if maps < 1 {
		maps = 1
	}
	reduces := 0
	if hasReduce {
		reduces = totalSlots
		if reduces < 1 {
			reduces = 1
		}
	}

	// Map phase: read input (mostly local), compute, spill shuffle output.
	mapWaves := math.Ceil(float64(maps) / float64(totalSlots))
	localIn := int64(float64(inputBytes) * c.LocalityFraction)
	remoteIn := inputBytes - localIn
	// Record-oriented processing discounts the flop rate and charges
	// serialization per byte that crosses a task boundary.
	effFlops := int64(float64(flops) / c.CPUEfficiency)
	serdeRate := c.SerdeMBps * 1e6
	mapFlops, redFlops := effFlops, int64(0)
	if hasReduce {
		// The arithmetic happens at the reducers for shuffle jobs.
		mapFlops, redFlops = 0, effFlops
	}
	perMap := mt.TaskSeconds(c.Cluster.Slots,
		mapFlops/int64(maps),
		(localIn+shuffleBytes)/int64(maps), // read input + spill to local disk
		remoteIn/int64(maps)) +
		float64(inputBytes+shuffleBytes)/float64(maps)/serdeRate
	mapPhase := mapWaves * perMap

	// Injected task faults re-run in extra waves at the end of their phase,
	// Hadoop-style: the job tracker reschedules failed attempts after the
	// healthy waves drain. The decisions hash off the job/phase/task
	// coordinates, so reruns are deterministic for a given schedule.
	retries := 0
	for i := 0; i < maps; i++ {
		if e.inj.TaskFault(jobID, 0, i, 0) {
			retries++
		}
	}
	recSec := math.Ceil(float64(retries)/float64(totalSlots)) * perMap

	// Shuffle: transfer over the cluster network, then the sort/merge disk
	// passes at the reducers.
	var shufflePhase float64
	if shuffleBytes > 0 {
		netAgg := float64(liveNodes) * mt.NetMBps * 1e6
		diskAgg := float64(liveNodes) * mt.DiskMBps * 1e6
		shufflePhase = float64(shuffleBytes)/netAgg + c.MergeFactor*float64(shuffleBytes)/diskAgg
	}

	// Reduce phase: read merged runs, compute, write output with
	// replication (extra copies traverse the network).
	var reducePhase float64
	writer := maps
	if hasReduce {
		writer = reduces
	}
	repl := int64(c.Replication)
	if n := int64(liveNodes); repl > n {
		repl = n
	}
	if hasReduce {
		perReduce := mt.TaskSeconds(c.Cluster.Slots,
			redFlops/int64(reduces),
			(shuffleBytes+outputBytes)/int64(reduces),
			(outputBytes*(repl-1))/int64(reduces)) +
			float64(shuffleBytes+outputBytes)/float64(reduces)/serdeRate
		reduceWaves := math.Ceil(float64(reduces) / float64(totalSlots))
		reducePhase = reduceWaves * perReduce
		failedRed := 0
		for i := 0; i < reduces; i++ {
			if e.inj.TaskFault(jobID, 1, i, 0) {
				failedRed++
			}
		}
		retries += failedRed
		recSec += math.Ceil(float64(failedRed)/float64(totalSlots)) * perReduce
	} else {
		// Map-only job writes output from the mappers.
		perMapWrite := mt.TaskSeconds(c.Cluster.Slots, 0,
			outputBytes/int64(writer), (outputBytes*(repl-1))/int64(writer))
		reducePhase = (perMapWrite - mt.StartupSec) * mapWaves
		if reducePhase < 0 {
			reducePhase = 0
		}
	}

	secs := c.JobStartupSec + mapPhase + shufflePhase + reducePhase + recSec
	if c.NoiseFactor > 0 {
		secs *= 1 + c.NoiseFactor*e.rng.ExpFloat64()
	}
	if e.rec.Enabled() {
		e.recordJobSpans(jobID, label, op, m.TotalSeconds, secs,
			c.JobStartupSec, mapPhase, shufflePhase, reducePhase, recSec)
	}
	m.Jobs = append(m.Jobs, JobRecord{
		Name: label, Op: op,
		MapTasks: maps, ReduceTasks: reduces,
		InputBytes: inputBytes, ShuffleBytes: shuffleBytes, OutputBytes: outputBytes,
		Flops: flops, Seconds: secs, Retries: retries,
	})
	m.TotalRetries += retries
	m.TotalSeconds += secs
	m.TotalShuffleBytes += shuffleBytes
	m.TotalReadBytes += inputBytes
	m.TotalWriteBytes += outputBytes
	m.TotalFlops += flops
}

// recordJobSpans emits the span tree of one MR job: the job span under
// the program span, then one phase (with a single coarse task) per
// nonzero stage, each attributed to one time category — map time to
// compute, shuffle to remote reads, reduce to writes, fault reruns to
// recovery. The noise-free stage durations are scaled so the phases tile
// [start, start+secs] exactly, with the job-startup gap left before the
// first phase (the critical-path analyzer attributes it to startup).
func (e *Engine) recordJobSpans(jobID int, label, op string, start, secs, startup, mapSec, shufSec, redSec, recSec float64) {
	scale := 1.0
	if sum := startup + mapSec + shufSec + redSec + recSec; sum > 0 {
		scale = secs / sum
	}
	j := e.rec.Start(obs.KindJob, label+":"+op, e.prog, start)
	e.rec.SetAttrs(j, obs.Attrs{JobID: jobID})
	clock := start + startup*scale
	phase := 0
	emit := func(name string, sec float64, cat obs.Category) {
		if sec <= 0 {
			return
		}
		full := fmt.Sprintf("%s/%s", label, name)
		p := e.rec.Start(obs.KindPhase, full, j, clock)
		e.rec.SetAttrs(p, obs.Attrs{JobID: jobID, Phase: phase})
		t := e.rec.Start(obs.KindTask, full, p, clock)
		var b obs.Breakdown
		b[cat] = sec * scale
		e.rec.SetAttrs(t, obs.Attrs{JobID: jobID, Phase: phase, Breakdown: b})
		clock += sec * scale
		e.rec.End(t, clock)
		e.rec.End(p, clock)
		phase++
	}
	emit("map", mapSec, obs.CatCompute)
	emit("shuffle", shufSec, obs.CatRemoteRead)
	emit("reduce", redSec, obs.CatWrite)
	emit("retry", recSec, obs.CatRecovery)
	e.rec.End(j, start+secs)
}

func binaryOperands(e lang.Expr) (l, r lang.Expr) {
	switch x := e.(type) {
	case lang.Add:
		return x.L, x.R
	case lang.Sub:
		return x.L, x.R
	case lang.ElemMul:
		return x.L, x.R
	case lang.ElemDiv:
		return x.L, x.R
	}
	panic("mapred: not a binary op")
}

func opName(e lang.Expr) string {
	switch e.(type) {
	case lang.Add:
		return "add"
	case lang.Sub:
		return "sub"
	case lang.ElemMul:
		return "elemmul"
	case lang.ElemDiv:
		return "elemdiv"
	}
	return "?"
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a, b int64) int64 {
	if a <= 0 {
		return 1
	}
	return (a + b - 1) / b
}
