package mapred

import (
	"strings"
	"testing"

	"cumulon/internal/chaos"
	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/testutil"
)

func cluster(t *testing.T, nodes, slots int) cloud.Cluster {
	t.Helper()
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOneJobPerOperator(t *testing.T) {
	e, err := New(Config{Cluster: cluster(t, 4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	p := parse(t, `
input A 2000 2000
input B 2000 2000
C = (A .* B) + A
output C
`)
	m, _, err := e.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// .* and + are two separate jobs — no fusion in the baseline.
	if len(m.Jobs) != 2 {
		t.Fatalf("want 2 jobs, got %d: %+v", len(m.Jobs), m.Jobs)
	}
	for _, j := range m.Jobs {
		if j.ShuffleBytes == 0 {
			t.Fatalf("binary op must shuffle: %+v", j)
		}
	}
}

func TestTransposeIsAJob(t *testing.T) {
	e, _ := New(Config{Cluster: cluster(t, 4, 2)})
	p := parse(t, "input A 3000 1000\nB = A'\noutput B")
	m, _, err := e.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs) != 1 || m.Jobs[0].Op != "transpose" {
		t.Fatalf("jobs: %+v", m.Jobs)
	}
}

func TestRMMvsCPMMShuffleTradeoff(t *testing.T) {
	// Square product with many blocks per side: RMM shuffle explodes with
	// the replication factor, CPMM stays linear — Auto must pick CPMM.
	p := parse(t, `
input A 20000 20000
input B 20000 20000
C = A * B
output C
`)
	run := func(s Strategy) *RunMetrics {
		e, _ := New(Config{Cluster: cluster(t, 8, 2), Strategy: s})
		m, _, err := e.Run(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	rmm, cpmm, auto := run(RMM), run(CPMM), run(Auto)
	if rmm.TotalShuffleBytes <= cpmm.TotalShuffleBytes {
		t.Fatalf("expected RMM to shuffle more here: %d vs %d", rmm.TotalShuffleBytes, cpmm.TotalShuffleBytes)
	}
	if auto.TotalSeconds > rmm.TotalSeconds && auto.TotalSeconds > cpmm.TotalSeconds {
		t.Fatalf("auto (%v) worse than both RMM (%v) and CPMM (%v)",
			auto.TotalSeconds, rmm.TotalSeconds, cpmm.TotalSeconds)
	}
	if !strings.Contains(auto.Jobs[0].Op, "CPMM") {
		t.Fatalf("auto should pick CPMM for square many-block product: %+v", auto.Jobs)
	}
}

func TestRMMWinsForSmallRHS(t *testing.T) {
	// A (tall) times a one-block B: RMM replicates B once per row block of
	// A but CPMM materializes K partials of C; RMM should win.
	p := parse(t, `
input A 20000 1000
input B 1000 500
C = A * B
output C
`)
	e, _ := New(Config{Cluster: cluster(t, 8, 2), Strategy: Auto})
	m, _, err := e.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Jobs[0].Op, "RMM") {
		t.Fatalf("auto should pick RMM: %+v", m.Jobs)
	}
}

func TestMaterializedResultsMatchInterpreter(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := testutil.NewGen(seed)
		prog := g.Program("rand", 2, 3)
		data := g.InputData(seed * 3)
		want, err := lang.Interpret(prog, data)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := New(Config{Cluster: cluster(t, 2, 2), Materialize: true})
		_, outs, err := e.Run(prog, nil, data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, w := range want {
			if !outs[name].AlmostEqual(w, 1e-9) {
				t.Fatalf("seed %d output %s mismatch", seed, name)
			}
		}
	}
}

func TestSparseDiscountsBytesAndFlops(t *testing.T) {
	src := `
input V 20000 20000 sparse
input H 20000 100
X = V * H
output X
`
	dense := parse(t, strings.Replace(src, " sparse", "", 1))
	sparse := parse(t, src)
	e, _ := New(Config{Cluster: cluster(t, 4, 2)})
	md, _, err := e.Run(dense, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := e.Run(sparse, map[string]float64{"V": 0.01}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ms.TotalFlops >= md.TotalFlops {
		t.Fatalf("sparse flops %d not below dense %d", ms.TotalFlops, md.TotalFlops)
	}
	if ms.TotalSeconds >= md.TotalSeconds {
		t.Fatalf("sparse run %v not faster than dense %v", ms.TotalSeconds, md.TotalSeconds)
	}
}

func TestMoreNodesFaster(t *testing.T) {
	p := parse(t, `
input A 10000 10000
input B 10000 10000
C = A * B
output C
`)
	run := func(nodes int) float64 {
		e, _ := New(Config{Cluster: cluster(t, nodes, 2)})
		m, _, err := e.Run(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalSeconds
	}
	if t8, t2 := run(8), run(2); t8 >= t2 {
		t.Fatalf("8 nodes (%v) not faster than 2 (%v)", t8, t2)
	}
}

func TestValidatesPrograms(t *testing.T) {
	e, _ := New(Config{Cluster: cluster(t, 2, 2)})
	p := &lang.Program{
		Inputs:  []lang.Input{{Name: "A", Rows: 10, Cols: 20}},
		Stmts:   []lang.Assign{{Name: "B", Expr: lang.MatMul{L: lang.Var{Name: "A"}, R: lang.Var{Name: "A"}}}},
		Outputs: []string{"B"},
	}
	if _, _, err := e.Run(p, nil, nil); err == nil {
		t.Fatal("want validation error")
	}
}

func TestMissingInputWhenMaterializing(t *testing.T) {
	e, _ := New(Config{Cluster: cluster(t, 2, 2), Materialize: true})
	p := parse(t, "input A 4 4\nB = A\noutput B")
	if _, _, err := e.Run(p, nil, map[string]*linalg.Dense{}); err == nil {
		t.Fatal("want missing-input error")
	}
}

func TestDeterministicTiming(t *testing.T) {
	p := parse(t, "input A 5000 5000\nB = A .* A\noutput B")
	run := func() float64 {
		e, _ := New(Config{Cluster: cluster(t, 4, 2), Seed: 9, NoiseFactor: 0.1})
		m, _, err := e.Run(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalSeconds
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic timing: %v vs %v", a, b)
	}
}

// TestChaosStretchesBaselineTimeline: the same chaos schedule the Cumulon
// engine honors must slow the baseline down — crashes shrink the slot pool
// for later jobs, injected task faults cost extra retry waves — without
// touching materialized results (intermediates are fully replicated).
func TestChaosStretchesBaselineTimeline(t *testing.T) {
	p := parse(t, `
input A 10000 10000
input B 10000 10000
C = A * B
D = C .* A
output D
`)
	run := func(sched *chaos.Schedule) *RunMetrics {
		e, err := New(Config{Cluster: cluster(t, 8, 2), Chaos: sched})
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := e.Run(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	clean := run(nil)
	faulty := run(&chaos.Schedule{Seed: 3, TaskFaultProb: 0.2})
	if faulty.TotalRetries == 0 {
		t.Fatal("chaos schedule produced no retries; test exercises nothing")
	}
	if faulty.TotalSeconds <= clean.TotalSeconds {
		t.Fatalf("faulty run %v not slower than clean %v", faulty.TotalSeconds, clean.TotalSeconds)
	}
	sum := 0
	for _, j := range faulty.Jobs {
		sum += j.Retries
	}
	if sum != faulty.TotalRetries {
		t.Fatalf("per-job retries sum %d != TotalRetries %d", sum, faulty.TotalRetries)
	}

	// A node lost before the program starts leaves fewer slots for every
	// job: strictly slower than the full cluster even with no task faults.
	crashed := run(&chaos.Schedule{Crashes: []chaos.NodeCrash{{Node: 2, At: 0}}})
	if crashed.TotalRetries != 0 {
		t.Fatalf("crash-only schedule recorded %d retries", crashed.TotalRetries)
	}
	if crashed.TotalSeconds <= clean.TotalSeconds {
		t.Fatalf("crashed run %v not slower than clean %v", crashed.TotalSeconds, clean.TotalSeconds)
	}

	// Determinism: same schedule, same timeline.
	if again := run(&chaos.Schedule{Seed: 3, TaskFaultProb: 0.2}); again.TotalSeconds != faulty.TotalSeconds {
		t.Fatalf("chaos timing nondeterministic: %v vs %v", again.TotalSeconds, faulty.TotalSeconds)
	}
}
