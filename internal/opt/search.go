package opt

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"cumulon/internal/sim"
)

// PruneReason classifies why the search rejected a candidate deployment.
type PruneReason uint8

const (
	// PruneNone marks a candidate that was not rejected (the winner, or a
	// candidate of an enumeration with no objective).
	PruneNone PruneReason = iota
	// PruneDominated: some other candidate is no worse in both time and
	// cost and strictly better in one (exact ties keep the
	// earliest-evaluated candidate).
	PruneDominated
	// PruneOverDeadline: predicted time exceeds the deadline.
	PruneOverDeadline
	// PruneOverBudget: billed cost exceeds the budget.
	PruneOverBudget
	// PruneConfidence: the point estimate met the deadline but the
	// simulated confidence quantile did not.
	PruneConfidence
	// PruneOutranked: feasible and Pareto-optimal, but worse than the
	// winner on the optimized objective (a legitimate alternative
	// tradeoff, not an error).
	PruneOutranked
	// NumPruneReasons sizes per-reason count arrays.
	NumPruneReasons
)

func (r PruneReason) String() string {
	switch r {
	case PruneNone:
		return "none"
	case PruneDominated:
		return "pareto-dominated-by"
	case PruneOverDeadline:
		return "over-deadline"
	case PruneOverBudget:
		return "over-budget"
	case PruneConfidence:
		return "confidence-rejected"
	case PruneOutranked:
		return "outranked-by-winner"
	}
	return "?"
}

// pruneReasonByName inverts String for trace replay.
func pruneReasonByName(s string) PruneReason {
	for r := PruneReason(0); r < NumPruneReasons; r++ {
		if r.String() == s {
			return r
		}
	}
	return PruneNone
}

// SearchCounter names one scalar search counter. Candidate and prune
// counts are derived from the recorded candidates themselves; these
// counters cover events with no candidate record of their own.
type SearchCounter uint8

const (
	// CounterSearches counts constrained searches (not bare enumerations).
	CounterSearches SearchCounter = iota
	// CounterModelCacheHits counts calibrated-model cache hits.
	CounterModelCacheHits
	// CounterModelCacheMisses counts calibrations performed.
	CounterModelCacheMisses
	// CounterSimTrials counts Monte Carlo completion-time trials.
	CounterSimTrials
	// CounterCSEChains counts matrix-product chains the cross-statement
	// CSE pass eliminated across all plan compilations of the search.
	CounterCSEChains
	// CounterCSEFlops counts the flops those eliminations saved.
	CounterCSEFlops
	// NumSearchCounters sizes counter arrays.
	NumSearchCounters
)

func (c SearchCounter) String() string {
	switch c {
	case CounterSearches:
		return "searches"
	case CounterModelCacheHits:
		return "model_cache_hits"
	case CounterModelCacheMisses:
		return "model_cache_misses"
	case CounterSimTrials:
		return "sim_trials"
	case CounterCSEChains:
		return "cse_chains"
	case CounterCSEFlops:
		return "cse_flops_saved"
	}
	return "?"
}

// Candidate is one evaluated grid point of the deployment search, with
// everything the search learned about it. Seq is its 0-based evaluation
// order within one search; Prune and Winner calls refer back to it.
type Candidate struct {
	Seq        int
	Deployment Deployment
	// Terms is the model-term decomposition of the predicted time.
	Terms sim.Terms
	// Pruned is why the candidate lost (PruneNone for the winner, and for
	// every candidate of an unconstrained enumeration).
	Pruned PruneReason
	// DominatedBy is the Seq of a dominating candidate when Pruned is
	// PruneDominated, -1 otherwise.
	DominatedBy int
	// QuantileSec is the simulated confidence-quantile completion time,
	// recorded only for candidates the confident search actually
	// simulated (0 otherwise).
	QuantileSec float64
	// Winner marks the search's answer (also set, with Met false, on the
	// closest candidate of an unsatisfiable search).
	Winner bool
}

// SearchRecorder receives candidate-level telemetry from the optimizer.
// The search calls it from a single goroutine; implementations must be
// safe for concurrent use anyway (SearchTrace is). The zero-cost default
// is NopSearch; hot paths guard all Candidate construction behind
// Enabled.
type SearchRecorder interface {
	// Enabled reports whether recording has any effect.
	Enabled() bool
	// Begin opens one constrained search. objective is "min-cost-deadline"
	// or "min-time-budget"; constraint is the deadline in seconds or the
	// budget in dollars; confidence is 0 for point estimates.
	Begin(objective string, constraint, confidence float64)
	// Candidate records one evaluated grid point. The caller assigns Seq.
	Candidate(c Candidate)
	// Prune marks candidate seq as rejected. dominatedBy is the Seq of a
	// dominating candidate (PruneDominated) or -1; quantileSec is the
	// simulated quantile (PruneConfidence) or 0.
	Prune(seq int, reason PruneReason, dominatedBy int, quantileSec float64)
	// Winner marks candidate seq as the search's answer; met reports
	// whether it satisfies the constraint.
	Winner(seq int, met bool)
	// Count bumps a scalar search counter by n.
	Count(c SearchCounter, n int64)
}

// nopSearch is the zero-cost disabled recorder.
type nopSearch struct{}

// NopSearch returns the no-op SearchRecorder: Enabled is false and every
// method is an empty shell, so an unobserved search performs no
// telemetry work at all.
func NopSearch() SearchRecorder { return nopSearch{} }

func (nopSearch) Enabled() bool                        { return false }
func (nopSearch) Begin(string, float64, float64)       {}
func (nopSearch) Candidate(Candidate)                  {}
func (nopSearch) Prune(int, PruneReason, int, float64) {}
func (nopSearch) Winner(int, bool)                     {}
func (nopSearch) Count(SearchCounter, int64)           {}

// searchOrNop returns r, or the no-op recorder when r is nil, so Request
// can leave the field unset.
func searchOrNop(r SearchRecorder) SearchRecorder {
	if r == nil {
		return NopSearch()
	}
	return r
}

// SearchRecord is one recorded search: its objective, its candidates in
// evaluation order, and its outcome.
type SearchRecord struct {
	// Objective is "min-cost-deadline", "min-time-budget", or "enumerate"
	// for candidates recorded outside a constrained search.
	Objective  string
	Constraint float64
	Confidence float64
	// Met reports whether the constraint was satisfiable.
	Met bool
	// WinnerSeq is the Seq of the winning candidate, -1 if none was
	// declared.
	WinnerSeq  int
	Candidates []Candidate
}

// SearchTrace is the buffered SearchRecorder: it accumulates every
// search of an optimizer session (counters are cumulative across
// searches) and exports JSON/CSV traces, EXPLAIN reports, Pareto
// frontier renderings and a metrics snapshot.
type SearchTrace struct {
	mu       sync.Mutex
	searches []*SearchRecord
	counters [NumSearchCounters]int64
}

// NewSearchTrace returns an empty search trace.
func NewSearchTrace() *SearchTrace { return &SearchTrace{} }

// Enabled reports true: a SearchTrace always records.
func (t *SearchTrace) Enabled() bool { return true }

// Begin opens a new search record.
func (t *SearchTrace) Begin(objective string, constraint, confidence float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.searches = append(t.searches, &SearchRecord{
		Objective: objective, Constraint: constraint, Confidence: confidence,
		WinnerSeq: -1,
	})
}

// current returns the open search record, creating an implicit
// "enumerate" record for candidates arriving outside Begin/Winner (the
// bench harness sweeps Enumerate directly).
func (t *SearchTrace) current() *SearchRecord {
	if len(t.searches) == 0 {
		t.searches = append(t.searches, &SearchRecord{Objective: "enumerate", WinnerSeq: -1})
	}
	return t.searches[len(t.searches)-1]
}

// Candidate appends one evaluated grid point to the current search.
func (t *SearchTrace) Candidate(c Candidate) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.current()
	if c.DominatedBy == 0 {
		c.DominatedBy = -1 // zero value means "none"; Seq 0 is set via Prune
	}
	s.Candidates = append(s.Candidates, c)
}

// Prune marks candidate seq of the current search as rejected.
func (t *SearchTrace) Prune(seq int, reason PruneReason, dominatedBy int, quantileSec float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.current()
	if seq < 0 || seq >= len(s.Candidates) {
		return
	}
	c := &s.Candidates[seq]
	c.Pruned = reason
	c.DominatedBy = dominatedBy
	if quantileSec > 0 {
		c.QuantileSec = quantileSec
	}
}

// Winner marks candidate seq of the current search as its answer.
func (t *SearchTrace) Winner(seq int, met bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.current()
	if seq < 0 || seq >= len(s.Candidates) {
		return
	}
	s.WinnerSeq = seq
	s.Met = met
	s.Candidates[seq].Winner = true
}

// Count bumps a scalar counter.
func (t *SearchTrace) Count(c SearchCounter, n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c < NumSearchCounters {
		t.counters[c] += n
	}
}

// CounterValue reads one scalar counter.
func (t *SearchTrace) CounterValue(c SearchCounter) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c >= NumSearchCounters {
		return 0
	}
	return t.counters[c]
}

// Searches returns copies of the recorded searches in recording order.
func (t *SearchTrace) Searches() []SearchRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SearchRecord, len(t.searches))
	for i, s := range t.searches {
		out[i] = *s
		out[i].Candidates = append([]Candidate(nil), s.Candidates...)
	}
	return out
}

// Last returns a copy of the most recent search, or false when nothing
// was recorded.
func (t *SearchTrace) Last() (SearchRecord, bool) {
	all := t.Searches()
	if len(all) == 0 {
		return SearchRecord{}, false
	}
	return all[len(all)-1], true
}

// prunedCounts tallies candidates by prune reason across all searches.
func prunedCounts(searches []SearchRecord) [NumPruneReasons]int64 {
	var out [NumPruneReasons]int64
	for _, s := range searches {
		for _, c := range s.Candidates {
			out[c.Pruned]++
		}
	}
	return out
}

// --- JSON / CSV export ---------------------------------------------------

// traceJSON is the exported search-trace schema. It is self-contained:
// Replay re-derives every search's winner from it alone.
type traceJSON struct {
	Searches []searchJSON     `json:"searches"`
	Counters map[string]int64 `json:"counters"`
}

type searchJSON struct {
	Objective  string     `json:"objective"`
	Constraint float64    `json:"constraint,omitempty"`
	Confidence float64    `json:"confidence,omitempty"`
	Met        bool       `json:"met"`
	Winner     int        `json:"winner"`
	Candidates []candJSON `json:"candidates"`
}

type candJSON struct {
	Seq         int       `json:"seq"`
	Machine     string    `json:"machine"`
	Nodes       int       `json:"nodes"`
	Slots       int       `json:"slots"`
	Tile        int       `json:"tile"`
	PredSeconds float64   `json:"pred_seconds"`
	Cost        float64   `json:"cost"`
	CostLinear  float64   `json:"cost_linear"`
	Terms       sim.Terms `json:"terms"`
	Pruned      string    `json:"pruned,omitempty"`
	DominatedBy int       `json:"dominated_by"`
	QuantileSec float64   `json:"quantile_seconds,omitempty"`
	Winner      bool      `json:"winner,omitempty"`
}

func (t *SearchTrace) toJSON() traceJSON {
	searches := t.Searches()
	out := traceJSON{Counters: map[string]int64{}}
	for c := SearchCounter(0); c < NumSearchCounters; c++ {
		out.Counters[c.String()] = t.CounterValue(c)
	}
	pruned := prunedCounts(searches)
	for r := PruneReason(1); r < NumPruneReasons; r++ {
		out.Counters["pruned_"+r.String()] = pruned[r]
	}
	for _, s := range searches {
		sj := searchJSON{
			Objective: s.Objective, Constraint: s.Constraint,
			Confidence: s.Confidence, Met: s.Met, Winner: s.WinnerSeq,
		}
		for _, c := range s.Candidates {
			d := c.Deployment
			cj := candJSON{
				Seq: c.Seq, Machine: d.Cluster.Type.Name,
				Nodes: d.Cluster.Nodes, Slots: d.Cluster.Slots, Tile: d.TileSize,
				PredSeconds: d.PredSeconds, Cost: d.Cost, CostLinear: d.CostLinear,
				Terms: c.Terms, DominatedBy: c.DominatedBy,
				QuantileSec: c.QuantileSec, Winner: c.Winner,
			}
			if c.Pruned != PruneNone {
				cj.Pruned = c.Pruned.String()
			}
			sj.Candidates = append(sj.Candidates, cj)
		}
		out.Searches = append(out.Searches, sj)
	}
	return out
}

// WriteJSON exports the full search trace as indented JSON. The output
// is deterministic for a deterministic search (map keys are sorted by
// encoding/json).
func (t *SearchTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.toJSON())
}

// WriteCSV exports the search trace as one flat CSV row per candidate.
func (t *SearchTrace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"search", "objective", "constraint", "confidence",
		"seq", "machine", "nodes", "slots", "tile",
		"pred_seconds", "cost", "cost_linear",
		"compute_sec", "local_sec", "rack_sec", "remote_sec", "startup_sec",
		"pruned", "dominated_by", "quantile_seconds", "winner",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for si, s := range t.Searches() {
		for _, c := range s.Candidates {
			d := c.Deployment
			row := []string{
				strconv.Itoa(si), s.Objective, f(s.Constraint), f(s.Confidence),
				strconv.Itoa(c.Seq), d.Cluster.Type.Name,
				strconv.Itoa(d.Cluster.Nodes), strconv.Itoa(d.Cluster.Slots), strconv.Itoa(d.TileSize),
				f(d.PredSeconds), f(d.Cost), f(d.CostLinear),
				f(c.Terms.ComputeSec), f(c.Terms.LocalSec), f(c.Terms.RackSec),
				f(c.Terms.RemoteSec), f(c.Terms.StartupSec),
				c.Pruned.String(), strconv.Itoa(c.DominatedBy), f(c.QuantileSec),
				strconv.FormatBool(c.Winner),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// --- Replay --------------------------------------------------------------

// ReplayedWinner is the outcome Replay re-derives for one search.
type ReplayedWinner struct {
	Objective string
	// Seq is the winning candidate's Seq, -1 when the search held no
	// candidates.
	Seq int
	Met bool
	// Deployment describes the winner, e.g. "16 x c1.medium (2 slots), tile 2048".
	Deployment string
	// RecordedSeq and RecordedMet are the outcome the trace itself
	// recorded, for cross-checking against the replay.
	RecordedSeq int
	RecordedMet bool
}

// Replay parses an exported JSON search trace and independently
// re-derives each search's winner from the recorded candidates by
// applying the optimizer's decision rule. A healthy trace replays to its
// own recorded winner; the determinism tests assert this, and assert
// that two same-seed searches export byte-identical traces.
func Replay(data []byte) ([]ReplayedWinner, error) {
	var tr traceJSON
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("opt: bad search trace: %w", err)
	}
	var out []ReplayedWinner
	for _, s := range tr.Searches {
		rw := ReplayedWinner{
			Objective: s.Objective, Seq: -1,
			RecordedSeq: s.Winner, RecordedMet: s.Met,
		}
		if len(s.Candidates) > 0 {
			rw.Seq, rw.Met = replayWinner(s)
			c := s.Candidates[rw.Seq]
			rw.Deployment = fmt.Sprintf("%d x %s (%d slots), tile %d", c.Nodes, c.Machine, c.Slots, c.Tile)
		}
		out = append(out, rw)
	}
	return out, nil
}

// replayWinner applies the search's decision rule to its candidates.
func replayWinner(s searchJSON) (seq int, met bool) {
	feasible := func(c candJSON) bool {
		switch s.Objective {
		case "min-cost-deadline":
			if c.PredSeconds > s.Constraint {
				return false
			}
			if s.Confidence > 0 && s.Confidence < 1 {
				// The confident search only examined candidates in cost
				// order until one passed; feasibility is a recorded
				// quantile meeting the deadline.
				return c.QuantileSec > 0 && c.QuantileSec <= s.Constraint
			}
			return true
		case "min-time-budget":
			return c.Cost <= s.Constraint
		default:
			return true
		}
	}
	better := func(a, b candJSON) bool {
		switch s.Objective {
		case "min-time-budget":
			return a.PredSeconds < b.PredSeconds ||
				(a.PredSeconds == b.PredSeconds && a.Cost < b.Cost)
		default:
			return a.Cost < b.Cost ||
				(a.Cost == b.Cost && a.PredSeconds < b.PredSeconds)
		}
	}
	// Fallback for unsatisfiable constraints: fastest (deadline) or
	// cheapest (budget).
	closest := func(a, b candJSON) bool {
		if s.Objective == "min-time-budget" {
			return a.Cost < b.Cost
		}
		return a.PredSeconds < b.PredSeconds
	}
	best, fallback := -1, -1
	for i, c := range s.Candidates {
		if fallback == -1 || closest(c, s.Candidates[fallback]) {
			fallback = i
		}
		if !feasible(c) {
			continue
		}
		if best == -1 || better(c, s.Candidates[best]) {
			best = i
		}
	}
	if best >= 0 {
		return s.Candidates[best].Seq, true
	}
	return s.Candidates[fallback].Seq, false
}

// rivalRank orders a search's non-winner candidates by how close they
// came to winning: feasible candidates first, by the objective.
func rivalRank(s SearchRecord) []int {
	infeasible := func(c Candidate) bool {
		return c.Pruned == PruneOverDeadline || c.Pruned == PruneOverBudget || c.Pruned == PruneConfidence
	}
	var order []int
	for i := range s.Candidates {
		if i != s.WinnerSeq {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := s.Candidates[order[a]], s.Candidates[order[b]]
		if ia, ib := infeasible(ca), infeasible(cb); ia != ib {
			return ib
		}
		da, db := ca.Deployment, cb.Deployment
		if s.Objective == "min-time-budget" {
			if da.PredSeconds != db.PredSeconds {
				return da.PredSeconds < db.PredSeconds
			}
			if da.Cost != db.Cost {
				return da.Cost < db.Cost
			}
		} else {
			if da.Cost != db.Cost {
				return da.Cost < db.Cost
			}
			if da.PredSeconds != db.PredSeconds {
				return da.PredSeconds < db.PredSeconds
			}
		}
		return order[a] < order[b]
	})
	return order
}
