package opt

import "cumulon/internal/obs"

// MetricsInto folds the optimizer's search counters into a metrics
// registry, alongside the engine counters obs.Snapshot derives, so one
// Prometheus-style snapshot covers both the execution and the search
// that chose its deployment. Values are cumulative over the trace's
// lifetime: a second search only increases them.
func (t *SearchTrace) MetricsInto(r *obs.Registry) {
	searches := t.Searches()

	r.Counter("cumulon_opt_searches_total", "constrained optimizer searches run").
		Add(float64(t.CounterValue(CounterSearches)))
	var cands int64
	for _, s := range searches {
		cands += int64(len(s.Candidates))
	}
	r.Counter("cumulon_opt_candidates_total", "candidate deployments evaluated by the optimizer").
		Add(float64(cands))

	prunedC := r.Counter("cumulon_opt_pruned_total", "candidates rejected by the search, by prune reason")
	pruned := prunedCounts(searches)
	for reason := PruneReason(1); reason < NumPruneReasons; reason++ {
		prunedC.Add(float64(pruned[reason]), obs.Label{Key: "reason", Value: reason.String()})
	}

	r.Counter("cumulon_opt_model_cache_hits_total", "calibrated task-model cache hits").
		Add(float64(t.CounterValue(CounterModelCacheHits)))
	r.Counter("cumulon_opt_model_cache_misses_total", "task-model calibrations performed (cache misses)").
		Add(float64(t.CounterValue(CounterModelCacheMisses)))
	r.Counter("cumulon_opt_sim_trials_total", "Monte Carlo completion-time trials simulated for confidence checks").
		Add(float64(t.CounterValue(CounterSimTrials)))

	// Last decided search, for at-a-glance dashboards.
	for i := len(searches) - 1; i >= 0; i-- {
		s := searches[i]
		if s.WinnerSeq < 0 {
			continue
		}
		d := s.Candidates[s.WinnerSeq].Deployment
		r.Gauge("cumulon_opt_winner_pred_seconds", "predicted seconds of the last search's winning deployment").
			Set(d.PredSeconds)
		r.Gauge("cumulon_opt_winner_cost_dollars", "billed cost of the last search's winning deployment").
			Set(d.Cost)
		break
	}
}
