package opt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/plan"
)

// The disabled recorder must be free: search hot loops call it
// unconditionally, so any allocation here taxes every unobserved search.
func TestNopSearchZeroAllocs(t *testing.T) {
	rec := searchOrNop(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		if rec.Enabled() {
			t.Fatal("nop recorder claims to be enabled")
		}
		rec.Begin("min-cost-deadline", 3600, 0.9)
		rec.Candidate(Candidate{})
		rec.Prune(0, PruneDominated, 1, 0)
		rec.Winner(0, true)
		rec.Count(CounterSimTrials, 30)
	})
	if allocs != 0 {
		t.Fatalf("nop SearchRecorder allocates: %v allocs/op", allocs)
	}
}

// BenchmarkNopSearch is CI's 0 allocs/op guard for the disabled recorder
// (run with -benchmem; see .github/workflows/ci.yml).
func BenchmarkNopSearch(b *testing.B) {
	rec := searchOrNop(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rec.Enabled() {
			b.Fatal("enabled")
		}
		rec.Candidate(Candidate{Seq: i})
		rec.Count(CounterModelCacheHits, 1)
	}
}

func tracedRequest(t *testing.T) (Request, *SearchTrace) {
	req := request(t)
	st := NewSearchTrace()
	req.Search = st
	return req, st
}

// One constrained search must leave a complete record: every candidate
// present in evaluation order with its term breakdown, every loser with a
// typed prune reason, the winner marked, and the counters bumped.
func TestSearchTraceRecordsSearch(t *testing.T) {
	o := New(1)
	req, st := tracedRequest(t)
	req.DeadlineSec = 2 * 3600
	res, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := st.Last()
	if !ok {
		t.Fatal("no search recorded")
	}
	if s.Objective != "min-cost-deadline" || s.Constraint != req.DeadlineSec {
		t.Fatalf("bad search header: %+v", s)
	}
	if len(s.Candidates) != len(res.Candidates) {
		t.Fatalf("recorded %d candidates, result has %d", len(s.Candidates), len(res.Candidates))
	}
	if !s.Met || s.WinnerSeq < 0 {
		t.Fatalf("search should have met the deadline: %+v", s)
	}
	win := s.Candidates[s.WinnerSeq]
	if !win.Winner || win.Pruned != PruneNone {
		t.Fatalf("winner not marked cleanly: %+v", win)
	}
	if win.Deployment.Cluster.String() != res.Best.Cluster.String() {
		t.Fatalf("recorded winner %v != result best %v", win.Deployment, *res.Best)
	}
	for i, c := range s.Candidates {
		if c.Seq != i {
			t.Fatalf("candidate %d has seq %d", i, c.Seq)
		}
		if c.Terms.Total() <= 0 {
			t.Fatalf("candidate %d has no term breakdown: %+v", i, c.Terms)
		}
		if i == s.WinnerSeq {
			continue
		}
		if c.Pruned == PruneNone {
			t.Fatalf("loser %d has no prune reason", i)
		}
		if c.Pruned == PruneDominated {
			if c.DominatedBy < 0 || c.DominatedBy >= len(s.Candidates) {
				t.Fatalf("dominated candidate %d has bad dominator %d", i, c.DominatedBy)
			}
			dom := s.Candidates[c.DominatedBy].Deployment
			d := c.Deployment
			if dom.PredSeconds > d.PredSeconds || dom.Cost > d.Cost {
				t.Fatalf("candidate %d not actually dominated by %d", i, c.DominatedBy)
			}
		}
	}
	if got := st.CounterValue(CounterSearches); got != 1 {
		t.Fatalf("searches counter = %d, want 1", got)
	}
	if st.CounterValue(CounterModelCacheMisses) == 0 {
		t.Fatal("no model calibrations counted")
	}
	if st.CounterValue(CounterModelCacheHits) != 0 {
		t.Fatal("fresh optimizer should have no cache hits in its first search")
	}

	// DominatedBy on the Result mirrors the trace and sizes with Candidates.
	if len(res.DominatedBy) != len(res.Candidates) {
		t.Fatalf("DominatedBy len %d != candidates %d", len(res.DominatedBy), len(res.Candidates))
	}
	dominated := 0
	for _, d := range res.DominatedBy {
		if d >= 0 {
			dominated++
		}
	}
	if dominated+len(res.Frontier) != len(res.Candidates) {
		t.Fatalf("dominated %d + frontier %d != candidates %d",
			dominated, len(res.Frontier), len(res.Candidates))
	}
}

// A confidence-constrained search must record simulated quantiles on the
// candidates it examined and count the Monte Carlo trials it spent.
func TestSearchTraceConfidence(t *testing.T) {
	o := New(1)
	req, st := tracedRequest(t)
	req.DeadlineSec = 2 * 3600
	req.Confidence = 0.9
	req.Trials = 8
	res, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best deployment")
	}
	if res.Met {
		if res.Best.Confidence != 0.9 || res.Best.QuantileSeconds <= 0 {
			t.Fatalf("winner missing confidence promise: %+v", res.Best)
		}
	}
	if st.CounterValue(CounterSimTrials) == 0 {
		t.Fatal("no sim trials counted")
	}
	s, _ := st.Last()
	quantiled := 0
	for _, c := range s.Candidates {
		if c.QuantileSec > 0 {
			quantiled++
		}
		if c.Pruned == PruneConfidence && c.QuantileSec <= s.Constraint {
			t.Fatalf("confidence-rejected candidate with passing quantile: %+v", c)
		}
	}
	if quantiled == 0 {
		t.Fatal("no candidate carries a simulated quantile")
	}
}

// The budget search records symmetrically, with over-budget prunes.
func TestSearchTraceBudget(t *testing.T) {
	o := New(1)
	req, st := tracedRequest(t)
	req.BudgetDollars = 5
	res, err := o.MinTimeForBudget(req)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := st.Last()
	if s.Objective != "min-time-budget" || s.Constraint != 5 {
		t.Fatalf("bad search header: %+v", s)
	}
	over := 0
	for _, c := range s.Candidates {
		if c.Pruned == PruneOverBudget {
			over++
			if c.Deployment.Cost <= 5 {
				t.Fatalf("over-budget prune on affordable candidate: %+v", c.Deployment)
			}
		}
	}
	if res.Met && over == 0 {
		t.Fatal("expected some over-budget prunes in a constrained search")
	}
}

// Two same-seed searches must export byte-identical traces, and the
// exported trace must replay — by re-applying the decision rule to the
// recorded candidates alone — to the recorded winner.
func TestSearchTraceDeterminismAndReplay(t *testing.T) {
	run := func() ([]byte, *Result) {
		o := New(1)
		req, st := tracedRequest(t)
		req.DeadlineSec = 2 * 3600
		res, err := o.MinCostForDeadline(req)
		if err != nil {
			t.Fatal(err)
		}
		req.BudgetDollars = 5
		if _, err := o.MinTimeForBudget(req); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := st.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	a, res := run()
	b, _ := run()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed searches exported different traces")
	}

	winners, err := Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 2 {
		t.Fatalf("replayed %d searches, want 2", len(winners))
	}
	for _, w := range winners {
		if w.Seq != w.RecordedSeq || w.Met != w.RecordedMet {
			t.Fatalf("replay disagrees with recorded outcome: %+v", w)
		}
	}
	// The replayed deadline winner must be the deployment the search chose.
	want := fmt.Sprintf("%d x %s (%d slots), tile %d",
		res.Best.Cluster.Nodes, res.Best.Cluster.Type.Name, res.Best.Cluster.Slots, res.Best.TileSize)
	if winners[0].Deployment != want {
		t.Fatalf("replayed winner %q, want %q", winners[0].Deployment, want)
	}

	// CSV export parses row-per-candidate and is deterministic too.
	st := NewSearchTrace()
	var csvBuf bytes.Buffer
	if err := st.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "search,objective,") {
		t.Fatalf("csv header missing: %q", csvBuf.String())
	}
}

// The EXPLAIN acceptance criterion: on a GNMF program the report names
// the chosen deployment and at least two rejected rivals, each with a
// typed prune reason and per-term time and cost deltas.
func TestExplainReportGNMF(t *testing.T) {
	prog, err := lang.Parse(`
input V 40000 20000 sparse
input W 40000 10
input H 10 20000
H = H .* (W' * V) ./ ((W' * W) * H)
W = W .* (V * H') ./ (W * (H * H'))
output W
output H
`)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := cloud.TypeByName("m1.small")
	big, _ := cloud.TypeByName("c1.xlarge")
	req := Request{
		Program:     prog,
		PlanCfg:     plan.Config{TileSize: 4096, Densities: map[string]float64{"V": 0.02}},
		Machines:    []cloud.MachineType{small, big},
		MaxNodes:    16,
		DeadlineSec: 4 * 3600,
	}
	st := NewSearchTrace()
	req.Search = st
	o := New(1)
	res, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Explain(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "EXPLAIN min cost s.t. deadline") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, deploymentLabel(*res.Best)) {
		t.Fatalf("report does not name the chosen deployment %q:\n%s", deploymentLabel(*res.Best), out)
	}
	rivals := strings.Count(out, "terms delta:")
	if rivals < 2 {
		t.Fatalf("want >= 2 rivals with term deltas, got %d:\n%s", rivals, out)
	}
	for _, needle := range []string{"winner:", "rivals", "time ", "cost ", "pruned:"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("missing %q in report:\n%s", needle, out)
		}
	}
	// Every rival line carries a typed reason in brackets.
	reasons := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "[") && strings.Contains(line, "]") {
			reasons++
		}
	}
	if reasons < 2 {
		t.Fatalf("want >= 2 bracketed prune reasons, got %d:\n%s", reasons, out)
	}
}

// Pareto tie handling: equal time with different cost keeps the cheaper;
// exact (time, cost) ties keep the earliest-evaluated candidate.
func TestParetoTies(t *testing.T) {
	mk := func(sec, cost float64) Deployment {
		return Deployment{PredSeconds: sec, Cost: cost}
	}
	t.Run("equal time different cost", func(t *testing.T) {
		cands := []Deployment{mk(100, 3), mk(100, 2), mk(50, 5)}
		frontier, dom := paretoSplit(cands)
		if len(frontier) != 2 {
			t.Fatalf("frontier = %+v, want 2 members", frontier)
		}
		if dom[0] != 1 {
			t.Fatalf("costlier same-time candidate should be dominated by index 1, got %d", dom[0])
		}
		if dom[1] != -1 || dom[2] != -1 {
			t.Fatalf("frontier members marked dominated: %v", dom)
		}
	})
	t.Run("exact tie keeps earliest", func(t *testing.T) {
		cands := []Deployment{mk(100, 2), mk(100, 2), mk(100, 2)}
		frontier, dom := paretoSplit(cands)
		if len(frontier) != 1 {
			t.Fatalf("frontier = %+v, want 1 member", frontier)
		}
		if dom[0] != -1 || dom[1] != 0 || dom[2] != 0 {
			t.Fatalf("exact ties should defer to the earliest candidate: %v", dom)
		}
	})
	t.Run("strict dominance", func(t *testing.T) {
		cands := []Deployment{mk(50, 1), mk(100, 2)}
		_, dom := paretoSplit(cands)
		if dom[1] != 0 {
			t.Fatalf("slower-and-costlier candidate not dominated: %v", dom)
		}
	})
}

// Deployment serializes its full decision — tile size and confidence
// promise included — and round-trips through encoding/json.
func TestDeploymentJSONRoundTrip(t *testing.T) {
	mt, _ := cloud.TypeByName("c1.medium")
	cluster, err := cloud.NewCluster(mt, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := Deployment{
		Cluster:         cluster,
		TileSize:        2048,
		Splits:          map[int]plan.Split{1: {CI: 4, CJ: 4, CK: 2}},
		PredSeconds:     2870,
		Cost:            2.32,
		CostLinear:      1.91,
		Confidence:      0.9,
		QuantileSeconds: 3105,
	}
	data, err := json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"tile_size":2048`, `"confidence":0.9`, `"quantile_seconds":3105`} {
		if !strings.Contains(string(data), field) {
			t.Fatalf("missing %s in %s", field, data)
		}
	}
	var back Deployment
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip changed deployment:\n%+v\n%+v", d, back)
	}
	s := d.String()
	for _, needle := range []string{"tile 2048", "p90", "3105s"} {
		if !strings.Contains(s, needle) {
			t.Fatalf("String() missing %q: %s", needle, s)
		}
	}
}

// The frontier SVG is well formed and shows candidates, the staircase and
// the winner ring.
func TestFrontierSVG(t *testing.T) {
	o := New(1)
	req, st := tracedRequest(t)
	req.DeadlineSec = 2 * 3600
	if _, err := o.MinCostForDeadline(req); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteFrontierSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, needle := range []string{"<svg", "</svg>", "<circle", "<polyline", `stroke="#cc3333"`} {
		if !strings.Contains(svg, needle) {
			t.Fatalf("svg missing %q", needle)
		}
	}
}

// Empty traces refuse to explain or render rather than emitting garbage.
func TestEmptyTraceErrors(t *testing.T) {
	st := NewSearchTrace()
	if err := st.Explain(&bytes.Buffer{}, 0); err == nil {
		t.Fatal("Explain on empty trace should error")
	}
	if err := st.WriteFrontierSVG(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteFrontierSVG on empty trace should error")
	}
}

// SearchTrace is safe under concurrent recording (exercised with -race in
// CI's scoped race job).
func TestSearchTraceConcurrent(t *testing.T) {
	st := NewSearchTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st.Candidate(Candidate{Seq: i})
				st.Count(CounterSimTrials, 1)
				st.Prune(i, PruneDominated, 0, 0)
				_, _ = st.Last()
			}
		}(g)
	}
	wg.Wait()
	if st.CounterValue(CounterSimTrials) != 400 {
		t.Fatalf("lost counter increments: %d", st.CounterValue(CounterSimTrials))
	}
}
