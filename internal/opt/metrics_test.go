package opt

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"cumulon/internal/obs"
)

// snapshot folds the trace into a fresh registry and returns its text
// exposition (MetricsInto reports cumulative values, so each snapshot
// uses its own registry).
func snapshot(t *testing.T, st *SearchTrace) string {
	t.Helper()
	reg := obs.NewRegistry()
	st.MetricsInto(reg)
	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// metricValue sums every sample of a metric (across label sets).
func metricValue(t *testing.T, snap, name string) float64 {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(snap, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // a longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not in snapshot:\n%s", name, snap)
	}
	return sum
}

// The optimizer counters appear in the obs metrics snapshot with the
// right names and types, and grow monotonically across searches.
func TestSearchMetricsSnapshot(t *testing.T) {
	o := New(1)
	req, st := tracedRequest(t)
	req.DeadlineSec = 2 * 3600
	if _, err := o.MinCostForDeadline(req); err != nil {
		t.Fatal(err)
	}
	first := snapshot(t, st)

	for _, decl := range []string{
		"# TYPE cumulon_opt_searches_total counter",
		"# TYPE cumulon_opt_candidates_total counter",
		"# TYPE cumulon_opt_pruned_total counter",
		"# TYPE cumulon_opt_model_cache_hits_total counter",
		"# TYPE cumulon_opt_model_cache_misses_total counter",
		"# TYPE cumulon_opt_sim_trials_total counter",
		"# TYPE cumulon_opt_winner_pred_seconds gauge",
		"# TYPE cumulon_opt_winner_cost_dollars gauge",
	} {
		if !strings.Contains(first, decl) {
			t.Fatalf("snapshot missing %q:\n%s", decl, first)
		}
	}
	if !strings.Contains(first, `cumulon_opt_pruned_total{reason="`) {
		t.Fatalf("pruned counter not labeled by reason:\n%s", first)
	}
	if metricValue(t, first, "cumulon_opt_searches_total") != 1 {
		t.Fatal("first snapshot should count one search")
	}
	cands1 := metricValue(t, first, "cumulon_opt_candidates_total")
	if cands1 == 0 {
		t.Fatal("no candidates counted")
	}

	// A second search on the same trace: every counter is monotone, and
	// the model cache now reports hits.
	if _, err := o.MinCostForDeadline(req); err != nil {
		t.Fatal(err)
	}
	second := snapshot(t, st)
	if got := metricValue(t, second, "cumulon_opt_searches_total"); got != 2 {
		t.Fatalf("searches after second run = %v, want 2", got)
	}
	for _, name := range []string{
		"cumulon_opt_candidates_total",
		"cumulon_opt_pruned_total",
		"cumulon_opt_model_cache_misses_total",
	} {
		a, b := metricValue(t, first, name), metricValue(t, second, name)
		if b < a {
			t.Fatalf("%s shrank across searches: %v -> %v", name, a, b)
		}
	}
	if metricValue(t, second, "cumulon_opt_candidates_total") != 2*cands1 {
		t.Fatal("second identical search should double the candidate count")
	}
	if metricValue(t, second, "cumulon_opt_model_cache_hits_total") == 0 {
		t.Fatal("second search should hit the model cache")
	}
	if metricValue(t, second, "cumulon_opt_winner_pred_seconds") <= 0 {
		t.Fatal("winner gauge not set")
	}
}
