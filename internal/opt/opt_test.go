package opt

import (
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/linalg/tune"
	"cumulon/internal/plan"
)

const workloadSrc = `
input A 16384 16384
input B 16384 16384
C = A * B
output C
`

func request(t *testing.T) Request {
	t.Helper()
	prog, err := lang.Parse(workloadSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Two machine types and a modest node sweep keep the test fast while
	// leaving a real tradeoff to discover.
	small, _ := cloud.TypeByName("m1.small")
	big, _ := cloud.TypeByName("c1.xlarge")
	return Request{
		Program:  prog,
		PlanCfg:  plan.Config{TileSize: 2048},
		Machines: []cloud.MachineType{small, big},
		MaxNodes: 16,
	}
}

func TestEnumerateCoversSpace(t *testing.T) {
	o := New(1)
	req := request(t)
	cands, err := o.Enumerate(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 20 {
		t.Fatalf("too few candidates: %d", len(cands))
	}
	types := map[string]bool{}
	nodes := map[int]bool{}
	for _, d := range cands {
		types[d.Cluster.Type.Name] = true
		nodes[d.Cluster.Nodes] = true
		if d.PredSeconds <= 0 || d.Cost <= 0 {
			t.Fatalf("degenerate candidate: %+v", d)
		}
		if d.CostLinear > d.Cost+1e-9 {
			t.Fatalf("linear cost above staircase: %+v", d)
		}
		if len(d.Splits) == 0 {
			t.Fatalf("candidate without splits: %+v", d)
		}
	}
	if len(types) != 2 || len(nodes) < 5 {
		t.Fatalf("space not covered: types=%v nodes=%v", types, nodes)
	}
}

func TestMinCostForDeadline(t *testing.T) {
	o := New(1)
	req := request(t)

	// A loose deadline first: establish the cheapest overall choice.
	req.DeadlineSec = 12 * 3600
	loose, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Met {
		t.Fatalf("12h deadline should be feasible: best %v", loose.Best)
	}
	if loose.Best.PredSeconds > req.DeadlineSec {
		t.Fatalf("best violates deadline: %v", loose.Best)
	}

	// Tighten the deadline: cost must not decrease.
	req.DeadlineSec = loose.Best.PredSeconds / 4
	tight, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Met && tight.Best.Cost < loose.Best.Cost {
		t.Fatalf("tighter deadline got cheaper: %v vs %v", tight.Best, loose.Best)
	}
}

func TestInfeasibleDeadlineReturnsFastest(t *testing.T) {
	o := New(1)
	req := request(t)
	req.DeadlineSec = 1 // nothing finishes in a second
	res, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("1-second deadline cannot be met")
	}
	for _, d := range res.Candidates {
		if d.PredSeconds < res.Best.PredSeconds {
			t.Fatalf("Best is not the fastest: %v vs %v", res.Best, d)
		}
	}
}

func TestMinTimeForBudget(t *testing.T) {
	o := New(1)
	req := request(t)
	req.BudgetDollars = 1000
	rich, err := o.MinTimeForBudget(req)
	if err != nil {
		t.Fatal(err)
	}
	if !rich.Met {
		t.Fatal("$1000 should buy something")
	}
	if rich.Best.Cost > req.BudgetDollars {
		t.Fatalf("best violates budget: %v", rich.Best)
	}
	// A tiny budget yields a slower (or equal) plan.
	req.BudgetDollars = rich.Best.Cost / 4
	poor, err := o.MinTimeForBudget(req)
	if err != nil {
		t.Fatal(err)
	}
	if poor.Met && poor.Best.PredSeconds < rich.Best.PredSeconds {
		t.Fatalf("smaller budget got faster: %v vs %v", poor.Best, rich.Best)
	}
}

func TestParetoFrontierShape(t *testing.T) {
	o := New(1)
	req := request(t)
	cands, err := o.Enumerate(req)
	if err != nil {
		t.Fatal(err)
	}
	frontier := pareto(cands)
	if len(frontier) < 2 {
		t.Fatalf("frontier too small: %d points", len(frontier))
	}
	for i := 1; i < len(frontier); i++ {
		if frontier[i].PredSeconds <= frontier[i-1].PredSeconds {
			t.Fatalf("frontier not time-ascending at %d", i)
		}
		if frontier[i].Cost >= frontier[i-1].Cost {
			t.Fatalf("frontier not cost-descending at %d", i)
		}
	}
}

func TestMachineChoiceCrossover(t *testing.T) {
	// The qualitative provisioning result: cheap machines win at loose
	// deadlines, fast machines win at tight ones. The effect shows on
	// I/O-bound workloads, where m1.small delivers the most disk
	// bandwidth per dollar but a capped cluster of them cannot match the
	// aggregate bandwidth of premium nodes.
	o := New(1)
	req := request(t)
	prog, err := lang.Parse(`
input A 60000 20000
input B 60000 20000
C = A .* B + A
output C
`)
	if err != nil {
		t.Fatal(err)
	}
	req.Program = prog
	req.DeadlineSec = 24 * 3600
	loose, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	// Find the fastest achievable time, then demand (close to) it.
	var fastest float64
	for _, d := range loose.Candidates {
		if fastest == 0 || d.PredSeconds < fastest {
			fastest = d.PredSeconds
		}
	}
	req.DeadlineSec = fastest * 1.05
	tight, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Met || !tight.Met {
		t.Fatalf("both deadlines should be feasible: %v %v", loose.Met, tight.Met)
	}
	if loose.Best.Cluster.Type.Name == "c1.xlarge" {
		t.Fatalf("loose deadline should not need the premium machine: %v", loose.Best)
	}
	if tight.Best.Cluster.Type.Name != "c1.xlarge" {
		t.Fatalf("tight deadline should pick the fast machine: %v", tight.Best)
	}
}

func TestDeploymentApply(t *testing.T) {
	o := New(1)
	req := request(t)
	req.DeadlineSec = 12 * 3600
	res, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(req.Program, req.PlanCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Apply(pl); err != nil {
		t.Fatal(err)
	}
	for _, j := range pl.Jobs {
		if j.Split != res.Best.Splits[j.ID] {
			t.Fatal("split not applied")
		}
	}
}

func TestModelCacheReuse(t *testing.T) {
	o := New(1)
	mt, _ := cloud.TypeByName("m1.small")
	m1, err := o.ModelFor(mt, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := o.ModelFor(mt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("model not cached")
	}
}

// TestUseKernelProfile: attaching an autotuner profile must invalidate
// cached calibrations and yield a faster flops coefficient; detaching it
// restores catalog-throughput models.
func TestUseKernelProfile(t *testing.T) {
	o := New(1)
	// 2 cores: room for the 1.5x profile speedup below the core clamp.
	mt, _ := cloud.TypeByName("c1.medium")
	base, err := o.ModelFor(mt, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := &tune.Profile{
		Version:  tune.ProfileVersion,
		Best:     tune.Point{Shape: linalg.BlockDefaults(), Workers: 1, MFlops: 150},
		Baseline: tune.Point{Shape: linalg.BlockDefaults(), Workers: 1, MFlops: 100},
		Points:   []tune.Point{{}},
	}
	o.UseKernelProfile(prof)
	tuned, err := o.ModelFor(mt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tuned == base {
		t.Fatal("UseKernelProfile did not invalidate the model cache")
	}
	if tuned.BFlops >= base.BFlops {
		t.Fatalf("tuned BFlops %v not faster than base %v", tuned.BFlops, base.BFlops)
	}
	o.UseKernelProfile(nil)
	plain, err := o.ModelFor(mt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain == tuned {
		t.Fatal("detaching the profile did not invalidate the cache")
	}
	if plain.BFlops != base.BFlops {
		t.Fatalf("detached BFlops %v, want catalog %v", plain.BFlops, base.BFlops)
	}
}

func TestRequestValidation(t *testing.T) {
	o := New(1)
	req := request(t)
	if _, err := o.MinCostForDeadline(req); err == nil {
		t.Fatal("want error for missing deadline")
	}
	if _, err := o.MinTimeForBudget(req); err == nil {
		t.Fatal("want error for missing budget")
	}
}

func TestTileSizeSweep(t *testing.T) {
	o := New(1)
	req := request(t)
	req.TileSizes = []int{1024, 2048, 4096}
	cands, err := o.Enumerate(req)
	if err != nil {
		t.Fatal(err)
	}
	tiles := map[int]bool{}
	for _, d := range cands {
		tiles[d.TileSize] = true
	}
	if len(tiles) != 3 {
		t.Fatalf("tile sizes explored: %v", tiles)
	}
	// Applying a deployment to a plan with the wrong tile size must fail.
	pl, err := plan.Compile(req.Program, plan.Config{TileSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := cands[0].Apply(pl); err == nil {
		t.Fatal("tile-size mismatch not detected")
	}
}

func TestConfidenceDeadline(t *testing.T) {
	o := New(1)
	req := request(t)
	// First find a point-optimal deployment under a moderately tight
	// deadline, then demand 95% confidence at the same deadline: the
	// confident answer can only be same-or-more conservative (>= cost).
	req.DeadlineSec = 4 * 3600
	point, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	if !point.Met {
		t.Skip("deadline infeasible in point mode; nothing to compare")
	}
	req.Confidence = 0.95
	req.Trials = 20
	conf, err := o.MinCostForDeadline(req)
	if err != nil {
		t.Fatal(err)
	}
	if !conf.Met {
		t.Fatalf("confidence mode found nothing under a loose deadline")
	}
	if conf.Best.Cost < point.Best.Cost {
		t.Fatalf("95%% confidence picked a cheaper plan (%v) than the point optimum (%v)",
			conf.Best.Cost, point.Best.Cost)
	}
	if conf.Best.PredSeconds > req.DeadlineSec {
		t.Fatalf("promised quantile %v exceeds deadline", conf.Best.PredSeconds)
	}
}
