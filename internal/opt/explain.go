package opt

import (
	"fmt"
	"io"
	"math"
	"sort"

	"cumulon/internal/sim"
)

// Explain writes a human-readable report of the most recent search: the
// shape of the space searched, how candidates were pruned, the winning
// deployment with its model-term breakdown, and its nearest rivals with
// per-term time and cost deltas plus the typed reason each one lost.
// topN bounds the rival list (<= 0 means 5).
func (t *SearchTrace) Explain(w io.Writer, topN int) error {
	s, ok := t.Last()
	if !ok || len(s.Candidates) == 0 {
		return fmt.Errorf("opt: no recorded search to explain")
	}
	if topN <= 0 {
		topN = 5
	}

	switch s.Objective {
	case "min-cost-deadline":
		fmt.Fprintf(w, "EXPLAIN min cost s.t. deadline %.0fs", s.Constraint)
		if s.Confidence > 0 {
			fmt.Fprintf(w, " at %.0f%% confidence", s.Confidence*100)
		}
	case "min-time-budget":
		fmt.Fprintf(w, "EXPLAIN min time s.t. budget $%.2f", s.Constraint)
	default:
		fmt.Fprintf(w, "EXPLAIN enumeration (no constraint)")
	}
	fmt.Fprintln(w)

	machines, nodes, slots, tiles := map[string]bool{}, map[int]bool{}, map[int]bool{}, map[int]bool{}
	for _, c := range s.Candidates {
		d := c.Deployment
		machines[d.Cluster.Type.Name] = true
		nodes[d.Cluster.Nodes] = true
		slots[d.Cluster.Slots] = true
		tiles[d.TileSize] = true
	}
	fmt.Fprintf(w, "  searched %d candidates: %d machine types x %d cluster sizes x %d slot configs x %d tile sizes\n",
		len(s.Candidates), len(machines), len(nodes), len(slots), len(tiles))

	pruned := prunedCounts([]SearchRecord{s})
	var parts []string
	for r := PruneReason(1); r < NumPruneReasons; r++ {
		if pruned[r] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", pruned[r], r))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "  pruned: ")
		for i, p := range parts {
			if i > 0 {
				fmt.Fprintf(w, ", ")
			}
			fmt.Fprintf(w, "%s", p)
		}
		fmt.Fprintln(w)
	}

	if s.WinnerSeq < 0 {
		fmt.Fprintln(w, "  no winner declared (bare enumeration)")
		return nil
	}
	win := s.Candidates[s.WinnerSeq]
	wd := win.Deployment
	verdict := "winner"
	if !s.Met {
		verdict = "constraint unsatisfiable; closest"
	}
	fmt.Fprintf(w, "  %s: #%d %s\n", verdict, win.Seq, deploymentLabel(wd))
	fmt.Fprintf(w, "    predicted %.1fs, billed $%.2f (linear $%.2f)\n", wd.PredSeconds, wd.Cost, wd.CostLinear)
	if wd.QuantileSeconds > 0 {
		fmt.Fprintf(w, "    promised p%.0f time %.1fs\n", wd.Confidence*100, wd.QuantileSeconds)
	}
	fmt.Fprintf(w, "    terms/slot: %s\n", termsLine(win.Terms, false))

	rivals := rivalRank(s)
	if len(rivals) > topN {
		rivals = rivals[:topN]
	}
	if len(rivals) > 0 {
		fmt.Fprintf(w, "  rivals (nearest %d of %d):\n", len(rivals), len(s.Candidates)-1)
	}
	for _, ri := range rivals {
		c := s.Candidates[ri]
		d := c.Deployment
		reason := c.Pruned.String()
		if c.Pruned == PruneDominated && c.DominatedBy >= 0 {
			reason = fmt.Sprintf("%s #%d", c.Pruned, c.DominatedBy)
		}
		if c.Pruned == PruneConfidence {
			reason = fmt.Sprintf("%s (p%.0f %.1fs > %.0fs)", c.Pruned, s.Confidence*100, c.QuantileSec, s.Constraint)
		}
		fmt.Fprintf(w, "    #%d %s  [%s]\n", c.Seq, deploymentLabel(d), reason)
		fmt.Fprintf(w, "      time %+.1fs (%.1fs), cost %+.2f$ ($%.2f)\n",
			d.PredSeconds-wd.PredSeconds, d.PredSeconds, d.Cost-wd.Cost, d.Cost)
		fmt.Fprintf(w, "      terms delta: %s\n", termsLine(c.Terms.Sub(win.Terms), true))
	}
	return nil
}

// deploymentLabel renders a deployment's grid point compactly.
func deploymentLabel(d Deployment) string {
	return fmt.Sprintf("%s, tile %d", d.Cluster, d.TileSize)
}

// termsLine renders a model-term vector; signed prints explicit +/-.
func termsLine(t sim.Terms, signed bool) string {
	f := "%.1f"
	if signed {
		f = "%+.1f"
	}
	return fmt.Sprintf("compute "+f+"s | local "+f+"s | rack "+f+"s | remote "+f+"s | startup "+f+"s",
		t.ComputeSec, t.LocalSec, t.RackSec, t.RemoteSec, t.StartupSec)
}

// WriteFrontierSVG renders the most recent search's candidates in the
// (time, cost) plane as an SVG: every candidate as a dot, the Pareto
// frontier as a staircase, the winner ringed. It complements plan.ToDOT
// (the plan's DAG) with the optimizer's view of the deployment space.
func (t *SearchTrace) WriteFrontierSVG(w io.Writer) error {
	s, ok := t.Last()
	if !ok || len(s.Candidates) == 0 {
		return fmt.Errorf("opt: no recorded search to render")
	}
	const (
		width, height  = 640, 420
		ml, mr, mt, mb = 70, 20, 30, 50 // margins
	)
	minT, maxT := math.Inf(1), math.Inf(-1)
	minC, maxC := math.Inf(1), math.Inf(-1)
	for _, c := range s.Candidates {
		d := c.Deployment
		minT, maxT = math.Min(minT, d.PredSeconds), math.Max(maxT, d.PredSeconds)
		minC, maxC = math.Min(minC, d.Cost), math.Max(maxC, d.Cost)
	}
	if maxT == minT {
		maxT = minT + 1
	}
	if maxC == minC {
		maxC = minC + 1
	}
	x := func(t float64) float64 { return ml + (t-minT)/(maxT-minT)*(width-ml-mr) }
	y := func(c float64) float64 { return height - mb - (c-minC)/(maxC-minC)*(height-mt-mb) }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `  <rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `  <text x="%d" y="18" font-family="monospace" font-size="12">time/cost Pareto frontier: %s (%d candidates)</text>`+"\n",
		ml, s.Objective, len(s.Candidates))
	// Axes.
	fmt.Fprintf(w, `  <line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", ml, height-mb, width-mr, height-mb)
	fmt.Fprintf(w, `  <line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", ml, mt, ml, height-mb)
	fmt.Fprintf(w, `  <text x="%d" y="%d" font-family="monospace" font-size="11">%.0fs</text>`+"\n", ml, height-mb+16, minT)
	fmt.Fprintf(w, `  <text x="%d" y="%d" font-family="monospace" font-size="11" text-anchor="end">%.0fs</text>`+"\n", width-mr, height-mb+16, maxT)
	fmt.Fprintf(w, `  <text x="%d" y="%d" font-family="monospace" font-size="11" text-anchor="end">$%.2f</text>`+"\n", ml-4, height-mb, minC)
	fmt.Fprintf(w, `  <text x="%d" y="%d" font-family="monospace" font-size="11" text-anchor="end">$%.2f</text>`+"\n", ml-4, mt+10, maxC)
	fmt.Fprintf(w, `  <text x="%d" y="%d" font-family="monospace" font-size="11">predicted time</text>`+"\n", (width-ml-mr)/2+ml-40, height-10)
	fmt.Fprintf(w, `  <text x="14" y="%d" font-family="monospace" font-size="11" transform="rotate(-90 14 %d)">billed cost</text>`+"\n", (height-mt-mb)/2+mt+30, (height-mt-mb)/2+mt+30)

	// All candidates.
	for _, c := range s.Candidates {
		d := c.Deployment
		fill := "#bbbbbb"
		if c.Pruned == PruneOverDeadline || c.Pruned == PruneOverBudget || c.Pruned == PruneConfidence {
			fill = "#e0e0e0"
		}
		fmt.Fprintf(w, `  <circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>#%d %s: %.1fs $%.2f [%s]</title></circle>`+"\n",
			x(d.PredSeconds), y(d.Cost), fill, c.Seq, deploymentLabel(d), d.PredSeconds, d.Cost, c.Pruned)
	}

	// Pareto frontier as a staircase over the non-dominated candidates.
	var frontier []Deployment
	for _, c := range s.Candidates {
		if c.Pruned != PruneDominated {
			frontier = append(frontier, c.Deployment)
		}
	}
	frontier, _ = paretoSplit(frontier) // re-filter: constraint-pruned candidates may still dominate
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].PredSeconds < frontier[j].PredSeconds })
	if len(frontier) > 1 {
		fmt.Fprintf(w, `  <polyline fill="none" stroke="#3366cc" stroke-width="1.5" points="`)
		for i, d := range frontier {
			if i > 0 {
				// Staircase: horizontal then vertical.
				fmt.Fprintf(w, "%.1f,%.1f ", x(d.PredSeconds), y(frontier[i-1].Cost))
			}
			fmt.Fprintf(w, "%.1f,%.1f ", x(d.PredSeconds), y(d.Cost))
		}
		fmt.Fprintf(w, `"/>`+"\n")
	}
	for _, d := range frontier {
		fmt.Fprintf(w, `  <circle cx="%.1f" cy="%.1f" r="3.5" fill="#3366cc"/>`+"\n", x(d.PredSeconds), y(d.Cost))
	}

	// Winner ring.
	if s.WinnerSeq >= 0 {
		d := s.Candidates[s.WinnerSeq].Deployment
		fmt.Fprintf(w, `  <circle cx="%.1f" cy="%.1f" r="7" fill="none" stroke="#cc3333" stroke-width="2"><title>winner: %s</title></circle>`+"\n",
			x(d.PredSeconds), y(d.Cost), deploymentLabel(d))
	}
	fmt.Fprintf(w, "</svg>\n")
	return nil
}
