// Package opt is Cumulon's cost-based deployment optimizer: given a
// matrix program and a time or money constraint, it searches the joint
// space of
//
//   - physical plan parameters (per-job splits),
//   - configuration settings (task slots per node),
//   - hardware provisioning (machine type and cluster size),
//
// using the calibrated task-time models (package model) and the cluster
// simulator (package sim) to predict completion time, and the provider's
// billing rules (package cloud) to price each candidate. This is the
// paper's core optimization contribution: database-style physical
// optimization extended to provisioning and configuration.
package opt

import (
	"fmt"
	"math"
	"sort"

	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/model"
	"cumulon/internal/plan"
	"cumulon/internal/sim"
)

// Deployment is one fully specified way to run the program: a cluster and
// the per-job splits tuned for it, with predicted time and price.
type Deployment struct {
	Cluster cloud.Cluster
	// TileSize is the storage tile size this deployment was planned for
	// (a physical parameter the optimizer may sweep).
	TileSize    int
	Splits      map[int]plan.Split
	PredSeconds float64
	// Cost is the billed price (whole instance-hours); CostLinear is the
	// idealized per-second price, reported for tradeoff curves.
	Cost       float64
	CostLinear float64
}

// Apply copies the deployment's splits onto a freshly compiled plan so an
// engine can execute exactly what the optimizer predicted. The plan must
// have been compiled with the deployment's TileSize.
func (d *Deployment) Apply(pl *plan.Plan) error {
	if d.TileSize != 0 && pl.TileSize != d.TileSize {
		return fmt.Errorf("opt: plan tile size %d does not match deployment's %d", pl.TileSize, d.TileSize)
	}
	for _, j := range pl.Jobs {
		s, ok := d.Splits[j.ID]
		if !ok {
			return fmt.Errorf("opt: deployment has no split for job %d", j.ID)
		}
		j.Split = s
	}
	return nil
}

func (d *Deployment) String() string {
	return fmt.Sprintf("%s: %.0fs, $%.2f", d.Cluster, d.PredSeconds, d.Cost)
}

// Request describes an optimization problem.
type Request struct {
	Program *lang.Program
	PlanCfg plan.Config
	// DeadlineSec bounds completion time (MinCostForDeadline).
	DeadlineSec float64
	// BudgetDollars bounds billed cost (MinTimeForBudget).
	BudgetDollars float64
	// Machines restricts the machine-type catalog (default: full catalog).
	Machines []cloud.MachineType
	// MaxNodes bounds the cluster-size sweep (default 64).
	MaxNodes int
	// TileSizes optionally sweeps the storage tile size as part of the
	// search; empty means use PlanCfg.TileSize only.
	TileSizes []int
	// Replication is the DFS replication factor (default 3).
	Replication int
	// JobStartupSec must match the target engine's (default 6).
	JobStartupSec float64
	// Confidence, when in (0, 1), makes MinCostForDeadline promise the
	// deadline probabilistically: a candidate is feasible only if the
	// Confidence-quantile of its Monte Carlo completion-time distribution
	// meets the deadline, not just its point estimate. Costs extra
	// simulation for the candidates near the frontier.
	Confidence float64
	// Trials is the Monte Carlo sample count for Confidence (default 30).
	Trials int
}

func (r Request) withDefaults() Request {
	if len(r.Machines) == 0 {
		r.Machines = cloud.Catalog()
	}
	if r.MaxNodes == 0 {
		r.MaxNodes = 64
	}
	if r.Replication == 0 {
		r.Replication = 3
	}
	if r.JobStartupSec == 0 {
		r.JobStartupSec = 6
	}
	return r
}

// Result is the outcome of a search.
type Result struct {
	Best *Deployment
	// Met reports whether the constraint was satisfiable; when false,
	// Best is the closest candidate (fastest or cheapest).
	Met bool
	// Candidates are all evaluated deployments, in evaluation order.
	Candidates []Deployment
	// Frontier is the Pareto-optimal (time, cost) subset, time-ascending.
	Frontier []Deployment
}

// Optimizer caches calibrated task-time models across searches (the
// paper's benchmarking phase is per machine type, not per query).
type Optimizer struct {
	seed   int64
	models map[string]*model.TaskModel
}

// New creates an optimizer; seed drives calibration determinism.
func New(seed int64) *Optimizer {
	return &Optimizer{seed: seed, models: map[string]*model.TaskModel{}}
}

// ModelFor returns the (cached) calibrated model for a machine type and
// slot configuration.
func (o *Optimizer) ModelFor(mt cloud.MachineType, slots int) (*model.TaskModel, error) {
	key := fmt.Sprintf("%s/%d", mt.Name, slots)
	if m, ok := o.models[key]; ok {
		return m, nil
	}
	res, err := model.Calibrate(mt, slots, o.seed)
	if err != nil {
		return nil, err
	}
	o.models[key] = res.Model
	return res.Model, nil
}

// slotOptions returns the slot configurations to sweep for a machine
// type: 1, half the cores, the cores, and 2x oversubscription.
func slotOptions(mt cloud.MachineType) []int {
	set := map[int]bool{}
	var out []int
	for _, s := range []int{1, mt.Cores / 2, mt.Cores, 2 * mt.Cores} {
		if s >= 1 && !set[s] {
			set[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// nodeSweep returns the cluster sizes to consider.
func nodeSweep(maxNodes int) []int {
	base := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	var out []int
	for _, n := range base {
		if n <= maxNodes {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// Enumerate evaluates the full deployment space for the request: every
// (machine type, slots, nodes) triple, with per-job splits optimized by
// the simulator for each.
func (o *Optimizer) Enumerate(req Request) ([]Deployment, error) {
	req = req.withDefaults()
	if _, err := req.Program.Validate(); err != nil {
		return nil, err
	}
	tileSizes := req.TileSizes
	if len(tileSizes) == 0 {
		tileSizes = []int{req.PlanCfg.TileSize}
	}
	var out []Deployment
	for _, mt := range req.Machines {
		for _, slots := range slotOptions(mt) {
			tm, err := o.ModelFor(mt, slots)
			if err != nil {
				return nil, err
			}
			for _, nodes := range nodeSweep(req.MaxNodes) {
				cluster, err := cloud.NewCluster(mt, nodes, slots)
				if err != nil {
					return nil, err
				}
				for _, ts := range tileSizes {
					cfg := req.PlanCfg
					cfg.TileSize = ts
					pl, err := plan.Compile(req.Program, cfg)
					if err != nil {
						return nil, err
					}
					pred := sim.New(tm, cluster)
					pred.Replication = req.Replication
					pred.JobStartup = req.JobStartupSec
					memPerSlot := int64(mt.MemoryGB * 1e9 * 0.7 / float64(slots))
					// Sweep splits with the fast wave model, then price the
					// chosen deployment with the exact scheduler simulation.
					pred.Coarse = true
					pred.OptimizeSplits(pl, memPerSlot)
					pred.Coarse = false
					secs := pred.PredictPlan(pl)
					splits := map[int]plan.Split{}
					for _, j := range pl.Jobs {
						splits[j.ID] = j.Split
					}
					out = append(out, Deployment{
						Cluster:     cluster,
						TileSize:    ts,
						Splits:      splits,
						PredSeconds: secs,
						Cost:        cloud.Cost(mt, nodes, secs),
						CostLinear:  cloud.CostLinear(mt, nodes, secs),
					})
				}
			}
		}
	}
	return out, nil
}

// MinCostForDeadline finds the cheapest deployment predicted to finish
// within the deadline. If none exists, Met is false and Best is the
// fastest deployment found.
func (o *Optimizer) MinCostForDeadline(req Request) (*Result, error) {
	req = req.withDefaults()
	if req.DeadlineSec <= 0 {
		return nil, fmt.Errorf("opt: deadline must be positive")
	}
	cands, err := o.Enumerate(req)
	if err != nil {
		return nil, err
	}
	res := &Result{Candidates: cands, Frontier: pareto(cands)}
	if req.Confidence > 0 && req.Confidence < 1 {
		return o.minCostConfident(req, res)
	}
	var best, fastest *Deployment
	for i := range cands {
		d := &cands[i]
		if fastest == nil || d.PredSeconds < fastest.PredSeconds {
			fastest = d
		}
		if d.PredSeconds > req.DeadlineSec {
			continue
		}
		if best == nil || d.Cost < best.Cost ||
			(d.Cost == best.Cost && d.PredSeconds < best.PredSeconds) {
			best = d
		}
	}
	if best != nil {
		res.Best, res.Met = best, true
	} else {
		res.Best, res.Met = fastest, false
	}
	return res, nil
}

// minCostConfident picks the cheapest candidate whose Confidence-quantile
// completion time (by Monte Carlo over the model's residual distribution)
// meets the deadline. Candidates are verified lazily in cost order, so
// the expensive simulation only touches the frontier.
func (o *Optimizer) minCostConfident(req Request, res *Result) (*Result, error) {
	trials := req.Trials
	if trials <= 0 {
		trials = 30
	}
	order := make([]int, len(res.Candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := res.Candidates[order[a]], res.Candidates[order[b]]
		if da.Cost != db.Cost {
			return da.Cost < db.Cost
		}
		return da.PredSeconds < db.PredSeconds
	})
	var fastest *Deployment
	for _, idx := range order {
		d := &res.Candidates[idx]
		if fastest == nil || d.PredSeconds < fastest.PredSeconds {
			fastest = d
		}
		// Point-infeasible candidates cannot become feasible at a higher
		// quantile.
		if d.PredSeconds > req.DeadlineSec {
			continue
		}
		q, err := o.confQuantile(req, d, trials)
		if err != nil {
			return nil, err
		}
		if q <= req.DeadlineSec {
			dd := *d
			dd.PredSeconds = q // report the promised (quantile) time
			res.Best, res.Met = &dd, true
			return res, nil
		}
	}
	res.Best, res.Met = fastest, false
	return res, nil
}

// confQuantile recompiles the candidate's plan, applies its splits, and
// simulates the completion-time quantile at the request's confidence.
func (o *Optimizer) confQuantile(req Request, d *Deployment, trials int) (float64, error) {
	cfg := req.PlanCfg
	if d.TileSize != 0 {
		cfg.TileSize = d.TileSize
	}
	pl, err := plan.Compile(req.Program, cfg)
	if err != nil {
		return 0, err
	}
	if err := d.Apply(pl); err != nil {
		return 0, err
	}
	tm, err := o.ModelFor(d.Cluster.Type, d.Cluster.Slots)
	if err != nil {
		return 0, err
	}
	pred := sim.New(tm, d.Cluster)
	pred.Replication = req.Replication
	pred.JobStartup = req.JobStartupSec
	return pred.PredictPlanQuantile(pl, trials, o.seed+int64(d.Cluster.Nodes), req.Confidence), nil
}

// MinTimeForBudget finds the fastest deployment whose billed cost fits the
// budget. If none exists, Met is false and Best is the cheapest.
func (o *Optimizer) MinTimeForBudget(req Request) (*Result, error) {
	req = req.withDefaults()
	if req.BudgetDollars <= 0 {
		return nil, fmt.Errorf("opt: budget must be positive")
	}
	cands, err := o.Enumerate(req)
	if err != nil {
		return nil, err
	}
	res := &Result{Candidates: cands, Frontier: pareto(cands)}
	var best, cheapest *Deployment
	for i := range cands {
		d := &cands[i]
		if cheapest == nil || d.Cost < cheapest.Cost {
			cheapest = d
		}
		if d.Cost > req.BudgetDollars {
			continue
		}
		if best == nil || d.PredSeconds < best.PredSeconds ||
			(d.PredSeconds == best.PredSeconds && d.Cost < best.Cost) {
			best = d
		}
	}
	if best != nil {
		res.Best, res.Met = best, true
	} else {
		res.Best, res.Met = cheapest, false
	}
	return res, nil
}

// pareto returns the deployments not dominated in (time, cost), sorted by
// time ascending (and thus cost descending).
func pareto(cands []Deployment) []Deployment {
	sorted := append([]Deployment(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PredSeconds != sorted[j].PredSeconds {
			return sorted[i].PredSeconds < sorted[j].PredSeconds
		}
		return sorted[i].Cost < sorted[j].Cost
	})
	var out []Deployment
	minCost := math.Inf(1)
	for _, d := range sorted {
		if d.Cost < minCost {
			out = append(out, d)
			minCost = d.Cost
		}
	}
	return out
}
