// Package opt is Cumulon's cost-based deployment optimizer: given a
// matrix program and a time or money constraint, it searches the joint
// space of
//
//   - physical plan parameters (per-job splits),
//   - configuration settings (task slots per node),
//   - hardware provisioning (machine type and cluster size),
//
// using the calibrated task-time models (package model) and the cluster
// simulator (package sim) to predict completion time, and the provider's
// billing rules (package cloud) to price each candidate. This is the
// paper's core optimization contribution: database-style physical
// optimization extended to provisioning and configuration.
package opt

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/linalg/tune"
	"cumulon/internal/model"
	"cumulon/internal/plan"
	"cumulon/internal/sim"
)

// Deployment is one fully specified way to run the program: a cluster and
// the per-job splits tuned for it, with predicted time and price. The
// struct marshals to JSON with the full decision — including the tile
// size and, for confidence-constrained searches, the promised quantile —
// and round-trips through encoding/json.
type Deployment struct {
	Cluster cloud.Cluster `json:"cluster"`
	// TileSize is the storage tile size this deployment was planned for
	// (a physical parameter the optimizer may sweep).
	TileSize    int                `json:"tile_size"`
	Splits      map[int]plan.Split `json:"splits"`
	PredSeconds float64            `json:"pred_seconds"`
	// Cost is the billed price (whole instance-hours); CostLinear is the
	// idealized per-second price, reported for tradeoff curves.
	Cost       float64 `json:"cost"`
	CostLinear float64 `json:"cost_linear"`
	// Confidence and QuantileSeconds report the probabilistic promise of
	// a confidence-constrained search: QuantileSeconds is the simulated
	// Confidence-quantile completion time the deadline was checked
	// against. Both are zero for point-estimate searches.
	Confidence      float64 `json:"confidence,omitempty"`
	QuantileSeconds float64 `json:"quantile_seconds,omitempty"`
}

// Apply copies the deployment's splits onto a freshly compiled plan so an
// engine can execute exactly what the optimizer predicted. The plan must
// have been compiled with the deployment's TileSize.
func (d *Deployment) Apply(pl *plan.Plan) error {
	if d.TileSize != 0 && pl.TileSize != d.TileSize {
		return fmt.Errorf("opt: plan tile size %d does not match deployment's %d", pl.TileSize, d.TileSize)
	}
	for _, j := range pl.Jobs {
		s, ok := d.Splits[j.ID]
		if !ok {
			return fmt.Errorf("opt: deployment has no split for job %d", j.ID)
		}
		j.Split = s
	}
	return nil
}

func (d *Deployment) String() string {
	s := d.Cluster.String()
	if d.TileSize != 0 {
		s += fmt.Sprintf(", tile %d", d.TileSize)
	}
	s += fmt.Sprintf(": %.0fs, $%.2f", d.PredSeconds, d.Cost)
	if d.Confidence > 0 {
		s += fmt.Sprintf(" (p%.0f %.0fs)", d.Confidence*100, d.QuantileSeconds)
	}
	return s
}

// Request describes an optimization problem.
type Request struct {
	Program *lang.Program
	PlanCfg plan.Config
	// DeadlineSec bounds completion time (MinCostForDeadline).
	DeadlineSec float64
	// BudgetDollars bounds billed cost (MinTimeForBudget).
	BudgetDollars float64
	// Machines restricts the machine-type catalog (default: full catalog).
	Machines []cloud.MachineType
	// MaxNodes bounds the cluster-size sweep (default 64).
	MaxNodes int
	// TileSizes optionally sweeps the storage tile size as part of the
	// search; empty means use PlanCfg.TileSize only.
	TileSizes []int
	// Replication is the DFS replication factor (default 3).
	Replication int
	// JobStartupSec must match the target engine's (default 6).
	JobStartupSec float64
	// Confidence, when in (0, 1), makes MinCostForDeadline promise the
	// deadline probabilistically: a candidate is feasible only if the
	// Confidence-quantile of its Monte Carlo completion-time distribution
	// meets the deadline, not just its point estimate. Costs extra
	// simulation for the candidates near the frontier.
	Confidence float64
	// Trials is the Monte Carlo sample count for Confidence (default 30).
	Trials int
	// Search receives candidate-level telemetry of the search: every grid
	// point evaluated, its model-term breakdown, why it was pruned, and
	// the winner (see SearchRecorder). nil disables recording at zero
	// cost.
	Search SearchRecorder
}

func (r Request) withDefaults() Request {
	if len(r.Machines) == 0 {
		r.Machines = cloud.Catalog()
	}
	if r.MaxNodes == 0 {
		r.MaxNodes = 64
	}
	if r.Replication == 0 {
		r.Replication = 3
	}
	if r.JobStartupSec == 0 {
		r.JobStartupSec = 6
	}
	return r
}

// Result is the outcome of a search.
type Result struct {
	Best *Deployment
	// Met reports whether the constraint was satisfiable; when false,
	// Best is the closest candidate (fastest or cheapest).
	Met bool
	// Candidates are all evaluated deployments, in evaluation order.
	Candidates []Deployment
	// Frontier is the Pareto-optimal (time, cost) subset, time-ascending.
	Frontier []Deployment
	// DominatedBy maps each candidate (by index into Candidates) to the
	// index of a candidate that Pareto-dominates it, or -1 for frontier
	// members — the counts the pareto filter previously dropped silently.
	DominatedBy []int
}

// Optimizer caches calibrated task-time models across searches (the
// paper's benchmarking phase is per machine type, not per query).
//
// An Optimizer is safe for concurrent use: the model cache is the only
// state shared between searches and it is mutex-guarded, so many
// goroutines (the job server's workers) can run searches on one
// Optimizer and share its calibrations. Each concurrent search should
// supply its own SearchRecorder when it wants telemetry — a shared
// SearchTrace interleaves candidates from concurrent searches.
type Optimizer struct {
	seed int64

	mu      sync.Mutex
	models  map[string]*model.TaskModel
	profile *tune.Profile
}

// New creates an optimizer; seed drives calibration determinism.
func New(seed int64) *Optimizer {
	return &Optimizer{seed: seed, models: map[string]*model.TaskModel{}}
}

// UseKernelProfile attaches a kernel autotuner profile
// (internal/linalg/tune) to every subsequent calibration: the measured
// parallel speedup scales each machine type's effective throughput, so
// search estimates track the tuned kernel tier. Passing nil reverts to
// catalog throughput. Cached models calibrated under a different
// profile are discarded.
func (o *Optimizer) UseKernelProfile(p *tune.Profile) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.profile == p {
		return
	}
	o.profile = p
	o.models = map[string]*model.TaskModel{}
}

// ModelFor returns the (cached) calibrated model for a machine type and
// slot configuration.
func (o *Optimizer) ModelFor(mt cloud.MachineType, slots int) (*model.TaskModel, error) {
	return o.modelFor(mt, slots, NopSearch())
}

// modelFor is ModelFor reporting cache hits and misses to the search
// recorder (the paper's benchmarking phase is the expensive part; the
// hit rate shows the cache amortizing it across the search grid).
// Calibration runs outside the lock; concurrent misses on the same key
// may calibrate twice, but both compute the identical seeded model and
// the second write is a no-op overwrite.
func (o *Optimizer) modelFor(mt cloud.MachineType, slots int, rec SearchRecorder) (*model.TaskModel, error) {
	key := fmt.Sprintf("%s/%d", mt.Name, slots)
	o.mu.Lock()
	if m, ok := o.models[key]; ok {
		o.mu.Unlock()
		rec.Count(CounterModelCacheHits, 1)
		return m, nil
	}
	prof := o.profile
	o.mu.Unlock()
	rec.Count(CounterModelCacheMisses, 1)
	res, err := model.CalibrateWithProfile(mt, slots, o.seed, prof)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	// A concurrent UseKernelProfile invalidates this calibration: drop it
	// rather than poisoning the fresh cache.
	if o.profile == prof {
		o.models[key] = res.Model
	}
	o.mu.Unlock()
	return res.Model, nil
}

// slotOptions returns the slot configurations to sweep for a machine
// type: 1, half the cores, the cores, and 2x oversubscription.
func slotOptions(mt cloud.MachineType) []int {
	set := map[int]bool{}
	var out []int
	for _, s := range []int{1, mt.Cores / 2, mt.Cores, 2 * mt.Cores} {
		if s >= 1 && !set[s] {
			set[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// nodeSweep returns the cluster sizes to consider.
func nodeSweep(maxNodes int) []int {
	base := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	var out []int
	for _, n := range base {
		if n <= maxNodes {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// Enumerate evaluates the full deployment space for the request: every
// (machine type, slots, nodes) triple, with per-job splits optimized by
// the simulator for each. When req.Search is set, every grid point is
// reported to it with its model-term breakdown.
func (o *Optimizer) Enumerate(req Request) ([]Deployment, error) {
	req = req.withDefaults()
	rec := searchOrNop(req.Search)
	if _, err := req.Program.Validate(); err != nil {
		return nil, err
	}
	tileSizes := req.TileSizes
	if len(tileSizes) == 0 {
		tileSizes = []int{req.PlanCfg.TileSize}
	}
	var out []Deployment
	for _, mt := range req.Machines {
		for _, slots := range slotOptions(mt) {
			tm, err := o.modelFor(mt, slots, rec)
			if err != nil {
				return nil, err
			}
			for _, nodes := range nodeSweep(req.MaxNodes) {
				cluster, err := cloud.NewCluster(mt, nodes, slots)
				if err != nil {
					return nil, err
				}
				for _, ts := range tileSizes {
					cfg := req.PlanCfg
					cfg.TileSize = ts
					pl, err := plan.Compile(req.Program, cfg)
					if err != nil {
						return nil, err
					}
					if r := pl.Rewrites; r != nil {
						rec.Count(CounterCSEChains, int64(r.Chains()))
						rec.Count(CounterCSEFlops, r.FlopsSaved())
					}
					pred := sim.New(tm, cluster)
					pred.Replication = req.Replication
					pred.JobStartup = req.JobStartupSec
					memPerSlot := int64(mt.MemoryGB * 1e9 * 0.7 / float64(slots))
					// Sweep splits with the fast wave model, then price the
					// chosen deployment with the exact scheduler simulation.
					pred.Coarse = true
					pred.OptimizeSplits(pl, memPerSlot)
					pred.Coarse = false
					secs := pred.PredictPlan(pl)
					splits := map[int]plan.Split{}
					for _, j := range pl.Jobs {
						splits[j.ID] = j.Split
					}
					d := Deployment{
						Cluster:     cluster,
						TileSize:    ts,
						Splits:      splits,
						PredSeconds: secs,
						Cost:        cloud.Cost(mt, nodes, secs),
						CostLinear:  cloud.CostLinear(mt, nodes, secs),
					}
					if rec.Enabled() {
						rec.Candidate(Candidate{
							Seq:         len(out),
							Deployment:  d,
							Terms:       pred.PlanTerms(pl),
							DominatedBy: -1,
						})
					}
					out = append(out, d)
				}
			}
		}
	}
	return out, nil
}

// MinCostForDeadline finds the cheapest deployment predicted to finish
// within the deadline. If none exists, Met is false and Best is the
// fastest deployment found.
func (o *Optimizer) MinCostForDeadline(req Request) (*Result, error) {
	req = req.withDefaults()
	rec := searchOrNop(req.Search)
	if req.DeadlineSec <= 0 {
		return nil, fmt.Errorf("opt: deadline must be positive")
	}
	rec.Begin("min-cost-deadline", req.DeadlineSec, req.Confidence)
	rec.Count(CounterSearches, 1)
	cands, err := o.Enumerate(req)
	if err != nil {
		return nil, err
	}
	res := newResult(cands)
	if req.Confidence > 0 && req.Confidence < 1 {
		return o.minCostConfident(req, res, rec)
	}
	best, fastest := -1, -1
	for i := range cands {
		d := &cands[i]
		if fastest == -1 || d.PredSeconds < cands[fastest].PredSeconds {
			fastest = i
		}
		if d.PredSeconds > req.DeadlineSec {
			continue
		}
		if best == -1 || d.Cost < cands[best].Cost ||
			(d.Cost == cands[best].Cost && d.PredSeconds < cands[best].PredSeconds) {
			best = i
		}
	}
	win := best
	if win >= 0 {
		res.Best, res.Met = &cands[win], true
	} else if fastest >= 0 {
		win = fastest
		res.Best, res.Met = &cands[win], false
	}
	if rec.Enabled() {
		markDecision(rec, res, win, func(d *Deployment) PruneReason {
			if d.PredSeconds > req.DeadlineSec {
				return PruneOverDeadline
			}
			return PruneNone
		})
	}
	return res, nil
}

// newResult builds a Result with the Pareto analysis of the candidates.
func newResult(cands []Deployment) *Result {
	frontier, dominatedBy := paretoSplit(cands)
	return &Result{Candidates: cands, Frontier: frontier, DominatedBy: dominatedBy}
}

// markDecision reports every candidate's fate to the search recorder
// once a winner is decided: constraint violations, Pareto dominance,
// feasible-but-outranked, and the winner itself (possibly with Met
// false for unsatisfiable constraints). infeasible classifies a
// candidate against the search's constraint (PruneNone = feasible).
func markDecision(rec SearchRecorder, res *Result, win int, infeasible func(*Deployment) PruneReason) {
	for i := range res.Candidates {
		d := &res.Candidates[i]
		switch {
		case i == win && res.Met:
			// The winner's fate is recorded below.
		case infeasible(d) != PruneNone:
			rec.Prune(i, infeasible(d), -1, 0)
		case res.DominatedBy[i] >= 0:
			rec.Prune(i, PruneDominated, res.DominatedBy[i], 0)
		default:
			rec.Prune(i, PruneOutranked, -1, 0)
		}
	}
	if win >= 0 {
		rec.Winner(win, res.Met)
	}
}

// minCostConfident picks the cheapest candidate whose Confidence-quantile
// completion time (by Monte Carlo over the model's residual distribution)
// meets the deadline. Candidates are verified lazily in cost order, so
// the expensive simulation only touches the frontier.
func (o *Optimizer) minCostConfident(req Request, res *Result, rec SearchRecorder) (*Result, error) {
	trials := req.Trials
	if trials <= 0 {
		trials = 30
	}
	order := make([]int, len(res.Candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := res.Candidates[order[a]], res.Candidates[order[b]]
		if da.Cost != db.Cost {
			return da.Cost < db.Cost
		}
		return da.PredSeconds < db.PredSeconds
	})
	// Quantiles simulated and rejected, by candidate index, so the prune
	// marks can be emitted in Seq order once the search decides.
	rejected := map[int]float64{}
	win, winQ := -1, 0.0
	for _, idx := range order {
		d := &res.Candidates[idx]
		// Point-infeasible candidates cannot become feasible at a higher
		// quantile.
		if d.PredSeconds > req.DeadlineSec {
			continue
		}
		q, err := o.confQuantile(req, d, trials, rec)
		if err != nil {
			return nil, err
		}
		rec.Count(CounterSimTrials, int64(trials))
		if q <= req.DeadlineSec {
			win, winQ = idx, q
			dd := *d
			dd.PredSeconds = q // report the promised (quantile) time
			dd.Confidence = req.Confidence
			dd.QuantileSeconds = q
			res.Best, res.Met = &dd, true
			break
		}
		rejected[idx] = q
	}
	fastest := -1
	for i := range res.Candidates {
		if fastest == -1 || res.Candidates[i].PredSeconds < res.Candidates[fastest].PredSeconds {
			fastest = i
		}
	}
	if win < 0 && fastest >= 0 {
		res.Best, res.Met = &res.Candidates[fastest], false
	}
	if rec.Enabled() {
		for i := range res.Candidates {
			d := &res.Candidates[i]
			switch {
			case i == win:
				// Attach the promised quantile to the winner's record
				// (PruneNone leaves it unrejected).
				rec.Prune(i, PruneNone, -1, winQ)
			case rejected[i] > 0:
				rec.Prune(i, PruneConfidence, -1, rejected[i])
			case d.PredSeconds > req.DeadlineSec:
				rec.Prune(i, PruneOverDeadline, -1, 0)
			case res.DominatedBy[i] >= 0:
				rec.Prune(i, PruneDominated, res.DominatedBy[i], 0)
			default:
				rec.Prune(i, PruneOutranked, -1, 0)
			}
		}
		if win >= 0 {
			rec.Winner(win, true)
		} else if fastest >= 0 {
			rec.Winner(fastest, false)
		}
	}
	return res, nil
}

// confQuantile recompiles the candidate's plan, applies its splits, and
// simulates the completion-time quantile at the request's confidence.
func (o *Optimizer) confQuantile(req Request, d *Deployment, trials int, rec SearchRecorder) (float64, error) {
	cfg := req.PlanCfg
	if d.TileSize != 0 {
		cfg.TileSize = d.TileSize
	}
	pl, err := plan.Compile(req.Program, cfg)
	if err != nil {
		return 0, err
	}
	if err := d.Apply(pl); err != nil {
		return 0, err
	}
	tm, err := o.modelFor(d.Cluster.Type, d.Cluster.Slots, rec)
	if err != nil {
		return 0, err
	}
	pred := sim.New(tm, d.Cluster)
	pred.Replication = req.Replication
	pred.JobStartup = req.JobStartupSec
	return pred.PredictPlanQuantile(pl, trials, o.seed+int64(d.Cluster.Nodes), req.Confidence), nil
}

// MinTimeForBudget finds the fastest deployment whose billed cost fits the
// budget. If none exists, Met is false and Best is the cheapest.
func (o *Optimizer) MinTimeForBudget(req Request) (*Result, error) {
	req = req.withDefaults()
	rec := searchOrNop(req.Search)
	if req.BudgetDollars <= 0 {
		return nil, fmt.Errorf("opt: budget must be positive")
	}
	rec.Begin("min-time-budget", req.BudgetDollars, 0)
	rec.Count(CounterSearches, 1)
	cands, err := o.Enumerate(req)
	if err != nil {
		return nil, err
	}
	res := newResult(cands)
	best, cheapest := -1, -1
	for i := range cands {
		d := &cands[i]
		if cheapest == -1 || d.Cost < cands[cheapest].Cost {
			cheapest = i
		}
		if d.Cost > req.BudgetDollars {
			continue
		}
		if best == -1 || d.PredSeconds < cands[best].PredSeconds ||
			(d.PredSeconds == cands[best].PredSeconds && d.Cost < cands[best].Cost) {
			best = i
		}
	}
	win := best
	if win >= 0 {
		res.Best, res.Met = &cands[win], true
	} else if cheapest >= 0 {
		win = cheapest
		res.Best, res.Met = &cands[win], false
	}
	if rec.Enabled() {
		markDecision(rec, res, win, func(d *Deployment) PruneReason {
			if d.Cost > req.BudgetDollars {
				return PruneOverBudget
			}
			return PruneNone
		})
	}
	return res, nil
}

// pareto returns the deployments not dominated in (time, cost), sorted by
// time ascending (and thus cost descending).
func pareto(cands []Deployment) []Deployment {
	f, _ := paretoSplit(cands)
	return f
}

// paretoSplit computes the Pareto frontier of the candidates in (time,
// cost) and, for every dominated candidate, the index of a frontier
// member that dominates it (-1 for frontier members). Dominance is
// no-worse in both dimensions and strictly better in one; exact
// (time, cost) ties keep the earliest-evaluated candidate on the
// frontier and mark later duplicates dominated by it.
func paretoSplit(cands []Deployment) ([]Deployment, []int) {
	dominatedBy := make([]int, len(cands))
	idx := make([]int, len(cands))
	for i := range idx {
		dominatedBy[i] = -1
		idx[i] = i
	}
	// Stable sort by (time, cost): among exact ties the earliest-evaluated
	// candidate sorts first and becomes the frontier member.
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := cands[idx[a]], cands[idx[b]]
		if da.PredSeconds != db.PredSeconds {
			return da.PredSeconds < db.PredSeconds
		}
		return da.Cost < db.Cost
	})
	var out []Deployment
	minCost := math.Inf(1)
	minCostIdx := -1
	for _, i := range idx {
		d := cands[i]
		if d.Cost < minCost {
			out = append(out, d)
			minCost = d.Cost
			minCostIdx = i
		} else {
			// The running min-cost candidate is no slower (sorted) and no
			// costlier, and not an exact tie unless i came later: dominated.
			dominatedBy[i] = minCostIdx
		}
	}
	return out, dominatedBy
}
