package compute

import (
	"fmt"
	"testing"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
)

// benchMapJob compiles a representative fused element-wise statement
// (six tile operators: ⊙, ⊘, scale, add, sqrt, sub) over one ts x ts
// tile and returns a warmed Ctx ready to evaluate it repeatedly.
func benchMapJob(b *testing.B, ts int, interpret bool) (*Ctx, *plan.Job) {
	b.Helper()
	src := fmt.Sprintf(`
input A %[1]d %[1]d
input B %[1]d %[1]d
input C %[1]d %[1]d
Out = A .* B + 2 * (C ./ A) - sqrt(B)
output Out
`, ts)
	prog, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := plan.Compile(prog, plan.Config{TileSize: ts})
	if err != nil {
		b.Fatal(err)
	}
	var job *plan.Job
	for _, j := range pl.Jobs {
		if j.Kind == plan.MapKind {
			job = j
		}
	}
	if job == nil {
		b.Fatal("no map job in benchmark plan")
	}
	srcMap := mapSource{}
	for _, in := range pl.Inputs {
		d := linalg.RandomDense(ts, ts, 5).Map(func(x float64) float64 { return x + 0.5 })
		loadInput(srcMap, in, d)
	}
	c := newCtx(Env{Src: srcMap, Interpret: interpret}, &scratch{})
	return c, job
}

// BenchmarkMapEval measures one Map-job tile evaluation: "naive" walks
// the expression tree (one pass and one intermediate tile per operator),
// "fused" executes the compiled tape in a single cache-chunked pass into
// scratch. The fused variant must run at 0 allocs/op in steady state —
// CI greps this benchmark's output to enforce that.
func BenchmarkMapEval(b *testing.B) {
	for _, ts := range []int{256, 512} {
		b.Run(fmt.Sprintf("naive-%d", ts), func(b *testing.B) {
			c, j := benchMapJob(b, ts, true)
			flops := int64(j.Prog.Ops()) * int64(ts) * int64(ts)
			if _, err := c.evalTile(j.Expr, j.Leaves, 0, 0, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.evalTile(j.Expr, j.Leaves, 0, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e6, "MFLOP/s")
		})
		b.Run(fmt.Sprintf("fused-%d", ts), func(b *testing.B) {
			c, j := benchMapJob(b, ts, false)
			flops := int64(j.Prog.Ops()) * int64(ts) * int64(ts)
			warm, owned, err := c.evalProgram(j.Prog, j.Leaves, 0, 0, ts, ts, nil)
			if err != nil {
				b.Fatal(err)
			}
			if owned {
				c.sc.release(warm)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tile, owned, err := c.evalProgram(j.Prog, j.Leaves, 0, 0, ts, ts, nil)
				if err != nil {
					b.Fatal(err)
				}
				if owned {
					c.sc.release(tile)
				}
			}
			b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e6, "MFLOP/s")
		})
	}
}

// BenchmarkMulEpilogue measures a full mul-tile with a scalar epilogue:
// "naive" applies the epilogue as a separate interpreted pass over the
// finished product; "fused" folds it into the blocked GEMM write-back
// while the panel is cache-resident.
func BenchmarkMulEpilogue(b *testing.B) {
	const ts = 256
	src := fmt.Sprintf(`
input V %[1]d %[1]d
input W %[1]d %[1]d
input H %[1]d %[1]d
Out = V .* (W * H) ./ V
output Out
`, ts)
	prog, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := plan.Compile(prog, plan.Config{TileSize: ts})
	if err != nil {
		b.Fatal(err)
	}
	var job *plan.Job
	for _, j := range pl.Jobs {
		if j.Kind == plan.MulKind {
			job = j
		}
	}
	if job == nil || job.Epilogue == nil {
		b.Fatal("benchmark plan lacks a mul job with an epilogue")
	}
	for _, mode := range []struct {
		name      string
		interpret bool
	}{{"naive", true}, {"fused", false}} {
		b.Run(mode.name, func(b *testing.B) {
			srcMap := mapSource{}
			for _, in := range pl.Inputs {
				d := linalg.RandomDense(ts, ts, 6).Map(func(x float64) float64 { return x + 0.5 })
				loadInput(srcMap, in, d)
			}
			c := newCtx(Env{Src: srcMap, Interpret: mode.interpret}, &scratch{})
			ks := Span{0, job.KTiles()}
			run := func() {
				var epi *plan.TileProgram
				if !mode.interpret {
					epi = job.EpiProg
				}
				acc, err := c.mulTile(job, 0, 0, ks, epi)
				if err != nil {
					b.Fatal(err)
				}
				if mode.interpret {
					r, cc := job.Out.TileShape(0, 0)
					if _, _, _, err := c.evalTileShaped(job.Epilogue, job.Leaves, 0, 0, acc, r, cc); err != nil {
						b.Fatal(err)
					}
				}
				c.sc.release(acc)
			}
			run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}
