package compute

import (
	"cumulon/internal/lang"
	"cumulon/internal/plan"
	"cumulon/internal/store"
)

// Span is a half-open chunk [Lo, Hi) of a tile axis.
type Span struct{ Lo, Hi int }

// PartitionAxis cuts n tile indices into parts balanced chunks.
func PartitionAxis(n, parts int) []Span {
	if parts > n {
		parts = n
	}
	out := make([]Span, 0, parts)
	for p := 0; p < parts; p++ {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		if hi > lo {
			out = append(out, Span{lo, hi})
		}
	}
	return out
}

// KExtent returns the element extent of inner-dimension tile k.
func KExtent(kSize, tileSize, k int) int {
	ext := tileSize
	if r := kSize - k*tileSize; r < ext {
		ext = r
	}
	return ext
}

// NewMapTask builds the compute task of one Map-job chunk: evaluate the
// fused element-wise expression over the (is x js) output tiles. The
// compiled tape (j.Prog) runs one fused pass per tile; Env.Interpret (or a
// hand-built job without a tape) falls back to the tree-walker oracle.
func NewMapTask(env Env, j *plan.Job, is, js Span) *Task {
	return &Task{Env: env, Fn: func(c *Ctx) error {
		for ti := is.Lo; ti < is.Hi; ti++ {
			for tj := js.Lo; tj < js.Hi; tj++ {
				if j.Prog != nil && !env.Interpret {
					rows, cols := j.Out.TileShape(ti, tj)
					tile, owned, err := c.evalProgram(j.Prog, j.Leaves, ti, tj, rows, cols, nil)
					if err != nil {
						return err
					}
					if err := c.writeTile(j.Out, ti, tj, tile); err != nil {
						return err
					}
					if owned {
						c.sc.release(tile)
					}
					continue
				}
				tile, err := c.evalTile(j.Expr, j.Leaves, ti, tj, nil)
				if err != nil {
					return err
				}
				if err := c.writeTile(j.Out, ti, tj, tile); err != nil {
					return err
				}
			}
		}
		return nil
	}}
}

// NewMulTask builds the compute task of one Mul-job chunk over the inner
// span ks, writing to outMeta (the job output, or a k-split partial) with
// the given epilogue (nil for partials).
func NewMulTask(env Env, j *plan.Job, outMeta store.Meta, epilogue lang.Expr, is, js, ks Span) *Task {
	return &Task{Env: env, Fn: func(c *Ctx) error {
		// With compiled tapes the epilogue fuses into the final k step's
		// blocked GEMM write-back inside mulTile; the tree-walker oracle
		// applies it as a separate pass over the finished product.
		fuseEpi := epilogue != nil && j.EpiProg != nil && !env.Interpret
		for ti := is.Lo; ti < is.Hi; ti++ {
			for tj := js.Lo; tj < js.Hi; tj++ {
				var epi *plan.TileProgram
				if fuseEpi {
					epi = j.EpiProg
				}
				acc, err := c.mulTile(j, ti, tj, ks, epi)
				if err != nil {
					return err
				}
				out := acc
				if epilogue != nil && !fuseEpi {
					r, cc := j.Out.TileShape(ti, tj)
					out, _, _, err = c.evalTileShaped(epilogue, j.Leaves, ti, tj, acc, r, cc)
					if err != nil {
						return err
					}
				}
				if err := c.writeTile(outMeta, ti, tj, out); err != nil {
					return err
				}
				c.sc.release(acc)
			}
		}
		return nil
	}}
}

// NewMaskedMulTask builds the compute task of one masked-multiply chunk:
// the product restricted to the mask's stored positions, written sparsely.
func NewMaskedMulTask(env Env, j *plan.Job, maskRef plan.LeafRef, is, js, ks Span) *Task {
	return &Task{Env: env, Fn: func(c *Ctx) error {
		for ti := is.Lo; ti < is.Hi; ti++ {
			for tj := js.Lo; tj < js.Hi; tj++ {
				sp, err := c.mulTileMasked(j, maskRef, ti, tj, ks)
				if err != nil {
					return err
				}
				if err := c.writeSparseTile(j.Out, ti, tj, sp); err != nil {
					return err
				}
			}
		}
		return nil
	}}
}

// NewAggTask builds the compute task of one aggregation chunk: sum the
// partial matrices tile-wise and apply the job epilogue.
func NewAggTask(env Env, j *plan.Job, partials []store.Meta, is, js Span) *Task {
	return &Task{Env: env, Fn: func(c *Ctx) error {
		for ti := is.Lo; ti < is.Hi; ti++ {
			for tj := js.Lo; tj < js.Hi; tj++ {
				acc, err := c.sumTiles(partials, ti, tj)
				if err != nil {
					return err
				}
				out := acc
				if j.Epilogue != nil {
					r, cc := j.Out.TileShape(ti, tj)
					if j.EpiProg != nil && !env.Interpret {
						// Compiled epilogue: one in-place pass over the
						// summed accumulator.
						if err := c.applyProgramInPlace(j.EpiProg, j.Leaves, ti, tj, r, cc, acc); err != nil {
							return err
						}
					} else {
						out, _, _, err = c.evalTileShaped(j.Epilogue, j.Leaves, ti, tj, acc, r, cc)
						if err != nil {
							return err
						}
					}
				}
				if err := c.writeTile(j.Out, ti, tj, out); err != nil {
					return err
				}
				c.sc.release(acc)
			}
		}
		return nil
	}}
}
