// Package compute is the shared tile-compute layer: the pure mathematics
// of task execution, factored out of the orchestration engines so that the
// same kernels serve both Cumulon's slot scheduler (package exec) and the
// MapReduce baseline (package mapred), and so that the float work can run
// on parallel worker goroutines without disturbing the engines'
// deterministic virtual time.
//
// The key design point is the split between computing and accounting. A
// Task's function reads input tiles through a non-accounting Source.Peek,
// performs the tile math, and records an ordered Trace of I/O operations
// (reads touched, outputs produced) plus the flops spent. It never touches
// the virtual clock, the slot scheduler, replica placement, node caches or
// metrics — those belong to the engine, which replays the trace
// sequentially in scheduling order. Because the trace replay is the only
// thing that mutates engine state, a Backend is free to compute the tasks
// of a scheduling phase in any order, on any number of goroutines, and the
// engine's virtual times, byte accounting and placements stay byte-for-byte
// identical to the sequential reference.
package compute

// Source supplies input payloads to compute tasks. Implementations must be
// safe for concurrent use (dfs.FS is). Peek returns the file contents
// without any read accounting; the engine accounts the read later when it
// replays the task's trace.
type Source interface {
	Peek(path string) ([]byte, error)
}

// Env is the execution environment shared by the tasks of one engine run.
type Env struct {
	// Src supplies tile payloads. Unused (may be nil) in virtual mode.
	Src Source
	// Virtual elides all payloads: reads decode nothing, kernels run
	// nothing, and writes record estimated sizes only — but the trace and
	// flop counts are produced exactly as the engine's accounting needs.
	Virtual bool
	// TileOps turns on per-task kernel statistics (Result.Kernels) for
	// observability. Off (the default), tasks skip all tracking work so
	// the hot path is unaffected when tracing is disabled. Workers
	// accumulate the stats privately in their Result; the engine emits
	// them at replay, in scheduling order, so traces stay deterministic
	// regardless of compute parallelism.
	TileOps bool
	// Interpret forces the retained tree-walking evaluator instead of the
	// compiled tile pipelines. It exists for differential testing (the
	// interpreter is the oracle the compiled tapes are held bit-identical
	// to) and as an escape hatch; both paths must produce byte-identical
	// traces and tiles.
	Interpret bool
}

// Op is one recorded I/O operation of a task, in program order. The engine
// replays ops sequentially to perform read accounting and DFS writes.
type Op struct {
	// Write distinguishes output writes from input reads.
	Write bool
	// Sparse marks sparse-format access. On reads it selects which node
	// cache flavor can serve the access; on writes it is informational.
	Sparse bool
	// Path is the DFS path of the tile.
	Path string
	// Data is the encoded payload of a materialized write (nil for reads
	// and virtual writes).
	Data []byte
	// Size is the estimated payload size of a virtual write.
	Size int64
}

// KernelStat aggregates one kind of tile-level kernel invocation within
// a task: how many times it ran and the flops it spent. Only recorded
// when Env.TileOps is on.
type KernelStat struct {
	Kind  string
	Count int
	Flops int64
}

// Result is the outcome of one computed task: its I/O trace and the flops
// it spent. The result is immutable once returned and node-independent, so
// the engine may replay it on whichever node the task is (re)scheduled on.
type Result struct {
	Ops   []Op
	Flops int64
	// Kernels holds per-kind tile-op statistics in first-use order, nil
	// unless Env.TileOps is on.
	Kernels []KernelStat
}

// Task is one unit of compute work. Fn runs the tile math against a Ctx
// and must be pure apart from the Ctx it is handed: no shared state, no
// dependence on which worker or node runs it. Tasks within one engine
// scheduling phase must not read each other's outputs (the engines'
// phase barriers guarantee this).
type Task struct {
	Env Env
	Fn  func(*Ctx) error
}

// Backend runs compute tasks. Both implementations are deterministic in
// their results; they differ only in wall-clock strategy.
type Backend interface {
	// Workers returns the backend's concurrency width (1 for sequential).
	Workers() int
	// Run computes a single task synchronously.
	Run(t *Task) (*Result, error)
	// RunBatch accepts the tasks of one scheduling phase and returns a
	// fetch function: fetch(i) yields task i's result, computing or
	// waiting as needed. fetch must only be called from the engine's
	// scheduling goroutine; it may be called in any order, at most once
	// per index effectively (repeat calls return the memoized result).
	RunBatch(ts []*Task) func(i int) (*Result, error)
}

// runTask executes one task with the given scratch space.
func runTask(t *Task, sc *scratch) (*Result, error) {
	c := newCtx(t.Env, sc)
	if err := t.Fn(c); err != nil {
		return nil, err
	}
	return &c.res, nil
}

// sequentialBackend computes each task lazily on the calling goroutine,
// exactly when the engine first asks for its result. This is the reference
// backend: with it, compute interleaves with accounting in the engine's
// scheduling order just as the pre-refactor engine did.
type sequentialBackend struct {
	sc *scratch
}

// NewSequential returns the sequential reference backend.
func NewSequential() Backend { return &sequentialBackend{sc: &scratch{}} }

func (s *sequentialBackend) Workers() int { return 1 }

func (s *sequentialBackend) Run(t *Task) (*Result, error) { return runTask(t, s.sc) }

func (s *sequentialBackend) RunBatch(ts []*Task) func(int) (*Result, error) {
	type slot struct {
		res  *Result
		err  error
		done bool
	}
	memo := make([]slot, len(ts))
	return func(i int) (*Result, error) {
		m := &memo[i]
		if !m.done {
			m.res, m.err = runTask(ts[i], s.sc)
			m.done = true
		}
		return m.res, m.err
	}
}

// poolBackend fans a batch out across worker goroutines, each with its own
// scratch space. Tasks are handed to workers in index order; completion
// order is arbitrary, but the engine's fetch blocks per index, so nothing
// about scheduling depends on it.
type poolBackend struct {
	n int
}

// NewPool returns a worker-pool backend of the given width. Widths below 1
// are clamped to 1 (making it equivalent to running sequentially, minus
// the lazy evaluation).
func NewPool(workers int) Backend {
	if workers < 1 {
		workers = 1
	}
	return &poolBackend{n: workers}
}

func (p *poolBackend) Workers() int { return p.n }

func (p *poolBackend) Run(t *Task) (*Result, error) { return runTask(t, &scratch{}) }

func (p *poolBackend) RunBatch(ts []*Task) func(int) (*Result, error) {
	type slot struct {
		res *Result
		err error
	}
	out := make([]slot, len(ts))
	done := make([]chan struct{}, len(ts))
	for i := range done {
		done[i] = make(chan struct{})
	}
	idx := make(chan int)
	go func() {
		for i := range ts {
			idx <- i
		}
		close(idx)
	}()
	workers := p.n
	if workers > len(ts) {
		workers = len(ts)
	}
	for w := 0; w < workers; w++ {
		go func() {
			sc := &scratch{}
			for i := range idx {
				out[i].res, out[i].err = runTask(ts[i], sc)
				close(done[i])
			}
		}()
	}
	return func(i int) (*Result, error) {
		<-done[i]
		return out[i].res, out[i].err
	}
}
