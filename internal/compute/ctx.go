package compute

import (
	"fmt"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
	"cumulon/internal/store"
)

// scratch recycles accumulator tiles within a worker. Accumulators are
// released as soon as their contents have been encoded into the trace, so
// a worker's peak footprint stays at a few tiles regardless of task count.
type scratch struct {
	free []*linalg.Tile
}

// tile returns a zeroed rows x cols tile, reusing a released buffer when
// one is large enough. The pooled Tile header is reshaped and returned
// as-is (not re-wrapped), so a pool hit performs zero allocations.
func (s *scratch) tile(rows, cols int) *linalg.Tile {
	n := rows * cols
	for i := len(s.free) - 1; i >= 0; i-- {
		if t := s.free[i]; cap(t.Data) >= n {
			s.free = append(s.free[:i], s.free[i+1:]...)
			t.Rows, t.Cols, t.Data = rows, cols, t.Data[:n]
			for j := range t.Data {
				t.Data[j] = 0
			}
			return t
		}
	}
	return linalg.NewTile(rows, cols)
}

// release returns a tile to the pool. Only tiles obtained from this
// scratch may be released, and only once nothing references their data.
func (s *scratch) release(t *linalg.Tile) {
	if t == nil {
		return
	}
	const keep = 8
	if len(s.free) < keep {
		s.free = append(s.free, t)
	}
}

// Ctx carries the per-task compute state: the environment, decoded-tile
// caches so repeated references read once (as a real task would), the
// recorded trace, and the worker's scratch space. A Ctx lives for exactly
// one task execution and is confined to one goroutine.
type Ctx struct {
	env Env
	sc  *scratch
	res Result
	// dense / sparse cache decoded input tiles by structured key — no
	// path formatting on the hit path, so repeat reads allocate nothing
	// (materialized mode). A tile read both densely and sparsely within
	// one task is traced once per access kind, matching how a real task
	// would fetch it twice into the two formats.
	dense  map[tileKey]*linalg.Tile
	sparse map[tileKey]*linalg.CSRTile
	// seen marks paths already traced in virtual mode, where the two
	// access kinds share one marker (no payloads distinguish them).
	seen map[string]bool
	// leafBuf is the reusable leaf-slot buffer of the compiled pipeline
	// executor (pipeline.go); it keeps steady-state evaluation at zero
	// allocations.
	leafBuf [][]float64
}

// tileKey identifies one tile of one matrix for the decoded-tile caches.
// Matrix names are unique within a plan (partials included), so the name
// plus stored tile coordinates is as unique as the DFS path.
type tileKey struct {
	name   string
	ti, tj int
}

func newCtx(env Env, sc *scratch) *Ctx {
	if sc == nil {
		sc = &scratch{}
	}
	return &Ctx{
		env:    env,
		sc:     sc,
		dense:  map[tileKey]*linalg.Tile{},
		sparse: map[tileKey]*linalg.CSRTile{},
		seen:   map[string]bool{},
	}
}

func (c *Ctx) virtual() bool { return c.env.Virtual }

// addFlops charges n flops to the task and, when Env.TileOps is on, to
// the named kernel's aggregate statistics (kept in first-use order so the
// engine's replay-time events are deterministic).
func (c *Ctx) addFlops(kind string, n int64) {
	c.res.Flops += n
	if !c.env.TileOps {
		return
	}
	for i := range c.res.Kernels {
		if c.res.Kernels[i].Kind == kind {
			c.res.Kernels[i].Count++
			c.res.Kernels[i].Flops += n
			return
		}
	}
	c.res.Kernels = append(c.res.Kernels, KernelStat{Kind: kind, Count: 1, Flops: n})
}

// trace appends a read op unless the path was already traced this task.
func (c *Ctx) traceRead(path string, sparse bool) {
	c.res.Ops = append(c.res.Ops, Op{Path: path, Sparse: sparse})
}

// readVirtual records a read in virtual mode, once per path per task.
func (c *Ctx) readVirtual(path string) {
	if c.seen[path] {
		return
	}
	c.seen[path] = true
	c.traceRead(path, false)
}

// readDenseTile reads and decodes the dense tile at (ti, tj) of meta,
// densifying sparse storage. Returns nil in virtual mode (the read is
// still traced for the engine's accounting). Cache hits are found by
// structured key, without formatting the tile path — repeat reads of a
// decoded tile must not allocate (the compiled pipelines' steady state
// is zero allocations per evaluation).
func (c *Ctx) readDenseTile(meta store.Meta, ti, tj int) (*linalg.Tile, error) {
	if c.virtual() {
		c.readVirtual(meta.TilePath(ti, tj))
		return nil, nil
	}
	key := tileKey{meta.Name, ti, tj}
	if t, ok := c.dense[key]; ok {
		return t, nil
	}
	path := meta.TilePath(ti, tj)
	raw, err := c.env.Src.Peek(path)
	if err != nil {
		return nil, err
	}
	c.traceRead(path, false)
	var tile *linalg.Tile
	if meta.Sparse {
		sp, err := store.DecodeSparseTile(raw)
		if err != nil {
			return nil, err
		}
		tile = sp.ToDense()
	} else {
		tile, err = store.DecodeTile(raw)
		if err != nil {
			return nil, err
		}
	}
	c.dense[key] = tile
	return tile, nil
}

// readSparseTile reads a CSR tile (sparse fast path).
func (c *Ctx) readSparseTile(meta store.Meta, ti, tj int) (*linalg.CSRTile, error) {
	if c.virtual() {
		c.readVirtual(meta.TilePath(ti, tj))
		return nil, nil
	}
	key := tileKey{meta.Name, ti, tj}
	if t, ok := c.sparse[key]; ok {
		return t, nil
	}
	path := meta.TilePath(ti, tj)
	raw, err := c.env.Src.Peek(path)
	if err != nil {
		return nil, err
	}
	c.traceRead(path, true)
	sp, err := store.DecodeSparseTile(raw)
	if err != nil {
		return nil, err
	}
	c.sparse[key] = sp
	return sp, nil
}

// readLeafTile reads the tile at *logical* coordinates (ti, tj) of a leaf,
// transposing on the fly for transposed access paths.
func (c *Ctx) readLeafTile(ref plan.LeafRef, ti, tj int) (*linalg.Tile, error) {
	ri, rj := ti, tj
	if ref.Transposed {
		ri, rj = tj, ti
	}
	t, err := c.readDenseTile(ref.Meta, ri, rj)
	if err != nil || t == nil {
		return nil, err
	}
	if ref.Transposed {
		return linalg.Transpose(t), nil
	}
	return t, nil
}

// leafShape returns the logical shape of leaf tile (ti, tj).
func leafShape(ref plan.LeafRef, ti, tj int) (rows, cols int) {
	if ref.Transposed {
		r, c := ref.Meta.TileShape(tj, ti)
		return c, r
	}
	return ref.Meta.TileShape(ti, tj)
}

// evalTile evaluates a fused element-wise expression at logical tile
// coordinates (ti, tj). mm binds the MMVar placeholder (epilogues). In
// virtual mode the returned tile is nil but all reads and flops are
// traced.
func (c *Ctx) evalTile(e lang.Expr, leaves map[string]plan.LeafRef, ti, tj int, mm *linalg.Tile) (*linalg.Tile, error) {
	tile, _, _, err := c.evalTileShaped(e, leaves, ti, tj, mm, -1, -1)
	return tile, err
}

// evalTileShaped is evalTile tracking shapes so virtual mode can count
// flops without data. mmRows/mmCols give MMVar's shape when mm is nil.
func (c *Ctx) evalTileShaped(e lang.Expr, leaves map[string]plan.LeafRef, ti, tj int, mm *linalg.Tile, mmRows, mmCols int) (*linalg.Tile, int, int, error) {
	switch x := e.(type) {
	case lang.Var:
		if x.Name == plan.MMVar {
			if mm != nil {
				return mm, mm.Rows, mm.Cols, nil
			}
			return nil, mmRows, mmCols, nil
		}
		ref, ok := leaves[x.Name]
		if !ok {
			return nil, 0, 0, fmt.Errorf("unbound leaf %s", x.Name)
		}
		rows, cols := leafShape(ref, ti, tj)
		t, err := c.readLeafTile(ref, ti, tj)
		if err != nil {
			return nil, 0, 0, err
		}
		return t, rows, cols, nil
	case lang.Transpose:
		// Transposes are pushed to leaves by the planner; a residual one
		// here is a planner bug.
		return nil, 0, 0, fmt.Errorf("unexpected transpose in physical expression %s", e)
	case lang.Add:
		return c.zipTiles(x.L, x.R, leaves, ti, tj, mm, mmRows, mmCols, func(a, b float64) float64 { return a + b })
	case lang.Sub:
		return c.zipTiles(x.L, x.R, leaves, ti, tj, mm, mmRows, mmCols, func(a, b float64) float64 { return a - b })
	case lang.ElemMul:
		return c.zipTiles(x.L, x.R, leaves, ti, tj, mm, mmRows, mmCols, func(a, b float64) float64 { return a * b })
	case lang.ElemDiv:
		return c.zipTiles(x.L, x.R, leaves, ti, tj, mm, mmRows, mmCols, func(a, b float64) float64 { return a / b })
	case lang.Scale:
		t, rows, cols, err := c.evalTileShaped(x.X, leaves, ti, tj, mm, mmRows, mmCols)
		if err != nil {
			return nil, 0, 0, err
		}
		c.addFlops("scale", int64(rows)*int64(cols))
		if t == nil {
			return nil, rows, cols, nil
		}
		return linalg.Scale(t, x.S), rows, cols, nil
	case lang.Apply:
		t, rows, cols, err := c.evalTileShaped(x.X, leaves, ti, tj, mm, mmRows, mmCols)
		if err != nil {
			return nil, 0, 0, err
		}
		c.addFlops("apply", int64(rows)*int64(cols))
		if t == nil {
			return nil, rows, cols, nil
		}
		fn, ok := lang.Funcs[x.Fn]
		if !ok {
			return nil, 0, 0, fmt.Errorf("unknown function %s", x.Fn)
		}
		return linalg.Map(t, fn), rows, cols, nil
	default:
		return nil, 0, 0, fmt.Errorf("unexpected node %T in physical expression", e)
	}
}

func (c *Ctx) zipTiles(l, r lang.Expr, leaves map[string]plan.LeafRef, ti, tj int, mm *linalg.Tile, mmRows, mmCols int, f func(a, b float64) float64) (*linalg.Tile, int, int, error) {
	lt, rows, cols, err := c.evalTileShaped(l, leaves, ti, tj, mm, mmRows, mmCols)
	if err != nil {
		return nil, 0, 0, err
	}
	rt, rRows, rCols, err := c.evalTileShaped(r, leaves, ti, tj, mm, mmRows, mmCols)
	if err != nil {
		return nil, 0, 0, err
	}
	if rRows != rows || rCols != cols {
		return nil, 0, 0, fmt.Errorf("element-wise operands disagree at tile (%d,%d): left %s is %dx%d, right %s is %dx%d",
			ti, tj, l, rows, cols, r, rRows, rCols)
	}
	c.addFlops("zip", int64(rows)*int64(cols))
	if lt == nil || rt == nil {
		return nil, rows, cols, nil
	}
	return linalg.Zip(lt, rt, f), rows, cols, nil
}

// mulTile computes the (ti, tj) output tile contribution of a Mul job over
// the inner-dimension tile span ks, evaluating the prologues per tile
// (compiled tapes when available, the tree-walker under Env.Interpret) and
// using the sparse kernel when the left operand is a bare sparse leaf.
// Bare dense leaves read through a transposed access path skip the
// explicit per-k Transpose materialization: the raw tile feeds GemmTA /
// GemmTB, whose packing absorbs the layout (same reads traced, same flops
// charged, one less tile copy per k step). The returned accumulator comes
// from scratch; the caller must release it after encoding.
//
// epi, when non-nil, is the compiled epilogue tape to fuse into the final
// k step's blocked GEMM write-back: each finished output panel is
// transformed while cache-resident instead of in a second pass over the
// tile. Callers pass it only when the span covers the whole inner
// dimension (k-split partials must stay raw products; the aggregation
// phase applies the epilogue). Epilogue leaf reads and flop charges land
// at the same trace point the interpreted post-pass uses — after the last
// prologue read and gemm charge — so both paths trace identically.
func (c *Ctx) mulTile(j *plan.Job, ti, tj int, ks Span, epi *plan.TileProgram) (*linalg.Tile, error) {
	outRows, outCols := j.Out.TileShape(ti, tj)
	var acc *linalg.Tile
	if !c.virtual() {
		acc = c.sc.tile(outRows, outCols)
	}
	compiled := !c.env.Interpret && j.LProg != nil && j.RProg != nil
	lRef, lBare := bareSparseLeaf(j.LExpr, j.Leaves)
	lTRef, lTrans := bareTransposedDenseLeaf(j.LExpr, j.Leaves)
	rTRef, rTrans := bareTransposedDenseLeaf(j.RExpr, j.Leaves)
	epiFused := false
	for k := ks.Lo; k < ks.Hi; k++ {
		kk := KExtent(j.KSize, j.Out.TileSize, k)
		var rt *linalg.Tile
		var rtOwned bool
		var err error
		if rTrans && !lBare {
			// Logical tile (k, tj) of the transposed leaf is raw (tj, k).
			rt, err = c.readDenseTile(rTRef.Meta, tj, k)
		} else if compiled {
			rt, rtOwned, err = c.evalProgram(j.RProg, j.Leaves, k, tj, kk, outCols, nil)
		} else {
			rt, _, _, err = c.evalTileShaped(j.RExpr, j.Leaves, k, tj, nil, kk, outCols)
		}
		if err != nil {
			return nil, err
		}
		if lBare {
			if err := c.mulSparseLeft(acc, lRef, ti, k, rt, kk, outCols); err != nil {
				return nil, err
			}
			if rtOwned {
				c.sc.release(rt)
			}
			continue
		}
		var lt *linalg.Tile
		var ltOwned bool
		if lTrans {
			lt, err = c.readDenseTile(lTRef.Meta, k, ti)
		} else if compiled {
			lt, ltOwned, err = c.evalProgram(j.LProg, j.Leaves, ti, k, outRows, kk, nil)
		} else {
			lt, _, _, err = c.evalTileShaped(j.LExpr, j.Leaves, ti, k, nil, outRows, kk)
		}
		if err != nil {
			return nil, err
		}
		c.addFlops("gemm", linalg.GemmFlops(outRows, kk, outCols))
		// Bind the fused epilogue on the final k step, once the product
		// is about to be complete.
		var hook linalg.EpilogueFn
		if epi != nil && k == ks.Hi-1 {
			el, err := c.readProgramLeaves(epi, j.Leaves, ti, tj, outRows, outCols)
			if err != nil {
				return nil, err
			}
			epiFused = true
			if acc != nil {
				a := acc
				hook = func(i0, j0, rows, cols int) {
					runTileProgramRegion(epi, a.Data, el, a.Data, a.Cols, i0, j0, rows, cols)
				}
			}
		}
		if acc == nil {
			if ltOwned {
				c.sc.release(lt)
			}
			if rtOwned {
				c.sc.release(rt)
			}
			continue
		}
		switch {
		case lTrans && rTrans:
			// Aᵀ·Bᵀ has no fused kernel; transpose the (usually smaller)
			// left tile once and use the Bᵀ path for the right.
			linalg.GemmHooked(acc, linalg.Transpose(lt), rt, false, true, hook)
		case lTrans:
			linalg.GemmHooked(acc, lt, rt, true, false, hook)
		case rTrans:
			linalg.GemmHooked(acc, lt, rt, false, true, hook)
		default:
			linalg.GemmHooked(acc, lt, rt, false, false, hook)
		}
		if ltOwned {
			c.sc.release(lt)
		}
		if rtOwned {
			c.sc.release(rt)
		}
	}
	if epi != nil && !epiFused {
		// Sparse-left products have no blocked write-back to hook into;
		// apply the epilogue in place over the finished accumulator.
		if err := c.applyProgramInPlace(epi, j.Leaves, ti, tj, outRows, outCols, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// mulTileMasked computes the (ti, tj) sparse output tile of a masked
// multiply: the product of the prologue tiles restricted to the pattern's
// stored positions, at cost 2*nnz(pattern tile)*K.
func (c *Ctx) mulTileMasked(j *plan.Job, maskRef plan.LeafRef, ti, tj int, ks Span) (*linalg.CSRTile, error) {
	pat, err := c.readLeafSparseTile(maskRef, ti, tj)
	if err != nil {
		return nil, err
	}
	outRows, outCols := j.Out.TileShape(ti, tj)
	var acc *linalg.CSRTile
	for k := ks.Lo; k < ks.Hi; k++ {
		kk := KExtent(j.KSize, j.Out.TileSize, k)
		lt, _, _, err := c.evalTileShaped(j.LExpr, j.Leaves, ti, k, nil, outRows, kk)
		if err != nil {
			return nil, err
		}
		rt, _, _, err := c.evalTileShaped(j.RExpr, j.Leaves, k, tj, nil, kk, outCols)
		if err != nil {
			return nil, err
		}
		if c.virtual() {
			estNNZ := maskRef.Meta.EffDensity() * float64(outRows) * float64(outCols)
			c.addFlops("masked-gemm", int64(2*estNNZ*float64(kk)))
			continue
		}
		c.addFlops("masked-gemm", 2*int64(pat.NNZ())*int64(kk))
		part := linalg.MaskedGemm(pat, lt, rt)
		if acc == nil {
			acc = part
		} else {
			acc = linalg.SpZip(acc, part, func(a, b float64) float64 { return a + b })
		}
	}
	return acc, nil
}

// readLeafSparseTile reads a sparse leaf tile at logical coordinates,
// transposing in CSR form for transposed access paths. Returns nil in
// virtual mode (the read is still traced).
func (c *Ctx) readLeafSparseTile(ref plan.LeafRef, ti, tj int) (*linalg.CSRTile, error) {
	ri, rj := ti, tj
	if ref.Transposed {
		ri, rj = tj, ti
	}
	sp, err := c.readSparseTile(ref.Meta, ri, rj)
	if err != nil || sp == nil {
		return nil, err
	}
	if ref.Transposed {
		return sp.Transpose(), nil
	}
	return sp, nil
}

// mulSparseLeft accumulates the contribution of a bare sparse left leaf at
// logical coordinates (ti, k) times the dense right tile rt.
func (c *Ctx) mulSparseLeft(acc *linalg.Tile, ref plan.LeafRef, ti, k int, rt *linalg.Tile, kk, outCols int) error {
	ri, rj := ti, k
	if ref.Transposed {
		ri, rj = k, ti
	}
	sp, err := c.readSparseTile(ref.Meta, ri, rj)
	if err != nil {
		return err
	}
	if c.virtual() {
		rows, _ := leafShape(ref, ti, k)
		estNNZ := ref.Meta.EffDensity() * float64(rows) * float64(kk)
		c.addFlops("spgemm", int64(2*estNNZ*float64(outCols)))
		return nil
	}
	c.addFlops("spgemm", 2*int64(sp.NNZ())*int64(outCols))
	if ref.Transposed {
		linalg.SpGemmDenseTA(acc, sp, rt)
	} else {
		linalg.SpGemmDense(acc, sp, rt)
	}
	return nil
}

// bareTransposedDenseLeaf reports whether expr is a single dense leaf
// read through a transposed access path — the shape GemmTA/GemmTB can
// consume raw, without materializing the transpose.
func bareTransposedDenseLeaf(e lang.Expr, leaves map[string]plan.LeafRef) (plan.LeafRef, bool) {
	v, ok := e.(lang.Var)
	if !ok {
		return plan.LeafRef{}, false
	}
	ref, ok := leaves[v.Name]
	if !ok || ref.Meta.Sparse || !ref.Transposed {
		return plan.LeafRef{}, false
	}
	return ref, true
}

// bareSparseLeaf reports whether expr is a single sparse leaf reference.
func bareSparseLeaf(e lang.Expr, leaves map[string]plan.LeafRef) (plan.LeafRef, bool) {
	v, ok := e.(lang.Var)
	if !ok {
		return plan.LeafRef{}, false
	}
	ref, ok := leaves[v.Name]
	if !ok || !ref.Meta.Sparse {
		return plan.LeafRef{}, false
	}
	return ref, true
}

// sumTiles reads and sums the (ti, tj) tiles of the given partial
// matrices (aggregation phase of a k-split product). The returned
// accumulator comes from scratch; the caller must release it after
// encoding.
func (c *Ctx) sumTiles(partials []store.Meta, ti, tj int) (*linalg.Tile, error) {
	var acc *linalg.Tile
	for i, pm := range partials {
		t, err := c.readDenseTile(pm, ti, tj)
		if err != nil {
			return nil, err
		}
		rows, cols := pm.TileShape(ti, tj)
		if i > 0 {
			c.addFlops("add", int64(rows)*int64(cols))
		}
		if c.virtual() {
			continue
		}
		if acc == nil {
			acc = c.sc.tile(rows, cols)
			copy(acc.Data, t.Data)
		} else {
			linalg.AddInto(acc, t)
		}
	}
	return acc, nil
}

// writeTile records an output tile in the trace (encoded payload, or
// estimated size in virtual mode). The engine performs the actual DFS
// write, with placement, during replay.
func (c *Ctx) writeTile(meta store.Meta, ti, tj int, tile *linalg.Tile) error {
	path := meta.TilePath(ti, tj)
	if c.virtual() {
		c.res.Ops = append(c.res.Ops, Op{Write: true, Path: path, Size: meta.EstTileBytes(ti, tj)})
		return nil
	}
	c.res.Ops = append(c.res.Ops, Op{Write: true, Path: path, Data: store.EncodeTile(tile)})
	return nil
}

// writeSparseTile records a sparse output tile in the trace.
func (c *Ctx) writeSparseTile(meta store.Meta, ti, tj int, sp *linalg.CSRTile) error {
	path := meta.TilePath(ti, tj)
	if c.virtual() {
		c.res.Ops = append(c.res.Ops, Op{Write: true, Sparse: true, Path: path, Size: meta.EstTileBytes(ti, tj)})
		return nil
	}
	c.res.Ops = append(c.res.Ops, Op{Write: true, Sparse: true, Path: path, Data: store.EncodeSparseTile(sp)})
	return nil
}
