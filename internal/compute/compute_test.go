package compute

import (
	"errors"
	"reflect"
	"testing"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
)

func TestPartitionAxis(t *testing.T) {
	cases := []struct {
		n, parts int
		want     []Span
	}{
		{0, 4, []Span{}},
		{1, 4, []Span{{0, 1}}},
		{4, 2, []Span{{0, 2}, {2, 4}}},
		{5, 2, []Span{{0, 2}, {2, 5}}},
		{7, 3, []Span{{0, 2}, {2, 4}, {4, 7}}},
		{3, 1, []Span{{0, 3}}},
	}
	for _, c := range cases {
		got := PartitionAxis(c.n, c.parts)
		if len(got) != len(c.want) {
			t.Fatalf("PartitionAxis(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("PartitionAxis(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
			}
		}
	}
	// Spans must always tile [0, n) exactly, in order.
	for _, n := range []int{1, 5, 16, 31, 100} {
		for _, parts := range []int{1, 2, 3, 7, 200} {
			spans := PartitionAxis(n, parts)
			pos := 0
			for _, sp := range spans {
				if sp.Lo != pos || sp.Hi <= sp.Lo {
					t.Fatalf("PartitionAxis(%d,%d): bad span %v at pos %d", n, parts, sp, pos)
				}
				pos = sp.Hi
			}
			if pos != n {
				t.Fatalf("PartitionAxis(%d,%d) covers [0,%d), want [0,%d)", n, parts, pos, n)
			}
		}
	}
}

func TestKExtent(t *testing.T) {
	// 10 elements in tiles of 4: extents 4, 4, 2.
	for k, want := range []int{4, 4, 2} {
		if got := KExtent(10, 4, k); got != want {
			t.Fatalf("KExtent(10,4,%d) = %d, want %d", k, got, want)
		}
	}
	if got := KExtent(8, 4, 1); got != 4 {
		t.Fatalf("KExtent(8,4,1) = %d, want 4", got)
	}
}

// TestDenseHelpersMatchOracle checks every whole-matrix helper against the
// linalg.Dense reference on both backends, and that the pool's striping
// produces bitwise-identical results to the sequential backend.
func TestDenseHelpersMatchOracle(t *testing.T) {
	a := linalg.RandomDense(37, 23, 1)
	b := linalg.RandomDense(23, 19, 2)
	c := linalg.RandomDense(37, 23, 3)
	seq := NewSequential()
	pool := NewPool(4)

	type result struct {
		name string
		eval func(be Backend) *linalg.Dense
		want *linalg.Dense
	}
	mulWant := a.Mul(b)
	cases := []result{
		{"mul", func(be Backend) *linalg.Dense { return MulDense(be, a, b) }, mulWant},
		{"zip", func(be Backend) *linalg.Dense {
			return ZipDense(be, a, c, func(x, y float64) float64 { return x*y + 1 })
		}, a.ElemMul(c).Map(func(v float64) float64 { return v + 1 })},
		{"map", func(be Backend) *linalg.Dense {
			return MapDense(be, a, func(v float64) float64 { return 2*v - 1 })
		}, a.Map(func(v float64) float64 { return 2*v - 1 })},
		{"scale", func(be Backend) *linalg.Dense { return ScaleDense(be, a, 2.5) },
			a.Map(func(v float64) float64 { return 2.5 * v })},
		{"transpose", func(be Backend) *linalg.Dense { return TransposeDense(be, a) }, a.T()},
	}
	for _, cs := range cases {
		s := cs.eval(seq)
		p := cs.eval(pool)
		if !s.AlmostEqual(cs.want, 1e-12) {
			t.Fatalf("%s: sequential result off by %g", cs.name, s.MaxAbsDiff(cs.want))
		}
		if !reflect.DeepEqual(s.Data, p.Data) {
			t.Fatalf("%s: pool result not bitwise identical to sequential (maxdiff %g)",
				cs.name, s.MaxAbsDiff(p))
		}
	}
}

func TestZipFunc(t *testing.T) {
	cases := []struct {
		e       lang.Expr
		x, y, w float64
	}{
		{lang.Add{}, 3, 4, 7},
		{lang.Sub{}, 3, 4, -1},
		{lang.ElemMul{}, 3, 4, 12},
		{lang.ElemDiv{}, 3, 4, 0.75},
	}
	for _, c := range cases {
		f, ok := ZipFunc(c.e)
		if !ok {
			t.Fatalf("ZipFunc(%T) not recognized", c.e)
		}
		if got := f(c.x, c.y); got != c.w {
			t.Fatalf("ZipFunc(%T)(%g,%g) = %g, want %g", c.e, c.x, c.y, got, c.w)
		}
	}
	if _, ok := ZipFunc(lang.Var{}); ok {
		t.Fatal("ZipFunc(Var) should not be recognized")
	}
}

// TestRunBatchErrorAndMemoization checks that both backends propagate task
// errors through fetch and memoize results across repeated fetches.
func TestRunBatchErrorAndMemoization(t *testing.T) {
	boom := errors.New("boom")
	for _, tc := range []struct {
		name string
		be   Backend
	}{{"sequential", NewSequential()}, {"pool", NewPool(3)}} {
		runs := make([]int, 3)
		tasks := []*Task{
			{Fn: func(c *Ctx) error { runs[0]++; c.res.Flops = 11; return nil }},
			{Fn: func(c *Ctx) error { runs[1]++; return boom }},
			{Fn: func(c *Ctx) error { runs[2]++; c.res.Flops = 33; return nil }},
		}
		fetch := tc.be.RunBatch(tasks)
		if _, err := fetch(1); !errors.Is(err, boom) {
			t.Fatalf("%s: fetch(1) err = %v, want boom", tc.name, err)
		}
		res, err := fetch(2)
		if err != nil || res.Flops != 33 {
			t.Fatalf("%s: fetch(2) = %v, %v", tc.name, res, err)
		}
		// Repeat fetches return the memoized results without recomputing.
		for i := 0; i < 3; i++ {
			if r, err := fetch(0); err != nil || r.Flops != 11 {
				t.Fatalf("%s: fetch(0) = %v, %v", tc.name, r, err)
			}
			if _, err := fetch(1); !errors.Is(err, boom) {
				t.Fatalf("%s: repeat fetch(1) err = %v", tc.name, err)
			}
		}
		// The pool computes every task eagerly exactly once; the
		// sequential backend computes lazily, also exactly once.
		for i, n := range runs {
			if n != 1 {
				t.Fatalf("%s: task %d ran %d times", tc.name, i, n)
			}
		}
	}
}

// TestScratchReuseZeroes guards the accumulator-recycling invariant: a
// reused buffer must come back zeroed even when the previous tenant left
// data behind, including when the new tile is smaller.
func TestScratchReuseZeroes(t *testing.T) {
	sc := &scratch{}
	tl := sc.tile(4, 4)
	for i := range tl.Data {
		tl.Data[i] = 42
	}
	sc.release(tl)
	got := sc.tile(2, 3)
	if &got.Data[0] != &tl.Data[0] {
		t.Fatal("scratch did not reuse the released buffer")
	}
	for i, v := range got.Data {
		if v != 0 {
			t.Fatalf("reused scratch tile not zeroed at %d: %g", i, v)
		}
	}
	if got.Rows != 2 || got.Cols != 3 || len(got.Data) != 6 {
		t.Fatalf("scratch tile shape %dx%d len %d", got.Rows, got.Cols, len(got.Data))
	}
}
