package compute

import (
	"fmt"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
)

// Whole-matrix helpers: operator-at-a-time evaluation over linalg.Dense,
// row-striped across the backend's workers. The MapReduce baseline engine
// (package mapred) materializes values this way; routing it through the
// same Backend keeps a single copy of the kernels and gives the baseline
// the same parallel speedup. Every helper is deterministic: stripes write
// disjoint row ranges of the output and each row's arithmetic is
// independent of how the rows are striped.

// stripeCount picks how many row stripes to cut for a backend: a few per
// worker for balance, one for the sequential backend.
func stripeCount(b Backend) int {
	n := b.Workers()
	if n <= 1 {
		return 1
	}
	return 4 * n
}

// runStripes partitions rows into stripes and runs fn over each on the
// backend. fn must only write state disjoint per stripe.
func runStripes(b Backend, rows int, fn func(lo, hi int)) {
	spans := PartitionAxis(rows, stripeCount(b))
	if len(spans) <= 1 {
		fn(0, rows)
		return
	}
	tasks := make([]*Task, len(spans))
	for i, sp := range spans {
		sp := sp
		tasks[i] = &Task{Fn: func(*Ctx) error {
			fn(sp.Lo, sp.Hi)
			return nil
		}}
	}
	fetch := b.RunBatch(tasks)
	for i := range tasks {
		// The stripe functions cannot fail; fetch only synchronizes.
		fetch(i) //nolint:errcheck
	}
}

// MulDense returns l * r.
func MulDense(b Backend, l, r *linalg.Dense) *linalg.Dense {
	if l.Cols != r.Rows {
		panic(fmt.Sprintf("compute: dense mul shape mismatch %dx%d * %dx%d", l.Rows, l.Cols, r.Rows, r.Cols))
	}
	out := linalg.NewDense(l.Rows, r.Cols)
	rt := linalg.NewTileFrom(r.Rows, r.Cols, r.Data)
	runStripes(b, l.Rows, func(lo, hi int) {
		lt := linalg.NewTileFrom(hi-lo, l.Cols, l.Data[lo*l.Cols:hi*l.Cols])
		ot := linalg.NewTileFrom(hi-lo, out.Cols, out.Data[lo*out.Cols:hi*out.Cols])
		linalg.Gemm(ot, lt, rt)
	})
	return out
}

// ZipDense returns f applied element-wise over the pair (l, r).
func ZipDense(b Backend, l, r *linalg.Dense, f func(x, y float64) float64) *linalg.Dense {
	if l.Rows != r.Rows || l.Cols != r.Cols {
		panic(fmt.Sprintf("compute: dense zip shape mismatch %dx%d vs %dx%d", l.Rows, l.Cols, r.Rows, r.Cols))
	}
	out := linalg.NewDense(l.Rows, l.Cols)
	runStripes(b, l.Rows, func(lo, hi int) {
		for i := lo * l.Cols; i < hi*l.Cols; i++ {
			out.Data[i] = f(l.Data[i], r.Data[i])
		}
	})
	return out
}

// MapDense returns f applied element-wise.
func MapDense(b Backend, x *linalg.Dense, f func(float64) float64) *linalg.Dense {
	out := linalg.NewDense(x.Rows, x.Cols)
	runStripes(b, x.Rows, func(lo, hi int) {
		for i := lo * x.Cols; i < hi*x.Cols; i++ {
			out.Data[i] = f(x.Data[i])
		}
	})
	return out
}

// ScaleDense returns s * x.
func ScaleDense(b Backend, x *linalg.Dense, s float64) *linalg.Dense {
	return MapDense(b, x, func(v float64) float64 { return s * v })
}

// TransposeDense returns xᵀ, striped over output rows (input columns).
func TransposeDense(b Backend, x *linalg.Dense) *linalg.Dense {
	out := linalg.NewDense(x.Cols, x.Rows)
	runStripes(b, out.Rows, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			for i := 0; i < x.Rows; i++ {
				out.Data[j*x.Rows+i] = x.Data[i*x.Cols+j]
			}
		}
	})
	return out
}

// ZipFunc maps a binary element-wise language node to its scalar kernel.
func ZipFunc(e lang.Expr) (func(x, y float64) float64, bool) {
	switch e.(type) {
	case lang.Add:
		return func(x, y float64) float64 { return x + y }, true
	case lang.Sub:
		return func(x, y float64) float64 { return x - y }, true
	case lang.ElemMul:
		return func(x, y float64) float64 { return x * y }, true
	case lang.ElemDiv:
		return func(x, y float64) float64 { return x / y }, true
	}
	return nil, false
}
