package compute

import (
	"fmt"
	"reflect"
	"testing"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
	"cumulon/internal/store"
)

// mapSource is an in-memory Source: a task-level stand-in for the DFS.
type mapSource map[string][]byte

func (s mapSource) Peek(path string) ([]byte, error) {
	b, ok := s[path]
	if !ok {
		return nil, fmt.Errorf("mapSource: no tile at %s", path)
	}
	return b, nil
}

// loadInput encodes d tile by tile into src under m's tile paths,
// sparse-encoded when the meta says so.
func loadInput(src mapSource, m store.Meta, d *linalg.Dense) {
	for ti := 0; ti < m.TileRows(); ti++ {
		for tj := 0; tj < m.TileCols(); tj++ {
			tile := d.TileAt(ti, tj, m.TileSize)
			if m.Sparse {
				src[m.TilePath(ti, tj)] = store.EncodeSparseTile(linalg.DenseToCSR(tile))
			} else {
				src[m.TilePath(ti, tj)] = store.EncodeTile(tile)
			}
		}
	}
}

// jobTasks builds the phase lists of one job the way the engine does,
// optionally forcing a two-way k-split (partials plus aggregation) on
// splittable Mul jobs.
func jobTasks(env Env, j *plan.Job, kSplit bool) [][]*Task {
	full := func(n int) Span { return Span{0, n} }
	is, js := full(j.ITiles()), full(j.JTiles())
	switch {
	case j.Kind == plan.MapKind:
		return [][]*Task{{NewMapTask(env, j, is, js)}}
	case j.MaskLeaf != "":
		return [][]*Task{{NewMaskedMulTask(env, j, j.Leaves[j.MaskLeaf], is, js, full(j.KTiles()))}}
	case kSplit && j.KTiles() > 1:
		kSpans := PartitionAxis(j.KTiles(), 2)
		var partials []store.Meta
		for c := range kSpans {
			pm := j.Out
			pm.Name = fmt.Sprintf("%s~p%d", j.Out.Name, c)
			pm.Sparse = false
			partials = append(partials, pm)
		}
		var phase1 []*Task
		for kc, ks := range kSpans {
			phase1 = append(phase1, NewMulTask(env, j, partials[kc], nil, is, js, ks))
		}
		return [][]*Task{phase1, {NewAggTask(env, j, partials, is, js)}}
	default:
		return [][]*Task{{NewMulTask(env, j, j.Out, j.Epilogue, is, js, full(j.KTiles()))}}
	}
}

// runPlanDual executes every job of pl twice — compiled tapes vs the
// tree-walking interpreter — against separate in-memory sources, and
// requires every task's Result (ordered I/O trace with encoded payloads,
// flop count, kernel stats) to be deeply identical between the two
// evaluators. Returns the compiled run's final source for output checks.
func runPlanDual(t *testing.T, pl *plan.Plan, data map[string]*linalg.Dense, kSplit bool) mapSource {
	t.Helper()
	srcInterp, srcComp := mapSource{}, mapSource{}
	for _, in := range pl.Inputs {
		loadInput(srcInterp, in, data[in.Name])
		loadInput(srcComp, in, data[in.Name])
	}
	be := NewSequential()
	envInterp := Env{Src: srcInterp, TileOps: true, Interpret: true}
	envComp := Env{Src: srcComp, TileOps: true}
	for _, j := range pl.Jobs {
		phInterp := jobTasks(envInterp, j, kSplit)
		phComp := jobTasks(envComp, j, kSplit)
		for p := range phInterp {
			for i := range phInterp[p] {
				ri, err := be.Run(phInterp[p][i])
				if err != nil {
					t.Fatalf("%s (interp): %v", j, err)
				}
				rc, err := be.Run(phComp[p][i])
				if err != nil {
					t.Fatalf("%s (compiled): %v", j, err)
				}
				if !reflect.DeepEqual(ri, rc) {
					t.Fatalf("%s phase %d task %d: results diverge\ninterp:   %+v\ncompiled: %+v",
						j, p, i, ri, rc)
				}
				for _, res := range []*Result{ri, rc} {
					src := srcInterp
					if res == rc {
						src = srcComp
					}
					for _, op := range res.Ops {
						if op.Write {
							src[op.Path] = op.Data
						}
					}
				}
			}
		}
	}
	return srcComp
}

// fetchDense reassembles a dense matrix from a source's tiles.
func fetchDense(t *testing.T, src mapSource, m store.Meta) *linalg.Dense {
	t.Helper()
	d := linalg.NewDense(m.Rows, m.Cols)
	for ti := 0; ti < m.TileRows(); ti++ {
		for tj := 0; tj < m.TileCols(); tj++ {
			raw, err := src.Peek(m.TilePath(ti, tj))
			if err != nil {
				t.Fatal(err)
			}
			tile, err := store.DecodeTile(raw)
			if err != nil {
				t.Fatal(err)
			}
			d.SetTile(ti, tj, m.TileSize, tile)
		}
	}
	return d
}

// diffSrc covers every task shape in one program: a GNMF iteration
// (k-split products with fused epilogues, transposed prologues, a sparse
// operand), a masked multiply, and a pure map statement with scale and a
// scalar function.
const diffSrc = `
input V 13 11 sparse
input W 13 3
input H 3 11
H = H .* (W' * V) ./ ((W' * W) * H)
W = W .* (V * H') ./ (W * (H * H'))
R = mask(V, W * H)
W = 0.5 * W + sqrt(W .* W)
output W
output H
output R
`

func diffData() map[string]*linalg.Dense {
	shift := func(x float64) float64 { return x + 0.5 }
	return map[string]*linalg.Dense{
		"V": linalg.RandomSparseDense(13, 11, 0.3, 41),
		"W": linalg.RandomDense(13, 3, 42).Map(shift),
		"H": linalg.RandomDense(3, 11, 43).Map(shift),
	}
}

// TestCompiledTasksMatchInterpreter is the task-level differential suite:
// identical Results (trace order, payload bytes, flops, kernel stats) for
// every job kind, with and without k-splitting, and final outputs that
// agree with the language reference interpreter.
func TestCompiledTasksMatchInterpreter(t *testing.T) {
	prog, err := lang.Parse(diffSrc)
	if err != nil {
		t.Fatal(err)
	}
	data := diffData()
	want, err := lang.Interpret(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []int{3, 4, 16} {
		for _, kSplit := range []bool{false, true} {
			pl, err := plan.Compile(prog, plan.Config{TileSize: ts, Densities: map[string]float64{"V": 0.3}})
			if err != nil {
				t.Fatal(err)
			}
			src := runPlanDual(t, pl, data, kSplit)
			for name, m := range pl.Outputs {
				if m.Sparse {
					continue // masked output: dual equality above is the contract
				}
				got := fetchDense(t, src, m)
				if !got.AlmostEqual(want[name], 1e-9) {
					t.Fatalf("ts=%d kSplit=%v: output %s off oracle by %g",
						ts, kSplit, name, got.MaxAbsDiff(want[name]))
				}
			}
		}
	}
}

// TestCompiledTasksVirtual repeats the differential check in virtual
// mode, where only traces, sizes and flop counts exist.
func TestCompiledTasksVirtual(t *testing.T) {
	prog, err := lang.Parse(diffSrc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(prog, plan.Config{TileSize: 4, Densities: map[string]float64{"V": 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	be := NewSequential()
	for _, kSplit := range []bool{false, true} {
		for _, j := range pl.Jobs {
			phInterp := jobTasks(Env{Virtual: true, TileOps: true, Interpret: true}, j, kSplit)
			phComp := jobTasks(Env{Virtual: true, TileOps: true}, j, kSplit)
			for p := range phInterp {
				for i := range phInterp[p] {
					ri, err := be.Run(phInterp[p][i])
					if err != nil {
						t.Fatal(err)
					}
					rc, err := be.Run(phComp[p][i])
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ri, rc) {
						t.Fatalf("%s kSplit=%v: virtual results diverge\ninterp:   %+v\ncompiled: %+v",
							j, kSplit, ri, rc)
					}
				}
			}
		}
	}
}

// fuzzLeaves declares the closed leaf set fuzz expressions draw from:
// element-wise operands A, B, C (r x c), a transposed operand D (c x r),
// and product factors P (r x k), Q (k x c).
func fuzzLeaves(r, c, k int) []lang.Input {
	return []lang.Input{
		{Name: "A", Rows: r, Cols: c},
		{Name: "B", Rows: r, Cols: c},
		{Name: "C", Rows: r, Cols: c},
		{Name: "D", Rows: c, Cols: r},
		{Name: "P", Rows: r, Cols: k},
		{Name: "Q", Rows: k, Cols: c},
	}
}

// fuzzExpr decodes bytes into a well-shaped expression over the fuzz
// leaves with a postfix stack machine, so every input maps to a valid
// (r x c) element-wise tree, possibly containing transposed leaves and
// extractable matrix products.
func fuzzExpr(code []byte) lang.Expr {
	if len(code) > 32 {
		code = code[:32]
	}
	var stack []lang.Expr
	pop := func() lang.Expr {
		if len(stack) == 0 {
			return lang.Var{Name: "A"}
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	for _, b := range code {
		mod := int(b >> 4)
		switch b % 11 {
		case 0:
			stack = append(stack, lang.Var{Name: "A"})
		case 1:
			stack = append(stack, lang.Var{Name: "B"})
		case 2:
			stack = append(stack, lang.Var{Name: "C"})
		case 3:
			stack = append(stack, lang.Transpose{X: lang.Var{Name: "D"}})
		case 4:
			stack = append(stack, lang.MatMul{L: lang.Var{Name: "P"}, R: lang.Var{Name: "Q"}})
		case 5:
			r, l := pop(), pop()
			stack = append(stack, lang.Add{L: l, R: r})
		case 6:
			r, l := pop(), pop()
			stack = append(stack, lang.Sub{L: l, R: r})
		case 7:
			r, l := pop(), pop()
			stack = append(stack, lang.ElemMul{L: l, R: r})
		case 8:
			r, l := pop(), pop()
			stack = append(stack, lang.ElemDiv{L: l, R: r})
		case 9:
			stack = append(stack, lang.Scale{S: float64(mod+1) / 2, X: pop()})
		case 10:
			stack = append(stack, lang.Apply{Fn: lang.FuncNames[mod%len(lang.FuncNames)], X: pop()})
		}
	}
	e := pop()
	for len(stack) > 0 {
		e = lang.Add{L: pop(), R: e}
	}
	return e
}

// FuzzTilePipeline differences the compiled tile pipelines against the
// tree-walking interpreter on randomly generated element-wise programs:
// arbitrary shapes and tile sizes, arbitrary operator trees, transposed
// leaves, matrix products with fused epilogues, optional k-splitting and
// virtual mode — the Results must be deeply identical, payload bytes
// included.
func FuzzTilePipeline(f *testing.F) {
	f.Add(uint8(5), uint8(7), uint8(3), uint8(2), false, []byte{4, 0, 7, 10, 2, 5})
	f.Add(uint8(9), uint8(9), uint8(9), uint8(4), true, []byte{4, 3, 8, 9, 1, 5, 2, 7})
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), false, []byte{0})
	f.Add(uint8(8), uint8(6), uint8(5), uint8(3), true, []byte{0, 1, 5, 4, 8, 10, 2, 6, 3, 7})
	f.Fuzz(func(t *testing.T, rb, cb, kb, tb uint8, kSplit bool, code []byte) {
		r, c, k := 1+int(rb)%9, 1+int(cb)%9, 1+int(kb)%9
		ts := 1 + int(tb)%4
		prog := &lang.Program{
			Name:    "fuzz",
			Inputs:  fuzzLeaves(r, c, k),
			Stmts:   []lang.Assign{{Name: "Out", Expr: fuzzExpr(code)}},
			Outputs: []string{"Out"},
		}
		pl, err := plan.Compile(prog, plan.Config{TileSize: ts})
		if err != nil {
			t.Skip(err)
		}
		shift := func(x float64) float64 { return x + 0.5 }
		data := map[string]*linalg.Dense{}
		for i, in := range prog.Inputs {
			data[in.Name] = linalg.RandomDense(in.Rows, in.Cols, int64(71+i)).Map(shift)
		}
		runPlanDual(t, pl, data, kSplit)
	})
}
