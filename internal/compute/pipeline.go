package compute

import (
	"fmt"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
)

// Compiled tile-pipeline executor.
//
// A plan.TileProgram is a post-order op tape over leaf slots plus the
// MMVar placeholder. The executor evaluates the tape in one fused pass
// over the output tile: leaf tiles are read once (in slot order, which is
// the interpreter's read order), the destination comes from the worker's
// scratch pool, and the tape runs chunk-vectorized over a small stack of
// fixed-size buffers, so steady-state evaluation allocates nothing. The
// tree-walking interpreter in ctx.go remains as the differential oracle:
// both evaluators must produce bit-identical tiles *and* identical
// Result traces (reads, flops, kernel stats), which the differential and
// fuzz tests in pipeline_test.go enforce.

const (
	// evalChunk is the vectorization width of the tape executor: operand
	// chunks of this many elements stream through the stack buffers.
	evalChunk = 256
	// maxFastStack bounds the operand-stack depth of the chunked fast
	// path; deeper programs (beyond 8 pending operands, i.e. pathological
	// nesting) fall back to a scalar evaluator.
	maxFastStack = 8
)

// RunTileProgram evaluates the compiled pipeline p element-wise over n =
// len(dst) elements. leaves[s] backs leaf slot s (length ≥ n) and mm
// backs the TileMM placeholder (nil when p.NeedsMM is false). dst may
// alias mm: every chunk's loads complete before its store, so in-place
// epilogue application is exact.
func RunTileProgram(p *plan.TileProgram, dst []float64, leaves [][]float64, mm []float64) {
	runProgramSpan(p, dst, leaves, mm, 0, len(dst))
}

// runTileProgramRegion evaluates p over the rows×cols sub-block at
// (i0, j0) of row-major tiles with the given stride. The GEMM epilogue
// hook uses it to transform freshly finished output panels while they
// are cache-resident.
func runTileProgramRegion(p *plan.TileProgram, dst []float64, leaves [][]float64, mm []float64, stride, i0, j0, rows, cols int) {
	for r := 0; r < rows; r++ {
		lo := (i0+r)*stride + j0
		runProgramSpan(p, dst, leaves, mm, lo, lo+cols)
	}
}

// runProgramSpan evaluates p over dst[lo:hi]. The fast path keeps the
// operand stack in fixed chunk buffers; leaf and mm pushes are aliases
// into the source slices (no copy), and operator results reuse the buffer
// at their resulting stack position, so a chunk's evaluation touches each
// input element exactly once.
func runProgramSpan(p *plan.TileProgram, dst []float64, leaves [][]float64, mm []float64, lo, hi int) {
	if p.MaxStack > maxFastStack {
		runProgramSpanDeep(p, dst, leaves, mm, lo, hi)
		return
	}
	var buf [maxFastStack][evalChunk]float64
	var st [maxFastStack][]float64
	for base := lo; base < hi; base += evalChunk {
		end := base + evalChunk
		if end > hi {
			end = hi
		}
		n := end - base
		sp := 0
		for _, ins := range p.Code {
			switch ins.Op {
			case plan.TileLeaf:
				st[sp] = leaves[ins.Arg][base:end]
				sp++
			case plan.TileMM:
				st[sp] = mm[base:end]
				sp++
			case plan.TileAdd:
				a, b, out := st[sp-2][:n], st[sp-1][:n], buf[sp-2][:n]
				for i, av := range a {
					out[i] = av + b[i]
				}
				st[sp-2] = out
				sp--
			case plan.TileSub:
				a, b, out := st[sp-2][:n], st[sp-1][:n], buf[sp-2][:n]
				for i, av := range a {
					out[i] = av - b[i]
				}
				st[sp-2] = out
				sp--
			case plan.TileMul:
				a, b, out := st[sp-2][:n], st[sp-1][:n], buf[sp-2][:n]
				for i, av := range a {
					out[i] = av * b[i]
				}
				st[sp-2] = out
				sp--
			case plan.TileDiv:
				a, b, out := st[sp-2][:n], st[sp-1][:n], buf[sp-2][:n]
				for i, av := range a {
					out[i] = av / b[i]
				}
				st[sp-2] = out
				sp--
			case plan.TileScale:
				a, out, s := st[sp-1][:n], buf[sp-1][:n], ins.Scale
				for i, av := range a {
					out[i] = s * av
				}
				st[sp-1] = out
			case plan.TileApply:
				a, out, fn := st[sp-1][:n], buf[sp-1][:n], lang.FuncTable[ins.Arg]
				for i, av := range a {
					out[i] = fn(av)
				}
				st[sp-1] = out
			}
		}
		copy(dst[base:end], st[0])
	}
}

// runProgramSpanDeep is the scalar fallback for programs whose operand
// stack exceeds the fast path's fixed buffers.
func runProgramSpanDeep(p *plan.TileProgram, dst []float64, leaves [][]float64, mm []float64, lo, hi int) {
	stk := make([]float64, p.MaxStack)
	for i := lo; i < hi; i++ {
		sp := 0
		for _, ins := range p.Code {
			switch ins.Op {
			case plan.TileLeaf:
				stk[sp] = leaves[ins.Arg][i]
				sp++
			case plan.TileMM:
				stk[sp] = mm[i]
				sp++
			case plan.TileAdd:
				stk[sp-2] += stk[sp-1]
				sp--
			case plan.TileSub:
				stk[sp-2] -= stk[sp-1]
				sp--
			case plan.TileMul:
				stk[sp-2] *= stk[sp-1]
				sp--
			case plan.TileDiv:
				stk[sp-2] /= stk[sp-1]
				sp--
			case plan.TileScale:
				stk[sp-1] = ins.Scale * stk[sp-1]
			case plan.TileApply:
				stk[sp-1] = lang.FuncTable[ins.Arg](stk[sp-1])
			}
		}
		dst[i] = stk[0]
	}
}

// readProgramLeaves reads the pipeline's leaf tiles in slot order (the
// interpreter's read order), validates each against the output tile
// shape, and charges the tape's per-element flops in tape order — exactly
// the trace the tree-walker would record. The returned slice (backed by
// the Ctx's reusable buffer) holds the leaf data; it is nil-length in
// virtual mode.
func (c *Ctx) readProgramLeaves(p *plan.TileProgram, leaves map[string]plan.LeafRef, ti, tj, rows, cols int) ([][]float64, error) {
	c.leafBuf = c.leafBuf[:0]
	for _, name := range p.Leaves {
		ref, ok := leaves[name]
		if !ok {
			return nil, fmt.Errorf("unbound leaf %s", name)
		}
		lr, lc := leafShape(ref, ti, tj)
		if lr != rows || lc != cols {
			return nil, fmt.Errorf("pipeline leaf %s (%s) tile (%d,%d) is %dx%d, want %dx%d",
				name, ref.Meta.Name, ti, tj, lr, lc, rows, cols)
		}
		t, err := c.readLeafTile(ref, ti, tj)
		if err != nil {
			return nil, err
		}
		if t != nil {
			c.leafBuf = append(c.leafBuf, t.Data)
		}
	}
	for _, ins := range p.Code {
		if k := ins.Op.KernelKind(); k != "" {
			c.addFlops(k, int64(rows)*int64(cols))
		}
	}
	return c.leafBuf, nil
}

// evalProgram evaluates a compiled pipeline at logical tile coordinates
// (ti, tj) with the given output shape. mm binds the TileMM placeholder
// (epilogues). The returned tile comes from the worker's scratch pool
// when owned is true — the caller must release it after encoding — and
// is a directly-readable input tile (single-leaf pipelines, which the
// interpreter also passes through) when owned is false. In virtual mode
// the tile is nil but all reads and flops are traced.
func (c *Ctx) evalProgram(p *plan.TileProgram, leaves map[string]plan.LeafRef, ti, tj, rows, cols int, mm *linalg.Tile) (t *linalg.Tile, owned bool, err error) {
	// Single-leaf pipelines pass the decoded tile through, like the
	// interpreter: no copy, and the tile stays owned by the read cache.
	if len(p.Code) == 1 && p.Code[0].Op == plan.TileLeaf {
		ref, ok := leaves[p.Leaves[0]]
		if !ok {
			return nil, false, fmt.Errorf("unbound leaf %s", p.Leaves[0])
		}
		if lr, lc := leafShape(ref, ti, tj); lr != rows || lc != cols {
			return nil, false, fmt.Errorf("pipeline leaf %s (%s) tile (%d,%d) is %dx%d, want %dx%d",
				p.Leaves[0], ref.Meta.Name, ti, tj, lr, lc, rows, cols)
		}
		t, err := c.readLeafTile(ref, ti, tj)
		return t, false, err
	}
	ld, err := c.readProgramLeaves(p, leaves, ti, tj, rows, cols)
	if err != nil {
		return nil, false, err
	}
	if c.virtual() {
		return nil, false, nil
	}
	var mmData []float64
	if p.NeedsMM {
		if mm == nil {
			return nil, false, fmt.Errorf("pipeline needs %s but no product tile is bound", plan.MMVar)
		}
		mmData = mm.Data
	}
	dst := c.sc.tile(rows, cols)
	RunTileProgram(p, dst.Data, ld, mmData)
	return dst, true, nil
}

// applyProgramInPlace runs an epilogue pipeline over the finished
// accumulator acc (bound as the TileMM placeholder) in place, reading the
// pipeline's other leaves at output coordinates (ti, tj). Used by the
// aggregation phase and by products with no blocked write-back to hook.
func (c *Ctx) applyProgramInPlace(p *plan.TileProgram, leaves map[string]plan.LeafRef, ti, tj, rows, cols int, acc *linalg.Tile) error {
	ld, err := c.readProgramLeaves(p, leaves, ti, tj, rows, cols)
	if err != nil {
		return err
	}
	if c.virtual() || acc == nil {
		return nil
	}
	RunTileProgram(p, acc.Data, ld, acc.Data)
	return nil
}
