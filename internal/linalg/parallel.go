package linalg

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel blocked-GEMM driver.
//
// One large tile product is partitioned over the (jc, ic) macro-panel
// grid of the blocked driver: every cell is one nc-wide, mc-tall panel of
// C together with its full pc loop. A worker that owns a cell runs that
// cell's k blocks in ascending order against its own packing scratch, so
//
//   - writes stay disjoint: each C element belongs to exactly one cell;
//   - the accumulation sequence per element — C loaded first, k terms
//     ascending — is exactly the sequential driver's, so the result is
//     bit-identical to gemmBlockedSeq at every worker count;
//   - no synchronization exists beyond one atomic cell counter and the
//     final WaitGroup, and no scratch is shared between goroutines (the
//     per-call sync.Pool scratch of the sequential driver would be a
//     data race the moment two workers packed panels into it).
//
// The cost of cell ownership is re-packing: a B panel is packed once per
// cell instead of once per jc column (an extra kb·nb copy against the
// cell's 2·mb·nb·kb flops, ≤ 1/(2·mc) ≈ 1% at default blocking), and
// likewise an A panel once per cell instead of once per ic row
// (≤ 1/(2·nc) ≈ 0.1%). That waste buys barrier-free workers: no phase
// locks, no packed-panel hand-off, work stealing by atomic increment.

// parallelism holds the configured kernel worker bound: 0 means "use
// GOMAXPROCS", 1 disables intra-tile parallelism, n>1 caps fan-out at n.
var parallelism atomic.Int32

// SetParallelism bounds the worker count of the parallel GEMM tier and
// returns the previous bound. n <= 0 restores the default (GOMAXPROCS at
// call time). The knob is process-wide — it is a property of the host,
// not of one engine — and is threaded from exec.Config.KernelParallelism
// / core.ExecOptions.KernelParallelism and the CLIs' -kernel-par flags.
// Results are bit-identical at every setting; only wall-clock changes.
func SetParallelism(n int) int {
	prev := int(parallelism.Swap(int32(max(n, 0))))
	if prev == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return prev
}

// Parallelism reports the current worker bound of the parallel GEMM tier
// (GOMAXPROCS when unset).
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// gemmParallelMinFlops gates fan-out: below ~2·256³ multiply-adds the
// goroutine spawn and duplicated packing cost more than the idle cores
// recover. The threshold is perf-only — results are identical on both
// sides of it.
const gemmParallelMinFlops = 1 << 25

// gemmWorkers decides how many workers an (m×k)·(k×n) product should fan
// out to under the blocking cf: the configured bound, capped by the
// number of macro-panel cells (extra workers would idle) and by the
// work-size gate.
func gemmWorkers(cf blockConf, m, k, n int) int {
	w := Parallelism()
	if w <= 1 {
		return 1
	}
	if 2*int64(m)*int64(k)*int64(n) < gemmParallelMinFlops {
		return 1
	}
	cells := ceilDiv(m, cf.mc) * ceilDiv(n, cf.nc)
	if w > cells {
		w = cells
	}
	return w
}

// gemmBlockedParallel runs the blocked driver with the (jc, ic) cell grid
// partitioned across `workers` goroutines. Each worker draws cells from
// an atomic counter, packs into its own pooled scratch, and — when epi is
// non-nil — applies the epilogue to each finished cell while it is still
// cache-resident. Epilogues therefore run concurrently on disjoint
// panels; the EpilogueFn contract requires nothing more than per-element
// purity, which the compiled tile-program epilogues satisfy (they write
// only the panel region they are handed).
func gemmBlockedParallel(cf blockConf, c, a, b *Tile, ta, tb bool, epi EpilogueFn, workers int) {
	m, n := c.Rows, c.Cols
	k := a.Cols
	if ta {
		k = a.Rows
	}
	jCells := ceilDiv(n, cf.nc)
	iCells := ceilDiv(m, cf.mc)
	total := jCells * iCells
	if workers > total {
		workers = total
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := gemmPool.Get().(*gemmScratch)
			defer gemmPool.Put(sc)
			sc.ensure(ceilDiv(cf.mc, mr)*mr*cf.kc, cf.kc*ceilDiv(cf.nc, nr)*nr)
			for {
				cell := int(next.Add(1)) - 1
				if cell >= total {
					return
				}
				// jc-major order: consecutive cells share a B column
				// panel, keeping the packed-B reads warm across a
				// worker's run of cells.
				jc := (cell / iCells) * cf.nc
				ic := (cell % iCells) * cf.mc
				nb := minInt(cf.nc, n-jc)
				mb := minInt(cf.mc, m-ic)
				// The pc loop stays sequential within the cell so every
				// C element accumulates its k terms in ascending order —
				// the bit-exactness contract of block.go.
				for pc := 0; pc < k; pc += cf.kc {
					kb := minInt(cf.kc, k-pc)
					packB(sc.b, b, tb, pc, kb, jc, nb)
					packA(sc.a, a, ta, ic, mb, pc, kb)
					for jr := 0; jr < nb; jr += nr {
						bp := sc.b[(jr/nr)*kb*nr:]
						cols := minInt(nr, nb-jr)
						for ir := 0; ir < mb; ir += mr {
							ap := sc.a[(ir/mr)*kb*mr:]
							rows := minInt(mr, mb-ir)
							microKernel(kb, ap, bp, c, ic+ir, jc+jr, rows, cols)
						}
					}
				}
				if epi != nil {
					epi(ic, jc, mb, nb)
				}
			}
		}()
	}
	wg.Wait()
}

// BlockShape is the exported cache-blocking configuration of the blocked
// GEMM driver, as swept and persisted by the autotuner (package tune).
// MC must be a positive multiple of the micro-kernel row count, NC of the
// micro-kernel column count, and KC positive.
type BlockShape struct {
	MC int `json:"mc"`
	KC int `json:"kc"`
	NC int `json:"nc"`
}

// Validate reports whether the shape is legal for the micro-kernel.
func (s BlockShape) Validate() error {
	if s.MC <= 0 || s.MC%mr != 0 {
		return fmt.Errorf("linalg: block MC %d must be a positive multiple of %d", s.MC, mr)
	}
	if s.NC <= 0 || s.NC%nr != 0 {
		return fmt.Errorf("linalg: block NC %d must be a positive multiple of %d", s.NC, nr)
	}
	if s.KC <= 0 {
		return fmt.Errorf("linalg: block KC %d must be positive", s.KC)
	}
	return nil
}

// BlockDefaults returns the blocking configuration the public kernels
// currently dispatch with.
func BlockDefaults() BlockShape {
	cf := defaultBlockConf
	return BlockShape{MC: cf.mc, KC: cf.kc, NC: cf.nc}
}

// SetBlockDefaults installs a tuned blocking configuration for all
// subsequent public-kernel dispatches and returns the previous one.
// Like SetParallelism it is process-wide; results are bit-identical for
// any legal shape (the accumulation order does not depend on blocking).
func SetBlockDefaults(s BlockShape) (BlockShape, error) {
	if err := s.Validate(); err != nil {
		return BlockDefaults(), err
	}
	prev := BlockDefaults()
	defaultBlockConf = blockConf{mc: s.MC, kc: s.KC, nc: s.NC}
	return prev, nil
}

// GemmBlockedWith computes C += A·B through the blocked driver under an
// explicit blocking shape and worker count, bypassing the size cutoff and
// the process-wide parallelism bound. It exists for the autotuner, which
// must measure exactly the configuration it is scoring; production code
// uses the public kernels. workers <= 1 runs the sequential driver.
func GemmBlockedWith(s BlockShape, workers int, c, a, b *Tile) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("linalg: gemm shape mismatch %v * %v -> %v", a, b, c)
	}
	cf := blockConf{mc: s.MC, kc: s.KC, nc: s.NC}
	if workers > 1 {
		gemmBlockedParallel(cf, c, a, b, false, false, nil, workers)
		return nil
	}
	gemmBlockedSeq(cf, c, a, b, false, false, nil)
	return nil
}
