package linalg

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// The parallel driver's contract (parallel.go) is bit-identity with the
// sequential blocked driver at every worker count: cell ownership keeps C
// writes disjoint and the per-cell pc loop preserves each element's
// ascending-k accumulation sequence. These tests run the comparison
// across 1/2/4/8 workers — including under -race, which is what catches
// a shared scratch — for all three transpose modes, with nonzero
// accumulators, fringe shapes, and the epilogue-fused path.

var parallelWorkerCounts = []int{1, 2, 4, 8}

// TestParallelGemmBitIdentical compares gemmBlockedParallel against
// gemmBlockedSeq over random shapes and shrunken block configurations
// that force many (jc, ic) cells per call, for every transpose mode.
func TestParallelGemmBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		m, k, n := 1+rng.Intn(60), 1+rng.Intn(60), 1+rng.Intn(60)
		cf := blockConf{mc: mr * (1 + rng.Intn(3)), kc: 1 + rng.Intn(16), nc: nr * (1 + rng.Intn(5))}
		a, b := randTile(rng, m, k), randTile(rng, k, n)
		at, bt := Transpose(a), Transpose(b)
		c0 := randTile(rng, m, n)

		for _, mode := range []struct {
			name   string
			la, lb *Tile
			ta, tb bool
		}{
			{"gemm", a, b, false, false},
			{"gemmTA", at, b, true, false},
			{"gemmTB", a, bt, false, true},
		} {
			want := c0.Clone()
			gemmBlockedSeq(cf, want, mode.la, mode.lb, mode.ta, mode.tb, nil)
			for _, w := range parallelWorkerCounts {
				got := c0.Clone()
				gemmBlockedParallel(cf, got, mode.la, mode.lb, mode.ta, mode.tb, nil, w)
				assertExact(t, got, want, fmt.Sprintf("trial %d %s w=%d", trial, mode.name, w))
			}
		}
	}
}

// TestParallelGemmHookedBitIdentical covers the epilogue-fused path:
// parallel workers apply the epilogue per finished cell, concurrently on
// disjoint panels, and the result must still match the sequential driver
// bit-for-bit — with every C element visited by the epilogue exactly
// once.
func TestParallelGemmHookedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(50), 1+rng.Intn(50), 1+rng.Intn(50)
		cf := blockConf{mc: mr * (1 + rng.Intn(3)), kc: 1 + rng.Intn(12), nc: nr * (1 + rng.Intn(4))}
		a, b := randTile(rng, m, k), randTile(rng, k, n)
		c0 := randTile(rng, m, n)

		epiFor := func(c *Tile, visits []int32) EpilogueFn {
			return func(i0, j0, rows, cols int) {
				for i := i0; i < i0+rows; i++ {
					for j := j0; j < j0+cols; j++ {
						c.Data[i*c.Cols+j] = 2*c.Data[i*c.Cols+j] + 1
						atomic.AddInt32(&visits[i*c.Cols+j], 1)
					}
				}
			}
		}

		want := c0.Clone()
		wantVisits := make([]int32, m*n)
		gemmBlockedSeq(cf, want, a, b, false, false, epiFor(want, wantVisits))
		for i, v := range wantVisits {
			if v != 1 {
				t.Fatalf("trial %d: sequential epilogue visited element %d %d times", trial, i, v)
			}
		}
		for _, w := range parallelWorkerCounts {
			got := c0.Clone()
			visits := make([]int32, m*n)
			gemmBlockedParallel(cf, got, a, b, false, false, epiFor(got, visits), w)
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("trial %d w=%d: parallel epilogue visited element %d %d times", trial, w, i, v)
				}
			}
			assertExact(t, got, want, fmt.Sprintf("trial %d hooked w=%d", trial, w))
		}
	}
}

// TestPublicKernelsUnderParallelism drives the public dispatch with the
// process-wide knob set, at a size above both the blocked and the
// parallel cutoffs, and checks bit-identity against the naive references
// — the end-to-end guarantee the engines rely on.
func TestPublicKernelsUnderParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 260 // 2·260³ ≈ 35M flops: above gemmParallelMinFlops
	a, b := randTile(rng, n, n), randTile(rng, n, n)
	for _, w := range parallelWorkerCounts {
		prev := SetParallelism(w)
		if gemmWorkers(defaultBlockConf, n, n, n) > w {
			t.Fatalf("gemmWorkers exceeds the configured bound %d", w)
		}
		got, want := NewTile(n, n), NewTile(n, n)
		Gemm(got, a, b)
		refGemm(want, a, b)
		assertExact(t, got, want, fmt.Sprintf("public gemm w=%d", w))

		gotTB, wantTB := randTile(rng, n, n), NewTile(n, n)
		wantTB.Data = append(wantTB.Data[:0], gotTB.Data...)
		GemmTB(gotTB, a, b)
		refGemmTB(wantTB, a, b)
		assertExact(t, gotTB, wantTB, fmt.Sprintf("public gemmTB w=%d", w))

		gotTA, wantTA := NewTile(n, n), NewTile(n, n)
		GemmTA(gotTA, a, b)
		refGemmTA(wantTA, a, b)
		assertExact(t, gotTA, wantTA, fmt.Sprintf("public gemmTA w=%d", w))
		SetParallelism(prev)
	}
}

// TestSetParallelism pins the knob's semantics: 0 restores GOMAXPROCS,
// the previous value is returned, and gemmWorkers gates on both the
// flop threshold and the cell count.
func TestSetParallelism(t *testing.T) {
	prev := SetParallelism(0)
	defer SetParallelism(prev)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default parallelism = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if old := SetParallelism(3); old != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetParallelism returned %d, want previous %d", old, runtime.GOMAXPROCS(0))
	}
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism = %d after SetParallelism(3)", got)
	}
	// Small products never fan out, whatever the knob says.
	if w := gemmWorkers(defaultBlockConf, 64, 64, 64); w != 1 {
		t.Fatalf("gemmWorkers(64³) = %d, want 1 (below the fan-out gate)", w)
	}
	// The cell grid caps useful workers: a single-cell product runs alone.
	SetParallelism(8)
	if w := gemmWorkers(defaultBlockConf, 512, 512, 512); w != 8 {
		t.Fatalf("gemmWorkers(big grid) = %d, want 8", w)
	}
	if w := gemmWorkers(blockConf{mc: 4096, kc: 256, nc: 4096}, 512, 512, 512); w != 1 {
		t.Fatalf("gemmWorkers(one cell) = %d, want 1", w)
	}
}

// TestGemmBlockedWith covers the autotuner's measuring hook: explicit
// shapes and worker counts must agree with the reference, and illegal
// shapes must be rejected rather than mis-packed.
func TestGemmBlockedWith(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a, b := randTile(rng, 40, 30), randTile(rng, 30, 20)
	want := NewTile(40, 20)
	refGemm(want, a, b)
	for _, w := range parallelWorkerCounts {
		got := NewTile(40, 20)
		if err := GemmBlockedWith(BlockShape{MC: 8, KC: 7, NC: 6}, w, got, a, b); err != nil {
			t.Fatal(err)
		}
		assertExact(t, got, want, fmt.Sprintf("GemmBlockedWith w=%d", w))
	}
	if err := GemmBlockedWith(BlockShape{MC: 7, KC: 4, NC: 6}, 1, NewTile(40, 20), a, b); err == nil {
		t.Fatal("GemmBlockedWith accepted MC not a multiple of mr")
	}
	if err := GemmBlockedWith(BlockShape{MC: 8, KC: 4, NC: 6}, 1, NewTile(40, 21), a, b); err == nil {
		t.Fatal("GemmBlockedWith accepted a shape mismatch")
	}
}

// TestSetBlockDefaults verifies the tuned-shape installer: legal shapes
// take effect process-wide (and results stay bit-identical), illegal
// ones are rejected leaving the previous configuration in place.
func TestSetBlockDefaults(t *testing.T) {
	orig := BlockDefaults()
	defer SetBlockDefaults(orig)
	if _, err := SetBlockDefaults(BlockShape{MC: 32, KC: 64, NC: 128}); err != nil {
		t.Fatal(err)
	}
	if got := BlockDefaults(); got != (BlockShape{MC: 32, KC: 64, NC: 128}) {
		t.Fatalf("BlockDefaults = %+v after install", got)
	}
	rng := rand.New(rand.NewSource(25))
	n := 96
	a, b := randTile(rng, n, n), randTile(rng, n, n)
	got, want := NewTile(n, n), NewTile(n, n)
	Gemm(got, a, b)
	refGemm(want, a, b)
	assertExact(t, got, want, "gemm under tuned blocking")
	if _, err := SetBlockDefaults(BlockShape{MC: 0, KC: 1, NC: 2}); err == nil {
		t.Fatal("SetBlockDefaults accepted an illegal shape")
	}
	if got := BlockDefaults(); got != (BlockShape{MC: 32, KC: 64, NC: 128}) {
		t.Fatalf("failed install clobbered the configuration: %+v", got)
	}
}

// TestParallelGemmScratchPooled asserts the per-worker scratch keeps the
// parallel path's allocations bounded by fan-out bookkeeping alone
// (goroutines + waitgroup), independent of the product size: packing
// buffers come from the pool, never fresh.
func TestParallelGemmScratchPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool items at random; alloc count is not stable")
	}
	rng := rand.New(rand.NewSource(26))
	const workers = 4
	measure := func(n int) float64 {
		a, b := randTile(rng, n, n), randTile(rng, n, n)
		c := NewTile(n, n)
		gemmBlockedParallel(defaultBlockConf, c, a, b, false, false, nil, workers) // warm the pool
		return testing.AllocsPerRun(10, func() {
			gemmBlockedParallel(defaultBlockConf, c, a, b, false, false, nil, workers)
		})
	}
	small, large := measure(96), measure(192)
	// Spawn bookkeeping is a handful of objects per worker; 4 workers
	// must stay under ~6 each, and the count must not grow with size.
	if small > 6*workers || large > 6*workers {
		t.Fatalf("parallel gemm allocates %.1f/%.1f objects per call, want fan-out bookkeeping only", small, large)
	}
	if large > small+workers {
		t.Fatalf("parallel gemm allocations grow with size: %.1f at 96 vs %.1f at 192 (scratch not pooled?)", small, large)
	}
}
