package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchTile(n int, seed int64) *Tile {
	rng := rand.New(rand.NewSource(seed))
	t := NewTile(n, n)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// The Gemm/GemmTA/GemmTB benchmarks compare the naive reference loops
// against the cache-blocked, register-tiled driver at the square sizes
// recorded in EXPERIMENTS.md. Compare paths with benchstat:
//
//	go test -run '^$' -bench 'Gemm.*/(naive|blocked)' -benchtime 10x -count 10 ./internal/linalg | tee bench.txt
//	benchstat bench.txt   # or diff two checkouts' bench.txt files
//
// Both sub-benchmarks call the concrete kernels directly (not the public
// dispatch), so each path is measured even at sizes the cutoff would
// route elsewhere. The "blocked" arm pins the *sequential* driver
// (gemmBlockedSeq) so its 0 allocs/op CI guard and its naive-vs-blocked
// comparison stay independent of the host's core count; the parallel
// tier has its own sub-benchmarks (BenchmarkGemmParallel) with explicit
// worker counts.

func benchGemmPair(b *testing.B, n int, naive, blocked func(c, a, x *Tile)) {
	a, x := benchTile(n, 1), benchTile(n, 2)
	c := NewTile(n, n)
	flops := GemmFlops(n, n, n)
	run := func(b *testing.B, kernel func(c, a, x *Tile)) {
		kernel(c, a, x) // warm scratch pool and caches
		b.ReportAllocs()
		b.SetBytes(flops) // MB/s column reads as MFLOP/s
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Zero()
			kernel(c, a, x)
		}
	}
	b.Run("naive", func(b *testing.B) { run(b, naive) })
	b.Run("blocked", func(b *testing.B) { run(b, blocked) })
}

func BenchmarkGemm(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGemmPair(b, n, refGemm, func(c, a, x *Tile) {
				gemmBlockedSeq(defaultBlockConf, c, a, x, false, false, nil)
			})
		})
	}
}

func BenchmarkGemmTA(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGemmPair(b, n, refGemmTA, func(c, a, x *Tile) {
				gemmBlockedSeq(defaultBlockConf, c, a, x, true, false, nil)
			})
		})
	}
}

// GemmTB is the satellite case: the reference computes a strided row dot
// per output element, re-streaming a full row of B for every column, so
// blocking pays off earliest here.
func BenchmarkGemmTB(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGemmPair(b, n, refGemmTB, func(c, a, x *Tile) {
				gemmBlockedSeq(defaultBlockConf, c, a, x, false, true, nil)
			})
		})
	}
}

// BenchmarkGemmParallel measures the parallel blocked tier at explicit
// worker counts against the w=1 sequential driver (same code the public
// kernels dispatch to). EXPERIMENTS.md records the 1/2/4/8-worker
// throughput table; compare with benchstat:
//
//	go test -run '^$' -bench 'GemmParallel' -benchtime 10x -count 10 ./internal/linalg | tee par.txt
//	benchstat par.txt
//
// On a single-core host every width measures the same, by construction:
// results are bit-identical and the Go scheduler has one P to run on.
func BenchmarkGemmParallel(b *testing.B) {
	for _, n := range []int{512, 1024} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/w=%d", n, w), func(b *testing.B) {
				a, x := benchTile(n, 1), benchTile(n, 2)
				c := NewTile(n, n)
				run := func(c, a, x *Tile) {
					if w > 1 {
						gemmBlockedParallel(defaultBlockConf, c, a, x, false, false, nil, w)
						return
					}
					gemmBlockedSeq(defaultBlockConf, c, a, x, false, false, nil)
				}
				run(c, a, x) // warm the per-worker scratch pool
				b.ReportAllocs()
				b.SetBytes(GemmFlops(n, n, n)) // MB/s column reads as MFLOP/s
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Zero()
					run(c, a, x)
				}
			})
		}
	}
}

func BenchmarkMaskedGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pat := NewTile(256, 256)
	for i := range pat.Data {
		if rng.Float64() < 0.05 {
			pat.Data[i] = 1
		}
	}
	mask := DenseToCSR(pat)
	l, r := benchTile(256, 6), benchTile(256, 7)
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refMaskedGemm(mask, l, r)
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			maskedGemmPacked(mask, l, r)
		}
	})
}

func BenchmarkSpGemm128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	dense := NewTile(128, 128)
	for i := range dense.Data {
		if rng.Float64() < 0.05 {
			dense.Data[i] = rng.NormFloat64()
		}
	}
	s := DenseToCSR(dense)
	x := benchTile(128, 4)
	c := NewTile(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		SpGemmDense(c, s, x)
	}
}

func BenchmarkTranspose256(b *testing.B) {
	t := benchTile(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(t)
	}
}

func BenchmarkQR256x32(b *testing.B) {
	a := RandomDense(256, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := QR(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVD64x32(b *testing.B) {
	a := RandomDense(64, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}
