package linalg

import (
	"math/rand"
	"testing"
)

func benchTile(n int, seed int64) *Tile {
	rng := rand.New(rand.NewSource(seed))
	t := NewTile(n, n)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func BenchmarkGemm128(b *testing.B) {
	a, x := benchTile(128, 1), benchTile(128, 2)
	c := NewTile(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		Gemm(c, a, x)
	}
}

func BenchmarkGemmTA128(b *testing.B) {
	a, x := benchTile(128, 1), benchTile(128, 2)
	c := NewTile(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		GemmTA(c, a, x)
	}
}

func BenchmarkSpGemm128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	dense := NewTile(128, 128)
	for i := range dense.Data {
		if rng.Float64() < 0.05 {
			dense.Data[i] = rng.NormFloat64()
		}
	}
	s := DenseToCSR(dense)
	x := benchTile(128, 4)
	c := NewTile(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		SpGemmDense(c, s, x)
	}
}

func BenchmarkMaskedGemm128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pat := NewTile(128, 128)
	for i := range pat.Data {
		if rng.Float64() < 0.05 {
			pat.Data[i] = 1
		}
	}
	mask := DenseToCSR(pat)
	l, r := benchTile(128, 6), benchTile(128, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaskedGemm(mask, l, r)
	}
}

func BenchmarkTranspose256(b *testing.B) {
	t := benchTile(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(t)
	}
}

func BenchmarkQR256x32(b *testing.B) {
	a := RandomDense(256, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := QR(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVD64x32(b *testing.B) {
	a := RandomDense(64, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}
