package linalg

import (
	"fmt"
	"math"
)

// Gemm computes C += A * B for dense tiles, where A is (m x k), B is
// (k x n) and C is (m x n). It panics on shape mismatch: shape errors at
// this level are always planner bugs, never data-dependent conditions.
//
// Large products route through the cache-blocked, register-tiled driver
// in block.go; below the cutoff the packing overhead is not repaid and
// the naive reference loop refGemm runs instead. Both paths accumulate
// each C element's terms in ascending-k order, so they agree bit-for-bit
// on finite data (see the contract in block.go).
func Gemm(c, a, b *Tile) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: gemm shape mismatch %v * %v -> %v", a, b, c))
	}
	if useBlocked(a.Rows, a.Cols, b.Cols) {
		gemmBlocked(defaultBlockConf, c, a, b, false, false, nil)
		return
	}
	refGemm(c, a, b)
}

// refGemm is the naive reference kernel behind Gemm: ikj loop order with
// a hoisted A element, so the inner loop is a scaled vector add over
// contiguous rows of B and C. It is both the small-tile fast path and
// the oracle the blocked driver is differentially tested against.
func refGemm(c, a, b *Tile) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTA computes C += Aᵀ * B where A is (k x m), B is (k x n), C is (m x n).
// Transposed-input kernels avoid materializing explicit transposes for the
// common Aᵀ·B patterns in statistical workloads (e.g. GNMF update rules).
// Large products route through the blocked driver, whose A-panel packing
// absorbs the transposed layout; small ones fall back to refGemmTA.
func GemmTA(c, a, b *Tile) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: gemmTA shape mismatch %vᵀ * %v -> %v", a, b, c))
	}
	if useBlocked(a.Cols, a.Rows, b.Cols) {
		gemmBlocked(defaultBlockConf, c, a, b, true, false, nil)
		return
	}
	refGemmTA(c, a, b)
}

// refGemmTA is the naive reference kernel behind GemmTA: p-outer loops
// whose inner loop is a scaled vector add over contiguous rows of B and C.
func refGemmTA(c, a, b *Tile) {
	k, m, n := a.Rows, a.Cols, b.Cols
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTB computes C += A * Bᵀ where A is (m x k), B is (n x k), C is (m x n).
// Large products route through the blocked driver: its B-panel packing
// reads Bᵀ's contiguous rows, replacing refGemmTB's per-output-column row
// dots (which re-stream a full row of B for every output element) with
// the same streaming micro-kernel the other kernels use.
func GemmTB(c, a, b *Tile) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: gemmTB shape mismatch %v * %vᵀ -> %v", a, b, c))
	}
	if useBlocked(a.Rows, a.Cols, b.Rows) {
		gemmBlocked(defaultBlockConf, c, a, b, false, true, nil)
		return
	}
	refGemmTB(c, a, b)
}

// refGemmTB is the naive reference kernel behind GemmTB: a row dot per
// output element. Like refGemm and refGemmTA it loads the C element
// first and folds the k terms into it in ascending order — the running
// sum starts from crow[j], not from zero — so blocked and reference
// agree bit-for-bit even against a nonzero accumulator. (It previously
// summed each dot separately before adding it to C, which made the TB
// branch exact only from zero C and association-bounded otherwise.)
func refGemmTB(c, a, b *Tile) {
	m, k, n := a.Rows, a.Cols, b.Rows
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := crow[j]
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
}

// EpilogueFn transforms a finished rows×cols panel of C at (i0, j0). The
// blocked driver invokes it once per output panel, immediately after the
// panel's final k-block lands — while the panel is still cache-resident —
// so a fused element-wise epilogue costs one warm pass instead of a
// second cold sweep over the whole tile. Every element of C is visited
// exactly once across the invocations.
type EpilogueFn func(i0, j0, rows, cols int)

// GemmHooked computes C += op(A)·op(B), where ta/tb select transposition
// exactly as in Gemm / GemmTA / GemmTB (ta && tb is unsupported — callers
// transpose one operand first, as mulTile does), and then applies epi to
// every element of C exactly once. On the blocked path the epilogue is
// fused into the write-back per output panel; on the reference fallback it
// runs once over the whole tile after the product. A nil epi makes
// GemmHooked identical to the plain kernels.
//
// The epilogue sees each C element only after its accumulation is
// complete, so results are bit-identical to applying epi as a separate
// post-pass over the finished product.
func GemmHooked(c, a, b *Tile, ta, tb bool, epi EpilogueFn) {
	switch {
	case ta && tb:
		panic("linalg: gemmHooked does not support ta && tb")
	case ta:
		if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
			panic(fmt.Sprintf("linalg: gemmTA shape mismatch %vᵀ * %v -> %v", a, b, c))
		}
		if useBlocked(a.Cols, a.Rows, b.Cols) {
			gemmBlocked(defaultBlockConf, c, a, b, true, false, epi)
			return
		}
		refGemmTA(c, a, b)
	case tb:
		if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
			panic(fmt.Sprintf("linalg: gemmTB shape mismatch %v * %vᵀ -> %v", a, b, c))
		}
		if useBlocked(a.Rows, a.Cols, b.Rows) {
			gemmBlocked(defaultBlockConf, c, a, b, false, true, epi)
			return
		}
		refGemmTB(c, a, b)
	default:
		if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
			panic(fmt.Sprintf("linalg: gemm shape mismatch %v * %v -> %v", a, b, c))
		}
		if useBlocked(a.Rows, a.Cols, b.Cols) {
			gemmBlocked(defaultBlockConf, c, a, b, false, false, epi)
			return
		}
		refGemm(c, a, b)
	}
	if epi != nil {
		epi(0, 0, c.Rows, c.Cols)
	}
}

// Transpose returns a new tile holding tᵀ.
func Transpose(t *Tile) *Tile {
	out := NewTile(t.Cols, t.Rows)
	for i := 0; i < t.Rows; i++ {
		row := t.Data[i*t.Cols : (i+1)*t.Cols]
		for j, v := range row {
			out.Data[j*t.Rows+i] = v
		}
	}
	return out
}

// AddInto computes dst += src element-wise.
func AddInto(dst, src *Tile) {
	mustSameShape("add", dst, src)
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// Zip applies f element-wise over a and b, writing into a fresh tile.
func Zip(a, b *Tile, f func(x, y float64) float64) *Tile {
	mustSameShape("zip", a, b)
	out := NewTile(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// Map applies f element-wise over t into a fresh tile.
func Map(t *Tile, f func(x float64) float64) *Tile {
	out := NewTile(t.Rows, t.Cols)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// MapInto applies f element-wise over t in place.
func MapInto(t *Tile, f func(x float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Scale returns s * t in a fresh tile.
func Scale(t *Tile, s float64) *Tile {
	return Map(t, func(x float64) float64 { return s * x })
}

// Sum returns the sum of all elements of the tile.
func Sum(t *Tile) float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}

// SumSq returns the sum of squared elements, used by norm computations.
func SumSq(t *Tile) float64 {
	var s float64
	for _, v := range t.Data {
		s += v * v
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func MaxAbs(t *Tile) float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// RowSums returns a (Rows x 1) tile whose i-th entry is the sum of row i.
func RowSums(t *Tile) *Tile {
	out := NewTile(t.Rows, 1)
	for i := 0; i < t.Rows; i++ {
		var s float64
		for _, v := range t.Data[i*t.Cols : (i+1)*t.Cols] {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// ColSums returns a (1 x Cols) tile whose j-th entry is the sum of column j.
func ColSums(t *Tile) *Tile {
	out := NewTile(1, t.Cols)
	for i := 0; i < t.Rows; i++ {
		row := t.Data[i*t.Cols : (i+1)*t.Cols]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// GemmFlops returns the floating-point operation count of a GEMM with the
// given dimensions (2mnk: one multiply and one add per inner step). The
// cost models in package model consume this.
func GemmFlops(m, k, n int) int64 {
	return 2 * int64(m) * int64(k) * int64(n)
}

func mustSameShape(op string, a, b *Tile) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %v vs %v", op, a, b))
	}
}
