package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a simple row-major dense matrix. It serves two roles: the
// correctness oracle against which the distributed engines are tested, and
// the in-memory staging format for loading/saving whole matrices in
// examples and tests. It is deliberately unoptimized and single-threaded.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zero-filled rows x cols dense matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dense shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps data (len rows*cols, row-major) without copying.
func NewDenseFrom(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: dense data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// RandomDense returns a rows x cols matrix with entries drawn uniformly
// from [0, 1) using the given seed. All randomness in this codebase is
// seeded explicitly so that every test and experiment is reproducible.
func RandomDense(rows, cols int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.Float64()
	}
	return d
}

// RandomSparseDense returns a rows x cols matrix where each entry is
// nonzero with probability density, drawn uniformly from [0,1). It models
// sparse inputs (e.g. ratings matrices) while keeping a dense layout for
// oracle simplicity.
func RandomSparseDense(rows, cols int, density float64, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(rows, cols)
	for i := range d.Data {
		if rng.Float64() < density {
			d.Data[i] = rng.Float64()
		}
	}
	return d
}

// ConstDense returns a rows x cols matrix with every entry equal to v.
func ConstDense(rows, cols int, v float64) *Dense {
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = v
	}
	return d
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Data[i*n+i] = 1
	}
	return d
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// Mul returns d * o.
func (d *Dense) Mul(o *Dense) *Dense {
	if d.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: dense mul shape mismatch %dx%d * %dx%d", d.Rows, d.Cols, o.Rows, o.Cols))
	}
	out := NewDense(d.Rows, o.Cols)
	Gemm(out.asTile(), d.asTile(), o.asTile())
	return out
}

// Add returns d + o.
func (d *Dense) Add(o *Dense) *Dense { return d.zip(o, func(x, y float64) float64 { return x + y }) }

// Sub returns d - o.
func (d *Dense) Sub(o *Dense) *Dense { return d.zip(o, func(x, y float64) float64 { return x - y }) }

// ElemMul returns the Hadamard product d ⊙ o.
func (d *Dense) ElemMul(o *Dense) *Dense {
	return d.zip(o, func(x, y float64) float64 { return x * y })
}

// ElemDiv returns the element-wise quotient d ⊘ o.
func (d *Dense) ElemDiv(o *Dense) *Dense {
	return d.zip(o, func(x, y float64) float64 { return x / y })
}

// Scale returns s * d.
func (d *Dense) Scale(s float64) *Dense {
	return d.Map(func(x float64) float64 { return s * x })
}

// Map returns f applied element-wise.
func (d *Dense) Map(f func(float64) float64) *Dense {
	out := NewDense(d.Rows, d.Cols)
	for i, v := range d.Data {
		out.Data[i] = f(v)
	}
	return out
}

// T returns the transpose.
func (d *Dense) T() *Dense {
	out := NewDense(d.Cols, d.Rows)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			out.Data[j*d.Rows+i] = d.Data[i*d.Cols+j]
		}
	}
	return out
}

// Sum returns the sum over all elements.
func (d *Dense) Sum() float64 {
	var s float64
	for _, v := range d.Data {
		s += v
	}
	return s
}

// FrobeniusNorm returns sqrt(sum of squares), used for convergence checks.
func (d *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range d.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// AlmostEqual reports element-wise closeness within tol (see Close).
func (d *Dense) AlmostEqual(o *Dense, tol float64) bool {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		return false
	}
	for i, v := range d.Data {
		if !Close(v, o.Data[i], tol) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest |d-o| entry, handy in test diagnostics.
func (d *Dense) MaxAbsDiff(o *Dense) float64 {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		return math.Inf(1)
	}
	var m float64
	for i, v := range d.Data {
		if a := math.Abs(v - o.Data[i]); a > m {
			m = a
		}
	}
	return m
}

// TileAt extracts the tile with tile-coordinates (ti, tj) for tile size ts,
// handling fringe tiles that are smaller than ts.
func (d *Dense) TileAt(ti, tj, ts int) *Tile {
	r0, c0 := ti*ts, tj*ts
	rows := min(ts, d.Rows-r0)
	cols := min(ts, d.Cols-c0)
	t := NewTile(rows, cols)
	for i := 0; i < rows; i++ {
		copy(t.Data[i*cols:(i+1)*cols], d.Data[(r0+i)*d.Cols+c0:(r0+i)*d.Cols+c0+cols])
	}
	return t
}

// SetTile writes tile t at tile-coordinates (ti, tj) for tile size ts.
func (d *Dense) SetTile(ti, tj, ts int, t *Tile) {
	r0, c0 := ti*ts, tj*ts
	for i := 0; i < t.Rows; i++ {
		copy(d.Data[(r0+i)*d.Cols+c0:(r0+i)*d.Cols+c0+t.Cols], t.Data[i*t.Cols:(i+1)*t.Cols])
	}
}

func (d *Dense) zip(o *Dense, f func(x, y float64) float64) *Dense {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		panic(fmt.Sprintf("linalg: dense zip shape mismatch %dx%d vs %dx%d", d.Rows, d.Cols, o.Rows, o.Cols))
	}
	out := NewDense(d.Rows, d.Cols)
	for i := range d.Data {
		out.Data[i] = f(d.Data[i], o.Data[i])
	}
	return out
}

func (d *Dense) asTile() *Tile { return &Tile{Rows: d.Rows, Cols: d.Cols, Data: d.Data} }
