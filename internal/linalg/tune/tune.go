// Package tune is the per-host autotuner of the dense-kernel tier: it
// benchmarks the real blocked-GEMM kernels on the machine it runs on,
// sweeping cache-blocking shapes (mc/kc/nc) and parallel worker counts,
// and emits a profile of the measurements. The profile serves two
// consumers:
//
//   - the kernel tier itself: Profile.Apply installs the best blocking
//     shape and worker bound process-wide (linalg.SetBlockDefaults /
//     linalg.SetParallelism), so subsequent tile products run at the
//     tuned configuration;
//   - the optimizer's hardware model: model.CalibrateWithProfile scales
//     the calibrated machine throughput by the measured parallel speedup,
//     closing the gap between what internal/model predicts and what the
//     kernel tier actually delivers (the paper's position that the
//     optimizer is only as good as its per-machine benchmarks).
//
// The sweep is seeded and its grid, ordering and JSON rendering are
// deterministic; only the measured throughput numbers vary with the
// host. Results are bit-identical at every point of the sweep — blocking
// and parallelism never change kernel output — so tuning is purely a
// wall-clock decision.
package tune

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"cumulon/internal/linalg"
)

// Options configures a sweep. Zero values select the defaults noted on
// each field.
type Options struct {
	// Size is the square GEMM size each point is measured at
	// (default 384; the smoke tests use smaller).
	Size int
	// Reps is the number of timed repetitions per point; the best
	// (minimum) time is kept, the standard answer to scheduler noise
	// (default 3).
	Reps int
	// MaxWorkers caps the worker sweep (default GOMAXPROCS). The sweep
	// always includes workers=1, the sequential baseline.
	MaxWorkers int
	// Shapes is the blocking-shape grid (default: a small grid around
	// the built-in defaults).
	Shapes []linalg.BlockShape
	// Seed drives the input data generator (default 1). Identical seeds
	// measure identical work at every point.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Size <= 0 {
		o.Size = 384
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if len(o.Shapes) == 0 {
		o.Shapes = DefaultShapes()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DefaultShapes returns the standard blocking-shape grid: the built-in
// configuration plus neighbors that halve/double one factor at a time,
// which is where real hosts differ (L2 size moves mc·kc, L3 moves
// kc·nc).
func DefaultShapes() []linalg.BlockShape {
	d := linalg.BlockDefaults()
	shapes := []linalg.BlockShape{
		d,
		{MC: d.MC / 2, KC: d.KC, NC: d.NC},
		{MC: d.MC * 2, KC: d.KC, NC: d.NC},
		{MC: d.MC, KC: d.KC / 2, NC: d.NC},
		{MC: d.MC, KC: d.KC * 2, NC: d.NC},
		{MC: d.MC, KC: d.KC, NC: d.NC / 2},
		{MC: d.MC, KC: d.KC, NC: d.NC * 2},
	}
	out := shapes[:0]
	for _, s := range shapes {
		if s.Validate() == nil {
			out = append(out, s)
		}
	}
	return out
}

// workerGrid returns the ascending worker counts to sweep: powers of two
// up to maxW, always including 1 and maxW itself.
func workerGrid(maxW int) []int {
	var out []int
	for w := 1; w < maxW; w *= 2 {
		out = append(out, w)
	}
	return append(out, maxW)
}

// Point is one measured sweep point.
type Point struct {
	Shape   linalg.BlockShape `json:"shape"`
	Workers int               `json:"workers"`
	MFlops  float64           `json:"mflops"`
}

// Profile is the persisted result of a sweep. The JSON rendering is
// deterministic: fixed field order, points in sweep order (shape-major,
// workers ascending), throughput rounded to 0.1 MFLOP/s.
type Profile struct {
	Version    int     `json:"version"`
	Size       int     `json:"size"`
	Reps       int     `json:"reps"`
	Seed       int64   `json:"seed"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Best       Point   `json:"best"`
	Baseline   Point   `json:"baseline"` // best sequential (workers=1) point
	Points     []Point `json:"points"`
}

// ProfileVersion is the current profile schema version.
const ProfileVersion = 1

// Speedup returns the measured parallel-tier speedup: best tuned
// throughput over the best sequential throughput, clamped to at least 1
// (a host where fan-out loses simply keeps the sequential model).
func (p *Profile) Speedup() float64 {
	if p.Baseline.MFlops <= 0 || p.Best.MFlops <= p.Baseline.MFlops {
		return 1
	}
	return p.Best.MFlops / p.Baseline.MFlops
}

// Apply installs the profile's best configuration process-wide: the
// blocking shape via linalg.SetBlockDefaults and the worker bound via
// linalg.SetParallelism.
func (p *Profile) Apply() error {
	if _, err := linalg.SetBlockDefaults(p.Best.Shape); err != nil {
		return err
	}
	linalg.SetParallelism(p.Best.Workers)
	return nil
}

// Validate checks a loaded profile for internal consistency before it is
// trusted to reconfigure kernels or calibration.
func (p *Profile) Validate() error {
	if p.Version != ProfileVersion {
		return fmt.Errorf("tune: profile version %d, want %d", p.Version, ProfileVersion)
	}
	if err := p.Best.Shape.Validate(); err != nil {
		return err
	}
	if p.Best.Workers < 1 {
		return fmt.Errorf("tune: best worker count %d", p.Best.Workers)
	}
	if !(p.Best.MFlops > 0) || math.IsInf(p.Best.MFlops, 0) {
		return fmt.Errorf("tune: best throughput %v MFLOP/s", p.Best.MFlops)
	}
	if len(p.Points) == 0 {
		return fmt.Errorf("tune: profile has no sweep points")
	}
	return nil
}

// WriteJSON renders the profile deterministically.
func (p *Profile) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Read parses and validates a profile.
func Read(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("tune: parsing profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile reads a profile from disk.
func LoadFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// round1 rounds to one decimal so profile bytes do not churn on noise
// beyond measurement precision.
func round1(v float64) float64 { return math.Round(v*10) / 10 }

// Sweep measures every (shape, workers) grid point on the current host
// and returns the profile. The first point of each shape is additionally
// checked bit-for-bit against the already-validated default path, so a
// tuner bug cannot install a mis-packing configuration.
func Sweep(o Options) (*Profile, error) {
	o = o.withDefaults()
	n := o.Size
	rng := rand.New(rand.NewSource(o.Seed))
	a, b := randomTile(rng, n), randomTile(rng, n)
	c := linalg.NewTile(n, n)

	// Reference result for the correctness cross-check, computed once
	// through the default blocked path.
	want := linalg.NewTile(n, n)
	if err := linalg.GemmBlockedWith(linalg.BlockDefaults(), 1, want, a, b); err != nil {
		return nil, err
	}

	flops := linalg.GemmFlops(n, n, n)
	workers := workerGrid(o.MaxWorkers)
	prof := &Profile{
		Version:    ProfileVersion,
		Size:       n,
		Reps:       o.Reps,
		Seed:       o.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, shape := range o.Shapes {
		if err := shape.Validate(); err != nil {
			return nil, err
		}
		checked := false
		for _, w := range workers {
			best := math.Inf(1)
			for rep := 0; rep < o.Reps; rep++ {
				c.Zero()
				t0 := time.Now()
				if err := linalg.GemmBlockedWith(shape, w, c, a, b); err != nil {
					return nil, err
				}
				if d := time.Since(t0).Seconds(); d < best {
					best = d
				}
			}
			if !checked {
				if !c.Equal(want) {
					return nil, fmt.Errorf("tune: shape %+v produced a result differing from the default path", shape)
				}
				checked = true
			}
			pt := Point{Shape: shape, Workers: w, MFlops: round1(float64(flops) / best / 1e6)}
			prof.Points = append(prof.Points, pt)
			if pt.MFlops > prof.Best.MFlops {
				prof.Best = pt
			}
			if w == 1 && pt.MFlops > prof.Baseline.MFlops {
				prof.Baseline = pt
			}
		}
	}
	return prof, nil
}

func randomTile(rng *rand.Rand, n int) *linalg.Tile {
	t := linalg.NewTile(n, n)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}
