package tune

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cumulon/internal/linalg"
)

// smokeOptions is the tiny sweep used across these tests: one small
// shape grid at a size far below the production default, so the whole
// sweep runs in milliseconds.
func smokeOptions() Options {
	return Options{
		Size:       96,
		Reps:       1,
		MaxWorkers: 2,
		Shapes: []linalg.BlockShape{
			{MC: 32, KC: 64, NC: 64},
			{MC: 16, KC: 32, NC: 32},
		},
		Seed: 7,
	}
}

func TestSweepProducesValidProfile(t *testing.T) {
	prof, err := Sweep(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	// Grid: 2 shapes × workers {1, 2} = 4 points, shape-major, workers
	// ascending.
	if len(prof.Points) != 4 {
		t.Fatalf("sweep produced %d points, want 4", len(prof.Points))
	}
	for i, pt := range prof.Points {
		if wantW := []int{1, 2, 1, 2}[i]; pt.Workers != wantW {
			t.Fatalf("point %d workers = %d, want %d (sweep order must be deterministic)", i, pt.Workers, wantW)
		}
		if !(pt.MFlops > 0) {
			t.Fatalf("point %d throughput %v", i, pt.MFlops)
		}
	}
	if prof.Baseline.Workers != 1 {
		t.Fatalf("baseline workers = %d, want 1", prof.Baseline.Workers)
	}
	if s := prof.Speedup(); s < 1 {
		t.Fatalf("speedup %v < 1 (must clamp)", s)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	prof, err := Sweep(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("profile is not valid JSON:\n%s", buf.String())
	}
	// Field order is part of the determinism contract.
	txt := buf.String()
	for _, key := range []string{`"version"`, `"size"`, `"best"`, `"baseline"`, `"points"`} {
		if !strings.Contains(txt, key) {
			t.Fatalf("profile JSON missing %s:\n%s", key, txt)
		}
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != txt {
		t.Fatalf("profile does not round-trip byte-identically:\n--- first ---\n%s--- second ---\n%s", txt, again.String())
	}
}

func TestReadRejectsBadProfiles(t *testing.T) {
	for name, body := range map[string]string{
		"not json":    "not json",
		"bad version": `{"version": 99, "best": {"shape": {"mc": 64, "kc": 256, "nc": 512}, "workers": 1, "mflops": 100}, "points": [{}]}`,
		"bad shape":   `{"version": 1, "best": {"shape": {"mc": 3, "kc": 1, "nc": 2}, "workers": 1, "mflops": 100}, "points": [{}]}`,
		"no points":   `{"version": 1, "best": {"shape": {"mc": 64, "kc": 256, "nc": 512}, "workers": 1, "mflops": 100}}`,
		"no speed":    `{"version": 1, "best": {"shape": {"mc": 64, "kc": 256, "nc": 512}, "workers": 1, "mflops": 0}, "points": [{}]}`,
	} {
		if _, err := Read(strings.NewReader(body)); err == nil {
			t.Errorf("Read accepted profile with %s", name)
		}
	}
}

func TestApplyInstallsBestConfiguration(t *testing.T) {
	origShape := linalg.BlockDefaults()
	origPar := linalg.SetParallelism(0)
	defer func() {
		linalg.SetBlockDefaults(origShape)
		linalg.SetParallelism(origPar)
	}()

	prof, err := Sweep(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Apply(); err != nil {
		t.Fatal(err)
	}
	if got := linalg.BlockDefaults(); got != prof.Best.Shape {
		t.Fatalf("Apply installed shape %+v, profile best is %+v", got, prof.Best.Shape)
	}
	if got := linalg.Parallelism(); got != prof.Best.Workers {
		t.Fatalf("Apply installed parallelism %d, profile best is %d", got, prof.Best.Workers)
	}
}

func TestSpeedupClamps(t *testing.T) {
	p := &Profile{Best: Point{MFlops: 50}, Baseline: Point{MFlops: 100}}
	if s := p.Speedup(); s != 1 {
		t.Fatalf("losing fan-out speedup = %v, want clamp to 1", s)
	}
	p = &Profile{Best: Point{MFlops: 300}, Baseline: Point{MFlops: 100}}
	if s := p.Speedup(); s != 3 {
		t.Fatalf("speedup = %v, want 3", s)
	}
	p = &Profile{Best: Point{MFlops: 300}}
	if s := p.Speedup(); s != 1 {
		t.Fatalf("missing baseline speedup = %v, want 1", s)
	}
}
