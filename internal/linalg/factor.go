package linalg

import (
	"fmt"
	"math"
)

// This file provides the client-side factorization routines that complete
// the distributed pipelines: after Cumulon computes a sketch B = A·Ω on
// the cluster, the small factorizations (QR of an m x k sketch with tiny
// k, SVD of a k x n projection) run locally, exactly as the RSVD
// algorithm prescribes. All routines are dense, deterministic and
// unoptimized — their inputs are small by construction.

// QR computes the thin QR factorization a = Q·R via Householder
// reflections, for a with Rows >= Cols. Q is Rows x Cols with orthonormal
// columns and R is Cols x Cols upper triangular.
func QR(a *Dense) (q, r *Dense, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, nil, fmt.Errorf("linalg: QR needs rows >= cols, got %dx%d", m, n)
	}
	// Work on a copy; accumulate the reflectors in V.
	work := a.Clone()
	vs := make([][]float64, 0, n)
	for j := 0; j < n; j++ {
		// Householder vector for column j below the diagonal.
		v := make([]float64, m)
		var norm float64
		for i := j; i < m; i++ {
			v[i] = work.At(i, j)
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		if v[j] > 0 {
			norm = -norm
		}
		v[j] -= norm
		var vnorm float64
		for i := j; i < m; i++ {
			vnorm += v[i] * v[i]
		}
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		// Apply I - 2vvᵀ/vᵀv to the remaining columns.
		for c := j; c < n; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += v[i] * work.At(i, c)
			}
			f := 2 * dot / vnorm
			for i := j; i < m; i++ {
				work.Set(i, c, work.At(i, c)-f*v[i])
			}
		}
		vs = append(vs, v)
	}
	r = NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}
	// Q = H_0 H_1 ... H_{n-1} applied to the first n columns of I.
	q = NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for j := n - 1; j >= 0; j-- {
		v := vs[j]
		if v == nil {
			continue
		}
		var vnorm float64
		for i := j; i < m; i++ {
			vnorm += v[i] * v[i]
		}
		for c := 0; c < n; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += v[i] * q.At(i, c)
			}
			f := 2 * dot / vnorm
			for i := j; i < m; i++ {
				q.Set(i, c, q.At(i, c)-f*v[i])
			}
		}
	}
	return q, r, nil
}

// SVDResult holds a thin singular value decomposition a = U · diag(S) · Vᵀ.
type SVDResult struct {
	U *Dense    // Rows x k
	S []float64 // k singular values, descending
	V *Dense    // Cols x k
}

// SVD computes the thin SVD of a by one-sided Jacobi rotations (Hestenes
// method): numerically robust for the small, well-conditioned matrices the
// RSVD postprocessing produces. k = min(Rows, Cols).
func SVD(a *Dense) (*SVDResult, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		// Work on the transpose and swap U/V.
		res, err := SVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDResult{U: res.V, S: res.S, V: res.U}, nil
	}
	u := a.Clone()
	v := Identity(n)
	const maxSweeps = 60
	const eps = 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation that annihilates the off-diagonal.
				tau := (aqq - app) / (2 * apq)
				t := math.Copysign(1, tau) / (math.Abs(tau) + math.Sqrt(1+tau*tau))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Column norms are the singular values; normalize U.
	type sv struct {
		val float64
		idx int
	}
	svs := make([]sv, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += u.At(i, j) * u.At(i, j)
		}
		svs[j] = sv{math.Sqrt(norm), j}
	}
	// Sort descending (insertion sort: n is small).
	for i := 1; i < n; i++ {
		for k := i; k > 0 && svs[k].val > svs[k-1].val; k-- {
			svs[k], svs[k-1] = svs[k-1], svs[k]
		}
	}
	res := &SVDResult{U: NewDense(m, n), S: make([]float64, n), V: NewDense(n, n)}
	for out, e := range svs {
		res.S[out] = e.val
		if e.val > 0 {
			for i := 0; i < m; i++ {
				res.U.Set(i, out, u.At(i, e.idx)/e.val)
			}
		}
		for i := 0; i < n; i++ {
			res.V.Set(i, out, v.At(i, e.idx))
		}
	}
	return res, nil
}

// Reconstruct returns U · diag(S) · Vᵀ, for verifying factorizations.
func (r *SVDResult) Reconstruct() *Dense {
	k := len(r.S)
	us := NewDense(r.U.Rows, k)
	for i := 0; i < r.U.Rows; i++ {
		for j := 0; j < k; j++ {
			us.Set(i, j, r.U.At(i, j)*r.S[j])
		}
	}
	return us.Mul(r.V.T())
}

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive-definite matrix. It errors on non-SPD inputs (which
// surfaces as a non-positive pivot).
func Cholesky(a *Dense) (*Dense, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: matrix not positive definite (pivot %d: %g)", j, d)
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return l, nil
}

// CholeskySolve solves a·x = b for SPD a using its Cholesky factorization
// (forward then backward substitution). b may have multiple columns.
func CholeskySolve(a, b *Dense) (*Dense, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if b.Rows != n {
		return nil, fmt.Errorf("linalg: rhs rows %d != %d", b.Rows, n)
	}
	// Forward: L y = b.
	y := NewDense(n, b.Cols)
	for c := 0; c < b.Cols; c++ {
		for i := 0; i < n; i++ {
			s := b.At(i, c)
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * y.At(k, c)
			}
			y.Set(i, c, s/l.At(i, i))
		}
	}
	// Backward: Lᵀ x = y.
	x := NewDense(n, b.Cols)
	for c := 0; c < b.Cols; c++ {
		for i := n - 1; i >= 0; i-- {
			s := y.At(i, c)
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x.At(k, c)
			}
			x.Set(i, c, s/l.At(i, i))
		}
	}
	return x, nil
}

// IsOrthonormalCols reports whether the columns of a are orthonormal
// within tolerance tol (‖AᵀA − I‖∞ ≤ tol).
func IsOrthonormalCols(a *Dense, tol float64) bool {
	g := a.T().Mul(a)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}
