package linalg

import "sync"

// Cache-blocked GEMM driver.
//
// The dense multiply kernels share one BLIS-style blocked driver: operand
// panels are packed into contiguous scratch buffers and the product is
// computed by an MR×NR register-tiled micro-kernel. Blocking bounds the
// working set (a packed A block targets L2, the micro-panel of B streams
// through L1) and packing makes every inner-loop access unit-stride
// regardless of the logical layout — including the transposed access paths
// GemmTA/GemmTB, which differ only in how their panels are gathered.
//
// Numerical contract: the micro-kernel loads the C sub-block into its
// register tile *first* and then accumulates the k terms in ascending
// order, one kc-block after another. Each element of C therefore sees
// exactly the sequence c0 + a(i,0)b(0,j) + a(i,1)b(1,j) + ... that the
// naive references produce — refGemm, refGemmTA and refGemmTB all fold
// their terms into the loaded C element in the same ascending-k order —
// so the blocked kernels agree with all three references bit-for-bit on
// finite data, from any accumulator (up to the sign of zero: the
// references skip a==0 terms, the blocked kernel adds their +0
// products). The same sequence per element also holds on the parallel
// driver (parallel.go) at every worker count. The differential tests and
// fuzz targets in blocked_test.go / parallel_test.go / fuzz_test.go hold
// the kernels to that contract.

// blockConf carries the cache-blocking factors. Production code uses
// defaultBlockConf; tests shrink the factors to force multi-block loops
// and fringe panels at tiny, fast-to-verify sizes.
type blockConf struct {
	mc int // rows of a packed A block (multiple of mr)
	kc int // shared inner-dimension block depth
	nc int // columns of a packed B block (multiple of nr)
}

// defaultBlockConf targets common x86-64 cache sizes: the packed A block
// (mc×kc = 64×256 float64s = 128 KiB) fits in L2 alongside the B
// micro-panel (kc×nr = 4 KiB) it is multiplied against, and the packed B
// block (kc×nc = 1 MiB) lives in L3 and is reused across all A blocks.
var defaultBlockConf = blockConf{mc: 64, kc: 256, nc: 512}

// The register tile is mr×nr = 4×2: eight accumulators plus six operand
// temporaries stay inside the sixteen SSE registers the gc compiler has
// on amd64. A 4×4 tile amortizes loads better on paper but its sixteen
// accumulators spill, which measures ~35% slower on the micro-benchmarks.
const (
	mr = 4 // micro-kernel rows
	nr = 2 // micro-kernel columns
)

// blockedMinFlops is the dispatch cutoff: below ~64³ multiply-adds the
// packing overhead (m·k + k·n extra copies) is not repaid and the naive
// loops win, so the public kernels fall back to refGemm*. Each dimension
// must also clear the micro-tile so the packed panels are mostly useful.
const blockedMinFlops = 1 << 18

// useBlocked reports whether the blocked driver should handle an
// (m×k)·(k×n) product.
func useBlocked(m, k, n int) bool {
	return m >= 4*mr && n >= 4*nr && k >= 16 &&
		int64(m)*int64(k)*int64(n) >= blockedMinFlops
}

// gemmScratch holds one worker's packing buffers. The buffers are
// recycled through a sync.Pool so steady-state GEMM calls allocate
// nothing; tile sizes vary, so the slices grow monotonically to the
// largest block seen by that scratch.
type gemmScratch struct {
	a []float64 // packed A block: mc ceil-padded to mr, times kc
	b []float64 // packed B block: kc times nc ceil-padded to nr
}

var gemmPool = sync.Pool{New: func() any { return new(gemmScratch) }}

// ensure sizes the packing buffers for exactly the requested panel
// lengths. The slices are re-sliced to the request — never to capacity —
// so a scratch recycled from a larger product cannot hand the packers or
// the micro-kernel stale data beyond the panels they are about to fill:
// an out-of-bounds window panics instead of silently reading garbage.
// (The packers still zero the mr/nr fringe padding explicitly; ensure
// only bounds the visible buffer.)
func (s *gemmScratch) ensure(an, bn int) {
	if cap(s.a) < an {
		s.a = make([]float64, an)
	}
	s.a = s.a[:an]
	if cap(s.b) < bn {
		s.b = make([]float64, bn)
	}
	s.b = s.b[:bn]
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// gemmBlocked computes C += op(A)·op(B) through the blocked driver, where
// op is transposition when ta/tb is set: A is (m×k) or, with ta, (k×m);
// B is (k×n) or, with tb, (n×k). Shapes are the caller's responsibility
// (the public kernels validate before dispatching).
//
// epi, when non-nil, is applied to each finished output panel right after
// the panel's pc loop lands its final k-block — the panel is fully
// accumulated and still cache-resident, so a fused element-wise epilogue
// costs one warm pass instead of a second cold sweep over the whole tile.
// Every C element is visited by epi exactly once.
//
// Products big enough to repay goroutine fan-out run on the parallel
// driver (parallel.go), which partitions the jc/ic macro-panel grid
// across workers. Each C element sees the identical ascending-k
// accumulation sequence either way, so the parallel result is
// bit-identical to the sequential one at every worker count.
func gemmBlocked(cf blockConf, c, a, b *Tile, ta, tb bool, epi EpilogueFn) {
	m, n := c.Rows, c.Cols
	k := a.Cols
	if ta {
		k = a.Rows
	}
	if m == 0 || n == 0 || k == 0 {
		if epi != nil {
			epi(0, 0, m, n)
		}
		return
	}
	if w := gemmWorkers(cf, m, k, n); w > 1 {
		gemmBlockedParallel(cf, c, a, b, ta, tb, epi, w)
		return
	}
	gemmBlockedSeq(cf, c, a, b, ta, tb, epi)
}

// gemmBlockedSeq is the single-goroutine blocked driver: the jc→pc→ic
// loop nest with per-call pooled scratch. It is the reference the
// parallel driver is held bit-identical to, and the path the public
// kernels take when parallelism is off or the product is too small to
// repay fan-out.
func gemmBlockedSeq(cf blockConf, c, a, b *Tile, ta, tb bool, epi EpilogueFn) {
	m, n := c.Rows, c.Cols
	k := a.Cols
	if ta {
		k = a.Rows
	}
	sc := gemmPool.Get().(*gemmScratch)
	defer gemmPool.Put(sc)
	sc.ensure(ceilDiv(cf.mc, mr)*mr*cf.kc, cf.kc*ceilDiv(cf.nc, nr)*nr)

	for jc := 0; jc < n; jc += cf.nc {
		nb := minInt(cf.nc, n-jc)
		// k blocks ascend inside the jc loop, so every C element still
		// accumulates its terms in ascending-k order (see contract above).
		for pc := 0; pc < k; pc += cf.kc {
			kb := minInt(cf.kc, k-pc)
			packB(sc.b, b, tb, pc, kb, jc, nb)
			for ic := 0; ic < m; ic += cf.mc {
				mb := minInt(cf.mc, m-ic)
				packA(sc.a, a, ta, ic, mb, pc, kb)
				for jr := 0; jr < nb; jr += nr {
					bp := sc.b[(jr/nr)*kb*nr:]
					cols := minInt(nr, nb-jr)
					for ir := 0; ir < mb; ir += mr {
						ap := sc.a[(ir/mr)*kb*mr:]
						rows := minInt(mr, mb-ir)
						microKernel(kb, ap, bp, c, ic+ir, jc+jr, rows, cols)
					}
				}
			}
		}
		if epi != nil {
			epi(0, jc, m, nb)
		}
	}
}

// packA gathers the (ic..ic+mb)×(pc..pc+kb) block of A (or Aᵀ when ta)
// into mr-row panels: panel q holds element (ic+q·mr+ii, pc+p) at offset
// q·kb·mr + p·mr + ii, with rows past mb zero-padded so the micro-kernel
// never branches on the fringe.
func packA(dst []float64, a *Tile, ta bool, ic, mb, pc, kb int) {
	idx := 0
	for ir := 0; ir < mb; ir += mr {
		rows := minInt(mr, mb-ir)
		if ta {
			// A is stored k×m: row p of A holds the p-th term of every
			// column, so a panel gathers mr adjacent columns per p.
			for p := 0; p < kb; p++ {
				src := a.Data[(pc+p)*a.Cols+ic+ir:]
				for ii := 0; ii < rows; ii++ {
					dst[idx+ii] = src[ii]
				}
				for ii := rows; ii < mr; ii++ {
					dst[idx+ii] = 0
				}
				idx += mr
			}
		} else {
			// A is stored m×k: copy each of the mr rows contiguously,
			// scattering into the mr-strided panel layout.
			for ii := 0; ii < rows; ii++ {
				src := a.Data[(ic+ir+ii)*a.Cols+pc:]
				for p := 0; p < kb; p++ {
					dst[idx+p*mr+ii] = src[p]
				}
			}
			for ii := rows; ii < mr; ii++ {
				for p := 0; p < kb; p++ {
					dst[idx+p*mr+ii] = 0
				}
			}
			idx += kb * mr
		}
	}
}

// packB gathers the (pc..pc+kb)×(jc..jc+nb) block of B (or Bᵀ when tb)
// into nr-column panels: panel q holds element (pc+p, jc+q·nr+jj) at
// offset q·kb·nr + p·nr + jj, columns past nb zero-padded.
func packB(dst []float64, b *Tile, tb bool, pc, kb, jc, nb int) {
	idx := 0
	for jr := 0; jr < nb; jr += nr {
		cols := minInt(nr, nb-jr)
		if tb {
			// B is stored n×k: row j of the tile holds B(·,j) contiguously,
			// so each of the nr columns copies a contiguous run.
			for jj := 0; jj < cols; jj++ {
				src := b.Data[(jc+jr+jj)*b.Cols+pc:]
				for p := 0; p < kb; p++ {
					dst[idx+p*nr+jj] = src[p]
				}
			}
			for jj := cols; jj < nr; jj++ {
				for p := 0; p < kb; p++ {
					dst[idx+p*nr+jj] = 0
				}
			}
			idx += kb * nr
		} else {
			for p := 0; p < kb; p++ {
				src := b.Data[(pc+p)*b.Cols+jc+jr:]
				for jj := 0; jj < cols; jj++ {
					dst[idx+jj] = src[jj]
				}
				for jj := cols; jj < nr; jj++ {
					dst[idx+jj] = 0
				}
				idx += nr
			}
		}
	}
}

// microKernel computes the rows×cols sub-block of C at (i0, j0) +=
// A-panel · B-panel over kb terms. The full mr×nr case keeps the tile in
// eight scalar accumulators with the k loop unrolled four-way (constant
// indices into a re-sliced window, so every bounds check is hoisted);
// fringe tiles detour through a padded stack tile (the zero-padded
// panels contribute exact +0 terms there). Both paths add each
// accumulator's terms in ascending-k order — the unroll reads a[0..15]
// in panel order — preserving the bit-exactness contract.
func microKernel(kb int, ap, bp []float64, c *Tile, i0, j0 int, rows, cols int) {
	if rows == mr && cols == nr {
		ld := c.Cols
		r0 := c.Data[i0*ld+j0 : i0*ld+j0+nr]
		r1 := c.Data[(i0+1)*ld+j0 : (i0+1)*ld+j0+nr]
		r2 := c.Data[(i0+2)*ld+j0 : (i0+2)*ld+j0+nr]
		r3 := c.Data[(i0+3)*ld+j0 : (i0+3)*ld+j0+nr]
		c00, c01 := r0[0], r0[1]
		c10, c11 := r1[0], r1[1]
		c20, c21 := r2[0], r2[1]
		c30, c31 := r3[0], r3[1]
		for ; kb >= 4; kb -= 4 {
			a := ap[: 4*mr : 4*mr]
			b := bp[: 4*nr : 4*nr]
			c00 += a[0] * b[0]
			c01 += a[0] * b[1]
			c10 += a[1] * b[0]
			c11 += a[1] * b[1]
			c20 += a[2] * b[0]
			c21 += a[2] * b[1]
			c30 += a[3] * b[0]
			c31 += a[3] * b[1]

			c00 += a[4] * b[2]
			c01 += a[4] * b[3]
			c10 += a[5] * b[2]
			c11 += a[5] * b[3]
			c20 += a[6] * b[2]
			c21 += a[6] * b[3]
			c30 += a[7] * b[2]
			c31 += a[7] * b[3]

			c00 += a[8] * b[4]
			c01 += a[8] * b[5]
			c10 += a[9] * b[4]
			c11 += a[9] * b[5]
			c20 += a[10] * b[4]
			c21 += a[10] * b[5]
			c30 += a[11] * b[4]
			c31 += a[11] * b[5]

			c00 += a[12] * b[6]
			c01 += a[12] * b[7]
			c10 += a[13] * b[6]
			c11 += a[13] * b[7]
			c20 += a[14] * b[6]
			c21 += a[14] * b[7]
			c30 += a[15] * b[6]
			c31 += a[15] * b[7]
			ap = ap[4*mr:]
			bp = bp[4*nr:]
		}
		for ; kb > 0; kb-- {
			a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
			b0, b1 := bp[0], bp[1]
			c00 += a0 * b0
			c01 += a0 * b1
			c10 += a1 * b0
			c11 += a1 * b1
			c20 += a2 * b0
			c21 += a2 * b1
			c30 += a3 * b0
			c31 += a3 * b1
			ap = ap[mr:]
			bp = bp[nr:]
		}
		r0[0], r0[1] = c00, c01
		r1[0], r1[1] = c10, c11
		r2[0], r2[1] = c20, c21
		r3[0], r3[1] = c30, c31
		return
	}
	var acc [mr * nr]float64
	ld := c.Cols
	for ii := 0; ii < rows; ii++ {
		copy(acc[ii*nr:ii*nr+cols], c.Data[(i0+ii)*ld+j0:])
	}
	for p := 0; p < kb; p++ {
		av := ap[p*mr : p*mr+mr]
		bv := bp[p*nr : p*nr+nr]
		for ii := 0; ii < mr; ii++ {
			a := av[ii]
			row := acc[ii*nr : ii*nr+nr]
			row[0] += a * bv[0]
			row[1] += a * bv[1]
		}
	}
	for ii := 0; ii < rows; ii++ {
		copy(c.Data[(i0+ii)*ld+j0:(i0+ii)*ld+j0+cols], acc[ii*nr:])
	}
}

// maskedMinWork is the dispatch cutoff for the packed masked multiply:
// below it the k·n cost of transposing B dominates the nnz·k dot
// products and the reference strided walk is cheaper.
const maskedMinWork = 1 << 16

// maskedGemmPacked computes the masked product through a packed Bᵀ: B is
// transposed once into a column-major scratch so every dot product runs
// over two contiguous vectors instead of striding column j through B. The
// per-element accumulation order (ascending k from zero) is identical to
// refMaskedGemm, so results are bit-equal.
func maskedGemmPacked(mask *CSRTile, a, b *Tile) *CSRTile {
	k, n := a.Cols, b.Cols
	sc := gemmPool.Get().(*gemmScratch)
	defer gemmPool.Put(sc)
	sc.ensure(0, k*n)
	bt := sc.b[: k*n : k*n]
	for p := 0; p < k; p++ {
		src := b.Data[p*n : (p+1)*n]
		for j, v := range src {
			bt[j*k+p] = v
		}
	}
	out := &CSRTile{
		Rows:   mask.Rows,
		Cols:   mask.Cols,
		RowPtr: append([]int(nil), mask.RowPtr...),
		ColIdx: append([]int(nil), mask.ColIdx...),
		Val:    make([]float64, mask.NNZ()),
	}
	for i := 0; i < mask.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		for p := mask.RowPtr[i]; p < mask.RowPtr[i+1]; p++ {
			bcol := bt[mask.ColIdx[p]*k : (mask.ColIdx[p]+1)*k]
			var s float64
			for q, av := range arow {
				s += av * bcol[q]
			}
			out.Val[p] = s
		}
	}
	return out
}
