// Package linalg provides the dense and sparse tile kernels that underlie
// Cumulon's tiled matrix representation, plus small dense reference matrices
// used as correctness oracles throughout the test suite.
//
// A tile is a fixed-capacity, row-major block of float64 values. Matrices
// are stored as grids of tiles (see package store); all physical operators
// in the execution engine ultimately reduce to the tile kernels defined
// here: GEMM, element-wise maps and zips, transpose, and reductions.
package linalg

import (
	"fmt"
	"math"
)

// Tile is a dense, row-major block of float64 values with Rows x Cols
// elements. Tiles at the right and bottom fringe of a matrix may be smaller
// than the matrix's nominal tile size; kernels therefore always consult the
// tile's own dimensions rather than any global constant.
type Tile struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewTile returns a zero-filled tile of the given shape.
func NewTile(rows, cols int) *Tile {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid tile shape %dx%d", rows, cols))
	}
	return &Tile{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewTileFrom returns a tile wrapping the given backing slice. The slice is
// used directly (not copied); len(data) must equal rows*cols.
func NewTileFrom(rows, cols int, data []float64) *Tile {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: tile data length %d != %d*%d", len(data), rows, cols))
	}
	return &Tile{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (t *Tile) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns the element at row i, column j.
func (t *Tile) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Clone returns a deep copy of the tile.
func (t *Tile) Clone() *Tile {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return &Tile{Rows: t.Rows, Cols: t.Cols, Data: d}
}

// Zero resets every element to 0 in place.
func (t *Tile) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tile) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Bytes reports the in-memory payload size of the tile in bytes, as used by
// the I/O accounting in the DFS and the cost models.
func (t *Tile) Bytes() int64 { return int64(len(t.Data)) * 8 }

// Equal reports whether two tiles have identical shape and elements.
func (t *Tile) Equal(o *Tile) bool {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether two tiles have identical shape and elements
// within absolute-or-relative tolerance tol.
func (t *Tile) AlmostEqual(o *Tile, tol float64) bool {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		return false
	}
	for i, v := range t.Data {
		if !Close(v, o.Data[i], tol) {
			return false
		}
	}
	return true
}

// Close reports whether a and b are equal within absolute-or-relative
// tolerance tol. NaNs compare equal to NaNs so that oracle comparisons of
// programs with undefined regions remain meaningful.
func Close(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// String renders a compact description, used in error messages and traces.
func (t *Tile) String() string {
	return fmt.Sprintf("Tile(%dx%d)", t.Rows, t.Cols)
}
