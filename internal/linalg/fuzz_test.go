package linalg

import (
	"testing"
)

// Native fuzz targets for the blocked GEMM driver. Each target decodes
// the fuzz payload into shapes, a (deliberately small) block
// configuration and finite matrix data, then checks the blocked kernel
// against the naive reference. Shapes are kept small so the fuzzer's
// iteration rate stays high; the block configuration is shrunk to match,
// which makes every fringe and multi-block path reachable at those sizes
// even though the public cutoff would route them to the naive loop.

// fuzzDims decodes one byte into a dimension in [1, 48].
func fuzzDims(b byte) int { return 1 + int(b)%48 }

// fuzzConf decodes three bytes into a legal block configuration whose
// blocks are small enough that fuzz-sized inputs span several of them.
func fuzzConf(b0, b1, b2 byte) blockConf {
	return blockConf{
		mc: mr * (1 + int(b0)%6),
		kc: 1 + int(b1)%24,
		nc: nr * (1 + int(b2)%10),
	}
}

// fuzzFill populates dst with finite values derived from the payload,
// cycling if the payload is short. Byte 0 maps to exactly 0 so the
// fuzzer can reach refGemm's zero-skip branch; other bytes spread over
// [-1.98, +2] with varied binary exponents.
func fuzzFill(dst []float64, data []byte) {
	if len(data) == 0 {
		return
	}
	for i := range dst {
		b := data[i%len(data)]
		if b == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = (float64(b) - 127.5) / 64.0
	}
}

func fuzzTile(rows, cols int, data []byte, salt byte) *Tile {
	t := NewTile(rows, cols)
	seeded := append([]byte{salt}, data...)
	fuzzFill(t.Data, seeded)
	return t
}

func FuzzGemm(f *testing.F) {
	f.Add([]byte("gemm blocked differential seed"))
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 1, 128, 7, 64, 200, 3, 0, 0, 99})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		m, k, n := fuzzDims(data[0]), fuzzDims(data[1]), fuzzDims(data[2])
		cf := fuzzConf(data[3], data[4], data[5])
		a := fuzzTile(m, k, data[6:], 1)
		b := fuzzTile(k, n, data[6:], 2)
		got := fuzzTile(m, n, data[6:], 3)
		want := got.Clone()
		gemmBlocked(cf, got, a, b, false, false, nil)
		refGemm(want, a, b)
		if !got.Equal(want) {
			t.Fatalf("blocked gemm diverges from refGemm at %dx%dx%d conf %+v", m, k, n, cf)
		}
		// Public dispatch on the same data must agree too, whichever
		// path the cutoff picks.
		got2 := fuzzTile(m, n, data[6:], 3)
		Gemm(got2, a, b)
		if !got2.Equal(want) {
			t.Fatalf("Gemm dispatch diverges from refGemm at %dx%dx%d", m, k, n)
		}
	})
}

func FuzzGemmTA(f *testing.F) {
	f.Add([]byte("gemmTA blocked differential seed"))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 1, 2, 3})
	f.Add([]byte{47, 13, 2, 0, 255, 31, 0, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		m, k, n := fuzzDims(data[0]), fuzzDims(data[1]), fuzzDims(data[2])
		cf := fuzzConf(data[3], data[4], data[5])
		at := fuzzTile(k, m, data[6:], 4) // A is stored transposed: k x m
		b := fuzzTile(k, n, data[6:], 5)
		got := fuzzTile(m, n, data[6:], 6)
		want := got.Clone()
		gemmBlocked(cf, got, at, b, true, false, nil)
		refGemmTA(want, at, b)
		if !got.Equal(want) {
			t.Fatalf("blocked gemmTA diverges from refGemmTA at %dx%dx%d conf %+v", m, k, n, cf)
		}
		got2 := fuzzTile(m, n, data[6:], 6)
		GemmTA(got2, at, b)
		if !got2.Equal(want) {
			t.Fatalf("GemmTA dispatch diverges from refGemmTA at %dx%dx%d", m, k, n)
		}
	})
}

func FuzzGemmTB(f *testing.F) {
	f.Add([]byte("gemmTB blocked differential seed"))
	f.Add([]byte{5, 40, 5, 0, 0, 0, 200, 100, 50})
	f.Add([]byte{31, 31, 31, 255, 255, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		m, k, n := fuzzDims(data[0]), fuzzDims(data[1]), fuzzDims(data[2])
		cf := fuzzConf(data[3], data[4], data[5])
		a := fuzzTile(m, k, data[6:], 7)
		bt := fuzzTile(n, k, data[6:], 8) // B is stored transposed: n x k
		got := NewTile(m, n)
		want := NewTile(m, n)
		gemmBlocked(cf, got, a, bt, false, true, nil)
		refGemmTB(want, a, bt)
		if !got.Equal(want) {
			t.Fatalf("blocked gemmTB diverges from refGemmTB at %dx%dx%d conf %+v", m, k, n, cf)
		}
		// Nonzero accumulator: since the refGemmTB accumulation fix both
		// paths fold terms into the loaded C element ascending-k, so the
		// TB branch is held to bit equality here too.
		gotAcc := fuzzTile(m, n, data[6:], 9)
		wantAcc := gotAcc.Clone()
		gemmBlocked(cf, gotAcc, a, bt, false, true, nil)
		refGemmTB(wantAcc, a, bt)
		if !gotAcc.Equal(wantAcc) {
			t.Fatalf("blocked gemmTB accumulate diverges from refGemmTB at %dx%dx%d conf %+v", m, k, n, cf)
		}
	})
}
