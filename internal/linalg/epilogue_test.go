package linalg

import (
	"math/rand"
	"testing"
)

// The epilogue hook's contract (block.go, kernels.go): after GemmHooked
// returns, epi has been invoked over a set of disjoint regions that
// together cover every element of C exactly once, and each region was
// complete (all k accumulated) when its callback ran — so applying a
// scalar transform inside the hook is bit-identical to running the same
// transform as a separate pass after a plain Gemm.

// coverageEpi returns an EpilogueFn that counts visits per element of an
// rows x cols output.
func coverageEpi(counts []int, stride int) EpilogueFn {
	return func(i0, j0, rows, cols int) {
		for i := i0; i < i0+rows; i++ {
			for j := j0; j < j0+cols; j++ {
				counts[i*stride+j]++
			}
		}
	}
}

func assertFullCoverage(t *testing.T, counts []int, label string) {
	t.Helper()
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("%s: element %d visited %d times, want exactly 1", label, i, n)
		}
	}
}

// TestGemmHookedCoverage: across both dispatch tiers (blocked and naive
// reference) and all three transpose modes, the hook visits every output
// element exactly once.
func TestGemmHookedCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 13},
		{64, 48, 96}, // above the blocked cutoff
		{130, 70, 96},
	}
	for _, s := range shapes {
		for _, mode := range []struct {
			name   string
			ta, tb bool
			ar, ac int
			br, bc int
		}{
			{"nn", false, false, s.m, s.k, s.k, s.n},
			{"tn", true, false, s.k, s.m, s.k, s.n},
			{"nt", false, true, s.m, s.k, s.n, s.k},
		} {
			a := zeroableTile(rng, mode.ar, mode.ac)
			b := zeroableTile(rng, mode.br, mode.bc)
			c := NewTile(s.m, s.n)
			counts := make([]int, s.m*s.n)
			GemmHooked(c, a, b, mode.ta, mode.tb, coverageEpi(counts, s.n))
			assertFullCoverage(t, counts, mode.name)
		}
	}
}

// TestGemmBlockedEpilogueCoverage drives the blocked driver directly with
// shrunken block factors, so the jc/pc/ic loops all iterate multiple
// times: the hook must fire once per jc panel, after that panel's final
// k rank has been accumulated — never per pc step.
func TestGemmBlockedEpilogueCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cf := blockConf{mc: 4, kc: 4, nc: 4}
	for _, s := range []struct{ m, k, n int }{{9, 10, 11}, {4, 4, 4}, {13, 3, 5}} {
		a := zeroableTile(rng, s.m, s.k)
		b := zeroableTile(rng, s.k, s.n)
		c := NewTile(s.m, s.n)
		counts := make([]int, s.m*s.n)
		gemmBlocked(cf, c, a, b, false, false, coverageEpi(counts, s.n))
		assertFullCoverage(t, counts, "blocked")

		want := NewTile(s.m, s.n)
		refGemm(want, a, b)
		assertExact(t, c, want, "blocked with epilogue")
	}
	// Zero-dimension outputs still invoke the hook (over an empty region).
	calls := 0
	gemmBlocked(cf, &Tile{Rows: 0, Cols: 3, Data: nil},
		&Tile{Rows: 0, Cols: 2, Data: nil}, &Tile{Rows: 2, Cols: 3, Data: make([]float64, 6)},
		false, false, func(i0, j0, rows, cols int) { calls++ })
	if calls != 1 {
		t.Fatalf("zero-dim epilogue calls: %d, want 1", calls)
	}
}

// TestGemmHookedFusedMatchesPostPass: transforming inside the hook is
// bit-identical to a plain Gemm followed by the same transform as a
// separate pass — on both dispatch tiers.
func TestGemmHookedFusedMatchesPostPass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xform := func(x float64) float64 { return 0.5*x + 1 }
	for _, s := range []struct{ m, k, n int }{{5, 7, 3}, {70, 64, 80}} {
		a := zeroableTile(rng, s.m, s.k)
		b := zeroableTile(rng, s.k, s.n)

		fused := NewTile(s.m, s.n)
		GemmHooked(fused, a, b, false, false, func(i0, j0, rows, cols int) {
			for i := i0; i < i0+rows; i++ {
				row := fused.Data[i*fused.Cols:]
				for j := j0; j < j0+cols; j++ {
					row[j] = xform(row[j])
				}
			}
		})

		post := NewTile(s.m, s.n)
		Gemm(post, a, b)
		for i, v := range post.Data {
			post.Data[i] = xform(v)
		}
		assertExact(t, fused, post, "fused epilogue")
	}
}

// TestGemmHookedNilMatchesGemm: a nil hook is exactly the plain kernels.
func TestGemmHookedNilMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := zeroableTile(rng, 33, 21)
	b := zeroableTile(rng, 21, 27)
	hooked := NewTile(33, 27)
	plain := NewTile(33, 27)
	GemmHooked(hooked, a, b, false, false, nil)
	Gemm(plain, a, b)
	assertExact(t, hooked, plain, "nil hook")
}
