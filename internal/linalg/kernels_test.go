package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is an intentionally simple triple loop used as the oracle for
// the optimized kernels.
func naiveGemm(a, b *Tile) *Tile {
	c := NewTile(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randTile(rng *rand.Rand, rows, cols int) *Tile {
	t := NewTile(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.Intn(17), 1+rng.Intn(17), 1+rng.Intn(17)
		a, b := randTile(rng, m, k), randTile(rng, k, n)
		got := NewTile(m, n)
		Gemm(got, a, b)
		want := naiveGemm(a, b)
		if !got.AlmostEqual(want, 1e-12) {
			t.Fatalf("trial %d (%d,%d,%d): gemm mismatch", trial, m, k, n)
		}
	}
}

func TestGemmAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randTile(rng, 5, 7), randTile(rng, 7, 3)
	c := randTile(rng, 5, 3)
	base := c.Clone()
	Gemm(c, a, b)
	want := naiveGemm(a, b)
	AddInto(want, base)
	if !c.AlmostEqual(want, 1e-12) {
		t.Fatal("gemm must accumulate into c, not overwrite it")
	}
}

func TestGemmTAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		k, m, n := 1+rng.Intn(13), 1+rng.Intn(13), 1+rng.Intn(13)
		a, b := randTile(rng, k, m), randTile(rng, k, n)
		got := NewTile(m, n)
		GemmTA(got, a, b)
		want := naiveGemm(Transpose(a), b)
		if !got.AlmostEqual(want, 1e-12) {
			t.Fatalf("trial %d: gemmTA mismatch", trial)
		}
	}
}

func TestGemmTBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		m, k, n := 1+rng.Intn(13), 1+rng.Intn(13), 1+rng.Intn(13)
		a, b := randTile(rng, m, k), randTile(rng, n, k)
		got := NewTile(m, n)
		GemmTB(got, a, b)
		want := naiveGemm(a, Transpose(b))
		if !got.AlmostEqual(want, 1e-12) {
			t.Fatalf("trial %d: gemmTB mismatch", trial)
		}
	}
}

func TestGemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Gemm(NewTile(2, 2), NewTile(2, 3), NewTile(4, 2))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := randTile(rng, 1+rng.Intn(20), 1+rng.Intn(20))
		return Transpose(Transpose(tl)).Equal(tl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestGemmTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a, b := randTile(rng, m, k), randTile(rng, k, n)
		ab := NewTile(m, n)
		Gemm(ab, a, b)
		btat := NewTile(n, m)
		Gemm(btat, Transpose(b), Transpose(a))
		return Transpose(ab).AlmostEqual(btat, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMapZipScale(t *testing.T) {
	a := NewTileFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewTileFrom(2, 2, []float64{10, 20, 30, 40})
	sum := Zip(a, b, func(x, y float64) float64 { return x + y })
	if sum.At(1, 1) != 44 {
		t.Fatalf("zip add: got %v", sum.At(1, 1))
	}
	sq := Map(a, func(x float64) float64 { return x * x })
	if sq.At(1, 0) != 9 {
		t.Fatalf("map square: got %v", sq.At(1, 0))
	}
	sc := Scale(a, 3)
	if sc.At(0, 1) != 6 {
		t.Fatalf("scale: got %v", sc.At(0, 1))
	}
	if Sum(a) != 10 {
		t.Fatalf("sum: got %v", Sum(a))
	}
	if SumSq(a) != 30 {
		t.Fatalf("sumsq: got %v", SumSq(a))
	}
	if MaxAbs(Scale(a, -2)) != 8 {
		t.Fatalf("maxabs: got %v", MaxAbs(Scale(a, -2)))
	}
}

func TestRowColSums(t *testing.T) {
	a := NewTileFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	rs := RowSums(a)
	if rs.Rows != 2 || rs.Cols != 1 || rs.At(0, 0) != 6 || rs.At(1, 0) != 15 {
		t.Fatalf("rowsums: %+v", rs)
	}
	cs := ColSums(a)
	if cs.Rows != 1 || cs.Cols != 3 || cs.At(0, 0) != 5 || cs.At(0, 2) != 9 {
		t.Fatalf("colsums: %+v", cs)
	}
}

func TestGemmFlops(t *testing.T) {
	if GemmFlops(2, 3, 4) != 48 {
		t.Fatalf("flops: got %d", GemmFlops(2, 3, 4))
	}
	// Must not overflow for realistic big-data sizes.
	if GemmFlops(100000, 100000, 100000) <= 0 {
		t.Fatal("flops overflowed int64")
	}
}

func TestClose(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1.0000001, 1e-6, true},
		{1, 1.1, 1e-6, false},
		{1e12, 1e12 * (1 + 1e-9), 1e-6, true},
		{math.NaN(), math.NaN(), 1e-6, true},
		{math.NaN(), 1, 1e-6, false},
	}
	for i, c := range cases {
		if got := Close(c.a, c.b, c.tol); got != c.want {
			t.Errorf("case %d: Close(%v,%v,%v)=%v want %v", i, c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestTileCloneIndependence(t *testing.T) {
	a := NewTileFrom(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("clone must not alias original data")
	}
}
