package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseMulIdentity(t *testing.T) {
	a := RandomDense(7, 7, 42)
	if !a.Mul(Identity(7)).AlmostEqual(a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if !Identity(7).Mul(a).AlmostEqual(a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestDenseAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, l, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := RandomDense(m, k, seed)
		b := RandomDense(k, l, seed+1)
		c := RandomDense(l, n, seed+2)
		return a.Mul(b).Mul(c).AlmostEqual(a.Mul(b.Mul(c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseElementwise(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{4, 3, 2, 1})
	if got := a.Add(b).At(0, 0); got != 5 {
		t.Fatalf("add: %v", got)
	}
	if got := a.Sub(b).At(0, 1); got != -1 {
		t.Fatalf("sub: %v", got)
	}
	if got := a.ElemMul(b).At(1, 0); got != 6 {
		t.Fatalf("elemmul: %v", got)
	}
	if got := a.ElemDiv(b).At(1, 1); got != 4 {
		t.Fatalf("elemdiv: %v", got)
	}
	if got := a.Scale(2).At(1, 1); got != 8 {
		t.Fatalf("scale: %v", got)
	}
	if got := a.Sum(); got != 10 {
		t.Fatalf("sum: %v", got)
	}
	if got := a.FrobeniusNorm(); !Close(got, math.Sqrt(30), 1e-12) {
		t.Fatalf("frobenius: %v", got)
	}
}

func TestDenseTranspose(t *testing.T) {
	a := RandomDense(5, 9, 7)
	at := a.T()
	if at.Rows != 9 || at.Cols != 5 {
		t.Fatalf("transpose shape %dx%d", at.Rows, at.Cols)
	}
	if !at.T().AlmostEqual(a, 0) {
		t.Fatal("double transpose != original")
	}
}

// Property: extracting all tiles and writing them back reconstructs the
// matrix exactly, for any tile size, including fringe tiles.
func TestDenseTileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		ts := 1 + rng.Intn(12)
		a := RandomDense(rows, cols, seed)
		out := NewDense(rows, cols)
		for ti := 0; ti*ts < rows; ti++ {
			for tj := 0; tj*ts < cols; tj++ {
				out.SetTile(ti, tj, ts, a.TileAt(ti, tj, ts))
			}
		}
		return out.AlmostEqual(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSparseDensity(t *testing.T) {
	d := RandomSparseDense(200, 200, 0.1, 99)
	nnz := 0
	for _, v := range d.Data {
		if v != 0 {
			nnz++
		}
	}
	got := float64(nnz) / float64(len(d.Data))
	if got < 0.07 || got > 0.13 {
		t.Fatalf("density %v far from 0.1", got)
	}
}

func TestRandomDenseDeterminism(t *testing.T) {
	a := RandomDense(10, 10, 5)
	b := RandomDense(10, 10, 5)
	if !a.AlmostEqual(b, 0) {
		t.Fatal("same seed must give same matrix")
	}
	c := RandomDense(10, 10, 6)
	if a.AlmostEqual(c, 0) {
		t.Fatal("different seeds should give different matrices")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewDenseFrom(1, 3, []float64{1, 2, 3})
	b := NewDenseFrom(1, 3, []float64{1, 5, 3})
	if got := a.MaxAbsDiff(b); got != 3 {
		t.Fatalf("maxabsdiff: %v", got)
	}
	c := NewDense(2, 3)
	if !math.IsInf(a.MaxAbsDiff(c), 1) {
		t.Fatal("shape mismatch should report +Inf")
	}
}

func TestConstDense(t *testing.T) {
	d := ConstDense(3, 4, 2.5)
	if d.Sum() != 30 {
		t.Fatalf("const sum: %v", d.Sum())
	}
}
