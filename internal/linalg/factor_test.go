package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := n + rng.Intn(12)
		a := RandomDense(m, n, seed)
		q, r, err := QR(a)
		if err != nil {
			return false
		}
		return q.Mul(r).AlmostEqual(a, 1e-10) && IsOrthonormalCols(q, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQRUpperTriangular(t *testing.T) {
	a := RandomDense(10, 4, 3)
	_, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R not upper triangular at (%d,%d): %v", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, _, err := QR(RandomDense(3, 5, 1)); err == nil {
		t.Fatal("want error for wide matrix")
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Duplicate column: QR must still reconstruct.
	a := NewDense(6, 3)
	for i := 0; i < 6; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, float64(i+1)) // same as column 0
		a.Set(i, 2, float64((i*i)%5))
	}
	q, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Mul(r).AlmostEqual(a, 1e-10) {
		t.Fatal("rank-deficient QR reconstruction failed")
	}
}

func TestSVDReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		a := RandomDense(m, n, seed)
		res, err := SVD(a)
		if err != nil {
			return false
		}
		if !res.Reconstruct().AlmostEqual(a, 1e-9) {
			return false
		}
		// Singular values descending and non-negative.
		for i := range res.S {
			if res.S[i] < 0 || (i > 0 && res.S[i] > res.S[i-1]+1e-12) {
				return false
			}
		}
		return IsOrthonormalCols(res.U, 1e-9) && IsOrthonormalCols(res.V, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDKnownSingularValues(t *testing.T) {
	// diag(3, 2, 1) embedded in a 5x3 matrix.
	a := NewDense(5, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	a.Set(2, 2, 1)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(res.S[i]-w) > 1e-10 {
			t.Fatalf("singular value %d: got %v want %v", i, res.S[i], w)
		}
	}
}

func TestSVDWideMatrix(t *testing.T) {
	a := RandomDense(3, 7, 5)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconstruct().AlmostEqual(a, 1e-9) {
		t.Fatal("wide SVD reconstruction failed")
	}
	if res.U.Rows != 3 || res.V.Rows != 7 {
		t.Fatalf("thin factors: U %dx%d V %dx%d", res.U.Rows, res.U.Cols, res.V.Rows, res.V.Cols)
	}
}

func TestSVDLowRankTruncation(t *testing.T) {
	// Rank-2 matrix: trailing singular values vanish.
	u := RandomDense(8, 2, 1)
	v := RandomDense(5, 2, 2)
	a := u.Mul(v.T())
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < len(res.S); i++ {
		if res.S[i] > 1e-10 {
			t.Fatalf("rank-2 matrix has S[%d]=%v", i, res.S[i])
		}
	}
}

func TestIsOrthonormalCols(t *testing.T) {
	if !IsOrthonormalCols(Identity(4), 1e-12) {
		t.Fatal("identity should be orthonormal")
	}
	if IsOrthonormalCols(ConstDense(4, 2, 1), 1e-6) {
		t.Fatal("constant matrix should not be orthonormal")
	}
}

func spdMatrix(n int, seed int64) *Dense {
	// AᵀA + n·I is SPD.
	a := RandomDense(n, n, seed)
	g := a.T().Mul(a)
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+float64(n))
	}
	return g
}

func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := spdMatrix(n, seed)
		l, err := Cholesky(g)
		if err != nil {
			return false
		}
		return l.Mul(l.T()).AlmostEqual(g, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	bad := NewDense(2, 2)
	bad.Set(0, 0, -1)
	if _, err := Cholesky(bad); err == nil {
		t.Fatal("want non-SPD error")
	}
	if _, err := Cholesky(NewDense(2, 3)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestCholeskySolve(t *testing.T) {
	n := 8
	g := spdMatrix(n, 4)
	want := RandomDense(n, 2, 5)
	b := g.Mul(want)
	x, err := CholeskySolve(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.AlmostEqual(want, 1e-8) {
		t.Fatalf("solve error %g", x.MaxAbsDiff(want))
	}
	if _, err := CholeskySolve(g, NewDense(3, 1)); err == nil {
		t.Fatal("want rhs shape error")
	}
}
