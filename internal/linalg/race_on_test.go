//go:build race

package linalg

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops items at random, so steady-state
// allocation assertions on pooled scratch become flaky and are skipped.
const raceEnabled = true
