package linalg

import "fmt"

// CSRTile is a sparse tile in compressed-sparse-row form. Cumulon uses
// sparse tiles for inputs such as ratings matrices, and for the "masked"
// operators where a dense product is only needed at the nonzero positions
// of a sparse matrix (the key primitive in sparse matrix factorization).
type CSRTile struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1
	ColIdx     []int     // len NNZ
	Val        []float64 // len NNZ
}

// NNZ returns the number of stored (structurally nonzero) entries.
func (s *CSRTile) NNZ() int { return len(s.Val) }

// Bytes reports the serialized payload size estimate: 8 bytes per value,
// 4 per column index, 4 per row pointer. Used by I/O accounting.
func (s *CSRTile) Bytes() int64 {
	return int64(len(s.Val))*12 + int64(len(s.RowPtr))*4
}

// DenseToCSR converts a dense tile to CSR, dropping exact zeros.
func DenseToCSR(t *Tile) *CSRTile {
	s := &CSRTile{Rows: t.Rows, Cols: t.Cols, RowPtr: make([]int, t.Rows+1)}
	for i := 0; i < t.Rows; i++ {
		row := t.Data[i*t.Cols : (i+1)*t.Cols]
		for j, v := range row {
			if v != 0 {
				s.ColIdx = append(s.ColIdx, j)
				s.Val = append(s.Val, v)
			}
		}
		s.RowPtr[i+1] = len(s.Val)
	}
	return s
}

// ToDense expands the CSR tile back to dense form.
func (s *CSRTile) ToDense() *Tile {
	t := NewTile(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			t.Data[i*s.Cols+s.ColIdx[p]] = s.Val[p]
		}
	}
	return t
}

// SpGemmDense computes C += S * B where S is sparse (m x k), B dense
// (k x n), C dense (m x n). Cost is proportional to NNZ(S) * n.
func SpGemmDense(c *Tile, s *CSRTile, b *Tile) {
	if s.Cols != b.Rows || c.Rows != s.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: spgemm shape mismatch %dx%d * %v -> %v", s.Rows, s.Cols, b, c))
	}
	n := b.Cols
	for i := 0; i < s.Rows; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			av := s.Val[p]
			brow := b.Data[s.ColIdx[p]*n : (s.ColIdx[p]+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// SpGemmDenseTA computes C += Sᵀ * B where S is sparse (k x m), B dense
// (k x n), C dense (m x n).
func SpGemmDenseTA(c *Tile, s *CSRTile, b *Tile) {
	if s.Rows != b.Rows || c.Rows != s.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: spgemmTA shape mismatch (%dx%d)ᵀ * %v -> %v", s.Rows, s.Cols, b, c))
	}
	n := b.Cols
	for i := 0; i < s.Rows; i++ {
		brow := b.Data[i*n : (i+1)*n]
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			av := s.Val[p]
			crow := c.Data[s.ColIdx[p]*n : (s.ColIdx[p]+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MaskedGemm computes, for each structurally nonzero position (i,j) of
// mask, out(i,j) = (A·B)(i,j), leaving all other positions zero. A is
// (m x k), B is (k x n), mask is (m x n). This is Cumulon's masked
// multiply operator: when only the sparse pattern of the output is needed
// (e.g. computing predictions at observed ratings), it avoids the full
// dense product, costing NNZ(mask) * k instead of m*n*k.
//
// When the dot products dominate the cost of transposing B once, the
// packed variant in block.go runs instead of the reference walk below:
// it turns the column-strided B access of every dot into two contiguous
// streams, with bit-identical results.
func MaskedGemm(mask *CSRTile, a, b *Tile) *CSRTile {
	if a.Cols != b.Rows || mask.Rows != a.Rows || mask.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: masked gemm shape mismatch %v * %v mask %dx%d", a, b, mask.Rows, mask.Cols))
	}
	if int64(mask.NNZ())*int64(a.Cols) >= maskedMinWork {
		return maskedGemmPacked(mask, a, b)
	}
	return refMaskedGemm(mask, a, b)
}

// refMaskedGemm is the naive reference masked multiply: a strided column
// walk of B per stored position. Retained as the small-input fast path
// and as the differential oracle for maskedGemmPacked.
func refMaskedGemm(mask *CSRTile, a, b *Tile) *CSRTile {
	k, n := a.Cols, b.Cols
	out := &CSRTile{
		Rows:   mask.Rows,
		Cols:   mask.Cols,
		RowPtr: append([]int(nil), mask.RowPtr...),
		ColIdx: append([]int(nil), mask.ColIdx...),
		Val:    make([]float64, mask.NNZ()),
	}
	for i := 0; i < mask.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		for p := mask.RowPtr[i]; p < mask.RowPtr[i+1]; p++ {
			j := mask.ColIdx[p]
			var s float64
			for q, av := range arow {
				s += av * b.Data[q*n+j]
			}
			out.Val[p] = s
		}
	}
	return out
}

// Transpose returns sᵀ in CSR form, in O(NNZ + Rows + Cols).
func (s *CSRTile) Transpose() *CSRTile {
	out := &CSRTile{
		Rows:   s.Cols,
		Cols:   s.Rows,
		RowPtr: make([]int, s.Cols+1),
		ColIdx: make([]int, s.NNZ()),
		Val:    make([]float64, s.NNZ()),
	}
	// Count entries per output row (= input column).
	for _, c := range s.ColIdx {
		out.RowPtr[c+1]++
	}
	for i := 0; i < s.Cols; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := append([]int(nil), out.RowPtr[:s.Cols]...)
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			c := s.ColIdx[p]
			out.ColIdx[next[c]] = i
			out.Val[next[c]] = s.Val[p]
			next[c]++
		}
	}
	return out
}

// SpZip applies f over the structurally nonzero entries of s paired with
// the corresponding entries of the same-pattern sparse tile o. Both tiles
// must share an identical sparsity pattern (as produced by MaskedGemm on
// the same mask); this is verified.
func SpZip(s, o *CSRTile, f func(x, y float64) float64) *CSRTile {
	if s.Rows != o.Rows || s.Cols != o.Cols || s.NNZ() != o.NNZ() {
		panic("linalg: spzip pattern mismatch")
	}
	out := &CSRTile{
		Rows:   s.Rows,
		Cols:   s.Cols,
		RowPtr: append([]int(nil), s.RowPtr...),
		ColIdx: append([]int(nil), s.ColIdx...),
		Val:    make([]float64, s.NNZ()),
	}
	for p := range s.Val {
		if s.ColIdx[p] != o.ColIdx[p] {
			panic("linalg: spzip pattern mismatch")
		}
		out.Val[p] = f(s.Val[p], o.Val[p])
	}
	return out
}
