package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The blocked driver's contract (block.go) is bit-exact agreement with
// the naive references on finite data for Gemm, GemmTA and GemmTB alike:
// all three references fold their k terms into the loaded C element in
// ascending order, exactly as the micro-kernel does, from any
// accumulator. These tests hold every dispatch path to that contract
// across edge shapes, fringe remainders, cutoff-straddling sizes and
// shrunken block configurations.

// zeroableTile builds a tile that may have zero rows or columns, which
// NewTile rejects but the kernels must tolerate (a planner never emits
// them, yet the driver's loop bounds make them safe by construction).
func zeroableTile(rng *rand.Rand, rows, cols int) *Tile {
	t := &Tile{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func assertExact(t *testing.T, got, want *Tile, label string) {
	t.Helper()
	if !got.Equal(want) {
		maxd := 0.0
		for i := range got.Data {
			if d := math.Abs(got.Data[i] - want.Data[i]); d > maxd {
				maxd = d
			}
		}
		t.Fatalf("%s: blocked kernel diverges from reference (maxdiff %g)", label, maxd)
	}
}

// TestBlockedGemmEdgeShapes drives the blocked driver directly (no size
// cutoff) over degenerate and fringe shapes: empty axes, single elements,
// shapes straddling the mr/nr micro-tile, and remainders in every
// combination, under a block config small enough that all of them cross
// block boundaries.
func TestBlockedGemmEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cf := blockConf{mc: 8, kc: 4, nc: 6}
	shapes := []struct{ m, k, n int }{
		{0, 3, 4}, {3, 0, 4}, {3, 4, 0}, {0, 0, 0},
		{1, 1, 1}, {1, 7, 1}, {2, 1, 2},
		{mr, 5, nr}, {mr - 1, 5, nr - 1}, {mr + 1, 5, nr + 1},
		{5, 3, 7}, {8, 4, 6}, {9, 5, 7}, {13, 11, 3},
		{17, 2, 19}, {16, 16, 16}, {33, 9, 31},
	}
	for _, s := range shapes {
		a := zeroableTile(rng, s.m, s.k)
		b := zeroableTile(rng, s.k, s.n)
		got := zeroableTile(rng, s.m, s.n)
		want := got.Clone()
		gemmBlocked(cf, got, a, b, false, false, nil)
		refGemm(want, a, b)
		assertExact(t, got, want, "gemm "+got.String())

		at := zeroableTile(rng, s.k, s.m)
		gotTA := zeroableTile(rng, s.m, s.n)
		wantTA := gotTA.Clone()
		gemmBlocked(cf, gotTA, at, b, true, false, nil)
		refGemmTA(wantTA, at, b)
		assertExact(t, gotTA, wantTA, "gemmTA")

		bt := zeroableTile(rng, s.n, s.k)
		gotTB := zeroableTile(rng, s.m, s.n)
		wantTB := gotTB.Clone()
		gemmBlocked(cf, gotTB, a, bt, false, true, nil)
		refGemmTB(wantTB, a, bt)
		assertExact(t, gotTB, wantTB, "gemmTB")
	}
}

// TestBlockedGemmRandomized sweeps random shapes and random (deliberately
// tiny) block configurations so that multi-block loops and every fringe
// case of the packers and micro-kernel are exercised at fast sizes, with
// random nonzero accumulators.
func TestBlockedGemmRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		m, k, n := 1+rng.Intn(70), 1+rng.Intn(70), 1+rng.Intn(70)
		cf := blockConf{mc: mr * (1 + rng.Intn(4)), kc: 1 + rng.Intn(24), nc: nr * (1 + rng.Intn(8))}
		a, b := randTile(rng, m, k), randTile(rng, k, n)

		got := randTile(rng, m, n)
		want := got.Clone()
		gemmBlocked(cf, got, a, b, false, false, nil)
		refGemm(want, a, b)
		assertExact(t, got, want, "gemm")

		at := Transpose(a)
		gotTA := randTile(rng, m, n)
		wantTA := gotTA.Clone()
		gemmBlocked(cf, gotTA, at, b, true, false, nil)
		refGemmTA(wantTA, at, b)
		assertExact(t, gotTA, wantTA, "gemmTA")

		bt := Transpose(b)
		gotTB := randTile(rng, m, n)
		wantTB := gotTB.Clone()
		gemmBlocked(cf, gotTB, a, bt, false, true, nil)
		refGemmTB(wantTB, a, bt)
		// Nonzero accumulator included: since the refGemmTB accumulation
		// fix, the TB branch is held to the same bit equality as the
		// other two.
		assertExact(t, gotTB, wantTB, "gemmTB")
	}
}

// TestGemmDispatchStraddlesCutoff verifies the public kernels around the
// blocked-dispatch threshold: the exact sizes just below it (naive path)
// and just above it (blocked path) must agree with the reference either
// way, so a misrouted size could only ever cost speed, not correctness.
func TestGemmDispatchStraddlesCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, s := range []int{60, 63, 64, 65, 72} {
		below := useBlocked(s, s, s)
		if s <= 63 && below {
			t.Fatalf("useBlocked(%d³) = true, expected naive fallback", s)
		}
		if s >= 64 && !below {
			t.Fatalf("useBlocked(%d³) = false, expected blocked dispatch", s)
		}
		a, b := randTile(rng, s, s), randTile(rng, s, s)
		got, want := NewTile(s, s), NewTile(s, s)
		Gemm(got, a, b)
		refGemm(want, a, b)
		assertExact(t, got, want, "gemm dispatch")

		gotTB, wantTB := NewTile(s, s), NewTile(s, s)
		GemmTB(gotTB, a, b)
		refGemmTB(wantTB, a, b)
		assertExact(t, gotTB, wantTB, "gemmTB dispatch")

		gotTA, wantTA := NewTile(s, s), NewTile(s, s)
		GemmTA(gotTA, a, b)
		refGemmTA(wantTA, a, b)
		assertExact(t, gotTA, wantTA, "gemmTA dispatch")
	}
}

// TestGemmAccumulationOrderAcrossKBlocks pins the heart of the numerical
// contract: splitting k across many blocks must not change a single bit
// of the result, because the micro-kernel reloads C between blocks and
// continues the same ascending-k addition chain.
func TestGemmAccumulationOrderAcrossKBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m, k, n := 12, 200, 10
	a, b := randTile(rng, m, k), randTile(rng, k, n)
	want := randTile(rng, m, n)
	one := want.Clone()
	many := want.Clone()
	refGemm(want, a, b)
	gemmBlocked(blockConf{mc: 64, kc: 512, nc: 64}, one, a, b, false, false, nil) // single k block
	gemmBlocked(blockConf{mc: 8, kc: 3, nc: 4}, many, a, b, false, false, nil)    // 67 k blocks
	assertExact(t, one, want, "single k block")
	assertExact(t, many, want, "many k blocks")
}

// TestMaskedGemmPackedMatchesRef drives the packed masked multiply
// directly against the reference walk: identical dot ordering means
// bit-identical values, on every pattern shape including empty rows,
// full rows and single columns.
func TestMaskedGemmPackedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 60; trial++ {
		m, k, n := 1+rng.Intn(30), 1+rng.Intn(30), 1+rng.Intn(30)
		a, b := randTile(rng, m, k), randTile(rng, k, n)
		pat := NewTile(m, n)
		density := rng.Float64()
		for i := range pat.Data {
			if rng.Float64() < density {
				pat.Data[i] = 1
			}
		}
		mask := DenseToCSR(pat)
		got := maskedGemmPacked(mask, a, b)
		want := refMaskedGemm(mask, a, b)
		if len(got.Val) != len(want.Val) {
			t.Fatalf("trial %d: nnz %d vs %d", trial, len(got.Val), len(want.Val))
		}
		for i := range got.Val {
			if got.Val[i] != want.Val[i] {
				t.Fatalf("trial %d: masked value %d differs: %g vs %g",
					trial, i, got.Val[i], want.Val[i])
			}
		}
	}
}

// TestBlockedGemmSteadyStateAllocFree asserts the scratch pool does its
// job: after a warm-up call, repeated blocked multiplies of the same
// shape perform zero heap allocations.
func TestBlockedGemmSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool items at random; alloc count is not stable")
	}
	rng := rand.New(rand.NewSource(16))
	a, b := randTile(rng, 96, 96), randTile(rng, 96, 96)
	c := NewTile(96, 96)
	gemmBlocked(defaultBlockConf, c, a, b, false, false, nil) // warm the pool
	allocs := testing.AllocsPerRun(20, func() {
		gemmBlocked(defaultBlockConf, c, a, b, false, false, nil)
	})
	if allocs != 0 {
		t.Fatalf("blocked gemm allocates %.1f objects/run in steady state, want 0", allocs)
	}
}
