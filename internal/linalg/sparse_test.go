package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randSparse(rng *rand.Rand, rows, cols int, density float64) *CSRTile {
	t := NewTile(rows, cols)
	for i := range t.Data {
		if rng.Float64() < density {
			t.Data[i] = rng.NormFloat64()
		}
	}
	return DenseToCSR(t)
}

func TestCSRRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTile(1+rng.Intn(15), 1+rng.Intn(15))
		for i := range tl.Data {
			if rng.Float64() < 0.3 {
				tl.Data[i] = rng.NormFloat64()
			}
		}
		return DenseToCSR(tl).ToDense().Equal(tl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpGemmMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		s := randSparse(rng, m, k, 0.3)
		b := randTile(rng, k, n)
		got := NewTile(m, n)
		SpGemmDense(got, s, b)
		want := naiveGemm(s.ToDense(), b)
		if !got.AlmostEqual(want, 1e-12) {
			t.Fatalf("trial %d: spgemm mismatch", trial)
		}
	}
}

func TestSpGemmTAMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		k, m, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		s := randSparse(rng, k, m, 0.3)
		b := randTile(rng, k, n)
		got := NewTile(m, n)
		SpGemmDenseTA(got, s, b)
		want := naiveGemm(Transpose(s.ToDense()), b)
		if !got.AlmostEqual(want, 1e-12) {
			t.Fatalf("trial %d: spgemmTA mismatch", trial)
		}
	}
}

func TestMaskedGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a, b := randTile(rng, m, k), randTile(rng, k, n)
		mask := randSparse(rng, m, n, 0.4)
		got := MaskedGemm(mask, a, b)
		full := naiveGemm(a, b)
		// At masked positions the value must equal the full product; at
		// unmasked positions the result must be structurally zero.
		dense := got.ToDense()
		maskDense := mask.ToDense()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if maskDense.At(i, j) != 0 {
					if !Close(dense.At(i, j), full.At(i, j), 1e-12) {
						t.Fatalf("masked value mismatch at (%d,%d)", i, j)
					}
				} else if dense.At(i, j) != 0 {
					t.Fatalf("unmasked position (%d,%d) is nonzero", i, j)
				}
			}
		}
		if got.NNZ() != mask.NNZ() {
			t.Fatalf("masked output pattern changed: %d vs %d", got.NNZ(), mask.NNZ())
		}
	}
}

func TestSpZip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	mask := randSparse(rng, 8, 8, 0.5)
	a := MaskedGemm(mask, randTile(rng, 8, 3), randTile(rng, 3, 8))
	b := MaskedGemm(mask, randTile(rng, 8, 3), randTile(rng, 3, 8))
	sum := SpZip(a, b, func(x, y float64) float64 { return x + y })
	want := a.ToDense()
	AddInto(want, b.ToDense())
	if !sum.ToDense().AlmostEqual(want, 1e-12) {
		t.Fatal("spzip sum mismatch")
	}
}

func TestSpZipPatternMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rng := rand.New(rand.NewSource(15))
	a := randSparse(rng, 5, 5, 0.5)
	b := randSparse(rng, 5, 5, 0.5)
	for a.NNZ() == b.NNZ() {
		b = randSparse(rng, 5, 5, 0.5)
	}
	SpZip(a, b, func(x, y float64) float64 { return x })
}

func TestCSRBytes(t *testing.T) {
	s := &CSRTile{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 1}, Val: []float64{1, 2}}
	if s.Bytes() != 2*12+3*4 {
		t.Fatalf("bytes: got %d", s.Bytes())
	}
}

func TestCSRTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSparse(rng, 1+rng.Intn(12), 1+rng.Intn(12), 0.4)
		return s.Transpose().ToDense().Equal(Transpose(s.ToDense()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSparse(rng, 9, 7, 0.3)
	if !s.Transpose().Transpose().ToDense().Equal(s.ToDense()) {
		t.Fatal("double transpose != original")
	}
}
