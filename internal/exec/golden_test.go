package exec

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cumulon/internal/ckpt"
	"cumulon/internal/linalg"
	"cumulon/internal/obs"
	"cumulon/internal/plan"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden GNMF trace and metrics files from the current run")

// TestGoldenGNMFTrace pins the engine's observable behavior to committed
// golden files: the Chrome trace export and the metrics snapshot of the
// standard GNMF run must match byte-for-byte. Everything in those exports
// is virtual — timestamps come from the simulated clock (Seed 7), byte
// counts from tile shapes and flops from GemmFlops — so the comparison is
// stable across platforms and across kernel rewrites. A diff here means a
// scheduling, accounting or tracing change, which must be reviewed and
// re-recorded deliberately with:
//
//	go test ./internal/exec -run TestGoldenGNMFTrace -update-golden
func TestGoldenGNMFTrace(t *testing.T) {
	tr := obs.NewTrace()
	runGNMF(t, nil, nil, tr)

	var trace bytes.Buffer
	if err := tr.WriteChrome(&trace); err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if err := obs.Snapshot(tr).Write(&metrics); err != nil {
		t.Fatal(err)
	}

	goldens := []struct {
		path string
		got  []byte
	}{
		{filepath.Join("testdata", "golden_gnmf_trace.json"), trace.Bytes()},
		{filepath.Join("testdata", "golden_gnmf_metrics.txt"), metrics.Bytes()},
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for _, g := range goldens {
			if err := os.WriteFile(g.path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", g.path, len(g.got))
		}
		return
	}
	for _, g := range goldens {
		want, err := os.ReadFile(g.path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden to record): %v", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s drifted from golden (%d bytes now vs %d recorded): "+
				"engine accounting or trace layout changed; if intended, re-record with -update-golden",
				g.path, len(g.got), len(want))
		}
	}
}

// TestGoldenGNMFTraceCheckpointOff reruns the golden comparison with the
// checkpoint machinery attached but disabled: a checkpoint store is
// configured (as cumulond always does) yet CheckpointEvery is 0, the
// default. The goldens are recorded without any of that, so a single
// byte of drift means a disabled checkpoint path leaked barriers, spans
// or metrics into plain runs. Nothing is ever re-recorded from this
// test.
func TestGoldenGNMFTraceCheckpointOff(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are recorded by TestGoldenGNMFTrace only")
	}
	tr := obs.NewTrace()
	store := ckpt.NewMemStore()
	e, err := New(Config{
		Cluster:         testCluster(t, 4, 2),
		Materialize:     true,
		Seed:            7,
		NoiseFactor:     0.08,
		RackSize:        2,
		CacheFraction:   0.4,
		Speculation:     true,
		Recorder:        tr,
		CheckpointEvery: 0, // off: the default must be a strict no-op
		CheckpointStore: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, m, _ := runProgram(t, e, gnmfSrc,
		plan.Config{Densities: map[string]float64{"V": 0.25}},
		gnmfData(), 8)
	if m.Checkpoints != 0 || m.CheckpointBytes != 0 || m.ResumedFromStmt != 0 {
		t.Fatalf("disabled checkpointing still did work: %+v", m)
	}

	var trace bytes.Buffer
	if err := tr.WriteChrome(&trace); err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if err := obs.Snapshot(tr).Write(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, g := range []struct {
		path string
		got  []byte
	}{
		{filepath.Join("testdata", "golden_gnmf_trace.json"), trace.Bytes()},
		{filepath.Join("testdata", "golden_gnmf_metrics.txt"), metrics.Bytes()},
	} {
		want, err := os.ReadFile(g.path)
		if err != nil {
			t.Fatalf("missing golden file (record with TestGoldenGNMFTrace -update-golden): %v", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s drifted with checkpointing disabled (%d bytes now vs %d recorded): "+
				"CheckpointEvery=0 must leave runs untouched", g.path, len(g.got), len(want))
		}
	}
}

// TestGoldenGNMFTraceParallelKernels reruns the golden comparison with
// intra-kernel parallelism forced on (the parallel blocked-GEMM driver).
// The goldens are recorded with default settings, so a single byte of
// drift here means kernel fan-out leaked into results, flop accounting or
// trace layout — the bit-identity contract of gemmBlockedParallel,
// checked end-to-end. Nothing is ever re-recorded from this test.
func TestGoldenGNMFTraceParallelKernels(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are recorded by TestGoldenGNMFTrace only")
	}
	prev := linalg.SetParallelism(4)
	defer linalg.SetParallelism(prev)

	tr := obs.NewTrace()
	runGNMF(t, nil, nil, tr)

	var trace bytes.Buffer
	if err := tr.WriteChrome(&trace); err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if err := obs.Snapshot(tr).Write(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, g := range []struct {
		path string
		got  []byte
	}{
		{filepath.Join("testdata", "golden_gnmf_trace.json"), trace.Bytes()},
		{filepath.Join("testdata", "golden_gnmf_metrics.txt"), metrics.Bytes()},
	} {
		want, err := os.ReadFile(g.path)
		if err != nil {
			t.Fatalf("missing golden file (record with TestGoldenGNMFTrace -update-golden): %v", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s drifted under kernel parallelism (%d bytes now vs %d recorded): "+
				"the parallel GEMM driver changed observable behavior", g.path, len(g.got), len(want))
		}
	}
}
