// Package exec is Cumulon's execution engine: it runs physical plans
// (package plan) on a provisioned cluster (package cloud) over the
// distributed file system (package dfs).
//
// Time is virtual. The engine is a deterministic discrete-event simulation
// of a slot-based cluster — the scheduling, data placement, locality, and
// per-task durations all follow the calibrated hardware profile of the
// chosen machine type — while the tile mathematics is (optionally)
// computed for real, in process, so results can be checked against the
// reference interpreter. With Materialize off, the same code paths run at
// paper scale: every read, write and task is still placed, accounted and
// timed, only the float arrays are elided.
package exec

import (
	"fmt"
	"math/rand"
	"runtime"

	"cumulon/internal/chaos"
	"cumulon/internal/ckpt"
	"cumulon/internal/cloud"
	"cumulon/internal/compute"
	"cumulon/internal/dfs"
	"cumulon/internal/linalg"
	"cumulon/internal/obs"
	"cumulon/internal/plan"
	"cumulon/internal/store"
)

// Config configures an engine instance.
type Config struct {
	Cluster cloud.Cluster
	// Replication is the DFS replication factor (default 3).
	Replication int
	// Materialize selects real tile computation. Off, tiles are virtual:
	// placement, accounting and timing are identical but no payloads move.
	Materialize bool
	// Interpret forces the tree-walking expression evaluator instead of
	// the compiled tile pipelines. Both must produce byte-identical traces
	// and tiles; the flag exists for differential/golden testing and as an
	// escape hatch.
	Interpret bool
	// Seed drives the deterministic noise and placement randomness.
	Seed int64
	// NoiseFactor scales multiplicative task-duration noise (stragglers,
	// JVM jitter). 0 disables. Typical: 0.08.
	NoiseFactor float64
	// JobStartupSec is the fixed per-job overhead (job setup, scheduling
	// round trips). nil selects the Hadoop-era default of 6 s; point at 0
	// (exec.Float(0)) for a zero-overhead job launcher.
	JobStartupSec *float64
	// Chaos injects a deterministic fault schedule into the run: node
	// crashes at virtual times, per-attempt task fault probabilities,
	// targeted faults and transient read errors (see package chaos). nil
	// runs fault-free. Fault decisions are hash-based, so the same
	// schedule produces the same failures on any compute backend.
	Chaos *chaos.Schedule
	// MaxTaskRetries bounds how many times a failed task is retried on
	// another node before the job fails terminally. 0 selects the Hadoop
	// default of 3; negative disables retries entirely.
	MaxTaskRetries int
	// RetryBackoffSec is the base of the exponential backoff charged
	// before retry r (base * 2^(r-1) virtual seconds, on top of the failed
	// attempt's startup cost). nil selects 2 s; exec.Float(0) retries
	// immediately.
	RetryBackoffSec *float64
	// RackSize groups datanodes into racks (see dfs.Config.RackSize);
	// zero means a single rack.
	RackSize int
	// CrossRackPenalty multiplies the network cost of cross-rack bytes,
	// modeling oversubscribed rack uplinks. nil defaults to 2 when racks
	// are configured, 1 otherwise; exec.Float(0) makes cross-rack bytes
	// free (an idealized non-blocking core).
	CrossRackPenalty *float64
	// CacheFraction, when positive, dedicates that fraction of each
	// node's memory to an LRU tile cache: tiles a node has already read
	// are served from memory (Cumulon's memory-caching setting). Off by
	// default.
	CacheFraction float64
	// Speculation enables straggler mitigation: when a task's projected
	// finish time exceeds 1.5x the phase median, a backup attempt is
	// launched on another free slot and the earlier finisher wins
	// (Hadoop's speculative execution). Only timing is affected — the
	// computation is deterministic either way.
	Speculation bool
	// OverlapJobs schedules a job as soon as its dependencies finish,
	// letting independent jobs share the cluster, instead of the
	// Hadoop-style global barrier between jobs. The optimizer's simulator
	// assumes barriers, so this is an engine extension (ablated in
	// experiment E15), off by default.
	OverlapJobs bool
	// Workers sets the compute parallelism for materialized runs: the
	// tile math of a scheduling phase fans out across
	// min(Workers, GOMAXPROCS) goroutines. Virtual time, placement, byte
	// accounting and task durations are unaffected — the result is
	// byte-for-byte identical to a sequential run. 0 or 1 computes
	// sequentially. Virtual runs have no tile math and always run
	// sequentially.
	Workers int
	// KernelParallelism bounds the worker fan-out *inside* a single
	// blocked GEMM (linalg.SetParallelism) — intra-kernel parallelism,
	// orthogonal to Workers' task-level fan-out. 0 leaves the process-wide
	// setting untouched (default: GOMAXPROCS). Results are bit-identical
	// at any value; only wall-clock changes.
	KernelParallelism int
	// Backend overrides the compute backend entirely (tests use it to
	// force a specific pool width regardless of GOMAXPROCS). When set,
	// Workers is ignored.
	Backend compute.Backend
	// Recorder receives the run's observability spans (program → job →
	// phase → task, plus per-task kernel events). nil disables recording
	// at zero cost. Spans are recorded only from the scheduling
	// goroutine, so traces are deterministic regardless of Backend.
	Recorder obs.Recorder
	// CheckpointEvery, when positive, takes a program-level checkpoint at
	// every CheckpointEvery-th iteration boundary of the plan (package
	// lang's `checkpoint` markers): the matrices materialized so far are
	// persisted with their exact block placement, the write is charged to
	// the virtual clock as a checkpoint span, and the engine's random
	// streams reseed at the boundary so a resumed run replays the same
	// tail. 0 (the default) disables checkpointing entirely — no
	// barriers, no reseeds, byte-identical to pre-checkpoint engines.
	CheckpointEvery int
	// CheckpointStore persists checkpoints across runs. nil with
	// CheckpointEvery > 0 still performs the boundary barriers (so a run
	// can serve as the bit-identity oracle for a resumed one) but keeps
	// nothing.
	CheckpointStore ckpt.Store
	// Resume, before running any job, loads the newest valid checkpoint
	// matching this exact program and configuration from CheckpointStore
	// and fast-forwards past the jobs it covers. Requires
	// CheckpointEvery > 0 and a CheckpointStore. Without a matching
	// checkpoint the run silently starts from scratch.
	Resume bool
}

// Float returns a pointer to v, for the Config fields where an explicit
// zero is meaningful and must be distinguishable from "use the default".
func Float(v float64) *float64 { return &v }

func (c Config) withDefaults() Config {
	if c.Replication == 0 {
		c.Replication = 3
	}
	if c.JobStartupSec == nil {
		c.JobStartupSec = Float(6)
	}
	if c.MaxTaskRetries == 0 {
		c.MaxTaskRetries = 3
	}
	if c.MaxTaskRetries < 0 {
		c.MaxTaskRetries = 0
	}
	if c.RetryBackoffSec == nil {
		c.RetryBackoffSec = Float(2)
	}
	if c.CrossRackPenalty == nil {
		if c.RackSize > 0 {
			c.CrossRackPenalty = Float(2)
		} else {
			c.CrossRackPenalty = Float(1)
		}
	}
	return c
}

// Engine executes plans over its own DFS instance.
type Engine struct {
	cfg    Config
	fs     *dfs.FS
	st     *store.Store
	rng    *rand.Rand
	caches []*nodeCache // per-node tile caches (nil when disabled)
	// Resolved scalar config (the Config fields are pointers so that an
	// explicit zero survives withDefaults).
	jobStartupSec    float64
	crossRackPenalty float64
	maxTaskRetries   int
	retryBackoffSec  float64
	chaos            *chaos.Injector
	// backend computes the tile math; env is the environment its tasks
	// capture. The engine itself only replays traces.
	backend compute.Backend
	env     compute.Env
	rec     obs.Recorder
	// progHash and cfgHash identify the (program, configuration) pair a
	// checkpoint belongs to; set per Run when checkpointing is active.
	progHash, cfgHash string
}

// New creates an engine with a fresh DFS sized to the cluster.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Cluster.Nodes <= 0 || cfg.Cluster.Slots <= 0 {
		return nil, fmt.Errorf("exec: invalid cluster %+v", cfg.Cluster)
	}
	fs := dfs.New(dfs.Config{
		Nodes:       cfg.Cluster.Nodes,
		Replication: cfg.Replication,
		Seed:        cfg.Seed + 1,
		RackSize:    cfg.RackSize,
	})
	backend := cfg.Backend
	if backend == nil {
		n := cfg.Workers
		if g := runtime.GOMAXPROCS(0); n > g {
			n = g
		}
		if cfg.Materialize && n > 1 {
			backend = compute.NewPool(n)
		} else {
			backend = compute.NewSequential()
		}
	}
	if err := cfg.Chaos.Validate(); err != nil {
		return nil, err
	}
	if cfg.KernelParallelism > 0 {
		linalg.SetParallelism(cfg.KernelParallelism)
	}
	rec := obs.OrNop(cfg.Recorder)
	return &Engine{
		cfg:              cfg,
		fs:               fs,
		st:               store.New(fs),
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		jobStartupSec:    *cfg.JobStartupSec,
		crossRackPenalty: *cfg.CrossRackPenalty,
		maxTaskRetries:   cfg.MaxTaskRetries,
		retryBackoffSec:  *cfg.RetryBackoffSec,
		chaos:            chaos.NewInjector(cfg.Chaos),
		backend:          backend,
		env:              compute.Env{Src: fs, Virtual: !cfg.Materialize, TileOps: rec.Enabled(), Interpret: cfg.Interpret},
		rec:              rec,
	}, nil
}

// FS exposes the engine's file system (tests use it for failure injection
// and accounting assertions).
func (e *Engine) FS() *dfs.FS { return e.fs }

// Store exposes the engine's tile store.
func (e *Engine) Store() *store.Store { return e.st }

// LoadDense ingests a dense in-memory matrix as the given stored matrix
// (external ingest: replicas placed randomly). Use with Materialize on.
func (e *Engine) LoadDense(meta store.Meta, d *linalg.Dense) error {
	return e.st.SaveDense(meta, d, -1)
}

// FetchOutput downloads a stored matrix into memory (Materialize mode).
func (e *Engine) FetchOutput(meta store.Meta) (*linalg.Dense, error) {
	return e.st.LoadDense(meta, -1)
}

// LoadVirtual registers an input matrix as virtual tiles of estimated
// sizes (external ingest: replicas placed randomly).
func (e *Engine) LoadVirtual(meta store.Meta) error {
	for ti := 0; ti < meta.TileRows(); ti++ {
		for tj := 0; tj < meta.TileCols(); tj++ {
			if err := e.fs.WriteVirtual(meta.TilePath(ti, tj), meta.EstTileBytes(ti, tj), -1); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run executes the plan's jobs in dependency order on the virtual cluster
// and returns the complete run metrics. Matrices produced by a previous
// run of the same plan are overwritten; intermediates are garbage
// collected at the end.
func (e *Engine) Run(p *plan.Plan) (*RunMetrics, error) {
	jobs, err := p.TopoOrder()
	if err != nil {
		return nil, err
	}
	points, err := e.checkpointSetup(p)
	if err != nil {
		return nil, err
	}
	// Overwrite semantics for re-runs; caches cannot carry stale tiles
	// across runs.
	for _, j := range jobs {
		e.st.DeleteMatrix(j.Out)
	}
	e.resetCaches()
	m := &RunMetrics{}
	resumeJob := -1
	startClock := 0.0
	if e.cfg.Resume {
		rj, clock, ok, err := e.restoreCheckpoint(p, m)
		if err != nil {
			return nil, err
		}
		if ok {
			resumeJob, startClock = rj, clock
		}
	}
	var slots []*slotState
	if resumeJob >= 0 {
		// Keep every node's slots (dead ones flagged) so global slot
		// indices match the uninterrupted run's.
		slots = e.allSlots()
	} else {
		slots = e.liveSlots()
	}
	alive := 0
	for _, s := range slots {
		if !s.dead {
			alive++
		}
	}
	if alive == 0 {
		return nil, fmt.Errorf("exec: no live nodes")
	}
	killAt := e.chaos.KillProgramAt()
	prog := e.rec.Start(obs.KindProgram, "program", obs.NoSpan, 0)
	jobEnds := map[int]float64{}
	globalEnd := startClock
	for _, j := range jobs {
		if j.ID <= resumeJob {
			jobEnds[j.ID] = startClock
			continue
		}
		if err := j.Split.Validate(j.ITiles(), j.JTiles(), j.KTiles(), j.Kind); err != nil {
			return nil, err
		}
		// Barrier mode waits for every prior job; overlap mode only for
		// this job's dependencies.
		ready := globalEnd
		if e.cfg.OverlapJobs {
			ready = 0
			for _, d := range j.Deps {
				if jobEnds[d] > ready {
					ready = jobEnds[d]
				}
			}
		}
		if killAt > 0 && ready >= killAt {
			return nil, &ProgramKilled{At: killAt, Clock: ready, NextJob: j.ID}
		}
		end, err := e.runJob(j, ready, slots, m, prog)
		if err != nil {
			return nil, fmt.Errorf("exec: %s: %w", j, err)
		}
		jobEnds[j.ID] = end
		if end > globalEnd {
			globalEnd = end
		}
		if pt, ok := points[j.ID]; ok {
			globalEnd, err = e.writeCheckpoint(p, pt, globalEnd, m, prog)
			if err != nil {
				return nil, err
			}
		}
	}
	m.TotalSeconds = globalEnd
	e.rec.End(prog, globalEnd)
	for _, im := range p.Intermediates() {
		e.st.DeleteMatrix(im)
	}
	return m, nil
}

// liveSlots builds the slot states of all live nodes.
func (e *Engine) liveSlots() []*slotState {
	var slots []*slotState
	for n := 0; n < e.cfg.Cluster.Nodes; n++ {
		if !e.fs.NodeAlive(n) {
			continue
		}
		for s := 0; s < e.cfg.Cluster.Slots; s++ {
			slots = append(slots, &slotState{node: n})
		}
	}
	return slots
}

// runJob executes one job that may start at virtual time start, on the
// shared slot pool, and returns the job's end time.
func (e *Engine) runJob(j *plan.Job, start float64, slots []*slotState, m *RunMetrics, prog obs.SpanID) (float64, error) {
	jobStart := start + e.jobStartupSec
	phases, cleanup, err := e.buildTasks(j)
	if err != nil {
		return 0, err
	}
	jspan := obs.NoSpan
	if e.rec.Enabled() {
		jspan = e.rec.Start(obs.KindJob, j.Name, prog, start)
		e.rec.SetAttrs(jspan, obs.Attrs{JobID: j.ID, Deps: j.Deps})
	}
	clock := jobStart
	nPhases := 0
	nTasks := 0
	for phase, tasks := range phases {
		end, err := e.schedulePhase(j.ID, phase, tasks, clock, slots, m, jspan)
		if err != nil {
			return 0, err
		}
		clock = end
		nPhases++
		nTasks += len(tasks)
	}
	e.rec.End(jspan, clock)
	for _, c := range cleanup {
		e.st.DeleteMatrix(c)
	}
	m.Jobs = append(m.Jobs, JobRecord{
		JobID:    j.ID,
		Name:     j.Name,
		Kind:     j.Kind.String(),
		Phases:   nPhases,
		Tasks:    nTasks,
		StartSec: start,
		EndSec:   clock,
	})
	return clock, nil
}

// slotState tracks one task slot of the virtual cluster.
type slotState struct {
	node   int
	freeAt float64
	dead   bool // node crashed mid-run; the slot accepts no further tasks
}

// schedulePhase runs one barrier-separated set of tasks with the greedy
// locality-aware list scheduler: whenever a slot frees, it takes a pending
// task that prefers its node if one exists, otherwise the oldest pending
// task. Tasks cannot start before notBefore (the phase's release time).
// Returns the phase end time.
func (e *Engine) schedulePhase(jobID, phase int, tasks []*task, notBefore float64, slots []*slotState, m *RunMetrics, jspan obs.SpanID) (float64, error) {
	pspan := obs.NoSpan
	if e.rec.Enabled() {
		pspan = e.rec.Start(obs.KindPhase, fmt.Sprintf("j%d/p%d", jobID, phase), jspan, notBefore)
		e.rec.SetAttrs(pspan, obs.Attrs{JobID: jobID, Phase: phase})
	}
	// Hand the phase's compute work to the backend up front: a worker
	// pool starts the tile math for every task now, while the scheduler
	// below consumes results in its own deterministic order (fetch blocks
	// per task). The sequential backend computes lazily inside fetch, so
	// with it, compute still interleaves with accounting exactly as the
	// pre-compute-layer engine did.
	cts := make([]*compute.Task, len(tasks))
	for _, t := range tasks {
		cts[t.index] = t.ct
	}
	fetch := e.backend.RunBatch(cts)
	var placements []specPlacement
	pending := append([]*task(nil), tasks...)
	end := notBefore
	for len(pending) > 0 {
		// Earliest-available slot; ties broken by slice order for
		// determinism. Availability accounts for the release time.
		avail := func(s *slotState) float64 {
			if s.freeAt < notBefore {
				return notBefore
			}
			return s.freeAt
		}
		best := -1
		for i, s := range slots {
			if s.dead {
				continue
			}
			if best < 0 || avail(s) < avail(slots[best]) {
				best = i
			}
		}
		if best < 0 {
			return 0, fmt.Errorf("phase %d: every task slot lost to node failures", phase)
		}
		// Deliver any scheduled node crash due by the time this slot would
		// start, then re-pick: the crash may have taken the chosen slot.
		if c, ok := e.chaos.NextCrash(avail(slots[best])); ok {
			e.fireCrash(c, slots, m, pspan, notBefore)
			continue
		}
		slot := slots[best]
		if slot.freeAt < notBefore {
			slot.freeAt = notBefore
		}
		// Prefer a node-local task, then a rack-local one.
		pick := -1
		rackPick := -1
		slotRack := e.fs.RackOf(slot.node)
		for i, t := range pending {
			if t.prefNode == slot.node {
				pick = i
				break
			}
			if rackPick < 0 && t.prefNode >= 0 && e.fs.RackOf(t.prefNode) == slotRack {
				rackPick = i
			}
		}
		if pick < 0 {
			pick = rackPick
		}
		if pick < 0 {
			pick = 0
		}
		t := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)

		rec, base, res, err := e.executeWithRetry(jobID, phase, t, slot, best, m, fetch)
		if err != nil {
			return 0, err
		}
		placements = append(placements, specPlacement{taskIdx: len(m.Tasks) - 1, base: base, slot: slot, res: res})
		if rec.StartSec+rec.Seconds > end {
			end = rec.StartSec + rec.Seconds
		}
	}
	if e.cfg.Speculation && len(placements) > 1 {
		end = e.speculate(placements, slots, m, end)
	}
	// Task spans are recorded only now, after speculation has rewritten any
	// straggler's finish time and node, so the trace reflects the final
	// schedule. Placements are in scheduling order, keeping the export
	// deterministic.
	if e.rec.Enabled() {
		for _, p := range placements {
			e.recordTaskSpan(pspan, m.Tasks[p.taskIdx], p.res, notBefore)
		}
		e.rec.End(pspan, end)
	}
	return end, nil
}

// recordTaskSpan emits the span of one finished task: its placement and
// byte attributes, a per-category breakdown normalized to sum exactly to
// the span duration, and one event per kernel kind the compute layer
// aggregated. The span covers the whole attempt chain — it opens when the
// first (possibly failed) attempt started, and the time lost to failed
// attempts is attributed to the recovery category, so retries surface on
// the critical path as recovery rather than inflating compute.
func (e *Engine) recordTaskSpan(pspan obs.SpanID, rec TaskRecord, res *compute.Result, notBefore float64) {
	firstStart := rec.StartSec - rec.RecoverySec
	id := e.rec.Start(obs.KindTask, fmt.Sprintf("j%d/p%d/t%d", rec.JobID, rec.Phase, rec.Index), pspan, firstStart)
	b := e.taskBreakdown(rec)
	if t := b.Total(); t > 0 {
		b = b.Scale(rec.Seconds / t)
	} else if rec.Seconds > 0 {
		b[obs.CatCompute] = rec.Seconds
	}
	b[obs.CatRecovery] = rec.RecoverySec
	queue := firstStart - notBefore
	if queue < 0 {
		queue = 0
	}
	e.rec.SetAttrs(id, obs.Attrs{
		JobID: rec.JobID, Phase: rec.Phase, Index: rec.Index,
		Node: rec.Node, Slot: rec.Slot,
		Flops:          rec.Flops,
		LocalReadBytes: rec.LocalReadBytes, RackReadBytes: rec.RackReadBytes,
		RemoteReadBytes: rec.RemoteReadBytes, CacheReadBytes: rec.CacheReadBytes,
		WriteBytes:  rec.WriteBytes,
		Retries:     rec.Retries,
		QueueSec:    queue,
		RecoverySec: rec.RecoverySec,
		Breakdown:   b,
	})
	if rec.Retries > 0 {
		e.rec.Event(id, fmt.Sprintf("retried x%d (+%.2fs recovery)", rec.Retries, rec.RecoverySec), firstStart)
	}
	if res != nil {
		for _, k := range res.Kernels {
			e.rec.Event(id, fmt.Sprintf("%s x%d (%d flops)", k.Kind, k.Count, k.Flops), rec.StartSec)
		}
	}
	e.rec.End(id, rec.StartSec+rec.Seconds)
}

// taskBreakdown attributes a task's noise-free duration to time
// categories, mirroring baseTaskSeconds: the disk component splits
// between local reads and writes by bytes, the network component between
// rack reads, penalty-weighted remote reads and replica write streams.
func (e *Engine) taskBreakdown(rec TaskRecord) obs.Breakdown {
	repl := int64(e.cfg.Replication)
	if n := int64(e.cfg.Cluster.Nodes); repl > n {
		repl = n
	}
	disk := rec.LocalReadBytes + rec.WriteBytes
	rackW := float64(rec.RackReadBytes)
	remoteW := float64(int64(float64(rec.RemoteReadBytes) * e.crossRackPenalty))
	writeW := float64(rec.WriteBytes * (repl - 1))
	net := int64(rackW + remoteW + writeW)
	startup, cpu, diskSec, netSec := e.cfg.Cluster.Type.TaskBreakdown(e.cfg.Cluster.Slots, rec.Flops, disk, net)
	var b obs.Breakdown
	b[obs.CatStartup] = startup
	b[obs.CatCompute] = cpu
	if disk > 0 {
		b[obs.CatLocalRead] += diskSec * float64(rec.LocalReadBytes) / float64(disk)
		b[obs.CatWrite] += diskSec * float64(rec.WriteBytes) / float64(disk)
	}
	if netW := rackW + remoteW + writeW; netW > 0 {
		b[obs.CatRackRead] += netSec * rackW / netW
		b[obs.CatRemoteRead] += netSec * remoteW / netW
		b[obs.CatWrite] += netSec * writeW / netW
	}
	return b
}

// specPlacement records where a task ran, its noise-free duration (for
// the speculation pass) and its compute result (for span recording).
type specPlacement struct {
	taskIdx int // index into m.Tasks
	base    float64
	slot    *slotState
	res     *compute.Result
}

// speculate applies Hadoop-style speculative execution to a finished
// phase schedule: tasks projected to finish later than 1.5x the median
// get a backup attempt on the earliest-free other slot, launched once the
// straggler is detectable (at the median finish time); the earlier
// finisher wins and the loser is killed. Returns the new phase end.
func (e *Engine) speculate(placements []specPlacement, slots []*slotState, m *RunMetrics, end float64) float64 {
	if len(placements) == 0 {
		return end
	}
	finishes := make([]float64, len(placements))
	for i, p := range placements {
		rec := &m.Tasks[p.taskIdx]
		finishes[i] = rec.StartSec + rec.Seconds
	}
	median := medianOf(finishes)
	threshold := 1.5 * median
	for i, p := range placements {
		rec := &m.Tasks[p.taskIdx]
		finish := finishes[i]
		if finish <= threshold {
			continue
		}
		// Earliest-free slot on a different live node.
		var backup *slotState
		for _, s := range slots {
			if s.dead || s == p.slot || s.node == rec.Node {
				continue
			}
			if backup == nil || s.freeAt < backup.freeAt {
				backup = s
			}
		}
		if backup == nil {
			continue
		}
		start := median
		if backup.freeAt > start {
			start = backup.freeAt
		}
		backupFinish := start + p.base*e.noiseFactor()
		if backupFinish >= finish {
			continue
		}
		// The backup wins: both slots free at the backup finish (the
		// original attempt is killed).
		rec.Seconds = backupFinish - rec.StartSec
		rec.Node = backup.node
		backup.freeAt = backupFinish
		if p.slot.freeAt > backupFinish {
			p.slot.freeAt = backupFinish
		}
		m.SpeculativeTasks++
		finishes[i] = backupFinish
	}
	newEnd := 0.0
	for _, f := range finishes {
		if f > newEnd {
			newEnd = f
		}
	}
	if newEnd > end {
		return end
	}
	return newEnd
}

func medianOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
	return s[len(s)/2]
}

// executeWithRetry runs a task on a slot, retrying a failed attempt on a
// different node (the Hadoop task-retry path) until the retry budget is
// exhausted, at which point the job fails terminally. Each failed attempt
// charges its startup cost plus an exponentially growing backoff on the
// original slot; the accumulated loss is reported as the record's
// RecoverySec. The compute result is node-independent, so a retry replays
// the same trace on the new node.
func (e *Engine) executeWithRetry(jobID, phase int, t *task, slot *slotState, slotIdx int, m *RunMetrics, fetch func(int) (*compute.Result, error)) (TaskRecord, float64, *compute.Result, error) {
	attempt := 0
	node := slot.node
	startAt := slot.freeAt
	retries := 0
	recovery := 0.0
	fail := func(err error) (TaskRecord, float64, *compute.Result, error) {
		return TaskRecord{}, 0, nil, fmt.Errorf("task %d/%d/%d failed after %d attempts: %w", jobID, phase, t.index, attempt+1, err)
	}
	for {
		var w work
		var res *compute.Result
		var err error
		if e.chaos.TaskFault(jobID, phase, t.index, attempt) {
			err = fmt.Errorf("chaos: injected task fault")
		} else {
			res, err = fetch(t.index)
			if err == nil {
				if p := firstReadPath(res); e.chaos.ReadFault(p, jobID, phase, t.index, attempt) {
					err = fmt.Errorf("chaos: transient read error on %s", p)
				} else {
					w, err = e.applyResult(res, node)
				}
			}
		}
		if err != nil {
			if retries >= e.maxTaskRetries {
				return fail(err)
			}
			// Charge the failed attempt's startup plus backoff, then move
			// to another node.
			penalty := e.cfg.Cluster.Type.StartupSec + e.retryBackoffSec*float64(uint(1)<<uint(retries))
			startAt += penalty
			recovery += penalty
			retries++
			attempt++
			next, perr := e.pickOtherNode(node)
			if perr != nil {
				return fail(perr)
			}
			node = next
			continue
		}
		base := e.baseTaskSeconds(w)
		dur := base * e.noiseFactor()
		slot.freeAt = startAt + dur
		rec := TaskRecord{
			JobID: jobID, Phase: phase, Index: t.index, Node: node, Slot: slotIdx,
			Flops:          w.flops,
			LocalReadBytes: w.localBytes, RackReadBytes: w.rackBytes, RemoteReadBytes: w.remoteBytes,
			CacheReadBytes: w.cacheBytes,
			WriteBytes:     w.writeBytes,
			StartSec:       startAt, Seconds: dur,
			Retries: retries, RecoverySec: recovery,
		}
		m.addTask(rec)
		return rec, base, res, nil
	}
}

// firstReadPath returns the path of the task's first traced read, the
// input a transient read fault is pinned to.
func firstReadPath(res *compute.Result) string {
	for _, op := range res.Ops {
		if !op.Write {
			return op.Path
		}
	}
	return ""
}

// pickOtherNode returns a live node other than not, scanning in rotation
// order from not so repeated failures walk the cluster instead of piling
// onto node 0. When no other live node exists it returns an error so the
// retry path terminates instead of re-running on the same possibly-dead
// node.
func (e *Engine) pickOtherNode(not int) (int, error) {
	n := e.cfg.Cluster.Nodes
	for i := 1; i <= n; i++ {
		c := (not + i) % n
		if c != not && e.fs.NodeAlive(c) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("no other live node to retry on (cluster of %d)", n)
}

// fireCrash delivers one scheduled node crash: the DFS node dies and
// re-replicates, the node's slots are retired, and the recovery work is
// counted and recorded as a phase event.
func (e *Engine) fireCrash(c chaos.NodeCrash, slots []*slotState, m *RunMetrics, pspan obs.SpanID, notBefore float64) {
	rep := e.fs.KillNode(c.Node)
	for _, s := range slots {
		if s.node == c.Node {
			s.dead = true
		}
	}
	m.NodeCrashes++
	m.RereplicatedBytes += rep.BytesMoved
	m.BlocksLost += rep.BlocksLost
	if e.rec.Enabled() {
		at := c.At
		if at < notBefore {
			at = notBefore
		}
		e.rec.Event(pspan, fmt.Sprintf("crash node %d: recovered %d blocks (%d bytes moved, %d replicas added, %d blocks lost)",
			c.Node, rep.BlocksRecovered, rep.BytesMoved, rep.ReplicasAdded, rep.BlocksLost), at)
	}
}

// baseTaskSeconds converts a task's work profile into noise-free virtual
// seconds on the configured machine type.
func (e *Engine) baseTaskSeconds(w work) float64 {
	repl := int64(e.cfg.Replication)
	if n := int64(e.cfg.Cluster.Nodes); repl > n {
		repl = n
	}
	disk := w.localBytes + w.writeBytes
	net := w.rackBytes + int64(float64(w.remoteBytes)*e.crossRackPenalty) +
		w.writeBytes*(repl-1)
	return e.cfg.Cluster.Type.TaskSeconds(e.cfg.Cluster.Slots, w.flops, disk, net)
}

// noiseFactor samples one multiplicative straggler factor (>= 1).
func (e *Engine) noiseFactor() float64 {
	if e.cfg.NoiseFactor > 0 {
		return 1 + e.cfg.NoiseFactor*e.rng.ExpFloat64()
	}
	return 1
}
