package exec

import (
	"math"
	"testing"

	"cumulon/internal/obs"
)

// TestTraceCriticalPathCoversRun is the acceptance invariant for the obs
// integration: on a recorded GNMF run the critical path must tile the
// whole program — its total equals RunMetrics.TotalSeconds and the
// per-category attribution sums back to that total within 1% (the
// breakdown is scaled to each span's duration, so it should be exact up
// to float error).
func TestTraceCriticalPathCoversRun(t *testing.T) {
	tr := obs.NewTrace()
	_, m := runGNMF(t, nil, nil, tr)

	prog, err := tr.Program()
	if err != nil {
		t.Fatal(err)
	}
	if d := prog.End - prog.Start; math.Abs(d-m.TotalSeconds) > 1e-9 {
		t.Fatalf("program span duration %.9f != RunMetrics.TotalSeconds %.9f", d, m.TotalSeconds)
	}

	cp, err := tr.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp.TotalSeconds-m.TotalSeconds) > 1e-9 {
		t.Fatalf("critical path total %.9f != run total %.9f", cp.TotalSeconds, m.TotalSeconds)
	}

	// Steps must tile [0, Total] with no gaps or overlaps.
	at := 0.0
	for i, s := range cp.Steps {
		if math.Abs(s.Start-at) > 1e-9 {
			t.Fatalf("step %d (%s) starts at %.9f, previous ended at %.9f", i, s.Name, s.Start, at)
		}
		if s.End < s.Start {
			t.Fatalf("step %d (%s) has negative duration", i, s.Name)
		}
		at = s.End
	}
	if math.Abs(at-cp.TotalSeconds) > 1e-9 {
		t.Fatalf("steps end at %.9f, want %.9f", at, cp.TotalSeconds)
	}

	catSum := cp.Categories.Total()
	if rel := math.Abs(catSum-cp.TotalSeconds) / cp.TotalSeconds; rel > 0.01 {
		t.Fatalf("category attribution %.6f vs total %.6f: rel err %.4f > 1%%",
			catSum, cp.TotalSeconds, rel)
	}
	if cp.Categories[obs.CatCompute] <= 0 {
		t.Fatal("GNMF critical path attributes no compute time")
	}
	if cp.Categories[obs.CatStartup] <= 0 {
		t.Fatal("critical path attributes no job startup despite JobStartupSec default")
	}
}
