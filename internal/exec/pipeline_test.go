package exec

import (
	"bytes"
	"reflect"
	"testing"

	"cumulon/internal/chaos"
	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/obs"
	"cumulon/internal/plan"
)

// rsvdSrc is the sketching stage of randomized SVD with two power
// iterations: transposed prologues and deep product chains, no epilogues.
const rsvdSrc = `
input A 24 16
input Omega 16 4
B = A * Omega
B = A * (A' * B)
B = A * (A' * B)
output B
`

// gnmfKLSrc is two KL-divergence GNMF iterations (Lee & Seung's Jacobi
// form): both factor updates read V ./ (W * H) at the same W and H
// versions, so the CSE pass hoists one W*H product per iteration.
const gnmfKLSrc = `
input V 12 10 sparse
input W 12 3
input H 3 10
input U 12 10
Hn = H .* (W' * (V ./ (W * H))) ./ (W' * U)
W = W .* ((V ./ (W * H)) * H') ./ (U * H')
H = Hn
Hn = H .* (W' * (V ./ (W * H))) ./ (W' * U)
W = W .* ((V ./ (W * H)) * H') ./ (U * H')
H = Hn
output W
output H
`

// runGNMFEval is runGNMF with the evaluator selectable: interpret forces
// the tree-walking oracle, false runs the compiled tile pipelines.
func runGNMFEval(t *testing.T, interpret bool, sched *chaos.Schedule, rec obs.Recorder) (map[string]*linalg.Dense, *RunMetrics) {
	t.Helper()
	e, err := New(Config{
		Cluster:       testCluster(t, 4, 2),
		Materialize:   true,
		Interpret:     interpret,
		Seed:          7,
		NoiseFactor:   0.08,
		RackSize:      2,
		CacheFraction: 0.4,
		Speculation:   true,
		Chaos:         sched,
		Recorder:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	outs, m, _ := runProgram(t, e, gnmfSrc,
		plan.Config{Densities: map[string]float64{"V": 0.25}},
		gnmfData(), 8)
	return outs, m
}

// TestCompiledPipelineMatchesInterpreter is the dual-evaluator contract,
// end to end: the compiled tile pipelines must reproduce the tree-walking
// interpreter byte-for-byte on the full GNMF iteration — identical
// RunMetrics (virtual times, placement, byte accounting), bitwise-equal
// output matrices, and byte-identical Chrome trace exports (same reads in
// the same order, same flop charges, same kernel stats). This is what
// lets the compiled path go default-on without re-recording any goldens.
func TestCompiledPipelineMatchesInterpreter(t *testing.T) {
	intTr, compTr := obs.NewTrace(), obs.NewTrace()
	intOuts, intM := runGNMFEval(t, true, nil, intTr)
	compOuts, compM := runGNMFEval(t, false, nil, compTr)

	if !reflect.DeepEqual(intM, compM) {
		t.Fatalf("RunMetrics diverge between evaluators:\ninterp:   %+v\ncompiled: %+v", intM, compM)
	}
	for name, id := range intOuts {
		cd := compOuts[name]
		if cd == nil {
			t.Fatalf("compiled run missing output %s", name)
		}
		if !reflect.DeepEqual(id.Data, cd.Data) {
			t.Fatalf("output %s not bitwise identical between evaluators (maxdiff %g)",
				name, id.MaxAbsDiff(cd))
		}
	}
	var intOut, compOut bytes.Buffer
	if err := intTr.WriteChrome(&intOut); err != nil {
		t.Fatal(err)
	}
	if err := compTr.WriteChrome(&compOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(intOut.Bytes(), compOut.Bytes()) {
		t.Fatalf("trace exports diverge between evaluators: interp %d bytes, compiled %d bytes",
			intOut.Len(), compOut.Len())
	}
	if len(intTr.Events()) == 0 {
		t.Fatal("trace recorded no kernel events; test exercises nothing")
	}
}

// TestCompiledPipelineMatchesInterpreterUnderFaults repeats the contract
// under a probabilistic chaos schedule: retries, re-replication and
// speculative copies must not tell the evaluators apart either.
func TestCompiledPipelineMatchesInterpreterUnderFaults(t *testing.T) {
	sched := &chaos.Schedule{Seed: 5, TaskFaultProb: 0.12, ReadFaultProb: 0.04}
	intOuts, intM := runGNMFEval(t, true, sched, nil)
	compOuts, compM := runGNMFEval(t, false, sched, nil)

	if !reflect.DeepEqual(intM, compM) {
		t.Fatalf("RunMetrics diverge under faults:\ninterp:   %+v\ncompiled: %+v", intM, compM)
	}
	for name, id := range intOuts {
		if !reflect.DeepEqual(id.Data, compOuts[name].Data) {
			t.Fatalf("output %s diverges under faults (maxdiff %g)",
				name, id.MaxAbsDiff(compOuts[name]))
		}
	}
	if intM.TotalRetries == 0 {
		t.Fatal("chaos schedule produced no retries; test exercises nothing")
	}
}

// TestCompiledPipelineRSVD extends the dual-evaluator check to the RSVD
// power iteration — transposed prologues and deep product chains, no
// epilogues — in virtual mode, where only traces and accounting exist.
func TestCompiledPipelineRSVD(t *testing.T) {
	run := func(interpret bool) *RunMetrics {
		e, err := New(Config{
			Cluster:     testCluster(t, 3, 2),
			Interpret:   interpret,
			Seed:        7,
			NoiseFactor: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(rsvdSrc)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		pl.AutoSplit(6)
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	intM, compM := run(true), run(false)
	if !reflect.DeepEqual(intM, compM) {
		t.Fatalf("virtual RSVD metrics diverge:\ninterp:   %+v\ncompiled: %+v", intM, compM)
	}
}

// TestGNMFKLRunsCorrectlyWithCSE executes the KL-divergence GNMF variant
// — whose repeated V⊘(WH) product the CSE pass hoists into a shared
// temporary job — materialized, and checks the outputs against the
// language interpreter oracle on the *original* program. The plan runs
// one mul job fewer per iteration and must still compute the same
// factorization.
func TestGNMFKLRunsCorrectlyWithCSE(t *testing.T) {
	prog, err := lang.Parse(gnmfKLSrc)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string]*linalg.Dense{
		"V": linalg.RandomSparseDense(12, 10, 0.4, 11),
		"W": linalg.RandomDense(12, 3, 12).Map(func(x float64) float64 { return x + 0.5 }),
		"H": linalg.RandomDense(3, 10, 13).Map(func(x float64) float64 { return x + 0.5 }),
		// U is the all-ones matrix in the KL update rule.
		"U": linalg.ConstDense(12, 10, 1),
	}

	e, err := New(Config{
		Cluster:     testCluster(t, 3, 2),
		Materialize: true,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(prog, plan.Config{TileSize: 4, Densities: map[string]float64{"V": 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Rewrites == nil || pl.Rewrites.Chains() != 2 {
		t.Fatalf("expected 2 hoisted chains, got %v", pl.Rewrites)
	}
	pl.AutoSplit(6)
	for _, in := range pl.Inputs {
		if err := e.LoadDense(in, data[in.Name]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(pl); err != nil {
		t.Fatal(err)
	}
	want, err := lang.Interpret(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"W", "H"} {
		got, err := e.FetchOutput(pl.Outputs[name])
		if err != nil {
			t.Fatal(err)
		}
		if !got.AlmostEqual(want[name], 1e-9) {
			t.Fatalf("output %s off oracle by %g", name, got.MaxAbsDiff(want[name]))
		}
	}
}

// BenchmarkGNMFEvaluator times one materialized GNMF iteration through
// the full engine with the tree-walking interpreter vs the compiled tile
// pipelines — the end-to-end wall-clock value of single-pass map
// evaluation and GEMM epilogue fusion (EXPERIMENTS.md).
func BenchmarkGNMFEvaluator(b *testing.B) {
	const src = `
input V 768 768 sparse
input W 768 16
input H 16 768
H = H .* (W' * V) ./ ((W' * W) * H)
W = W .* (V * H') ./ (W * (H * H'))
output W
output H
`
	data := map[string]*linalg.Dense{
		"V": linalg.RandomSparseDense(768, 768, 0.1, 31),
		"W": linalg.RandomDense(768, 16, 32).Map(func(x float64) float64 { return x + 0.5 }),
		"H": linalg.RandomDense(16, 768, 33).Map(func(x float64) float64 { return x + 0.5 }),
	}
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name      string
		interpret bool
	}{{"naive", true}, {"fused", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := New(Config{
					Cluster:     cl,
					Materialize: true,
					Interpret:   mode.interpret,
					Seed:        7,
				})
				if err != nil {
					b.Fatal(err)
				}
				prog, err := lang.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				pl, err := plan.Compile(prog, plan.Config{TileSize: 256, Densities: map[string]float64{"V": 0.1}})
				if err != nil {
					b.Fatal(err)
				}
				pl.AutoSplit(1)
				for _, in := range pl.Inputs {
					if err := e.LoadDense(in, data[in.Name]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := e.Run(pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
