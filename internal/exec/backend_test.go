package exec

import (
	"bytes"
	"reflect"
	"testing"

	"cumulon/internal/chaos"
	"cumulon/internal/compute"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/obs"
	"cumulon/internal/plan"
)

// gnmfSrc is a full GNMF iteration: k-split products, fused epilogues,
// element-wise jobs and a masked multiply all in one plan, so a backend
// equivalence run exercises every task kind.
const gnmfSrc = `
input V 26 22 sparse
input W 26 4
input H 4 22
H = H .* (W' * V) ./ ((W' * W) * H)
W = W .* (V * H') ./ (W * (H * H'))
output W
output H
`

func gnmfData() map[string]*linalg.Dense {
	return map[string]*linalg.Dense{
		"V": linalg.RandomSparseDense(26, 22, 0.25, 31),
		"W": linalg.RandomDense(26, 4, 32).Map(func(x float64) float64 { return x + 0.5 }),
		"H": linalg.RandomDense(4, 22, 33).Map(func(x float64) float64 { return x + 0.5 }),
	}
}

// runGNMF executes the GNMF iteration materialized on a racked, cached,
// noisy, speculating cluster with the given backend (nil = engine default),
// optional chaos schedule and optional span recorder.
func runGNMF(t *testing.T, be compute.Backend, sched *chaos.Schedule, rec obs.Recorder) (map[string]*linalg.Dense, *RunMetrics) {
	t.Helper()
	e, err := New(Config{
		Cluster:       testCluster(t, 4, 2),
		Materialize:   true,
		Seed:          7,
		NoiseFactor:   0.08,
		RackSize:      2,
		CacheFraction: 0.4,
		Speculation:   true,
		Backend:       be,
		Chaos:         sched,
		Recorder:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	outs, m, _ := runProgram(t, e, gnmfSrc,
		plan.Config{Densities: map[string]float64{"V": 0.25}},
		gnmfData(), 8)
	return outs, m
}

// TestPoolBackendMatchesSequential is the backend-equivalence contract: a
// worker pool far wider than GOMAXPROCS must reproduce the sequential
// reference byte-for-byte — identical RunMetrics (virtual times, placement,
// byte accounting, task durations) and bitwise-identical output matrices.
func TestPoolBackendMatchesSequential(t *testing.T) {
	seqOuts, seqM := runGNMF(t, compute.NewSequential(), nil, nil)
	poolOuts, poolM := runGNMF(t, compute.NewPool(8), nil, nil)

	if !reflect.DeepEqual(seqM, poolM) {
		t.Fatalf("RunMetrics diverge between backends:\nseq:  %+v\npool: %+v", seqM, poolM)
	}
	for name, sd := range seqOuts {
		pd := poolOuts[name]
		if pd == nil {
			t.Fatalf("pool run missing output %s", name)
		}
		if !reflect.DeepEqual(sd.Data, pd.Data) {
			t.Fatalf("output %s not bitwise identical between backends (maxdiff %g)",
				name, sd.MaxAbsDiff(pd))
		}
	}

	// Both must also be right, not merely identical: compare against the
	// language interpreter oracle.
	prog, err := lang.Parse(gnmfSrc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lang.Interpret(prog, gnmfData())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"W", "H"} {
		if !seqOuts[name].AlmostEqual(want[name], 1e-9) {
			t.Fatalf("output %s off oracle by %g", name, seqOuts[name].MaxAbsDiff(want[name]))
		}
	}
}

// TestPoolBackendMatchesSequentialUnderFaults repeats the equivalence check
// with a probabilistic chaos schedule: fault decisions are hashed from the
// task coordinates, so both backends see the same failures and retries
// replay pool-computed results on the retry node exactly as the sequential
// engine would.
func TestPoolBackendMatchesSequentialUnderFaults(t *testing.T) {
	sched := &chaos.Schedule{Seed: 5, TaskFaultProb: 0.12, ReadFaultProb: 0.04}
	seqOuts, seqM := runGNMF(t, compute.NewSequential(), sched, nil)
	poolOuts, poolM := runGNMF(t, compute.NewPool(8), sched, nil)

	if !reflect.DeepEqual(seqM, poolM) {
		t.Fatalf("RunMetrics diverge under faults:\nseq:  %+v\npool: %+v", seqM, poolM)
	}
	for name, sd := range seqOuts {
		if !reflect.DeepEqual(sd.Data, poolOuts[name].Data) {
			t.Fatalf("output %s diverges under faults (maxdiff %g)",
				name, sd.MaxAbsDiff(poolOuts[name]))
		}
	}
	if seqM.TotalRetries == 0 {
		t.Fatal("chaos schedule produced no retries; test exercises nothing")
	}
}

// TestBackendTraceExportsIdentical extends the backend-equivalence
// contract to observability: the sequential and worker-pool backends must
// produce byte-identical Chrome trace exports for the same seed — span
// recording happens only at replay, in scheduling order, so compute
// parallelism must leave no fingerprint (not even in the per-task kernel
// events, which workers accumulate privately).
func TestBackendTraceExportsIdentical(t *testing.T) {
	sched := &chaos.Schedule{Seed: 5, TaskFaultProb: 0.12, ReadFaultProb: 0.04}
	seqTr := obs.NewTrace()
	poolTr := obs.NewTrace()
	runGNMF(t, compute.NewSequential(), sched, seqTr)
	runGNMF(t, compute.NewPool(8), sched, poolTr)

	var seqOut, poolOut bytes.Buffer
	if err := seqTr.WriteChrome(&seqOut); err != nil {
		t.Fatal(err)
	}
	if err := poolTr.WriteChrome(&poolOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqOut.Bytes(), poolOut.Bytes()) {
		t.Fatalf("trace exports diverge between backends:\nseq %d bytes, pool %d bytes",
			seqOut.Len(), poolOut.Len())
	}
	if len(seqTr.SpansOf(obs.KindTask)) == 0 {
		t.Fatal("trace recorded no task spans; test exercises nothing")
	}
	if len(seqTr.Events()) == 0 {
		t.Fatal("trace recorded no kernel events; test exercises nothing")
	}
}

// TestConfigZeroValueOverrides covers the pointer-or-default semantics of
// JobStartupSec and CrossRackPenalty: nil selects the documented defaults,
// while Float(0) is an honored explicit zero, not "unset".
func TestConfigZeroValueOverrides(t *testing.T) {
	d := Config{}.withDefaults()
	if *d.JobStartupSec != 6 {
		t.Fatalf("default JobStartupSec = %g, want 6", *d.JobStartupSec)
	}
	if *d.CrossRackPenalty != 1 {
		t.Fatalf("default CrossRackPenalty (no racks) = %g, want 1", *d.CrossRackPenalty)
	}
	r := Config{RackSize: 2}.withDefaults()
	if *r.CrossRackPenalty != 2 {
		t.Fatalf("default CrossRackPenalty (racked) = %g, want 2", *r.CrossRackPenalty)
	}
	z := Config{JobStartupSec: Float(0), CrossRackPenalty: Float(0), RackSize: 2}.withDefaults()
	if *z.JobStartupSec != 0 {
		t.Fatalf("explicit JobStartupSec = %g, want 0", *z.JobStartupSec)
	}
	if *z.CrossRackPenalty != 0 {
		t.Fatalf("explicit CrossRackPenalty = %g, want 0", *z.CrossRackPenalty)
	}
}

// TestZeroJobStartupShortensRun is the behavioral half: an explicit zero
// startup must actually remove the per-job overhead from the timeline.
func TestZeroJobStartupShortensRun(t *testing.T) {
	run := func(startup *float64) *RunMetrics {
		e, err := New(Config{
			Cluster:       testCluster(t, 3, 2),
			Seed:          7,
			JobStartupSec: startup,
		})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(`
input A 16 16
input B 16 16
C = A * B
D = C * B
output D
`)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		pl.AutoSplit(6)
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	def := run(nil)
	zero := run(Float(0))
	if len(def.Jobs) < 2 {
		t.Fatalf("want a multi-job plan, got %d jobs", len(def.Jobs))
	}
	diff := def.TotalSeconds - zero.TotalSeconds
	want := 6 * float64(len(def.Jobs))
	if diff < want-1e-6 || diff > want+1e-6 {
		t.Fatalf("removing job startup saved %.6fs over %d jobs, want %.6fs",
			diff, len(def.Jobs), want)
	}
}
