package exec

import (
	"fmt"
	"math/rand"

	"cumulon/internal/chaos"
	"cumulon/internal/ckpt"
	"cumulon/internal/obs"
	"cumulon/internal/plan"
	"cumulon/internal/store"
)

// ProgramKilled is the error Run returns when the chaos schedule's
// kill-program entry fires: the engine aborts deterministically instead
// of starting the first job released at or after the scheduled time.
// Everything already checkpointed survives; a later run with Resume set
// picks up from the last boundary.
type ProgramKilled struct {
	// At is the scheduled kill time.
	At float64
	// Clock is the virtual time of the aborted job's release.
	Clock float64
	// NextJob is the job that was about to start.
	NextJob int
}

func (e *ProgramKilled) Error() string {
	return fmt.Sprintf("exec: program killed at %.3fs (scheduled %.3fs, before job %d)", e.Clock, e.At, e.NextJob)
}

// ckptPoint is one boundary the run will checkpoint at, keyed in the
// points map by its LastJob.
type ckptPoint struct {
	iter int // 1-based ordinal among the plan's boundaries
	b    plan.Boundary
}

// checkpointSetup validates the checkpoint/resume configuration against
// the plan, computes the program and config identity hashes, and
// returns the boundaries to checkpoint at, keyed by boundary job ID.
// Returns nil when checkpointing is off.
func (e *Engine) checkpointSetup(p *plan.Plan) (map[int]ckptPoint, error) {
	every := e.cfg.CheckpointEvery
	if every < 0 {
		return nil, fmt.Errorf("exec: negative CheckpointEvery %d", every)
	}
	if e.cfg.Resume {
		if every == 0 {
			return nil, fmt.Errorf("exec: Resume requires CheckpointEvery > 0 (the cadence is part of the checkpoint identity)")
		}
		if e.cfg.CheckpointStore == nil {
			return nil, fmt.Errorf("exec: Resume requires a CheckpointStore")
		}
	}
	if every == 0 {
		return nil, nil
	}
	// Checkpoints are barriers on the global clock; the overlap
	// scheduler's per-job release bookkeeping cannot be restored from one.
	if e.cfg.OverlapJobs {
		return nil, fmt.Errorf("exec: checkpointing requires barrier scheduling (disable OverlapJobs)")
	}
	e.progHash = ckpt.HashString(p.Program.String())
	e.cfgHash = e.configHash(p)
	lastJob := -1
	if n := len(p.Jobs); n > 0 {
		lastJob = p.Jobs[n-1].ID
	}
	points := map[int]ckptPoint{}
	for i, b := range p.Boundaries {
		if (i+1)%every != 0 {
			continue
		}
		if b.LastJob >= lastJob {
			continue // nothing runs after it; a checkpoint there is pure cost
		}
		points[b.LastJob] = ckptPoint{iter: i + 1, b: b}
	}
	return points, nil
}

// configHash fingerprints every configuration input that shapes the
// run's timeline and placement. A checkpoint resumes only under the
// exact same fingerprint. The chaos schedule is included minus its
// kill-program entry: the killed run and the resuming run differ only
// in that entry, and it never affects the surviving prefix.
func (e *Engine) configHash(p *plan.Plan) string {
	s := fmt.Sprintf(
		"type=%s nodes=%d slots=%d repl=%d mat=%t interp=%t seed=%d noise=%g jobstartup=%g retries=%d backoff=%g rack=%d xrack=%g cache=%g spec=%t tile=%d every=%d chaos=%q targets=%v",
		e.cfg.Cluster.Type.Name, e.cfg.Cluster.Nodes, e.cfg.Cluster.Slots,
		e.cfg.Replication, e.cfg.Materialize, e.cfg.Interpret,
		e.cfg.Seed, e.cfg.NoiseFactor, e.jobStartupSec,
		e.maxTaskRetries, e.retryBackoffSec,
		e.cfg.RackSize, e.crossRackPenalty, e.cfg.CacheFraction,
		e.cfg.Speculation, p.TileSize, e.cfg.CheckpointEvery,
		sanitizeChaos(e.cfg.Chaos).String(), sanitizeTargets(e.cfg.Chaos),
	)
	return ckpt.HashString(s)
}

// sanitizeChaos strips the kill-program entry from a schedule; a
// schedule that injects nothing else collapses to nil so that a plain
// run and a run that differs only by kill-program@t hash identically.
func sanitizeChaos(s *chaos.Schedule) *chaos.Schedule {
	if s == nil {
		return nil
	}
	c := *s
	c.KillProgramAt = 0
	if len(c.Crashes) == 0 && c.TaskFaultProb == 0 && c.ReadFaultProb == 0 && len(c.Targets) == 0 {
		return nil
	}
	return &c
}

// sanitizeTargets renders the targeted faults (not covered by
// Schedule.String) for the config fingerprint.
func sanitizeTargets(s *chaos.Schedule) []chaos.TargetFault {
	if s == nil {
		return nil
	}
	return s.Targets
}

// mixSeed derives the boundary-local seed for stream s (splitmix64
// finalizer): every iteration boundary restarts the noise and placement
// random streams from mixSeed(seed, stmt), which is what makes a
// resumed tail bit-identical to the uninterrupted run's tail.
func mixSeed(seed int64, stmt int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(stmt+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// boundaryReset is the deterministic state barrier taken at every
// checkpoint boundary, in the checkpointing run and the resuming run
// alike: node tile caches flush (their contents are not persisted) and
// both random streams reseed from the boundary position.
func (e *Engine) boundaryReset(stmt int) {
	e.resetCaches()
	e.rng = rand.New(rand.NewSource(mixSeed(e.cfg.Seed, stmt)))
	e.fs.Reseed(mixSeed(e.cfg.Seed+1, stmt))
}

// writeCheckpoint persists the program state at a boundary — every
// matrix materialized by the jobs up to it, with exact block placement —
// charges the write to the virtual clock as a CatCheckpoint span, and
// performs the boundary reset. Returns the post-checkpoint clock.
func (e *Engine) writeCheckpoint(p *plan.Plan, pt ckptPoint, clock float64, m *RunMetrics, prog obs.SpanID) (float64, error) {
	man := &ckpt.Manifest{
		FormatVersion:  ckpt.Version,
		Program:        e.progHash,
		Config:         e.cfgHash,
		Iter:           pt.iter,
		Stmt:           pt.b.Stmt,
		BoundaryJob:    pt.b.LastJob,
		ChaosDelivered: e.chaos.Delivered(),
	}
	payloads := map[string][]byte{}
	var tileBytes int64
	for _, j := range p.Jobs {
		if j.ID > pt.b.LastJob {
			continue
		}
		mx := ckpt.Matrix{
			Name: j.Out.Name, Rows: j.Out.Rows, Cols: j.Out.Cols,
			TileSize: j.Out.TileSize, Sparse: j.Out.Sparse, Density: j.Out.Density,
		}
		paths := e.fs.List(store.MatrixPrefix(j.Out.Name))
		if len(paths) == 0 {
			return 0, fmt.Errorf("exec: checkpoint@s%d: matrix %s has no tiles", pt.b.Stmt, j.Out.Name)
		}
		for _, path := range paths {
			size, err := e.fs.Size(path)
			if err != nil {
				return 0, fmt.Errorf("exec: checkpoint@s%d: %w", pt.b.Stmt, err)
			}
			reps, err := e.fs.BlockReplicas(path)
			if err != nil {
				return 0, fmt.Errorf("exec: checkpoint@s%d: %w", pt.b.Stmt, err)
			}
			t := ckpt.Tile{Path: path, Bytes: size, Replicas: reps}
			if e.cfg.Materialize {
				data, err := e.fs.Peek(path)
				if err != nil {
					return 0, fmt.Errorf("exec: checkpoint@s%d: %w", pt.b.Stmt, err)
				}
				t.Digest = ckpt.HashBytes(data)
				payloads[t.Digest] = data
			}
			tileBytes += size
			mx.Tiles = append(mx.Tiles, t)
		}
		man.Matrices = append(man.Matrices, mx)
	}
	for n := 0; n < e.cfg.Cluster.Nodes; n++ {
		if !e.fs.NodeAlive(n) {
			man.DeadNodes = append(man.DeadNodes, n)
		}
	}
	// The checkpoint streams every tile back to durable storage; model it
	// as one cluster-wide write of the checkpointed bytes at replication
	// cost, serialized on the global clock (it is a barrier).
	repl := int64(e.cfg.Replication)
	if n := int64(e.cfg.Cluster.Nodes); repl > n {
		repl = n
	}
	dur := e.cfg.Cluster.Type.TaskSeconds(e.cfg.Cluster.Slots, 0, tileBytes, tileBytes*(repl-1))
	end := clock + dur
	man.ClockSec = end
	if err := man.Seal(); err != nil {
		return 0, err
	}
	if e.cfg.CheckpointStore != nil {
		if err := e.cfg.CheckpointStore.Save(&ckpt.Checkpoint{Manifest: man, Payloads: payloads}); err != nil {
			return 0, fmt.Errorf("exec: checkpoint@s%d: %w", pt.b.Stmt, err)
		}
	}
	if e.rec.Enabled() {
		// Negative JobID keeps checkpoint spans out of the real jobs' ID
		// space for the critical-path and timeline consumers.
		name := fmt.Sprintf("checkpoint@s%d", pt.b.Stmt)
		js := e.rec.Start(obs.KindJob, name, prog, clock)
		e.rec.SetAttrs(js, obs.Attrs{JobID: -pt.b.Stmt})
		ps := e.rec.Start(obs.KindPhase, name+"/p0", js, clock)
		e.rec.SetAttrs(ps, obs.Attrs{JobID: -pt.b.Stmt, Phase: 0})
		ts := e.rec.Start(obs.KindTask, name+"/t0", ps, clock)
		var b obs.Breakdown
		b[obs.CatCheckpoint] = dur
		e.rec.SetAttrs(ts, obs.Attrs{
			JobID: -pt.b.Stmt, Phase: 0, Index: 0, Node: -1, Slot: -1,
			WriteBytes: tileBytes, Breakdown: b,
		})
		e.rec.End(ts, end)
		e.rec.End(ps, end)
		e.rec.End(js, end)
	}
	m.Checkpoints++
	m.CheckpointBytes += tileBytes
	m.CheckpointSeconds += dur
	e.boundaryReset(pt.b.Stmt)
	return end, nil
}

// restoreCheckpoint loads the newest valid checkpoint for this
// (program, config) identity and rebuilds the boundary state: dead
// nodes, tile placement and payloads, the chaos cursor, the random
// streams, and the clock. Returns the boundary job ID and clock, or
// ok=false when no checkpoint exists (the run starts from scratch).
func (e *Engine) restoreCheckpoint(p *plan.Plan, m *RunMetrics) (resumeJob int, clock float64, ok bool, err error) {
	c, err := e.cfg.CheckpointStore.Latest(e.progHash, e.cfgHash)
	if err != nil {
		return 0, 0, false, fmt.Errorf("exec: resume: %w", err)
	}
	if c == nil {
		return 0, 0, false, nil
	}
	man := c.Manifest
	// Stores validate on load; re-check here so a custom Store cannot
	// hand the engine a corrupted manifest.
	if err := man.Validate(); err != nil {
		return 0, 0, false, fmt.Errorf("exec: resume: %w", err)
	}
	if man.Program != e.progHash || man.Config != e.cfgHash {
		return 0, 0, false, fmt.Errorf("exec: resume: checkpoint identity mismatch")
	}
	match := false
	for _, b := range p.Boundaries {
		if b.Stmt == man.Stmt && b.LastJob == man.BoundaryJob {
			match = true
			break
		}
	}
	if !match {
		return 0, 0, false, fmt.Errorf("exec: resume: manifest boundary (stmt %d, job %d) is not a boundary of this plan", man.Stmt, man.BoundaryJob)
	}
	// The manifest must cover exactly the outputs of the skipped jobs.
	want := map[string]bool{}
	for _, j := range p.Jobs {
		if j.ID <= man.BoundaryJob {
			want[j.Out.Name] = true
		}
	}
	got := map[string]bool{}
	for _, mx := range man.Matrices {
		got[mx.Name] = true
	}
	for name := range want {
		if !got[name] {
			return 0, 0, false, fmt.Errorf("exec: resume: manifest is missing matrix %s", name)
		}
	}
	for name := range got {
		if !want[name] {
			return 0, 0, false, fmt.Errorf("exec: resume: manifest has unexpected matrix %s", name)
		}
	}
	if e.cfg.Materialize {
		if err := c.VerifyPayloads(); err != nil {
			return 0, 0, false, fmt.Errorf("exec: resume: %w", err)
		}
	}
	// Dead nodes first, so rehydration never triggers re-replication:
	// the recorded placements are already post-recovery.
	for _, n := range man.DeadNodes {
		if n >= e.cfg.Cluster.Nodes {
			return 0, 0, false, fmt.Errorf("exec: resume: dead node %d outside cluster of %d", n, e.cfg.Cluster.Nodes)
		}
		e.fs.MarkDead(n)
	}
	for _, mx := range man.Matrices {
		for _, t := range mx.Tiles {
			var data []byte
			if e.cfg.Materialize {
				if t.Digest == "" {
					return 0, 0, false, fmt.Errorf("exec: resume: tile %s has no payload (checkpoint from a virtual run)", t.Path)
				}
				data = c.Payloads[t.Digest]
				if data == nil {
					return 0, 0, false, fmt.Errorf("exec: resume: missing payload for %s", t.Path)
				}
			}
			if err := e.fs.WritePlaced(t.Path, data, t.Bytes, t.Replicas); err != nil {
				return 0, 0, false, fmt.Errorf("exec: resume: %w", err)
			}
		}
	}
	e.chaos.SkipDelivered(man.ChaosDelivered)
	e.boundaryReset(man.Stmt)
	m.ResumedFromStmt = man.Stmt
	for _, j := range p.Jobs {
		if j.ID <= man.BoundaryJob {
			m.ResumeSkippedJobs++
		}
	}
	return man.BoundaryJob, man.ClockSec, true, nil
}

// allSlots builds slot states for every node, dead ones flagged. The
// resume path uses it instead of liveSlots so that global slot indices
// match the uninterrupted run's (which built its slots before any node
// died).
func (e *Engine) allSlots() []*slotState {
	var slots []*slotState
	for n := 0; n < e.cfg.Cluster.Nodes; n++ {
		dead := !e.fs.NodeAlive(n)
		for s := 0; s < e.cfg.Cluster.Slots; s++ {
			slots = append(slots, &slotState{node: n, dead: dead})
		}
	}
	return slots
}
