package exec

import (
	"bytes"
	"reflect"
	"testing"

	"cumulon/internal/chaos"
	"cumulon/internal/compute"
	"cumulon/internal/obs"
)

// gnmfChaosSchedule builds the canonical recovery scenario for the GNMF
// iteration: a node crash mid-program (timed off the fault-free makespan)
// plus probabilistic task and read faults.
func gnmfChaosSchedule(t *testing.T) *chaos.Schedule {
	t.Helper()
	_, base := runGNMF(t, compute.NewSequential(), nil, nil)
	if base.TotalSeconds <= 0 {
		t.Fatal("fault-free run has no makespan")
	}
	return &chaos.Schedule{
		Seed:          11,
		Crashes:       []chaos.NodeCrash{{Node: 3, At: 0.4 * base.TotalSeconds}},
		TaskFaultProb: 0.08,
		ReadFaultProb: 0.03,
	}
}

// TestChaosRunBitIdenticalToFaultFreeOracle is the headline recovery
// guarantee: a GNMF run that loses a node mid-program and suffers
// transient task/read faults must still produce outputs bitwise identical
// to the fault-free run — recovery changes the timeline, never the data.
func TestChaosRunBitIdenticalToFaultFreeOracle(t *testing.T) {
	sched := gnmfChaosSchedule(t)
	cleanOuts, cleanM := runGNMF(t, compute.NewSequential(), nil, nil)
	chaosOuts, chaosM := runGNMF(t, compute.NewSequential(), sched, nil)

	for name, want := range cleanOuts {
		got := chaosOuts[name]
		if got == nil {
			t.Fatalf("chaos run missing output %s", name)
		}
		if !reflect.DeepEqual(want.Data, got.Data) {
			t.Fatalf("output %s not bit-identical under chaos (maxdiff %g)",
				name, want.MaxAbsDiff(got))
		}
	}
	if chaosM.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", chaosM.NodeCrashes)
	}
	if chaosM.RereplicatedBytes == 0 {
		t.Fatal("crash re-replicated no bytes; scenario exercises nothing")
	}
	if chaosM.TotalRetries == 0 || chaosM.RecoverySeconds <= 0 {
		t.Fatalf("no retries recorded (retries=%d recovery=%.2fs); scenario exercises nothing",
			chaosM.TotalRetries, chaosM.RecoverySeconds)
	}
	if chaosM.TotalSeconds <= cleanM.TotalSeconds {
		t.Fatalf("chaos run (%.2fs) not slower than fault-free (%.2fs)",
			chaosM.TotalSeconds, cleanM.TotalSeconds)
	}
	for _, tr := range chaosM.Tasks {
		if tr.Node == 3 && tr.StartSec >= sched.Crashes[0].At {
			t.Fatalf("task scheduled on crashed node 3 at %.2fs (crash at %.2fs)",
				tr.StartSec, sched.Crashes[0].At)
		}
	}
}

// TestChaosRecoveryDeterministicAcrossBackends: the same seed and the same
// fault schedule must yield byte-identical TaskRecords, RunMetrics and
// trace exports on the sequential and worker-pool backends — crashes,
// retries and re-replication included. Runs under -race in CI.
func TestChaosRecoveryDeterministicAcrossBackends(t *testing.T) {
	sched := gnmfChaosSchedule(t)
	seqTr, poolTr := obs.NewTrace(), obs.NewTrace()
	seqOuts, seqM := runGNMF(t, compute.NewSequential(), sched, seqTr)
	poolOuts, poolM := runGNMF(t, compute.NewPool(8), sched, poolTr)

	if !reflect.DeepEqual(seqM.Tasks, poolM.Tasks) {
		t.Fatal("TaskRecords diverge between backends under chaos")
	}
	if !reflect.DeepEqual(seqM, poolM) {
		t.Fatalf("RunMetrics diverge between backends under chaos:\nseq:  %+v\npool: %+v", seqM, poolM)
	}
	for name, sd := range seqOuts {
		if !reflect.DeepEqual(sd.Data, poolOuts[name].Data) {
			t.Fatalf("output %s diverges between backends under chaos", name)
		}
	}
	var seqOut, poolOut bytes.Buffer
	if err := seqTr.WriteChrome(&seqOut); err != nil {
		t.Fatal(err)
	}
	if err := poolTr.WriteChrome(&poolOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqOut.Bytes(), poolOut.Bytes()) {
		t.Fatalf("trace exports diverge under chaos: seq %d bytes, pool %d bytes",
			seqOut.Len(), poolOut.Len())
	}
	if seqM.NodeCrashes != 1 || seqM.TotalRetries == 0 {
		t.Fatalf("scenario exercises nothing: crashes=%d retries=%d",
			seqM.NodeCrashes, seqM.TotalRetries)
	}
}

// TestChaosCrashRecordedInTrace: the delivered crash surfaces as a phase
// event and retried tasks carry recovery attribution in their spans.
func TestChaosCrashRecordedInTrace(t *testing.T) {
	sched := gnmfChaosSchedule(t)
	tr := obs.NewTrace()
	runGNMF(t, compute.NewSequential(), sched, tr)
	crashEvents, retryEvents := 0, 0
	for _, ev := range tr.Events() {
		if len(ev.Name) >= 5 && ev.Name[:5] == "crash" {
			crashEvents++
		}
		if len(ev.Name) >= 7 && ev.Name[:7] == "retried" {
			retryEvents++
		}
	}
	if crashEvents != 1 {
		t.Fatalf("crash events in trace = %d, want 1", crashEvents)
	}
	if retryEvents == 0 {
		t.Fatal("no retry events in trace")
	}
	recovery := 0.0
	for _, s := range tr.SpansOf(obs.KindTask) {
		recovery += s.Attrs.Breakdown[obs.CatRecovery]
	}
	if recovery <= 0 {
		t.Fatal("task spans attribute no recovery time")
	}
}
