package exec

import (
	"encoding/csv"
	"strings"
	"testing"
)

// TestTimelineCSVEmptyRun: a run with no tasks still emits a well-formed
// header-only CSV (the plotting scripts rely on the header being present).
func TestTimelineCSVEmptyRun(t *testing.T) {
	var m RunMetrics
	var sb strings.Builder
	if err := m.TimelineCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("empty run emitted %d CSV records, want header only", len(recs))
	}
	header := []string{"job", "phase", "task", "node", "slot", "start_s", "end_s", "flops",
		"local_bytes", "rack_bytes", "remote_bytes", "cache_bytes", "write_bytes", "retries", "recovery_s"}
	if len(recs[0]) != len(header) {
		t.Fatalf("header has %d columns, want %d", len(recs[0]), len(header))
	}
	for i, h := range header {
		if recs[0][i] != h {
			t.Fatalf("header column %d = %q, want %q", i, recs[0][i], h)
		}
	}
}

// TestTimelineCSVRowContent checks one fully-specified task row end to end,
// including the end_s = start_s + seconds derivation.
func TestTimelineCSVRowContent(t *testing.T) {
	var m RunMetrics
	m.addTask(TaskRecord{
		JobID: 2, Phase: 1, Index: 5, Node: 3, Slot: 7,
		Flops: 1234, StartSec: 1.5, Seconds: 2.25,
		LocalReadBytes: 11, RackReadBytes: 22, RemoteReadBytes: 33,
		CacheReadBytes: 44, WriteBytes: 55, Retries: 1, RecoverySec: 0.5,
	})
	var sb strings.Builder
	if err := m.TimelineCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d CSV records, want header + 1 row", len(recs))
	}
	want := []string{"2", "1", "5", "3", "7", "1.500", "3.750", "1234",
		"11", "22", "33", "44", "55", "1", "0.500"}
	for i, w := range want {
		if recs[1][i] != w {
			t.Fatalf("row column %d = %q, want %q", i, recs[1][i], w)
		}
	}
}

// TestUtilizationEdgeCases: the degenerate inputs (empty run, nonpositive
// slot count) report zero rather than dividing by zero, and over-busy
// accounting clamps at 1.
func TestUtilizationEdgeCases(t *testing.T) {
	var empty RunMetrics
	if u := empty.Utilization(8); u != 0 {
		t.Fatalf("empty run utilization = %g, want 0", u)
	}
	m := RunMetrics{TotalSeconds: 10}
	m.addTask(TaskRecord{Seconds: 5})
	if u := m.Utilization(0); u != 0 {
		t.Fatalf("utilization with 0 slots = %g, want 0", u)
	}
	if u := m.Utilization(-3); u != 0 {
		t.Fatalf("utilization with negative slots = %g, want 0", u)
	}
	if u := m.Utilization(2); u != 0.25 {
		t.Fatalf("utilization = %g, want 0.25", u)
	}
	over := RunMetrics{TotalSeconds: 1}
	over.addTask(TaskRecord{Seconds: 100})
	if u := over.Utilization(1); u != 1 {
		t.Fatalf("over-busy utilization = %g, want clamp to 1", u)
	}
}

// TestAddTaskAggregates: addTask keeps the run-level totals in sync with
// the per-task records.
func TestAddTaskAggregates(t *testing.T) {
	var m RunMetrics
	m.addTask(TaskRecord{Flops: 10, LocalReadBytes: 1, RackReadBytes: 2, RemoteReadBytes: 4, CacheReadBytes: 8, WriteBytes: 16, Retries: 2, RecoverySec: 1.5})
	m.addTask(TaskRecord{Flops: 5, LocalReadBytes: 100, WriteBytes: 200, Retries: 1, RecoverySec: 0.5})
	if m.TotalFlops != 15 || m.TotalReadBytes != 107 || m.TotalWriteBytes != 216 || m.TotalCacheBytes != 8 {
		t.Fatalf("aggregates flops=%d read=%d write=%d cache=%d",
			m.TotalFlops, m.TotalReadBytes, m.TotalWriteBytes, m.TotalCacheBytes)
	}
	if m.TotalRetries != 3 || m.RecoverySeconds != 2 {
		t.Fatalf("recovery aggregates retries=%d recovery=%g", m.TotalRetries, m.RecoverySeconds)
	}
	if len(m.Tasks) != 2 {
		t.Fatalf("len(Tasks) = %d", len(m.Tasks))
	}
}
