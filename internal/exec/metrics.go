package exec

import (
	"encoding/csv"
	"io"
	"strconv"
)

// TaskRecord captures one executed task: its work profile, placement and
// timing. The model-fitting pipeline (package model) consumes these as its
// benchmark observations, exactly as the paper calibrates task-time models
// from instrumented runs.
type TaskRecord struct {
	JobID, Phase, Index int
	Node                int
	Slot                int // global slot index the task ran on
	Flops               int64
	LocalReadBytes      int64
	RackReadBytes       int64 // non-local reads served within the rack
	RemoteReadBytes     int64 // cross-rack reads
	CacheReadBytes      int64 // reads served from the node memory cache
	WriteBytes          int64
	StartSec            float64 // start of the successful attempt
	Seconds             float64
	Retries             int
	// RecoverySec is virtual time lost to failed attempts before StartSec:
	// their startup costs plus exponential retry backoff.
	RecoverySec float64
}

// JobRecord captures one executed job.
type JobRecord struct {
	JobID    int
	Name     string
	Kind     string
	Phases   int
	Tasks    int
	StartSec float64
	EndSec   float64
}

// Seconds returns the job's wall-clock (virtual) duration.
func (j JobRecord) Seconds() float64 { return j.EndSec - j.StartSec }

// RunMetrics aggregates a full plan execution.
type RunMetrics struct {
	TotalSeconds    float64
	Jobs            []JobRecord
	Tasks           []TaskRecord
	TotalFlops      int64
	TotalReadBytes  int64
	TotalWriteBytes int64
	// SpeculativeTasks counts straggler backups that won their race
	// (only nonzero with Config.Speculation).
	SpeculativeTasks int
	// TotalCacheBytes counts reads served from node memory caches.
	TotalCacheBytes int64
	// TotalRetries counts failed task attempts across the run.
	TotalRetries int
	// RecoverySeconds sums the virtual time tasks lost to failed attempts
	// and retry backoff.
	RecoverySeconds float64
	// NodeCrashes counts datanode crashes delivered by the fault schedule.
	NodeCrashes int
	// RereplicatedBytes counts bytes the DFS copied to restore replication
	// after crashes.
	RereplicatedBytes int64
	// BlocksLost counts blocks whose every replica died (they stay
	// unavailable; tasks reading them fail).
	BlocksLost int
	// Checkpoints counts program-level checkpoints written this run
	// (only nonzero with Config.CheckpointEvery).
	Checkpoints int
	// CheckpointBytes counts tile bytes captured by those checkpoints.
	CheckpointBytes int64
	// CheckpointSeconds sums the virtual time the run spent writing
	// checkpoints (the CatCheckpoint critical-path category).
	CheckpointSeconds float64
	// ResumedFromStmt is the boundary statement the run resumed from
	// (0 when the run started from scratch).
	ResumedFromStmt int
	// ResumeSkippedJobs counts jobs skipped because a checkpoint already
	// covered them.
	ResumeSkippedJobs int
}

// TimelineCSV writes one row per task — placement, timing, flops, the
// byte classes of its I/O and its retry count — so runs can be plotted
// as Gantt charts and locality/retry behavior inspected per task.
func (m *RunMetrics) TimelineCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"job", "phase", "task", "node", "slot", "start_s", "end_s", "flops",
		"local_bytes", "rack_bytes", "remote_bytes", "cache_bytes", "write_bytes", "retries", "recovery_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range m.Tasks {
		rec := []string{
			strconv.Itoa(t.JobID), strconv.Itoa(t.Phase), strconv.Itoa(t.Index),
			strconv.Itoa(t.Node), strconv.Itoa(t.Slot),
			strconv.FormatFloat(t.StartSec, 'f', 3, 64),
			strconv.FormatFloat(t.StartSec+t.Seconds, 'f', 3, 64),
			strconv.FormatInt(t.Flops, 10),
			strconv.FormatInt(t.LocalReadBytes, 10),
			strconv.FormatInt(t.RackReadBytes, 10),
			strconv.FormatInt(t.RemoteReadBytes, 10),
			strconv.FormatInt(t.CacheReadBytes, 10),
			strconv.FormatInt(t.WriteBytes, 10),
			strconv.Itoa(t.Retries),
			strconv.FormatFloat(t.RecoverySec, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Utilization returns the fraction of slot-time spent running tasks:
// total task seconds divided by (makespan x totalSlots). Low utilization
// signals poor splits (too few tasks) or job-barrier slack.
func (m *RunMetrics) Utilization(totalSlots int) float64 {
	if m.TotalSeconds <= 0 || totalSlots <= 0 {
		return 0
	}
	var busy float64
	for _, t := range m.Tasks {
		busy += t.Seconds
	}
	u := busy / (m.TotalSeconds * float64(totalSlots))
	if u > 1 {
		u = 1
	}
	return u
}

func (m *RunMetrics) addTask(t TaskRecord) {
	m.Tasks = append(m.Tasks, t)
	m.TotalFlops += t.Flops
	m.TotalReadBytes += t.LocalReadBytes + t.RackReadBytes + t.RemoteReadBytes
	m.TotalWriteBytes += t.WriteBytes
	m.TotalCacheBytes += t.CacheReadBytes
	m.TotalRetries += t.Retries
	m.RecoverySeconds += t.RecoverySec
}
