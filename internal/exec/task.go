package exec

import (
	"fmt"

	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
	"cumulon/internal/store"
)

// work is the resource profile a task accumulated while running.
type work struct {
	flops       int64
	localBytes  int64
	rackBytes   int64 // non-local reads served within the reader's rack
	remoteBytes int64 // cross-rack reads
	cacheBytes  int64 // reads served from the node's memory cache (free)
	writeBytes  int64
}

// task is one schedulable unit. run executes it attributed to a node and
// returns the accumulated work; it must be idempotent-safe in the sense
// that a failed attempt performs no writes (attempt failures are injected
// before any work).
type task struct {
	index    int
	prefNode int // preferred (data-local) node, -1 if none
	run      func(node int) (work, error)
}

// span is a half-open chunk [lo, hi) of a tile axis.
type span struct{ lo, hi int }

// partitionAxis cuts n tile indices into parts balanced chunks.
func partitionAxis(n, parts int) []span {
	if parts > n {
		parts = n
	}
	out := make([]span, 0, parts)
	for p := 0; p < parts; p++ {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		if hi > lo {
			out = append(out, span{lo, hi})
		}
	}
	return out
}

// kExtent returns the element extent of inner-dimension tile k.
func kExtent(kSize, tileSize, k int) int {
	ext := tileSize
	if r := kSize - k*tileSize; r < ext {
		ext = r
	}
	return ext
}

// buildTasks constructs the phase lists of a job plus the temporary
// matrices to delete once the job finishes.
func (e *Engine) buildTasks(j *plan.Job) ([][]*task, []store.Meta, error) {
	switch j.Kind {
	case plan.MapKind:
		tasks := e.buildMapTasks(j)
		return [][]*task{tasks}, nil, nil
	case plan.MulKind:
		return e.buildMulTasks(j)
	default:
		return nil, nil, fmt.Errorf("unknown job kind %v", j.Kind)
	}
}

func (e *Engine) buildMapTasks(j *plan.Job) []*task {
	iSpans := partitionAxis(j.ITiles(), j.Split.CI)
	jSpans := partitionAxis(j.JTiles(), j.Split.CJ)
	var tasks []*task
	for _, is := range iSpans {
		for _, js := range jSpans {
			is, js := is, js
			t := &task{index: len(tasks)}
			t.prefNode = e.preferredNode(firstLeafPath(j.Expr, j.Leaves, is.lo, js.lo))
			t.run = func(node int) (work, error) {
				c := e.newTaskCtx(node)
				for ti := is.lo; ti < is.hi; ti++ {
					for tj := js.lo; tj < js.hi; tj++ {
						tile, err := c.evalTile(j.Expr, j.Leaves, ti, tj, nil)
						if err != nil {
							return work{}, err
						}
						if err := c.writeTile(j.Out, ti, tj, tile); err != nil {
							return work{}, err
						}
					}
				}
				return c.w, nil
			}
			tasks = append(tasks, t)
		}
	}
	return tasks
}

func (e *Engine) buildMulTasks(j *plan.Job) ([][]*task, []store.Meta, error) {
	iSpans := partitionAxis(j.ITiles(), j.Split.CI)
	jSpans := partitionAxis(j.JTiles(), j.Split.CJ)
	kSpans := partitionAxis(j.KTiles(), j.Split.CK)
	singleK := len(kSpans) == 1
	if j.MaskLeaf != "" {
		if !singleK {
			return nil, nil, fmt.Errorf("masked multiply cannot k-split (split %v)", j.Split)
		}
		return e.buildMaskedMulTasks(j, iSpans, jSpans)
	}

	// With k-splitting, each k-chunk writes a full partial matrix that a
	// second phase aggregates.
	var partials []store.Meta
	if !singleK {
		for c := range kSpans {
			pm := j.Out
			pm.Name = fmt.Sprintf("%s~p%d", j.Out.Name, c)
			pm.Sparse = false
			partials = append(partials, pm)
		}
	}

	var phase1 []*task
	for _, is := range iSpans {
		for _, js := range jSpans {
			for kc, ks := range kSpans {
				is, js, ks, kc := is, js, ks, kc
				outMeta := j.Out
				epilogue := j.Epilogue
				if !singleK {
					outMeta = partials[kc]
					epilogue = nil
				}
				t := &task{index: len(phase1)}
				t.prefNode = e.preferredNode(firstLeafPath(j.LExpr, j.Leaves, is.lo, ks.lo))
				t.run = func(node int) (work, error) {
					c := e.newTaskCtx(node)
					for ti := is.lo; ti < is.hi; ti++ {
						for tj := js.lo; tj < js.hi; tj++ {
							acc, err := c.mulTile(j, ti, tj, ks)
							if err != nil {
								return work{}, err
							}
							if epilogue != nil {
								r, cc := j.Out.TileShape(ti, tj)
								acc, _, _, err = c.evalTileShaped(epilogue, j.Leaves, ti, tj, acc, r, cc)
								if err != nil {
									return work{}, err
								}
							}
							if err := c.writeTile(outMeta, ti, tj, acc); err != nil {
								return work{}, err
							}
						}
					}
					return c.w, nil
				}
				phase1 = append(phase1, t)
			}
		}
	}
	if singleK {
		return [][]*task{phase1}, nil, nil
	}

	// Phase 2: aggregate the partials and apply the epilogue.
	var phase2 []*task
	for _, is := range iSpans {
		for _, js := range jSpans {
			is, js := is, js
			t := &task{index: len(phase2)}
			t.prefNode = e.preferredNode(partials[0].TilePath(is.lo, js.lo))
			t.run = func(node int) (work, error) {
				c := e.newTaskCtx(node)
				for ti := is.lo; ti < is.hi; ti++ {
					for tj := js.lo; tj < js.hi; tj++ {
						acc, err := c.sumTiles(partials, ti, tj)
						if err != nil {
							return work{}, err
						}
						if j.Epilogue != nil {
							r, cc := j.Out.TileShape(ti, tj)
							acc, _, _, err = c.evalTileShaped(j.Epilogue, j.Leaves, ti, tj, acc, r, cc)
							if err != nil {
								return work{}, err
							}
						}
						if err := c.writeTile(j.Out, ti, tj, acc); err != nil {
							return work{}, err
						}
					}
				}
				return c.w, nil
			}
			phase2 = append(phase2, t)
		}
	}
	return [][]*task{phase1, phase2}, partials, nil
}

// buildMaskedMulTasks constructs the tasks of a masked multiply: each
// task computes, for its output chunk, the product restricted to the
// sparse pattern's stored positions and writes sparse tiles.
func (e *Engine) buildMaskedMulTasks(j *plan.Job, iSpans, jSpans []span) ([][]*task, []store.Meta, error) {
	maskRef, ok := j.Leaves[j.MaskLeaf]
	if !ok {
		return nil, nil, fmt.Errorf("mask leaf %q unbound", j.MaskLeaf)
	}
	fullK := span{0, j.KTiles()}
	var tasks []*task
	for _, is := range iSpans {
		for _, js := range jSpans {
			is, js := is, js
			t := &task{index: len(tasks)}
			t.prefNode = e.preferredNode(leafTilePath(maskRef, is.lo, js.lo))
			t.run = func(node int) (work, error) {
				c := e.newTaskCtx(node)
				for ti := is.lo; ti < is.hi; ti++ {
					for tj := js.lo; tj < js.hi; tj++ {
						sp, err := c.mulTileMasked(j, maskRef, ti, tj, fullK)
						if err != nil {
							return work{}, err
						}
						if err := c.writeSparseTile(j.Out, ti, tj, sp); err != nil {
							return work{}, err
						}
					}
				}
				return c.w, nil
			}
			tasks = append(tasks, t)
		}
	}
	return [][]*task{tasks}, nil, nil
}

// leafTilePath returns the tile path of a leaf at logical coordinates.
func leafTilePath(ref plan.LeafRef, ti, tj int) string {
	if ref.Transposed {
		ti, tj = tj, ti
	}
	if ti < ref.Meta.TileRows() && tj < ref.Meta.TileCols() {
		return ref.Meta.TilePath(ti, tj)
	}
	return ""
}

// preferredNode returns a node holding a replica of path, or -1.
func (e *Engine) preferredNode(path string) int {
	if path == "" {
		return -1
	}
	nodes, err := e.fs.ReplicaNodes(path)
	if err != nil || len(nodes) == 0 {
		return -1
	}
	return nodes[0]
}

// firstLeafPath returns the tile path of the first leaf referenced by the
// expression at logical tile coordinates (ti, tj), for locality hints.
func firstLeafPath(expr lang.Expr, leaves map[string]plan.LeafRef, ti, tj int) string {
	for _, name := range lang.FreeVars(expr) {
		ref, ok := leaves[name]
		if !ok {
			continue
		}
		ri, rj := ti, tj
		if ref.Transposed {
			ri, rj = tj, ti
		}
		if ri < ref.Meta.TileRows() && rj < ref.Meta.TileCols() {
			return ref.Meta.TilePath(ri, rj)
		}
	}
	return ""
}

// taskCtx carries the per-task state: attribution node, accumulated work,
// and a tile cache so repeated references read once, as a real task would.
type taskCtx struct {
	e       *Engine
	node    int
	w       work
	cache   map[string]*linalg.Tile
	spCache map[string]*linalg.CSRTile
}

func (e *Engine) newTaskCtx(node int) *taskCtx {
	return &taskCtx{e: e, node: node, cache: map[string]*linalg.Tile{}, spCache: map[string]*linalg.CSRTile{}}
}

func (c *taskCtx) virtual() bool { return !c.e.cfg.Materialize }

// accountRead performs DFS read accounting for path once per task; a
// node-cache hit skips the DFS entirely.
func (c *taskCtx) accountRead(path string) error {
	if _, ok := c.cache[path]; ok {
		return nil
	}
	if nc := c.e.cacheFor(c.node); nc != nil {
		if entry, ok := nc.get(path); ok {
			c.w.cacheBytes += entry.size
			c.cache[path] = nil
			return nil
		}
	}
	sp, err := c.e.fs.ReadAccount(path, c.node)
	if err != nil {
		return err
	}
	c.w.localBytes += sp.Local
	c.w.rackBytes += sp.RackLocal
	c.w.remoteBytes += sp.Remote
	c.cache[path] = nil // mark as read
	if nc := c.e.cacheFor(c.node); nc != nil {
		nc.put(path, sp.Total(), nil, nil)
	}
	return nil
}

// readDenseTile reads and decodes the dense tile at (ti, tj) of meta,
// densifying sparse storage. Returns nil in virtual mode (bytes are still
// accounted).
func (c *taskCtx) readDenseTile(meta store.Meta, ti, tj int) (*linalg.Tile, error) {
	path := meta.TilePath(ti, tj)
	if c.virtual() {
		return nil, c.accountRead(path)
	}
	if t, ok := c.cache[path]; ok && t != nil {
		return t, nil
	}
	if nc := c.e.cacheFor(c.node); nc != nil {
		if e, ok := nc.get(path); ok && e.dense != nil {
			c.w.cacheBytes += e.size
			c.cache[path] = e.dense
			return e.dense, nil
		}
	}
	raw, sp, err := c.e.fs.ReadTracked(path, c.node)
	if err != nil {
		return nil, err
	}
	c.w.localBytes += sp.Local
	c.w.rackBytes += sp.RackLocal
	c.w.remoteBytes += sp.Remote
	var tile *linalg.Tile
	if meta.Sparse {
		sp, err := store.DecodeSparseTile(raw)
		if err != nil {
			return nil, err
		}
		tile = sp.ToDense()
	} else {
		tile, err = store.DecodeTile(raw)
		if err != nil {
			return nil, err
		}
	}
	c.cache[path] = tile
	if nc := c.e.cacheFor(c.node); nc != nil {
		nc.put(path, sp.Total(), tile, nil)
	}
	return tile, nil
}

// readSparseTile reads a CSR tile (sparse fast path).
func (c *taskCtx) readSparseTile(meta store.Meta, ti, tj int) (*linalg.CSRTile, error) {
	path := meta.TilePath(ti, tj)
	if c.virtual() {
		return nil, c.accountRead(path)
	}
	if t, ok := c.spCache[path]; ok {
		return t, nil
	}
	if nc := c.e.cacheFor(c.node); nc != nil {
		if e, ok := nc.get(path); ok && e.sparse != nil {
			c.w.cacheBytes += e.size
			c.spCache[path] = e.sparse
			return e.sparse, nil
		}
	}
	raw, rs, err := c.e.fs.ReadTracked(path, c.node)
	if err != nil {
		return nil, err
	}
	c.w.localBytes += rs.Local
	c.w.rackBytes += rs.RackLocal
	c.w.remoteBytes += rs.Remote
	sp, err := store.DecodeSparseTile(raw)
	if err != nil {
		return nil, err
	}
	c.spCache[path] = sp
	if nc := c.e.cacheFor(c.node); nc != nil {
		nc.put(path, rs.Total(), nil, sp)
	}
	return sp, nil
}

// readLeafTile reads the tile at *logical* coordinates (ti, tj) of a leaf,
// transposing on the fly for transposed access paths.
func (c *taskCtx) readLeafTile(ref plan.LeafRef, ti, tj int) (*linalg.Tile, error) {
	ri, rj := ti, tj
	if ref.Transposed {
		ri, rj = tj, ti
	}
	t, err := c.readDenseTile(ref.Meta, ri, rj)
	if err != nil || t == nil {
		return nil, err
	}
	if ref.Transposed {
		return linalg.Transpose(t), nil
	}
	return t, nil
}

// leafShape returns the logical shape of leaf tile (ti, tj).
func leafShape(ref plan.LeafRef, ti, tj int) (rows, cols int) {
	if ref.Transposed {
		r, c := ref.Meta.TileShape(tj, ti)
		return c, r
	}
	return ref.Meta.TileShape(ti, tj)
}

// evalTile evaluates a fused element-wise expression at logical tile
// coordinates (ti, tj). mm binds the MMVar placeholder (epilogues). In
// virtual mode the returned tile is nil but all reads and flops are
// accounted against the task.
func (c *taskCtx) evalTile(e lang.Expr, leaves map[string]plan.LeafRef, ti, tj int, mm *linalg.Tile) (*linalg.Tile, error) {
	tile, _, _, err := c.evalTileShaped(e, leaves, ti, tj, mm, -1, -1)
	return tile, err
}

// evalTileShaped is evalTile tracking shapes so virtual mode can count
// flops without data. mmRows/mmCols give MMVar's shape when mm is nil.
func (c *taskCtx) evalTileShaped(e lang.Expr, leaves map[string]plan.LeafRef, ti, tj int, mm *linalg.Tile, mmRows, mmCols int) (*linalg.Tile, int, int, error) {
	switch x := e.(type) {
	case lang.Var:
		if x.Name == plan.MMVar {
			if mm != nil {
				return mm, mm.Rows, mm.Cols, nil
			}
			return nil, mmRows, mmCols, nil
		}
		ref, ok := leaves[x.Name]
		if !ok {
			return nil, 0, 0, fmt.Errorf("unbound leaf %s", x.Name)
		}
		rows, cols := leafShape(ref, ti, tj)
		t, err := c.readLeafTile(ref, ti, tj)
		if err != nil {
			return nil, 0, 0, err
		}
		return t, rows, cols, nil
	case lang.Transpose:
		// Transposes are pushed to leaves by the planner; a residual one
		// here is a planner bug.
		return nil, 0, 0, fmt.Errorf("unexpected transpose in physical expression %s", e)
	case lang.Add:
		return c.zipTiles(x.L, x.R, leaves, ti, tj, mm, mmRows, mmCols, func(a, b float64) float64 { return a + b })
	case lang.Sub:
		return c.zipTiles(x.L, x.R, leaves, ti, tj, mm, mmRows, mmCols, func(a, b float64) float64 { return a - b })
	case lang.ElemMul:
		return c.zipTiles(x.L, x.R, leaves, ti, tj, mm, mmRows, mmCols, func(a, b float64) float64 { return a * b })
	case lang.ElemDiv:
		return c.zipTiles(x.L, x.R, leaves, ti, tj, mm, mmRows, mmCols, func(a, b float64) float64 { return a / b })
	case lang.Scale:
		t, rows, cols, err := c.evalTileShaped(x.X, leaves, ti, tj, mm, mmRows, mmCols)
		if err != nil {
			return nil, 0, 0, err
		}
		c.w.flops += int64(rows) * int64(cols)
		if t == nil {
			return nil, rows, cols, nil
		}
		return linalg.Scale(t, x.S), rows, cols, nil
	case lang.Apply:
		t, rows, cols, err := c.evalTileShaped(x.X, leaves, ti, tj, mm, mmRows, mmCols)
		if err != nil {
			return nil, 0, 0, err
		}
		c.w.flops += int64(rows) * int64(cols)
		if t == nil {
			return nil, rows, cols, nil
		}
		fn, ok := lang.Funcs[x.Fn]
		if !ok {
			return nil, 0, 0, fmt.Errorf("unknown function %s", x.Fn)
		}
		return linalg.Map(t, fn), rows, cols, nil
	default:
		return nil, 0, 0, fmt.Errorf("unexpected node %T in physical expression", e)
	}
}

func (c *taskCtx) zipTiles(l, r lang.Expr, leaves map[string]plan.LeafRef, ti, tj int, mm *linalg.Tile, mmRows, mmCols int, f func(a, b float64) float64) (*linalg.Tile, int, int, error) {
	lt, rows, cols, err := c.evalTileShaped(l, leaves, ti, tj, mm, mmRows, mmCols)
	if err != nil {
		return nil, 0, 0, err
	}
	rt, _, _, err := c.evalTileShaped(r, leaves, ti, tj, mm, mmRows, mmCols)
	if err != nil {
		return nil, 0, 0, err
	}
	c.w.flops += int64(rows) * int64(cols)
	if lt == nil || rt == nil {
		return nil, rows, cols, nil
	}
	return linalg.Zip(lt, rt, f), rows, cols, nil
}

// mulTile computes the (ti, tj) output tile contribution of a Mul job over
// the inner-dimension tile span ks, evaluating the prologue trees per tile
// and using the sparse kernel when the left operand is a bare sparse leaf.
func (c *taskCtx) mulTile(j *plan.Job, ti, tj int, ks span) (*linalg.Tile, error) {
	outRows, outCols := j.Out.TileShape(ti, tj)
	var acc *linalg.Tile
	if !c.virtual() {
		acc = linalg.NewTile(outRows, outCols)
	}
	lRef, lBare := bareSparseLeaf(j.LExpr, j.Leaves)
	for k := ks.lo; k < ks.hi; k++ {
		kk := kExtent(j.KSize, j.Out.TileSize, k)
		rt, _, _, err := c.evalTileShaped(j.RExpr, j.Leaves, k, tj, nil, kk, outCols)
		if err != nil {
			return nil, err
		}
		if lBare {
			if err := c.mulSparseLeft(acc, lRef, ti, k, rt, kk, outCols); err != nil {
				return nil, err
			}
			continue
		}
		lt, _, _, err := c.evalTileShaped(j.LExpr, j.Leaves, ti, k, nil, outRows, kk)
		if err != nil {
			return nil, err
		}
		c.w.flops += linalg.GemmFlops(outRows, kk, outCols)
		if acc != nil {
			linalg.Gemm(acc, lt, rt)
		}
	}
	return acc, nil
}

// mulTileMasked computes the (ti, tj) sparse output tile of a masked
// multiply: the product of the prologue tiles restricted to the pattern's
// stored positions, at cost 2*nnz(pattern tile)*K.
func (c *taskCtx) mulTileMasked(j *plan.Job, maskRef plan.LeafRef, ti, tj int, ks span) (*linalg.CSRTile, error) {
	pat, err := c.readLeafSparseTile(maskRef, ti, tj)
	if err != nil {
		return nil, err
	}
	outRows, outCols := j.Out.TileShape(ti, tj)
	var acc *linalg.CSRTile
	for k := ks.lo; k < ks.hi; k++ {
		kk := kExtent(j.KSize, j.Out.TileSize, k)
		lt, _, _, err := c.evalTileShaped(j.LExpr, j.Leaves, ti, k, nil, outRows, kk)
		if err != nil {
			return nil, err
		}
		rt, _, _, err := c.evalTileShaped(j.RExpr, j.Leaves, k, tj, nil, kk, outCols)
		if err != nil {
			return nil, err
		}
		if c.virtual() {
			estNNZ := maskRef.Meta.EffDensity() * float64(outRows) * float64(outCols)
			c.w.flops += int64(2 * estNNZ * float64(kk))
			continue
		}
		c.w.flops += 2 * int64(pat.NNZ()) * int64(kk)
		part := linalg.MaskedGemm(pat, lt, rt)
		if acc == nil {
			acc = part
		} else {
			acc = linalg.SpZip(acc, part, func(a, b float64) float64 { return a + b })
		}
	}
	return acc, nil
}

// readLeafSparseTile reads a sparse leaf tile at logical coordinates,
// transposing in CSR form for transposed access paths. Returns nil in
// virtual mode (bytes still accounted).
func (c *taskCtx) readLeafSparseTile(ref plan.LeafRef, ti, tj int) (*linalg.CSRTile, error) {
	ri, rj := ti, tj
	if ref.Transposed {
		ri, rj = tj, ti
	}
	sp, err := c.readSparseTile(ref.Meta, ri, rj)
	if err != nil || sp == nil {
		return nil, err
	}
	if ref.Transposed {
		return sp.Transpose(), nil
	}
	return sp, nil
}

// writeSparseTile stores a sparse output tile (virtual or real).
func (c *taskCtx) writeSparseTile(meta store.Meta, ti, tj int, sp *linalg.CSRTile) error {
	path := meta.TilePath(ti, tj)
	if c.virtual() {
		size := meta.EstTileBytes(ti, tj)
		c.w.writeBytes += size
		return c.e.fs.WriteVirtual(path, size, c.node)
	}
	raw := store.EncodeSparseTile(sp)
	c.w.writeBytes += int64(len(raw))
	return c.e.fs.Write(path, raw, c.node)
}

// mulSparseLeft accumulates the contribution of a bare sparse left leaf at
// logical coordinates (ti, k) times the dense right tile rt.
func (c *taskCtx) mulSparseLeft(acc *linalg.Tile, ref plan.LeafRef, ti, k int, rt *linalg.Tile, kk, outCols int) error {
	ri, rj := ti, k
	if ref.Transposed {
		ri, rj = k, ti
	}
	sp, err := c.readSparseTile(ref.Meta, ri, rj)
	if err != nil {
		return err
	}
	if c.virtual() {
		rows, _ := leafShape(ref, ti, k)
		estNNZ := ref.Meta.EffDensity() * float64(rows) * float64(kk)
		c.w.flops += int64(2 * estNNZ * float64(outCols))
		return nil
	}
	c.w.flops += 2 * int64(sp.NNZ()) * int64(outCols)
	if ref.Transposed {
		linalg.SpGemmDenseTA(acc, sp, rt)
	} else {
		linalg.SpGemmDense(acc, sp, rt)
	}
	return nil
}

// bareSparseLeaf reports whether expr is a single sparse leaf reference.
func bareSparseLeaf(e lang.Expr, leaves map[string]plan.LeafRef) (plan.LeafRef, bool) {
	v, ok := e.(lang.Var)
	if !ok {
		return plan.LeafRef{}, false
	}
	ref, ok := leaves[v.Name]
	if !ok || !ref.Meta.Sparse {
		return plan.LeafRef{}, false
	}
	return ref, true
}

// sumTiles reads and sums the (ti, tj) tiles of the given partial
// matrices (aggregation phase of a k-split product).
func (c *taskCtx) sumTiles(partials []store.Meta, ti, tj int) (*linalg.Tile, error) {
	var acc *linalg.Tile
	for i, pm := range partials {
		t, err := c.readDenseTile(pm, ti, tj)
		if err != nil {
			return nil, err
		}
		rows, cols := pm.TileShape(ti, tj)
		if i > 0 {
			c.w.flops += int64(rows) * int64(cols)
		}
		if c.virtual() {
			continue
		}
		if acc == nil {
			acc = t.Clone()
		} else {
			linalg.AddInto(acc, t)
		}
	}
	return acc, nil
}

// writeTile stores an output tile (virtual or real) and accounts it.
func (c *taskCtx) writeTile(meta store.Meta, ti, tj int, tile *linalg.Tile) error {
	path := meta.TilePath(ti, tj)
	if c.virtual() {
		size := meta.EstTileBytes(ti, tj)
		c.w.writeBytes += size
		return c.e.fs.WriteVirtual(path, size, c.node)
	}
	raw := store.EncodeTile(tile)
	c.w.writeBytes += int64(len(raw))
	return c.e.fs.Write(path, raw, c.node)
}
