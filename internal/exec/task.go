package exec

import (
	"fmt"

	"cumulon/internal/compute"
	"cumulon/internal/lang"
	"cumulon/internal/plan"
	"cumulon/internal/store"
)

// work is the resource profile a task accumulated while running.
type work struct {
	flops       int64
	localBytes  int64
	rackBytes   int64 // non-local reads served within the reader's rack
	remoteBytes int64 // cross-rack reads
	cacheBytes  int64 // reads served from the node's memory cache (free)
	writeBytes  int64
}

// task is one schedulable unit: a compute-layer task plus the engine's
// placement hint. The tile math runs on the compute backend; the engine
// replays the resulting trace on whichever node the scheduler picked.
type task struct {
	index    int
	prefNode int // preferred (data-local) node, -1 if none
	ct       *compute.Task
}

// buildTasks constructs the phase lists of a job plus the temporary
// matrices to delete once the job finishes.
func (e *Engine) buildTasks(j *plan.Job) ([][]*task, []store.Meta, error) {
	switch j.Kind {
	case plan.MapKind:
		tasks := e.buildMapTasks(j)
		return [][]*task{tasks}, nil, nil
	case plan.MulKind:
		return e.buildMulTasks(j)
	default:
		return nil, nil, fmt.Errorf("unknown job kind %v", j.Kind)
	}
}

func (e *Engine) buildMapTasks(j *plan.Job) []*task {
	iSpans := compute.PartitionAxis(j.ITiles(), j.Split.CI)
	jSpans := compute.PartitionAxis(j.JTiles(), j.Split.CJ)
	var tasks []*task
	for _, is := range iSpans {
		for _, js := range jSpans {
			tasks = append(tasks, &task{
				index:    len(tasks),
				prefNode: e.preferredNode(firstLeafPath(j.Expr, j.Leaves, is.Lo, js.Lo)),
				ct:       compute.NewMapTask(e.env, j, is, js),
			})
		}
	}
	return tasks
}

func (e *Engine) buildMulTasks(j *plan.Job) ([][]*task, []store.Meta, error) {
	iSpans := compute.PartitionAxis(j.ITiles(), j.Split.CI)
	jSpans := compute.PartitionAxis(j.JTiles(), j.Split.CJ)
	kSpans := compute.PartitionAxis(j.KTiles(), j.Split.CK)
	singleK := len(kSpans) == 1
	if j.MaskLeaf != "" {
		if !singleK {
			return nil, nil, fmt.Errorf("masked multiply cannot k-split (split %v)", j.Split)
		}
		return e.buildMaskedMulTasks(j, iSpans, jSpans)
	}

	// With k-splitting, each k-chunk writes a full partial matrix that a
	// second phase aggregates.
	var partials []store.Meta
	if !singleK {
		for c := range kSpans {
			pm := j.Out
			pm.Name = fmt.Sprintf("%s~p%d", j.Out.Name, c)
			pm.Sparse = false
			partials = append(partials, pm)
		}
	}

	var phase1 []*task
	for _, is := range iSpans {
		for _, js := range jSpans {
			for kc, ks := range kSpans {
				outMeta := j.Out
				epilogue := j.Epilogue
				if !singleK {
					outMeta = partials[kc]
					epilogue = nil
				}
				phase1 = append(phase1, &task{
					index:    len(phase1),
					prefNode: e.preferredNode(firstLeafPath(j.LExpr, j.Leaves, is.Lo, ks.Lo)),
					ct:       compute.NewMulTask(e.env, j, outMeta, epilogue, is, js, ks),
				})
			}
		}
	}
	if singleK {
		return [][]*task{phase1}, nil, nil
	}

	// Phase 2: aggregate the partials and apply the epilogue.
	var phase2 []*task
	for _, is := range iSpans {
		for _, js := range jSpans {
			phase2 = append(phase2, &task{
				index:    len(phase2),
				prefNode: e.preferredNode(partials[0].TilePath(is.Lo, js.Lo)),
				ct:       compute.NewAggTask(e.env, j, partials, is, js),
			})
		}
	}
	return [][]*task{phase1, phase2}, partials, nil
}

// buildMaskedMulTasks constructs the tasks of a masked multiply: each
// task computes, for its output chunk, the product restricted to the
// sparse pattern's stored positions and writes sparse tiles.
func (e *Engine) buildMaskedMulTasks(j *plan.Job, iSpans, jSpans []compute.Span) ([][]*task, []store.Meta, error) {
	maskRef, ok := j.Leaves[j.MaskLeaf]
	if !ok {
		return nil, nil, fmt.Errorf("mask leaf %q unbound", j.MaskLeaf)
	}
	fullK := compute.Span{Lo: 0, Hi: j.KTiles()}
	var tasks []*task
	for _, is := range iSpans {
		for _, js := range jSpans {
			tasks = append(tasks, &task{
				index:    len(tasks),
				prefNode: e.preferredNode(leafTilePath(maskRef, is.Lo, js.Lo)),
				ct:       compute.NewMaskedMulTask(e.env, j, maskRef, is, js, fullK),
			})
		}
	}
	return [][]*task{tasks}, nil, nil
}

// leafTilePath returns the tile path of a leaf at logical coordinates.
func leafTilePath(ref plan.LeafRef, ti, tj int) string {
	if ref.Transposed {
		ti, tj = tj, ti
	}
	if ti < ref.Meta.TileRows() && tj < ref.Meta.TileCols() {
		return ref.Meta.TilePath(ti, tj)
	}
	return ""
}

// preferredNode returns a node holding a replica of path, or -1.
func (e *Engine) preferredNode(path string) int {
	if path == "" {
		return -1
	}
	nodes, err := e.fs.ReplicaNodes(path)
	if err != nil || len(nodes) == 0 {
		return -1
	}
	return nodes[0]
}

// firstLeafPath returns the tile path of the first leaf referenced by the
// expression at logical tile coordinates (ti, tj), for locality hints.
func firstLeafPath(expr lang.Expr, leaves map[string]plan.LeafRef, ti, tj int) string {
	for _, name := range lang.FreeVars(expr) {
		ref, ok := leaves[name]
		if !ok {
			continue
		}
		ri, rj := ti, tj
		if ref.Transposed {
			ri, rj = tj, ti
		}
		if ri < ref.Meta.TileRows() && rj < ref.Meta.TileCols() {
			return ref.Meta.TilePath(ri, rj)
		}
	}
	return ""
}

// applyResult replays a computed task's trace attributed to a node: read
// accounting against the DFS and the node's memory cache, and the actual
// DFS writes with replica placement. Replay is always sequential in
// scheduling order — it is the only consumer of the placement rng and the
// caches — which is what keeps the engine deterministic regardless of how
// (and on how many goroutines) the trace was computed.
func (e *Engine) applyResult(res *compute.Result, node int) (work, error) {
	w := work{flops: res.Flops}
	virtual := !e.cfg.Materialize
	// On failure the attempt's partial writes are deleted, so a retry can
	// replay the same trace without tripping over its own half-finished
	// output (DFS writes reject existing paths).
	var written []string
	fail := func(err error) (work, error) {
		for _, p := range written {
			e.fs.Delete(p)
		}
		return w, err
	}
	for _, op := range res.Ops {
		if op.Write {
			if virtual {
				w.writeBytes += op.Size
				if err := e.fs.WriteVirtual(op.Path, op.Size, node); err != nil {
					return fail(err)
				}
			} else {
				w.writeBytes += int64(len(op.Data))
				if err := e.fs.Write(op.Path, op.Data, node); err != nil {
					return fail(err)
				}
			}
			written = append(written, op.Path)
			continue
		}
		// Read op. The trace holds at most one per (path, format) per
		// task, so per-task read dedup is already done.
		nc := e.cacheFor(node)
		if nc != nil {
			if entry, ok := nc.get(op.Path); ok {
				// Virtual entries hit on any access; materialized ones
				// only when the node holds the requested format.
				hit := virtual || (op.Sparse && entry.hasSparse) || (!op.Sparse && entry.hasDense)
				if hit {
					w.cacheBytes += entry.size
					continue
				}
			}
		}
		sp, err := e.fs.ReadAccount(op.Path, node)
		if err != nil {
			return fail(err)
		}
		w.localBytes += sp.Local
		w.rackBytes += sp.RackLocal
		w.remoteBytes += sp.Remote
		if nc != nil {
			nc.put(op.Path, sp.Total(), !virtual && !op.Sparse, !virtual && op.Sparse)
		}
	}
	return w, nil
}
