package exec

import (
	"fmt"
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/compute"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
)

// BenchmarkMaterializedMatMul measures real tile compute through the full
// engine (decode, Gemm, encode, DFS replay) for the sequential reference
// backend versus an 8-wide worker pool, on an n x n dense multiply. The
// pool's wall-clock win scales with physical cores (it is injected via
// Config.Backend, so the benchmark exercises the pool machinery even where
// GOMAXPROCS would cap Config.Workers); results are byte-for-byte
// identical either way. Run with -benchtime=1x: one iteration is a full
// 2n^3-flop execution.
func BenchmarkMaterializedMatMul(b *testing.B) {
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1024, 4096} {
		src := fmt.Sprintf("input A %d %d\ninput B %d %d\nC = A * B\noutput C\n", n, n, n, n)
		prog, err := lang.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		a := linalg.RandomDense(n, n, 1)
		bm := linalg.RandomDense(n, n, 2)
		for _, bk := range []struct {
			name string
			be   compute.Backend
		}{
			{"sequential", compute.NewSequential()},
			{"pool8", compute.NewPool(8)},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, bk.name), func(b *testing.B) {
				b.SetBytes(int64(2 * n * n * 8)) // input bytes per run
				for i := 0; i < b.N; i++ {
					pl, err := plan.Compile(prog, plan.Config{TileSize: 512})
					if err != nil {
						b.Fatal(err)
					}
					pl.AutoSplit(cl.TotalSlots())
					e, err := New(Config{Cluster: cl, Materialize: true, Seed: 3, Backend: bk.be})
					if err != nil {
						b.Fatal(err)
					}
					data := map[string]*linalg.Dense{"A": a, "B": bm}
					for _, in := range pl.Inputs {
						if err := e.LoadDense(in, data[in.Name]); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := e.Run(pl); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkVirtualMatMulRun measures the engine's scheduling throughput:
// one full virtual execution of a 256-task matrix multiply.
func BenchmarkVirtualMatMulRun(b *testing.B) {
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 16, 2)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lang.Parse(`
input A 32768 32768
input B 32768 32768
C = A * B
output C
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := plan.Compile(prog, plan.Config{TileSize: 2048})
		if err != nil {
			b.Fatal(err)
		}
		pl.AutoSplit(cl.TotalSlots())
		e, err := New(Config{Cluster: cl, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := e.Run(pl); err != nil {
			b.Fatal(err)
		}
	}
}
