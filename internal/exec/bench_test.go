package exec

import (
	"testing"

	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/plan"
)

// BenchmarkVirtualMatMulRun measures the engine's scheduling throughput:
// one full virtual execution of a 256-task matrix multiply.
func BenchmarkVirtualMatMulRun(b *testing.B) {
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, 16, 2)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lang.Parse(`
input A 32768 32768
input B 32768 32768
C = A * B
output C
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := plan.Compile(prog, plan.Config{TileSize: 2048})
		if err != nil {
			b.Fatal(err)
		}
		pl.AutoSplit(cl.TotalSlots())
		e, err := New(Config{Cluster: cl, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := e.Run(pl); err != nil {
			b.Fatal(err)
		}
	}
}
