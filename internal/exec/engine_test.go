package exec

import (
	"math"
	"strings"
	"testing"

	"cumulon/internal/chaos"
	"cumulon/internal/cloud"
	"cumulon/internal/lang"
	"cumulon/internal/linalg"
	"cumulon/internal/plan"
	"cumulon/internal/testutil"
)

func testCluster(t *testing.T, nodes, slots int) cloud.Cluster {
	t.Helper()
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func newTestEngine(t *testing.T, nodes, slots int, materialize bool) *Engine {
	t.Helper()
	e, err := New(Config{
		Cluster:     testCluster(t, nodes, slots),
		Materialize: materialize,
		Seed:        7,
		NoiseFactor: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runProgram compiles src, loads inputs, runs it, and returns outputs plus
// metrics.
func runProgram(t *testing.T, e *Engine, src string, cfg plan.Config, data map[string]*linalg.Dense, totalSlots int) (map[string]*linalg.Dense, *RunMetrics, *plan.Plan) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TileSize == 0 {
		cfg.TileSize = 4
	}
	pl, err := plan.Compile(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(totalSlots)
	for _, in := range pl.Inputs {
		if err := e.LoadDense(in, data[in.Name]); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	outs := map[string]*linalg.Dense{}
	for name, meta := range pl.Outputs {
		d, err := e.FetchOutput(meta)
		if err != nil {
			t.Fatal(err)
		}
		outs[name] = d
	}
	return outs, m, pl
}

func TestEngineMatMulMatchesOracle(t *testing.T) {
	e := newTestEngine(t, 4, 2, true)
	a := linalg.RandomDense(19, 11, 1)
	b := linalg.RandomDense(11, 7, 2)
	outs, m, _ := runProgram(t, e, `
input A 19 11
input B 11 7
C = A * B
output C
`, plan.Config{}, map[string]*linalg.Dense{"A": a, "B": b}, 8)
	want := a.Mul(b)
	if !outs["C"].AlmostEqual(want, 1e-9) {
		t.Fatalf("matmul mismatch, maxdiff %g", outs["C"].MaxAbsDiff(want))
	}
	if m.TotalSeconds <= 0 || len(m.Tasks) == 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestEngineFusedEpilogue(t *testing.T) {
	e := newTestEngine(t, 3, 2, true)
	h := linalg.RandomDense(5, 30, 3).Map(func(x float64) float64 { return x + 0.5 })
	w := linalg.RandomDense(40, 5, 4).Map(func(x float64) float64 { return x + 0.5 })
	v := linalg.RandomDense(40, 30, 5).Map(func(x float64) float64 { return x + 0.5 })
	outs, _, pl := runProgram(t, e, `
input H 5 30
input W 40 5
input V 40 30
H = H .* (W' * V)
output H
`, plan.Config{}, map[string]*linalg.Dense{"H": h, "W": w, "V": v}, 6)
	if len(pl.Jobs) != 1 {
		t.Fatalf("fusion regressed: %d jobs", len(pl.Jobs))
	}
	want := h.ElemMul(w.T().Mul(v))
	if !outs["H"].AlmostEqual(want, 1e-9) {
		t.Fatalf("fused epilogue mismatch, maxdiff %g", outs["H"].MaxAbsDiff(want))
	}
}

func TestEngineKSplitAggregation(t *testing.T) {
	e := newTestEngine(t, 4, 2, true)
	a := linalg.RandomDense(8, 33, 6)
	b := linalg.RandomDense(33, 8, 7)
	prog, err := lang.Parse(`
input A 8 33
input B 33 8
C = A * B
output C
`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Force a 3-way k-split: exercises partials plus aggregation phase.
	pl.Jobs[0].Split = plan.Split{CI: 2, CJ: 2, CK: 3}
	for _, in := range pl.Inputs {
		if err := e.LoadDense(in, map[string]*linalg.Dense{"A": a, "B": b}[in.Name]); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.FetchOutput(pl.Outputs["C"])
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(a.Mul(b), 1e-9) {
		t.Fatalf("k-split product mismatch, maxdiff %g", got.MaxAbsDiff(a.Mul(b)))
	}
	if m.Jobs[0].Phases != 2 {
		t.Fatalf("k-split job should run 2 phases, got %d", m.Jobs[0].Phases)
	}
	// Partial matrices must be garbage collected.
	if paths := e.FS().List("/matrix/C#1~p"); len(paths) != 0 {
		t.Fatalf("partials not cleaned: %v", paths)
	}
}

func TestEngineSparseInput(t *testing.T) {
	e := newTestEngine(t, 3, 2, true)
	v := linalg.RandomSparseDense(30, 20, 0.15, 8)
	h := linalg.RandomDense(20, 6, 9)
	outs, m, _ := runProgram(t, e, `
input V 30 20 sparse
input H 20 6
X = V * H
output X
`, plan.Config{Densities: map[string]float64{"V": 0.15}}, map[string]*linalg.Dense{"V": v, "H": h}, 6)
	want := v.Mul(h)
	if !outs["X"].AlmostEqual(want, 1e-9) {
		t.Fatalf("sparse matmul mismatch, maxdiff %g", outs["X"].MaxAbsDiff(want))
	}
	// The sparse kernel must do far fewer flops than a dense product.
	dense := 2 * int64(30) * 20 * 6
	if m.TotalFlops >= dense {
		t.Fatalf("sparse flops %d not below dense %d", m.TotalFlops, dense)
	}
}

func TestEngineSparseTransposedLeaf(t *testing.T) {
	e := newTestEngine(t, 3, 2, true)
	v := linalg.RandomSparseDense(25, 10, 0.2, 10)
	w := linalg.RandomDense(25, 4, 11)
	outs, _, _ := runProgram(t, e, `
input V 25 10 sparse
input W 25 4
X = V' * W
output X
`, plan.Config{Densities: map[string]float64{"V": 0.2}}, map[string]*linalg.Dense{"V": v, "W": w}, 6)
	want := v.T().Mul(w)
	if !outs["X"].AlmostEqual(want, 1e-9) {
		t.Fatalf("sparse transposed matmul mismatch, maxdiff %g", outs["X"].MaxAbsDiff(want))
	}
}

// TestEngineDoubleTransposedLeaves covers the C = A' * B' compute path,
// where both multiply operands are bare transposed dense leaves and the
// task layer feeds the raw tiles straight into the transposed GEMM
// kernels instead of materializing either transpose.
func TestEngineDoubleTransposedLeaves(t *testing.T) {
	e := newTestEngine(t, 3, 2, true)
	a := linalg.RandomDense(13, 21, 21)
	b := linalg.RandomDense(9, 13, 22)
	outs, _, _ := runProgram(t, e, `
input A 13 21
input B 9 13
X = A' * B'
output X
`, plan.Config{}, map[string]*linalg.Dense{"A": a, "B": b}, 6)
	want := a.T().Mul(b.T())
	if !outs["X"].AlmostEqual(want, 1e-9) {
		t.Fatalf("double-transposed matmul mismatch, maxdiff %g", outs["X"].MaxAbsDiff(want))
	}
}

// The central integration property: on random programs, the distributed
// engine agrees with the reference interpreter.
func TestEngineMatchesInterpreterOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := testutil.NewGen(seed)
		prog := g.Program("rand", 2, 3)
		data := g.InputData(seed * 13)
		want, err := lang.Interpret(prog, data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pl.AutoSplit(4)
		e := newTestEngine(t, 3, 2, true)
		for _, in := range pl.Inputs {
			if err := e.LoadDense(in, data[in.Name]); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if _, err := e.Run(pl); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, pl)
		}
		for name, meta := range pl.Outputs {
			got, err := e.FetchOutput(meta)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !got.AlmostEqual(want[name], 1e-8) {
				t.Fatalf("seed %d output %s mismatch (maxdiff %g)\nprogram:\n%s",
					seed, name, got.MaxAbsDiff(want[name]), prog)
			}
		}
	}
}

func TestEngineVirtualModeMatchesWorkProfile(t *testing.T) {
	// The same plan, materialized vs virtual: identical task counts and
	// near-identical byte/flop accounting (virtual estimates dense exactly).
	src := `
input A 32 24
input B 24 16
C = abs(A * B) .* (A * B)
output C
`
	a := linalg.RandomDense(32, 24, 12)
	b := linalg.RandomDense(24, 16, 13)

	eReal := newTestEngine(t, 4, 2, true)
	_, mReal, _ := runProgram(t, eReal, src, plan.Config{}, map[string]*linalg.Dense{"A": a, "B": b}, 8)

	eVirt := newTestEngine(t, 4, 2, false)
	prog, _ := lang.Parse(src)
	pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(8)
	for _, in := range pl.Inputs {
		if err := eVirt.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	mVirt, err := eVirt.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(mReal.Tasks) != len(mVirt.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(mReal.Tasks), len(mVirt.Tasks))
	}
	if mReal.TotalFlops != mVirt.TotalFlops {
		t.Fatalf("flops differ: %d vs %d", mReal.TotalFlops, mVirt.TotalFlops)
	}
	rb := float64(mReal.TotalReadBytes)
	if math.Abs(rb-float64(mVirt.TotalReadBytes))/rb > 0.01 {
		t.Fatalf("read bytes diverge: %d vs %d", mReal.TotalReadBytes, mVirt.TotalReadBytes)
	}
	if mReal.TotalWriteBytes != mVirt.TotalWriteBytes {
		t.Fatalf("write bytes differ: %d vs %d", mReal.TotalWriteBytes, mVirt.TotalWriteBytes)
	}
}

func TestEngineMoreNodesFaster(t *testing.T) {
	src := `
input A 8192 8192
input B 8192 8192
C = A * B
output C
`
	run := func(nodes int) float64 {
		prog, _ := lang.Parse(src)
		pl, err := plan.Compile(prog, plan.Config{TileSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Cluster: testCluster(t, nodes, 2), Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		pl.AutoSplit(nodes * 2)
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalSeconds
	}
	t2, t8 := run(2), run(8)
	if t8 >= t2 {
		t.Fatalf("8 nodes (%.1fs) not faster than 2 nodes (%.1fs)", t8, t2)
	}
}

func TestEngineRetryOnInjectedFault(t *testing.T) {
	e, err := New(Config{
		Cluster:     testCluster(t, 3, 2),
		Materialize: true,
		Seed:        1,
		Chaos: &chaos.Schedule{Targets: []chaos.TargetFault{
			{Job: 0, Phase: 0, Index: 0, Attempts: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := linalg.RandomDense(8, 8, 1)
	outs, m, _ := runProgram(t, e, `
input A 8 8
B = A .* A
output B
`, plan.Config{}, map[string]*linalg.Dense{"A": a}, 6)
	if !outs["B"].AlmostEqual(a.ElemMul(a), 1e-12) {
		t.Fatal("result wrong after retry")
	}
	retried := false
	for _, tr := range m.Tasks {
		if tr.Retries > 0 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("no retry recorded")
	}
	recovered := false
	for _, tr := range m.Tasks {
		if tr.Retries > 0 && tr.RecoverySec > 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("retried task charged no recovery time")
	}
}

func TestEnginePersistentFaultFailsJob(t *testing.T) {
	// Index 0 fails on every attempt: the retry budget must run out and
	// fail the job terminally instead of retrying forever.
	e, err := New(Config{
		Cluster:     testCluster(t, 3, 2),
		Materialize: true,
		Seed:        1,
		Chaos: &chaos.Schedule{Targets: []chaos.TargetFault{
			{Job: -1, Phase: -1, Index: 0, Attempts: 1 << 30},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := lang.Parse("input A 8 8\nB = A .* A\noutput B")
	pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadDense(pl.Inputs[0], linalg.RandomDense(8, 8, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(pl); err == nil {
		t.Fatal("want failure after exhausted retries")
	}
}

func TestEngineRetryBudgetConfigurable(t *testing.T) {
	// A task that fails exactly 5 times succeeds with a budget of 5 and
	// fails terminally with the default budget of 3.
	run := func(budget int) error {
		e, err := New(Config{
			Cluster:        testCluster(t, 3, 2),
			Materialize:    true,
			Seed:           1,
			MaxTaskRetries: budget,
			Chaos: &chaos.Schedule{Targets: []chaos.TargetFault{
				{Job: 0, Phase: 0, Index: 0, Attempts: 5},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		prog, _ := lang.Parse("input A 8 8\nB = A .* A\noutput B")
		pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.LoadDense(pl.Inputs[0], linalg.RandomDense(8, 8, 1)); err != nil {
			t.Fatal(err)
		}
		_, err = e.Run(pl)
		return err
	}
	if err := run(5); err != nil {
		t.Fatalf("budget 5 should absorb 5 faults: %v", err)
	}
	if err := run(0); err == nil {
		t.Fatal("default budget (3) should fail on 5 faults")
	}
	if err := run(-1); err == nil {
		t.Fatal("negative budget disables retries; even one fault must be terminal")
	}
}

func TestEngineRetryBackoffCharged(t *testing.T) {
	// One fault with backoff base 10 vs base 0: the delta in the retried
	// task's recovery time must be exactly the backoff (startup is charged
	// in both runs).
	run := func(backoff float64) *RunMetrics {
		e, err := New(Config{
			Cluster:         testCluster(t, 3, 2),
			Materialize:     true,
			Seed:            1,
			RetryBackoffSec: Float(backoff),
			Chaos: &chaos.Schedule{Targets: []chaos.TargetFault{
				{Job: 0, Phase: 0, Index: 0, Attempts: 2},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, m, _ := runProgram(t, e, "input A 8 8\nB = A .* A\noutput B",
			plan.Config{}, map[string]*linalg.Dense{"A": linalg.RandomDense(8, 8, 1)}, 6)
		return m
	}
	slow, fast := run(10), run(0)
	var slowRec, fastRec float64
	for _, tr := range slow.Tasks {
		slowRec += tr.RecoverySec
	}
	for _, tr := range fast.Tasks {
		fastRec += tr.RecoverySec
	}
	// Two failed attempts: backoff 10*2^0 + 10*2^1 = 30 extra seconds.
	if diff := slowRec - fastRec; diff < 30-1e-9 || diff > 30+1e-9 {
		t.Fatalf("backoff delta = %.3fs, want 30s (exponential 10+20)", diff)
	}
	if slow.TotalRetries != 2 || fast.TotalRetries != 2 {
		t.Fatalf("retries: slow %d fast %d, want 2", slow.TotalRetries, fast.TotalRetries)
	}
}

func TestEngineAllNodesDeadSurfacesError(t *testing.T) {
	// With every other node dead, a faulting task has nowhere to retry:
	// pickOtherNode must surface a scheduling error, not loop on the same
	// node.
	e, err := New(Config{
		Cluster:     testCluster(t, 3, 2),
		Materialize: true,
		Seed:        1,
		Chaos: &chaos.Schedule{Targets: []chaos.TargetFault{
			{Job: 0, Phase: 0, Index: 0, Attempts: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := lang.Parse("input A 8 8\nB = A .* A\noutput B")
	pl, err := plan.Compile(prog, plan.Config{TileSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadDense(pl.Inputs[0], linalg.RandomDense(8, 8, 1)); err != nil {
		t.Fatal(err)
	}
	e.FS().KillNode(1)
	e.FS().KillNode(2)
	_, err = e.Run(pl)
	if err == nil {
		t.Fatal("want scheduling error when no other live node exists")
	}
	if !strings.Contains(err.Error(), "no other live node") {
		t.Fatalf("error should name the retry dead end, got: %v", err)
	}
}

func TestEngineSurvivesDeadNode(t *testing.T) {
	e := newTestEngine(t, 4, 2, true)
	a := linalg.RandomDense(16, 16, 2)
	prog, _ := lang.Parse("input A 16 16\nB = A .* A\noutput B")
	pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(8)
	if err := e.LoadDense(pl.Inputs[0], a); err != nil {
		t.Fatal(err)
	}
	// A node dies after ingest; replication must keep all tiles readable
	// and the scheduler must avoid the dead node.
	e.FS().KillNode(1)
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range m.Tasks {
		if tr.Node == 1 {
			t.Fatal("task scheduled on dead node")
		}
	}
	got, err := e.FetchOutput(pl.Outputs["B"])
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(a.ElemMul(a), 1e-12) {
		t.Fatal("result wrong after node death")
	}
}

func TestEngineRerunOverwrites(t *testing.T) {
	e := newTestEngine(t, 3, 2, true)
	a := linalg.RandomDense(8, 8, 3)
	prog, _ := lang.Parse("input A 8 8\nB = 2 * A\noutput B")
	pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadDense(pl.Inputs[0], a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(pl); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(pl); err != nil {
		t.Fatalf("re-run failed: %v", err)
	}
	got, err := e.FetchOutput(pl.Outputs["B"])
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(a.Scale(2), 1e-12) {
		t.Fatal("re-run result wrong")
	}
}

func TestEngineDeterministicTiming(t *testing.T) {
	run := func() float64 {
		e := newTestEngine(t, 4, 2, false)
		prog, _ := lang.Parse("input A 64 64\ninput B 64 64\nC = A * B\noutput C")
		pl, err := plan.Compile(prog, plan.Config{TileSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		pl.AutoSplit(8)
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalSeconds
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different times: %v vs %v", a, b)
	}
}

func TestEngineGCIntermediates(t *testing.T) {
	e := newTestEngine(t, 3, 2, true)
	a := linalg.RandomDense(8, 8, 4)
	_, _, pl := runProgram(t, e, `
input A 8 8
B = (A * A) .* (A * A')
output B
`, plan.Config{}, map[string]*linalg.Dense{"A": a}, 4)
	for _, im := range pl.Intermediates() {
		if paths := e.FS().List("/matrix/" + im.Name + "/"); len(paths) != 0 {
			t.Fatalf("intermediate %s not collected: %v", im.Name, paths)
		}
	}
}

func TestEngineOverlapJobsFasterOnIndependentWork(t *testing.T) {
	// Two independent products: with barriers they serialize; with
	// overlap they share the cluster.
	src := `
input A 16384 16384
input B 16384 16384
C = A * B
D = B * A
output C
output D
`
	run := func(overlap bool) float64 {
		prog, _ := lang.Parse(src)
		pl, err := plan.Compile(prog, plan.Config{TileSize: 2048})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Cluster: testCluster(t, 8, 2), Seed: 3, OverlapJobs: overlap})
		if err != nil {
			t.Fatal(err)
		}
		// Deliberately under-split each job so one alone cannot fill the
		// cluster: 8 tasks per job on 16 slots.
		for _, j := range pl.Jobs {
			j.Split = plan.Split{CI: 4, CJ: 2, CK: 1}
		}
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalSeconds
	}
	barrier, overlap := run(false), run(true)
	if overlap >= barrier*0.8 {
		t.Fatalf("overlap (%.1fs) should clearly beat barriers (%.1fs)", overlap, barrier)
	}
}

func TestEngineOverlapRespectsDependencies(t *testing.T) {
	// A chain C = (A*A)*A: the second job cannot start before the first
	// ends, so overlap cannot reorder dependent work, and results stay
	// correct.
	e, err := New(Config{Cluster: testCluster(t, 3, 2), Materialize: true, Seed: 1, OverlapJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	a := linalg.RandomDense(12, 12, 9)
	outs, m, _ := runProgram(t, e, `
input A 12 12
C = (A * A) * A
output C
`, plan.Config{}, map[string]*linalg.Dense{"A": a}, 6)
	want := a.Mul(a).Mul(a)
	if !outs["C"].AlmostEqual(want, 1e-9) {
		t.Fatal("overlap broke dependent results")
	}
	// The dependent job must start no earlier than its dependency ends.
	var first, second JobRecord
	for _, j := range m.Jobs {
		if j.JobID == 0 {
			first = j
		}
		if j.JobID == 1 {
			second = j
		}
	}
	if second.StartSec < first.EndSec-1e-9 {
		t.Fatalf("dependent job started at %v before dep ended at %v", second.StartSec, first.EndSec)
	}
}

func TestEngineMaskedMultiplyMatchesOracle(t *testing.T) {
	e := newTestEngine(t, 4, 2, true)
	v := linalg.RandomSparseDense(26, 22, 0.25, 31)
	w := linalg.RandomDense(26, 4, 32)
	h := linalg.RandomDense(4, 22, 33)
	src := `
input V 26 22 sparse
input W 26 4
input H 4 22
R = mask(V, W * H)
output R
`
	outs, m, _ := runProgram(t, e, src,
		plan.Config{Densities: map[string]float64{"V": 0.25}},
		map[string]*linalg.Dense{"V": v, "W": w, "H": h}, 8)
	prog, _ := lang.Parse(src)
	want, err := lang.Interpret(prog, map[string]*linalg.Dense{"V": v, "W": w, "H": h})
	if err != nil {
		t.Fatal(err)
	}
	if !outs["R"].AlmostEqual(want["R"], 1e-9) {
		t.Fatalf("masked product mismatch, maxdiff %g", outs["R"].MaxAbsDiff(want["R"]))
	}
	// Masked flops must be far below the dense product's.
	dense := 2 * int64(26) * 4 * 22
	if m.TotalFlops >= dense {
		t.Fatalf("masked flops %d not below dense %d", m.TotalFlops, dense)
	}
}

func TestEngineMaskedTransposedPattern(t *testing.T) {
	// mask(V', H' * W') — the pattern read through the transposed path.
	e := newTestEngine(t, 3, 2, true)
	v := linalg.RandomSparseDense(18, 12, 0.3, 41)
	w := linalg.RandomDense(18, 3, 42)
	h := linalg.RandomDense(3, 12, 43)
	src := `
input V 18 12 sparse
input W 18 3
input H 3 12
R = mask(V', H' * W')
output R
`
	outs, _, _ := runProgram(t, e, src,
		plan.Config{Densities: map[string]float64{"V": 0.3}},
		map[string]*linalg.Dense{"V": v, "W": w, "H": h}, 6)
	prog, _ := lang.Parse(src)
	want, err := lang.Interpret(prog, map[string]*linalg.Dense{"V": v, "W": w, "H": h})
	if err != nil {
		t.Fatal(err)
	}
	if !outs["R"].AlmostEqual(want["R"], 1e-9) {
		t.Fatalf("transposed masked product mismatch, maxdiff %g", outs["R"].MaxAbsDiff(want["R"]))
	}
}

func TestEngineMaskedOutputConsumedDownstream(t *testing.T) {
	// The sparse masked output feeds a later product.
	e := newTestEngine(t, 3, 2, true)
	v := linalg.RandomSparseDense(20, 16, 0.2, 51)
	w := linalg.RandomDense(20, 3, 52)
	h := linalg.RandomDense(3, 16, 53)
	src := `
input V 20 16 sparse
input W 20 3
input H 3 16
R = mask(V, W * H)
S = R * H'
output S
`
	outs, _, _ := runProgram(t, e, src,
		plan.Config{Densities: map[string]float64{"V": 0.2}},
		map[string]*linalg.Dense{"V": v, "W": w, "H": h}, 6)
	prog, _ := lang.Parse(src)
	want, err := lang.Interpret(prog, map[string]*linalg.Dense{"V": v, "W": w, "H": h})
	if err != nil {
		t.Fatal(err)
	}
	if !outs["S"].AlmostEqual(want["S"], 1e-9) {
		t.Fatalf("downstream of masked product mismatch, maxdiff %g", outs["S"].MaxAbsDiff(want["S"]))
	}
}

func TestEngineMaskedVirtualMode(t *testing.T) {
	prog, err := lang.Parse(`
input V 16384 16384 sparse
input W 16384 64
input H 64 16384
R = mask(V, W * H)
output R
`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(prog, plan.Config{TileSize: 2048, Densities: map[string]float64{"V": 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(16)
	e, err := New(Config{Cluster: testCluster(t, 8, 2), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pl.Inputs {
		if err := e.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	// At 1% density the masked product must be drastically cheaper than
	// the dense one.
	denseFlops := 2 * int64(16384) * 64 * 16384
	if m.TotalFlops > denseFlops/20 {
		t.Fatalf("virtual masked flops %d not discounted (dense %d)", m.TotalFlops, denseFlops)
	}
}

func TestEngineRackTopologyAffectsTime(t *testing.T) {
	// The same workload on the same 16 nodes: an oversubscribed two-rack
	// topology (cross-rack penalty 3) must be slower than a flat network.
	run := func(rackSize int, penalty float64) float64 {
		prog, _ := lang.Parse(`
input A 16384 16384
input B 16384 16384
C = A .* B + A
output C
`)
		pl, err := plan.Compile(prog, plan.Config{TileSize: 2048})
		if err != nil {
			t.Fatal(err)
		}
		pl.AutoSplit(32)
		e, err := New(Config{
			Cluster:          testCluster(t, 16, 2),
			Seed:             6,
			RackSize:         rackSize,
			CrossRackPenalty: Float(penalty),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalSeconds
	}
	flat := run(0, 1)
	racked := run(8, 3)
	if racked <= flat {
		t.Fatalf("cross-rack penalty should slow the run: flat %.1fs vs racked %.1fs", flat, racked)
	}
}

func TestEngineRackedRunRecordsRackReads(t *testing.T) {
	prog, _ := lang.Parse("input A 4096 4096\nB = A .* A\noutput B")
	pl, err := plan.Compile(prog, plan.Config{TileSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(16)
	e, err := New(Config{Cluster: testCluster(t, 8, 2), Seed: 8, RackSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pl.Inputs {
		if err := e.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	var rack int64
	for _, tr := range m.Tasks {
		rack += tr.RackReadBytes
	}
	if rack == 0 {
		t.Fatal("racked run recorded no rack-local reads")
	}
}

func TestEngineSpeculationReducesTail(t *testing.T) {
	// Heavy-tailed noise produces stragglers; speculation must shorten
	// the makespan (or at worst match it) and record backup wins.
	run := func(speculate bool) (float64, int) {
		prog, _ := lang.Parse(`
input A 16384 16384
input B 16384 16384
C = A * B
output C
`)
		pl, err := plan.Compile(prog, plan.Config{TileSize: 2048})
		if err != nil {
			t.Fatal(err)
		}
		pl.AutoSplit(16)
		e, err := New(Config{
			Cluster:     testCluster(t, 8, 2),
			Seed:        12,
			NoiseFactor: 0.6, // violent stragglers
			Speculation: speculate,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				t.Fatal(err)
			}
		}
		m, err := e.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		return m.TotalSeconds, m.SpeculativeTasks
	}
	plain, zeroSpec := run(false)
	spec, wins := run(true)
	if zeroSpec != 0 {
		t.Fatal("speculation metrics nonzero with speculation off")
	}
	if wins == 0 {
		t.Fatal("no speculative wins under heavy noise")
	}
	if spec > plain {
		t.Fatalf("speculation made things worse: %.1fs vs %.1fs", spec, plain)
	}
}

func TestEngineSpeculationNoopWithoutNoise(t *testing.T) {
	prog, _ := lang.Parse("input A 4096 4096\nB = A .* A\noutput B")
	pl, err := plan.Compile(prog, plan.Config{TileSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(8)
	e, err := New(Config{Cluster: testCluster(t, 4, 2), Seed: 1, Speculation: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pl.Inputs {
		if err := e.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpeculativeTasks != 0 {
		t.Fatalf("noise-free run speculated %d tasks", m.SpeculativeTasks)
	}
}

func TestUtilizationMetric(t *testing.T) {
	prog, _ := lang.Parse("input A 8192 8192\ninput B 8192 8192\nC = A * B\noutput C")
	pl, err := plan.Compile(prog, plan.Config{TileSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	cl := testCluster(t, 4, 2)
	pl.AutoSplit(cl.TotalSlots())
	e, err := New(Config{Cluster: cl, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pl.Inputs {
		if err := e.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	u := m.Utilization(cl.TotalSlots())
	if u <= 0.3 || u > 1 {
		t.Fatalf("utilization %v implausible for a well-split matmul", u)
	}
	// The degenerate serial split wastes almost the whole cluster.
	pl2, _ := plan.Compile(prog, plan.Config{TileSize: 1024})
	pl2.Jobs[0].Split = plan.Split{CI: 1, CJ: 1, CK: 1}
	e2, _ := New(Config{Cluster: cl, Seed: 2})
	for _, in := range pl2.Inputs {
		if err := e2.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := e2.Run(pl2)
	if err != nil {
		t.Fatal(err)
	}
	if u2 := m2.Utilization(cl.TotalSlots()); u2 >= u {
		t.Fatalf("serial split should waste the cluster: %v vs %v", u2, u)
	}
}

func TestTimelineCSV(t *testing.T) {
	prog, _ := lang.Parse("input A 4096 4096\nB = A .* A\noutput B")
	pl, err := plan.Compile(prog, plan.Config{TileSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	cl := testCluster(t, 2, 2)
	pl.AutoSplit(cl.TotalSlots())
	e, err := New(Config{Cluster: cl, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range pl.Inputs {
		if err := e.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.TimelineCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(m.Tasks)+1 {
		t.Fatalf("timeline rows: %d for %d tasks", len(lines), len(m.Tasks))
	}
	if !strings.HasPrefix(lines[0], "job,phase,task,node,slot,") {
		t.Fatalf("header: %s", lines[0])
	}
	// Slot attribution is within range and no slot runs two tasks at once.
	type span struct{ s, e float64 }
	bySlot := map[int][]span{}
	for _, tr := range m.Tasks {
		if tr.Slot < 0 || tr.Slot >= cl.TotalSlots() {
			t.Fatalf("slot out of range: %d", tr.Slot)
		}
		bySlot[tr.Slot] = append(bySlot[tr.Slot], span{tr.StartSec, tr.StartSec + tr.Seconds})
	}
	for slot, spans := range bySlot {
		for i := 0; i < len(spans); i++ {
			for k := i + 1; k < len(spans); k++ {
				a, b := spans[i], spans[k]
				if a.s < b.e-1e-9 && b.s < a.e-1e-9 {
					t.Fatalf("slot %d runs overlapping tasks: %+v %+v", slot, a, b)
				}
			}
		}
	}
}

func TestNodeCacheSpeedsIterativeReads(t *testing.T) {
	// Three GNMF iterations re-read V each iteration; with per-node
	// caches the later reads are free.
	src := `
input V 40000 20000 sparse
input W 40000 10
input H 10 20000
for i in 1:3 {
  H = H .* (W' * V) ./ ((W' * W) * H)
  W = W .* (V * H') ./ (W * (H * H'))
}
output W
`
	run := func(cacheFrac float64) (*RunMetrics, error) {
		prog, err := lang.Parse(src)
		if err != nil {
			return nil, err
		}
		pl, err := plan.Compile(prog, plan.Config{TileSize: 2048, Densities: map[string]float64{"V": 0.05}})
		if err != nil {
			return nil, err
		}
		cl := testCluster(t, 8, 2)
		pl.AutoSplit(cl.TotalSlots())
		e, err := New(Config{Cluster: cl, Seed: 21, CacheFraction: cacheFrac})
		if err != nil {
			return nil, err
		}
		for _, in := range pl.Inputs {
			if err := e.LoadVirtual(in); err != nil {
				return nil, err
			}
		}
		return e.Run(pl)
	}
	cold, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := run(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if cold.TotalCacheBytes != 0 {
		t.Fatal("cache bytes recorded with caching off")
	}
	if warm.TotalCacheBytes == 0 {
		t.Fatal("no cache hits on an iterative workload")
	}
	if warm.TotalSeconds >= cold.TotalSeconds {
		t.Fatalf("caching did not help: %.1fs vs %.1fs", warm.TotalSeconds, cold.TotalSeconds)
	}
	if warm.TotalReadBytes >= cold.TotalReadBytes {
		t.Fatal("caching should reduce DFS read bytes")
	}
}

func TestNodeCacheCorrectness(t *testing.T) {
	// Materialized iterative run with caching: values must still match
	// the interpreter exactly (cached tiles are the same objects).
	src := `
input A 16 16
X = A
for i in 1:3 {
  X = X .* A + A
}
output X
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := linalg.RandomDense(16, 16, 3)
	want, err := lang.Interpret(prog, map[string]*linalg.Dense{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(prog, plan.Config{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl := testCluster(t, 3, 2)
	pl.AutoSplit(cl.TotalSlots())
	e, err := New(Config{Cluster: cl, Materialize: true, Seed: 5, CacheFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadDense(pl.Inputs[0], a); err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalCacheBytes == 0 {
		t.Fatal("expected cache hits (A re-read each iteration)")
	}
	got, err := e.FetchOutput(pl.Outputs["X"])
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(want["X"], 1e-9) {
		t.Fatal("cached run diverges from interpreter")
	}
	// Re-running must clear caches and still be correct.
	if _, err := e.Run(pl); err != nil {
		t.Fatal(err)
	}
	got2, err := e.FetchOutput(pl.Outputs["X"])
	if err != nil {
		t.Fatal(err)
	}
	if !got2.AlmostEqual(want["X"], 1e-9) {
		t.Fatal("re-run with caches diverges")
	}
}

func TestNodeCacheLRUEviction(t *testing.T) {
	c := newNodeCache(100)
	c.put("a", 40, false, false)
	c.put("b", 40, false, false)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	// Inserting c (40) must evict the least recently used entry: b.
	c.put("c", 40, false, false)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a (recently used) should survive")
	}
	// Oversized entries are refused.
	c.put("huge", 1000, false, false)
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry should not be cached")
	}
}
