package exec

// nodeCache is a per-node LRU tile cache: once a task on a node has read
// a tile, later tasks on the same node read it from memory instead of the
// DFS (Cumulon's memory-caching configuration setting). Payloads live in
// the compute layer; the engine only tracks which tiles — and in which
// format — a node holds, so cache hits are purely an accounting matter.
// Trace replay is sequential in virtual time, so no locking is needed, and
// the LRU order — hence timing — is deterministic.
type nodeCache struct {
	capacity int64
	used     int64
	entries  map[string]*cacheEntry
	// LRU list, most recent at the tail.
	head, tail *cacheEntry
}

type cacheEntry struct {
	path string
	size int64
	// hasDense / hasSparse record which decoded format(s) the node holds.
	// A materialized read only hits on a matching format (a re-read in the
	// other format goes back to the DFS, as the pre-compute-layer engine
	// did); virtual reads hit on any entry.
	hasDense, hasSparse bool
	prev, next          *cacheEntry
}

func newNodeCache(capacity int64) *nodeCache {
	return &nodeCache{capacity: capacity, entries: map[string]*cacheEntry{}}
}

func (c *nodeCache) get(path string) (*cacheEntry, bool) {
	e, ok := c.entries[path]
	if !ok {
		return nil, false
	}
	c.unlink(e)
	c.pushTail(e)
	return e, true
}

func (c *nodeCache) put(path string, size int64, hasDense, hasSparse bool) {
	if size > c.capacity {
		return
	}
	if old, ok := c.entries[path]; ok {
		c.unlink(old)
		c.used -= old.size
		delete(c.entries, path)
	}
	for c.used+size > c.capacity && c.head != nil {
		evict := c.head
		c.unlink(evict)
		c.used -= evict.size
		delete(c.entries, evict.path)
	}
	e := &cacheEntry{path: path, size: size, hasDense: hasDense, hasSparse: hasSparse}
	c.entries[path] = e
	c.pushTail(e)
	c.used += size
}

func (c *nodeCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *nodeCache) pushTail(e *cacheEntry) {
	e.prev = c.tail
	e.next = nil
	if c.tail != nil {
		c.tail.next = e
	}
	c.tail = e
	if c.head == nil {
		c.head = e
	}
}

// resetCaches builds fresh per-node caches for a run.
func (e *Engine) resetCaches() {
	if e.cfg.CacheFraction <= 0 {
		e.caches = nil
		return
	}
	capacity := int64(e.cfg.Cluster.Type.MemoryGB * 1e9 * e.cfg.CacheFraction)
	e.caches = make([]*nodeCache, e.cfg.Cluster.Nodes)
	for i := range e.caches {
		e.caches[i] = newNodeCache(capacity)
	}
}

// cacheFor returns the node's cache, or nil when caching is disabled.
func (e *Engine) cacheFor(node int) *nodeCache {
	if e.caches == nil || node < 0 || node >= len(e.caches) {
		return nil
	}
	return e.caches[node]
}
