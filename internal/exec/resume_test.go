// The harness lives in an external test package: it drives iterative
// programs from package workloads, which (transitively, via core)
// imports exec itself.
package exec_test

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"cumulon/internal/chaos"
	"cumulon/internal/ckpt"
	"cumulon/internal/cloud"
	"cumulon/internal/compute"
	"cumulon/internal/exec"
	"cumulon/internal/linalg"
	"cumulon/internal/obs"
	"cumulon/internal/plan"
	"cumulon/internal/workloads"
)

// faultCluster builds the standard 4x2 fault-test cluster.
func faultCluster(t *testing.T, nodes, slots int) cloud.Cluster {
	t.Helper()
	mt, err := cloud.TypeByName("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cloud.NewCluster(mt, nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// runIterative executes a workload materialized on the standard fault
// test cluster (racked, cached, noisy, speculating) with checkpointing
// at every iteration boundary. Run errors are returned, not fataled, so
// callers can assert on ProgramKilled.
func runIterative(t *testing.T, wl workloads.Workload, be compute.Backend, sched *chaos.Schedule, cs ckpt.Store, resume bool, rec obs.Recorder) (map[string]*linalg.Dense, *exec.RunMetrics, error) {
	t.Helper()
	e, err := exec.New(exec.Config{
		Cluster:         faultCluster(t, 4, 2),
		Materialize:     true,
		Seed:            7,
		NoiseFactor:     0.08,
		RackSize:        2,
		CacheFraction:   0.4,
		Speculation:     true,
		Backend:         be,
		Chaos:           sched,
		Recorder:        rec,
		CheckpointEvery: 1,
		CheckpointStore: cs,
		Resume:          resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(wl.Prog, plan.Config{TileSize: 8, Densities: wl.Densities})
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(8)
	data := wl.RandomInputs(5)
	for _, in := range pl.Inputs {
		if err := e.LoadDense(in, data[in.Name]); err != nil {
			t.Fatal(err)
		}
	}
	m, err := e.Run(pl)
	if err != nil {
		return nil, nil, err
	}
	outs := map[string]*linalg.Dense{}
	for name, meta := range pl.Outputs {
		d, err := e.FetchOutput(meta)
		if err != nil {
			t.Fatal(err)
		}
		outs[name] = d
	}
	return outs, m, nil
}

// releaseNear returns the job release time closest to target, excluding
// the first job's release at 0 (killing there would be a no-op: the
// kill-program check only fires for positive times).
func releaseNear(m *exec.RunMetrics, target float64) float64 {
	best := 0.0
	for _, j := range m.Jobs {
		if j.StartSec <= 0 {
			continue
		}
		if best == 0 || math.Abs(j.StartSec-target) < math.Abs(best-target) {
			best = j.StartSec
		}
	}
	return best
}

// canonSpans renders spans in an ID-free canonical form — kind, name,
// exact times, attributes, and the ancestor name path — keeping only
// spans at or after the resume clock (plus the program span), sorted.
func canonSpans(spans []obs.Span, clock float64) []string {
	byID := map[obs.SpanID]obs.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	path := func(s obs.Span) string {
		p := ""
		for cur := s; cur.Parent != obs.NoSpan; {
			par, ok := byID[cur.Parent]
			if !ok {
				break
			}
			p = par.Name + "/" + p
			cur = par
		}
		return p
	}
	var out []string
	for _, s := range spans {
		if s.Kind != obs.KindProgram && s.Start < clock {
			continue
		}
		out = append(out, fmt.Sprintf("%d|%s|%v|%v|%+v|%s", s.Kind, s.Name, s.Start, s.End, s.Attrs, path(s)))
	}
	sort.Strings(out)
	return out
}

// canonEvents renders events at or after the resume clock with their
// parent span's name, sorted.
func canonEvents(tr *obs.Trace, clock float64) []string {
	byID := map[obs.SpanID]obs.Span{}
	for _, s := range tr.Spans() {
		byID[s.ID] = s
	}
	var out []string
	for _, ev := range tr.Events() {
		if ev.Time < clock {
			continue
		}
		out = append(out, fmt.Sprintf("%s|%s|%v", byID[ev.Parent].Name, ev.Name, ev.Time))
	}
	sort.Strings(out)
	return out
}

// resumeClock returns the virtual time the resumed trace restarts at:
// the earliest non-program span start (0 when the run started from
// scratch, i.e. no checkpoint existed).
func resumeClock(spans []obs.Span) float64 {
	clock := math.Inf(1)
	for _, s := range spans {
		if s.Kind != obs.KindProgram && s.Start < clock {
			clock = s.Start
		}
	}
	if math.IsInf(clock, 1) {
		return 0
	}
	return clock
}

// TestCrashResumeDifferential is the crash-resume bit-identity
// contract, on both compute backends: each iterative workload is killed
// at roughly 20%, 50% and 80% of its fault-free makespan, resumed from
// the durable checkpoint store, and the resumed run must finish with
// bitwise-identical outputs, the identical total time, and a
// byte-identical post-resume trace (spans and events) compared to the
// uninterrupted oracle. Kills before the first checkpoint boundary
// resume from scratch and must then reproduce the oracle in full.
func TestCrashResumeDifferential(t *testing.T) {
	cases := []workloads.Workload{
		workloads.GNMF(26, 22, 4, 3, 0.25),
		workloads.GNMFKL(20, 16, 3, 2, 0.3),
		workloads.RSVD(24, 18, 4, 2),
		workloads.PageRank(24, 3, 0.2, 0.85),
	}
	backends := []struct {
		name string
		mk   func() compute.Backend
	}{
		{"seq", compute.NewSequential},
		{"pool", func() compute.Backend { return compute.NewPool(8) }},
	}
	for _, wl := range cases {
		for _, be := range backends {
			t.Run(wl.Name+"/"+be.name, func(t *testing.T) {
				oracleTr := obs.NewTrace()
				oOuts, oM, err := runIterative(t, wl, be.mk(), nil, nil, false, oracleTr)
				if err != nil {
					t.Fatal(err)
				}
				if oM.Checkpoints == 0 {
					t.Fatal("oracle run wrote no checkpoints; workload has no usable boundary")
				}
				for _, frac := range []float64{0.2, 0.5, 0.8} {
					frac := frac
					t.Run(fmt.Sprintf("kill%.0f%%", frac*100), func(t *testing.T) {
						killAt := releaseNear(oM, frac*oM.TotalSeconds)
						if killAt <= 0 {
							t.Fatal("no positive job release to kill at")
						}
						cs := ckpt.NewMemStore()
						_, _, err := runIterative(t, wl, be.mk(),
							&chaos.Schedule{KillProgramAt: killAt}, cs, false, nil)
						var pk *exec.ProgramKilled
						if !errors.As(err, &pk) {
							t.Fatalf("killed run: want ProgramKilled, got %v", err)
						}
						resTr := obs.NewTrace()
						rOuts, rM, err := runIterative(t, wl, be.mk(), nil, cs, true, resTr)
						if err != nil {
							t.Fatalf("resumed run: %v", err)
						}
						if frac >= 0.75 && rM.ResumedFromStmt == 0 {
							t.Errorf("late kill at %.1fs resumed from scratch; expected a checkpoint to cover it", killAt)
						}
						if rM.TotalSeconds != oM.TotalSeconds {
							t.Errorf("total time diverges: oracle %v, resumed %v", oM.TotalSeconds, rM.TotalSeconds)
						}
						for name, od := range oOuts {
							rd := rOuts[name]
							if rd == nil {
								t.Fatalf("resumed run missing output %s", name)
							}
							if at := firstBitDiff(od, rd); at >= 0 {
								t.Errorf("output %s not bitwise identical after resume: element %d is %x vs %x",
									name, at, math.Float64bits(od.Data[at]), math.Float64bits(rd.Data[at]))
							}
						}
						clock := resumeClock(resTr.Spans())
						wantSpans := canonSpans(oracleTr.Spans(), clock)
						gotSpans := canonSpans(resTr.Spans(), clock)
						if !reflect.DeepEqual(wantSpans, gotSpans) {
							t.Errorf("post-resume spans diverge from oracle: %d vs %d spans after clock %v\n%s",
								len(wantSpans), len(gotSpans), clock, diffLines(wantSpans, gotSpans))
						}
						wantEv := canonEvents(oracleTr, clock)
						gotEv := canonEvents(resTr, clock)
						if !reflect.DeepEqual(wantEv, gotEv) {
							t.Errorf("post-resume events diverge from oracle: %d vs %d after clock %v\n%s",
								len(wantEv), len(gotEv), clock, diffLines(wantEv, gotEv))
						}
					})
				}
			})
		}
	}
}

// firstBitDiff compares two matrices at the float64 bit-pattern level
// — the strictest possible identity, under which equal-bits NaNs match
// (reflect.DeepEqual would report NaN != NaN) — and returns the first
// differing element index, or -1 when identical. A shape mismatch
// reports element 0.
func firstBitDiff(a, b *linalg.Dense) int {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Data) != len(b.Data) {
		return 0
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return i
		}
	}
	return -1
}

// diffLines reports the first few one-sided lines between two sorted
// string sets, for failure messages.
func diffLines(want, got []string) string {
	w := map[string]bool{}
	for _, s := range want {
		w[s] = true
	}
	g := map[string]bool{}
	for _, s := range got {
		g[s] = true
	}
	var out string
	n := 0
	for _, s := range want {
		if !g[s] && n < 3 {
			out += "  oracle only: " + s + "\n"
			n++
		}
	}
	n = 0
	for _, s := range got {
		if !w[s] && n < 3 {
			out += "  resumed only: " + s + "\n"
			n++
		}
	}
	return out
}

// TestCheckpointKillBeforeAnyJob covers the degenerate kill time: a
// schedule that kills past the last job release never fires, so the
// run completes normally.
func TestCheckpointKillPastEndCompletes(t *testing.T) {
	wl := workloads.PageRank(24, 2, 0.2, 0.85)
	outs, m, err := runIterative(t, wl, compute.NewSequential(), &chaos.Schedule{KillProgramAt: 1e12}, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs["x"] == nil || m.TotalSeconds <= 0 {
		t.Fatal("run did not complete")
	}
}

// TestCheckpointRejectsOverlap pins the engine guard: checkpoints are
// global barriers, incompatible with the overlap scheduler.
func TestCheckpointRejectsOverlap(t *testing.T) {
	e, err := exec.New(exec.Config{
		Cluster:         faultCluster(t, 2, 2),
		Seed:            1,
		OverlapJobs:     true,
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := workloads.PageRank(16, 2, 0.2, 0.85)
	pl, err := plan.Compile(wl.Prog, plan.Config{TileSize: 8, Densities: wl.Densities})
	if err != nil {
		t.Fatal(err)
	}
	pl.AutoSplit(4)
	for _, in := range pl.Inputs {
		if err := e.LoadVirtual(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(pl); err == nil {
		t.Fatal("overlap + checkpoint must be rejected")
	}
}
