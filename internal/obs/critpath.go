package obs

import (
	"fmt"
	"io"
	"sort"
)

// Step is one contiguous interval of the critical path. Task steps point
// at the span that bounds progress; synthetic steps (queue, startup)
// cover scheduling gaps where no span was running on the binding chain.
type Step struct {
	// SpanID is the bounding span, or NoSpan for synthetic steps.
	SpanID SpanID
	Kind   Kind
	Name   string
	Start  float64
	End    float64
	// Breakdown attributes the step's duration to time categories; it
	// sums to End-Start.
	Breakdown Breakdown
}

// Seconds returns the step's duration.
func (s Step) Seconds() float64 { return s.End - s.Start }

// CriticalPath is the chain of spans that bounds a program's wall-clock:
// removing time anywhere else cannot shorten the run. Steps tile the
// program interval exactly, so Categories sums to TotalSeconds.
type CriticalPath struct {
	TotalSeconds float64
	Steps        []Step // in increasing time order, contiguous
	Categories   Breakdown
}

// CriticalPath walks the recorded span DAG backwards from the program
// end: within a phase it follows the chain of tasks whose finish times
// bound each other's starts (same-slot succession), across phases the
// barrier edges, across jobs the dependency edges recorded on job spans
// (falling back to "whichever job ends at this instant" under barrier
// scheduling). Unexplainable gaps become queue steps and the per-job
// launch gap becomes a startup step, so the returned steps cover 100% of
// the program interval.
func (t *Trace) CriticalPath() (*CriticalPath, error) {
	prog, err := t.Program()
	if err != nil {
		return nil, err
	}
	spans := t.Spans()
	kids := childIndex(spans)

	jobs := kids[prog.ID]
	jobByID := map[int]Span{}
	for _, j := range jobs {
		if j.Kind == KindJob {
			jobByID[j.Attrs.JobID] = j
		}
	}
	// All task spans, for same-slot predecessor searches across jobs
	// (OverlapJobs shares slots between concurrent jobs).
	var allTasks []Span
	for _, s := range spans {
		if s.Kind == KindTask {
			allTasks = append(allTasks, s)
		}
	}

	total := prog.End - prog.Start
	eps := 1e-9 * (1 + total)
	cp := &CriticalPath{TotalSeconds: total}
	var rev []Step // steps collected newest-first

	push := func(s Step) {
		if s.End-s.Start > eps/2 {
			rev = append(rev, s)
		}
	}
	queueStep := func(start, end float64, name string) Step {
		var b Breakdown
		b[CatQueue] = end - start
		return Step{Kind: KindPhase, Name: name, Start: start, End: end, Breakdown: b}
	}

	// walkJob consumes [j.Start, t] and returns j.Start.
	walkJob := func(j Span, t float64) float64 {
		if j.End < t-eps {
			push(queueStep(j.End, t, "queue"))
			t = j.End
		}
		var phases []Span
		for _, c := range kids[j.ID] {
			if c.Kind == KindPhase {
				phases = append(phases, c)
			}
		}
		for pi := len(phases) - 1; pi >= 0; pi-- {
			ph := phases[pi]
			if ph.End < t-eps {
				push(queueStep(ph.End, t, "queue"))
				t = ph.End
			}
			phaseTasks := kids[ph.ID]
			lastNode, lastSlot := -1, -1
			for t > ph.Start+eps {
				tk, ok := findEndingAt(phaseTasks, allTasks, t, eps, lastNode, lastSlot)
				if !ok {
					push(queueStep(ph.Start, t, "queue"))
					t = ph.Start
					break
				}
				b := tk.Attrs.Breakdown
				if bt, d := b.Total(), tk.Seconds(); bt <= 0 && d > 0 {
					// Spans without a breakdown (hand-built traces,
					// coarse recorders) count wholly as compute.
					b[CatCompute] = d
				}
				push(Step{SpanID: tk.ID, Kind: KindTask, Name: tk.Name,
					Start: tk.Start, End: t, Breakdown: b})
				t = tk.Start
				lastNode, lastSlot = tk.Attrs.Node, tk.Attrs.Slot
			}
			if t > ph.Start {
				t = ph.Start
			}
		}
		if t > j.Start+eps {
			var b Breakdown
			b[CatStartup] = t - j.Start
			push(Step{Kind: KindJob, Name: j.Name + " startup", Start: j.Start, End: t, Breakdown: b})
		}
		return j.Start
	}

	// Start from the job that bounds the program end; follow dependency
	// (or barrier) edges backwards.
	t0 := prog.End
	cur, ok := lastJobEndingAt(jobs, t0, eps)
	for iter := 0; iter < len(spans)+2; iter++ {
		if !ok {
			// No job ends here: bridge the gap to the latest earlier
			// job end, or to the program start.
			bridge := prog.Start
			for _, j := range jobs {
				if j.Kind == KindJob && j.End < t0-eps && j.End > bridge {
					bridge = j.End
				}
			}
			push(queueStep(bridge, t0, "queue"))
			t0 = bridge
			if t0 <= prog.Start+eps {
				break
			}
			cur, ok = lastJobEndingAt(jobs, t0, eps)
			continue
		}
		t0 = walkJob(cur, t0)
		if t0 <= prog.Start+eps {
			break
		}
		// Prefer a declared dependency that ends exactly at our release.
		ok = false
		for _, d := range cur.Attrs.Deps {
			if dj, have := jobByID[d]; have && absf(dj.End-t0) <= eps {
				cur, ok = dj, true
				break
			}
		}
		if !ok {
			cur, ok = lastJobEndingAt(jobs, t0, eps)
		}
	}

	// Reverse into time order and total the categories.
	for i := len(rev) - 1; i >= 0; i-- {
		cp.Steps = append(cp.Steps, rev[i])
		cp.Categories = cp.Categories.Add(rev[i].Breakdown)
	}
	return cp, nil
}

// findEndingAt picks the task bounding time t: first a task of the same
// phase on the slot the chain is on, then any task of the phase, then
// any task of the run on that slot (cross-job slot succession under
// OverlapJobs). Later-recorded tasks win ties for determinism.
func findEndingAt(phaseTasks, allTasks []Span, t, eps float64, node, slot int) (Span, bool) {
	var best Span
	found := false
	for _, cand := range phaseTasks {
		if cand.Kind != KindTask || absf(cand.End-t) > eps {
			continue
		}
		if node >= 0 && cand.Attrs.Node == node && cand.Attrs.Slot == slot {
			return cand, true
		}
		best, found = cand, true
	}
	if found {
		return best, true
	}
	for _, cand := range allTasks {
		if absf(cand.End-t) <= eps && (node < 0 || (cand.Attrs.Node == node && cand.Attrs.Slot == slot)) {
			best, found = cand, true
		}
	}
	return best, found
}

// lastJobEndingAt returns the latest-recorded job span ending at t.
func lastJobEndingAt(jobs []Span, t, eps float64) (Span, bool) {
	var best Span
	found := false
	for _, j := range jobs {
		if j.Kind == KindJob && absf(j.End-t) <= eps {
			best, found = j, true
		}
	}
	return best, found
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Write renders the analysis: the per-category attribution ("why is
// this deployment slow"), then the longest individual steps.
func (cp *CriticalPath) Write(w io.Writer) error {
	fmt.Fprintf(w, "critical path: %.1fs across %d steps\n", cp.TotalSeconds, len(cp.Steps))
	fmt.Fprintf(w, "  %-12s %10s %7s\n", "category", "seconds", "share")
	for c := Category(0); c < NumCategories; c++ {
		sec := cp.Categories[c]
		share := 0.0
		if cp.TotalSeconds > 0 {
			share = 100 * sec / cp.TotalSeconds
		}
		fmt.Fprintf(w, "  %-12s %10.1f %6.1f%%\n", c.String(), sec, share)
	}
	longest := append([]Step(nil), cp.Steps...)
	sort.SliceStable(longest, func(i, j int) bool { return longest[i].Seconds() > longest[j].Seconds() })
	n := len(longest)
	if n > 10 {
		n = 10
	}
	fmt.Fprintf(w, "  longest steps:\n")
	for _, s := range longest[:n] {
		name := s.Name
		if name == "" {
			name = s.Kind.String()
		}
		if _, err := fmt.Fprintf(w, "    [%10.1fs .. %10.1fs] %6.1fs  %s\n", s.Start, s.End, s.Seconds(), name); err != nil {
			return err
		}
	}
	return nil
}
