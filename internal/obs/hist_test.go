package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(-1, 1, 3)
	want := []float64{0.1, 0.215, 0.464, 1, 2.15, 4.64, 10}
	if len(got) != len(want) {
		t.Fatalf("LogBuckets(-1,1,3) = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("buckets not ascending: %v", got)
		}
	}
	if n := len(LatencyBuckets); n != 19 {
		t.Fatalf("LatencyBuckets has %d bounds, want 19", n)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 samples in (0,1], 10 in (1,2], none above.
	cum := []uint64{10, 20, 20, 20}
	if q := QuantileFromBuckets(bounds, cum, 0.5); math.Abs(q-1) > 1e-9 {
		t.Fatalf("p50 = %v, want 1 (rank on the first bucket's upper edge)", q)
	}
	if q := QuantileFromBuckets(bounds, cum, 0.75); math.Abs(q-1.5) > 1e-9 {
		t.Fatalf("p75 = %v, want 1.5 (midway through the second bucket)", q)
	}
	if q := QuantileFromBuckets(bounds, cum, 0.25); math.Abs(q-0.5) > 1e-9 {
		t.Fatalf("p25 = %v, want 0.5", q)
	}
	// Empty histogram.
	if q := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 0}, 0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// Everything in +Inf: clamp to the largest finite bound.
	if q := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 5}, 0.5); q != 4 {
		t.Fatalf("overflow quantile = %v, want 4", q)
	}
}

// TestQuantileBoundaries holds BOTH quantile implementations — the
// standalone QuantileFromBuckets and HistSeries.Quantile — to the same
// boundary behavior: empty histograms, single-bucket layouts, leading
// empty buckets, and q ∈ {0, 0.5, 1}. A divergence here means the load
// generator's client-side SLO math disagrees with the server's.
func TestQuantileBoundaries(t *testing.T) {
	type layout struct {
		name    string
		bounds  []float64
		samples []float64 // observed through HistSeries
	}
	layouts := []layout{
		{"empty", []float64{1, 2, 4}, nil},
		{"single-bucket", []float64{2}, []float64{1, 1.5}},
		{"leading-empty", []float64{1, 2, 4, 8}, []float64{3, 3, 5}},
		{"all-first", []float64{1, 2}, []float64{0.5, 0.5, 0.5, 0.5}},
		{"inf-tail", []float64{1, 2}, []float64{0.5, 99}},
	}
	quantiles := []float64{0, 0.5, 1}
	want := map[string][3]float64{
		// q=0 → lower bound of the first nonempty bucket (not a bound
		// fabricated by an empty bucket); q=1 → upper bound of the last
		// nonempty finite bucket (or the largest finite bound when the
		// +Inf bucket holds the rank); q=0.5 interpolates.
		"empty":         {0, 0, 0},
		"single-bucket": {0, 1, 2},
		// leading-empty p50: rank 1.5 with cumulative {0,0,2,3}: bucket
		// (2,4] holds it → 2 + 2*(1.5-0)/2 = 3.5.
		"leading-empty": {2, 3.5, 8},
		"all-first":     {0, 0.5, 1},
		// inf-tail p50: rank 1 lands on the first bucket's upper edge.
		"inf-tail": {0, 1, 2},
	}
	for _, l := range layouts {
		r := NewRegistry()
		s := r.Histogram("q_"+l.name, "boundary test", l.bounds).With()
		for _, v := range l.samples {
			s.Observe(v)
		}
		bounds, counts := s.Buckets()
		cum := make([]uint64, len(counts))
		var c uint64
		for i, v := range counts {
			c += v
			cum[i] = c
		}
		for qi, q := range quantiles {
			fromBuckets := QuantileFromBuckets(bounds, cum, q)
			fromSeries := s.Quantile(q)
			if fromBuckets != fromSeries {
				t.Errorf("%s q=%v: QuantileFromBuckets=%v but HistSeries.Quantile=%v",
					l.name, q, fromBuckets, fromSeries)
			}
			if w := want[l.name][qi]; math.Abs(fromBuckets-w) > 1e-12 {
				t.Errorf("%s q=%v = %v, want %v", l.name, q, fromBuckets, w)
			}
		}
		// Out-of-range q clamps rather than extrapolating.
		if got := QuantileFromBuckets(bounds, cum, -3); got != QuantileFromBuckets(bounds, cum, 0) {
			t.Errorf("%s: q=-3 (%v) does not clamp to q=0 (%v)", l.name, got, QuantileFromBuckets(bounds, cum, 0))
		}
		if got := s.Quantile(7); got != s.Quantile(1) {
			t.Errorf("%s: q=7 (%v) does not clamp to q=1 (%v)", l.name, got, s.Quantile(1))
		}
	}
}

func TestHistSeriesQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	s := h.With(Label{Key: "tenant", Value: "acme"})
	for i := 0; i < 10; i++ {
		s.Observe(0.5) // first bucket
		s.Observe(1.5) // second bucket
	}
	if q := s.Quantile(0.75); math.Abs(q-1.5) > 1e-9 {
		t.Fatalf("p75 = %v, want 1.5", q)
	}
	if s.Count() != 20 || math.Abs(s.Sum()-20) > 1e-9 {
		t.Fatalf("count/sum = %d/%v, want 20/20", s.Count(), s.Sum())
	}
}

// buildHistRegistry populates per-tenant histogram series with the same
// samples in different orders, so the byte-stability tests prove the
// renderers sort series rather than echo insertion order.
func buildHistRegistry(variant int) *Registry {
	r := NewRegistry()
	h := r.Histogram("e2e_seconds", "end-to-end latency", []float64{0.1, 1, 10})
	tenants := []string{"acme", "zeta", "mid"}
	if variant%2 == 1 {
		tenants = []string{"zeta", "mid", "acme"}
	}
	samples := map[string][]float64{
		"acme": {0.05, 0.5, 5},
		"zeta": {50, 0.5},
		"mid":  {0.5},
	}
	for _, tn := range tenants {
		s := h.With(Label{Key: "tenant", Value: tn})
		obs := samples[tn]
		if variant%2 == 1 {
			for i := len(obs) - 1; i >= 0; i-- {
				s.Observe(obs[i])
			}
		} else {
			for _, v := range obs {
				s.Observe(v)
			}
		}
	}
	// An unlabeled observation too, so both shapes coexist.
	h.Observe(0.3)
	return r
}

// TestLabeledHistogramTextRendering pins the Prometheus text format of
// labeled histogram series: le merged after the series labels, one
// sum/count per series, unlabeled series first.
func TestLabeledHistogramTextRendering(t *testing.T) {
	var sb strings.Builder
	if err := buildHistRegistry(0).Write(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP e2e_seconds end-to-end latency
# TYPE e2e_seconds histogram
e2e_seconds_bucket{le="0.1"} 0
e2e_seconds_bucket{le="1"} 1
e2e_seconds_bucket{le="10"} 1
e2e_seconds_bucket{le="+Inf"} 1
e2e_seconds_sum 0.3
e2e_seconds_count 1
e2e_seconds_bucket{tenant="acme",le="0.1"} 1
e2e_seconds_bucket{tenant="acme",le="1"} 2
e2e_seconds_bucket{tenant="acme",le="10"} 3
e2e_seconds_bucket{tenant="acme",le="+Inf"} 3
e2e_seconds_sum{tenant="acme"} 5.55
e2e_seconds_count{tenant="acme"} 3
e2e_seconds_bucket{tenant="mid",le="0.1"} 0
e2e_seconds_bucket{tenant="mid",le="1"} 1
e2e_seconds_bucket{tenant="mid",le="10"} 1
e2e_seconds_bucket{tenant="mid",le="+Inf"} 1
e2e_seconds_sum{tenant="mid"} 0.5
e2e_seconds_count{tenant="mid"} 1
e2e_seconds_bucket{tenant="zeta",le="0.1"} 0
e2e_seconds_bucket{tenant="zeta",le="1"} 1
e2e_seconds_bucket{tenant="zeta",le="10"} 1
e2e_seconds_bucket{tenant="zeta",le="+Inf"} 2
e2e_seconds_sum{tenant="zeta"} 50.5
e2e_seconds_count{tenant="zeta"} 2
`
	if got != want {
		t.Fatalf("labeled histogram text mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabeledHistogramByteStable: text and JSON renderings must be
// byte-identical for identically populated registries regardless of
// series creation order and observation order.
func TestLabeledHistogramByteStable(t *testing.T) {
	var ta, tb, ja, jb bytes.Buffer
	if err := buildHistRegistry(0).Write(&ta); err != nil {
		t.Fatal(err)
	}
	if err := buildHistRegistry(1).Write(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Fatalf("text rendering depends on insertion order:\nA:\n%s\nB:\n%s", ta.String(), tb.String())
	}
	if err := buildHistRegistry(0).WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := buildHistRegistry(1).WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatalf("JSON rendering depends on insertion order:\nA:\n%s\nB:\n%s", ja.String(), jb.String())
	}
	if !json.Valid(ja.Bytes()) {
		t.Fatalf("WriteJSON emitted invalid JSON:\n%s", ja.String())
	}
	// The labeled series must round-trip through the documented shape.
	var dump struct {
		Metrics []struct {
			Name   string `json:"name"`
			Series []struct {
				Labels  string `json:"labels"`
				Buckets []struct {
					LE         string `json:"le"`
					Cumulative uint64 `json:"cumulative"`
				} `json:"buckets"`
				Count uint64 `json:"count"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(ja.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Metrics) != 1 || len(dump.Metrics[0].Series) != 3 {
		t.Fatalf("JSON export lost series: %+v", dump)
	}
	if got := dump.Metrics[0].Series[0].Labels; got != `{tenant="acme"}` {
		t.Fatalf("series not sorted by label: first is %q", got)
	}
}

// BenchmarkHistogramObserve guards the histogram record path: observing
// into a cached series handle must not allocate (CI greps allocs/op).
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", LatencyBuckets)
	s := h.With(Label{Key: "tenant", Value: "bench"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i%1000) / 250.0)
	}
}
