package obs

import (
	"fmt"
	"sync"
)

// Span is one recorded interval of virtual time.
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   Kind
	Name   string
	Start  float64
	End    float64
	Attrs  Attrs
}

// Seconds returns the span's duration.
func (s Span) Seconds() float64 { return s.End - s.Start }

// Event is one recorded instant.
type Event struct {
	Parent SpanID
	Name   string
	Time   float64
}

// Trace is the buffered in-memory Recorder. Spans and events accumulate
// in recording order; exports and analyses run over the finished buffer.
type Trace struct {
	mu     sync.Mutex
	spans  []Span
	events []Event
}

// NewTrace returns an empty trace recorder.
func NewTrace() *Trace { return &Trace{} }

// Enabled reports true: a Trace always records.
func (t *Trace) Enabled() bool { return true }

// Start opens a span. Span ids are 1-based indexes into the buffer.
func (t *Trace) Start(kind Kind, name string, parent SpanID, start float64) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		Start: start, End: start,
	})
	return id
}

// End closes (or re-closes) a span.
func (t *Trace) End(id SpanID, end float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id <= 0 || int(id) > len(t.spans) {
		return
	}
	t.spans[id-1].End = end
}

// SetAttrs replaces a span's attributes.
func (t *Trace) SetAttrs(id SpanID, a Attrs) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id <= 0 || int(id) > len(t.spans) {
		return
	}
	t.spans[id-1].Attrs = a
}

// Event records an instantaneous event.
func (t *Trace) Event(parent SpanID, name string, ts float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{Parent: parent, Name: name, Time: ts})
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Events returns a copy of the recorded events in recording order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// SpansOf returns the recorded spans of one kind, in recording order.
func (t *Trace) SpansOf(kind Kind) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// Span returns the span with the given id.
func (t *Trace) Span(id SpanID) (Span, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id <= 0 || int(id) > len(t.spans) {
		return Span{}, fmt.Errorf("obs: no span %d", id)
	}
	return t.spans[id-1], nil
}

// Program returns the unique program span of the trace. Analyses that
// need a single execution (critical path) use this.
func (t *Trace) Program() (Span, error) {
	progs := t.SpansOf(KindProgram)
	if len(progs) != 1 {
		return Span{}, fmt.Errorf("obs: trace holds %d program spans, want exactly 1", len(progs))
	}
	return progs[0], nil
}

// children returns a map from parent span id to child spans, in
// recording order.
func childIndex(spans []Span) map[SpanID][]Span {
	idx := make(map[SpanID][]Span)
	for _, s := range spans {
		idx[s.Parent] = append(idx[s.Parent], s)
	}
	return idx
}
