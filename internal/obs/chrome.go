package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Fields are ordered for stable, human-scannable output.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   *float64       `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track assignment: the scheduler's control spans (program, job, phase)
// live in pid 0 — the program on tid 0, each job and its phases on tid
// jobID+1 so overlapping jobs stay readable — while every task lands on
// the track of the node×slot that ran it (pid node+1, tid slot).
const schedulerPID = 0

// WriteChrome exports the trace as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. Virtual seconds become microseconds so
// the viewers' time axis reads naturally. The export is deterministic:
// spans appear in recording order, metadata in sorted order.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	events := t.Events()
	byID := make(map[SpanID]Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}

	var evs []chromeEvent
	// Track-naming metadata first: one process per node, one thread per
	// slot, plus the scheduler process for control spans.
	type track struct{ pid, tid int }
	seen := map[track]bool{}
	for _, s := range spans {
		pid, tid := trackOf(s, byID)
		seen[track{pid, tid}] = true
	}
	var tracks []track
	for tr := range seen {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	namedPID := map[int]bool{}
	for _, tr := range tracks {
		if !namedPID[tr.pid] {
			namedPID[tr.pid] = true
			name := "scheduler"
			if tr.pid != schedulerPID {
				name = "node " + strconv.Itoa(tr.pid-1)
			}
			evs = append(evs, chromeEvent{
				Name: "process_name", Phase: "M", PID: tr.pid, TID: 0,
				Args: map[string]any{"name": name},
			})
		}
		tname := "control"
		if tr.pid != schedulerPID {
			tname = "slot " + strconv.Itoa(tr.tid)
		} else if tr.tid > 0 {
			tname = "job " + strconv.Itoa(tr.tid-1)
		}
		evs = append(evs, chromeEvent{
			Name: "thread_name", Phase: "M", PID: tr.pid, TID: tr.tid,
			Args: map[string]any{"name": tname},
		})
	}

	for _, s := range spans {
		pid, tid := trackOf(s, byID)
		dur := (s.End - s.Start) * 1e6
		args := map[string]any{
			"span_id":   int64(s.ID),
			"parent_id": int64(s.Parent),
		}
		switch s.Kind {
		case KindJob:
			args["job_id"] = s.Attrs.JobID
			if len(s.Attrs.Deps) > 0 {
				args["deps"] = s.Attrs.Deps
			}
		case KindTask:
			a := s.Attrs
			args["job_id"] = a.JobID
			args["node"] = a.Node
			args["slot"] = a.Slot
			args["flops"] = a.Flops
			args["local_bytes"] = a.LocalReadBytes
			args["rack_bytes"] = a.RackReadBytes
			args["remote_bytes"] = a.RemoteReadBytes
			args["cache_bytes"] = a.CacheReadBytes
			args["write_bytes"] = a.WriteBytes
			args["retries"] = a.Retries
			args["queue_s"] = a.QueueSec
			for c := Category(0); c < NumCategories; c++ {
				if v := a.Breakdown[c]; v != 0 {
					args[c.String()+"_s"] = v
				}
			}
		}
		evs = append(evs, chromeEvent{
			Name: s.Name, Cat: s.Kind.String(), Phase: "X",
			TS: s.Start * 1e6, Dur: &dur, PID: pid, TID: tid, Args: args,
		})
	}
	for _, e := range events {
		pid, tid := schedulerPID, 0
		if p, ok := byID[e.Parent]; ok {
			pid, tid = trackOf(p, byID)
		}
		evs = append(evs, chromeEvent{
			Name: e.Name, Cat: "event", Phase: "i",
			TS: e.Time * 1e6, PID: pid, TID: tid, Scope: "t",
			Args: map[string]any{"parent_id": int64(e.Parent)},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// trackOf maps a span to its (pid, tid) track.
func trackOf(s Span, byID map[SpanID]Span) (pid, tid int) {
	switch s.Kind {
	case KindTask:
		return s.Attrs.Node + 1, s.Attrs.Slot
	case KindJob:
		return schedulerPID, s.Attrs.JobID + 1
	case KindPhase:
		// Phases ride on their job's control track.
		if p, ok := byID[s.Parent]; ok && p.Kind == KindJob {
			return schedulerPID, p.Attrs.JobID + 1
		}
		return schedulerPID, 0
	default:
		return schedulerPID, 0
	}
}
