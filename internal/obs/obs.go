// Package obs is the shared observability subsystem: span/event tracing
// over the engines' virtual clocks, a Chrome-trace exporter, a
// Prometheus-style metrics snapshot, a critical-path analyzer, and a
// predicted-vs-actual differ.
//
// Cumulon's optimizer story — benchmark, simulate, model, search — only
// closes its loop if the system can observe what an execution actually
// did. Package obs provides the observation layer both engines (exec,
// mapred), the simulator (sim) and the compute layer record into:
//
//   - A Recorder receives a hierarchy of spans (program → job → phase →
//     task, plus tile-op events) stamped with virtual-clock times and
//     typed attributes (flops, byte classes, node/slot placement, retry
//     counts, a per-category time breakdown).
//   - The default recorder is a no-op that adds zero allocations to the
//     hot path; engines guard all attribute construction behind
//     Recorder.Enabled so a disabled recorder costs one branch per task.
//   - Trace is the buffered in-memory implementation. It exports Chrome
//     trace-event JSON (chrome://tracing, Perfetto) with one track per
//     node×slot, snapshots into a metrics Registry, computes the
//     critical path of the recorded span DAG with per-category time
//     attribution, and diffs against a predicted trace job-by-job.
//
// Recording is deterministic: engines record only from their (single)
// scheduling goroutine during trace replay, so two runs of the same seed
// produce byte-identical exports regardless of the compute backend.
package obs

// SpanID identifies one recorded span. The zero value (NoSpan) means
// "no span": it is the parent of root spans and the result of recording
// against a disabled recorder.
type SpanID int64

// NoSpan is the null span id.
const NoSpan SpanID = 0

// Kind classifies a span in the program → job → phase → task hierarchy.
type Kind uint8

const (
	// KindProgram spans one whole plan execution (or prediction).
	KindProgram Kind = iota
	// KindJob spans one job, from its release to its last phase end.
	KindJob
	// KindPhase spans one barrier-separated task phase of a job.
	KindPhase
	// KindTask spans one executed task attempt chain.
	KindTask
)

func (k Kind) String() string {
	switch k {
	case KindProgram:
		return "program"
	case KindJob:
		return "job"
	case KindPhase:
		return "phase"
	case KindTask:
		return "task"
	}
	return "?"
}

// Category classifies where virtual time goes. The critical-path
// analyzer reports one total per category; task spans carry a Breakdown
// indexed by Category.
type Category uint8

const (
	// CatCompute is floating-point work.
	CatCompute Category = iota
	// CatLocalRead is disk time reading node-local replicas.
	CatLocalRead
	// CatRackRead is network time reading rack-local replicas.
	CatRackRead
	// CatRemoteRead is network time reading cross-rack replicas
	// (including the configured cross-rack penalty).
	CatRemoteRead
	// CatWrite is disk+network time writing outputs and their replicas.
	CatWrite
	// CatStartup is fixed overhead: per-task process startup and per-job
	// launch time.
	CatStartup
	// CatQueue is time spent waiting: slot contention and any scheduling
	// gap the analyzer cannot attribute elsewhere.
	CatQueue
	// CatRecovery is time lost to failure handling: failed task attempts,
	// retry backoff and the startup of replacement attempts.
	CatRecovery
	// CatCheckpoint is time spent writing program-level checkpoints: the
	// durable manifest plus any live tiles not already on the DFS.
	CatCheckpoint
	// NumCategories sizes Breakdown arrays.
	NumCategories
)

func (c Category) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatLocalRead:
		return "local read"
	case CatRackRead:
		return "rack read"
	case CatRemoteRead:
		return "remote read"
	case CatWrite:
		return "write"
	case CatStartup:
		return "startup"
	case CatQueue:
		return "queue"
	case CatRecovery:
		return "recovery"
	case CatCheckpoint:
		return "checkpoint"
	}
	return "?"
}

// Breakdown decomposes a span's duration into per-category seconds.
type Breakdown [NumCategories]float64

// Total returns the summed seconds across categories.
func (b Breakdown) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// Scale returns the breakdown with every category multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	for i := range b {
		b[i] *= f
	}
	return b
}

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	for i := range b {
		b[i] += o[i]
	}
	return b
}

// Attrs are the typed attributes a span carries. All fields are
// optional; which ones are meaningful depends on the span kind. Attrs is
// a plain value so that recording against the no-op recorder never
// allocates.
type Attrs struct {
	// JobID identifies the job (job, phase and task spans). The differ
	// aligns predicted and actual job spans on this.
	JobID int
	// Phase is the phase index within the job (phase and task spans).
	Phase int
	// Index is the task index within the phase (task spans).
	Index int
	// Node and Slot locate where a task ran (task spans). Slot is the
	// engine's global slot index.
	Node, Slot int
	// Deps lists the job IDs this job depends on (job spans); the
	// critical-path analyzer follows these edges.
	Deps []int
	// Flops is the floating-point work of the span.
	Flops int64
	// Byte classes of the span's I/O, matching exec.TaskRecord.
	LocalReadBytes, RackReadBytes, RemoteReadBytes, CacheReadBytes, WriteBytes int64
	// Retries counts failed attempts that preceded the recorded one.
	Retries int
	// QueueSec is how long the task waited between its phase's release
	// and its first attempt (task spans).
	QueueSec float64
	// RecoverySec is virtual time the task lost to failed attempts and
	// retry backoff before its successful attempt began (task spans).
	RecoverySec float64
	// Breakdown attributes the span's duration to time categories; for
	// task spans the engine normalizes it to sum to the span duration.
	Breakdown Breakdown
}

// Recorder receives spans and events. Implementations must tolerate
// calls with NoSpan ids (they are ignored). Recording happens from one
// goroutine at a time per recorder in the engines, but implementations
// are expected to be safe for concurrent use anyway (Trace is).
type Recorder interface {
	// Enabled reports whether recording has any effect. Hot paths guard
	// attribute construction (names, breakdowns) behind this.
	Enabled() bool
	// Start opens a span at virtual time start and returns its id.
	Start(kind Kind, name string, parent SpanID, start float64) SpanID
	// End closes the span at virtual time end. Re-ending a span moves
	// its end time (the engines use this when speculation rewrites a
	// task's finish).
	End(id SpanID, end float64)
	// SetAttrs attaches typed attributes to a span, replacing any
	// previous attributes.
	SetAttrs(id SpanID, a Attrs)
	// Event records an instantaneous event under parent.
	Event(parent SpanID, name string, ts float64)
}

// nop is the zero-cost disabled recorder.
type nop struct{}

// Nop returns the no-op Recorder: every method is an empty shell and
// Enabled is false, so instrumented code skips all attribute work.
func Nop() Recorder { return nop{} }

func (nop) Enabled() bool                              { return false }
func (nop) Start(Kind, string, SpanID, float64) SpanID { return NoSpan }
func (nop) End(SpanID, float64)                        {}
func (nop) SetAttrs(SpanID, Attrs)                     {}
func (nop) Event(SpanID, string, float64)              {}

// OrNop returns r, or the no-op recorder when r is nil, so config
// structs can leave the field unset.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop()
	}
	return r
}
