package obs

import (
	"testing"
)

// TestNopRecorderZeroAllocs is the hot-path guard: the exact call
// sequence an engine makes per task — the Enabled gate plus the span
// primitives — must not allocate at all on the no-op recorder, so a run
// with observability disabled performs byte-for-byte the allocations of
// an uninstrumented engine.
func TestNopRecorderZeroAllocs(t *testing.T) {
	rec := Nop()
	deps := []int{1, 2}
	enabled := false
	n := testing.AllocsPerRun(1000, func() {
		if rec.Enabled() {
			enabled = true
		}
		id := rec.Start(KindTask, "task", NoSpan, 1.0)
		rec.SetAttrs(id, Attrs{
			JobID: 3, Phase: 1, Index: 7, Node: 2, Slot: 5, Deps: deps,
			Flops: 1 << 20, LocalReadBytes: 4096, WriteBytes: 512,
			QueueSec: 0.5, Breakdown: Breakdown{CatCompute: 1.5},
		})
		rec.Event(id, "gemm", 1.5)
		rec.End(id, 2.0)
	})
	if enabled {
		t.Fatal("Nop().Enabled() returned true")
	}
	if n != 0 {
		t.Fatalf("no-op recorder allocated %.1f times per task, want 0", n)
	}
}

// BenchmarkNopRecorderTaskPath reports the per-task overhead of disabled
// observability (expected: ~ns, 0 allocs/op).
func BenchmarkNopRecorderTaskPath(b *testing.B) {
	rec := Nop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := rec.Start(KindTask, "task", NoSpan, 0)
		rec.SetAttrs(id, Attrs{Flops: int64(i)})
		rec.End(id, 1)
	}
}

func TestOrNop(t *testing.T) {
	if OrNop(nil).Enabled() {
		t.Fatal("OrNop(nil) must be disabled")
	}
	tr := NewTrace()
	if OrNop(tr) != Recorder(tr) {
		t.Fatal("OrNop must pass a real recorder through")
	}
}

// TestTraceRecords covers the buffered recorder: ids, parents, re-End,
// attrs replacement, events, and robustness against bogus ids.
func TestTraceRecords(t *testing.T) {
	tr := NewTrace()
	if !tr.Enabled() {
		t.Fatal("Trace must be enabled")
	}
	prog := tr.Start(KindProgram, "program", NoSpan, 0)
	job := tr.Start(KindJob, "job 0", prog, 0)
	tr.SetAttrs(job, Attrs{JobID: 4, Deps: []int{1}})
	tr.End(job, 10)
	tr.End(job, 12) // speculation-style re-end
	tr.Event(job, "retry", 3)
	tr.End(prog, 12)

	// Out-of-range ids are ignored, not panics.
	tr.End(SpanID(99), 1)
	tr.SetAttrs(NoSpan, Attrs{})

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	j, err := tr.Span(job)
	if err != nil {
		t.Fatal(err)
	}
	if j.Parent != prog || j.End != 12 || j.Attrs.JobID != 4 {
		t.Fatalf("job span %+v", j)
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != "retry" || evs[0].Parent != job {
		t.Fatalf("events %+v", evs)
	}
	p, err := tr.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Seconds() != 12 {
		t.Fatalf("program seconds %g, want 12", p.Seconds())
	}
}

func TestProgramRequiresExactlyOne(t *testing.T) {
	tr := NewTrace()
	if _, err := tr.Program(); err == nil {
		t.Fatal("empty trace must not yield a program span")
	}
	tr.Start(KindProgram, "a", NoSpan, 0)
	tr.Start(KindProgram, "b", NoSpan, 0)
	if _, err := tr.Program(); err == nil {
		t.Fatal("two program spans must be an error")
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{CatCompute: 2, CatWrite: 1}
	if b.Total() != 3 {
		t.Fatalf("Total = %g", b.Total())
	}
	s := b.Scale(2)
	if s[CatCompute] != 4 || s[CatWrite] != 2 || b[CatCompute] != 2 {
		t.Fatalf("Scale mutated receiver or wrong result: %v %v", s, b)
	}
	a := b.Add(Breakdown{CatCompute: 1, CatQueue: 5})
	if a[CatCompute] != 3 || a[CatQueue] != 5 {
		t.Fatalf("Add = %v", a)
	}
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "?" {
			t.Fatalf("category %d lacks a name", c)
		}
	}
	for _, k := range []Kind{KindProgram, KindJob, KindPhase, KindTask} {
		if k.String() == "?" {
			t.Fatalf("kind %d lacks a name", k)
		}
	}
}
