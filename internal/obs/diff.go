package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DiffRow compares one job between an actual (exec) and a predicted
// (sim) trace.
type DiffRow struct {
	JobID        int
	Name         string
	ActualSec    float64
	PredictedSec float64
	// RelErr is (predicted-actual)/actual; NaN when a side is missing.
	RelErr float64
	// MissingActual / MissingPredicted flag one-sided jobs.
	MissingActual, MissingPredicted bool
}

// Diff is a structural predicted-vs-actual comparison: per-job relative
// errors plus the program-level error, upgrading scalar end-time
// comparisons to span-by-span ones.
type Diff struct {
	Rows                            []DiffRow
	ProgramActual, ProgramPredicted float64
	ProgramRelErr                   float64
	// WorstJobRelErr is the largest absolute per-job relative error over
	// jobs present on both sides.
	WorstJobRelErr float64
}

// DiffTraces aligns the job spans of a predicted trace against those of
// an actual trace by job ID and reports relative errors of the span
// durations. Each trace must hold exactly one program span.
func DiffTraces(actual, predicted *Trace) (*Diff, error) {
	actProg, err := actual.Program()
	if err != nil {
		return nil, fmt.Errorf("actual trace: %w", err)
	}
	predProg, err := predicted.Program()
	if err != nil {
		return nil, fmt.Errorf("predicted trace: %w", err)
	}
	d := &Diff{
		ProgramActual:    actProg.Seconds(),
		ProgramPredicted: predProg.Seconds(),
		ProgramRelErr:    relErr(predProg.Seconds(), actProg.Seconds()),
	}
	type side struct {
		name string
		sec  float64
		have bool
	}
	act := map[int]side{}
	pred := map[int]side{}
	var ids []int
	note := func(m map[int]side, s Span) {
		if _, seen := m[s.Attrs.JobID]; !seen {
			if _, other := act[s.Attrs.JobID]; !other {
				if _, other2 := pred[s.Attrs.JobID]; !other2 {
					ids = append(ids, s.Attrs.JobID)
				}
			}
			m[s.Attrs.JobID] = side{name: s.Name, sec: s.Seconds(), have: true}
		}
	}
	for _, s := range actual.SpansOf(KindJob) {
		note(act, s)
	}
	for _, s := range predicted.SpansOf(KindJob) {
		note(pred, s)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a, p := act[id], pred[id]
		row := DiffRow{
			JobID: id, Name: a.name,
			ActualSec: a.sec, PredictedSec: p.sec,
			MissingActual: !a.have, MissingPredicted: !p.have,
		}
		if row.Name == "" {
			row.Name = p.name
		}
		if a.have && p.have {
			row.RelErr = relErr(p.sec, a.sec)
			if e := math.Abs(row.RelErr); e > d.WorstJobRelErr {
				d.WorstJobRelErr = e
			}
		} else {
			row.RelErr = math.NaN()
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

func relErr(pred, actual float64) float64 {
	if actual == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (pred - actual) / actual
}

// Write renders the relative-error table.
func (d *Diff) Write(w io.Writer) error {
	fmt.Fprintf(w, "predicted vs actual (per job):\n")
	fmt.Fprintf(w, "  %4s %-28s %12s %12s %9s\n", "job", "name", "actual s", "predicted s", "rel err")
	for _, r := range d.Rows {
		switch {
		case r.MissingActual:
			fmt.Fprintf(w, "  %4d %-28s %12s %12.1f %9s\n", r.JobID, r.Name, "-", r.PredictedSec, "n/a")
		case r.MissingPredicted:
			fmt.Fprintf(w, "  %4d %-28s %12.1f %12s %9s\n", r.JobID, r.Name, r.ActualSec, "-", "n/a")
		default:
			fmt.Fprintf(w, "  %4d %-28s %12.1f %12.1f %+8.1f%%\n", r.JobID, r.Name, r.ActualSec, r.PredictedSec, 100*r.RelErr)
		}
	}
	_, err := fmt.Fprintf(w, "  %4s %-28s %12.1f %12.1f %+8.1f%%  (worst job %.1f%%)\n",
		"", "program", d.ProgramActual, d.ProgramPredicted, 100*d.ProgramRelErr, 100*d.WorstJobRelErr)
	return err
}
