package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one metric label pair.
type Label struct{ Key, Value string }

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metrics keep registration order in the output;
// labeled series within a metric are sorted for determinism.
type Registry struct {
	metrics []*metric
	byName  map[string]*metric
}

type metric struct {
	name, help, typ string
	samples         map[string]float64 // label-string -> value
	// histogram state (typ == "histogram")
	buckets []float64              // upper bounds, ascending
	hseries map[string]*HistSeries // label-string -> series (lazy; "" is unlabeled)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*metric{}} }

func (r *Registry) metricNamed(name, help, typ string) *metric {
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := &metric{name: name, help: help, typ: typ, samples: map[string]float64{}}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter declares (or fetches) a monotonically increasing metric.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{m: r.metricNamed(name, help, "counter")}
}

// Gauge declares (or fetches) a point-in-time value metric.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{m: r.metricNamed(name, help, "gauge")}
}

// Histogram declares (or fetches) a distribution metric with the given
// ascending bucket upper bounds (an implicit +Inf bucket is added).
// Series — the unlabeled default and any labeled ones fetched with With
// — materialize lazily on first observation.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.metricNamed(name, help, "histogram")
	if m.buckets == nil {
		m.buckets = append([]float64(nil), buckets...)
		m.hseries = map[string]*HistSeries{}
	}
	return &Histogram{m: m}
}

// Counter accumulates.
type Counter struct{ m *metric }

// Add increases the series selected by labels by v.
func (c *Counter) Add(v float64, labels ...Label) {
	c.m.samples[labelKey(labels)] += v
}

// Gauge records the latest value.
type Gauge struct{ m *metric }

// Set replaces the series selected by labels with v.
func (g *Gauge) Set(v float64, labels ...Label) {
	g.m.samples[labelKey(labels)] = v
}

// Histogram observes a distribution. A histogram holds one series per
// label set; With returns a series handle whose Observe is
// allocation-free, so hot paths fetch the handle once and record into
// it directly (benchmark-guarded in CI).
type Histogram struct{ m *metric }

// With returns (creating on first use) the series for the label set.
// The lookup builds a label key, so callers on hot paths cache the
// returned handle instead of calling With per observation.
func (h *Histogram) With(labels ...Label) *HistSeries {
	key := labelKey(labels)
	s, ok := h.m.hseries[key]
	if !ok {
		s = &HistSeries{bounds: h.m.buckets, counts: make([]uint64, len(h.m.buckets)+1)}
		h.m.hseries[key] = s
	}
	return s
}

// Observe records one sample into the unlabeled series.
func (h *Histogram) Observe(v float64) { h.With().Observe(v) }

// HistSeries is one labeled series of a Histogram.
type HistSeries struct {
	bounds []float64 // shared with the parent metric
	counts []uint64  // per-bucket (non-cumulative); last is +Inf
	sum    float64
	n      uint64
}

// Observe records one sample. It allocates nothing.
func (s *HistSeries) Observe(v float64) {
	s.sum += v
	s.n++
	for i, ub := range s.bounds {
		if v <= ub {
			s.counts[i]++
			return
		}
	}
	s.counts[len(s.bounds)]++
}

// Count returns the number of recorded samples.
func (s *HistSeries) Count() uint64 { return s.n }

// Sum returns the sum of recorded samples.
func (s *HistSeries) Sum() float64 { return s.sum }

// Buckets returns the bucket upper bounds and a copy of the
// per-bucket (non-cumulative) counts; the extra last count is the +Inf
// bucket.
func (s *HistSeries) Buckets() (bounds []float64, counts []uint64) {
	return s.bounds, append([]uint64(nil), s.counts...)
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts
// by linear interpolation inside the target bucket, Prometheus
// histogram_quantile style. It returns 0 when the series is empty; a
// rank landing in the +Inf bucket returns the largest finite bound.
func (s *HistSeries) Quantile(q float64) float64 {
	cum := make([]uint64, len(s.counts))
	var c uint64
	for i, v := range s.counts {
		c += v
		cum[i] = c
	}
	return QuantileFromBuckets(s.bounds, cum, q)
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + `="` + l.Value + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Write renders the registry in the Prometheus text exposition format.
func (r *Registry) Write(w io.Writer) error {
	for _, m := range r.metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		if m.typ == "histogram" {
			for _, key := range sortedKeys(m.hseries) {
				s := m.hseries[key]
				// inner is the series' labels ready to prefix the le label:
				// "" for the unlabeled series, `tenant="a",` for `{tenant="a"}`.
				inner := ""
				if key != "" {
					inner = key[1:len(key)-1] + ","
				}
				cum := uint64(0)
				for i, ub := range s.bounds {
					cum += s.counts[i]
					if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", m.name, inner, formatBound(ub), cum); err != nil {
						return err
					}
				}
				cum += s.counts[len(s.bounds)]
				if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n%s_sum%s %s\n%s_count%s %d\n",
					m.name, inner, cum,
					m.name, key, formatValue(s.sum),
					m.name, key, s.n); err != nil {
					return err
				}
			}
			continue
		}
		for _, k := range sortedKeys(m.samples) {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, k, formatValue(m.samples[k])); err != nil {
				return err
			}
		}
	}
	return nil
}

// metricJSON is the deterministic JSON rendering of one metric: series
// are a sorted slice, never a map, so encoding is byte-stable across
// runs and across Go map iteration orders.
type metricJSON struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help"`
	Samples []sampleJSON `json:"samples,omitempty"`
	// Histogram fields (type == "histogram"): the unlabeled series
	// renders at the top level, labeled series under Series.
	Buckets []bucketJSON     `json:"buckets,omitempty"`
	Sum     *float64         `json:"sum,omitempty"`
	Count   *uint64          `json:"count,omitempty"`
	Series  []histSeriesJSON `json:"series,omitempty"`
}

// histSeriesJSON is one labeled histogram series in the JSON export.
type histSeriesJSON struct {
	Labels  string       `json:"labels"`
	Buckets []bucketJSON `json:"buckets"`
	Sum     float64      `json:"sum"`
	Count   uint64       `json:"count"`
}

type sampleJSON struct {
	// Labels is the rendered label set, e.g. `{tenant="acme"}`; empty for
	// the unlabeled series.
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

type bucketJSON struct {
	LE         string `json:"le"` // upper bound ("+Inf" for the last)
	Cumulative uint64 `json:"cumulative"`
}

// WriteJSON renders the registry as deterministic JSON: metrics keep
// registration order, labeled series within a metric are sorted by
// label string, and histograms export cumulative bucket counts. Two
// registries built by the same sequence of operations render
// byte-identically (asserted by a golden test), so the job server can
// serve the output to clients that diff or hash it.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := struct {
		Metrics []metricJSON `json:"metrics"`
	}{Metrics: []metricJSON{}}
	for _, m := range r.metrics {
		mj := metricJSON{Name: m.name, Type: m.typ, Help: m.help}
		if m.typ == "histogram" {
			for _, key := range sortedKeys(m.hseries) {
				s := m.hseries[key]
				if key == "" {
					mj.Buckets = cumulativeBuckets(s)
					sum, n := s.sum, s.n
					mj.Sum, mj.Count = &sum, &n
					continue
				}
				mj.Series = append(mj.Series, histSeriesJSON{
					Labels: key, Buckets: cumulativeBuckets(s), Sum: s.sum, Count: s.n,
				})
			}
		} else {
			for _, k := range sortedKeys(m.samples) {
				mj.Samples = append(mj.Samples, sampleJSON{Labels: k, Value: m.samples[k]})
			}
		}
		out.Metrics = append(out.Metrics, mj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// cumulativeBuckets renders one series' bucket counts cumulatively,
// with the trailing +Inf bucket.
func cumulativeBuckets(s *HistSeries) []bucketJSON {
	out := make([]bucketJSON, 0, len(s.bounds)+1)
	cum := uint64(0)
	for i, ub := range s.bounds {
		cum += s.counts[i]
		out = append(out, bucketJSON{LE: formatBound(ub), Cumulative: cum})
	}
	cum += s.counts[len(s.bounds)]
	return append(out, bucketJSON{LE: "+Inf", Cumulative: cum})
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 9, 64)
}

// secondsBuckets is the default latency bucketing for virtual-time
// histograms: tasks range from sub-second map chunks to multi-hundred
// second multiply waves.
var secondsBuckets = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}

// Snapshot derives the standard metrics registry from a recorded trace:
// run/job/task counts, task-second and queue-wait histograms, byte
// counters by I/O class, flops, retry and locality/cache-hit summaries.
func Snapshot(t *Trace) *Registry {
	r := NewRegistry()
	spans := t.Spans()

	programSec := r.Gauge("cumulon_program_seconds", "end-to-end virtual seconds of the recorded program run(s)")
	jobs := r.Counter("cumulon_jobs_total", "jobs executed")
	tasks := r.Counter("cumulon_tasks_total", "tasks executed")
	retries := r.Counter("cumulon_task_retries_total", "failed task attempts that were retried")
	recoverySec := r.Counter("cumulon_recovery_seconds_total", "virtual time lost to failed attempts and retry backoff")
	taskSec := r.Histogram("cumulon_task_seconds", "task durations in virtual seconds", secondsBuckets)
	queueSec := r.Histogram("cumulon_queue_wait_seconds", "task wait between phase release and start", secondsBuckets)
	readBytes := r.Counter("cumulon_read_bytes_total", "bytes read by I/O class")
	writeBytes := r.Counter("cumulon_write_bytes_total", "bytes written (primary replica)")
	flops := r.Counter("cumulon_flops_total", "floating point operations executed")
	catSec := r.Counter("cumulon_task_category_seconds_total", "task-time attribution by category")
	locality := r.Gauge("cumulon_read_locality_ratio", "fraction of DFS read bytes served node-locally")
	cacheHit := r.Gauge("cumulon_cache_hit_ratio", "fraction of read bytes served from node memory caches")

	var progTotal float64
	var local, rack, remote, cache int64
	for _, s := range spans {
		switch s.Kind {
		case KindProgram:
			progTotal += s.Seconds()
		case KindJob:
			jobs.Add(1)
		case KindTask:
			a := s.Attrs
			tasks.Add(1)
			retries.Add(float64(a.Retries))
			recoverySec.Add(a.RecoverySec)
			taskSec.Observe(s.Seconds())
			queueSec.Observe(a.QueueSec)
			local += a.LocalReadBytes
			rack += a.RackReadBytes
			remote += a.RemoteReadBytes
			cache += a.CacheReadBytes
			writeBytes.Add(float64(a.WriteBytes))
			flops.Add(float64(a.Flops))
			for c := Category(0); c < NumCategories; c++ {
				if v := a.Breakdown[c]; v != 0 {
					catSec.Add(v, Label{"category", c.String()})
				}
			}
		}
	}
	programSec.Set(progTotal)
	readBytes.Add(float64(local), Label{"class", "local"})
	readBytes.Add(float64(rack), Label{"class", "rack"})
	readBytes.Add(float64(remote), Label{"class", "remote"})
	readBytes.Add(float64(cache), Label{"class", "cache"})
	if dfsRead := local + rack + remote; dfsRead > 0 {
		locality.Set(float64(local) / float64(dfsRead))
	}
	if allRead := local + rack + remote + cache; allRead > 0 {
		cacheHit.Set(float64(cache) / float64(allRead))
	}
	return r
}
